(* Quickstart: parse a litmus test, run it against the executable LK model,
   and read the verdict — the message-passing idiom of the paper's
   Figure 1.

   Run with:  dune exec examples/quickstart.exe *)

let mp_unfenced =
  {|C MP
{ x=0; y=0; }

P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}

P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(x);
}

exists (1:r1=1 /\ 1:r2=0)
|}

let mp_fenced =
  {|C MP+wmb+rmb
{ x=0; y=0; }

P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_wmb();
  WRITE_ONCE(y, 1);
}

P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  smp_rmb();
  int r2 = READ_ONCE(x);
}

exists (1:r1=1 /\ 1:r2=0)
|}

let check source =
  let test = Litmus.parse source in
  let result = Lkmm.check test in
  Fmt.pr "%s: %a  (%d candidate executions, %d consistent)@."
    test.Litmus.Ast.name Exec.Check.pp_verdict result.Exec.Check.verdict
    result.Exec.Check.n_candidates result.Exec.Check.n_consistent;
  result

let () =
  Fmt.pr "== Message passing without fences: the weak outcome is allowed ==@.";
  let r = check mp_unfenced in
  List.iter
    (fun (o, m) ->
      Fmt.pr "   outcome %a%s@." Exec.pp_outcome o
        (if m then "   <- the weak outcome" else ""))
    r.Exec.Check.outcomes;

  Fmt.pr "@.== With smp_wmb / smp_rmb (Figures 1 and 2): forbidden ==@.";
  ignore (check mp_fenced);
  Fmt.pr "%a@." Lkmm.Explain.pp_test_verdict (Litmus.parse mp_fenced);

  (* The same model is executable from its cat source, like herd does. *)
  Fmt.pr "== The same verdicts from the cat-interpreted model (lk.cat) ==@.";
  let cat_result = Cat.check_lk (Litmus.parse mp_fenced) in
  Fmt.pr "MP+wmb+rmb under lk.cat: %a@." Exec.Check.pp_verdict
    cat_result.Exec.Check.verdict
