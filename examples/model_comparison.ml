(* Comparing the LK model with C11 (Section 5.2), SC and x86-TSO over the
   battery and a generated sweep: where the models disagree and why the LK
   kernel cannot simply adopt C11.

   Run with:  dune exec examples/model_comparison.exe *)

let verdict m t = (Exec.Check.run m t).Exec.Check.verdict
let str = Exec.Check.verdict_to_string

let () =
  Fmt.pr "== Battery verdicts across models ==@.";
  Fmt.pr "%-22s %-7s %-7s %-7s %-7s %-8s@." "test" "SC" "TSO" "LK" "C11"
    "C11-psc";
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let t = Harness.Battery.test_of e in
      let c11, psc =
        if Models.C11.applicable t then
          ( str (verdict (module Models.C11) t),
            str (verdict (module Models.C11.Strengthened) t) )
        else ("-", "-")
      in
      Fmt.pr "%-22s %-7s %-7s %-7s %-7s %-8s@." e.name
        (str (verdict (module Models.Sc) t))
        (str (verdict (module Models.Tso) t))
        (str (verdict (module Lkmm) t))
        c11 psc)
    Harness.Battery.all;

  Fmt.pr "@.== The three Section 5.2 discrepancies ==@.";
  let show name expect_lk expect_c11 why =
    let t = Harness.Battery.test_of (Harness.Battery.find name) in
    let lk = verdict (module Lkmm) t
    and c11 = verdict (module Models.C11) t in
    Fmt.pr "%-14s LK:%-6s C11:%-6s  %s%s@." name (str lk) (str c11) why
      (if lk = expect_lk && c11 = expect_c11 then "" else "  (UNEXPECTED)")
  in
  show "LB+ctrl+mb" Exec.Check.Forbid Exec.Check.Allow
    "LK respects control dependencies; C11 does not";
  show "RWC+mbs" Exec.Check.Forbid Exec.Check.Allow
    "smp_mb restores SC; C11's seq_cst fence originally did not";
  show "WRC+wmb+acq" Exec.Check.Allow Exec.Check.Forbid
    "C11 has no true smp_wmb: the release fence also orders reads";

  Fmt.pr
    "@.RWC+mbs under the strengthened (RC11-style) fence: %s — the repair \
     discussed in Section 5.2@."
    (str
       (verdict
          (module Models.C11.Strengthened)
          (Harness.Battery.test_of (Harness.Battery.find "RWC+mbs"))));

  Fmt.pr "@.== Quantifying the LK/C11 delta over a generated sweep ==@.";
  let rng = Random.State.make [| 51 |] in
  let tests =
    Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 4
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:40 5
  in
  let disagreements =
    List.filter
      (fun t ->
        Models.C11.applicable t
        && verdict (module Models.C11) t <> verdict (module Lkmm) t)
      tests
  in
  Fmt.pr "%d generated tests, %d LK/C11 disagreements, e.g.:@."
    (List.length tests)
    (List.length disagreements);
  List.iteri
    (fun i (t : Litmus.Ast.t) ->
      if i < 8 then
        Fmt.pr "  %-45s LK:%-6s C11:%-6s@." t.name
          (str (verdict (module Lkmm) t))
          (str (verdict (module Models.C11) t)))
    disagreements
