(* RCU end to end (Sections 4 and 6):
   1. the RCU axiom forbids RCU-MP and RCU-deferred-free;
   2. the fundamental law agrees with the axiom (Theorem 1) on every
      candidate execution;
   3. the Figure 15 implementation, substituted for the primitives and run
      on the simulated architectures, never exhibits the forbidden
      outcomes — while broken variants do (given enough runs).

   Run with:  dune exec examples/rcu_verification.exe *)

let () =
  Fmt.pr "== 1. RCU verdicts under the LK model ==@.";
  List.iter
    (fun name ->
      let e = Harness.Battery.find name in
      let test = Harness.Battery.test_of e in
      Fmt.pr "%a@." Lkmm.Explain.pp_test_verdict test)
    [ "RCU-MP"; "RCU-deferred-free"; "RCU+2rscs+1gp"; "RCU+2rscs+2gp" ];

  Fmt.pr "@.== 2. Theorem 1: Pb+RCU axioms <=> fundamental law ==@.";
  let total = ref 0 in
  List.iter
    (fun name ->
      let test = Harness.Battery.test_of (Harness.Battery.find name) in
      List.iter
        (fun x ->
          incr total;
          assert (Lkmm.Rcu.theorem1_holds x))
        (Exec.of_test test))
    [ "RCU-MP"; "RCU-deferred-free"; "RCU+2rscs+1gp"; "RCU+2rscs+2gp";
      "SB+mb+sync" ];
  Fmt.pr "equivalence checked on %d candidate executions: OK@." !total;

  (* A precedes-function witness for one allowed execution, to make the
     law concrete. *)
  let test = Harness.Battery.test_of (Harness.Battery.find "RCU-MP") in
  let consistent =
    List.filter Lkmm.consistent (Exec.of_test test)
  in
  (match consistent with
  | x :: _ ->
      let c = Lkmm.Relations.make x in
      (match Lkmm.Rcu.law_witness c with
      | Some choices ->
          Fmt.pr "a consistent RCU-MP execution has %d (RSCS, GP) pair(s); \
                  witness: %s@."
            (List.length choices)
            (String.concat ", "
               (List.map
                  (fun (_, side) ->
                    match side with
                    | Lkmm.Rcu.Rscs_first -> "RSCS precedes GP"
                    | Lkmm.Rcu.Gp_first -> "GP precedes RSCS")
                  choices))
      | None -> assert false)
  | [] -> assert false);

  Fmt.pr "@.== 3. The Figure 15 implementation (Theorem 2, empirically) ==@.";
  let results = Harness.Rcu_study.run_all ~runs:300 () in
  List.iter (fun r -> Fmt.pr "%a@." Harness.Rcu_study.pp r) results;
  match Harness.Rcu_study.issues results with
  | [] ->
      Fmt.pr
        "@.faithful implementation: forbidden outcomes never observed — \
         consistent with Theorem 2@."
  | issues -> List.iter (Fmt.pr "PROBLEM: %s@.") issues
