(* The point of an executable model (Section 1.1): experiment with it.
   Here we edit lk.cat textually and watch verdicts move:

   1. a "no-Alpha" kernel: Section 7 notes smp_read_barrier_depends exists
      exclusively for Alpha's sake; if the kernel dropped Alpha, read-read
      address dependencies would order unconditionally
      (strong-rrdep = rrdep^+), and MP+wmb+addr would flip to Forbidden —
      exactly what happened upstream when READ_ONCE absorbed the barrier;

   2. a C11-flavoured weakening: drop control dependencies from rwdep and
      LB+ctrl+mb flips to Allowed — the paper's Figure 4 discrepancy,
      recreated inside the LK model itself.

   Run with:  dune exec examples/custom_model.exe *)

(* replace the first occurrence of [what] in [src] *)
let replace ~what ~with_ src =
  let rec go acc rest =
    let wl = String.length what in
    let rl = String.length rest in
    if rl < wl then acc ^ rest
    else if String.sub rest 0 wl = what then
      acc ^ with_ ^ String.sub rest wl (rl - wl)
    else go (acc ^ String.make 1 rest.[0]) (String.sub rest 1 (rl - 1))
  in
  go "" src

let verdict model test =
  Exec.Check.verdict_to_string
    (Exec.Check.run (Cat.to_check_model ~name:"custom" model) test)
      .Exec.Check.verdict

let battery name = Harness.Battery.test_of (Harness.Battery.find name)

let () =
  let lk = Cat.parse Cat.Stdmodels.lk in

  Fmt.pr "== 1. A kernel without Alpha ==@.";
  let no_alpha_src =
    replace ~what:"let strong-rrdep = rrdep^+ & rb-dep"
      ~with_:"let strong-rrdep = rrdep^+" Cat.Stdmodels.lk
  in
  let no_alpha = Cat.parse no_alpha_src in
  List.iter
    (fun name ->
      let t = battery name in
      Fmt.pr "%-20s LK:%-7s no-Alpha-LK:%s@." name (verdict lk t)
        (verdict no_alpha t))
    [ "MP+wmb+addr"; "MP+wmb+rcu-deref"; "MP+wmb+rmb" ];
  Fmt.pr
    "(dropping the rb-dep restriction makes the plain address dependency \
     order reads, as on every non-Alpha architecture)@.";

  Fmt.pr "@.== 2. Dropping control dependencies (C11-style) ==@.";
  let no_ctrl_src =
    replace ~what:"let rwdep = (dep | ctrl) & (R * W)"
      ~with_:"let rwdep = dep & (R * W)" Cat.Stdmodels.lk
  in
  let no_ctrl = Cat.parse no_ctrl_src in
  List.iter
    (fun name ->
      let t = battery name in
      Fmt.pr "%-20s LK:%-7s no-ctrl-LK:%-7s C11:%s@." name (verdict lk t)
        (verdict no_ctrl t)
        (Exec.Check.verdict_to_string
           (Exec.Check.run (module Models.C11) t).Exec.Check.verdict))
    [ "LB+ctrl+mb"; "LB+datas" ];
  Fmt.pr
    "(without ctrl in rwdep the LK model inherits C11's out-of-thin-air \
     weakness on Figure 4, while data dependencies still save LB+datas)@.";

  (* sanity: both variants still agree with stock LK on fence tests *)
  Fmt.pr "@.== sanity: the edits are surgical ==@.";
  List.iter
    (fun name ->
      let t = battery name in
      assert (verdict lk t = verdict no_alpha t);
      assert (verdict lk t = verdict no_ctrl t);
      Fmt.pr "%-20s unchanged (%s)@." name (verdict lk t))
    [ "SB+mbs"; "MP+wmb+rmb"; "RCU-MP"; "WRC+po-rel+rmb" ]
