(* Exploring the simulated hardware (the paper's Section 5.1 testbed,
   substituted by operational machines): which architectures exhibit which
   weak behaviours, the Alpha address-dependency quirk, and experimental
   soundness against the model.

   Run with:  dune exec examples/hardware_exploration.exe *)

let runs = 4_000

let () =
  Fmt.pr "== Weak-outcome observation per architecture (%d runs each) ==@."
    runs;
  Fmt.pr "%-22s %8s %8s %8s %8s %8s   LK@." "test" "SC" "X86" "ARMv7" "ARMv8"
    "Power8";
  List.iter
    (fun name ->
      let e = Harness.Battery.find name in
      let test = Harness.Battery.test_of e in
      let cells =
        List.map
          (fun arch ->
            let s = Hwsim.run_test arch ~runs ~seed:13 test in
            Printf.sprintf "%d" s.Hwsim.matched)
          [ Hwsim.Arch.sc; Hwsim.Arch.x86; Hwsim.Arch.armv7; Hwsim.Arch.armv8;
            Hwsim.Arch.power8 ]
      in
      Fmt.pr "%-22s %8s %8s %8s %8s %8s   %s@." name (List.nth cells 0)
        (List.nth cells 1) (List.nth cells 2) (List.nth cells 3)
        (List.nth cells 4)
        (Exec.Check.verdict_to_string e.Harness.Battery.lk))
    [ "SB"; "MP"; "WRC"; "RWC"; "PeterZ-No-Synchro"; "SB+mbs"; "MP+wmb+rmb" ];

  Fmt.pr
    "@.== Alpha: address dependencies are not enough (Section 3.2.2) ==@.";
  (* MP+wmb+addr: reader dereferences a pointer read from x.  Every
     architecture but Alpha respects the address dependency; Alpha needs
     the smp_read_barrier_depends that rcu_dereference provides. *)
  List.iter
    (fun name ->
      let e = Harness.Battery.find name in
      let test = Harness.Battery.test_of e in
      Fmt.pr "%-18s LK:%-7s" name
        (Exec.Check.verdict_to_string e.Harness.Battery.lk);
      List.iter
        (fun arch ->
          let s = Hwsim.run_test arch ~runs ~seed:13 test in
          Fmt.pr " %s:%d" s.Hwsim.arch s.Hwsim.matched)
        [ Hwsim.Arch.armv8; Hwsim.Arch.alpha ];
      Fmt.pr "@.")
    [ "MP+wmb+addr"; "MP+wmb+rcu-deref" ];
  Fmt.pr
    "(the weak outcome appears only on Alpha, and only without the \
     rb-dep barrier)@.";

  Fmt.pr "@.== Experimental soundness: sim outcomes within the model ==@.";
  let bad = ref 0 and cells = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      List.iter
        (fun arch ->
          incr cells;
          let s = Hwsim.run_test arch ~runs:500 ~seed:13 test in
          match Hwsim.unsound_outcomes Lkmm.oracle test s with
          | [] -> ()
          | _ ->
              incr bad;
              Fmt.pr "UNSOUND: %s on %s@." e.name arch.Hwsim.Arch.name)
        Hwsim.Arch.table5)
    Harness.Battery.all;
  Fmt.pr "%d test/arch cells checked, %d unsound@." !cells !bad
