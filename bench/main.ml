(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation and times each experiment with Bechamel.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- quick    # smaller simulation counts

   Experiments (see DESIGN.md for the index):
     table3/table4  primitive -> event mappings
     table5         model verdicts vs simulated hardware vs C11
     figures        Figures 2,4,5,6,7,9,10,11,13,14 with explanations
     theorem1       law <=> axiom equivalence sweep
     fig15          the RCU implementation study (Theorem 2) + ablations
     diy_sweep      generated-test sweep: soundness + model comparisons
     c11_delta      LK vs C11 disagreement quantification
     timings        Bechamel micro-benchmarks, one per experiment *)

let quick = Array.exists (fun a -> a = "quick") Sys.argv

let sim_runs = if quick then 2_000 else 20_000
let rcu_runs = if quick then 300 else 1_500

let section title =
  Fmt.pr "@.==================== %s ====================@." title

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: primitives and their events                         *)
(* ------------------------------------------------------------------ *)

let tables34 () =
  section "Table 3 & 4: LK primitives and corresponding events";
  let show body =
    let src =
      Printf.sprintf "C t\n{ x=0; }\nP0(int *x) {\n  %s\n}\nexists (x=0)" body
    in
    let test = Litmus.parse src in
    let x = List.hd (Exec.of_test test) in
    let events =
      Array.to_list x.Exec.events
      |> List.filter (fun (e : Exec.Event.t) -> e.tid = 0)
      |> List.map (fun (e : Exec.Event.t) ->
             Printf.sprintf "%s[%s]"
               (Exec.Event.dir_to_string e.dir)
               (Exec.Event.annot_to_string e.annot))
    in
    Fmt.pr "  %-42s %s@." body (String.concat ", " events)
  in
  List.iter show
    [
      "int r1 = READ_ONCE(x);";
      "WRITE_ONCE(x, 1);";
      "int r1 = smp_load_acquire(x);";
      "smp_store_release(x, 1);";
      "smp_rmb();";
      "smp_wmb();";
      "smp_mb();";
      "smp_read_barrier_depends();";
      "int r1 = xchg_relaxed(x, 1);";
      "int r1 = xchg_acquire(x, 1);";
      "int r1 = xchg_release(x, 1);";
      "int r1 = xchg(x, 1);";
      "int r1 = rcu_dereference(x);";
      "rcu_assign_pointer(x, 1);";
      "rcu_read_lock();";
      "rcu_read_unlock();";
      "synchronize_rcu();";
    ]

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section
    (Printf.sprintf
       "Table 5: verdicts vs simulated hardware (%d runs/cell) vs C11"
       sim_runs);
  let rows = Harness.Table5.rows ~runs:sim_runs ~seed:7 () in
  Fmt.pr "%a" Harness.Table5.pp rows;
  (match Harness.Table5.shape_issues ~check_observed:(not quick) rows with
  | [] -> Fmt.pr "@.shape check against the paper's Table 5: OK@."
  | issues ->
      Fmt.pr "@.shape issues:@.";
      List.iter (Fmt.pr "  %s@.") issues);
  rows

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures () =
  section "Figures 2, 4, 5, 6, 7, 9, 10, 11, 13, 14";
  Fmt.pr "%a" Harness.Figures.pp ();
  match Harness.Figures.issues () with
  | [] -> Fmt.pr "figure verdicts match the paper: OK@."
  | issues -> List.iter (Fmt.pr "ISSUE: %s@.") issues

(* ------------------------------------------------------------------ *)
(* Theorem 1                                                           *)
(* ------------------------------------------------------------------ *)

let theorem1 () =
  section "Theorem 1: fundamental law <=> Pb + RCU axioms";
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      List.iter
        (fun x ->
          incr total;
          if not (Lkmm.Rcu.theorem1_holds x) then incr bad)
        (Exec.of_test (Harness.Battery.test_of e)))
    Harness.Battery.all;
  let rng = Random.State.make [| 2018 |] in
  let gen =
    Diygen.sample ~vocabulary:Diygen.Edge.vocabulary ~rng
      ~count:(if quick then 20 else 60)
      4
  in
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          incr total;
          if not (Lkmm.Rcu.theorem1_holds x) then incr bad)
        (Exec.of_test t))
    gen;
  Fmt.pr
    "checked on %d candidate executions (battery + generated, incl. \
     synchronize_rcu edges): %d violations@."
    !total !bad

(* ------------------------------------------------------------------ *)
(* Figures 15/16: the RCU implementation                               *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  section "Figures 15/16: RCU implementation study (Theorem 2, empirical)";
  let results = Harness.Rcu_study.run_all ~runs:rcu_runs () in
  List.iter (fun r -> Fmt.pr "%a@." Harness.Rcu_study.pp r) results;
  (match Harness.Rcu_study.issues results with
  | [] ->
      Fmt.pr
        "faithful Figure-15 implementation: forbidden outcomes never \
         observed (Theorem 2); broken variants exhibit them@."
  | issues -> List.iter (Fmt.pr "ISSUE: %s@.") issues);
  results

(* ------------------------------------------------------------------ *)
(* diy sweep + C11 delta                                               *)
(* ------------------------------------------------------------------ *)

let diy_sweep () =
  section "Section 5: systematic test generation sweep";
  let rng = Random.State.make [| 7 |] in
  let tests =
    Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 4
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng
        ~count:(if quick then 30 else 120)
        5
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng
        ~count:(if quick then 10 else 40)
        6
  in
  let stats =
    Harness.Sweep.classify ~runs:(if quick then 150 else 400) tests
  in
  Fmt.pr "%a@." Harness.Sweep.pp stats;
  (match Harness.Sweep.strength_issues tests with
  | [] -> Fmt.pr "model-strength ordering SC >= TSO >= LK: OK@."
  | issues -> List.iter (Fmt.pr "ISSUE: %s@.") issues);
  (match stats.Harness.Sweep.unsound with
  | [] -> Fmt.pr "simulator soundness over the sweep: OK@."
  | l -> List.iter (fun (t, a) -> Fmt.pr "UNSOUND: %s on %s@." t a) l);
  tests

let c11_delta tests =
  section "Section 5.2: LK vs C11 disagreements over the sweep";
  let disag =
    List.filter
      (fun t ->
        Models.C11.applicable t
        &&
        let lk = (Exec.Check.run (module Lkmm) t).Exec.Check.verdict in
        let c11 = (Exec.Check.run (module Models.C11) t).Exec.Check.verdict in
        lk <> c11)
      tests
  in
  Fmt.pr "%d/%d generated tests distinguish LK from C11@." (List.length disag)
    (List.length tests);
  List.iteri
    (fun i (t : Litmus.Ast.t) ->
      if i < 10 then
        let lk = (Exec.Check.run (module Lkmm) t).Exec.Check.verdict in
        let c11 = (Exec.Check.run (module Models.C11) t).Exec.Check.verdict in
        Fmt.pr "  %-45s LK:%-6s C11:%-6s@." t.name
          (Exec.Check.verdict_to_string lk)
          (Exec.Check.verdict_to_string c11))
    disag

(* ------------------------------------------------------------------ *)
(* Ablation: native vs cat-interpreted model                           *)
(* ------------------------------------------------------------------ *)

let ablation_cat () =
  section "Ablation: native LK model vs cat-interpreted lk.cat";
  let lk_cat = Cat.parse Cat.Stdmodels.lk in
  let mismatches = ref 0 and execs = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      List.iter
        (fun x ->
          incr execs;
          if Lkmm.consistent x <> Cat.consistent lk_cat x then
            incr mismatches)
        (Exec.of_test (Harness.Battery.test_of e)))
    Harness.Battery.all;
  Fmt.pr "%d executions, %d native/cat disagreements@." !execs !mismatches

(* ------------------------------------------------------------------ *)
(* Bechamel timings                                                    *)
(* ------------------------------------------------------------------ *)

let timings () =
  section "Bechamel timings (one per experiment)";
  let open Bechamel in
  let mp = Harness.Battery.test_of (Harness.Battery.find "MP+wmb+rmb") in
  let rcu = Harness.Battery.test_of (Harness.Battery.find "RCU-MP") in
  let lk_cat = Cat.parse Cat.Stdmodels.lk in
  let tests =
    [
      Test.make ~name:"table5:lk-verdict(MP+wmb+rmb)"
        (Staged.stage (fun () -> ignore (Lkmm.check mp)));
      Test.make ~name:"table5:lk-cat-verdict(MP+wmb+rmb)"
        (Staged.stage (fun () ->
             ignore (Exec.Check.run (Cat.to_check_model ~name:"LK" lk_cat) mp)));
      Test.make ~name:"table5:c11-verdict(MP+wmb+rmb)"
        (Staged.stage (fun () ->
             ignore (Exec.Check.run (module Models.C11) mp)));
      Test.make ~name:"table5:sim-100-runs(MP,Power8)"
        (Staged.stage (fun () ->
             ignore
               (Hwsim.run_test Hwsim.Arch.power8 ~runs:100 ~seed:1
                  (Harness.Battery.test_of (Harness.Battery.find "MP")))));
      Test.make ~name:"fig10:rcu-axiom(RCU-MP)"
        (Staged.stage (fun () -> ignore (Lkmm.check rcu)));
      Test.make ~name:"theorem1:law-check(RCU-MP)"
        (Staged.stage (fun () ->
             List.iter
               (fun x -> ignore (Lkmm.Rcu.theorem1_holds x))
               (Exec.of_test rcu)));
      Test.make ~name:"fig15:impl-run(RCU-MP,Power8)"
        (Staged.stage (fun () ->
             ignore
               (Hwsim.run_program Hwsim.Arch.power8 ~runs:5 ~seed:1
                  (Kir.Rcu_impl.transform (Kir.of_litmus rcu)))));
      Test.make ~name:"diy:realize-one-cycle"
        (Staged.stage (fun () ->
             ignore
               (Diygen.Realize.test_of_cycle
                  [
                    Diygen.Edge.Fenced (Wmb, W, W);
                    Diygen.Edge.Rfe;
                    Diygen.Edge.Fenced (Rmb, R, R);
                    Diygen.Edge.Fre;
                  ])));
      Test.make ~name:"exec:enumerate(MP+wmb+rmb)"
        (Staged.stage (fun () -> ignore (Exec.of_test mp)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.3 in
    Benchmark.all
      (Benchmark.cfg ~quota ~kde:(Some 10) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let res = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "  %-42s %12.0f ns/run@." name est
          | _ -> Fmt.pr "  %-42s (no estimate)@." name)
        res)
    tests

(* Model-variant ablations: surgical edits to lk.cat flip exactly the
   verdicts they should (see examples/custom_model.ml). *)
let ablation_variants () =
  section "Ablation: lk.cat variants (no-Alpha, no-ctrl)";
  let replace ~what ~with_ src =
    let rec go acc rest =
      let wl = String.length what and rl = String.length rest in
      if rl < wl then acc ^ rest
      else if String.sub rest 0 wl = what then
        acc ^ with_ ^ String.sub rest wl (rl - wl)
      else go (acc ^ String.make 1 rest.[0]) (String.sub rest 1 (rl - 1))
    in
    go "" src
  in
  let verdict model test =
    Exec.Check.verdict_to_string
      (Exec.Check.run (Cat.to_check_model ~name:"v" model) test)
        .Exec.Check.verdict
  in
  let lk = Cat.parse Cat.Stdmodels.lk in
  let no_alpha =
    Cat.parse
      (replace ~what:"let strong-rrdep = rrdep^+ & rb-dep"
         ~with_:"let strong-rrdep = rrdep^+" Cat.Stdmodels.lk)
  in
  let no_ctrl =
    Cat.parse
      (replace ~what:"let rwdep = (dep | ctrl) & (R * W)"
         ~with_:"let rwdep = dep & (R * W)" Cat.Stdmodels.lk)
  in
  let show name =
    let t = Harness.Battery.test_of (Harness.Battery.find name) in
    Fmt.pr "  %-20s LK:%-7s no-Alpha:%-7s no-ctrl:%-7s@." name (verdict lk t)
      (verdict no_alpha t) (verdict no_ctrl t)
  in
  List.iter show [ "MP+wmb+addr"; "LB+ctrl+mb"; "LB+datas"; "MP+wmb+rmb" ]

let () =
  tables34 ();
  ignore (table5 ());
  figures ();
  theorem1 ();
  ignore (fig15 ());
  let tests = diy_sweep () in
  c11_delta tests;
  ablation_cat ();
  ablation_variants ();
  timings ();
  Fmt.pr "@.bench: all experiments complete@."
