let () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      let r = Lkmm.check test in
      let ok = r.Exec.Check.verdict = e.lk in
      Printf.printf "%-22s expected %-6s got %-6s %s (cands=%d cons=%d)\n"
        e.name
        (Exec.Check.verdict_to_string e.lk)
        (Exec.Check.verdict_to_string r.Exec.Check.verdict)
        (if ok then "OK" else "** MISMATCH **")
        r.n_candidates r.n_consistent)
    Harness.Battery.all
