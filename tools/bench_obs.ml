(* Benchmark for the observability layer: the cost of the collector on
   the BENCH_rel corpus battery, disabled and enabled.  Writes
   BENCH_obs.json.

     dune exec tools/bench_obs.exe [-- OUT.json]
     dune exec tools/bench_obs.exe -- --smoke

   Disabled is the case that matters: every probe in the checking path
   compiles to a load of [Obs.on] and a branch, and the acceptance gate
   is <1% overhead on the full corpus battery (native LK + cached cat
   LK, best-of-3) relative to the same battery with the probes' code
   paths untouched — measured against the committed BENCH_rel numbers.
   Enabled overhead (spans + counters + per-candidate histograms) is
   recorded for documentation, not gated: tracing a run is an explicit
   opt-in.

   Smoke mode (for CI) re-measures the battery on the reduced slice and
   fails if enabling the collector costs more than 25% on the same
   slice — a coarse guard that a probe did not land on a per-word inner
   loop. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

let corpus_dir =
  List.find_opt Sys.file_exists [ "corpus"; "../corpus"; "../../../corpus" ]

let load_corpus ?(stride = 1) () =
  match corpus_dir with
  | None -> failwith "corpus directory not found"
  | Some dir ->
      read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             Litmus.parse (read_file (Filename.concat dir file)))

let lk_cat = lazy (Lazy.force Cat.lk)

(* The same battery BENCH_rel times: native LK + cached cat LK per test. *)
let battery tests =
  let cat_model = Cat.to_check_model ~name:"LK(cat)" (Lazy.force lk_cat) in
  best_of 3 (fun () ->
      List.iter
        (fun t ->
          ignore (Sys.opaque_identity (Exec.Check.run (module Lkmm) t));
          ignore (Sys.opaque_identity (Exec.Check.run cat_model t)))
        tests)

let timed_pair tests =
  Obs.set_enabled false;
  let disabled_s = battery tests in
  Obs.set_enabled true;
  Obs.reset ();
  let enabled_s = battery tests in
  let spans = List.length (Obs.spans ()) + Obs.dropped () in
  Obs.set_enabled false;
  Obs.reset ();
  (disabled_s, enabled_s, spans)

let smoke_stride = 5

let smoke () =
  let tests = load_corpus ~stride:smoke_stride () in
  let disabled_s, enabled_s, _ = timed_pair tests in
  let ratio = enabled_s /. disabled_s in
  Printf.printf
    "bench_obs smoke: %d tests, disabled %.4f s, enabled %.4f s (ratio %.3f)\n"
    (List.length tests) disabled_s enabled_s ratio;
  if ratio > 1.25 then begin
    prerr_endline
      "bench_obs: FAIL: enabling the collector costs more than 25% on the \
       corpus slice";
    exit 1
  end

let full out =
  let tests = load_corpus () in
  let disabled_s, enabled_s, spans = timed_pair tests in
  let sm_tests = load_corpus ~stride:smoke_stride () in
  let sm_disabled_s, sm_enabled_s, _ = timed_pair sm_tests in
  let json =
    Printf.sprintf
      {|{
  "description": "cost of the lib/obs collector on the BENCH_rel corpus battery (native LK + cached cat LK per test, best-of-3): disabled = every probe is a load of Obs.on and a branch; enabled = spans + counters + per-candidate prefilter/model timing histograms into the ring buffer",
  "corpus": {
    "n_tests": %d,
    "disabled_s": %.4f,
    "enabled_s": %.4f,
    "enabled_overhead_ratio": %.3f,
    "spans_recorded": %d
  },
  "smoke": { "stride": %d, "disabled_s": %.4f, "enabled_s": %.4f, "ratio": %.3f },
  "gates": {
    "disabled_vs_bench_rel": "compare corpus.disabled_s against BENCH_rel.json corpus times for the same battery; must be within 1%%",
    "enabled_smoke_ratio_max": 1.25
  }
}
|}
      (List.length tests) disabled_s enabled_s
      (enabled_s /. disabled_s)
      spans smoke_stride sm_disabled_s sm_enabled_s
      (sm_enabled_s /. sm_disabled_s)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_obs.json"
