(* Measures the cost (or gain) of process isolation on the shipped
   corpus: the same sweep through the in-process batch runner, a 1-job
   pool (pure fork/marshal overhead) and a 4-job pool.  Writes
   BENCH_pool.json.

     dune exec tools/bench_pool.exe [-- OUT.json]

   On a multi-core machine -j 4 amortises the fork overhead into a
   speedup; the report records the visible core count so single-core
   results (where -j 4 can only add overhead) read honestly. *)

let cores () =
  (* no nproc binding in the stdlib: count processor lines in
     /proc/cpuinfo, defaulting to 1 *)
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_pool.json"
  in
  let dir = "corpus" in
  let items =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
    |> List.map (fun f ->
           {
             Harness.Runner.id = f;
             source = `File (Filename.concat dir f);
             expected = None;
           })
  in
  let limits = Exec.Budget.default in
  let pool jobs () =
    Harness.Pool.run
      ~config:{ Harness.Pool.default with Harness.Pool.jobs; limits }
      items
  in
  let in_process = best_of 3 (fun () -> Harness.Runner.run ~limits items) in
  let pool_j1 = best_of 3 (pool 1) in
  (* A single visible core makes the -j 4 comparison meaningless (the
     extra workers only add scheduling overhead), so it is skipped
     outright rather than recorded as a bogus speedup: the columns come
     out null and downstream readers can tell "not measured" from
     "measured slow". *)
  let pool_j4 = if cores () > 1 then Some (best_of 3 (pool 4)) else None in
  let j4_columns =
    match pool_j4 with
    | Some t ->
        Printf.sprintf "\"pool_j4_s\": %.4f,\n  \"j4_vs_j1_speedup\": %.2f" t
          (pool_j1 /. t)
    | None -> "\"pool_j4_s\": null,\n  \"j4_vs_j1_speedup\": null"
  in
  let json =
    Printf.sprintf
      {|{
  "description": "corpus sweep wall-clock: in-process runner vs process-isolated pool; best of 3 runs",
  "n_items": %d,
  "visible_cores": %d,
  "in_process_s": %.4f,
  "pool_j1_s": %.4f,
  %s,
  "isolation_overhead_vs_in_process_pct": %.2f,
  "note": "the -j 4 columns are measured only when more than one core is visible; on a single core the comparison is meaningless and is skipped (null)"
}
|}
      (List.length items) (cores ()) in_process pool_j1 j4_columns
      (100.0 *. (pool_j1 -. in_process) /. in_process)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json
