(* Fault-injection driver for the checking service (Harness.Serve) and
   the campaign orchestrator (Harness.Campaign).

     dune exec tools/chaos.exe -- --seconds 60 --seed 42
     dune exec tools/chaos.exe -- --campaign --camp-seeds 20000 --kills 6

   Service mode forks an lkserve daemon (chaos ops enabled, verdict
   cache journalled) and replays corpus tests at it while injecting
   every fault the service claims to survive:

   - chaos_kill / chaos_wedge requests that cost worker domains;
   - malformed, oversized and deadline-zero requests;
   - pipelined bursts past the admission queue bound;
   - kill -9 of the whole daemon, truncation of the cache journal at a
     random byte offset (a torn write), and restart.

   Every check response carrying a verdict is compared against ground
   truth computed in-process through the same Runner the batch tools
   use.  Acceptance: zero wrong verdicts, zero unexpected daemon
   deaths, every response inside the structured taxonomy, and at least
   one verdict served from the recovered cache after a restart.

   Campaign mode first runs a campaign uninterrupted (with injected
   poison and wedge seeds exercising the retry/bisect/quarantine
   ladder), then runs the same campaign while repeatedly kill -9ing
   the orchestrator mid-flight and tearing the manifest journal at a
   random byte offset before each resume.  Acceptance: the interrupted
   campaign converges and its mined report is byte-identical to the
   uninterrupted run's — zero lost or duplicated verdicts — with
   exactly the injected seeds quarantined.  Exits non-zero on any
   violation. *)

module S = Harness.Serve
module Pr = Harness.Proto
module R = Harness.Runner
module B = Exec.Budget
module J = Harness.Journal.Json

let usage =
  "chaos [--seconds N] [--seed N] [--corpus DIR] [--tests N] [--backend E]\n\
  \       chaos --campaign [--camp-seeds N] [--kills N] [--seed N]"

let seconds = ref 30.0
let seed = ref 42
let corpus_dir = ref "corpus"
let n_tests = ref 24
let campaign_mode = ref false
let camp_seeds = ref 6000
let kills = ref 6

(* engine for both the daemon and the in-process ground truth, so a
   sat soak cross-checks the symbolic backend against itself under
   fault injection (verdicts are engine-independent, so any engine's
   truth convicts any engine's daemon) *)
let backend = ref Exec.Check.Batch

let () =
  let rec parse = function
    | [] -> ()
    | "--seconds" :: v :: rest ->
        seconds := float_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--corpus" :: v :: rest ->
        corpus_dir := v;
        parse rest
    | "--tests" :: v :: rest ->
        n_tests := int_of_string v;
        parse rest
    | "--campaign" :: rest ->
        campaign_mode := true;
        parse rest
    | "--camp-seeds" :: v :: rest ->
        camp_seeds := int_of_string v;
        parse rest
    | "--kills" :: v :: rest ->
        kills := int_of_string v;
        parse rest
    | "--backend" :: v :: rest ->
        (backend :=
           match v with
           | "enum" -> Exec.Check.Enum
           | "batch" -> Exec.Check.Batch
           | "sat" -> Exec.Check.Sat
           | _ ->
               prerr_endline ("chaos: unknown backend " ^ v);
               exit 124);
        parse rest
    | a :: _ ->
        prerr_endline ("chaos: unknown argument " ^ a ^ "\nusage: " ^ usage);
        exit 124
  in
  parse (List.tl (Array.to_list Sys.argv))

let rng = Random.State.make [| !seed |]
let pick l = List.nth l (Random.State.int rng (List.length l))

(* ------------------------------------------------------------------ *)
(* Ground truth                                                        *)
(* ------------------------------------------------------------------ *)

type truth = { name : string; source : string; verdict : string }

let ground_truth () =
  let files =
    Sys.readdir !corpus_dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
  in
  if files = [] then begin
    prerr_endline ("chaos: no .litmus files in " ^ !corpus_dir);
    exit 124
  end;
  (* a seed-stable sample: shuffle by random keys, take the prefix *)
  let sample =
    files
    |> List.map (fun f -> (Random.State.bits rng, f))
    |> List.sort compare |> List.map snd
    |> List.filteri (fun i _ -> i < !n_tests)
  in
  let limits = B.limits ~timeout:10.0 () in
  let oracle = Lkmm.oracle in
  List.filter_map
    (fun f ->
      let source = R.read_file (Filename.concat !corpus_dir f) in
      let entry =
        R.run_item ~limits ~backend:!backend ~oracle
          { R.id = f; source = `Text source; expected = None }
      in
      match entry.R.status with
      | R.Pass Exec.Check.Allow -> Some { name = f; source; verdict = "Allow" }
      | R.Pass Exec.Check.Forbid ->
          Some { name = f; source; verdict = "Forbid" }
      | _ -> None (* non-deterministic under budget: useless as truth *))
    sample

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let socket = Filename.temp_file "chaos" ".sock"
let journal = Filename.temp_file "chaos" ".jsonl"

(* every daemon incarnation writes flight-<pid>.jsonl here; the post-run
   audit asserts each injected kill/wedge left a post-mortem naming it *)
let flight_dir =
  let d = Filename.temp_file "chaos" ".flight" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let config =
  {
    S.default with
    S.socket;
    workers = 2;
    queue_bound = 8;
    limits = B.limits ~timeout:2.0 ~max_candidates:200_000 ();
    default_timeout = 2.0;
    max_line = 1 lsl 16;
    wedge_grace = 0.4;
    backoff = 0.02;
    cache_journal = Some journal;
    chaos_ops = true;
    backend = !backend;
    flight_dir = Some flight_dir;
    flight_interval = 0.2;
  }

(* Every span item mentioned by any checkpoint of any flight journal
   under [dir] — the set a post-mortem audit checks victims against.
   Torn tails are dropped by the tolerant reader, like any journal. *)
let flight_span_items dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f ->
             String.length f > 7 && String.sub f 0 7 = "flight-")
      |> List.concat_map (fun f ->
             Harness.Journal.load_json (Filename.concat dir f)
             |> List.concat_map (fun j ->
                    match J.mem "spans" j with
                    | Some (J.Arr spans) ->
                        List.filter_map
                          (fun s -> Option.bind (J.mem "item" s) J.str)
                          spans
                    | _ -> []))

let start_daemon () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code = try S.run ~config () with _ -> 125 in
      Unix._exit code
  | pid -> pid

let connect_retry () =
  let stop = Unix.gettimeofday () +. 30. in
  let rec go () =
    match S.Client.connect socket with
    | c -> c
    | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () > stop then failwith "daemon did not come up"
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

(* Has the daemon died behind our back? *)
let daemon_alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false

(* ------------------------------------------------------------------ *)
(* Scoreboard                                                          *)
(* ------------------------------------------------------------------ *)

let wrong_verdicts = ref 0
let daemon_deaths = ref 0
let unanswered = ref 0
let restart_hits = ref 0
let restarts = ref 0
let classes = Hashtbl.create 8
let actions = Hashtbl.create 8

(* trace ids of injected kills and wedges, each of which must be found
   in a flight checkpoint at the end of the run *)
let injected_traces = ref []
let inject_seq = ref 0

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let note_response action t_opt = function
  | Error e ->
      incr unanswered;
      Printf.eprintf "chaos: UNANSWERED %s: %s\n%!" action e
  | Ok (r : Pr.response) -> (
      bump classes (Pr.cls_name r.Pr.rsp_cls);
      match (t_opt, r.Pr.rsp_cls, r.Pr.rsp_verdict) with
      | Some t, (Pr.Ok_ | Pr.Fail), Some v when v <> t.verdict ->
          incr wrong_verdicts;
          Printf.eprintf "chaos: WRONG VERDICT %s: daemon says %s, truth %s\n%!"
            t.name v t.verdict
      | Some t, (Pr.Ok_ | Pr.Fail), None ->
          incr wrong_verdicts;
          Printf.eprintf "chaos: WRONG: completed class without verdict (%s)\n%!"
            t.name
      | _ -> () (* unknown / overloaded / error carry no verdict claim *))

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let check_action truths ctl =
  let t = pick truths in
  bump actions "check";
  (* sometimes assert the truth, sometimes contradict it — the class
     must track the expectation either way *)
  let expected, want_cls =
    match Random.State.int rng 3 with
    | 0 -> (None, None)
    | 1 ->
        ( Some
            (if t.verdict = "Allow" then Exec.Check.Allow else Exec.Check.Forbid),
          Some Pr.Ok_ )
    | _ ->
        ( Some
            (if t.verdict = "Allow" then Exec.Check.Forbid else Exec.Check.Allow),
          Some Pr.Fail )
  in
  let r = S.Client.check ctl ?expected t.source in
  note_response "check" (Some t) r;
  match (r, want_cls) with
  | Ok rr, Some want
    when rr.Pr.rsp_cls <> want
         && (rr.Pr.rsp_cls = Pr.Ok_ || rr.Pr.rsp_cls = Pr.Fail) ->
      incr wrong_verdicts;
      Printf.eprintf "chaos: WRONG CLASS %s: got %s, wanted %s\n%!" t.name
        (Pr.cls_name rr.Pr.rsp_cls) (Pr.cls_name want)
  | _ -> ()

(* An overloaded rejection never reached a worker, so no checkpoint can
   name it; every other response means the job was dispatched at least
   once and the job-start checkpoint must have hit the flight journal
   before the worker died. *)
let note_injected trace = function
  | Ok (r : Pr.response) when r.Pr.rsp_cls <> Pr.Overloaded ->
      injected_traces := trace :: !injected_traces
  | _ -> ()

let kill_action ctl =
  bump actions "chaos_kill";
  incr inject_seq;
  let trace = Printf.sprintf "chaos-kill-%d" !inject_seq in
  let r = S.Client.chaos_kill ~trace ctl in
  note_injected trace r;
  note_response "chaos_kill" None r

let wedge_action ctl =
  bump actions "chaos_wedge";
  incr inject_seq;
  let trace = Printf.sprintf "chaos-wedge-%d" !inject_seq in
  let r = S.Client.chaos_wedge ~trace ctl (3.0 +. Random.State.float rng 5.0) in
  note_injected trace r;
  note_response "chaos_wedge" None r

let malformed_action ctl =
  bump actions "malformed";
  let garbage =
    pick
      [
        "{\"id\": \"m\", \"op\": ";
        "not json at all";
        "{\"op\": \"check\"}";
        "{\"id\": \"m\", \"op\": \"check\"}";
        "[1, 2, 3]";
        "{\"id\": \"m\", \"op\": \"nonsense\"}";
      ]
  in
  S.Client.send ctl garbage;
  note_response "malformed" None (S.Client.recv ctl)

let oversized_action ctl =
  bump actions "oversized";
  S.Client.send ctl
    ("{\"id\": \"big\", \"op\": \"check\", \"test\": \""
    ^ String.make (config.S.max_line + 1024) 'x');
  note_response "oversized" None (S.Client.recv ctl)

let deadline_zero_action truths ctl =
  bump actions "deadline_zero";
  let t = pick truths in
  note_response "deadline_zero" (Some t)
    (S.Client.check ctl ~timeout_ms:0 t.source)

(* Pipeline a burst past the queue bound on a dedicated connection; all
   must be answered (some overloaded), verdicts must stay correct. *)
let burst_action truths =
  bump actions "burst";
  let c = connect_retry () in
  let n = config.S.queue_bound * 2 in
  let sent =
    List.init n (fun i ->
        let t = pick truths in
        S.Client.send c
          (Pr.check_line ~id:(Printf.sprintf "b%d" i) t.source);
        (Printf.sprintf "b%d" i, t))
  in
  List.iter
    (fun _ ->
      match S.Client.recv c with
      | Error e ->
          incr unanswered;
          Printf.eprintf "chaos: UNANSWERED burst: %s\n%!" e
      | Ok r ->
          let t = List.assoc_opt r.Pr.rsp_id sent in
          note_response "burst" t (Ok r))
    sent;
  S.Client.close c

(* kill -9 the daemon, tear the cache journal, restart, and check that
   recovered verdicts (a) still serve and (b) are still right. *)
let restart_action truths pid =
  bump actions "restart";
  incr restarts;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* tear the journal tail at a random offset (first restart keeps the
     file whole so at least one recovery is loss-free) *)
  let size =
    try (Unix.stat journal).Unix.st_size with Unix.Unix_error _ -> 0
  in
  if !restarts > 1 && size > 0 then begin
    let keep = Random.State.int rng (size + 1) in
    let fd = Unix.openfile journal [ Unix.O_WRONLY ] 0 in
    Unix.ftruncate fd keep;
    Unix.close fd
  end;
  let pid = start_daemon () in
  let ctl = connect_retry () in
  (* replay the whole truth sample: answers must be correct whether they
     come from the recovered cache or from a fresh check *)
  List.iter
    (fun t ->
      match S.Client.check ctl t.source with
      | Ok r ->
          note_response "post-restart" (Some t) (Ok r);
          if r.Pr.rsp_cache_hit = Some true then incr restart_hits
      | Error e ->
          incr unanswered;
          Printf.eprintf "chaos: UNANSWERED post-restart: %s\n%!" e)
    truths;
  (pid, ctl)

(* ------------------------------------------------------------------ *)
(* Campaign mode                                                       *)
(* ------------------------------------------------------------------ *)

module Camp = Harness.Campaign
module Mf = Harness.Manifest

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* One orchestrator process: runs the campaign to completion (or until
   shot) and leaves the mined report next to the manifest. *)
let fork_orchestrator cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code =
        match Camp.run cfg with
        | Ok rep ->
            write_whole
              (Filename.concat cfg.Camp.dir "report.json")
              (Camp.report_to_json rep);
            if rep.Camp.totals.Camp.n_quarantined > 0 then 4 else 0
        | Error _ -> 120
        | exception _ -> 121
      in
      Unix._exit code
  | pid -> pid

(* A manifest truncation can erase the Lease record of a live wedge
   worker, so no resume ever learns its pid: it would sleep forever,
   holding stdout open.  The whole chaos tree shares a process group so
   such leaks can be swept before exiting. *)
let sweep_orphans () =
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  try Unix.kill (-(Unix.getpid ())) Sys.sigterm with Unix.Unix_error _ -> ()

let campaign_chaos () =
  ignore (Unix.alarm 1800);
  (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
  let tmp = Filename.temp_file "chaos_campaign" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  (* a poison seed (worker crashes) and a wedge seed (worker hangs past
     its lease): both ladders must narrow to quarantined singletons, in
     the ground truth and under chaos alike *)
  let poison = !camp_seeds / 3 and wedge = 2 * !camp_seeds / 3 in
  let cfg dir =
    {
      Camp.default with
      Camp.dir;
      size = 4;
      seed_lo = 0;
      seed_hi = !camp_seeds;
      shard_size = max 8 (!camp_seeds / 24);
      jobs = 4;
      lease_timeout = 0.5;
      poison = [ poison ];
      wedge = [ wedge ];
      log = ignore;
    }
  in
  Printf.printf
    "chaos: campaign ground truth over %d seeds (poison %d, wedge %d)...\n%!"
    !camp_seeds poison wedge;
  let gt_dir = Filename.concat tmp "truth" in
  let gt =
    match Camp.run (cfg gt_dir) with
    | Ok rep -> Camp.report_to_json rep
    | Error e ->
        prerr_endline ("chaos: ground truth failed: " ^ e);
        exit 124
  in
  let ch_dir = Filename.concat tmp "chaos" in
  (* the chaos run flies with the recorder armed: the poison and wedge
     workers must leave post-mortems naming their victim seeds, and the
     orchestrator must journal live metrics alongside the manifest *)
  let ch_cfg =
    { (cfg ch_dir) with Camp.flight = true; metrics_interval = 0.25 }
  in
  let kills_done = ref 0 and truncations = ref 0 and resumes = ref 0 in
  let finished = ref false in
  while not !finished do
    incr resumes;
    let pid = fork_orchestrator ch_cfg in
    if !kills_done < !kills then begin
      Unix.sleepf (0.2 +. Random.State.float rng 2.0);
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          (* mid-flight: shoot the orchestrator (its workers become
             orphans the next resume must hunt down), then tear the
             manifest at a random byte offset — a torn write *)
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          incr kills_done;
          let mpath = Camp.manifest_path ch_dir in
          let size =
            try (Unix.stat mpath).Unix.st_size with Unix.Unix_error _ -> 0
          in
          if size > 0 then begin
            let keep = Random.State.int rng (size + 1) in
            let fd = Unix.openfile mpath [ Unix.O_WRONLY ] 0 in
            Unix.ftruncate fd keep;
            Unix.close fd;
            incr truncations;
            Printf.printf "chaos: kill -9 #%d, manifest torn %d -> %d\n%!"
              !kills_done size keep
          end
          else Printf.printf "chaos: kill -9 #%d (no manifest yet)\n%!"
                 !kills_done
      | _, Unix.WEXITED (0 | 4) -> finished := true
      | _, st ->
          Printf.eprintf "chaos: orchestrator died by itself (%s)\n%!"
            (match st with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)
    end
    else begin
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED (0 | 4) -> finished := true
      | _, st ->
          Printf.eprintf "chaos: final run failed (%s)\n%!"
            (match st with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s);
          sweep_orphans ();
          rm_rf tmp;
          exit 1
    end
  done;
  let ch = read_whole (Filename.concat ch_dir "report.json") in
  let violations = ref [] in
  if ch <> gt then begin
    violations := "mined report diverged from uninterrupted run" :: !violations;
    Printf.eprintf "chaos: DIVERGED\n  truth: %s\n  chaos: %s\n%!" gt ch
  end;
  (match Mf.load (Camp.manifest_path ch_dir) with
  | Error e -> violations := ("manifest unreadable: " ^ e) :: !violations
  | Ok m ->
      let q =
        List.filter_map
          (fun (s : Mf.shard) ->
            match s.state with
            | Mf.Quarantined _ -> Some (s.lo, s.hi)
            | _ -> None)
          (Mf.shards m)
        |> List.sort compare
      in
      let expect =
        List.sort compare [ (poison, poison + 1); (wedge, wedge + 1) ]
      in
      if q <> expect then
        violations :=
          Printf.sprintf "quarantined %s, expected exactly the injected seeds"
            (String.concat ","
               (List.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) q))
          :: !violations);
  if !kills_done = 0 then
    violations := "campaign finished before any kill landed" :: !violations;
  (* flight audit: both injected worker deaths left post-mortems naming
     their seeds (each quarantine took several attempts; any one
     checkpoint naming the seed is evidence enough) *)
  let items = flight_span_items ch_dir in
  let wants =
    [ Printf.sprintf "seed:%d" poison; Printf.sprintf "seed:%d" wedge ]
  in
  let missing_pm = List.filter (fun w -> not (List.mem w items)) wants in
  if missing_pm <> [] then
    violations :=
      ("no post-mortem for injected " ^ String.concat ", " missing_pm)
      :: !violations;
  let snapshots =
    List.filter
      (fun j ->
        match Option.bind (J.mem "schema" j) J.str with
        | Some "lkmetrics-1" -> true
        | _ -> false)
      (Harness.Journal.load_json (Filename.concat ch_dir "metrics.jsonl"))
  in
  if snapshots = [] then
    violations := "no lkmetrics-1 snapshot journalled" :: !violations;
  sweep_orphans ();
  rm_rf tmp;
  Printf.printf
    "\nchaos: campaign over %d seeds: %d kills, %d manifest truncations, %d \
     resumes\n\
     report identical to uninterrupted run: %b (zero lost or duplicated \
     verdicts)\n\
     post-mortems: %d/2 injected worker deaths recovered; %d metrics \
     snapshots\n%!"
    !camp_seeds !kills_done !truncations !resumes (ch = gt)
    (2 - List.length missing_pm)
    (List.length snapshots);
  if !violations <> [] then begin
    Printf.eprintf "chaos: FAIL — %s\n%!" (String.concat "; " !violations);
    exit 1
  end;
  Printf.printf "chaos: PASS — campaign survives kill -9 and torn manifests\n%!";
  exit 0

(* ------------------------------------------------------------------ *)
(* Main loop (service mode)                                            *)
(* ------------------------------------------------------------------ *)

let () =
  if !campaign_mode then campaign_chaos ();
  (* a wedged driver is a failed run, not a hung CI job *)
  ignore (Unix.alarm (int_of_float !seconds * 3 + 120));
  Printf.printf "chaos: computing ground truth (%d tests)...\n%!" !n_tests;
  let truths = ground_truth () in
  Printf.printf "chaos: %d deterministic truths; running %.0fs with seed %d\n%!"
    (List.length truths) !seconds !seed;
  if List.length truths < 4 then begin
    prerr_endline "chaos: not enough deterministic tests to differentiate";
    exit 124
  end;
  Sys.remove socket;
  (try Sys.remove journal with Sys_error _ -> ());
  let pid = ref (start_daemon ()) in
  let ctl = ref (connect_retry ()) in
  let stop_at = Unix.gettimeofday () +. !seconds in
  let last_restart = ref (Unix.gettimeofday ()) in
  while Unix.gettimeofday () < stop_at do
    if not (daemon_alive !pid) then begin
      incr daemon_deaths;
      Printf.eprintf "chaos: DAEMON DIED unexpectedly — restarting\n%!";
      pid := start_daemon ();
      ctl := connect_retry ()
    end;
    (* roughly every 8 wall seconds, a kill -9 + torn-journal restart *)
    if Unix.gettimeofday () -. !last_restart > 8.0 then begin
      let p, c = restart_action truths !pid in
      S.Client.close !ctl;
      pid := p;
      ctl := c;
      last_restart := Unix.gettimeofday ()
    end
    else begin
      match Random.State.int rng 100 with
      | n when n < 55 -> check_action truths !ctl
      | n when n < 65 -> kill_action !ctl
      | n when n < 72 -> wedge_action !ctl
      | n when n < 80 -> malformed_action !ctl
      | n when n < 86 -> oversized_action !ctl
      | n when n < 92 -> deadline_zero_action truths !ctl
      | _ -> burst_action truths
    end
  done;
  (* final health check and graceful shutdown *)
  let healthy =
    match S.Client.ping !ctl with Ok r -> r.Pr.rsp_cls = Pr.Ok_ | Error _ -> false
  in
  if not healthy then begin
    incr daemon_deaths;
    Printf.eprintf "chaos: daemon unresponsive at end of run\n%!"
  end;
  ignore (S.Client.shutdown !ctl);
  S.Client.close !ctl;
  let rec reap tries =
    if tries = 0 then begin
      Unix.kill !pid Sys.sigkill;
      ignore (Unix.waitpid [] !pid);
      incr daemon_deaths;
      prerr_endline "chaos: daemon did not drain on shutdown"
    end
    else
      match Unix.waitpid [ Unix.WNOHANG ] !pid with
      | 0, _ ->
          Unix.sleepf 0.1;
          reap (tries - 1)
      | _, Unix.WEXITED 0 -> ()
      | _, _ ->
          incr daemon_deaths;
          prerr_endline "chaos: daemon exited abnormally on shutdown"
  in
  reap 100;
  (* post-mortem audit: every dispatched kill/wedge must be named, by
     its trace id, in some checkpoint of some incarnation's flight
     journal — the crash left readable evidence *)
  let items = flight_span_items flight_dir in
  let missing_pm =
    List.filter (fun tr -> not (List.mem tr items)) !injected_traces
  in
  let n_injected = List.length !injected_traces in
  List.iter
    (fun tr -> Printf.eprintf "chaos: NO POST-MORTEM for %s\n%!" tr)
    missing_pm;
  rm_rf flight_dir;
  (try Sys.remove journal with Sys_error _ -> ());
  (try Sys.remove socket with Sys_error _ -> ());
  let total = Hashtbl.fold (fun _ n acc -> n + acc) classes 0 in
  Printf.printf "\nchaos: %d responses over %d restarts\n" total !restarts;
  Hashtbl.iter (fun k n -> Printf.printf "  class %-12s %6d\n" k n) classes;
  Printf.printf "actions:\n";
  Hashtbl.iter (fun k n -> Printf.printf "  %-18s %6d\n" k n) actions;
  Printf.printf
    "wrong verdicts:      %d\n\
     unexpected deaths:   %d\n\
     unanswered:          %d\n\
     post-restart hits:   %d\n\
     post-mortems:        %d/%d dispatched kills/wedges recovered\n%!"
    !wrong_verdicts !daemon_deaths !unanswered !restart_hits
    (n_injected - List.length missing_pm)
    n_injected;
  let violations =
    (if !wrong_verdicts > 0 then [ "wrong verdicts" ] else [])
    @ (if !daemon_deaths > 0 then [ "daemon deaths" ] else [])
    @ (if !unanswered > 0 then [ "unanswered requests" ] else [])
    @ (if missing_pm <> [] then [ "missing post-mortems" ] else [])
    @
    if !restarts > 0 && !restart_hits = 0 then
      [ "no cache hit survived any restart" ]
    else []
  in
  if violations <> [] then begin
    Printf.eprintf "chaos: FAIL — %s\n%!" (String.concat ", " violations);
    exit 1
  end;
  Printf.printf "chaos: PASS — zero wrong verdicts, zero daemon deaths\n%!"
