(* Cross-check: the cat-interpreted models agree with the native OCaml
   models on every battery test. *)
let () =
  let models =
    [
      ("LK", Cat.Stdmodels.lk, (module Lkmm : Exec.Check.MODEL));
      ("SC", Cat.Stdmodels.sc, (module Models.Sc));
      ("x86-TSO", Cat.Stdmodels.tso, (module Models.Tso));
      ("C11", Cat.Stdmodels.c11, (module Models.C11));
      ("C11-psc", Cat.Stdmodels.c11_psc, (module Models.C11.Strengthened));
    ]
  in
  let mismatches = ref 0 in
  List.iter
    (fun (name, src, native) ->
      let cat_model = Cat.parse src in
      List.iter
        (fun (e : Harness.Battery.entry) ->
          let test = Harness.Battery.test_of e in
          let module N = (val native : Exec.Check.MODEL) in
          List.iter
            (fun x ->
              let a = N.consistent x and b = Cat.consistent cat_model x in
              if a <> b then begin
                incr mismatches;
                Printf.printf "%s / %s: native=%b cat=%b\n" name e.name a b
              end)
            (Exec.of_test test))
        Harness.Battery.all;
      Printf.printf "%-8s checked\n%!" name)
    models;
  Printf.printf "mismatches: %d\n" !mismatches;
  exit (if !mismatches = 0 then 0 else 1)
