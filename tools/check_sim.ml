(* Simulator vs Table 5: weak-outcome observation pattern + soundness. *)
let () =
  let runs = try int_of_string Sys.argv.(1) with _ -> 2000 in
  Printf.printf "%-22s %8s %8s %8s %8s  LK\n" "test" "Power8" "ARMv8" "ARMv7" "X86";
  let unsound = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      if e.in_table5 then begin
        let test = Harness.Battery.test_of e in
        let cells =
          List.map
            (fun arch ->
              let s = Hwsim.run_test arch ~runs ~seed:7 test in
              (match Hwsim.unsound_outcomes Lkmm.oracle test s with
               | [] -> ()
               | bad ->
                   incr unsound;
                   List.iter (fun (o, n) ->
                     Printf.printf "  UNSOUND %s on %s: %s (%d)\n" e.name arch.Hwsim.Arch.name
                       (Fmt.str "%a" Exec.pp_outcome o) n) bad);
              Printf.sprintf "%d/%d" s.Hwsim.matched s.Hwsim.total)
            Hwsim.Arch.table5
        in
        Printf.printf "%-22s %8s %8s %8s %8s  %s\n%!" e.name
          (List.nth cells 0) (List.nth cells 1) (List.nth cells 2) (List.nth cells 3)
          (Exec.Check.verdict_to_string e.lk)
      end)
    Harness.Battery.all;
  Printf.printf "unsound cells: %d\n" !unsound
