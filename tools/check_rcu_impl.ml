let () =
  let runs = try int_of_string Sys.argv.(1) with _ -> 300 in
  let results = Harness.Rcu_study.run_all ~runs () in
  List.iter (fun r -> Fmt.pr "%a@." Harness.Rcu_study.pp r) results;
  match Harness.Rcu_study.issues results with
  | [] -> print_endline "theorem-2 empirical check: OK"
  | l -> List.iter print_endline l
