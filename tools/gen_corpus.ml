(* Writes the litmus corpus and its golden verdict manifest. *)
let () =
  let dir = "corpus" in
  let rng = Random.State.make [| 2018 |] in
  let tests =
    Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 4
    @ Diygen.sample ~vocabulary:Diygen.Edge.vocabulary ~rng ~count:80 5
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:30 6
  in
  let oc = open_out (Filename.concat dir "MANIFEST") in
  Printf.fprintf oc
    "# test-file  LK-verdict  C11-verdict(or -)  (golden, regenerate with tools/gen_corpus)\n";
  List.iter
    (fun (t : Litmus.Ast.t) ->
      let file = String.map (function '+' -> '-' | c -> c) t.name ^ ".litmus" in
      let path = Filename.concat dir file in
      let o = open_out path in
      output_string o (Litmus.to_string t);
      close_out o;
      let lk = (Exec.Check.run (module Lkmm) t).Exec.Check.verdict in
      let c11 =
        if Models.C11.applicable t then
          Exec.Check.verdict_to_string
            (Exec.Check.run (module Models.C11) t).Exec.Check.verdict
        else "-"
      in
      Printf.fprintf oc "%s %s %s\n" file
        (Exec.Check.verdict_to_string lk)
        c11)
    tests;
  close_out oc;
  Printf.printf "wrote %d corpus tests\n" (List.length tests)
