(* Benchmarks for the symbolic SAT backend: full-corpus battery through
   all three engines (scalar enum, bit-plane batch, CDCL sat) plus the
   two budget-breaking tests the enumerative engines give up on and the
   solver decides.  Writes BENCH_sat.json.

     dune exec tools/bench_sat.exe [-- OUT.json]
     dune exec tools/bench_sat.exe -- --smoke [BASELINE.json]

   Smoke mode (for CI) reruns a reduced corpus slice — every 5th test —
   through the SAT backend, requires verdict agreement with the batched
   engine on every test of the slice and a decided (non-Unknown)
   verdict on both budget-breakers, and exits 1 if the slice takes more
   than twice the committed baseline's [smoke.total_s].

   The corpus tests are tiny (the sat encoding overhead dominates
   there, which the numbers are honest about); the backend's point is
   the budget-breakers, where the one-hot rf / boolean-order co CNF
   dodges the candidate-product explosion entirely. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Corpus battery                                                      *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  List.find_opt Sys.file_exists [ "corpus"; "../corpus"; "../../../corpus" ]

let load_corpus ?(stride = 1) () =
  match corpus_dir with
  | None -> failwith "corpus directory not found"
  | Some dir ->
      read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             Litmus.parse (read_file (Filename.concat dir file)))

let battery tests f =
  best_of 3 (fun () ->
      List.iter (fun t -> ignore (Sys.opaque_identity (f t))) tests)

let check backend t =
  Exec.Oracle.run ~budget:(Exec.Budget.start Exec.Budget.default) ~backend
    Lkmm.oracle t

(* ------------------------------------------------------------------ *)
(* The budget-breakers: candidate products far past the default caps,
   trivially decided symbolically.                                     *)
(* ------------------------------------------------------------------ *)

let big_allow =
  (* one read, nine same-location writes: ~10^9 rf x co candidates *)
  let b = Buffer.create 256 in
  Buffer.add_string b
    "C big-allow\n{ }\nP0(int *x) { int r0 = READ_ONCE(*x); }\n";
  for i = 1 to 9 do
    Buffer.add_string b
      (Printf.sprintf "P%d(int *x) { WRITE_ONCE(*x, 1); }\n" i)
  done;
  Buffer.add_string b "exists (0:r0=1)\n";
  Litmus.parse (Buffer.contents b)

let big_forbid =
  (* SB+mbs (Forbid) padded with nine bystander writes *)
  let b = Buffer.create 256 in
  Buffer.add_string b "C big-forbid\n{ }\n";
  Buffer.add_string b
    "P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_mb(); int r0 = \
     READ_ONCE(*y); }\n";
  Buffer.add_string b
    "P1(int *x, int *y) { WRITE_ONCE(*y, 1); smp_mb(); int r1 = \
     READ_ONCE(*x); }\n";
  for i = 2 to 10 do
    Buffer.add_string b
      (Printf.sprintf "P%d(int *z) { WRITE_ONCE(*z, 1); }\n" i)
  done;
  Buffer.add_string b "exists ((0:r0=0 /\\ 1:r1=0))\n";
  Litmus.parse (Buffer.contents b)

let decided (r : Exec.Check.result) =
  match r.Exec.Check.verdict with
  | Exec.Check.Allow | Exec.Check.Forbid -> true
  | Exec.Check.Unknown _ -> false

let time_one backend t =
  let t0 = Unix.gettimeofday () in
  let r = check backend t in
  (Unix.gettimeofday () -. t0, r)

(* ------------------------------------------------------------------ *)
(* Smoke mode                                                          *)
(* ------------------------------------------------------------------ *)

let smoke_stride = 5

let run_smoke tests =
  battery tests (fun t -> check Exec.Check.Sat t)

let agreement tests =
  List.for_all
    (fun t ->
      let s = check Exec.Check.Sat t and b = check Exec.Check.Batch t in
      s.Exec.Check.verdict = b.Exec.Check.verdict)
    tests

let baseline_field file key =
  let s = read_file file in
  let pat = Printf.sprintf "\"%s\":" key in
  let rec find i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then
      Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while
        !j < String.length s
        && (match s.[!j] with
           | '0' .. '9' | '.' | ' ' | '-' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.trim (String.sub s i (!j - i)))

let smoke baseline_file =
  let tests = load_corpus ~stride:smoke_stride () in
  if not (agreement tests) then begin
    prerr_endline "bench_sat: FAIL: sat/batch verdict disagreement on slice";
    exit 1
  end;
  let _, ra = time_one Exec.Check.Sat big_allow in
  let _, rf = time_one Exec.Check.Sat big_forbid in
  if not (decided ra && decided rf) then begin
    prerr_endline "bench_sat: FAIL: solver gave up on a budget-breaker";
    exit 1
  end;
  let total = run_smoke tests in
  match baseline_field baseline_file "total_s" with
  | None ->
      Printf.eprintf "bench_sat: no smoke baseline in %s\n" baseline_file;
      exit 2
  | Some base ->
      Printf.printf
        "bench_sat smoke: %d tests + 2 budget-breakers, %.4f s (baseline \
         %.4f s, ratio %.2f)\n"
        (List.length tests) total base (total /. base);
      if total > 2.0 *. base then begin
        prerr_endline "bench_sat: FAIL: smoke slice more than 2x the baseline";
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let full out =
  let tests = load_corpus () in
  let enum_s =
    battery tests (fun t -> check Exec.Check.Enum t)
  in
  let batch_s = battery tests (fun t -> check Exec.Check.Batch t) in
  let sat_s = battery tests (fun t -> check Exec.Check.Sat t) in
  let verdict r = Exec.Check.verdict_to_string r.Exec.Check.verdict in
  let conflicts (r : Exec.Check.result) =
    match r.Exec.Check.sat with
    | Some s -> s.Exec.Check.conflicts
    | None -> -1
  in
  let allow_enum_t, allow_enum = time_one Exec.Check.Batch big_allow in
  let allow_sat_t, allow_sat = time_one Exec.Check.Sat big_allow in
  let forbid_enum_t, forbid_enum = time_one Exec.Check.Batch big_forbid in
  let forbid_sat_t, forbid_sat = time_one Exec.Check.Sat big_forbid in
  let smoke_total = run_smoke (load_corpus ~stride:smoke_stride ()) in
  let json =
    Printf.sprintf
      {|{
  "description": "symbolic SAT backend (CDCL over one-hot rf / boolean-order co CNF, decoded models re-validated through the scalar axioms) vs the enumerative engines: best-of-3 full-corpus battery per engine, plus two tests whose candidate product breaks the default budget and which only the solver decides",
  "corpus": {
    "n_tests": %d,
    "enum_s": %.4f,
    "batch_s": %.4f,
    "sat_s": %.4f,
    "sat_vs_batch_ratio": %.2f
  },
  "budget_breakers": {
    "big_allow": { "enum_verdict": "%s", "enum_s": %.4f, "sat_verdict": "%s", "sat_s": %.4f, "sat_conflicts": %d },
    "big_forbid": { "enum_verdict": "%s", "enum_s": %.4f, "sat_verdict": "%s", "sat_s": %.4f, "sat_conflicts": %d }
  },
  "smoke": { "stride": %d, "total_s": %.4f },
  "notes": "On corpus-sized tests (2-4 threads, handfuls of candidates) the solver pays encoding overhead the enumerators never see, so sat_s above batch_s is expected and not a regression signal; the backend earns its keep on the budget-breakers, where the enumerative engines return Unknown at the candidate cap and the solver decides in milliseconds.  Verdict agreement across all three engines over the full corpus is asserted by test_sat; this file records the cost of that agreement."
}
|}
      (List.length tests) enum_s batch_s sat_s (sat_s /. batch_s)
      (verdict allow_enum) allow_enum_t (verdict allow_sat) allow_sat_t
      (conflicts allow_sat) (verdict forbid_enum) forbid_enum_t
      (verdict forbid_sat) forbid_sat_t (conflicts forbid_sat) smoke_stride
      smoke_total
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  if not (decided allow_sat && decided forbid_sat) then begin
    prerr_endline "bench_sat: FAIL: solver gave up on a budget-breaker";
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: rest ->
      smoke (match rest with b :: _ -> b | [] -> "BENCH_sat.json")
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_sat.json"
