(* Benchmarks for the dense relation kernel and the enumeration-path
   optimisations: microbenchmarks of the bitset kernel against the
   retained pair-set reference, and the full-corpus battery with each
   layer (coherence prefilter, static-prefix cache) toggled.  Writes
   BENCH_rel.json.

     dune exec tools/bench_rel.exe [-- OUT.json]
     dune exec tools/bench_rel.exe -- --smoke [BASELINE.json]

   Smoke mode (for CI) reruns a reduced corpus slice — every 5th test,
   native LK and cached cat LK — and exits 1 if the slice takes more
   than twice the committed baseline's [smoke.total_s]: a cheap guard
   against performance regressions on the hot path.

   The "before" numbers are the seed commit (5f37219, pair-set kernel,
   materialised enumeration, no prefilter, no prefix cache) measured on
   the same machine with the same best-of-3 battery loop; they are
   recorded as constants below so the speedup the PR claims stays
   attached to the measurement it came from. *)

let seed_commit = "5f37219"
let seed_native_s = 0.1522
let seed_cat_s = 0.2310

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: kernel vs pair-set reference                       *)
(* ------------------------------------------------------------------ *)

module S = Rel.Reference

type micro = { op : string; n : int; ref_s : float; dense_s : float }

let micro_suite () =
  let st = Random.State.make [| 42 |] in
  let random_pairs n =
    List.init (2 * n) (fun _ ->
        (Random.State.int st n, Random.State.int st n))
  in
  let bench_pair op n iters dense_f ref_f =
    let dense_s = best_of 5 (fun () -> for _ = 1 to iters do dense_f () done)
    and ref_s = best_of 5 (fun () -> for _ = 1 to iters do ref_f () done) in
    { op; n; ref_s; dense_s }
  in
  List.concat_map
    (fun (n, i_union, i_seq, i_tc) ->
      let p1 = random_pairs n and p2 = random_pairs n in
      let d1 = Rel.of_list p1 and d2 = Rel.of_list p2 in
      let s1 = S.of_list p1 and s2 = S.of_list p2 in
      [
        bench_pair "union" n i_union
          (fun () -> ignore (Sys.opaque_identity (Rel.union d1 d2)))
          (fun () -> ignore (Sys.opaque_identity (S.union s1 s2)));
        bench_pair "inter" n i_union
          (fun () -> ignore (Sys.opaque_identity (Rel.inter d1 d2)))
          (fun () -> ignore (Sys.opaque_identity (S.inter s1 s2)));
        bench_pair "seq" n i_seq
          (fun () -> ignore (Sys.opaque_identity (Rel.seq d1 d2)))
          (fun () -> ignore (Sys.opaque_identity (S.seq s1 s2)));
        bench_pair "transitive_closure" n i_tc
          (fun () -> ignore (Sys.opaque_identity (Rel.transitive_closure d1)))
          (fun () -> ignore (Sys.opaque_identity (S.transitive_closure s1)));
        bench_pair "is_acyclic" n i_tc
          (fun () -> ignore (Sys.opaque_identity (Rel.is_acyclic d1)))
          (fun () -> ignore (Sys.opaque_identity (S.is_acyclic s1)));
      ])
    [ (8, 100_000, 50_000, 20_000); (24, 50_000, 10_000, 2_000);
      (64, 20_000, 1_000, 200) ]

(* ------------------------------------------------------------------ *)
(* Corpus battery                                                      *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  List.find_opt Sys.file_exists [ "corpus"; "../corpus"; "../../../corpus" ]

let load_corpus ?(stride = 1) () =
  match corpus_dir with
  | None -> failwith "corpus directory not found"
  | Some dir ->
      read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             Litmus.parse (read_file (Filename.concat dir file)))

let battery tests f =
  best_of 3 (fun () ->
      List.iter (fun t -> ignore (Sys.opaque_identity (f t))) tests)

let lk_cat = lazy (Lazy.force Cat.lk)

let corpus_configs tests =
  let cat ?cache () =
    Cat.to_check_model ~name:"LK(cat)" ?cache (Lazy.force lk_cat)
  in
  let native_off =
    battery tests (fun t -> Exec.Check.run ~prefilter:false (module Lkmm) t)
  and native_on = battery tests (fun t -> Exec.Check.run (module Lkmm) t)
  and cat_off_off =
    battery tests (fun t ->
        Exec.Check.run ~prefilter:false (cat ~cache:false ()) t)
  and cat_off_on =
    battery tests (fun t -> Exec.Check.run (cat ~cache:false ()) t)
  and cat_on_on = battery tests (fun t -> Exec.Check.run (cat ()) t) in
  (native_off, native_on, cat_off_off, cat_off_on, cat_on_on)

(* ------------------------------------------------------------------ *)
(* Smoke mode                                                          *)
(* ------------------------------------------------------------------ *)

let smoke_stride = 5

let run_smoke tests =
  let cat_model = Cat.to_check_model ~name:"LK(cat)" (Lazy.force lk_cat) in
  battery tests (fun t ->
      ignore (Sys.opaque_identity (Exec.Check.run (module Lkmm) t));
      Exec.Check.run cat_model t)

(* Pull a float field out of the committed baseline without a JSON
   dependency: the file is machine-written, so a textual scan is safe. *)
let baseline_field file key =
  let s = read_file file in
  let pat = Printf.sprintf "\"%s\":" key in
  let rec find i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then
      Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while
        !j < String.length s
        && (match s.[!j] with
           | '0' .. '9' | '.' | ' ' | '-' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.trim (String.sub s i (!j - i)))

let smoke baseline_file =
  let tests = load_corpus ~stride:smoke_stride () in
  let total = run_smoke tests in
  match baseline_field baseline_file "total_s" with
  | None ->
      Printf.eprintf "bench_rel: no smoke baseline in %s\n" baseline_file;
      exit 2
  | Some base ->
      Printf.printf
        "bench_rel smoke: %d tests, %.4f s (baseline %.4f s, ratio %.2f)\n"
        (List.length tests) total base (total /. base);
      if total > 2.0 *. base then begin
        prerr_endline "bench_rel: FAIL: smoke slice more than 2x the baseline";
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let full out =
  let micros = micro_suite () in
  let tests = load_corpus () in
  let native_off, native_on, cat_off_off, cat_off_on, cat_on_on =
    corpus_configs tests
  in
  let smoke_total = run_smoke (load_corpus ~stride:smoke_stride ()) in
  let micro_json =
    micros
    |> List.map (fun m ->
           Printf.sprintf
             "    { \"op\": %S, \"n\": %d, \"ref_s\": %.4f, \"dense_s\": \
              %.4f, \"speedup\": %.1f }"
             m.op m.n m.ref_s m.dense_s (m.ref_s /. m.dense_s))
    |> String.concat ",\n"
  in
  let json =
    Printf.sprintf
      {|{
  "description": "dense relation kernel + streaming enumeration with coherence prefilter + static-prefix cache, against the %s seed (pair-set kernel, materialised enumeration, no prefilter, no cache); corpus times are best-of-3 full-battery passes, micro times best-of-5 fixed-iteration loops",
  "micro": [
%s
  ],
  "corpus": {
    "n_tests": %d,
    "seed_baseline": { "commit": %S, "native_lk_s": %.4f, "cat_lk_s": %.4f },
    "native_lk": { "prefilter_off_s": %.4f, "prefilter_on_s": %.4f },
    "cat_lk": { "cache_off_prefilter_off_s": %.4f, "cache_off_s": %.4f, "cache_on_s": %.4f },
    "speedup_native_vs_seed": %.2f,
    "speedup_cat_vs_seed": %.2f
  },
  "smoke": { "stride": %d, "total_s": %.4f },
  "notes": "per-layer attribution — kernel: seed %.4fs -> %.4fs native (prefilter off) and %.4fs -> %.4fs cat (cache+prefilter off) is the dense bitset kernel plus the once-per-structure hoisting of witness-independent candidate parts (loc/int/ext/crit/event sets), on identical checking logic; prefilter: native %.4fs -> %.4fs, the sc-per-location acyclicity test skipping the full axioms on incoherent candidates; prefix cache: cat %.4fs -> %.4fs, witness-independent cat bindings evaluated once per event structure instead of once per candidate (the native model's mirrored static split is part of its kernel-off-to-on delta).  Micro speedups are ref_s/dense_s per op."
}
|}
      seed_commit micro_json (List.length tests) seed_commit seed_native_s
      seed_cat_s native_off native_on cat_off_off cat_off_on cat_on_on
      (seed_native_s /. native_on)
      (seed_cat_s /. cat_on_on) smoke_stride smoke_total seed_native_s
      native_off seed_cat_s cat_off_off native_off native_on cat_off_on
      cat_on_on
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  if seed_native_s /. native_on < 3.0 && seed_cat_s /. cat_on_on < 3.0 then
    prerr_endline "bench_rel: WARNING: overall speedup below 3x on both paths"

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: rest ->
      smoke (match rest with b :: _ -> b | [] -> "BENCH_rel.json")
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_rel.json"
