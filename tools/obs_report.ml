(* obs_report: offline consumer for the observability outputs.

     obs_report run.jsonl                  # profile tables from --metrics
     obs_report --validate SCHEMA TRACE    # validate a --trace file
     obs_report --postmortem FLIGHT.jsonl  # last spans before death
     obs_report --postmortem-json FLIGHT.jsonl   # last checkpoint, raw

   The profile mode aggregates the JSONL metrics stream (spans,
   counters, histograms) into a per-phase table (time per span name), a
   per-test table (time per item) and the counter/histogram totals —
   the quick answer to "where did the run go" without opening Perfetto.

   The validate mode checks a Chrome trace-event file against a JSON
   Schema (the subset used by ci/trace.schema.json: type, properties,
   required, items, enum, minimum, minItems).  CI runs it on a corpus
   slice so the trace format cannot drift silently.  Exit codes: 0 ok,
   2 malformed input or schema violation.

   The postmortem mode reads a crash flight-recorder journal
   (Obs.flight_start; lkflight-1 lines), takes the last parseable
   checkpoint — a SIGKILL mid-write tears at most that final line —
   and renders the victim's last spans before death, open spans
   flagged.  --postmortem-json emits the same checkpoint as one JSON
   object for schema validation (ci/postmortem.schema.json). *)

module J = Harness.Journal.Json

let sfield j k = Option.bind (J.mem k j) J.str
let nfield j k = Option.bind (J.mem k j) J.num

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Profile mode                                                        *)
(* ------------------------------------------------------------------ *)

type phase = { mutable count : int; mutable total : float; mutable max : float }

let profile path =
  let phases : (string, phase) Hashtbl.t = Hashtbl.create 16 in
  let items : (string, phase) Hashtbl.t = Hashtbl.create 64 in
  let counters = ref [] and hists = ref [] in
  let dropped = ref 0 and n_spans = ref 0 in
  let bump tbl key dur =
    let p =
      match Hashtbl.find_opt tbl key with
      | Some p -> p
      | None ->
          let p = { count = 0; total = 0.; max = 0. } in
          Hashtbl.replace tbl key p;
          p
    in
    p.count <- p.count + 1;
    p.total <- p.total +. dur;
    if dur > p.max then p.max <- dur
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            (* a torn final line (killed run) is dropped, like the journal *)
            match J.of_string line with
            | exception J.Malformed _ -> ()
            | j -> (
                match sfield j "type" with
                | Some "span" ->
                    incr n_spans;
                    let dur =
                      Option.value ~default:0. (nfield j "dur_us")
                    in
                    Option.iter
                      (fun name -> bump phases name dur)
                      (sfield j "name");
                    (* per-test time = the top-level span of each item *)
                    (match (nfield j "parent", sfield j "item") with
                    | Some p, Some item when p < 0. && item <> "" ->
                        bump items item dur
                    | _ -> ())
                | Some "counter" -> (
                    match (sfield j "name", nfield j "value") with
                    | Some n, Some v -> counters := (n, int_of_float v) :: !counters
                    | _ -> ())
                | Some "hist" -> (
                    match
                      ( sfield j "name",
                        nfield j "count",
                        nfield j "sum_us",
                        nfield j "max_us" )
                    with
                    | Some n, Some c, Some s, Some m ->
                        hists := (n, int_of_float c, s, m) :: !hists
                    | _ -> ())
                | Some "meta" ->
                    dropped :=
                      !dropped
                      + int_of_float (Option.value ~default:0. (nfield j "dropped"))
                | _ -> ())
        done
      with End_of_file -> ());
  let grand =
    Hashtbl.fold (fun _ p acc -> acc +. p.total) items 0. |> Float.max 1e-9
  in
  let rows tbl =
    Hashtbl.fold (fun k p acc -> (k, p) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
  in
  Printf.printf "Per-phase (all spans, %d total%s):\n" !n_spans
    (if !dropped > 0 then Printf.sprintf ", %d dropped" !dropped else "");
  Printf.printf "  %-14s %8s %12s %12s %12s\n" "phase" "count" "total_ms"
    "mean_us" "max_us";
  List.iter
    (fun (name, p) ->
      Printf.printf "  %-14s %8d %12.3f %12.1f %12.1f\n" name p.count
        (p.total /. 1000.)
        (p.total /. float_of_int (max 1 p.count))
        p.max)
    (rows phases);
  if Hashtbl.length items > 0 then begin
    Printf.printf "\nPer-test (top-level spans; top 20 of %d):\n"
      (Hashtbl.length items);
    Printf.printf "  %-45s %8s %12s %7s\n" "test" "spans" "total_ms" "share";
    List.iteri
      (fun i (name, p) ->
        if i < 20 then
          Printf.printf "  %-45s %8d %12.3f %6.1f%%\n" name p.count
            (p.total /. 1000.)
            (100. *. p.total /. grand))
      (rows items)
  end;
  if !counters <> [] then begin
    Printf.printf "\nCounters:\n";
    List.iter
      (fun (n, v) -> Printf.printf "  %-28s %12d\n" n v)
      (List.sort compare !counters)
  end;
  (* forensics: the explainer bumps explain.check_fail.<check> once per
     explained failure, so a corpus run with --explain summarises to a
     "which checks fire most" table *)
  let prefix = "explain.check_fail." in
  let failing =
    List.filter_map
      (fun (n, v) ->
        if
          String.length n > String.length prefix
          && String.sub n 0 (String.length prefix) = prefix
        then
          Some
            (String.sub n (String.length prefix)
               (String.length n - String.length prefix), v)
        else None)
      !counters
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if failing <> [] then begin
    let total = List.fold_left (fun acc (_, v) -> acc + v) 0 failing in
    Printf.printf "\nTop failing checks (%d explained failures):\n" total;
    Printf.printf "  %-28s %8s %7s\n" "check" "fails" "share";
    List.iter
      (fun (n, v) ->
        Printf.printf "  %-28s %8d %6.1f%%\n" n v
          (100. *. float_of_int v /. float_of_int (max 1 total)))
      failing
  end;
  (* batched evaluation: occupancy is a plane count, not a duration, so
     it gets its own table (and stays out of the µs-labelled one) *)
  let counter n = List.assoc_opt n !counters in
  let occupancy =
    List.find_opt (fun (n, _, _, _) -> n = "check.batch.occupancy") !hists
  in
  (if occupancy <> None || counter "check.batch.flushes" <> None
      || counter "exec.delta.patched" <> None then begin
     Printf.printf "\nBatched evaluation:\n";
     (match (counter "check.batch.flushes", occupancy) with
     | Some f, Some (_, c, sum, max_occ) ->
         Printf.printf
           "  %-28s %12d\n  %-28s %12.1f planes/flush (max %.0f)\n"
           "flushes" f "mean occupancy"
           (sum /. float_of_int (Stdlib.max 1 c))
           max_occ
     | Some f, None -> Printf.printf "  %-28s %12d\n" "flushes" f
     | None, _ -> ());
     (match (counter "lkmm.batch.early_exit", counter "cat.batch.early_exit")
      with
     | None, None -> ()
     | lk, cat ->
         let lk = Option.value ~default:0 lk
         and cat = Option.value ~default:0 cat in
         Printf.printf "  %-28s %12d (native %d, cat %d)\n"
           "planes decided early" (lk + cat) lk cat);
     match (counter "exec.delta.patched", counter "exec.delta.full") with
     | None, None -> ()
     | patched, full ->
         let patched = Option.value ~default:0 patched
         and full = Option.value ~default:0 full in
         Printf.printf "  %-28s %12d (full recomputes %d, %.1f%% patched)\n"
           "delta rf patches" patched full
           (100.
           *. float_of_int patched
           /. float_of_int (Stdlib.max 1 (patched + full)))
   end);
  (* the symbolic backend's own table: per-structure sat/unsat split,
     conflict totals, and the two "should be zero" columns (spurious
     witnesses, counted enumerative fallbacks) *)
  (if counter "solve.structures" <> None || counter "sat.fallback" <> None
   then begin
     Printf.printf "\nSymbolic (SAT) backend:\n";
     (match counter "solve.structures" with
     | Some s ->
         let sat = Option.value ~default:0 (counter "solve.sat")
         and unsat = Option.value ~default:0 (counter "solve.unsat") in
         Printf.printf "  %-28s %12d (sat %d, unsat %d)\n"
           "structures solved" s sat unsat
     | None -> ());
     (match counter "solve.conflicts" with
     | Some c -> Printf.printf "  %-28s %12d\n" "conflicts" c
     | None -> ());
     (match counter "solve.propagations" with
     | Some p -> Printf.printf "  %-28s %12d\n" "propagations" p
     | None -> ());
     (match counter "solve.restarts" with
     | Some r -> Printf.printf "  %-28s %12d\n" "restarts" r
     | None -> ());
     let hist n = List.find_opt (fun (n', _, _, _) -> n' = n) !hists in
     (match hist "solve.learnt_len" with
     | Some (_, c, sum, mx) ->
         Printf.printf "  %-28s %12.1f lits (max %.0f, %d clauses)\n"
           "mean learnt length"
           (sum /. float_of_int (Stdlib.max 1 c))
           mx c
     | None -> ());
     (match hist "solve.dlevel" with
     | Some (_, c, sum, mx) ->
         Printf.printf "  %-28s %12.1f (max %.0f)\n" "mean conflict level"
           (sum /. float_of_int (Stdlib.max 1 c))
           mx
     | None -> ());
     (match counter "solve.spurious" with
     | Some s when s > 0 ->
         Printf.printf "  %-28s %12d  <- encoder/solver bug\n"
           "spurious witnesses" s
     | _ -> ());
     match counter "sat.fallback" with
     | Some f when f > 0 ->
         Printf.printf "  %-28s %12d (solver-less models)\n"
           "enumerative fallbacks" f
     | _ -> ()
   end);
  (* plane counts, clause lengths and decision levels are not durations:
     they have their own tables above and stay out of the µs-labelled
     one *)
  let hists =
    ref
      (List.filter
         (fun (n, _, _, _) ->
           not
             (List.mem n
                [
                  "check.batch.occupancy"; "solve.learnt_len"; "solve.dlevel";
                ]))
         !hists)
  in
  if !hists <> [] then begin
    Printf.printf "\nHistograms:\n";
    Printf.printf "  %-28s %8s %12s %12s %12s\n" "name" "count" "sum_ms"
      "mean_us" "max_us";
    List.iter
      (fun (n, c, s, m) ->
        Printf.printf "  %-28s %8d %12.3f %12.1f %12.1f\n" n c (s /. 1000.)
          (s /. float_of_int (max 1 c))
          m)
      (List.sort compare !hists)
  end;
  0

(* ------------------------------------------------------------------ *)
(* Validate mode: the JSON Schema subset CI needs                      *)
(* ------------------------------------------------------------------ *)

let schema_errors schema doc =
  let errors = ref [] in
  let err path msg =
    if List.length !errors < 20 then
      errors := Printf.sprintf "%s: %s" path msg :: !errors
  in
  let type_name = function
    | J.Null -> "null"
    | J.Bool _ -> "boolean"
    | J.Num _ -> "number"
    | J.Str _ -> "string"
    | J.Arr _ -> "array"
    | J.Obj _ -> "object"
  in
  let type_ok v = function
    | "null" -> v = J.Null
    | "boolean" -> ( match v with J.Bool _ -> true | _ -> false)
    | "number" -> ( match v with J.Num _ -> true | _ -> false)
    | "integer" -> (
        match v with J.Num f -> Float.is_integer f | _ -> false)
    | "string" -> ( match v with J.Str _ -> true | _ -> false)
    | "array" -> ( match v with J.Arr _ -> true | _ -> false)
    | "object" -> ( match v with J.Obj _ -> true | _ -> false)
    | _ -> true (* unknown type names pass: forward compatibility *)
  in
  let rec check path (schema : J.t) (v : J.t) =
    match schema with
    | J.Obj fields ->
        List.iter
          (fun (kw, sv) ->
            match (kw, sv) with
            | "type", J.Str t ->
                if not (type_ok v t) then
                  err path
                    (Printf.sprintf "expected %s, got %s" t (type_name v))
            | "type", J.Arr ts ->
                if
                  not
                    (List.exists
                       (function J.Str t -> type_ok v t | _ -> false)
                       ts)
                then err path ("unexpected type " ^ type_name v)
            | "required", J.Arr names -> (
                match v with
                | J.Obj props ->
                    List.iter
                      (function
                        | J.Str n ->
                            if not (List.mem_assoc n props) then
                              err path ("missing required property " ^ n)
                        | _ -> ())
                      names
                | _ -> ())
            | "properties", J.Obj subschemas -> (
                match v with
                | J.Obj props ->
                    List.iter
                      (fun (name, sub) ->
                        match List.assoc_opt name props with
                        | Some pv -> check (path ^ "." ^ name) sub pv
                        | None -> ())
                      subschemas
                | _ -> ())
            | "items", sub -> (
                match v with
                | J.Arr elts ->
                    List.iteri
                      (fun i e ->
                        check (Printf.sprintf "%s[%d]" path i) sub e)
                      elts
                | _ -> ())
            | "minItems", J.Num n -> (
                match v with
                | J.Arr elts ->
                    if List.length elts < int_of_float n then
                      err path
                        (Printf.sprintf "fewer than %d items" (int_of_float n))
                | _ -> ())
            | "enum", J.Arr allowed ->
                if not (List.mem v allowed) then err path "not in enum"
            | "minimum", J.Num lo -> (
                match v with
                | J.Num f -> if f < lo then err path "below minimum"
                | _ -> ())
            | _ -> () (* unsupported keywords are ignored *))
          fields
    | _ -> ()
  in
  check "$" schema doc;
  List.rev !errors

let validate schema_path doc_path =
  let parse what path =
    match J.of_string (read_file path) with
    | j -> j
    | exception J.Malformed msg ->
        Printf.eprintf "obs_report: %s %s: malformed JSON: %s\n" what path msg;
        exit 2
  in
  let schema = parse "schema" schema_path in
  let doc = parse "document" doc_path in
  match schema_errors schema doc with
  | [] ->
      Printf.printf "%s: valid against %s\n" doc_path schema_path;
      0
  | errs ->
      List.iter (fun e -> Printf.eprintf "obs_report: %s: %s\n" doc_path e) errs;
      2

(* ------------------------------------------------------------------ *)
(* Post-mortem mode: the crash flight recorder's reader                *)
(* ------------------------------------------------------------------ *)

(* The last parseable lkflight-1 checkpoint of a flight journal.  A
   SIGKILL mid-write tears at most the final line, which load_json
   drops — exactly the journal convention the recorder writes under. *)
let last_checkpoint path =
  List.fold_left
    (fun acc j ->
      match sfield j "schema" with Some "lkflight-1" -> Some j | _ -> acc)
    None
    (Harness.Journal.load_json path)

let postmortem path =
  match last_checkpoint path with
  | None ->
      Printf.eprintf "obs_report: %s: no flight checkpoint found\n" path;
      2
  | Some j ->
      let num k = Option.value ~default:0. (nfield j k) in
      Printf.printf "Post-mortem: %s\n" path;
      Printf.printf "  pid %d, last checkpoint \"%s\" at t=%.0fus%s\n"
        (int_of_float (num "pid"))
        (Option.value ~default:"?" (sfield j "reason"))
        (num "ts_us")
        (if num "dropped" > 0. then
           Printf.sprintf " (%d older spans overwritten)"
             (int_of_float (num "dropped"))
         else "");
      (match J.mem "spans" j with
      | Some (J.Arr spans) ->
          Printf.printf "\n  Last %d spans before death (oldest first):\n"
            (List.length spans);
          Printf.printf "  %-6s %-20s %-32s %12s  %s\n" "tid" "name" "item"
            "dur_us" "";
          List.iter
            (fun s ->
              let sn k = Option.value ~default:0. (nfield s k) in
              Printf.printf "  %-6d %-20s %-32s %12.1f  %s\n"
                (int_of_float (sn "tid"))
                (Option.value ~default:"" (sfield s "name"))
                (Option.value ~default:"" (sfield s "item"))
                (sn "dur_us")
                (match Option.bind (J.mem "open" s) J.bool_ with
                | Some true -> "<- open at death"
                | _ -> ""))
            spans
      | _ -> ());
      (match J.mem "counters" j with
      | Some (J.Obj kvs) when kvs <> [] ->
          Printf.printf "\n  Counters at death:\n";
          List.iter
            (fun (k, v) ->
              match J.num v with
              | Some v -> Printf.printf "    %-28s %12.0f\n" k v
              | None -> ())
            kvs
      | _ -> ());
      0

let postmortem_json path =
  match last_checkpoint path with
  | None ->
      Printf.eprintf "obs_report: %s: no flight checkpoint found\n" path;
      2
  | Some j ->
      print_endline (J.to_string j);
      0

let () =
  match Array.to_list Sys.argv with
  | [ _; "--validate"; schema; doc ] -> exit (validate schema doc)
  | [ _; "--postmortem"; path ] -> exit (postmortem path)
  | [ _; "--postmortem-json"; path ] -> exit (postmortem_json path)
  | [ _; path ] when String.length path > 0 && path.[0] <> '-' ->
      exit (profile path)
  | _ ->
      Printf.eprintf
        "usage: obs_report METRICS.jsonl\n       obs_report --validate \
         SCHEMA.json TRACE.json\n       obs_report --postmortem[-json] \
         FLIGHT.jsonl\n";
      exit 124
