(* Benchmark of the checking service against batch mode.

     dune exec tools/bench_serve.exe               # full, BENCH_serve.json
     dune exec tools/bench_serve.exe -- --smoke    # CI smoke (small sample)
     dune exec tools/bench_serve.exe -- out.json

   Three measurements over the same corpus sample:

   - cold: every test submitted once to a fresh daemon — each is a
     cache miss and runs on a worker domain (models pre-compiled, no
     fork, no marshalling);
   - warm: the same tests resubmitted — each is a verdict-cache hit,
     answered without touching a worker;
   - pool: the same tests through Harness.Pool at the same parallelism
     — the fork-per-test batch baseline the daemon competes with.

   Requests are sequential (one connection, one in flight), so the
   latency percentiles are honest end-to-end round-trips and the
   throughput numbers are conservative for the daemon (workers are
   mostly idle under a single synchronous client).

   Gate: warm throughput must be at least 3x cold throughput — if a
   cache hit is not clearly cheaper than a fresh check, the cache is
   broken.  Exits 1 on a gate violation. *)

module S = Harness.Serve
module Pr = Harness.Proto
module R = Harness.Runner
module P = Harness.Pool
module B = Exec.Budget

let smoke = Array.exists (( = ) "--smoke") Sys.argv

let out =
  let named =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> a <> "--smoke")
  in
  match named with f :: _ -> f | [] -> "BENCH_serve.json"

let corpus_dir = "corpus"
let n_sample = if smoke then 10 else 60
let workers = 2

let sample_tests () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list |> List.sort compare
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
  in
  (* deterministic spread over the corpus: every k-th file *)
  let k = max 1 (List.length files / n_sample) in
  files
  |> List.filteri (fun i _ -> i mod k = 0)
  |> List.filteri (fun i _ -> i < n_sample)
  |> List.map (fun f -> (f, R.read_file (Filename.concat corpus_dir f)))

let limits = B.limits ~timeout:10.0 ~max_candidates:200_000 ()

let socket = Filename.temp_file "bench_serve" ".sock"

let config =
  {
    S.default with
    S.socket;
    workers;
    queue_bound = 256;
    limits;
    default_timeout = 10.0;
  }

let start_daemon () =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code = try S.run ~config () with _ -> 125 in
      Unix._exit code
  | pid -> pid

let connect_retry () =
  let stop = Unix.gettimeofday () +. 30. in
  let rec go () =
    match S.Client.connect socket with
    | c -> c
    | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () > stop then failwith "daemon did not come up"
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

(* One pass: submit every test sequentially, return (wall, latencies). *)
let pass c tests expect_cache =
  let lats =
    List.map
      (fun (name, source) ->
        let t0 = Unix.gettimeofday () in
        (match S.Client.check c source with
        | Ok r ->
            (match r.Pr.rsp_cls with
            | Pr.Ok_ | Pr.Fail | Pr.Unknown -> ()
            | cls ->
                Printf.eprintf "bench_serve: %s answered %s\n%!" name
                  (Pr.cls_name cls));
            (match (expect_cache, r.Pr.rsp_cache_hit) with
            | Some want, Some got when want <> got ->
                Printf.eprintf "bench_serve: %s cache %b, expected %b\n%!" name
                  got want
            | _ -> ())
        | Error e -> Printf.eprintf "bench_serve: %s: %s\n%!" name e);
        Unix.gettimeofday () -. t0)
      tests
  in
  let arr = Array.of_list lats in
  Array.sort compare arr;
  (List.fold_left ( +. ) 0. lats, arr)

let () =
  let tests = sample_tests () in
  let n = List.length tests in
  Printf.printf "bench_serve: %d corpus tests, %d workers%s\n%!" n workers
    (if smoke then " (smoke)" else "");
  Sys.remove socket;
  let pid = start_daemon () in
  let c = connect_retry () in
  let cold_wall, cold_lat = pass c tests (Some false) in
  let warm_wall, warm_lat = pass c tests (Some true) in
  ignore (S.Client.shutdown c);
  S.Client.close c;
  ignore (Unix.waitpid [] pid);
  (try Sys.remove socket with Sys_error _ -> ());
  (* batch baseline: the same tests through the fork-per-item pool *)
  let items =
    List.map
      (fun (name, source) -> { R.id = name; source = `Text source;
                               expected = None })
      tests
  in
  let t0 = Unix.gettimeofday () in
  let report =
    P.run
      ~config:{ P.default with P.jobs = workers; limits }
      ~oracle:Lkmm.oracle items
  in
  let pool_wall = Unix.gettimeofday () -. t0 in
  ignore report;
  let thr wall = float_of_int n /. wall in
  let cold_thr = thr cold_wall and warm_thr = thr warm_wall in
  let ratio = warm_thr /. cold_thr in
  let ms x = x *. 1000. in
  let json =
    Printf.sprintf
      {|{
  "schema_version": 1,
  "mode": "%s",
  "n_tests": %d,
  "workers": %d,
  "cold": { "wall_s": %.4f, "tests_per_s": %.2f, "p50_ms": %.3f, "p99_ms": %.3f },
  "warm": { "wall_s": %.4f, "tests_per_s": %.2f, "p50_ms": %.3f, "p99_ms": %.3f },
  "pool": { "wall_s": %.4f, "tests_per_s": %.2f, "jobs": %d },
  "warm_over_cold": %.2f,
  "daemon_cold_over_pool": %.2f
}
|}
      (if smoke then "smoke" else "full")
      n workers cold_wall cold_thr
      (ms (percentile cold_lat 0.5))
      (ms (percentile cold_lat 0.99))
      warm_wall warm_thr
      (ms (percentile warm_lat 0.5))
      (ms (percentile warm_lat 0.99))
      pool_wall (thr pool_wall) workers ratio
      (cold_thr /. thr pool_wall)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  Printf.printf "bench_serve: wrote %s\n%!" out;
  if ratio < 3.0 then begin
    Printf.eprintf
      "bench_serve: GATE FAILED — warm throughput only %.2fx cold (need 3x)\n%!"
      ratio;
    exit 1
  end
