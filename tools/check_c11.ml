let () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      match e.c11 with
      | None -> ()
      | Some expected ->
          let test = Harness.Battery.test_of e in
          let r = Exec.Check.run (module Models.C11) test in
          let ok = r.Exec.Check.verdict = expected in
          Printf.printf "%-22s C11 expected %-6s got %-6s %s\n" e.name
            (Exec.Check.verdict_to_string expected)
            (Exec.Check.verdict_to_string r.Exec.Check.verdict)
            (if ok then "OK" else "** MISMATCH **"))
    Harness.Battery.all;
  (* sanity for SC and TSO on key tests *)
  let check m name expected =
    let test = Harness.Battery.test_of (Harness.Battery.find name) in
    let r = Exec.Check.run m test in
    Printf.printf "%-10s %-22s expected %-6s got %-6s %s\n"
      (let module M = (val m : Exec.Check.MODEL) in M.name)
      name
      (Exec.Check.verdict_to_string expected)
      (Exec.Check.verdict_to_string r.Exec.Check.verdict)
      (if r.Exec.Check.verdict = expected then "OK" else "** MISMATCH **")
  in
  check (module Models.Sc) "SB" Exec.Check.Forbid;
  check (module Models.Sc) "MP" Exec.Check.Forbid;
  check (module Models.Sc) "LB" Exec.Check.Forbid;
  check (module Models.Tso) "SB" Exec.Check.Allow;
  check (module Models.Tso) "SB+mbs" Exec.Check.Forbid;
  check (module Models.Tso) "MP" Exec.Check.Forbid;
  check (module Models.Tso) "LB" Exec.Check.Forbid;
  check (module Models.Tso) "PeterZ-No-Synchro" Exec.Check.Allow;
  check (module Models.C11.Strengthened) "RWC+mbs" Exec.Check.Forbid;
  check (module Models.C11.Strengthened) "SB+mbs" Exec.Check.Forbid
