(* Generator smoke test: generate cycles of sizes 3 and 4; classify under
   the LK model; spot-check that classics appear and sim is sound. *)
let () =
  let n3 = Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 3 in
  Printf.printf "size-3 tests: %d\n%!" (List.length n3);
  let allow = ref 0 and forbid = ref 0 and unknown = ref 0 in
  List.iter
    (fun t ->
      match (Lkmm.check t).Exec.Check.verdict with
      | Exec.Check.Allow -> incr allow
      | Exec.Check.Forbid -> incr forbid
      | Exec.Check.Unknown _ -> incr unknown)
    n3;
  Printf.printf "  LK verdicts: %d allow / %d forbid / %d unknown\n%!" !allow
    !forbid !unknown;
  (* soundness: sim outcomes within model outcomes on a sample *)
  let rng = Random.State.make [| 3 |] in
  let sample = Diygen.sample ~rng ~count:30 4 in
  Printf.printf "size-4 sample: %d\n%!" (List.length sample);
  let bad = ref 0 in
  List.iter
    (fun t ->
      List.iter
        (fun arch ->
          let s = Hwsim.run_test arch ~runs:300 ~seed:5 t in
          match Hwsim.unsound_outcomes Lkmm.oracle t s with
          | [] -> ()
          | l ->
              incr bad;
              Printf.printf "UNSOUND %s on %s (%d outcomes)\n" t.Litmus.Ast.name
                arch.Hwsim.Arch.name (List.length l))
        [ Hwsim.Arch.power8; Hwsim.Arch.x86 ])
    sample;
  Printf.printf "unsound: %d\n" !bad
