(* explain_report: HTML gallery of verdict forensics over a set of
   litmus tests.

     dune exec tools/explain_report.exe -- -o DIR corpus/*.litmus
     dune exec tools/explain_report.exe -- -o DIR -model c11 -j 4 FILES...

   Runs every test with the explainer on and writes, under the output
   directory, one provenance-annotated DOT diagram per forbidden test
   (the counterexample with its violating cycle in bold red) plus an
   index.html: per-check failure totals, and for each forbidden test
   the named failed checks, the textual explanation and the DOT source.
   [-j N] runs the checks through the process-isolated pool; the
   explanations marshal back with the entries. *)

let usage () =
  prerr_endline
    "usage: explain_report [-o DIR] [-model MODEL] [-j N] TEST.litmus...";
  exit 124

(* lk (native) plus the cat-engine models; mirrors herd_lk's table. *)
let model_and_explainer name :
    Exec.Oracle.t * (Exec.t -> Exec.Explain.t list) =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> (Lkmm.oracle, Lkmm.Explain.explainer)
  | "lk-cat" ->
      let m = Lazy.force Cat.lk in
      (Cat.to_oracle ~name:"LK(cat)" m, Cat.explainer m)
  | "sc" ->
      let m = Cat.parse Cat.Stdmodels.sc in
      (Cat.to_oracle ~name:"SC" m, Cat.explainer m)
  | "tso" | "x86" ->
      let m = Cat.parse Cat.Stdmodels.tso in
      (Cat.to_oracle ~name:"TSO" m, Cat.explainer m)
  | "c11" ->
      let m = Cat.parse Cat.Stdmodels.c11 in
      (Cat.to_oracle ~name:"C11" m, Cat.explainer m)
  | "c11-psc" | "rc11" ->
      let m = Cat.parse Cat.Stdmodels.c11_psc in
      (Cat.to_oracle ~name:"C11+psc" m, Cat.explainer m)
  | other when Filename.check_suffix other ".cat" ->
      let m = Cat.load_file name in
      (Cat.to_oracle ~name m, Cat.explainer m)
  | other -> failwith ("unknown model: " ^ other)

let html_escape s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* stable, filesystem-safe name for a test's diagram *)
let slug id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '+' | '.' -> c
      | _ -> '_')
    (Filename.remove_extension (Filename.basename id))

let () =
  let out = ref "explain_report"
  and model = ref "lk"
  and jobs = ref 1
  and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "-o" :: d :: rest -> out := d; parse rest
    | "-model" :: m :: rest -> model := m; parse rest
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
        files := f :: !files;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then usage ();
  let factory, explainer = model_and_explainer !model in
  let items =
    List.map
      (fun path ->
        { Harness.Runner.id = path; source = `File path; expected = None })
      files
  in
  let report =
    if !jobs > 1 then
      Harness.Pool.run
        ~config:{ Harness.Pool.default with Harness.Pool.jobs = !jobs }
        ~explainer ~oracle:factory items
    else Harness.Runner.run ~explainer ~oracle:factory items
  in
  if not (Sys.file_exists !out) then Sys.mkdir !out 0o755;
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>Verdict forensics — %s</title>\n\
     <style>\n\
     body { font-family: sans-serif; max-width: 70em; margin: 2em auto; }\n\
     pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; }\n\
     table { border-collapse: collapse; }\n\
     td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: left; }\n\
     .forbid { color: #a00; } .allow { color: #060; }\n\
     details { margin: 0.5em 0; }\n\
     </style></head><body>\n"
    (html_escape !model);
  pr "<h1>Verdict forensics — model %s</h1>\n" (html_escape !model);
  (* per-check failure totals over the whole batch *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (e : Harness.Runner.entry) ->
      match e.Harness.Runner.result with
      | Some r ->
          List.iter
            (fun (x : Exec.Explain.t) ->
              let c = x.Exec.Explain.check in
              Hashtbl.replace totals c
                (1 + Option.value ~default:0 (Hashtbl.find_opt totals c)))
            r.Exec.Check.explanations
      | None -> ())
    report.Harness.Runner.entries;
  let n_explained =
    List.length
      (List.filter
         (fun (e : Harness.Runner.entry) ->
           match e.Harness.Runner.result with
           | Some r -> r.Exec.Check.explanations <> []
           | None -> false)
         report.Harness.Runner.entries)
  in
  pr "<p>%d tests: %d pass, %d fail, %d error, %d gave up — %d with \
      explained Forbid verdicts.</p>\n"
    (List.length report.Harness.Runner.entries)
    report.Harness.Runner.n_pass report.Harness.Runner.n_fail
    (report.Harness.Runner.n_error + report.Harness.Runner.n_crash)
    report.Harness.Runner.n_gave_up n_explained;
  if Hashtbl.length totals > 0 then begin
    pr "<h2>Failing checks</h2>\n<table><tr><th>check</th><th>tests</th></tr>\n";
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) totals []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.iter (fun (c, n) ->
           pr "<tr><td>%s</td><td>%d</td></tr>\n" (html_escape c) n);
    pr "</table>\n"
  end;
  (* one section per explained test, diagram written alongside *)
  List.iter
    (fun (e : Harness.Runner.entry) ->
      match e.Harness.Runner.result with
      | Some r when r.Exec.Check.explanations <> [] ->
          let id = e.Harness.Runner.item_id in
          let checks =
            List.sort_uniq compare
              (List.map
                 (fun (x : Exec.Explain.t) -> x.Exec.Explain.check)
                 r.Exec.Check.explanations)
          in
          pr "<h2 id=\"%s\">%s <span class=\"forbid\">Forbid</span></h2>\n"
            (html_escape (slug id)) (html_escape id);
          pr "<p>failed checks: %s</p>\n"
            (html_escape (String.concat ", " checks));
          List.iter
            (fun (x : Exec.Explain.t) ->
              pr "<pre>%s</pre>\n" (html_escape (Exec.Explain.to_string x)))
            r.Exec.Check.explanations;
          (match r.Exec.Check.counterexample with
          | Some x ->
              let dot =
                Exec.Dot.to_string ~explain:r.Exec.Check.explanations x
              in
              let dot_file = slug id ^ ".dot" in
              let oc = open_out (Filename.concat !out dot_file) in
              output_string oc dot;
              close_out oc;
              pr
                "<details><summary>diagram: <a href=\"%s\">%s</a> (dot; \
                 violating cycle in red)</summary><pre>%s</pre></details>\n"
                (html_escape dot_file) (html_escape dot_file)
                (html_escape dot)
          | None -> ())
      | _ -> ())
    report.Harness.Runner.entries;
  pr "</body></html>\n";
  let oc = open_out (Filename.concat !out "index.html") in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "explain_report: %d tests, %d explained; wrote %s/index.html\n"
    (List.length report.Harness.Runner.entries)
    n_explained !out;
  exit (Harness.Runner.exit_code report)
