(* Benchmark of the campaign orchestrator: end-to-end sharded sweep
   throughput (generation + all model columns + manifest journalling +
   mining) at jobs=2.  Writes BENCH_campaign.json.

     dune exec tools/bench_campaign.exe [-- OUT.json]
     dune exec tools/bench_campaign.exe -- --smoke [BASELINE.json]

   Two campaign sizes over the same configuration (size-4 cycles,
   lk/cat/c11 columns, default deterministic budgets):

   - full: 40k seeds, the number the committed baseline records;
   - smoke: 6k seeds, rerun in CI and gated at 2x the committed
     baseline's [smoke_wall_s] — a coarse cross-runner guard against
     orchestration overhead regressions (forks, journal writes, shard
     accounting) sneaking into the per-seed path.

   Seeds/s is the honest denominator (every seed is visited); tests/s
   counts only the seeds that realise a test (~4.5% at size 4). *)

module Camp = Harness.Campaign

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let jobs = 2

(* One timed campaign in a throwaway directory. *)
let run_campaign seeds =
  let tmp = Filename.temp_file "bench_campaign" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  let config =
    {
      Camp.default with
      Camp.dir = Filename.concat tmp "c";
      size = 4;
      seed_lo = 0;
      seed_hi = seeds;
      shard_size = 1024;
      jobs;
      log = ignore;
    }
  in
  let t0 = Unix.gettimeofday () in
  let rep =
    match Camp.run config with
    | Ok rep -> rep
    | Error e ->
        rm_rf tmp;
        prerr_endline ("bench_campaign: " ^ e);
        exit 2
  in
  let wall = Unix.gettimeofday () -. t0 in
  rm_rf tmp;
  (wall, rep)

(* ------------------------------------------------------------------ *)
(* Smoke mode                                                          *)
(* ------------------------------------------------------------------ *)

let smoke_seeds = 6_000

(* Pull a float field out of the committed baseline without a JSON
   dependency: the file is machine-written, so a textual scan is safe. *)
let baseline_field file key =
  let s = read_file file in
  let pat = Printf.sprintf "\"%s\":" key in
  let rec find i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then
      Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while
        !j < String.length s
        && (match s.[!j] with
           | '0' .. '9' | '.' | ' ' | '-' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.trim (String.sub s i (!j - i)))

let smoke baseline_file =
  let wall, rep = run_campaign smoke_seeds in
  match baseline_field baseline_file "smoke_wall_s" with
  | None ->
      Printf.eprintf "bench_campaign: no smoke baseline in %s\n" baseline_file;
      exit 2
  | Some base ->
      Printf.printf
        "bench_campaign smoke: %d seeds (%d tests) in %.3f s at -j %d \
         (baseline %.3f s, ratio %.2f)\n"
        smoke_seeds rep.Camp.totals.Camp.n_tests wall jobs base (wall /. base);
      if wall > 2.0 *. base then begin
        prerr_endline
          "bench_campaign: FAIL: smoke campaign more than 2x the baseline";
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Full mode                                                           *)
(* ------------------------------------------------------------------ *)

let full_seeds = 40_000

let full out =
  let smoke_wall, smoke_rep = run_campaign smoke_seeds in
  let wall, rep = run_campaign full_seeds in
  let t = rep.Camp.totals in
  let json =
    Printf.sprintf
      {|{
  "schema_version": 1,
  "jobs": %d,
  "models": "lk,cat,c11",
  "full": { "seeds": %d, "tests": %d, "wall_s": %.3f, "seeds_per_s": %.1f, "tests_per_s": %.1f },
  "smoke_seeds": %d, "smoke_tests": %d, "smoke_wall_s": %.3f, "smoke_seeds_per_s": %.1f
}
|}
      jobs full_seeds t.Camp.n_tests wall
      (float_of_int full_seeds /. wall)
      (float_of_int t.Camp.n_tests /. wall)
      smoke_seeds smoke_rep.Camp.totals.Camp.n_tests smoke_wall
      (float_of_int smoke_seeds /. smoke_wall)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  Printf.printf "bench_campaign: wrote %s\n%!" out

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: rest ->
      smoke (match rest with b :: _ -> b | [] -> "BENCH_campaign.json")
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_campaign.json"
