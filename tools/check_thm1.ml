let () =
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      List.iter
        (fun x ->
          incr total;
          if not (Lkmm.Rcu.theorem1_holds x) then begin
            incr bad;
            Printf.printf "Theorem 1 fails on an execution of %s\n" e.name
          end)
        (Exec.of_test test))
    Harness.Battery.all;
  Printf.printf "theorem1: %d executions checked, %d violations\n" !total !bad;
  exit (if !bad = 0 then 0 else 1)
