(* Benchmarks for the batched bit-plane candidate-evaluation path:
   per-layer attribution of the PR-8 hot-path changes (delta rf
   re-checking in the enumerator, the Rel.Batch bit-plane kernel in the
   native LKMM axioms and the cat interpreter's replay, the batched
   coherence prefilter) over the full-corpus battery, against both a
   freshly measured scalar run and the committed BENCH_rel baseline.
   Writes BENCH_batch.json.

     dune exec tools/bench_batch.exe [-- OUT.json]
     dune exec tools/bench_batch.exe -- --smoke [BASELINE.json]

   Smoke mode (for CI) reruns a reduced corpus slice — every 5th test,
   batched native LK and batched cat LK — and exits 1 if the slice
   takes more than twice the committed baseline's [smoke.total_s].

   The scalar reference numbers are re-measured in the same process
   (same machine, same best-of-3 battery loop), so the per-layer deltas
   are apples-to-apples; the committed BENCH_rel corpus numbers are
   also quoted so the cross-PR speedup claim stays attached to the
   measurement it came from. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Corpus battery                                                      *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  List.find_opt Sys.file_exists [ "corpus"; "../corpus"; "../../../corpus" ]

let load_corpus ?(stride = 1) () =
  match corpus_dir with
  | None -> failwith "corpus directory not found"
  | Some dir ->
      read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             Litmus.parse (read_file (Filename.concat dir file)))

let battery tests f =
  best_of 3 (fun () ->
      List.iter (fun t -> ignore (Sys.opaque_identity (f t))) tests)

let lk_cat = lazy (Lazy.force Cat.lk)

(* Each layer toggles exactly one thing against its neighbour, so the
   deltas attribute cleanly:
     native scalar        — delta off, no batch (the BENCH_rel config)
     native +delta        — delta rf re-checking in the enumerator only
     native batch         — bit-plane axioms, delta off
     native batch+delta   — the default production path
     native batch, no pf  — batched with the coherence prefilter off
   and for the cat path scalar vs batched replay. *)

type corpus_times = {
  native_scalar : float;
  native_delta : float;
  native_batch : float;
  native_batch_delta : float;
  native_batch_no_prefilter : float;
  cat_scalar : float;
  cat_batch : float;
}

let corpus_configs tests =
  let lk_batch = Lkmm.consistent_mask in
  let cat_scalar_model =
    Cat.to_check_model ~name:"LK(cat)" (Lazy.force lk_cat)
  in
  let cat_batched_model, cat_batch =
    Cat.to_batched_model ~name:"LK(cat)" (Lazy.force lk_cat)
  in
  {
    native_scalar =
      battery tests (fun t -> Exec.Check.run ~delta:false (module Lkmm) t);
    native_delta = battery tests (fun t -> Exec.Check.run (module Lkmm) t);
    native_batch =
      battery tests (fun t ->
          Exec.Check.run ~delta:false ~batch:lk_batch (module Lkmm) t);
    native_batch_delta =
      battery tests (fun t -> Exec.Check.run ~batch:lk_batch (module Lkmm) t);
    native_batch_no_prefilter =
      battery tests (fun t ->
          Exec.Check.run ~prefilter:false ~batch:lk_batch (module Lkmm) t);
    cat_scalar =
      battery tests (fun t -> Exec.Check.run ~delta:false cat_scalar_model t);
    cat_batch =
      battery tests (fun t ->
          Exec.Check.run ~batch:cat_batch cat_batched_model t);
  }

(* ------------------------------------------------------------------ *)
(* Smoke mode                                                          *)
(* ------------------------------------------------------------------ *)

let smoke_stride = 5

let run_smoke tests =
  let cat_model, cat_batch =
    Cat.to_batched_model ~name:"LK(cat)" (Lazy.force lk_cat)
  in
  battery tests (fun t ->
      ignore
        (Sys.opaque_identity
           (Exec.Check.run ~batch:Lkmm.consistent_mask (module Lkmm) t));
      Exec.Check.run ~batch:cat_batch cat_model t)

(* Pull a float field out of the committed baseline without a JSON
   dependency: the file is machine-written, so a textual scan is safe. *)
let baseline_field file key =
  let s = read_file file in
  let pat = Printf.sprintf "\"%s\":" key in
  let rec find i =
    if i + String.length pat > String.length s then None
    else if String.sub s i (String.length pat) = pat then
      Some (i + String.length pat)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while
        !j < String.length s
        && (match s.[!j] with
           | '0' .. '9' | '.' | ' ' | '-' | 'e' -> true
           | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.trim (String.sub s i (!j - i)))

let smoke baseline_file =
  let tests = load_corpus ~stride:smoke_stride () in
  let total = run_smoke tests in
  match baseline_field baseline_file "total_s" with
  | None ->
      Printf.eprintf "bench_batch: no smoke baseline in %s\n" baseline_file;
      exit 2
  | Some base ->
      Printf.printf
        "bench_batch smoke: %d tests, %.4f s (baseline %.4f s, ratio %.2f)\n"
        (List.length tests) total base (total /. base);
      if total > 2.0 *. base then begin
        prerr_endline
          "bench_batch: FAIL: smoke slice more than 2x the baseline";
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let bench_rel_file = "BENCH_rel.json"

let full out =
  let tests = load_corpus () in
  let c = corpus_configs tests in
  let smoke_total = run_smoke (load_corpus ~stride:smoke_stride ()) in
  let rel_native =
    Option.value ~default:Float.nan
      (baseline_field bench_rel_file "prefilter_on_s")
  and rel_cat =
    Option.value ~default:Float.nan
      (baseline_field bench_rel_file "cache_on_s")
  in
  let json =
    Printf.sprintf
      {|{
  "description": "batched bit-plane candidate evaluation (Rel.Batch) with delta rf re-checking, per-layer attribution over best-of-3 full-corpus battery passes; scalar reference re-measured in-process, BENCH_rel corpus numbers quoted for the cross-PR comparison",
  "corpus": {
    "n_tests": %d,
    "bench_rel_baseline": { "native_lk_s": %.4f, "cat_lk_s": %.4f },
    "native_lk": {
      "scalar_s": %.4f,
      "delta_s": %.4f,
      "batch_s": %.4f,
      "batch_delta_s": %.4f,
      "batch_no_prefilter_s": %.4f
    },
    "cat_lk": { "scalar_s": %.4f, "batch_s": %.4f },
    "speedup_native_batch_vs_scalar": %.2f,
    "speedup_cat_batch_vs_scalar": %.2f,
    "speedup_native_vs_bench_rel": %.2f,
    "speedup_cat_vs_bench_rel": %.2f
  },
  "smoke": { "stride": %d, "total_s": %.4f },
  "notes": "per-layer attribution — delta: native scalar %.4fs -> %.4fs is the enumerator re-ordering that patches rf/fr between adjacent candidates instead of rebuilding the witness; batch kernel: %.4fs -> %.4fs (delta off on both sides) is the bit-plane evaluation of the native axioms over up to 63 candidates per pass, including the batched coherence prefilter; batch+delta %.4fs is the default production path; batch with the prefilter disabled comes to %.4fs — near a wash on the native model, whose first batched axiom (Scpv) is the same sc-per-location test word-parallel, so the batched prefilter's value is for models that do not front-load coherence; cat %.4fs -> %.4fs is the word-parallel run_with_prefix replay.  Speedups vs BENCH_rel compare the batched default against that file's committed corpus numbers (same machine class, earlier commit)."
}
|}
      (List.length tests) rel_native rel_cat c.native_scalar c.native_delta
      c.native_batch c.native_batch_delta c.native_batch_no_prefilter
      c.cat_scalar c.cat_batch
      (c.native_scalar /. c.native_batch_delta)
      (c.cat_scalar /. c.cat_batch)
      (rel_native /. c.native_batch_delta)
      (rel_cat /. c.cat_batch) smoke_stride smoke_total c.native_scalar
      c.native_delta c.native_scalar c.native_batch c.native_batch_delta
      c.native_batch_no_prefilter c.cat_scalar c.cat_batch
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  if
    c.native_scalar /. c.native_batch_delta < 1.5
    && c.cat_scalar /. c.cat_batch < 1.5
  then
    prerr_endline
      "bench_batch: WARNING: batched speedup below 1.5x on both paths"

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: rest ->
      smoke (match rest with b :: _ -> b | [] -> "BENCH_batch.json")
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_batch.json"
