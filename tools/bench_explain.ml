(* Benchmark for verdict forensics: the cost of the --explain path on
   the BENCH_rel corpus battery, off and on.  Writes BENCH_explain.json.

     dune exec tools/bench_explain.exe [-- OUT.json]
     dune exec tools/bench_explain.exe -- --smoke

   Off is the case that matters: with no explainer, the checking loop
   must not retain counterexamples or touch the forensics code at all —
   the acceptance gate is <2% overhead relative to the committed
   BENCH_obs baseline for the very same battery (native LK + cached cat
   LK, best-of-3).  On-cost is recorded for documentation: the explainer
   runs once per Forbid verdict (cycle extraction + provenance
   decomposition + validation on a single candidate), never per
   candidate.

   Smoke mode (for CI) re-measures the reduced slice and fails if
   (a) the explain-off battery costs more than 2x the committed
   BENCH_obs smoke baseline — coarse, insensitive to runner speed —
   or (b) turning the explainer on costs more than 3x off on the same
   slice, which would mean forensics work leaked out of the
   Forbid-verdict path into the per-candidate loop. *)

module J = Harness.Journal.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

let corpus_dir =
  List.find_opt Sys.file_exists [ "corpus"; "../corpus"; "../../../corpus" ]

let load_corpus ?(stride = 1) () =
  match corpus_dir with
  | None -> failwith "corpus directory not found"
  | Some dir ->
      read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             Litmus.parse (read_file (Filename.concat dir file)))

let lk_cat = lazy (Lazy.force Cat.lk)

(* The same battery BENCH_rel and BENCH_obs time: native LK + cached
   cat LK per test; [explain] adds the explainers. *)
let battery ~explain tests =
  let model = Lazy.force lk_cat in
  let cat_model = Cat.to_check_model ~name:"LK(cat)" model in
  let native_ex = if explain then Some Lkmm.Explain.explainer else None in
  let cat_ex = if explain then Some (Cat.explainer model) else None in
  best_of 3 (fun () ->
      List.iter
        (fun t ->
          ignore
            (Sys.opaque_identity
               (Exec.Check.run ?explainer:native_ex (module Lkmm) t));
          ignore
            (Sys.opaque_identity
               (Exec.Check.run ?explainer:cat_ex cat_model t)))
        tests)

(* The committed BENCH_obs numbers for the same battery (the pre-forensics
   baseline the off case is held to). *)
let bench_obs_baseline () =
  match
    List.find_opt Sys.file_exists
      [ "BENCH_obs.json"; "../BENCH_obs.json"; "../../../BENCH_obs.json" ]
  with
  | None -> None
  | Some path -> (
      match J.of_string (read_file path) with
      | exception J.Malformed _ -> None
      | j ->
          let num obj k = Option.bind (J.mem k obj) J.num in
          let section k = J.mem k j in
          Option.bind (section "smoke") (fun s ->
              Option.bind (num s "disabled_s") (fun smoke ->
                  Option.bind (section "corpus") (fun c ->
                      Option.map
                        (fun full -> (full, smoke))
                        (num c "disabled_s")))))

let smoke_stride = 5

let smoke () =
  let tests = load_corpus ~stride:smoke_stride () in
  let off_s = battery ~explain:false tests in
  let on_s = battery ~explain:true tests in
  Printf.printf
    "bench_explain smoke: %d tests, off %.4f s, on %.4f s (on/off %.3f)\n"
    (List.length tests) off_s on_s (on_s /. off_s);
  (match bench_obs_baseline () with
  | Some (_, smoke_baseline) ->
      Printf.printf "  committed BENCH_obs smoke baseline: %.4f s (x%.2f)\n"
        smoke_baseline (off_s /. smoke_baseline);
      if off_s > 2. *. smoke_baseline then begin
        prerr_endline
          "bench_explain: FAIL: explain-off battery costs more than 2x the \
           committed BENCH_obs smoke baseline";
        exit 1
      end
  | None -> prerr_endline "bench_explain: BENCH_obs.json not found; skipping \
                           baseline gate");
  if on_s > 3. *. off_s then begin
    prerr_endline
      "bench_explain: FAIL: enabling the explainer costs more than 3x on the \
       corpus slice (forensics leaked into the per-candidate loop?)";
    exit 1
  end

let full out =
  let tests = load_corpus () in
  let off_s = battery ~explain:false tests in
  let on_s = battery ~explain:true tests in
  let sm_tests = load_corpus ~stride:smoke_stride () in
  let sm_off_s = battery ~explain:false sm_tests in
  let sm_on_s = battery ~explain:true sm_tests in
  let off_vs_obs =
    match bench_obs_baseline () with
    | Some (full_baseline, _) ->
        Printf.sprintf "%.3f" (off_s /. full_baseline)
    | None -> "null"
  in
  let json =
    Printf.sprintf
      {|{
  "description": "cost of verdict forensics on the BENCH_rel corpus battery (native LK + cached cat LK per test, best-of-3): off = Exec.Check.run without an explainer (must match the pre-forensics BENCH_obs baseline within 2%%); on = native + cat explainers, which run once per Forbid verdict (cycle extraction, provenance decomposition, validation), never per candidate",
  "corpus": {
    "n_tests": %d,
    "off_s": %.4f,
    "on_s": %.4f,
    "on_overhead_ratio": %.3f,
    "off_vs_bench_obs_disabled_ratio": %s
  },
  "smoke": { "stride": %d, "off_s": %.4f, "on_s": %.4f, "ratio": %.3f },
  "gates": {
    "off_vs_bench_obs": "off_s vs the committed BENCH_obs corpus disabled_s for the same battery on the same machine; must be within 2%%",
    "smoke_off_vs_bench_obs_max": 2.0,
    "smoke_on_vs_off_max": 3.0
  }
}
|}
      (List.length tests) off_s on_s (on_s /. off_s) off_vs_obs smoke_stride
      sm_off_s sm_on_s
      (sm_on_s /. sm_off_s)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json

let () =
  match Array.to_list Sys.argv with
  | _ :: "--smoke" :: _ -> smoke ()
  | _ :: out :: _ -> full out
  | _ -> full "BENCH_explain.json"
