(* Measures the cost of budget bookkeeping (deadline probes, candidate
   counters, arithmetic pre-claims) on happy-path workloads where no
   limit ever trips: the full battery through the batch runner, and a
   size-4 diy sweep through Sweep.classify.  Writes BENCH_budget.json.

     dune exec tools/bench_budget.exe [-- OUT.json]

   The budgets-on numbers use the runner defaults (10 s / 256 events /
   200k candidates); budgets-off runs the identical code with every
   limit absent.  Overhead is expected to stay below 5%. *)

let time2 f g =
  (* interleaved best-of-7 so machine drift hits both sides equally *)
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to 7 do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let t1 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (g ()));
    let t2 = Unix.gettimeofday () in
    if t1 -. t0 < !bf then bf := t1 -. t0;
    if t2 -. t1 < !bg then bg := t2 -. t1
  done;
  (!bf, !bg)

let pct off on_ = 100.0 *. (on_ -. off) /. off

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_budget.json" in

  let items = Harness.Runner.of_battery Harness.Battery.all in
  let battery_off, battery_on =
    time2
      (fun () -> Harness.Runner.run ~limits:Exec.Budget.unlimited items)
      (fun () -> Harness.Runner.run ~limits:Exec.Budget.default items)
  in

  let tests = Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 4 in
  let sweep_off, sweep_on =
    time2
      (fun () -> Harness.Sweep.classify ~runs:500 tests)
      (fun () ->
        Harness.Sweep.classify ~limits:Exec.Budget.default ~runs:500 tests)
  in

  let json =
    Printf.sprintf
      {|{
  "description": "wall-clock cost of budget bookkeeping on happy-path workloads (no limit trips); interleaved best of 7 runs",
  "battery_runner": {
    "n_items": %d,
    "budgets_off_s": %.4f,
    "budgets_on_s": %.4f,
    "overhead_pct": %.2f
  },
  "diy_sweep_size4": {
    "n_tests": %d,
    "budgets_off_s": %.4f,
    "budgets_on_s": %.4f,
    "overhead_pct": %.2f
  }
}
|}
      (List.length items) battery_off battery_on (pct battery_off battery_on)
      (List.length tests) sweep_off sweep_on (pct sweep_off sweep_on)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  print_string json;
  if pct battery_off battery_on > 5.0 || pct sweep_off sweep_on > 5.0 then
    prerr_endline "bench_budget: WARNING: overhead above 5%"
