(** Events of candidate executions (paper, Section 2).

    Events model primitives: reads (R) and writes (W) to shared locations,
    and fences (F), each carrying an annotation per Tables 3 and 4 —
    [once]/[acquire] for reads, [once]/[release] for writes, the fence
    kinds, and the RCU markers. *)

type dir = R | W | F

type annot =
  | Once
  | Acquire
  | Release
  | Rmb
  | Wmb
  | Mb
  | Rb_dep
  | Rcu_lock
  | Rcu_unlock
  | Sync_rcu
  | Init  (** initialising writes; they belong to no thread *)

type t = {
  id : int;  (** dense identifier, index into the execution's event array *)
  tid : int;  (** thread, or [-1] for initialising writes *)
  dir : dir;
  loc : string;  (** accessed location; [""] for fences *)
  v : int;  (** value read or written; [0] for fences *)
  annot : annot;
}

val is_read : t -> bool
val is_write : t -> bool

(** [is_mem e] holds for reads and writes (the cat set [M]). *)
val is_mem : t -> bool

val is_fence : t -> bool
val is_init : t -> bool
val annot_to_string : annot -> string
val dir_to_string : dir -> string

(** Prints in the paper's style, e.g. [3: T1 R[once] x=1]. *)
val pp : t Fmt.t
