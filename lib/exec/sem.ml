(* Per-thread semantics: symbolic execution of one thread under every
   possible assignment of values to its reads, yielding thread candidates
   with events (in program order), dependency edges and final register
   values.  Event identifiers are local to the thread (0-based, in program
   order) and re-based when threads are combined into executions. *)

module Iset = Rel.Iset
open Litmus.Ast

type proto_event = {
  dir : Event.dir;
  loc : string;
  v : int;
  annot : Event.annot;
}

type candidate = {
  events : proto_event list; (* in program order *)
  addr : (int * int) list;
  data : (int * int) list;
  ctrl : (int * int) list;
  rmw : (int * int) list;
  regs : (string * int) list; (* final register values *)
}

type state = {
  test : Litmus.Ast.t;
  domain : string -> int list; (* candidate read values, per location *)
  env : (string * (int * Iset.t)) list; (* register -> value, read deps *)
  ctrl_ctx : Iset.t; (* reads controlling the current branch *)
  rev_events : proto_event list;
  next : int;
  acc_addr : (int * int) list;
  acc_data : (int * int) list;
  acc_ctrl : (int * int) list;
  acc_rmw : (int * int) list;
}

let bool_to_int b = if b then 1 else 0

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Eq -> bool_to_int (a = b)
  | Neq -> bool_to_int (a <> b)
  | Lt -> bool_to_int (a < b)
  | Gt -> bool_to_int (a > b)
  | Le -> bool_to_int (a <= b)
  | Ge -> bool_to_int (a >= b)
  | Land -> bool_to_int (a <> 0 && b <> 0)
  | Lor -> bool_to_int (a <> 0 || b <> 0)

(* Evaluate a pure expression to (value, set of reads it depends on). *)
let rec eval st = function
  | Const n -> (n, Iset.empty)
  | Addr x -> (address_of st.test x, Iset.empty)
  | Reg r -> (
      match List.assoc_opt r st.env with
      | Some vd -> vd
      | None -> (0, Iset.empty) (* uninitialised registers read as 0 *))
  | Binop (op, a, b) ->
      let va, da = eval st a and vb, db = eval st b in
      (eval_binop op va vb, Iset.union da db)
  | Unop (Neg, a) ->
      let v, d = eval st a in
      (-v, d)
  | Unop (Lnot, a) ->
      let v, d = eval st a in
      (bool_to_int (v = 0), d)

(* Resolve a location expression to (global name, address deps); [None] if a
   dereferenced register does not hold the address of a global (the branch
   of the exploration is then infeasible). *)
let resolve_loc st = function
  | Sym x -> Some (x, Iset.empty)
  | Deref r ->
      let v, deps = eval st (Reg r) in
      Option.map (fun x -> (x, deps)) (global_of_address st.test v)

let emit st proto = ({ st with rev_events = proto :: st.rev_events; next = st.next + 1 }, st.next)

let add_edges edges st field =
  match field with
  | `Addr -> { st with acc_addr = edges @ st.acc_addr }
  | `Data -> { st with acc_data = edges @ st.acc_data }
  | `Ctrl -> { st with acc_ctrl = edges @ st.acc_ctrl }

let edges_from deps target = List.map (fun s -> (s, target)) (Iset.elements deps)

(* Emit ctrl edges from the current control context to a fresh event. *)
let with_ctrl st id = add_edges (edges_from st.ctrl_ctx id) st `Ctrl

let read_annot_to_event = function R_once -> Event.Once | R_acquire -> Event.Acquire
let write_annot_to_event = function W_once -> Event.Once | W_release -> Event.Release

let fence_annot = function
  | F_rmb -> Event.Rmb
  | F_wmb -> Event.Wmb
  | F_mb -> Event.Mb
  | F_rb_dep -> Event.Rb_dep
  | F_rcu_lock -> Event.Rcu_lock
  | F_rcu_unlock -> Event.Rcu_unlock
  | F_sync_rcu -> Event.Sync_rcu

(* Explore instructions; continuation-passing over lists of final states. *)
let rec explore st instrs =
  match instrs with
  | [] -> [ st ]
  | i :: rest -> List.concat_map (fun st' -> explore st' rest) (step st i)

and step st = function
  | Assign (r, e) ->
      let vd = eval st e in
      [ { st with env = (r, vd) :: List.remove_assoc r st.env } ]
  | Fence f ->
      let st', id =
        emit st { dir = Event.F; loc = ""; v = 0; annot = fence_annot f }
      in
      [ with_ctrl st' id ]
  | Read (a, r, l) -> do_read st (read_annot_to_event a) ~rb_dep:false r l
  | Rcu_dereference (r, l) -> do_read st Event.Once ~rb_dep:true r l
  | Write (a, l, e) -> (
      match resolve_loc st l with
      | None -> []
      | Some (loc, adeps) ->
          let v, ddeps = eval st e in
          let st, id =
            emit st
              { dir = Event.W; loc; v; annot = write_annot_to_event a }
          in
          let st = add_edges (edges_from adeps id) st `Addr in
          let st = add_edges (edges_from ddeps id) st `Data in
          [ with_ctrl st id ])
  | Xchg (k, r, l, e) -> (
      match resolve_loc st l with
      | None -> []
      | Some (loc, adeps) ->
          let vnew, ddeps = eval st e in
          let r_annot, w_annot, full =
            match k with
            | X_relaxed -> (Event.Once, Event.Once, false)
            | X_acquire -> (Event.Acquire, Event.Once, false)
            | X_release -> (Event.Once, Event.Release, false)
            | X_full -> (Event.Once, Event.Once, true)
          in
          List.map
            (fun vold ->
              let st = st in
              let st, _ =
                if full then
                  let st, id = emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb } in
                  (with_ctrl st id, id)
                else (st, -1)
              in
              let st, rid =
                emit st { dir = Event.R; loc; v = vold; annot = r_annot }
              in
              let st = add_edges (edges_from adeps rid) st `Addr in
              let st = with_ctrl st rid in
              let st, wid =
                emit st { dir = Event.W; loc; v = vnew; annot = w_annot }
              in
              let st = add_edges (edges_from adeps wid) st `Addr in
              let st = add_edges (edges_from ddeps wid) st `Data in
              let st = with_ctrl st wid in
              let st = { st with acc_rmw = (rid, wid) :: st.acc_rmw } in
              let st, _ =
                if full then
                  let st, id = emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb } in
                  (with_ctrl st id, id)
                else (st, -1)
              in
              {
                st with
                env = (r, (vold, Iset.singleton rid)) :: List.remove_assoc r st.env;
              })
            (st.domain loc))
  | Cmpxchg (k, r, l, old_e, new_e) -> (
      match resolve_loc st l with
      | None -> []
      | Some (loc, adeps) ->
          let v_old, odeps = eval st old_e in
          let v_new, ndeps = eval st new_e in
          let r_annot, w_annot, full =
            match k with
            | X_relaxed -> (Event.Once, Event.Once, false)
            | X_acquire -> (Event.Acquire, Event.Once, false)
            | X_release -> (Event.Once, Event.Release, false)
            | X_full -> (Event.Once, Event.Once, true)
          in
          List.map
            (fun vread ->
              if vread <> v_old then begin
                (* failure: a plain once read, no ordering, no fences *)
                let st, rid =
                  emit st { dir = Event.R; loc; v = vread; annot = Event.Once }
                in
                let st = add_edges (edges_from adeps rid) st `Addr in
                let st = add_edges (edges_from odeps rid) st `Addr in
                let st = with_ctrl st rid in
                {
                  st with
                  env =
                    (r, (vread, Iset.singleton rid))
                    :: List.remove_assoc r st.env;
                }
              end
              else begin
                let st, _ =
                  if full then
                    let st, id =
                      emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb }
                    in
                    (with_ctrl st id, id)
                  else (st, -1)
                in
                let st, rid =
                  emit st { dir = Event.R; loc; v = vread; annot = r_annot }
                in
                let st = add_edges (edges_from adeps rid) st `Addr in
                let st = add_edges (edges_from odeps rid) st `Addr in
                let st = with_ctrl st rid in
                let st, wid =
                  emit st { dir = Event.W; loc; v = v_new; annot = w_annot }
                in
                let st = add_edges (edges_from adeps wid) st `Addr in
                let st = add_edges (edges_from ndeps wid) st `Data in
                (* success is conditional on the read's value *)
                let st = add_edges [ (rid, wid) ] st `Ctrl in
                let st = with_ctrl st wid in
                let st = { st with acc_rmw = (rid, wid) :: st.acc_rmw } in
                let st, _ =
                  if full then
                    let st, id =
                      emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb }
                    in
                    (with_ctrl st id, id)
                  else (st, -1)
                in
                {
                  st with
                  env =
                    (r, (vread, Iset.singleton rid))
                    :: List.remove_assoc r st.env;
                }
              end)
            (st.domain loc))
  | Atomic_add_return (k, r, l, e) -> do_atomic_add st ~k ~reg:(Some r) l e
  | Atomic_add (l, e) -> do_atomic_add st ~k:X_relaxed ~reg:None l e
  | Spin_lock l -> (
      (* xchg_acquire on the lock that must read 0 (Section 7): the failed
         acquisitions spin and are not events of the candidate execution *)
      match resolve_loc st l with
      | None -> []
      | Some (loc, adeps) ->
          let st, rid =
            emit st { dir = Event.R; loc; v = 0; annot = Event.Acquire }
          in
          let st = add_edges (edges_from adeps rid) st `Addr in
          let st = with_ctrl st rid in
          let st, wid =
            emit st { dir = Event.W; loc; v = 1; annot = Event.Once }
          in
          let st = add_edges (edges_from adeps wid) st `Addr in
          let st = with_ctrl st wid in
          [ { st with acc_rmw = (rid, wid) :: st.acc_rmw } ])
  | Spin_unlock l -> (
      match resolve_loc st l with
      | None -> []
      | Some (loc, adeps) ->
          let st, id =
            emit st { dir = Event.W; loc; v = 0; annot = Event.Release }
          in
          let st = add_edges (edges_from adeps id) st `Addr in
          [ with_ctrl st id ])
  | If (e, then_b, else_b) ->
      let v, deps = eval st e in
      let branch = if v <> 0 then then_b else else_b in
      let saved_ctx = st.ctrl_ctx in
      let st = { st with ctrl_ctx = Iset.union st.ctrl_ctx deps } in
      List.map
        (fun st' -> { st' with ctrl_ctx = saved_ctx })
        (explore st branch)

(* atomic_add_return and the void atomics: an unconditional rmw whose
   written value is old + delta, hence a data dependency from the read to
   the write. *)
and do_atomic_add st ~k ~reg l e =
  match resolve_loc st l with
  | None -> []
  | Some (loc, adeps) ->
      let delta, ddeps = eval st e in
      let r_annot, w_annot, full =
        match k with
        | X_relaxed -> (Event.Once, Event.Once, false)
        | X_acquire -> (Event.Acquire, Event.Once, false)
        | X_release -> (Event.Once, Event.Release, false)
        | X_full -> (Event.Once, Event.Once, true)
      in
      List.map
        (fun vold ->
          let st, _ =
            if full then
              let st, id =
                emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb }
              in
              (with_ctrl st id, id)
            else (st, -1)
          in
          let st, rid =
            emit st { dir = Event.R; loc; v = vold; annot = r_annot }
          in
          let st = add_edges (edges_from adeps rid) st `Addr in
          let st = with_ctrl st rid in
          let st, wid =
            emit st { dir = Event.W; loc; v = vold + delta; annot = w_annot }
          in
          let st = add_edges (edges_from adeps wid) st `Addr in
          (* the new value is computed from the old one *)
          let st = add_edges ((rid, wid) :: edges_from ddeps wid) st `Data in
          let st = with_ctrl st wid in
          let st = { st with acc_rmw = (rid, wid) :: st.acc_rmw } in
          let st, _ =
            if full then
              let st, id =
                emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Mb }
              in
              (with_ctrl st id, id)
            else (st, -1)
          in
          match reg with
          | Some r ->
              {
                st with
                env =
                  (r, (vold + delta, Iset.singleton rid))
                  :: List.remove_assoc r st.env;
              }
          | None -> st)
        (st.domain loc)

and do_read st annot ~rb_dep r l =
  match resolve_loc st l with
  | None -> []
  | Some (loc, adeps) ->
      List.map
        (fun v ->
          let st, id = emit st { dir = Event.R; loc; v; annot } in
          let st = add_edges (edges_from adeps id) st `Addr in
          let st = with_ctrl st id in
          let st =
            if rb_dep then
              let st, fid =
                emit st { dir = Event.F; loc = ""; v = 0; annot = Event.Rb_dep }
              in
              with_ctrl st fid
            else st
          in
          {
            st with
            env = (r, (v, Iset.singleton id)) :: List.remove_assoc r st.env;
          })
        (st.domain loc)

(* All candidates of one thread under the given read-value domain. *)
let thread_candidates test domain instrs =
  let init =
    {
      test;
      domain;
      env = [];
      ctrl_ctx = Iset.empty;
      rev_events = [];
      next = 0;
      acc_addr = [];
      acc_data = [];
      acc_ctrl = [];
      acc_rmw = [];
    }
  in
  List.map
    (fun st ->
      {
        events = List.rev st.rev_events;
        addr = st.acc_addr;
        data = st.acc_data;
        ctrl = st.acc_ctrl;
        rmw = st.acc_rmw;
        regs = List.map (fun (r, (v, _)) -> (r, v)) st.env;
      })
    (explore init instrs)
