(** Running a litmus test against a consistency model.

    A model is anything deciding per-execution consistency; a test is
    Allowed iff some consistent execution exhibits the distinguishing
    outcome of its condition (herd's Ok/No verdicts).  A third verdict,
    [Unknown], reports a partial result when a per-test {!Budget} trips
    or the model fails on a candidate. *)

module type MODEL = sig
  val name : string

  (** [consistent x] holds iff [x] satisfies every constraint of the
      model. *)
  val consistent : Execution.t -> bool
end

(** A batched consistency oracle.  All candidates of [xs] are pairwise
    {!Execution.static_compatible} — the model may take every
    witness-independent part (events up to values, static relations,
    event-class sets) from [xs.(0)]; bit [c] of the result must equal
    [M.consistent xs.(c)] for every [c] set in [mask] (bits outside
    [mask] are ignored).  [~coherent] asserts that every candidate of
    [mask] already passed the sc-per-location prefilter, so a model
    whose coherence axiom is exactly that check may skip re-deciding
    it.  Differential equivalence with the scalar [consistent] is the
    correctness contract (exercised by the randomized suite and the
    corpus-wide agreement checks in test/). *)
type batch_fn = coherent:bool -> mask:int -> Execution.t array -> int

type unknown_reason =
  | Budget_exceeded of Budget.reason
  | Model_error of exn  (** the model raised on some candidate *)
  | Crashed of int
      (** the isolated worker checking the test died on this signal;
          produced only by process isolation ({!Harness.Pool}) *)

type verdict = Allow | Forbid | Unknown of unknown_reason

(** The checking engine that produced a result: the scalar enumerator,
    the bit-plane batched enumerator, or the symbolic SAT backend.
    Engine selection flows through {!Oracle.t}; the result (and the
    report entry built from it) records which engine actually ran. *)
type backend = Enum | Batch | Sat

val backend_to_string : backend -> string

(** Solver counters, present on results that involved the SAT backend:
    conflicts and decisions accumulated across the per-structure
    solves, and [fallback] marking a result that was requested as [Sat]
    but ran enumeratively because the oracle ships no solver. *)
type sat_stats = { conflicts : int; decisions : int; fallback : bool }

(** Human name for a signal number (SIGSEGV, SIGKILL, ...). *)
val signal_name : int -> string

val unknown_reason_to_string : unknown_reason -> string
val verdict_to_string : verdict -> string
val pp_verdict : verdict Fmt.t

type result = {
  verdict : verdict;
  n_candidates : int;  (** candidate executions enumerated *)
  n_prefiltered : int;
      (** rejected by the sc-per-location prefilter before the model ran
          (a subset of [n_candidates]) *)
  n_consistent : int;  (** consistent under the model *)
  n_matching : int;  (** consistent and satisfying the condition *)
  witness : Execution.t option;
      (** a consistent execution matching the condition, if any *)
  outcomes : (Execution.outcome * bool) list;
      (** observable outcomes of consistent executions; the flag marks
          outcomes satisfying the condition *)
  counterexample : Execution.t option;
      (** with [?explainer] and a Forbid verdict: the candidate the
          explanations describe — a condition-satisfying candidate the
          model rejected (the one a herd diagram of the violation should
          draw) *)
  explanations : Explain.t list;
      (** with [?explainer] and a Forbid verdict: one validated
          explanation per failing check of [counterexample] *)
  backend : backend;  (** the engine that produced this result *)
  sat : sat_stats option;  (** solver counters, SAT backend only *)
}

(** [unknown reason] is an empty result with an [Unknown] verdict —
    the partial-result constructor used when a budget trips or an
    engine fails; [n_candidates] reports the budget's partial count. *)
val unknown :
  ?budget:Budget.t -> ?backend:backend -> ?sat:sat_stats ->
  unknown_reason -> result

(** [run (module M) test] streams the candidate executions of [test],
    filters them through [M.consistent] and interprets the quantifier:
    for [exists]/[~exists] the verdict asks whether some consistent
    execution satisfies the condition body, for [forall] whether some
    consistent execution violates it.  Candidates are consumed one at a
    time as the enumeration produces them (nothing retains the full
    list), and [n_candidates] counts them as consumed.

    With [?prefilter] (default [true]), candidates failing the
    sc-per-location check ({!Execution.coherent}) are rejected — and
    tallied in [n_prefiltered] — without running the model.  This is
    sound for any model that enforces coherence, which every shipped
    model does; pass [~prefilter:false] for an exotic model that allows
    incoherent executions.

    With [?budget], the check never raises: budget violations and model
    failures yield an [Unknown] verdict whose [n_candidates] counts the
    partial progress.  Without a budget, exceptions propagate as
    before.

    With [?explainer] (verdict forensics), the first condition-
    satisfying candidate the model rejects is retained — preferring one
    that reached the model over one the prefilter killed — and, when the
    verdict comes out Forbid, handed to the explainer; its validated
    explanations ride in [explanations].  The explainer raising
    {!Explain.Invalid} is a hard error: under a budget it surfaces as
    [Unknown (Model_error _)], otherwise it propagates.  Without
    [?explainer] the streaming loop is unchanged up to one option test
    per rejected candidate.

    With [?batch], candidates are buffered — up to 63 pairwise
    {!Execution.static_compatible} ones, which spans enumeration-
    adjacent event structures when they differ only in read values —
    and decided by word-parallel passes over candidate-major bit
    planes: the sc-per-location prefilter through
    {!Execution.coherent_mask} and the model through the given
    {!batch_fn}; the buffer is then tallied in enumeration order, so
    every observable of the result (counters, outcomes, witness and
    counterexample identity) matches the scalar path's.  [?delta]
    (default on) is forwarded to {!Execution.of_test_seq}'s incremental
    re-evaluation; both default paths are toggled off together by the
    CLIs' [--no-batch]. *)
val run :
  ?budget:Budget.t -> ?prefilter:bool -> ?delta:bool -> ?batch:batch_fn ->
  ?explainer:(Execution.t -> Explain.t list) -> (module MODEL) ->
  Litmus.Ast.t -> result

(** The observable outcomes allowed by the model, ignoring the condition;
    used to compare models with the operational simulators.  Streams and
    prefilters like {!run}.  Raises {!Budget.Exceeded} when a budget is
    given and trips (callers decide how to report partial soundness
    information). *)
val allowed_outcomes :
  ?budget:Budget.t -> ?prefilter:bool -> ?delta:bool -> ?batch:batch_fn ->
  (module MODEL) -> Litmus.Ast.t -> Execution.outcome list
