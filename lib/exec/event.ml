(* Events model primitives (paper, Section 2): reads, writes and fences,
   annotated per Tables 3 and 4. *)

type dir = R | W | F

type annot =
  | Once
  | Acquire
  | Release
  | Rmb
  | Wmb
  | Mb
  | Rb_dep
  | Rcu_lock
  | Rcu_unlock
  | Sync_rcu
  | Init (* initialising writes; not in any thread *)

type t = {
  id : int;
  tid : int; (* -1 for initialising writes *)
  dir : dir;
  loc : string; (* "" for fences *)
  v : int; (* value read / written; 0 for fences *)
  annot : annot;
}

let is_read e = e.dir = R
let is_write e = e.dir = W
let is_mem e = e.dir <> F
let is_fence e = e.dir = F
let is_init e = e.annot = Init

let annot_to_string = function
  | Once -> "once"
  | Acquire -> "acquire"
  | Release -> "release"
  | Rmb -> "rmb"
  | Wmb -> "wmb"
  | Mb -> "mb"
  | Rb_dep -> "rb-dep"
  | Rcu_lock -> "rcu-lock"
  | Rcu_unlock -> "rcu-unlock"
  | Sync_rcu -> "sync-rcu"
  | Init -> "init"

let dir_to_string = function R -> "R" | W -> "W" | F -> "F"

let pp ppf e =
  if e.dir = F then
    Fmt.pf ppf "%d: T%d F[%s]" e.id e.tid (annot_to_string e.annot)
  else
    Fmt.pf ppf "%d: T%d %s[%s] %s=%d" e.id e.tid (dir_to_string e.dir)
      (annot_to_string e.annot) e.loc e.v
