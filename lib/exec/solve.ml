(* The symbolic checking backend: one event structure's candidate space
   rendered as CNF and decided by the CDCL core in [lib/sat], instead
   of enumerated.

   Encoding, per {!Execution.skeleton}:
   - rf: one-hot choice variables per read over its candidate writers;
   - co: per-location boolean order variables [before(w,w')] with
     antisymmetry by literal sign, totality by construction and
     transitivity clauses — per-location total orders as booleans;
   - fr: derived, [fr(r,w') <- rf(w,r) /\ co(w,w')];
   - the sc-per-location check (acyclic po-loc | rf | co | fr), which
     doubles as the coherence prefilter and the native model's Scpv;
   - the final-state condition, Tseitin-encoded over the co-maximality
     literals of each location's writes;
   - the model's axioms, contributed by an [axioms] callback over the
     {!Sym} combinators (native LKMM: [Lkmm.Symbolic]).

   Every derived relation of the LK chain is *monotone* in rf and co
   (nothing negates a dynamic relation — only static relations are
   subtracted or intersected), so auxiliary variables carry one-sided
   "support" clauses only: components true force the derived entry
   true, making every auxiliary at least its least fixpoint in any
   model.  The axioms are all negative (acyclicity, irreflexivity,
   emptiness), so deciding them against these over-approximations is
   exact — a real violation forces the asserted-false literal true, and
   a genuinely consistent witness extends to a model by valuing every
   auxiliary exactly at its least fixpoint.  No refinement loop is
   needed.

   Acyclicity is encoded through reachability witnesses — transitive-
   closure variables restricted, via {!Rel}'s dense-bitset closures, to
   pairs with a may-path back (the strongly-connected cycle core);
   pairs with no may-reachability get no variable at all, and edges
   closing a must-path are asserted false up front (closure-based
   unreachability and implied-literal preprocessing).

   [run] asks the existential question directly — "is there a
   consistent candidate matching the condition?" — decodes any model
   back to an {!Execution.t} and re-validates it through the scalar
   [M.consistent] path: a decoded witness failing re-validation is a
   hard {!Spurious} error (surfacing as [Model_error]), mirroring
   [Explain.validate]'s stance that a solver bug must never become a
   verdict. *)

type lit3 = F | T | L of int

type ctx = { s : Sat.Solver.t; n : int }

exception Spurious of string

let neg = function F -> T | T -> F | L l -> L (-l)

(* Assert a disjunction; [T] members satisfy it statically, [F] members
   drop out.  An all-[F] clause marks the instance unsatisfiable. *)
let clause ctx lits =
  if not (List.exists (fun l -> l = T) lits) then
    Sat.Solver.add_clause ctx.s
      (List.filter_map (function L l -> Some l | _ -> None) lits)

let fresh ctx = L (Sat.Solver.new_var ctx.s)

(* Support-only disjunction: the result is forced true by any true
   member.  Exact for the monotone derivation chain; not an
   equivalence. *)
let or_support ctx lits =
  let lits = List.filter (( <> ) F) lits in
  if List.exists (( = ) T) lits then T
  else
    match lits with
    | [] -> F
    | [ l ] -> l
    | _ ->
        let z = fresh ctx in
        List.iter (fun l -> clause ctx [ neg l; z ]) lits;
        z

(* Support-only conjunction: forced true when every member is. *)
let and_support ctx lits =
  if List.exists (( = ) F) lits then F
  else
    let lits = List.filter (( <> ) T) lits in
    match lits with
    | [] -> T
    | [ l ] -> l
    | _ ->
        let z = fresh ctx in
        clause ctx (z :: List.map neg lits);
        z

(* Two-sided (Tseitin) connectives for the condition — it appears under
   negation, so both directions are constrained. *)
let or_full ctx lits =
  let lits = List.filter (( <> ) F) lits in
  if List.exists (( = ) T) lits then T
  else
    match lits with
    | [] -> F
    | [ l ] -> l
    | _ ->
        let z = fresh ctx in
        List.iter (fun l -> clause ctx [ neg l; z ]) lits;
        clause ctx (neg z :: lits);
        z

let and_full ctx lits = neg (or_full ctx (List.map neg lits))

let assert_lit ctx l = clause ctx [ l ]

(* ------------------------------------------------------------------ *)
(* Symbolic relations                                                  *)
(* ------------------------------------------------------------------ *)

module Sym = struct
  type t = lit3 array array

  let make n = Array.make_matrix n n F
  let entry (a : t) x y = a.(x).(y)

  let const ctx r =
    let a = make ctx.n in
    Rel.iter (fun x y -> a.(x).(y) <- T) r;
    a

  (* Projections: the pairs that may hold in some assignment, and the
     pairs that hold in every assignment.  {!Rel}'s dense bitsets then
     run the closure-based preprocessing on these. *)
  let may_of (a : t) =
    let r = ref Rel.empty in
    Array.iteri
      (fun x row ->
        Array.iteri (fun y e -> if e <> F then r := Rel.add x y !r) row)
      a;
    !r

  let must_of (a : t) =
    let r = ref Rel.empty in
    Array.iteri
      (fun x row ->
        Array.iteri (fun y e -> if e = T then r := Rel.add x y !r) row)
      a;
    !r

  let union ctx (a : t) (b : t) : t =
    Array.init ctx.n (fun x ->
        Array.init ctx.n (fun y -> or_support ctx [ a.(x).(y); b.(x).(y) ]))

  let inter ctx (a : t) (b : t) : t =
    Array.init ctx.n (fun x ->
        Array.init ctx.n (fun y -> and_support ctx [ a.(x).(y); b.(x).(y) ]))

  let inter_const (a : t) r : t =
    Array.mapi
      (fun x row -> Array.mapi (fun y e -> if Rel.mem x y r then e else F) row)
      a

  let diff_const (a : t) r : t =
    Array.mapi
      (fun x row -> Array.mapi (fun y e -> if Rel.mem x y r then F else e) row)
      a

  (* a ; b — disjunction over middle events of pairwise conjunctions. *)
  let seq ctx (a : t) (b : t) : t =
    let n = ctx.n in
    let terms = Array.make_matrix n n [] in
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        if a.(x).(y) <> F then
          for z = 0 to n - 1 do
            if b.(y).(z) <> F then
              terms.(x).(z) <-
                and_support ctx [ a.(x).(y); b.(y).(z) ] :: terms.(x).(z)
          done
      done
    done;
    Array.init n (fun x -> Array.init n (fun z -> or_support ctx terms.(x).(z)))

  let inverse (a : t) : t =
    let n = Array.length a in
    Array.init n (fun x -> Array.init n (fun y -> a.(y).(x)))

  (* Transitive closure with support-only reachability witnesses,
     restricted to the may-closure (unreachable pairs stay [F] and get
     no variable); pairs already connected by must-edges alone are [T]
     outright. *)
  let plus ctx (a : t) : t =
    let may = may_of a and must = must_of a in
    let may_plus = Rel.transitive_closure may in
    let must_plus = Rel.transitive_closure must in
    let r = make ctx.n in
    Rel.iter
      (fun x y -> r.(x).(y) <- (if Rel.mem x y must_plus then T else fresh ctx))
      may_plus;
    (* base: an edge forces its closure entry *)
    Array.iteri
      (fun x row ->
        Array.iteri
          (fun y e ->
            match (e, r.(x).(y)) with
            | F, _ | _, T -> ()
            | e, t -> clause ctx [ neg e; t ])
          row)
      a;
    (* step: t(x,y) ; edge(y,z) forces t(x,z) *)
    Rel.iter
      (fun x y ->
        Array.iteri
          (fun z e ->
            if e <> F && r.(x).(z) <> T then
              clause ctx [ neg r.(x).(y); neg e; r.(x).(z) ])
          a.(y))
      may_plus;
    r

  let opt (a : t) : t =
    let b = Array.map Array.copy a in
    for x = 0 to Array.length b - 1 do
      b.(x).(x) <- T
    done;
    b

  let star ctx (a : t) : t = opt (plus ctx a)

  let is_static_empty (a : t) = Array.for_all (Array.for_all (( = ) F)) a

  (* acyclic a: no diagonal entry of the closure may hold.  Preprocessed
     on the dense-bitset projections — a must-cycle kills the instance
     outright, an edge whose endpoints already close a must-path is an
     implied false literal, and closure variables are introduced only
     for edges with a may-path back (edges with no return path cannot
     lie on any cycle and are dropped before the closure is built). *)
  let assert_acyclic ctx (a : t) =
    let may = may_of a in
    if not (Rel.is_empty may) then begin
      let must_plus = Rel.transitive_closure (must_of a) in
      if not (Rel.is_irreflexive must_plus) then clause ctx []
      else begin
        let may_plus = Rel.transitive_closure may in
        (* self-loops can never be allowed *)
        for x = 0 to ctx.n - 1 do
          match a.(x).(x) with F -> () | e -> clause ctx [ neg e ]
        done;
        (* implied literals: an edge closing a must-path back is false *)
        Array.iteri
          (fun x row ->
            Array.iteri
              (fun y e ->
                match e with
                | L _ when x <> y && Rel.mem y x must_plus ->
                    clause ctx [ neg e ]
                | _ -> ())
              row)
          a;
        (* cycle core: keep an edge iff a may return path exists *)
        let core =
          Array.init ctx.n (fun x ->
              Array.init ctx.n (fun y ->
                  if x <> y && Rel.mem y x may_plus then a.(x).(y) else F))
        in
        if not (is_static_empty core) then begin
          let t = plus ctx core in
          for x = 0 to ctx.n - 1 do
            match t.(x).(x) with F -> () | e -> clause ctx [ neg e ]
          done
        end
      end
    end

  let assert_irreflexive ctx (a : t) =
    for x = 0 to ctx.n - 1 do
      match a.(x).(x) with F -> () | e -> clause ctx [ neg e ]
    done

  let assert_empty ctx (a : t) =
    Array.iter (Array.iter (function F -> () | e -> clause ctx [ neg e ])) a
end

(* ------------------------------------------------------------------ *)
(* Per-structure encoding                                              *)
(* ------------------------------------------------------------------ *)

(* What an axioms callback sees: the solver context, a representative
   execution of the structure (witness empty — every *static* relation
   and event set of it is valid and physically shared with the decoded
   witness) and the three symbolic witness relations. *)
type enc = {
  ctx : ctx;
  rep : Execution.t;
  rf : Sym.t;
  co : Sym.t;
  fr : Sym.t;
}

type axioms = enc -> unit

(* One structure, encoded.  [None] when some read has no candidate
   writer: the structure contributes zero candidates and is vacuously
   unsatisfiable. *)
type encoded = {
  e : enc;
  sk : Execution.skeleton;
  rf_vars : (int * int * lit3) list list;
      (* per read, aligned with [sk_rf_choices]: the one-hot literals *)
}

let encode_structure ~scpv (sk : Execution.skeleton) =
  if List.exists (( = ) []) sk.Execution.sk_rf_choices then None
  else begin
    let rep = Execution.instantiate sk ~rf:Rel.empty ~co:Rel.empty in
    let n = Array.length sk.Execution.sk_events in
    let ctx = { s = Sat.Solver.create (); n } in
    (* rf: one-hot per read *)
    let rf = Sym.make n in
    let rf_vars =
      List.map
        (fun choices ->
          match choices with
          | [ (w, r) ] ->
              rf.(w).(r) <- T;
              [ (w, r, T) ]
          | choices ->
              let lits =
                List.map
                  (fun (w, r) ->
                    let v = fresh ctx in
                    rf.(w).(r) <- v;
                    (w, r, v))
                  choices
              in
              clause ctx (List.map (fun (_, _, v) -> v) lits);
              let rec at_most_one = function
                | [] -> ()
                | (_, _, v) :: rest ->
                    List.iter
                      (fun (_, _, v') -> clause ctx [ neg v; neg v' ])
                      rest;
                    at_most_one rest
              in
              at_most_one lits;
              lits)
        sk.Execution.sk_rf_choices
    in
    (* co: per-location pairwise order variables; the initialising write
       is first by construction, transitivity by clauses over triples *)
    let co = Sym.make n in
    List.iter
      (fun (_x, init_id, ws) ->
        List.iter (fun w -> co.(init_id).(w) <- T) ws;
        let rec pairs = function
          | [] -> ()
          | w :: rest ->
              List.iter
                (fun w' ->
                  let v = fresh ctx in
                  co.(w).(w') <- v;
                  co.(w').(w) <- neg v)
                rest;
              pairs rest
        in
        pairs ws;
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a <> b then
                  List.iter
                    (fun c ->
                      if c <> a && c <> b then
                        clause ctx
                          [ neg co.(a).(b); neg co.(b).(c); co.(a).(c) ])
                    ws)
              ws)
          ws)
      sk.Execution.sk_co_writes;
    (* fr: rf^-1 ; co, per read over its candidate writers *)
    let fr = Sym.make n in
    List.iter
      (fun choices ->
        match choices with
        | [] -> ()
        | (_, r) :: _ ->
            for w' = 0 to n - 1 do
              let terms =
                List.filter_map
                  (fun (w, _) ->
                    if co.(w).(w') = F then None
                    else Some (and_support ctx [ rf.(w).(r); co.(w).(w') ]))
                  choices
              in
              fr.(r).(w') <- or_support ctx terms
            done)
      sk.Execution.sk_rf_choices;
    let e = { ctx; rep; rf; co; fr } in
    (* sc per location: acyclic (po-loc | rf | co | fr) — the coherence
       prefilter, and the native model's Scpv axiom *)
    if scpv then
      Sym.assert_acyclic ctx
        (Sym.union ctx
           (Sym.const ctx rep.Execution.po_loc)
           (Sym.union ctx rf (Sym.union ctx co fr)));
    Some { e; sk; rf_vars }
  end

(* ------------------------------------------------------------------ *)
(* Condition                                                           *)
(* ------------------------------------------------------------------ *)

(* The condition is evaluated over the structure's constants (register
   values are fixed once the skeleton fixes its read values; init
   values are static) and the co-maximality of each location's writes:
   the final value of [x] is the value of its co-maximal write.
   Two-sided encoding — conditions sit under negation. *)
let encode_cond (enc : encoded) =
  let { e; sk; _ } = enc in
  let ctx = e.ctx in
  let rep = e.rep in
  let test = sk.Execution.sk_test in
  let of_bool b = if b then T else F in
  let final_is x v =
    match
      List.find_opt
        (fun (x', _, _) -> String.equal x x')
        sk.Execution.sk_co_writes
    with
    | None | Some (_, _, []) -> of_bool (Litmus.Ast.init_value test x = v)
    | Some (_, _, ws) ->
        (* w is co-maximal iff every other write of the location comes
           co-before it; the init write never is (it is co-first) *)
        or_full ctx
          (List.filter_map
             (fun w ->
               if sk.Execution.sk_events.(w).Event.v <> v then None
               else
                 Some
                   (and_full ctx
                      (List.filter_map
                         (fun w' ->
                           if w' = w then None else Some e.co.(w').(w))
                         ws)))
             ws)
  in
  let atom = function
    | Litmus.Ast.Reg_eq (tid, r, cv) ->
        let expected = Litmus.Ast.cvalue_to_int test cv in
        let v =
          match Execution.reg_value rep tid r with Some v -> v | None -> 0
        in
        of_bool (v = expected)
    | Litmus.Ast.Mem_eq (x, cv) ->
        final_is x (Litmus.Ast.cvalue_to_int test cv)
  in
  let rec go = function
    | Litmus.Ast.Atom a -> atom a
    | Litmus.Ast.Not c -> neg (go c)
    | Litmus.Ast.And (a, b) -> and_full ctx [ go a; go b ]
    | Litmus.Ast.Or (a, b) -> or_full ctx [ go a; go b ]
    | Litmus.Ast.Ctrue -> T
  in
  let cond = go test.Litmus.Ast.cond in
  match test.Litmus.Ast.quant with
  | Litmus.Ast.Q_exists | Litmus.Ast.Q_not_exists -> assert_lit ctx cond
  | Litmus.Ast.Q_forall -> assert_lit ctx (neg cond)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let decode (enc : encoded) =
  let { e; sk; rf_vars } = enc in
  let value = function
    | T -> true
    | F -> false
    | L l ->
        if l > 0 then Sat.Solver.value e.ctx.s l
        else not (Sat.Solver.value e.ctx.s (-l))
  in
  let rf =
    List.fold_left
      (fun acc lits ->
        match List.find_opt (fun (_, _, v) -> value v) lits with
        | Some (w, r, _) -> Rel.add w r acc
        | None -> raise (Spurious "sat: read with no chosen writer"))
      Rel.empty rf_vars
  in
  let orders =
    List.map
      (fun (x, _, ws) ->
        ( x,
          List.sort
            (fun a b ->
              if a = b then 0 else if value e.co.(a).(b) then -1 else 1)
            ws ))
      sk.Execution.sk_co_writes
  in
  let co = Execution.co_of_orders sk orders in
  Execution.instantiate sk ~rf ~co

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let c_structures = Obs.Counter.make "solve.structures"
let c_conflicts = Obs.Counter.make "solve.conflicts"
let c_sat = Obs.Counter.make "solve.sat"
let c_unsat = Obs.Counter.make "solve.unsat"
let c_spurious = Obs.Counter.make "solve.spurious"
let c_propagations = Obs.Counter.make "solve.propagations"
let c_restarts = Obs.Counter.make "solve.restarts"
let h_learnt_len = Obs.Histogram.make "solve.learnt_len"
let h_dlevel = Obs.Histogram.make "solve.dlevel"

type solve_fn =
  ?budget:Budget.t ->
  ?explainer:(Execution.t -> Explain.t list) ->
  Litmus.Ast.t ->
  Check.result

let satisfies (test : Litmus.Ast.t) x =
  match test.Litmus.Ast.quant with
  | Litmus.Ast.Q_exists | Litmus.Ast.Q_not_exists -> Execution.satisfies_cond x
  | Litmus.Ast.Q_forall -> not (Execution.satisfies_cond x)

let run_exn ?budget ~conflicts ~decisions ~axioms (module M : Check.MODEL)
    ?explainer (test : Litmus.Ast.t) : Check.result =
  (* Budget mapping: a conflict is the solver's unit of explored
     candidate space (counted against [max_candidates], probing the
     clock); a decision only probes the clock.  [Budget.Exceeded]
     propagates out of the solver through the callbacks. *)
  let on_conflict () =
    incr conflicts;
    Obs.Counter.incr c_conflicts;
    Option.iter
      (fun b ->
        Budget.count_candidate b;
        Budget.tick b)
      budget
  in
  let on_decision () =
    incr decisions;
    Option.iter Budget.tick budget
  in
  let sat_result verdict witness counterexample explanations =
    {
      Check.verdict;
      n_candidates = !conflicts;
      n_prefiltered = 0;
      n_consistent = (match witness with Some _ -> 1 | None -> 0);
      n_matching = (match witness with Some _ -> 1 | None -> 0);
      witness;
      outcomes =
        (match witness with
        | Some x -> [ (Execution.outcome x, true) ]
        | None -> []);
      counterexample;
      explanations;
      backend = Check.Sat;
      sat =
        Some
          {
            Check.conflicts = !conflicts;
            decisions = !decisions;
            fallback = false;
          };
    }
  in
  (* Solve one structure under a configuration; [`Sat x] decodes the
     model (re-validation is the caller's business). *)
  let solve_structure ~scpv ~with_axioms sk =
    match encode_structure ~scpv sk with
    | None -> `Unsat
    | Some enc -> (
        encode_cond enc;
        if with_axioms then axioms enc.e;
        let s = enc.e.ctx.s in
        (* CDCL shape, surfaced in obs_report's symbolic table: learned
           clause lengths and conflict decision levels as histograms,
           propagation volume as a counter (delta over this call, even
           when a budget trip aborts the search mid-way). *)
        let on_learnt len =
          Obs.Histogram.observe h_learnt_len (float_of_int len);
          Obs.Histogram.observe h_dlevel
            (float_of_int (Sat.Solver.decision_level s))
        in
        let on_restart () = Obs.Counter.incr c_restarts in
        let count_propagations () =
          Obs.Counter.add c_propagations
            (Sat.Solver.stats s).Sat.Solver.propagations
        in
        match
          Fun.protect ~finally:count_propagations (fun () ->
              Sat.Solver.solve ~on_conflict ~on_decision ~on_learnt
                ~on_restart s)
        with
        | Sat.Solver.Unsat -> `Unsat
        | Sat.Solver.Sat -> `Sat (decode enc))
  in
  Obs.with_span ~item:test.Litmus.Ast.name "solve" (fun () ->
      let found = ref None in
      (* retained for the forensic pass: skeletons are cheap relative
         to solving, and re-running Sem would double-charge the budget *)
      let seen = ref [] in
      (try
         Seq.iter
           (fun sk ->
             Obs.Counter.incr c_structures;
             seen := sk :: !seen;
             match solve_structure ~scpv:true ~with_axioms:true sk with
             | `Unsat -> Obs.Counter.incr c_unsat
             | `Sat x ->
                 Obs.Counter.incr c_sat;
                 found := Some x;
                 raise Exit)
           (Execution.skeletons ?budget test)
       with Exit -> ());
      match !found with
      | Some x ->
          (* Re-validate through the scalar path: the decoded witness
             must be coherent, consistent under the *scalar* model and
             must satisfy the condition.  Failure is an encoder or
             solver bug and a hard error — never a verdict. *)
          if not (Execution.coherent x) then begin
            Obs.Counter.incr c_spurious;
            raise (Spurious "sat: decoded witness is incoherent")
          end;
          if not (M.consistent x) then begin
            Obs.Counter.incr c_spurious;
            raise (Spurious "sat: decoded witness rejected by the scalar model")
          end;
          if not (satisfies test x) then begin
            Obs.Counter.incr c_spurious;
            raise (Spurious "sat: decoded witness misses the condition")
          end;
          sat_result Check.Allow (Some x) None []
      | None -> (
          (* Forbid.  With an explainer, find the candidate the
             explanations should talk about — prefer a coherent,
             condition-satisfying candidate (necessarily rejected by
             the model: the axioms are the only constraints dropped),
             falling back to an incoherent one (the class the scalar
             path's prefilter kills) — and run the scalar explainer on
             it. *)
          match explainer with
          | None -> sat_result Check.Forbid None None []
          | Some explain ->
              let rec first_sat ~scpv = function
                | [] -> None
                | sk :: rest -> (
                    match solve_structure ~scpv ~with_axioms:false sk with
                    | `Sat x -> Some x
                    | `Unsat -> first_sat ~scpv rest)
              in
              let sks = List.rev !seen in
              let cex =
                match first_sat ~scpv:true sks with
                | Some x -> Some x
                | None -> first_sat ~scpv:false sks
              in
              (match cex with
              | Some x -> sat_result Check.Forbid None (Some x) (explain x)
              | None -> sat_result Check.Forbid None None [])))

let run ?budget ~axioms (module M : Check.MODEL) ?explainer
    (test : Litmus.Ast.t) : Check.result =
  let conflicts = ref 0 and decisions = ref 0 in
  let stats () =
    { Check.conflicts = !conflicts; decisions = !decisions; fallback = false }
  in
  match budget with
  | None -> run_exn ~conflicts ~decisions ~axioms (module M) ?explainer test
  | Some b -> (
      try
        run_exn ~budget:b ~conflicts ~decisions ~axioms (module M) ?explainer
          test
      with
      | Budget.Exceeded r ->
          Check.unknown ~budget:b ~backend:Check.Sat ~sat:(stats ())
            (Check.Budget_exceeded r)
      | Stack_overflow ->
          Check.unknown ~budget:b ~backend:Check.Sat ~sat:(stats ())
            (Check.Model_error Stack_overflow)
      | exn ->
          Check.unknown ~budget:b ~backend:Check.Sat ~sat:(stats ())
            (Check.Model_error exn))

let make ~axioms (module M : Check.MODEL) : solve_fn =
 fun ?budget ?explainer test -> run ?budget ~axioms (module M) ?explainer test
