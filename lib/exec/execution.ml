(* Candidate executions (paper, Section 2): abstract executions
   (E, po, addr, data, ctrl, rmw) paired with execution witnesses (rf, co).
   {!of_test} enumerates every candidate execution of a litmus test; a
   consistency model then decides which are allowed. *)

module Iset = Rel.Iset

type t = {
  test : Litmus.Ast.t;
  events : Event.t array; (* indexed by event id *)
  po : Rel.t;
  addr : Rel.t;
  data : Rel.t;
  ctrl : Rel.t;
  rmw : Rel.t;
  rf : Rel.t;
  co : Rel.t;
  final_regs : (int * string * int) list; (* (tid, register, value) *)
  (* Derived relations and sets, computed once at construction: *)
  universe : Iset.t;
  fr : Rel.t;
  rfi : Rel.t;
  rfe : Rel.t;
  coi : Rel.t;
  coe : Rel.t;
  fri : Rel.t;
  fre : Rel.t;
  com : Rel.t;
  po_loc : Rel.t;
  int_r : Rel.t;
  ext_r : Rel.t;
  loc_r : Rel.t;
  id_r : Rel.t;
  reads : Iset.t;
  writes : Iset.t;
  fences : Iset.t;
  mem : Iset.t; (* R union W *)
  init_ws : Iset.t;
  crit : Rel.t; (* outermost rcu_read_lock -> matching rcu_read_unlock *)
}

let event t id = t.events.(id)
let n_events t = Array.length t.events

let events_where t p =
  Array.to_seq t.events
  |> Seq.filter p
  |> Seq.fold_left (fun acc (e : Event.t) -> Iset.add e.id acc) Iset.empty

(* Events carrying a given annotation. *)
let with_annot t a = events_where t (fun e -> e.annot = a)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* crit connects each outermost rcu_read_lock to its matching unlock;
   nesting is resolved with a per-thread depth counter over po (events are
   id-ordered within a thread, ids being assigned in program order). *)
let compute_crit (events : Event.t array) =
  let by_tid = Hashtbl.create 4 in
  Array.iter
    (fun (e : Event.t) ->
      if e.tid >= 0 then
        Hashtbl.replace by_tid e.tid
          (e :: (try Hashtbl.find by_tid e.tid with Not_found -> [])))
    events;
  Hashtbl.fold
    (fun _tid rev_events acc ->
      let thread_events = List.rev rev_events in
      let acc', _, _ =
        List.fold_left
          (fun (acc, depth, outer) (e : Event.t) ->
            match e.annot with
            | Event.Rcu_lock ->
                if depth = 0 then (acc, 1, Some e.id)
                else (acc, depth + 1, outer)
            | Event.Rcu_unlock -> (
                match (depth, outer) with
                | 1, Some l -> (Rel.add l e.id acc, 0, None)
                | d, _ when d > 1 -> (acc, d - 1, outer)
                | _ -> (acc, 0, None) (* unmatched unlock: ignored *))
            | _ -> (acc, depth, outer))
          (acc, 0, None) thread_events
      in
      acc')
    by_tid Rel.empty

(* The witness-independent part of a candidate: everything determined by
   the event structure (events + po), shared by all rf/co witnesses of
   one structure and so computed once per structure, not per candidate. *)
type structure = {
  st_universe : Iset.t;
  st_loc_r : Rel.t;
  st_int_r : Rel.t;
  st_ext_r : Rel.t;
  st_id_r : Rel.t;
  st_po_loc : Rel.t;
  st_crit : Rel.t;
  st_reads : Iset.t;
  st_writes : Iset.t;
  st_fences : Iset.t;
  st_mem : Iset.t;
  st_init_ws : Iset.t;
}

let set_of events p =
  Array.fold_left
    (fun acc (e : Event.t) -> if p e then Iset.add e.id acc else acc)
    Iset.empty events

let structure_of (events : Event.t array) po =
  let n = Array.length events in
  let universe = Iset.of_range 0 (n - 1) in
  let same_loc (e1 : Event.t) (e2 : Event.t) =
    Event.is_mem e1 && Event.is_mem e2 && e1.loc = e2.loc
  in
  let loc_r =
    Rel.of_list
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun j ->
               if i <> j && same_loc events.(i) events.(j) then Some (i, j)
               else None)
             (List.init n Fun.id))
         (List.init n Fun.id))
  in
  let int_r =
    Rel.of_list
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun j ->
               if
                 i <> j
                 && events.(i).Event.tid >= 0
                 && events.(i).Event.tid = events.(j).Event.tid
               then Some (i, j)
               else None)
             (List.init n Fun.id))
         (List.init n Fun.id))
  in
  let ext_r =
    Rel.diff (Rel.complement ~universe int_r) (Rel.id_of_set universe)
  in
  {
    st_universe = universe;
    st_loc_r = loc_r;
    st_int_r = int_r;
    st_ext_r = ext_r;
    st_id_r = Rel.id_of_set universe;
    st_po_loc = Rel.inter po loc_r;
    st_crit = compute_crit events;
    st_reads = set_of events Event.is_read;
    st_writes = set_of events Event.is_write;
    st_fences = set_of events Event.is_fence;
    st_mem = set_of events Event.is_mem;
    st_init_ws = set_of events Event.is_init;
  }

let build ?fr ?coi ?coe test events st po addr data ctrl rmw rf co final_regs =
  let int_r = st.st_int_r and ext_r = st.st_ext_r in
  let fr =
    match fr with
    | Some fr -> fr
    | None -> Rel.diff (Rel.seq (Rel.inverse rf) co) st.st_id_r
  in
  let rfi = Rel.inter rf int_r in
  let rfe = Rel.inter rf ext_r in
  let coi = match coi with Some r -> r | None -> Rel.inter co int_r in
  let coe = match coe with Some r -> r | None -> Rel.inter co ext_r in
  let fri = Rel.inter fr int_r in
  let fre = Rel.inter fr ext_r in
  let com = Rel.union rf (Rel.union co fr) in
  {
    test;
    events;
    po;
    addr;
    data;
    ctrl;
    rmw;
    rf;
    co;
    final_regs;
    universe = st.st_universe;
    fr;
    rfi;
    rfe;
    coi;
    coe;
    fri;
    fre;
    com;
    po_loc = st.st_po_loc;
    int_r;
    ext_r;
    loc_r = st.st_loc_r;
    id_r = st.st_id_r;
    reads = st.st_reads;
    writes = st.st_writes;
    fences = st.st_fences;
    mem = st.st_mem;
    init_ws = st.st_init_ws;
    crit = st.st_crit;
  }

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

(* Initial read-value domain: everything an expression could syntactically
   produce.  It is grown by a fixpoint over observed written values, so
   data-dependent writes (e.g. WRITE_ONCE(y, r1 + 1)) are covered. *)
let initial_domain (test : Litmus.Ast.t) =
  let consts = ref [ 0; 1 ] in
  let add n = if not (List.mem n !consts) then consts := n :: !consts in
  let rec expr = function
    | Litmus.Ast.Const n -> add n
    | Litmus.Ast.Addr x -> add (Litmus.Ast.address_of test x)
    | Litmus.Ast.Reg _ -> ()
    | Litmus.Ast.Binop (_, a, b) ->
        expr a;
        expr b
    | Litmus.Ast.Unop (_, a) -> expr a
  in
  let rec instr = function
    | Litmus.Ast.Read _ | Litmus.Ast.Rcu_dereference _ | Litmus.Ast.Fence _
    | Litmus.Ast.Spin_lock _ | Litmus.Ast.Spin_unlock _ ->
        ()
    | Litmus.Ast.Write (_, _, e)
    | Litmus.Ast.Xchg (_, _, _, e)
    | Litmus.Ast.Assign (_, e) ->
        expr e
    | Litmus.Ast.Cmpxchg (_, _, _, e1, e2) ->
        expr e1;
        expr e2
    | Litmus.Ast.Atomic_add_return (_, _, _, e) | Litmus.Ast.Atomic_add (_, e)
      ->
        expr e
    | Litmus.Ast.If (e, a, b) ->
        expr e;
        List.iter instr a;
        List.iter instr b
  in
  Array.iter (List.iter instr) test.threads;
  List.iter (fun (x, _) -> add (Litmus.Ast.init_value test x)) test.init;
  List.iter
    (fun (x, _) -> add (Litmus.Ast.address_of test x))
    (Litmus.Ast.addresses test);
  let rec cond = function
    | Litmus.Ast.Atom (Litmus.Ast.Reg_eq (_, _, v))
    | Litmus.Ast.Atom (Litmus.Ast.Mem_eq (_, v)) ->
        add (Litmus.Ast.cvalue_to_int test v)
    | Litmus.Ast.Not c -> cond c
    | Litmus.Ast.And (a, b) | Litmus.Ast.Or (a, b) ->
        cond a;
        cond b
    | Litmus.Ast.Ctrue -> ()
  in
  cond test.cond;
  List.sort_uniq Int.compare !consts

(* Per-thread candidates under a per-location read-value domain, iterated
   until the set of observed written values stops growing. *)
let thread_candidate_lists test =
  let all = initial_domain test in
  let globals = Litmus.Ast.globals test in
  let value_tbl : (string, Iset.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun x ->
      Hashtbl.replace value_tbl x
        (Iset.add (Litmus.Ast.init_value test x) (Iset.of_list all)))
    globals;
  let domain loc =
    match Hashtbl.find_opt value_tbl loc with
    | Some s -> Iset.to_list s
    | None -> all
  in
  let compute () =
    Array.to_list test.threads
    |> List.map (Sem.thread_candidates test domain)
  in
  let written cands =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun x ->
        Hashtbl.replace tbl x (Iset.singleton (Litmus.Ast.init_value test x)))
      globals;
    List.iter
      (List.iter (fun (c : Sem.candidate) ->
           List.iter
             (fun (pe : Sem.proto_event) ->
               if pe.dir = Event.W then
                 Hashtbl.replace tbl pe.loc
                   (Iset.add pe.v
                      (try Hashtbl.find tbl pe.loc
                       with Not_found -> Iset.empty)))
             c.events))
      cands;
    tbl
  in
  (* Two rounds: the first shrinks the read domains to the values actually
     written per location; the second accounts for writes whose value became
     expressible only once reads were so constrained.  Grow-only from round
     one on, so this terminates. *)
  let rec go prev rounds =
    let tbl = written prev in
    let changed = ref false in
    Hashtbl.iter
      (fun x s ->
        let old = try Hashtbl.find value_tbl x with Not_found -> Iset.empty in
        if not (Iset.equal s old) then changed := true;
        Hashtbl.replace value_tbl x s)
      tbl;
    let next = compute () in
    if !changed && rounds > 0 then go next (rounds - 1) else next
  in
  go (compute ()) 4

let cartesian_product ?(tick = fun () -> ()) lists =
  List.fold_right
    (fun l acc ->
      List.concat_map
        (fun x ->
          List.map
            (fun r ->
              tick ();
              x :: r)
            acc)
        l)
    lists [ [] ]

(* The same product, produced lazily: element [l1_i :: l2_j :: ...] is
   built only when the consumer reaches it, so enumeration can stop (a
   budget trip, an early-terminating consumer) without materialising the
   remainder.  Same element order as {!cartesian_product}. *)
let seq_product ?(tick = fun () -> ()) lists =
  List.fold_right
    (fun l acc ->
      Seq.concat_map
        (fun x ->
          Seq.map
            (fun r ->
              tick ();
              x :: r)
            acc)
        (List.to_seq l))
    lists (Seq.return [])

let c_structures = Obs.Counter.make "exec.structures"
let c_events = Obs.Counter.make "exec.events"
let c_delta_patched = Obs.Counter.make "exec.delta.patched"
let c_delta_full = Obs.Counter.make "exec.delta.full"

(* The per-structure skeleton: everything the enumeration derives from
   one event structure before any rf/co witness is chosen.  Both
   backends consume it — the enumerator takes the cartesian product of
   [sk_rf_choices] with the per-location coherence orders over
   [sk_co_writes], the solver turns the same two fields into one-hot
   rf variables and boolean order constraints. *)
type skeleton = {
  sk_test : Litmus.Ast.t;
  sk_events : Event.t array;
  sk_po : Rel.t;
  sk_addr : Rel.t;
  sk_data : Rel.t;
  sk_ctrl : Rel.t;
  sk_rmw : Rel.t;
  sk_final_regs : (int * string * int) list;
  sk_st : structure;
  sk_rf_choices : (int * int) list list;
      (* per read, in event-id order: its candidate (writer, read)
         edges — same location, same value *)
  sk_co_writes : (string * int * int list) list;
      (* per location, in declaration order: the initialising write
         and the non-init writes (in event-id order) *)
}

let skeletons ?budget (test : Litmus.Ast.t) =
  let per_thread =
    Obs.with_span ~item:test.name "sem" (fun () ->
        thread_candidate_lists test)
  in
  Option.iter Budget.check_time budget;
  let globals = Litmus.Ast.globals test in
  let n_init = List.length globals in
  Seq.map
    (fun (chosen : Sem.candidate list) ->
      Obs.Counter.incr c_structures;
      if Obs.enabled () then
        Obs.Counter.add c_events
          (n_init
          + List.fold_left
              (fun acc (c : Sem.candidate) -> acc + List.length c.events)
              0 chosen);
      Option.iter
        (fun b ->
          Budget.check_events b
            (n_init
            + List.fold_left
                (fun acc (c : Sem.candidate) -> acc + List.length c.events)
                0 chosen))
        budget;
      (* Assemble events: init writes first, then threads in order. *)
      let events = ref [] in
      let po = ref Rel.empty in
      let addr = ref Rel.empty
      and data = ref Rel.empty
      and ctrl = ref Rel.empty
      and rmw = ref Rel.empty in
      List.iteri
        (fun i x ->
          events :=
            {
              Event.id = i;
              tid = -1;
              dir = Event.W;
              loc = x;
              v = Litmus.Ast.init_value test x;
              annot = Event.Init;
            }
            :: !events)
        globals;
      let base = ref n_init in
      List.iteri
        (fun tid (c : Sem.candidate) ->
          let b = !base in
          List.iteri
            (fun i (pe : Sem.proto_event) ->
              let id = b + i in
              events :=
                {
                  Event.id;
                  tid;
                  dir = pe.dir;
                  loc = pe.loc;
                  v = pe.v;
                  annot = pe.annot;
                }
                :: !events;
              (* po: total order within the thread *)
              for j = 0 to i - 1 do
                po := Rel.add (b + j) id !po
              done)
            c.events;
          let remap = List.map (fun (x, y) -> (b + x, b + y)) in
          addr := Rel.union !addr (Rel.of_list (remap c.addr));
          data := Rel.union !data (Rel.of_list (remap c.data));
          ctrl := Rel.union !ctrl (Rel.of_list (remap c.ctrl));
          rmw := Rel.union !rmw (Rel.of_list (remap c.rmw));
          base := b + List.length c.events)
        chosen;
      let events =
        Array.of_list (List.sort (fun (a : Event.t) b -> compare a.id b.id)
                         (!events))
      in
      let final_regs =
        List.concat
          (List.mapi
             (fun tid (c : Sem.candidate) ->
               List.map (fun (r, v) -> (tid, r, v)) c.regs)
             chosen)
      in
      (* Enumerate rf: each read takes its value from a same-location,
         same-value write. *)
      let all_reads =
        Array.to_list events |> List.filter Event.is_read
      in
      let writes_for (r : Event.t) =
        Array.to_list events
        |> List.filter (fun (w : Event.t) ->
               Event.is_write w && w.loc = r.loc && w.v = r.v)
      in
      let per_read_writes =
        List.map
          (fun r -> List.map (fun w -> (w.Event.id, r.Event.id)) (writes_for r))
          all_reads
      in
      (* Enumerate co: per location, all total orders of the non-init
         writes, after the initialising write. *)
      let ws_by_loc =
        List.map
          (fun x ->
            ( x,
              Array.to_list events
              |> List.filter (fun (w : Event.t) ->
                     Event.is_write w && (not (Event.is_init w)) && w.loc = x)
              |> List.map (fun (w : Event.t) -> w.id) ))
          globals
      in
      let init_id x =
        let rec find i = if (events.(i)).Event.loc = x then i else find (i + 1) in
        find 0
      in
      {
        sk_test = test;
        sk_events = events;
        sk_po = !po;
        sk_addr = !addr;
        sk_data = !data;
        sk_ctrl = !ctrl;
        sk_rmw = !rmw;
        sk_final_regs = final_regs;
        sk_st = structure_of events !po;
        sk_rf_choices = per_read_writes;
        sk_co_writes = List.map (fun (x, ws) -> (x, init_id x, ws)) ws_by_loc;
      })
    (seq_product per_thread)

(* A candidate from a decoded witness: the structure's derived statics
   are shared with every enumerated candidate of the same skeleton. *)
let instantiate sk ~rf ~co =
  build sk.sk_test sk.sk_events sk.sk_st sk.sk_po sk.sk_addr sk.sk_data
    sk.sk_ctrl sk.sk_rmw rf co sk.sk_final_regs

(* Coherence from per-location total orders (event-id lists, co order):
   the initialising write first, then the listed writes in order. *)
let co_of_orders sk orders =
  List.fold_left
    (fun acc (x, init_id, _) ->
      match List.assoc_opt x orders with
      | None | Some [] -> acc
      | Some order ->
          let rec pairs acc = function
            | [] -> acc
            | w :: rest ->
                pairs
                  (List.fold_left
                     (fun acc w' -> Rel.add w w' acc)
                     (Rel.add init_id w acc) rest)
                  rest
          in
          pairs acc order)
    Rel.empty sk.sk_co_writes

let of_test_seq ?budget ?(delta = true) (test : Litmus.Ast.t) =
  let tick () = Option.iter Budget.tick budget in
  Seq.concat_map
    (fun sk ->
      let per_read_writes = sk.sk_rf_choices in
      (* Arithmetic pre-check: the rf choices multiply with the co orders
         (factorial per location); fail before materialising a product
         that cannot fit in the candidate cap. *)
      Option.iter
        (fun b ->
          let n_rf =
            List.fold_left
              (fun acc ws -> Budget.sat_mul acc (List.length ws))
              1 per_read_writes
          in
          let n_co =
            List.fold_left
              (fun acc (_, _, ws) ->
                Budget.sat_mul acc (Budget.sat_fact (List.length ws)))
              1 sk.sk_co_writes
          in
          Budget.claim b (Budget.sat_mul n_rf n_co))
        budget;
      (* Per-location coherence orders are few (factorial in the writes
         per location, which the claim above already bounded), so their
         product is materialised once; the rf choices stream.  The co
         choices are the *outer* loop: within one coherence order,
         enumeration-adjacent candidates differ only in the writers of
         a suffix of the reads (usually just the last one), which is
         what the delta re-evaluation below patches. *)
      let co_choices =
        cartesian_product ~tick
          (List.map
             (fun (_, init_id, ws) ->
               List.map
                 (fun order ->
                   tick ();
                   List.fold_left
                     (fun acc w -> Rel.add init_id w acc)
                     order ws)
                 (Rel.linear_extensions ws))
             sk.sk_co_writes)
      in
      let st = sk.sk_st in
      Seq.concat_map
        (fun co_parts ->
          let co = List.fold_left Rel.union Rel.empty co_parts in
          let coi = Rel.inter co st.st_int_r
          and coe = Rel.inter co st.st_ext_r in
          (* Incremental re-evaluation: rf is functional per read, so
             the from-reads row of a read is exactly the coherence row
             of its writer ((rf⁻¹;co) restricted to one read; the
             diagonal never intersects it, reads not being writes).
             When only some reads change writer between adjacent rf
             choices, patch those rf edges and fr rows instead of
             recomputing the inverse-and-compose from scratch.  [prev]
             holds the previous candidate's rf pair list — positionally
             aligned with [per_read_writes] — and its rf/fr. *)
          let prev = ref None in
          Seq.map
            (fun rf_pairs ->
              Option.iter Budget.count_candidate budget;
              let rf, fr =
                match !prev with
                | Some (prev_pairs, prev_rf, prev_fr) when delta ->
                    Obs.Counter.incr c_delta_patched;
                    let rf = ref prev_rf and fr = ref prev_fr in
                    List.iter2
                      (fun (w, r) (w', _) ->
                        if w <> w' then begin
                          rf := Rel.add w' r (Rel.remove w r !rf);
                          fr := Rel.set_row_from ~src:co w' r !fr
                        end)
                      prev_pairs rf_pairs;
                    (!rf, !fr)
                | _ ->
                    Obs.Counter.incr c_delta_full;
                    let rf = Rel.of_list rf_pairs in
                    (rf, Rel.diff (Rel.seq (Rel.inverse rf) co) st.st_id_r)
              in
              prev := Some (rf_pairs, rf, fr);
              build ~fr ~coi ~coe sk.sk_test sk.sk_events st sk.sk_po
                sk.sk_addr sk.sk_data sk.sk_ctrl sk.sk_rmw rf co
                sk.sk_final_regs)
            (seq_product ~tick per_read_writes))
        (List.to_seq co_choices))
    (skeletons ?budget test)

let of_test ?budget ?delta test = List.of_seq (of_test_seq ?budget ?delta test)

(* ------------------------------------------------------------------ *)
(* Coherence prefilter                                                 *)
(* ------------------------------------------------------------------ *)

(* Sc-per-location: po-loc ∪ rf ∪ co ∪ fr is acyclic.  Every shipped
   model (LK's sc-per-variable axiom, SC and TSO's uniproc check, C11's
   coherence-after-hb) constrains a superset of this relation, so an
   incoherent candidate is inconsistent under all of them and can be
   rejected before the model runs — herd's classic pruning. *)
let coherent t = Rel.is_acyclic (Rel.union t.po_loc t.com)

(* Can candidates [a] and [b] share one batched evaluation pass?  The
   models consume events only through their static shape — id, thread,
   direction, location, annotation — and the static relations; read
   values feed conditions and outcomes, which are always evaluated per
   candidate.  So two candidates are batch-compatible iff their events
   agree up to values and their input statics are equal: every derived
   static (po-loc, int/ext, the event-class sets, crit, ...) is a
   function of exactly those.  This is componentwise equality, hence an
   equivalence: comparing each candidate against its predecessor in the
   stream keeps a whole buffer pairwise compatible. *)
let same_static_event (a : Event.t) (b : Event.t) =
  a.Event.id = b.Event.id && a.Event.tid = b.Event.tid
  && a.Event.dir = b.Event.dir
  && a.Event.annot = b.Event.annot
  && String.equal a.Event.loc b.Event.loc

let static_compatible a b =
  a.events == b.events
  || Array.length a.events = Array.length b.events
     && (try
           Array.iter2
             (fun ea eb ->
               if not (same_static_event ea eb) then raise Exit)
             a.events b.events;
           true
         with Exit -> false)
     && Rel.equal a.po b.po && Rel.equal a.addr b.addr
     && Rel.equal a.data b.data && Rel.equal a.ctrl b.ctrl
     && Rel.equal a.rmw b.rmw

(* The same test over a batch of static-compatible candidates: po-loc
   is witness-independent and equal across the batch (broadcast once
   from the first), only com varies per plane.  Bit c of the result:
   candidate c is coherent. *)
let coherent_mask ~mask (xs : t array) =
  let x0 = xs.(0) in
  let n = Array.length x0.events in
  let po_loc = Rel.Batch.broadcast ~n ~mask x0.po_loc in
  let com = Rel.Batch.of_rels ~n ~mask (Array.map (fun x -> x.com) xs) in
  Rel.Batch.acyclic_mask ~mask (Rel.Batch.union po_loc com)

(* ------------------------------------------------------------------ *)
(* Final states                                                        *)
(* ------------------------------------------------------------------ *)

(* Value of [x] after the execution: the co-maximal write. *)
let final_mem t x =
  let ws =
    Array.to_list t.events
    |> List.filter (fun (w : Event.t) -> Event.is_write w && w.loc = x)
  in
  let maximal =
    List.filter
      (fun (w : Event.t) ->
        not
          (List.exists
             (fun (w' : Event.t) -> Rel.mem w.id w'.id t.co)
             ws))
      ws
  in
  match maximal with
  | [ w ] -> w.v
  | [] -> Litmus.Ast.init_value t.test x
  | w :: _ -> w.v (* co is total per location, so this is unreachable *)

let reg_value t tid r =
  List.find_map
    (fun (tid', r', v) -> if tid = tid' && r = r' then Some v else None)
    t.final_regs

let eval_atom t = function
  | Litmus.Ast.Reg_eq (tid, r, cv) ->
      let expected = Litmus.Ast.cvalue_to_int t.test cv in
      (match reg_value t tid r with Some v -> v = expected | None -> 0 = expected)
  | Litmus.Ast.Mem_eq (x, cv) ->
      final_mem t x = Litmus.Ast.cvalue_to_int t.test cv

let rec eval_cond t = function
  | Litmus.Ast.Atom a -> eval_atom t a
  | Litmus.Ast.Not c -> not (eval_cond t c)
  | Litmus.Ast.And (a, b) -> eval_cond t a && eval_cond t b
  | Litmus.Ast.Or (a, b) -> eval_cond t a || eval_cond t b
  | Litmus.Ast.Ctrue -> true

(* Does the final state of this execution satisfy the test's condition
   body?  (The quantifier is interpreted by the checker, not here.) *)
let satisfies_cond t = eval_cond t t.test.cond

(* The observable outcome of an execution: values of every register and
   location mentioned in the final condition, as a canonical assoc list.
   Two executions with equal outcomes are indistinguishable to the test. *)
type outcome = (string * int) list

let observables (test : Litmus.Ast.t) =
  let acc = ref [] in
  let add x = if not (List.mem x !acc) then acc := x :: !acc in
  let atom = function
    | Litmus.Ast.Reg_eq (tid, r, _) -> add (`Reg (tid, r))
    | Litmus.Ast.Mem_eq (x, _) -> add (`Mem x)
  in
  let rec go = function
    | Litmus.Ast.Atom a -> atom a
    | Litmus.Ast.Not c -> go c
    | Litmus.Ast.And (a, b) | Litmus.Ast.Or (a, b) ->
        go a;
        go b
    | Litmus.Ast.Ctrue -> ()
  in
  go test.cond;
  List.rev !acc

let outcome t : outcome =
  List.map
    (function
      | `Reg (tid, r) ->
          ( Printf.sprintf "%d:%s" tid r,
            Option.value ~default:0 (reg_value t tid r) )
      | `Mem x -> (x, final_mem t x))
    (observables t.test)

let pp_outcome ppf (o : outcome) =
  Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int)) ppf o

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,rf: %a@,co: %a@]"
    Fmt.(array ~sep:(any "@,") Event.pp)
    t.events Rel.pp t.rf Rel.pp t.co
