(* Structured verdict forensics: for a Forbidden verdict, *which* check
   failed, on *which* minimal cycle (or offending pairs), and how each
   derived edge decomposes into primitive rf/co/fr/po/dependency edges.

   Explanations are model-independent data: produced by [Cat.Explain]
   (any cat model) or [Lkmm.Explain] (the native model), carried through
   [Check.result] and [Harness.Report] (schema v3), rendered as text,
   JSON, or DOT overlays.  They are self-contained — event labels ride
   along — so they survive the pool's fork/marshal boundary and can be
   printed without the execution. *)

type kind = Acyclic | Irreflexive | Nonempty

val kind_to_string : kind -> string

(* A primitive edge of a decomposition: a base-relation name ("rf",
   "po", "addr", ...), possibly suffixed "^-1" for an inverted edge,
   "id" for a reflexive step, or an opaque rendered sub-expression where
   decomposition stopped. *)
type prim = { p_src : int; p_dst : int; p_label : string }

(* One edge of the witness, labelled with the branch of the checked
   relation it comes from (herd-style: "rfe", "ppo", ...) and its
   decomposition into a primitive path from [src] to [dst]. *)
type step = { src : int; dst : int; label : string; prims : prim list }

type t = {
  check : string; (* the cat [as] name / axiom name, e.g. "happens-before" *)
  kind : kind;
  steps : step list;
      (* Acyclic/Irreflexive: a closed cycle in order (dst_i = src_{i+1},
         last dst = first src); Nonempty: the offending pairs *)
  events : (int * string) list; (* event id -> rendered label *)
}

exception Invalid of string

(* "W[once] x=1 @P0" — the label format used in [events]. *)
val label_event : Event.t -> string

(* Labels for every event the steps mention, from the execution's event
   array. *)
val events_of_steps : Event.t array -> step list -> (int * string) list

(* [validate ~resolve t] re-checks [t] against the relations it names:
   structural coherence (cycle closes, decompositions are connected
   paths with the step's endpoints) and membership of every edge whose
   label [resolve] can map to a relation ("l^-1" checks the reversed
   pair; "id"/bracket labels must be reflexive; unresolvable labels are
   checked structurally only).  Raises {!Invalid} on the first offence.
   The producing engines run this before releasing an explanation, so a
   shipped explanation always re-validates. *)
val validate : resolve:(string -> Rel.t option) -> t -> unit

val event_label : t -> int -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> string
val json_escape : string -> string
