(* Structured verdict forensics (observability layer, semantic half).

   When a model rejects a candidate execution, "Forbid" alone is not
   auditable: the paper's authors debug the LKMM by inspecting *which*
   axiom fires on *which* cycle, and herd's diagrams make that
   inspection visual.  An {!Explain.t} is the machine-readable form of
   that inspection for one failed check of one candidate:

   - the check, by its cat [as] name ("happens-before", "rcu", ...);
   - a witness: a minimal cycle for [acyclic]/[irreflexive] checks
     (shortest via BFS in the dense relation kernel), offending pairs
     for [empty] checks;
   - per edge, a herd-style label ("rfe", "ppo", ...) and a provenance
     decomposition into primitive relation edges (rf/co/fr/po/
     dependency edges), obtained by walking the defining expressions;
   - rendered event labels, so the explanation is self-contained (it
     survives marshalling across the pool's fork boundary and JSON
     export without the execution).

   Explanations are produced by the model-side engines
   ({!Cat.Explain} for any cat model, {!Lkmm.Explain} for the native
   model) and validated at construction: {!validate} re-checks every
   reported edge against the named relation it claims to come from,
   and an explanation that does not re-validate raises {!Invalid} — a
   hard error, never a silently wrong diagram. *)

type kind = Acyclic | Irreflexive | Nonempty

let kind_to_string = function
  | Acyclic -> "acyclic"
  | Irreflexive -> "irreflexive"
  | Nonempty -> "empty"

(* One primitive edge of a provenance decomposition.  [label] is a
   primitive relation name ("rf", "po", "addr", ...), a name tagged
   ["^-1"] for inverted edges, ["id"] for reflexive steps, or an
   opaque rendered sub-expression when decomposition stopped early
   (recursion guard, complement/cartesian leaves). *)
type prim = { p_src : int; p_dst : int; p_label : string }

(* One edge of the witness.  [label] is the branch of the checked
   relation the edge comes from (the herd-style edge name); [prims] is
   its decomposition into a path of primitive edges from [src] to
   [dst]. *)
type step = { src : int; dst : int; label : string; prims : prim list }

type t = {
  check : string;  (* the cat [as] name, or the axiom name *)
  kind : kind;
  steps : step list;
      (* Acyclic/Irreflexive: a closed cycle in order; Nonempty: the
         offending pairs (possibly truncated) *)
  events : (int * string) list; (* id -> rendered label, sorted by id *)
}

exception Invalid of string

(* ------------------------------------------------------------------ *)
(* Event labels                                                        *)
(* ------------------------------------------------------------------ *)

(* "W[once] x=1 @P0" — like the paper's figures; the thread qualifier
   distinguishes same-looking accesses, init writes print "@init". *)
let label_event (e : Event.t) =
  let where = if e.Event.tid < 0 then "@init" else Printf.sprintf "@P%d" e.Event.tid in
  if Event.is_fence e then
    Printf.sprintf "F[%s] %s" (Event.annot_to_string e.Event.annot) where
  else
    Printf.sprintf "%s[%s] %s=%d %s" (Event.dir_to_string e.Event.dir)
      (Event.annot_to_string e.Event.annot)
      e.Event.loc e.Event.v where

(* The ids an explanation mentions, steps and decompositions alike. *)
let mentioned_ids (steps : step list) =
  List.concat_map
    (fun s ->
      (s.src :: s.dst
       :: List.concat_map (fun p -> [ p.p_src; p.p_dst ]) s.prims))
    steps
  |> List.sort_uniq Int.compare

let events_of_steps (events : Event.t array) steps =
  List.filter_map
    (fun id ->
      if id >= 0 && id < Array.length events then
        Some (id, label_event events.(id))
      else None)
    (mentioned_ids steps)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(* [validate ~resolve t] re-checks the explanation against the
   relations it names: structure (the cycle closes, each step's
   decomposition is a path from the step's source to its target) and
   membership (every edge whose label [resolve] can turn into a
   relation is an edge of that relation; ["l^-1"] labels check the
   reversed pair, ["id"] and bracket labels must be reflexive).
   Raises {!Invalid} with the first offence.  The engines call this
   before releasing an explanation, so a shipped explanation always
   re-validates; harness-side consumers may re-run it with their own
   resolver. *)
(* A label that denotes an identity-restriction: exactly one bracket
   expression "[...]" (an opaque compound label may merely *start* with
   a bracket — "[Mb] ; po ; ..." — and relates distinct events). *)
let is_bracket_label label =
  let n = String.length label in
  n >= 2
  && label.[0] = '['
  && label.[n - 1] = ']'
  &&
  let rec scan i depth =
    if i >= n then false
    else
      match label.[i] with
      | '[' -> scan (i + 1) (depth + 1)
      | ']' -> if depth = 1 then i = n - 1 else scan (i + 1) (depth - 1)
      | _ -> scan (i + 1) depth
  in
  scan 0 0

let check_membership ~resolve what s d label =
  let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt in
  if label = "id" || is_bracket_label label then begin
    if s <> d then fail "%s: identity-like edge %s has %d <> %d" what label s d
  end
  else
    let base, inverted =
      match Filename.check_suffix label "^-1" with
      | true -> (Filename.chop_suffix label "^-1", true)
      | false -> (label, false)
    in
    match resolve base with
    | None -> () (* opaque label: structure-only *)
    | Some rel ->
        let a, b = if inverted then (d, s) else (s, d) in
        if not (Rel.mem a b rel) then
          fail "%s: (%d, %d) is not an edge of %s" what a b label

let validate ~resolve (t : t) =
  let fail fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt in
  if t.steps = [] then fail "check %s: empty witness" t.check;
  (* each step's decomposition is a path src -> dst *)
  List.iter
    (fun (st : step) ->
      let what = Printf.sprintf "check %s, edge %d->%d" t.check st.src st.dst in
      check_membership ~resolve what st.src st.dst st.label;
      (match st.prims with
      | [] ->
          if st.src <> st.dst then
            fail "%s: empty decomposition of a non-reflexive edge" what
      | ps ->
          let first = List.hd ps and last = List.nth ps (List.length ps - 1) in
          if first.p_src <> st.src then
            fail "%s: decomposition starts at %d" what first.p_src;
          if last.p_dst <> st.dst then
            fail "%s: decomposition ends at %d" what last.p_dst;
          ignore
            (List.fold_left
               (fun prev (p : prim) ->
                 (match prev with
                 | Some q ->
                     if q <> p.p_src then
                       fail "%s: decomposition breaks at %d -> %d" what q
                         p.p_src
                 | None -> ());
                 Some p.p_dst)
               None ps));
      List.iter
        (fun (p : prim) ->
          check_membership ~resolve
            (Printf.sprintf "%s, primitive %d->%d" what p.p_src p.p_dst)
            p.p_src p.p_dst p.p_label)
        st.prims)
    t.steps;
  (* cycle witnesses must chain and close *)
  match t.kind with
  | Nonempty -> ()
  | Acyclic | Irreflexive ->
      let rec chain = function
        | (a : step) :: (b :: _ as rest) ->
            if a.dst <> b.src then
              fail "check %s: cycle breaks at %d -> %d" t.check a.dst b.src;
            chain rest
        | _ -> ()
      in
      chain t.steps;
      let first = List.hd t.steps
      and last = List.nth t.steps (List.length t.steps - 1) in
      if last.dst <> first.src then
        fail "check %s: cycle does not close (%d <> %d)" t.check last.dst
          first.src

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let event_label t id =
  match List.assoc_opt id t.events with
  | Some l -> l
  | None -> Printf.sprintf "e%d" id

(* "W[once] x=1 @P0 ->rfe R[once] x=1 @P1 ->ppo ..." *)
let pp_steps_chain ppf (t : t) =
  match t.steps with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun (s : step) ->
          Fmt.pf ppf "%s@ \xe2\x86\x92%s " (event_label t s.src) s.label)
        t.steps;
      Fmt.pf ppf "%s" (event_label t first.src)

let interesting_prims (s : step) =
  (* a decomposition worth printing: more than the edge restated *)
  match s.prims with
  | [ p ] -> p.p_label <> s.label
  | _ -> true

let pp_prims ppf (t : t) (s : step) =
  Fmt.pf ppf "%s " (event_label t s.src);
  List.iter
    (fun (p : prim) ->
      if p.p_src = p.p_dst && p.p_label = "id" then ()
      else Fmt.pf ppf "\xe2\x86\x92%s %s " p.p_label (event_label t p.p_dst))
    s.prims

let pp ppf (t : t) =
  (match t.kind with
  | Acyclic | Irreflexive ->
      Fmt.pf ppf "@[<v2>check `%s' (%s): cycle@,@[<hov>%a@]" t.check
        (kind_to_string t.kind) pp_steps_chain t
  | Nonempty ->
      Fmt.pf ppf "@[<v2>check `%s' (empty): %d offending pair%s" t.check
        (List.length t.steps)
        (if List.length t.steps = 1 then "" else "s");
      List.iter
        (fun (s : step) ->
          Fmt.pf ppf "@,%s \xe2\x86\x92%s %s" (event_label t s.src) s.label
            (event_label t s.dst))
        t.steps);
  List.iter
    (fun (s : step) ->
      if interesting_prims s then
        Fmt.pf ppf "@,where %s: @[<hov>%a@]" s.label (fun ppf () ->
            pp_prims ppf t s)
          ())
    t.steps;
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* JSON (schema v3: the [explanations] array of report entries)        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prim_to_json (p : prim) =
  Printf.sprintf "{\"src\": %d, \"dst\": %d, \"label\": \"%s\"}" p.p_src
    p.p_dst (json_escape p.p_label)

let step_to_json (s : step) =
  Printf.sprintf
    "{\"src\": %d, \"dst\": %d, \"label\": \"%s\", \"prims\": [%s]}" s.src
    s.dst (json_escape s.label)
    (String.concat ", " (List.map prim_to_json s.prims))

let to_json (t : t) =
  Printf.sprintf
    "{\"check\": \"%s\", \"kind\": \"%s\", \"validated\": true, \"steps\": \
     [%s], \"events\": [%s]}"
    (json_escape t.check) (kind_to_string t.kind)
    (String.concat ", " (List.map step_to_json t.steps))
    (String.concat ", "
       (List.map
          (fun (id, l) ->
            Printf.sprintf "{\"id\": %d, \"label\": \"%s\"}" id
              (json_escape l))
          t.events))
