(** The symbolic checking backend: a litmus test's candidate space,
    one event structure at a time, rendered as CNF over one-hot rf
    choices and per-location boolean coherence orders, and decided by
    the CDCL core in [lib/sat].

    The whole LK derivation chain is monotone in rf and co, so derived
    relations carry one-sided "support" clauses only, and the
    (all-negative) axioms are decided exactly against those
    over-approximations — no refinement loop.  A SAT answer is decoded
    back to an {!Execution.t} and re-validated through the scalar
    model; re-validation failure is a hard {!Spurious} error, never a
    verdict. *)

(** A symbolic truth value: statically false, statically true, or a
    solver literal. *)
type lit3 = F | T | L of int

(** A solver under construction: the CDCL instance and the event count
    (symbolic relations are [n × n] matrices). *)
type ctx = { s : Sat.Solver.t; n : int }

(** A decoded witness failed scalar re-validation — an encoder or
    solver bug, surfaced as [Model_error] under a budget and propagated
    otherwise. *)
exception Spurious of string

val neg : lit3 -> lit3

(** [clause ctx lits] asserts a disjunction ([T] members discharge it
    statically, [F] members drop out; all-[F] is the empty clause). *)
val clause : ctx -> lit3 list -> unit

val fresh : ctx -> lit3

(** Support-only connectives (sound for the monotone derivation chain):
    the result is forced true by its definition, not equivalent to
    it. *)
val or_support : ctx -> lit3 list -> lit3

val and_support : ctx -> lit3 list -> lit3

(** Two-sided (Tseitin) connectives, for formulas under negation. *)
val or_full : ctx -> lit3 list -> lit3

val and_full : ctx -> lit3 list -> lit3
val assert_lit : ctx -> lit3 -> unit

(** Symbolic relations: [n × n] matrices of {!lit3}, with the cat-style
    combinators the axiom callbacks are written in.  All derived
    operators emit support-only clauses; closures and the acyclicity
    assertion preprocess on the {!Rel} dense-bitset may/must
    projections (implied literals, unreachability pruning, cycle-core
    restriction). *)
module Sym : sig
  type t = lit3 array array

  val make : int -> t
  val entry : t -> int -> int -> lit3
  val const : ctx -> Rel.t -> t

  (** The pairs possibly/necessarily in the relation. *)
  val may_of : t -> Rel.t

  val must_of : t -> Rel.t
  val union : ctx -> t -> t -> t
  val inter : ctx -> t -> t -> t

  (** Intersection/difference with a static relation — no clauses. *)
  val inter_const : t -> Rel.t -> t

  val diff_const : t -> Rel.t -> t
  val seq : ctx -> t -> t -> t
  val inverse : t -> t
  val plus : ctx -> t -> t
  val opt : t -> t
  val star : ctx -> t -> t
  val is_static_empty : t -> bool
  val assert_acyclic : ctx -> t -> unit
  val assert_irreflexive : ctx -> t -> unit
  val assert_empty : ctx -> t -> unit
end

(** What an axioms callback sees: the context, a representative
    execution of the structure (empty witness — its static relations
    and event sets are those of every candidate of the structure) and
    the symbolic witness relations. *)
type enc = {
  ctx : ctx;
  rep : Execution.t;
  rf : Sym.t;
  co : Sym.t;
  fr : Sym.t;
}

(** A model's axioms as clauses: called once per encoded structure,
    after rf/co/fr well-formedness and Scpv are already asserted.
    The native LKMM callback lives in [Lkmm.Symbolic]. *)
type axioms = enc -> unit

(** The type of a ready-to-run symbolic engine, as carried by
    {!Oracle.t}. *)
type solve_fn =
  ?budget:Budget.t ->
  ?explainer:(Execution.t -> Explain.t list) ->
  Litmus.Ast.t ->
  Check.result

(** [run ~axioms (module M) test] decides the test symbolically:
    structures are encoded and solved in enumeration order until one is
    satisfiable (Allow, with a decoded, re-validated witness) or all
    are refuted (Forbid).  [M] is the *scalar* model the decoded
    witness is re-validated against — it must agree with [axioms].

    Budgets map onto solver work: each conflict counts as a candidate
    (so [max_candidates] bounds total conflicts) and each conflict or
    decision probes the wall clock; a tripped budget yields the same
    structured [Unknown (Budget_exceeded _)] as the enumerative path.
    [n_candidates] and the [sat] stats of the result report conflicts
    and decisions.

    With [?explainer] and a Forbid verdict, the forensic pass re-solves
    with the axioms dropped (then with Scpv also dropped) to find the
    candidate the explanations should describe, and runs the scalar
    explainer on it. *)
val run :
  ?budget:Budget.t ->
  axioms:axioms ->
  (module Check.MODEL) ->
  ?explainer:(Execution.t -> Explain.t list) ->
  Litmus.Ast.t ->
  Check.result

(** [make ~axioms (module M)] packages {!run} as a {!solve_fn}. *)
val make : axioms:axioms -> (module Check.MODEL) -> solve_fn
