(* Running a litmus test against a consistency model.

   A model decides which candidate executions are consistent; a test is
   *allowed* iff some consistent execution satisfies its (existential)
   condition — herd's Ok/No verdicts. *)

module type MODEL = sig
  val name : string

  (* [consistent x] holds iff the candidate execution [x] satisfies every
     constraint of the model. *)
  val consistent : Execution.t -> bool
end

type verdict = Allow | Forbid

let verdict_to_string = function Allow -> "Allow" | Forbid -> "Forbid"
let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

type result = {
  verdict : verdict;
  n_candidates : int; (* candidate executions enumerated *)
  n_consistent : int; (* consistent under the model *)
  n_matching : int; (* consistent and satisfying the condition *)
  witness : Execution.t option; (* a consistent execution matching the condition *)
  outcomes : (Execution.outcome * bool) list;
      (* observable outcomes of consistent executions; the flag tells
         whether the outcome satisfies the condition *)
}

(* Interpret the test's quantifier over the consistent executions:
   - exists c  : Allow iff some consistent execution satisfies c;
   - ~exists c : Allow iff some consistent execution satisfies c
                 (the quantifier expresses the author's expectation, not a
                 different question — herd reports Ok/No either way);
   - forall c  : Allow iff some consistent execution *violates* c.
   In all cases the verdict answers: "is the distinguishing outcome
   observable?". *)
let run (module M : MODEL) (test : Litmus.Ast.t) =
  let candidates = Execution.of_test test in
  let consistent = List.filter M.consistent candidates in
  let satisfies x =
    match test.quant with
    | Litmus.Ast.Q_exists | Litmus.Ast.Q_not_exists -> Execution.satisfies_cond x
    | Litmus.Ast.Q_forall -> not (Execution.satisfies_cond x)
  in
  let matching = List.filter satisfies consistent in
  let outcomes =
    List.sort_uniq compare
      (List.map (fun x -> (Execution.outcome x, satisfies x)) consistent)
  in
  {
    verdict = (if matching <> [] then Allow else Forbid);
    n_candidates = List.length candidates;
    n_consistent = List.length consistent;
    n_matching = List.length matching;
    witness = (match matching with [] -> None | x :: _ -> Some x);
    outcomes;
  }

(* The set of observable outcomes under the model, ignoring the condition:
   used to compare models with operational simulators. *)
let allowed_outcomes (module M : MODEL) (test : Litmus.Ast.t) =
  Execution.of_test test
  |> List.filter M.consistent
  |> List.map Execution.outcome
  |> List.sort_uniq compare
