(* Running a litmus test against a consistency model.

   A model decides which candidate executions are consistent; a test is
   *allowed* iff some consistent execution satisfies its (existential)
   condition — herd's Ok/No verdicts.

   A third verdict, [Unknown], carries the robustness layer: when a
   per-test budget trips mid-enumeration, or the model itself fails on a
   candidate, the partial result is reported instead of a hang or an
   escaped exception. *)

module type MODEL = sig
  val name : string

  (* [consistent x] holds iff the candidate execution [x] satisfies every
     constraint of the model. *)
  val consistent : Execution.t -> bool
end

(* A batched consistency oracle: all candidates are pairwise
   {!Execution.static_compatible}, so the model may take every
   witness-independent part from [xs.(0)]; bit c of the result must
   equal [consistent xs.(c)], for every c in [mask] (bits outside
   [mask] are ignored).  [~coherent]
   tells the model that every candidate of [mask] already passed the
   sc-per-location prefilter, so a model whose coherence axiom is
   exactly that check may skip re-deciding it. *)
type batch_fn = coherent:bool -> mask:int -> Execution.t array -> int

type unknown_reason =
  | Budget_exceeded of Budget.reason
  | Model_error of exn (* the model raised on some candidate *)
  | Crashed of int
      (* the isolated worker checking this test died on this signal
         (segfault, OOM kill, ...) — only process isolation (Harness.Pool)
         can produce it; in-process checking reports Model_error instead *)

type verdict = Allow | Forbid | Unknown of unknown_reason

(* Which checking engine produced a result: the scalar enumerator, the
   bit-plane batched enumerator, or the symbolic SAT backend.  Recorded
   in every result (and report entry) so runs are attributable. *)
type backend = Enum | Batch | Sat

let backend_to_string = function
  | Enum -> "enum"
  | Batch -> "batch"
  | Sat -> "sat"

(* Solver-side counters, present on results that went through (or were
   asked to go through) the SAT backend.  [fallback] marks a result
   that was requested as [Sat] but ran on an enumerative engine because
   the oracle ships no solver. *)
type sat_stats = { conflicts : int; decisions : int; fallback : bool }

let signal_name s =
  if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" s

let unknown_reason_to_string = function
  | Budget_exceeded r -> Budget.reason_to_string r
  | Model_error exn -> "model error: " ^ Printexc.to_string exn
  | Crashed s -> "worker crashed: " ^ signal_name s

let verdict_to_string = function
  | Allow -> "Allow"
  | Forbid -> "Forbid"
  | Unknown r -> Printf.sprintf "Unknown (%s)" (unknown_reason_to_string r)

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

type result = {
  verdict : verdict;
  n_candidates : int; (* candidate executions enumerated *)
  n_prefiltered : int; (* rejected by the coherence prefilter, before the
                          model ran (counted within n_candidates) *)
  n_consistent : int; (* consistent under the model *)
  n_matching : int; (* consistent and satisfying the condition *)
  witness : Execution.t option; (* a consistent execution matching the condition *)
  outcomes : (Execution.outcome * bool) list;
      (* observable outcomes of consistent executions; the flag tells
         whether the outcome satisfies the condition *)
  counterexample : Execution.t option;
      (* under [?explainer] and a Forbid verdict: the candidate the
         explanations talk about — a condition-satisfying candidate the
         model rejected *)
  explanations : Explain.t list;
      (* under [?explainer] and a Forbid verdict: one explanation per
         failing check of [counterexample] *)
  backend : backend; (* the engine that produced this result *)
  sat : sat_stats option; (* solver counters, SAT backend only *)
}

(* Interpret the test's quantifier over the consistent executions:
   - exists c  : Allow iff some consistent execution satisfies c;
   - ~exists c : Allow iff some consistent execution satisfies c
                 (the quantifier expresses the author's expectation, not a
                 different question — herd reports Ok/No either way);
   - forall c  : Allow iff some consistent execution *violates* c.
   In all cases the verdict answers: "is the distinguishing outcome
   observable?".

   Candidates are consumed as the enumeration streams them, one at a
   time: nothing is retained but the counters, the outcome set and the
   first witness, and candidates failing the sc-per-location prefilter
   (see {!Execution.coherent}) never reach the model at all. *)

let c_candidates = Obs.Counter.make "check.candidates"
let c_prefiltered = Obs.Counter.make "check.prefilter.hits"
let c_consistent = Obs.Counter.make "check.consistent"
let c_matching = Obs.Counter.make "check.matching"
let h_prefilter = Obs.Histogram.make "check.prefilter_us"
let h_model = Obs.Histogram.make "check.model_us"
let c_batch_flushes = Obs.Counter.make "check.batch.flushes"
let h_occupancy = Obs.Histogram.make "check.batch.occupancy"

let run_exn ?budget ?(prefilter = true) ?delta ?batch ?explainer
    (module M : MODEL) (test : Litmus.Ast.t) =
  let satisfies x =
    match test.quant with
    | Litmus.Ast.Q_exists | Litmus.Ast.Q_not_exists -> Execution.satisfies_cond x
    | Litmus.Ast.Q_forall -> not (Execution.satisfies_cond x)
  in
  let n_candidates = ref 0
  and n_prefiltered = ref 0
  and n_consistent = ref 0
  and n_matching = ref 0 in
  let witness = ref None and outcomes = ref [] in
  (* Counterexample retention for forensics, only with an explainer (one
     option test per rejected candidate otherwise — the explanation-off
     discipline).  The preferred counterexample is a condition-satisfying
     candidate the *model* rejected, whose failing checks name the
     interesting axioms; when every condition-satisfying candidate dies
     in the prefilter, the first of those stands in (its failure is
     sc-per-location, and the model's coherence check explains it). *)
  let track_cex = explainer <> None in
  let cex = ref None and cex_prefiltered = ref None in
  (* When tracing, the prefilter test and the model run are each timed
     per candidate (two clock reads each); the branch structure below is
     semantically identical to the untraced
       if prefilter && not coherent then ... else if consistent then ...
     including the short-circuit that skips [coherent] entirely when the
     prefilter is off. *)
  let tracing = Obs.enabled () in
  (* Per-candidate tallies, shared verbatim between the scalar loop and
     the batched flush: the flush walks its buffer in enumeration order
     calling exactly these, so counters, outcome order, witness and
     counterexample identity cannot diverge between the two paths. *)
  let prefiltered x =
    incr n_prefiltered;
    Obs.Counter.incr c_prefiltered;
    if track_cex && !cex_prefiltered = None && satisfies x then
      cex_prefiltered := Some x
  in
  let decided x ok =
    if ok then begin
      incr n_consistent;
      Obs.Counter.incr c_consistent;
      let sat = satisfies x in
      outcomes := (Execution.outcome x, sat) :: !outcomes;
      if sat then begin
        incr n_matching;
        Obs.Counter.incr c_matching;
        if !witness = None then witness := Some x
      end
    end
    else if track_cex && !cex = None && satisfies x then cex := Some x
  in
  Obs.with_span ~item:test.name "check" (fun () ->
      Obs.with_span ~item:test.name "enumerate" (fun () ->
          let stream = Execution.of_test_seq ?budget ?delta test in
          match batch with
          | None ->
              Seq.iter
                (fun x ->
                  (* counted as consumed, so the tally is correct however
                     the stream ends (completion, budget trip, model
                     failure) *)
                  incr n_candidates;
                  Obs.Counter.incr c_candidates;
                  Option.iter Budget.tick budget;
                  let t0 = if tracing then Obs.now_us () else 0. in
                  let keep = (not prefilter) || Execution.coherent x in
                  if tracing && prefilter then
                    Obs.Histogram.observe h_prefilter (Obs.now_us () -. t0);
                  if not keep then prefiltered x
                  else begin
                    let t1 = if tracing then Obs.now_us () else 0. in
                    let ok = M.consistent x in
                    if tracing then
                      Obs.Histogram.observe h_model (Obs.now_us () -. t1);
                    decided x ok
                  end)
                stream
          | Some batch_fn ->
              (* Buffer up to 63 pairwise static-compatible candidates —
                 within one event structure they share the events array
                 physically, and across enumeration-adjacent structures
                 of the same test the statics usually coincide (the
                 structures branch only on read values) — then decide
                 the prefilter and the model for the whole buffer in
                 word-parallel passes over candidate-major bit planes,
                 and tally in enumeration order.  Compatibility is
                 checked against the newest buffered candidate
                 (transitivity covers the rest), memoised per event-
                 array pair so each structure boundary costs one deep
                 comparison. *)
              let memo = ref None in
              let compatible (y : Execution.t) (x : Execution.t) =
                y.Execution.events == x.Execution.events
                ||
                match !memo with
                | Some (ea, eb, r)
                  when ea == y.Execution.events && eb == x.Execution.events ->
                    r
                | _ ->
                    let r = Execution.static_compatible y x in
                    memo := Some (y.Execution.events, x.Execution.events, r);
                    r
              in
              let buf = ref [] and len = ref 0 in
              let flush () =
                if !len > 0 then begin
                  let xs = Array.of_list (List.rev !buf) in
                  buf := [];
                  len := 0;
                  let k = Array.length xs in
                  let full = Rel.Batch.full_mask k in
                  Obs.Counter.incr c_batch_flushes;
                  Obs.Histogram.observe h_occupancy (float_of_int k);
                  let live =
                    if prefilter then Execution.coherent_mask ~mask:full xs
                    else full
                  in
                  let consistent =
                    if live = 0 then 0
                    else batch_fn ~coherent:prefilter ~mask:live xs
                  in
                  Array.iteri
                    (fun c x ->
                      let bit = 1 lsl c in
                      if live land bit = 0 then prefiltered x
                      else decided x (consistent land bit <> 0))
                    xs
                end
              in
              Seq.iter
                (fun x ->
                  incr n_candidates;
                  Obs.Counter.incr c_candidates;
                  Option.iter Budget.tick budget;
                  (match !buf with
                  | y :: _ when not (compatible y x) -> flush ()
                  | _ -> ());
                  buf := x :: !buf;
                  incr len;
                  if !len = Rel.Batch.width then flush ())
                stream;
              flush ()));
  (* Forensics run after enumeration, on the retained counterexample
     only.  The explainer re-derives the model's checks on it; any
     [Explain.Invalid] it raises (an explanation that fails its own
     re-validation) propagates as a hard error — under a budget that
     means an Unknown (Model_error) verdict and the runner's internal-
     error exit code, never a silently wrong explanation. *)
  let counterexample, explanations =
    match explainer with
    | Some explain when !n_matching = 0 -> (
        match (if !cex <> None then !cex else !cex_prefiltered) with
        | Some x ->
            let es = explain x in
            List.iter
              (fun (e : Explain.t) ->
                Obs.Counter.incr
                  (Obs.Counter.make ("explain.check_fail." ^ e.Explain.check)))
              es;
            (Some x, es)
        | None -> (None, []))
    | _ -> (None, [])
  in
  {
    verdict = (if !n_matching > 0 then Allow else Forbid);
    n_candidates = !n_candidates;
    n_prefiltered = !n_prefiltered;
    n_consistent = !n_consistent;
    n_matching = !n_matching;
    witness = !witness;
    outcomes = List.sort_uniq compare !outcomes;
    counterexample;
    explanations;
    backend = (match batch with None -> Enum | Some _ -> Batch);
    sat = None;
  }

let unknown ?budget ?(backend = Enum) ?sat reason =
  {
    verdict = Unknown reason;
    n_candidates =
      (match budget with Some b -> Budget.candidates_seen b | None -> 0);
    n_prefiltered = 0;
    n_consistent = 0;
    n_matching = 0;
    witness = None;
    outcomes = [];
    counterexample = None;
    explanations = [];
    backend;
    sat;
  }

(* Budgeted checking: budget violations and model failures become
   [Unknown] results carrying the partial candidate count — a check under
   a budget never raises.  Without a budget, behaviour (and exceptions)
   are exactly the pre-budget ones. *)
let run ?budget ?prefilter ?delta ?batch ?explainer (module M : MODEL)
    (test : Litmus.Ast.t) =
  let backend = match batch with None -> Enum | Some _ -> Batch in
  match budget with
  | None -> run_exn ?prefilter ?delta ?batch ?explainer (module M) test
  | Some b -> (
      try run_exn ~budget:b ?prefilter ?delta ?batch ?explainer (module M) test
      with
      | Budget.Exceeded r -> unknown ~budget:b ~backend (Budget_exceeded r)
      | Stack_overflow ->
          unknown ~budget:b ~backend (Model_error Stack_overflow)
      | exn -> unknown ~budget:b ~backend (Model_error exn))

(* The set of observable outcomes under the model, ignoring the condition:
   used to compare models with operational simulators.  May raise
   {!Budget.Exceeded} when budgeted.  [?batch] routes the consistency
   decisions through the same bit-plane buffering as {!run}. *)
let allowed_outcomes ?budget ?(prefilter = true) ?delta ?batch
    (module M : MODEL) (test : Litmus.Ast.t) =
  let acc = ref [] in
  let stream = Execution.of_test_seq ?budget ?delta test in
  (match batch with
  | None ->
      Seq.iter
        (fun x ->
          Option.iter Budget.tick budget;
          if prefilter && not (Execution.coherent x) then ()
          else if M.consistent x then acc := Execution.outcome x :: !acc)
        stream
  | Some batch_fn ->
      let memo = ref None in
      let compatible (y : Execution.t) (x : Execution.t) =
        y.Execution.events == x.Execution.events
        ||
        match !memo with
        | Some (ea, eb, r)
          when ea == y.Execution.events && eb == x.Execution.events ->
            r
        | _ ->
            let r = Execution.static_compatible y x in
            memo := Some (y.Execution.events, x.Execution.events, r);
            r
      in
      let buf = ref [] and len = ref 0 in
      let flush () =
        if !len > 0 then begin
          let xs = Array.of_list (List.rev !buf) in
          buf := [];
          len := 0;
          let full = Rel.Batch.full_mask (Array.length xs) in
          let live =
            if prefilter then Execution.coherent_mask ~mask:full xs else full
          in
          let consistent =
            if live = 0 then 0
            else batch_fn ~coherent:prefilter ~mask:live xs
          in
          Array.iteri
            (fun c x ->
              let bit = 1 lsl c in
              if live land bit <> 0 && consistent land bit <> 0 then
                acc := Execution.outcome x :: !acc)
            xs
        end
      in
      Seq.iter
        (fun x ->
          Option.iter Budget.tick budget;
          (match !buf with
          | y :: _ when not (compatible y x) -> flush ()
          | _ -> ());
          buf := x :: !buf;
          incr len;
          if !len = Rel.Batch.width then flush ())
        stream;
      flush ());
  List.sort_uniq compare !acc
