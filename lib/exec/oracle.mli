(** A checking oracle: one first-class value bundling every engine a
    model ships — the scalar model (always), the bit-plane batched
    evaluator and the symbolic SAT engine (both optional).  Engine
    selection is a {!Check.backend} request at the call site; the
    oracle resolves it against what it actually has, falling back
    (counted, and recorded on the result) when the symbolic engine is
    requested but absent.

    Oracles replace the old [(model, batch_fn)] pairing that each
    harness layer re-assembled: construct one next to the model
    ([Lkmm.oracle], [Cat.to_oracle], …) and pass it as a single value
    through Runner, Pool, Serve, Campaign, Sweep and the CLIs. *)

type backend_request = Check.backend

type t = {
  name : string;  (** the model's name, stable across engines *)
  model : Budget.t option -> (module Check.MODEL);
      (** the scalar engine — always present; the budget parameter
          serves models whose [consistent] ticks it (cat
          interpretation) *)
  batch : (Budget.t option -> Check.batch_fn) option;
      (** the bit-plane batched engine *)
  solve : Solve.solve_fn option;  (** the symbolic engine *)
}

(** [scalar name model] — an oracle with only the scalar engine. *)
val scalar : string -> (Budget.t option -> (module Check.MODEL)) -> t

(** [of_model (module M)] — a scalar-only oracle around a
    budget-oblivious model, named after it. *)
val of_model : (module Check.MODEL) -> t

val make :
  name:string ->
  model:(Budget.t option -> (module Check.MODEL)) ->
  ?batch:(Budget.t option -> Check.batch_fn) ->
  ?solve:Solve.solve_fn ->
  unit ->
  t

val name : t -> string
val model : t -> ?budget:Budget.t -> unit -> (module Check.MODEL)
val has_batch : t -> bool
val has_solve : t -> bool

(** The engine a request would actually run: [Sat] degrades to [Enum]
    when no solver is shipped (the counted fallback), [Batch] to [Enum]
    when no batch engine is shipped (a plain optimisation miss — not
    counted). *)
val resolve : t -> backend_request -> Check.backend

(** [run t test] checks [test] through the requested backend (default
    [Batch], matching the CLIs' default engine):
    - [Sat]: the symbolic engine if present; otherwise the enumerative
      path runs, the [sat.fallback] counter ticks, and the result
      carries [sat = Some {fallback = true; _}];
    - [Batch]: the batched enumerative path if present, scalar
      otherwise;
    - [Enum]: the scalar path with delta re-evaluation off — the
      reference engine.

    [?prefilter]/[?delta]/[?explainer] forward to {!Check.run} on the
    enumerative paths; the symbolic engine takes [?explainer] only. *)
val run :
  ?budget:Budget.t ->
  ?prefilter:bool ->
  ?delta:bool ->
  ?explainer:(Execution.t -> Explain.t list) ->
  ?backend:backend_request ->
  t ->
  Litmus.Ast.t ->
  Check.result

(** Model-allowed outcomes through the oracle (enumerative engines
    only: the symbolic engine answers the per-test existential
    question, not the all-outcomes one, so [Sat] requests use the
    batched path). *)
val allowed_outcomes :
  ?budget:Budget.t ->
  ?prefilter:bool ->
  ?delta:bool ->
  ?backend:backend_request ->
  t ->
  Litmus.Ast.t ->
  Execution.outcome list
