(** Graphviz export of candidate executions, in the style of herd's
    diagrams: one box per thread, events in program order,
    communication and dependency edges labelled and coloured.

    With [?explain], the violating cycle of each failed check (from
    {!Explain}) is overlaid in bold red, every edge labelled with the
    branch of the checked relation it belongs to and its primitive
    decomposition, and the graph is titled with the violated checks. *)

(** Escape a string for a DOT double-quoted literal: backslashes and
    quotes are escaped, raw newlines become the [\n] label line break. *)
val escape : string -> string

(** [to_string ?extra ?explain x] renders [x] as a [digraph].  [extra]
    adds named relations (e.g. [hb] or [prop] from the LK model) as
    grey edges; [explain] overlays the violating cycles. *)
val to_string :
  ?extra:(string * Rel.t) list ->
  ?explain:Explain.t list ->
  Execution.t ->
  string

(** {!to_string} written to a file. *)
val to_file :
  ?extra:(string * Rel.t) list ->
  ?explain:Explain.t list ->
  string ->
  Execution.t ->
  unit
