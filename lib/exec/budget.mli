(** Per-test resource budgets: wall-clock timeout, max events per
    candidate execution, max candidate executions.  Enumeration and
    interpretation raise {!Exceeded} when a limit trips; callers turn
    that into a structured [Unknown] verdict instead of hanging. *)

type limits = {
  timeout : float option;  (** wall-clock seconds per test *)
  max_events : int option;  (** events in one candidate execution *)
  max_candidates : int option;  (** candidate executions enumerated *)
  max_heap_mb : int option;  (** major-heap ceiling, megabytes *)
}

val unlimited : limits

(** [limits ?timeout ?max_events ?max_candidates ?max_heap_mb ()] —
    omitted fields are unbounded. *)
val limits :
  ?timeout:float ->
  ?max_events:int ->
  ?max_candidates:int ->
  ?max_heap_mb:int ->
  unit ->
  limits

(** The batch runner's defaults: 10 s, 256 events, 200k candidates,
    unbounded heap. *)
val default : limits

val is_unlimited : limits -> bool

type reason =
  | Timed_out of float  (** the wall-clock limit, seconds *)
  | Too_many_events of int * int  (** seen, limit *)
  | Too_many_candidates of int  (** limit *)
  | Heap_exceeded of int  (** the heap limit, megabytes *)

val reason_to_string : reason -> string
val pp_reason : reason Fmt.t

exception Exceeded of reason

(** A running budget: deadline armed, candidate counter live. *)
type t

(** [start limits] arms the deadline and zeroes the counters. *)
val start : limits -> t

(** [start_at ~deadline limits] arms against an *absolute* deadline
    (Unix time): the relative timeout is clamped to what remains of the
    deadline at call time, so queue wait before the budget was armed
    counts against the request.  A deadline already in the past yields
    a zero timeout whose first {!check_time} trips. *)
val start_at : deadline:float -> limits -> t

(** Candidate executions materialised so far (partial-progress report). *)
val candidates_seen : t -> int

(** Raise {!Exceeded} if the deadline has passed (samples the clock). *)
val check_time : t -> unit

(** Current major-heap size in megabytes (via [Gc.quick_stat]). *)
val heap_mb : unit -> int

(** Raise {!Exceeded} if the major heap is over the cap. *)
val check_heap : t -> unit

(** Cheap probe for hot loops: checks the clock (and heap cap) every
    256th call. *)
val tick : t -> unit

(** [check_events b n] — fail if one candidate has more than the cap. *)
val check_events : t -> int -> unit

(** Count one materialised candidate execution against the cap. *)
val count_candidate : t -> unit

(** [claim b n] — fail early if [n] further candidates would blow the
    cap (arithmetic pre-check, nothing materialised yet). *)
val claim : t -> int -> unit

(** Saturating multiply/factorial for pre-enumeration size estimates. *)
val sat_mul : int -> int -> int

val sat_fact : int -> int
