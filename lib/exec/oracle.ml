(* A checking oracle: one first-class value bundling every engine a
   model ships — the scalar model (always), the bit-plane batched
   evaluator (optional) and the symbolic SAT engine (optional) — so
   engine selection is one [backend] switch at the call site instead of
   ad-hoc (model, batch_fn) pairing threaded through every layer.

   Oracles are constructed once, next to the model they wrap
   ([Lkmm.oracle], [Cat.to_oracle], the operational simulators'
   scalar-only wrappings) and passed as a single value through the
   harness (Runner, Pool, Serve, Campaign, Sweep) and the CLIs. *)

type backend_request = Check.backend

type t = {
  name : string;  (* the model's name, stable across engines *)
  model : Budget.t option -> (module Check.MODEL);
  batch : (Budget.t option -> Check.batch_fn) option;
  solve : Solve.solve_fn option;
}

let c_fallback = Obs.Counter.make "sat.fallback"

let scalar name model = { name; model; batch = None; solve = None }

(* Most scalar models are budget-oblivious modules; wrap them without
   ceremony, taking the oracle's name from the model's own. *)
let of_model (module M : Check.MODEL) =
  scalar M.name (fun _ -> (module M : Check.MODEL))

let make ~name ~model ?batch ?solve () = { name; model; batch; solve }

let name t = t.name
let model t ?budget () = t.model budget
let has_batch t = Option.is_some t.batch
let has_solve t = Option.is_some t.solve

(* The engine actually selected for a request: the oracle's best match
   for the requested backend.  [Sat] falls back (counted) when no
   solver is shipped; [Batch] silently degrades to the scalar engine —
   batched evaluation is an optimisation of the same enumeration, not
   a different engine family, and scalar-only models are common. *)
let resolve t (req : backend_request) : Check.backend =
  match req with
  | Check.Sat -> if has_solve t then Check.Sat else Check.Enum
  | Check.Batch -> if has_batch t then Check.Batch else Check.Enum
  | Check.Enum -> Check.Enum

let run ?budget ?prefilter ?delta ?explainer ?(backend = Check.Batch) t test =
  match backend with
  | Check.Sat -> (
      match t.solve with
      | Some solve -> solve ?budget ?explainer test
      | None ->
          (* requested symbolically, shipped enumeratively: fall back,
             loudly enough for reports to show it *)
          Obs.Counter.incr c_fallback;
          let r =
            Check.run ?budget ?prefilter ?delta ?explainer (t.model budget)
              test
          in
          {
            r with
            Check.sat =
              Some { Check.conflicts = 0; decisions = 0; fallback = true };
          })
  | Check.Batch -> (
      match t.batch with
      | Some mk ->
          Check.run ?budget ?prefilter ?delta ~batch:(mk budget) ?explainer
            (t.model budget) test
      | None ->
          Check.run ?budget ?prefilter ?delta ?explainer (t.model budget) test)
  | Check.Enum ->
      Check.run ?budget ?prefilter ~delta:false ?explainer (t.model budget)
        test

(* Model-allowed outcomes, through the oracle's enumerative engines
   (the symbolic engine answers the per-test existential question, not
   the all-outcomes one; [Sat] requests degrade to the batched path). *)
let allowed_outcomes ?budget ?prefilter ?delta ?(backend = Check.Batch) t test
    =
  match backend with
  | Check.Enum ->
      Check.allowed_outcomes ?budget ?prefilter ~delta:false (t.model budget)
        test
  | Check.Batch | Check.Sat -> (
      match t.batch with
      | Some mk ->
          Check.allowed_outcomes ?budget ?prefilter ?delta ~batch:(mk budget)
            (t.model budget) test
      | None ->
          Check.allowed_outcomes ?budget ?prefilter ?delta (t.model budget)
            test)
