(* Per-test resource budgets (robustness layer).

   Herd-style enumeration is combinatorially explosive: rf/co witness
   counts grow super-exponentially with test size, so a single
   pathological test can hang or exhaust memory for a whole batch.  A
   budget bounds one check along three axes — wall-clock time, events
   per candidate execution, and candidate executions enumerated — and
   the enumeration/interpretation code raises {!Exceeded} as soon as a
   limit is hit, letting callers report a structured [Unknown] verdict
   instead of hanging.

   [limits] is the immutable configuration; [t] is a running instance
   with the deadline armed and the candidate counter live.  Time is
   checked through {!tick}, which samples the clock once every few
   hundred calls so the happy path stays cheap. *)

type limits = {
  timeout : float option; (* wall-clock seconds per test *)
  max_events : int option; (* events in one candidate execution *)
  max_candidates : int option; (* candidate executions enumerated *)
  max_heap_mb : int option; (* major-heap ceiling, megabytes *)
}

let unlimited =
  { timeout = None; max_events = None; max_candidates = None;
    max_heap_mb = None }

let limits ?timeout ?max_events ?max_candidates ?max_heap_mb () =
  { timeout; max_events; max_candidates; max_heap_mb }

(* Defaults used by the batch runner: loose enough for every legitimate
   test in the battery/corpus, tight enough to cut off explosions. *)
let default =
  { timeout = Some 10.0; max_events = Some 256;
    max_candidates = Some 200_000; max_heap_mb = None }

let is_unlimited l =
  l.timeout = None && l.max_events = None && l.max_candidates = None
  && l.max_heap_mb = None

type reason =
  | Timed_out of float (* the wall-clock limit, seconds *)
  | Too_many_events of int * int (* seen, limit *)
  | Too_many_candidates of int (* limit *)
  | Heap_exceeded of int (* the heap limit, megabytes *)

let reason_to_string = function
  | Timed_out s -> Printf.sprintf "timeout after %gs" s
  | Too_many_events (n, m) -> Printf.sprintf "%d events exceed cap %d" n m
  | Too_many_candidates m -> Printf.sprintf "more than %d candidate executions" m
  | Heap_exceeded mb -> Printf.sprintf "heap exceeded %dMB" mb

let pp_reason ppf r = Fmt.string ppf (reason_to_string r)

exception Exceeded of reason

type t = {
  lim : limits;
  deadline : float option; (* absolute, Unix time *)
  mutable n_candidates : int;
  mutable ticks : int;
}

let start lim =
  {
    lim;
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) lim.timeout;
    n_candidates = 0;
    ticks = 0;
  }

(* Deadline propagation (checking-as-a-service): a request admitted at
   time T with deadline D has already spent queue time by the moment a
   worker picks it up, so the worker arms the budget against the
   *absolute* deadline — the relative timeout is clamped to whatever of
   it remains.  A deadline in the past yields a zero timeout: the first
   [check_time] trips, producing a structured [Timed_out] instead of
   any work. *)
let start_at ~deadline lim =
  let remaining = Float.max 0. (deadline -. Unix.gettimeofday ()) in
  let timeout =
    match lim.timeout with
    | Some t -> Some (Float.min t remaining)
    | None -> Some remaining
  in
  start { lim with timeout }

let candidates_seen b = b.n_candidates

let check_time b =
  match (b.deadline, b.lim.timeout) with
  | Some d, Some s when Unix.gettimeofday () > d ->
      raise (Exceeded (Timed_out s))
  | _ -> ()

(* Major-heap words, converted to MB (a word is 8 bytes on every target
   we build for).  [quick_stat] does not walk the heap, so this is cheap
   enough for the sampled probe. *)
let heap_mb () = (Gc.quick_stat ()).Gc.heap_words * 8 / (1024 * 1024)

let check_heap b =
  match b.lim.max_heap_mb with
  | Some mb when heap_mb () > mb -> raise (Exceeded (Heap_exceeded mb))
  | _ -> ()

(* Cheap progress probe for hot loops: samples the clock (and the heap,
   when capped) every 256 calls. *)
let tick b =
  b.ticks <- b.ticks + 1;
  if b.ticks land 255 = 0 then begin
    check_time b;
    check_heap b
  end

let check_events b n =
  match b.lim.max_events with
  | Some m when n > m -> raise (Exceeded (Too_many_events (n, m)))
  | _ -> ()

(* One more candidate execution was materialised. *)
let count_candidate b =
  b.n_candidates <- b.n_candidates + 1;
  (match b.lim.max_candidates with
  | Some m when b.n_candidates > m -> raise (Exceeded (Too_many_candidates m))
  | _ -> ());
  tick b

(* [claim b n] pre-checks an arithmetic estimate: enumerating [n] further
   candidates would blow the cap, so fail before materialising anything.
   Estimates are computed with saturating arithmetic by the caller. *)
let claim b n =
  match b.lim.max_candidates with
  | Some m when n > m - b.n_candidates -> raise (Exceeded (Too_many_candidates m))
  | _ -> ()

(* Saturating helpers for pre-enumeration size estimates. *)
let sat_cap = max_int / 2

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a >= sat_cap / b then sat_cap
  else a * b

let sat_fact n =
  let rec go acc i = if i > n then acc else go (sat_mul acc i) (i + 1) in
  if n <= 1 then 1 else go 1 2
