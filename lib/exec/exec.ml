(* Candidate executions and model checking of litmus tests.

   - {!Event}: reads, writes and fences with their annotations (Tables 3–4);
   - {!Sem}: per-thread symbolic semantics;
   - {!Execution} (included here): candidate executions with all base and
     derived relations, and their enumeration via {!of_test};
   - {!Budget}: per-test resource budgets bounding enumeration;
   - {!Check}: running a test against a consistency model;
   - {!Explain}: structured verdict forensics (failing check, minimal
     cycle witness, primitive-edge provenance);
   - {!Solve}: the symbolic SAT backend — the candidate space as CNF;
   - {!Oracle}: a model's engines (scalar, batched, symbolic) as one
     first-class value, with backend dispatch;
   - {!Dot}: Graphviz export of executions, with explanation overlays. *)

module Event = Event
module Sem = Sem
module Budget = Budget
module Check = Check
module Explain = Explain
module Solve = Solve
module Oracle = Oracle
module Dot = Dot
include Execution
