(* Graphviz export of candidate executions, in the style of herd's
   diagrams (and of the paper's figures): one box per thread, events in
   program order, communication and dependency edges labelled and
   coloured. *)

let edge_styles =
  [
    ("rf", "red");
    ("co", "brown");
    ("fr", "orange");
    ("addr", "blue");
    ("data", "blue");
    ("ctrl", "blue");
    ("rmw", "purple");
  ]

let quote s = "\"" ^ s ^ "\""

let node_label (e : Event.t) =
  if Event.is_fence e then
    Printf.sprintf "%c: F[%s]" (Char.chr (Char.code 'a' + (e.id mod 26)))
      (Event.annot_to_string e.annot)
  else
    Printf.sprintf "%c: %s[%s] %s=%d"
      (Char.chr (Char.code 'a' + (e.id mod 26)))
      (Event.dir_to_string e.dir)
      (Event.annot_to_string e.annot)
      e.loc e.v

(* [to_string ?extra x] renders [x]; [extra] adds named relations (e.g.
   hb or prop from the LK model) as dashed grey edges. *)
let to_string ?(extra = []) (x : Execution.t) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n" (quote x.Execution.test.Litmus.Ast.name);
  pr "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  (* threads as clusters; init writes outside *)
  let tids =
    Array.to_list x.Execution.events
    |> List.map (fun (e : Event.t) -> e.tid)
    |> List.filter (fun t -> t >= 0)
    |> List.sort_uniq Int.compare
  in
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_init e then
        pr "  e%d [label=%s, style=dotted];\n" e.id (quote (node_label e)))
    x.Execution.events;
  List.iter
    (fun tid ->
      pr "  subgraph cluster_T%d {\n    label=\"T%d\";\n" tid tid;
      Array.iter
        (fun (e : Event.t) ->
          if e.tid = tid then
            pr "    e%d [label=%s];\n" e.id (quote (node_label e)))
        x.Execution.events;
      pr "  }\n")
    tids;
  (* po as invisible-ish ordering edges between consecutive events *)
  List.iter
    (fun tid ->
      let evs =
        Array.to_list x.Execution.events
        |> List.filter (fun (e : Event.t) -> e.tid = tid)
        |> List.map (fun (e : Event.t) -> e.id)
        |> List.sort Int.compare
      in
      let rec chain = function
        | a :: (b :: _ as rest) ->
            pr "  e%d -> e%d [color=black, label=\"po\", fontsize=8];\n" a b;
            chain rest
        | _ -> ()
      in
      chain evs)
    tids;
  let emit_rel name color rel =
    Rel.iter
      (fun a b ->
        pr "  e%d -> e%d [color=%s, label=%s, fontsize=8, constraint=false];\n"
          a b color (quote name))
      rel
  in
  List.iter
    (fun (name, color) ->
      let rel =
        match name with
        | "rf" -> x.Execution.rf
        | "co" ->
            (* only immediate coherence edges, to keep graphs readable *)
            Rel.filter
              (fun a b ->
                not
                  (Rel.exists
                     (fun a' c -> a' = a && Rel.mem c b x.Execution.co)
                     x.Execution.co))
              x.Execution.co
        | "fr" -> x.Execution.fr
        | "addr" -> x.Execution.addr
        | "data" -> x.Execution.data
        | "ctrl" -> x.Execution.ctrl
        | "rmw" -> x.Execution.rmw
        | _ -> Rel.empty
      in
      emit_rel name color rel)
    edge_styles;
  List.iter (fun (name, rel) -> emit_rel name "grey" rel) extra;
  pr "}\n";
  Buffer.contents buf

let to_file ?extra path x =
  let oc = open_out path in
  output_string oc (to_string ?extra x);
  close_out oc
