(* Graphviz export of candidate executions, in the style of herd's
   diagrams (and of the paper's figures): one box per thread, events in
   program order, communication and dependency edges labelled and
   coloured.  An optional explanation overlay draws the violating
   cycle of each failed check in bold red, every edge labelled with its
   primitive decomposition. *)

let edge_styles =
  [
    ("rf", "red");
    ("co", "brown");
    ("fr", "orange");
    ("addr", "blue");
    ("data", "blue");
    ("ctrl", "blue");
    ("rmw", "purple");
  ]

(* DOT double-quoted strings: backslash and quote must be escaped, and
   a raw newline becomes the \n escape (a line break in the label). *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> ()
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let node_label (e : Event.t) =
  if Event.is_fence e then
    Printf.sprintf "%c: F[%s]" (Char.chr (Char.code 'a' + (e.id mod 26)))
      (Event.annot_to_string e.annot)
  else
    Printf.sprintf "%c: %s[%s] %s=%d"
      (Char.chr (Char.code 'a' + (e.id mod 26)))
      (Event.dir_to_string e.dir)
      (Event.annot_to_string e.annot)
      e.loc e.v

(* The overlay label of a violating-cycle edge: the branch of the
   checked relation it belongs to, plus its primitive decomposition
   when that says more than the label itself. *)
let step_label (s : Explain.step) =
  match s.Explain.prims with
  | [ p ]
    when p.Explain.p_label = s.Explain.label
         && p.Explain.p_src = s.Explain.src
         && p.Explain.p_dst = s.Explain.dst ->
      s.Explain.label
  | prims ->
      s.Explain.label ^ "\n= "
      ^ String.concat " ; "
          (List.map (fun (p : Explain.prim) -> p.Explain.p_label) prims)

(* [to_string ?extra ?explain x] renders [x]; [extra] adds named
   relations (e.g. hb or prop from the LK model) as dashed grey edges;
   [explain] overlays the violating cycles in bold red. *)
let to_string ?(extra = []) ?(explain = []) (x : Execution.t) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n" (quote x.Execution.test.Litmus.Ast.name);
  pr "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  (match explain with
  | [] -> ()
  | es ->
      let checks =
        List.sort_uniq compare
          (List.map (fun (e : Explain.t) -> e.Explain.check) es)
      in
      pr "  label=%s;\n  labelloc=t;\n  fontcolor=red;\n"
        (quote ("forbidden: " ^ String.concat ", " checks)));
  (* threads as clusters; init writes outside *)
  let tids =
    Array.to_list x.Execution.events
    |> List.map (fun (e : Event.t) -> e.tid)
    |> List.filter (fun t -> t >= 0)
    |> List.sort_uniq Int.compare
  in
  Array.iter
    (fun (e : Event.t) ->
      if Event.is_init e then
        pr "  e%d [label=%s, style=dotted];\n" e.id (quote (node_label e)))
    x.Execution.events;
  List.iter
    (fun tid ->
      pr "  subgraph cluster_T%d {\n    label=\"T%d\";\n" tid tid;
      Array.iter
        (fun (e : Event.t) ->
          if e.tid = tid then
            pr "    e%d [label=%s];\n" e.id (quote (node_label e)))
        x.Execution.events;
      pr "  }\n")
    tids;
  (* po as invisible-ish ordering edges between consecutive events *)
  List.iter
    (fun tid ->
      let evs =
        Array.to_list x.Execution.events
        |> List.filter (fun (e : Event.t) -> e.tid = tid)
        |> List.map (fun (e : Event.t) -> e.id)
        |> List.sort Int.compare
      in
      let rec chain = function
        | a :: (b :: _ as rest) ->
            pr "  e%d -> e%d [color=black, label=\"po\", fontsize=8];\n" a b;
            chain rest
        | _ -> ()
      in
      chain evs)
    tids;
  let emit_rel name color rel =
    Rel.iter
      (fun a b ->
        pr "  e%d -> e%d [color=%s, label=%s, fontsize=8, constraint=false];\n"
          a b color (quote name))
      rel
  in
  List.iter
    (fun (name, color) ->
      let rel =
        match name with
        | "rf" -> x.Execution.rf
        | "co" ->
            (* only immediate coherence edges, to keep graphs readable *)
            Rel.filter
              (fun a b ->
                not
                  (Rel.exists
                     (fun a' c -> a' = a && Rel.mem c b x.Execution.co)
                     x.Execution.co))
              x.Execution.co
        | "fr" -> x.Execution.fr
        | "addr" -> x.Execution.addr
        | "data" -> x.Execution.data
        | "ctrl" -> x.Execution.ctrl
        | "rmw" -> x.Execution.rmw
        | _ -> Rel.empty
      in
      emit_rel name color rel)
    edge_styles;
  List.iter (fun (name, rel) -> emit_rel name "grey" rel) extra;
  (* explanation overlay: the violating cycle of each failed check,
     bold red, each edge carrying its primitive decomposition *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Explain.t) ->
      List.iter
        (fun (s : Explain.step) ->
          let key = (s.Explain.src, s.Explain.dst, step_label s) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            pr
              "  e%d -> e%d [color=red, penwidth=2, style=bold, label=%s, \
               fontsize=9, fontcolor=red, constraint=false];\n"
              s.Explain.src s.Explain.dst
              (quote (step_label s))
          end)
        e.Explain.steps)
    explain;
  pr "}\n";
  Buffer.contents buf

let to_file ?extra ?explain path x =
  let oc = open_out path in
  output_string oc (to_string ?extra ?explain x);
  close_out oc
