(** Candidate executions (paper, Section 2): an abstract execution
    (E, po, addr, data, ctrl, rmw) paired with an execution witness
    (rf, co), plus every derived relation the models consume, computed
    once at construction.

    {!of_test} enumerates all candidate executions of a litmus test:
    per-thread symbolic runs branch over read values, then every
    reads-from assignment (same location, same value) and every per-
    location coherence total order is combined.  Consistency is the
    model's business — enumeration includes incoherent witnesses. *)

module Iset = Rel.Iset

type t = {
  test : Litmus.Ast.t;
  events : Event.t array;  (** indexed by event id *)
  po : Rel.t;  (** program order (transitive, total per thread) *)
  addr : Rel.t;  (** address dependencies, from reads *)
  data : Rel.t;  (** data dependencies, reads to writes *)
  ctrl : Rel.t;  (** control dependencies, scoped to branch bodies *)
  rmw : Rel.t;  (** read of a read-modify-write to its write *)
  rf : Rel.t;  (** reads-from: exactly one writer per read *)
  co : Rel.t;  (** coherence: total per location, init first *)
  final_regs : (int * string * int) list;  (** (tid, register, value) *)
  universe : Iset.t;
  fr : Rel.t;  (** from-reads: rf^-1 ; co, minus identity *)
  rfi : Rel.t;
  rfe : Rel.t;
  coi : Rel.t;
  coe : Rel.t;
  fri : Rel.t;
  fre : Rel.t;
  com : Rel.t;  (** rf | co | fr *)
  po_loc : Rel.t;
  int_r : Rel.t;  (** same (real) thread; init writes are in no thread *)
  ext_r : Rel.t;  (** distinct pairs not in int *)
  loc_r : Rel.t;  (** same-location memory accesses *)
  id_r : Rel.t;
  reads : Iset.t;
  writes : Iset.t;
  fences : Iset.t;
  mem : Iset.t;  (** reads and writes *)
  init_ws : Iset.t;
  crit : Rel.t;  (** outermost rcu_read_lock -> matching rcu_read_unlock *)
}

val event : t -> int -> Event.t
val n_events : t -> int

(** [events_where t p] is the set of event ids satisfying [p]. *)
val events_where : t -> (Event.t -> bool) -> Iset.t

(** Events carrying the given annotation. *)
val with_annot : t -> Event.annot -> Iset.t

(** The candidate read values per location, grown by a fixpoint over
    observed written values (exposed for tests). *)
val initial_domain : Litmus.Ast.t -> int list

val thread_candidate_lists : Litmus.Ast.t -> Sem.candidate list list

(** The witness-independent part of a candidate, shared by all rf/co
    witnesses of one event structure (abstract; carried inside
    {!skeleton} so decoded witnesses share derived statics with
    enumerated ones). *)
type structure

(** One event structure plus its witness choice space: the raw material
    both checking backends consume.  The enumerative engine takes the
    cartesian product of [sk_rf_choices] with the linear extensions of
    [sk_co_writes]; the symbolic engine ({!Solve}) turns the same two
    fields into one-hot rf variables and boolean order constraints. *)
type skeleton = {
  sk_test : Litmus.Ast.t;
  sk_events : Event.t array;
  sk_po : Rel.t;
  sk_addr : Rel.t;
  sk_data : Rel.t;
  sk_ctrl : Rel.t;
  sk_rmw : Rel.t;
  sk_final_regs : (int * string * int) list;
  sk_st : structure;
  sk_rf_choices : (int * int) list list;
      (** per read, in event-id order: its candidate (writer, read)
          edges — same location, same value *)
  sk_co_writes : (string * int * int list) list;
      (** per location, in declaration order: the location, its
          initialising write and the non-init writes (event-id order) *)
}

(** [skeletons ?budget test] enumerates the event structures of a test
    (per-thread symbolic runs branching over read values), before any
    witness is chosen.  With a budget, forcing the sequence applies the
    per-structure event-count check. *)
val skeletons : ?budget:Budget.t -> Litmus.Ast.t -> skeleton Seq.t

(** [instantiate sk ~rf ~co] builds the candidate execution of [sk]
    with the given witness; derived statics are shared with every other
    candidate of the same skeleton. *)
val instantiate : skeleton -> rf:Rel.t -> co:Rel.t -> t

(** [co_of_orders sk orders] assembles a coherence relation from
    per-location total orders (event-id lists in coherence order): the
    initialising write first, then the listed writes. *)
val co_of_orders : skeleton -> (string * int list) list -> Rel.t

(** [of_test_seq ?budget test] enumerates the candidate executions as a
    lazily-produced sequence: each candidate is materialised only when
    the consumer reaches it, so checking can interleave with enumeration
    and stop early without building the full list.  With a running
    budget, forcing the sequence raises {!Budget.Exceeded} as soon as
    the event, candidate, or wall-clock limit trips (an arithmetic
    pre-check on the rf/co product size fails explosions before anything
    is materialised).

    Within one coherence choice, enumeration-adjacent candidates differ
    only in the writers of a suffix of the reads; with [?delta] (default
    [true]) the enumerator patches rf and the affected from-reads rows
    between adjacent candidates instead of recomputing them (rf being
    functional per read, a read's fr row is exactly its writer's co
    row).  [~delta:false] recovers the from-scratch construction; the
    candidates produced, and their order, are identical either way. *)
val of_test_seq : ?budget:Budget.t -> ?delta:bool -> Litmus.Ast.t -> t Seq.t

(** [of_test ?budget test] is [of_test_seq], fully materialised. *)
val of_test : ?budget:Budget.t -> ?delta:bool -> Litmus.Ast.t -> t list

(** [coherent t] holds iff [po-loc ∪ rf ∪ co ∪ fr] is acyclic —
    sc-per-location.  Every shipped model constrains a superset of this
    relation, so incoherent candidates are inconsistent under all of
    them; {!Check.run} uses this as a cheap prefilter. *)
val coherent : t -> bool

(** [static_compatible a b] — may [a] and [b] share one batched
    evaluation pass?  Holds iff their events agree up to read/written
    values and their input statics (po, addr, data, ctrl, rmw) are
    equal; the models consume nothing else that is witness-independent,
    values being strictly per-candidate (conditions, outcomes).  An
    equivalence, so a stream checked pairwise stays pairwise
    compatible.  Candidates of one event structure share their event
    array physically and are compatible for free. *)
val static_compatible : t -> t -> bool

(** [coherent_mask ~mask xs] decides {!coherent} for up to 63
    pairwise {!static_compatible} candidates in a single word-parallel
    pass over candidate-major bit planes ({!Rel.Batch}): bit [c] of the
    result is set iff bit [c] of [mask] is set and [xs.(c)] is
    coherent. *)
val coherent_mask : mask:int -> t array -> int

(** [final_mem t x] is the value of [x] after the execution: its
    co-maximal write (or the initial value). *)
val final_mem : t -> string -> int

val reg_value : t -> int -> string -> int option

(** Does the final state satisfy the test's condition body?  (The
    quantifier is interpreted by {!Check}, not here.) *)
val satisfies_cond : t -> bool

(** The observable outcome: values of everything the condition mentions,
    as a canonical assoc list with keys like ["1:r2"] and ["x"].  Two
    executions with equal outcomes are indistinguishable to the test. *)
type outcome = (string * int) list

val observables :
  Litmus.Ast.t -> [ `Mem of string | `Reg of int * string ] list

val outcome : t -> outcome
val pp_outcome : outcome Fmt.t
val pp : t Fmt.t
