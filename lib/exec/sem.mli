(** Per-thread semantics: symbolic execution of one thread under every
    possible assignment of values to its reads.

    Each candidate carries the thread's events in program order (with
    identifiers local to the thread, re-based by {!Execution.of_test}),
    its dependency and rmw edges over those local identifiers, and the
    final register values the run produces. *)

(** An event before thread identifiers and global ids are assigned. *)
type proto_event = {
  dir : Event.dir;
  loc : string;
  v : int;
  annot : Event.annot;
}

(** One symbolic run of a thread. *)
type candidate = {
  events : proto_event list;  (** in program order *)
  addr : (int * int) list;  (** address dependencies, local event ids *)
  data : (int * int) list;  (** data dependencies *)
  ctrl : (int * int) list;  (** control dependencies *)
  rmw : (int * int) list;  (** read/write pairs of atomic RMWs *)
  regs : (string * int) list;  (** final register values *)
}

(** Evaluate a binary operation on concrete values (comparisons and
    logical connectives yield 0/1).  Shared with the hardware
    simulator's interpreter. *)
val eval_binop : Litmus.Ast.binop -> int -> int -> int

(** [thread_candidates test domain instrs] is every candidate of one
    thread of [test], where [domain loc] gives the values a read of
    [loc] may observe. *)
val thread_candidates :
  Litmus.Ast.t -> (string -> int list) -> Litmus.Ast.instr list -> candidate list
