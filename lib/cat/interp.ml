(* Interpreter for the cat subset: evaluates a model's statements against
   the base relations of one candidate execution, in the style of the herd
   simulator. *)

module Iset = Rel.Iset

type value =
  | Vset of Iset.t
  | Vrel of Rel.t
  | Vfun of string list * Ast.expr * env

and env = { universe : Iset.t; bindings : (string * value) list }

exception Type_error of string

let lookup env x =
  match List.assoc_opt x env.bindings with
  | Some v -> v
  | None -> raise (Type_error ("unbound identifier " ^ x))

let bind env x v = { env with bindings = (x, v) :: env.bindings }

(* Sets appearing where a relation is expected become identities, the
   usual [S] coercion. *)
let as_rel = function
  | Vrel r -> r
  | Vset s -> Rel.id_of_set s
  | Vfun _ -> raise (Type_error "function used as a relation")

let as_set = function
  | Vset s -> s
  | Vrel _ -> raise (Type_error "relation used as a set")
  | Vfun _ -> raise (Type_error "function used as a set")

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Id x -> lookup env x
  | Ast.Empty_rel -> Vrel Rel.empty
  | Ast.Union (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.union s1 s2)
      | v1, v2 -> Vrel (Rel.union (as_rel v1) (as_rel v2)))
  | Ast.Inter (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.inter s1 s2)
      | v1, v2 -> Vrel (Rel.inter (as_rel v1) (as_rel v2)))
  | Ast.Diff (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.diff s1 s2)
      | v1, v2 -> Vrel (Rel.diff (as_rel v1) (as_rel v2)))
  | Ast.Seq (a, b) -> Vrel (Rel.seq (as_rel (eval env a)) (as_rel (eval env b)))
  | Ast.Cartesian (a, b) ->
      Vrel (Rel.cartesian (as_set (eval env a)) (as_set (eval env b)))
  | Ast.Inverse a -> Vrel (Rel.inverse (as_rel (eval env a)))
  | Ast.Plus a -> Vrel (Rel.transitive_closure (as_rel (eval env a)))
  | Ast.Star a ->
      Vrel
        (Rel.reflexive_transitive_closure ~universe:env.universe
           (as_rel (eval env a)))
  | Ast.Opt a ->
      Vrel (Rel.reflexive_closure ~universe:env.universe (as_rel (eval env a)))
  | Ast.Complement a -> (
      match eval env a with
      | Vset s -> Vset (Iset.diff env.universe s)
      | v -> Vrel (Rel.complement ~universe:env.universe (as_rel v)))
  | Ast.Bracket a -> Vrel (Rel.id_of_set (as_set (eval env a)))
  | Ast.App (f, arg) -> (
      match lookup env f with
      | Vfun ([ p ], body, closure_env) ->
          eval (bind closure_env p (eval env arg)) body
      | Vfun (ps, _, _) ->
          raise
            (Type_error
               (Printf.sprintf "%s expects %d arguments" f (List.length ps)))
      | _ -> raise (Type_error (f ^ " is not a function")))

(* Evaluate one let group; recursive groups are solved by Kleene iteration
   from empty relations (cat's rec is a least fixed point of monotone
   equations).  [?budget] bounds the iteration wall-clock: each Kleene
   step probes the deadline, so a pathological model gives up instead of
   spinning its full 1000-round allowance on big relations. *)

let c_fixpoint = Obs.Counter.make "cat.fixpoint_iters"

let eval_let ?budget env bindings is_rec =
  if not is_rec then
    List.fold_left
      (fun env' (name, params, body) ->
        match params with
        | [] -> bind env' name (eval env body)
        | ps -> bind env' name (Vfun (ps, body, env)))
      env bindings
  else begin
    let names = List.map (fun (n, _, _) -> n) bindings in
    let start =
      List.fold_left (fun e n -> bind e n (Vrel Rel.empty)) env names
    in
    let step e =
      List.fold_left
        (fun acc (name, params, body) ->
          if params <> [] then
            raise (Type_error "recursive functions are not supported");
          bind acc name (eval e body))
        e bindings
    in
    let values e = List.map (fun n -> as_rel (lookup e n)) names in
    let rec go e n =
      if n > 1000 then raise (Type_error "rec definition did not converge");
      Option.iter Exec.Budget.check_time budget;
      Obs.Counter.incr c_fixpoint;
      let e' = step e in
      (* [n + 1], not [n]: the round counter must actually advance for the
         1000-round allowance to mean anything (an unbudgeted divergent
         model previously looped forever here) *)
      if List.for_all2 Rel.equal (values e) (values e') then e'
      else go e' (n + 1)
    in
    go start 0
  end

type outcome = { check_name : string; kind : Ast.check_kind; holds : bool }

let run_check env kind e name =
  let holds =
    match kind with
    | Ast.Acyclic -> Rel.is_acyclic (as_rel (eval env e))
    | Ast.Irreflexive -> Rel.is_irreflexive (as_rel (eval env e))
    | Ast.Is_empty -> (
        match eval env e with
        | Vset s -> Iset.is_empty s
        | v -> Rel.is_empty (as_rel v))
  in
  { check_name = Option.value ~default:"(unnamed)" name; kind; holds }

(* Run all statements; returns the outcome of every constraint.  With a
   budget, the deadline is probed between statements and inside recursive
   fixpoints (raising {!Exec.Budget.Exceeded}). *)
let run ?budget (model : Ast.t) env =
  let rec go env acc = function
    | [] -> List.rev acc
    | Ast.Let (bs, is_rec) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go (eval_let ?budget env bs is_rec) acc rest
    | Ast.Check (kind, e, name) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go env (run_check env kind e name :: acc) rest
  in
  go env [] model.stmts

(* ------------------------------------------------------------------ *)
(* Static-prefix evaluation                                            *)
(* ------------------------------------------------------------------ *)

(* Candidate executions of one litmus test share their event structure
   (events, po, addr, data, ctrl, rmw and every predefined set) across
   all rf/co witnesses; only rf, co and their derivatives change.  A
   binding whose free identifiers never reach a witness-dependent name
   therefore has the same value for every candidate, and can be computed
   once per event structure instead of once per candidate.

   [compile] finds those bindings, once per model: a statement is static
   iff every free identifier of its bodies is static at that program
   point, starting from the predefined environment minus the witness
   relations, and tracking shadowing (rebinding a name with a dynamic
   definition makes later uses dynamic).  [prefix] evaluates the static
   statements against one candidate's environment; [run_with_prefix]
   then replays the statement list in source order, pulling static
   bindings and static check outcomes from the prefix and evaluating
   only the dynamic remainder, so results are identical to {!run}. *)

module Sset = Set.Make (String)

(* The predefined names that depend on the execution witness (rf, co). *)
let witness_names =
  [ "rf"; "co"; "fr"; "rfi"; "rfe"; "coi"; "coe"; "fri"; "fre"; "com" ]

(* Every other predefined name is a function of the event structure. *)
let structural_names =
  [
    "_"; "W"; "R"; "M"; "F"; "IW"; "Once"; "Acquire"; "Release"; "Rmb";
    "Wmb"; "Mb"; "Rb-dep"; "Sync"; "Rcu-lock"; "Rcu-unlock"; "po"; "addr";
    "data"; "ctrl"; "rmw"; "po-loc"; "loc"; "int"; "ext"; "id"; "crit";
  ]

let rec free_ids acc = function
  | Ast.Id x -> Sset.add x acc
  | Ast.Empty_rel -> acc
  | Ast.Union (a, b) | Ast.Inter (a, b) | Ast.Diff (a, b) | Ast.Seq (a, b)
  | Ast.Cartesian (a, b) ->
      free_ids (free_ids acc a) b
  | Ast.Inverse a | Ast.Plus a | Ast.Star a | Ast.Opt a | Ast.Complement a
  | Ast.Bracket a ->
      free_ids acc a
  | Ast.App (f, arg) -> free_ids (Sset.add f acc) arg

type compiled = {
  model : Ast.t;
  static_stmt : bool array; (* per statement, in source order *)
}

let compile (model : Ast.t) =
  let static_stmt = Array.make (List.length model.stmts) false in
  let static = ref (Sset.of_list structural_names) in
  List.iteri
    (fun i stmt ->
      match stmt with
      | Ast.Let (bs, is_rec) ->
          let names = List.map (fun (n, _, _) -> n) bs in
          let stmt_static =
            List.for_all
              (fun (_, params, body) ->
                let frees = free_ids Sset.empty body in
                let frees =
                  List.fold_right Sset.remove params
                    (if is_rec then List.fold_right Sset.remove names frees
                     else frees)
                in
                Sset.subset frees !static)
              bs
          in
          static_stmt.(i) <- stmt_static;
          static :=
            List.fold_left
              (fun s n ->
                if stmt_static then Sset.add n s else Sset.remove n s)
              !static names
      | Ast.Check (_, e, _) ->
          static_stmt.(i) <- Sset.subset (free_ids Sset.empty e) !static)
    model.stmts;
  { model; static_stmt }

type prefix = {
  compiled : compiled;
  lets : (string * value) list array;
      (* for a static Let at index i: its bindings, innermost first *)
  checks : outcome option array; (* for a static Check at index i *)
}

let rec first_n n l =
  if n = 0 then []
  else
    match l with
    | x :: rest -> x :: first_n (n - 1) rest
    | [] -> invalid_arg "first_n"

let prefix ?budget compiled env =
  Obs.with_span "prefix-eval" (fun () ->
      let n = List.length compiled.model.stmts in
      let lets = Array.make n [] and checks = Array.make n None in
      let env = ref env in
      List.iteri
        (fun i stmt ->
          if compiled.static_stmt.(i) then begin
            Option.iter Exec.Budget.tick budget;
            match stmt with
            | Ast.Let (bs, is_rec) ->
                let before = List.length !env.bindings in
                env := eval_let ?budget !env bs is_rec;
                lets.(i) <-
                  first_n (List.length !env.bindings - before) !env.bindings
            | Ast.Check (kind, e, name) ->
                checks.(i) <- Some (run_check !env kind e name)
          end)
        compiled.model.stmts;
      { compiled; lets; checks })

let run_with_prefix ?budget { compiled; lets; checks } env =
  let rec go i env acc = function
    | [] -> List.rev acc
    | stmt :: rest ->
        if compiled.static_stmt.(i) then
          match stmt with
          | Ast.Let _ ->
              let env =
                List.fold_right (fun (n, v) e -> bind e n v) lets.(i) env
              in
              go (i + 1) env acc rest
          | Ast.Check _ -> (
              match checks.(i) with
              | Some o -> go (i + 1) env (o :: acc) rest
              | None -> assert false)
        else
          match stmt with
          | Ast.Let (bs, is_rec) ->
              Option.iter Exec.Budget.tick budget;
              go (i + 1) (eval_let ?budget env bs is_rec) acc rest
          | Ast.Check (kind, e, name) ->
              Option.iter Exec.Budget.tick budget;
              go (i + 1) env (run_check env kind e name :: acc) rest
  in
  go 0 env [] compiled.model.stmts

(* ------------------------------------------------------------------ *)
(* The predefined environment of a candidate execution                 *)
(* ------------------------------------------------------------------ *)

let env_of_execution (x : Exec.t) =
  let set p = Exec.events_where x p in
  let annot a = set (fun e -> e.Exec.Event.annot = a) in
  let bindings =
    [
      ("_", Vset x.universe);
      ("W", Vset x.writes);
      ("R", Vset x.reads);
      ("M", Vset x.mem);
      ("F", Vset x.fences);
      ("IW", Vset x.init_ws);
      ("Once", Vset (annot Exec.Event.Once));
      ("Acquire", Vset (annot Exec.Event.Acquire));
      ("Release", Vset (annot Exec.Event.Release));
      ("Rmb", Vset (annot Exec.Event.Rmb));
      ("Wmb", Vset (annot Exec.Event.Wmb));
      ("Mb", Vset (annot Exec.Event.Mb));
      ("Rb-dep", Vset (annot Exec.Event.Rb_dep));
      ("Sync", Vset (annot Exec.Event.Sync_rcu));
      ("Rcu-lock", Vset (annot Exec.Event.Rcu_lock));
      ("Rcu-unlock", Vset (annot Exec.Event.Rcu_unlock));
      ("po", Vrel x.po);
      ("addr", Vrel x.addr);
      ("data", Vrel x.data);
      ("ctrl", Vrel x.ctrl);
      ("rmw", Vrel x.rmw);
      ("rf", Vrel x.rf);
      ("co", Vrel x.co);
      ("fr", Vrel x.fr);
      ("rfi", Vrel x.rfi);
      ("rfe", Vrel x.rfe);
      ("coi", Vrel x.coi);
      ("coe", Vrel x.coe);
      ("fri", Vrel x.fri);
      ("fre", Vrel x.fre);
      ("com", Vrel x.com);
      ("po-loc", Vrel x.po_loc);
      ("loc", Vrel x.loc_r);
      ("int", Vrel x.int_r);
      ("ext", Vrel x.ext_r);
      ("id", Vrel x.id_r);
      ("crit", Vrel x.crit);
    ]
  in
  { universe = x.universe; bindings }
