(* Interpreter for the cat subset: evaluates a model's statements against
   the base relations of one candidate execution, in the style of the herd
   simulator. *)

module Iset = Rel.Iset

type value =
  | Vset of Iset.t
  | Vrel of Rel.t
  | Vfun of string list * Ast.expr * env

and env = { universe : Iset.t; bindings : (string * value) list }

exception Type_error of string

let lookup env x =
  match List.assoc_opt x env.bindings with
  | Some v -> v
  | None -> raise (Type_error ("unbound identifier " ^ x))

let bind env x v = { env with bindings = (x, v) :: env.bindings }

(* Sets appearing where a relation is expected become identities, the
   usual [S] coercion. *)
let as_rel = function
  | Vrel r -> r
  | Vset s -> Rel.id_of_set s
  | Vfun _ -> raise (Type_error "function used as a relation")

let as_set = function
  | Vset s -> s
  | Vrel _ -> raise (Type_error "relation used as a set")
  | Vfun _ -> raise (Type_error "function used as a set")

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Id x -> lookup env x
  | Ast.Empty_rel -> Vrel Rel.empty
  | Ast.Union (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.union s1 s2)
      | v1, v2 -> Vrel (Rel.union (as_rel v1) (as_rel v2)))
  | Ast.Inter (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.inter s1 s2)
      | v1, v2 -> Vrel (Rel.inter (as_rel v1) (as_rel v2)))
  | Ast.Diff (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.diff s1 s2)
      | v1, v2 -> Vrel (Rel.diff (as_rel v1) (as_rel v2)))
  | Ast.Seq (a, b) -> Vrel (Rel.seq (as_rel (eval env a)) (as_rel (eval env b)))
  | Ast.Cartesian (a, b) ->
      Vrel (Rel.cartesian (as_set (eval env a)) (as_set (eval env b)))
  | Ast.Inverse a -> Vrel (Rel.inverse (as_rel (eval env a)))
  | Ast.Plus a -> Vrel (Rel.transitive_closure (as_rel (eval env a)))
  | Ast.Star a ->
      Vrel
        (Rel.reflexive_transitive_closure ~universe:env.universe
           (as_rel (eval env a)))
  | Ast.Opt a ->
      Vrel (Rel.reflexive_closure ~universe:env.universe (as_rel (eval env a)))
  | Ast.Complement a -> (
      match eval env a with
      | Vset s -> Vset (Iset.diff env.universe s)
      | v -> Vrel (Rel.complement ~universe:env.universe (as_rel v)))
  | Ast.Bracket a -> Vrel (Rel.id_of_set (as_set (eval env a)))
  | Ast.App (f, arg) -> (
      match lookup env f with
      | Vfun ([ p ], body, closure_env) ->
          eval (bind closure_env p (eval env arg)) body
      | Vfun (ps, _, _) ->
          raise
            (Type_error
               (Printf.sprintf "%s expects %d arguments" f (List.length ps)))
      | _ -> raise (Type_error (f ^ " is not a function")))

(* Evaluate one let group; recursive groups are solved by Kleene iteration
   from empty relations (cat's rec is a least fixed point of monotone
   equations).  [?budget] bounds the iteration wall-clock: each Kleene
   step probes the deadline, so a pathological model gives up instead of
   spinning its full 1000-round allowance on big relations. *)
let eval_let ?budget env bindings is_rec =
  if not is_rec then
    List.fold_left
      (fun env' (name, params, body) ->
        match params with
        | [] -> bind env' name (eval env body)
        | ps -> bind env' name (Vfun (ps, body, env)))
      env bindings
  else begin
    let names = List.map (fun (n, _, _) -> n) bindings in
    let start =
      List.fold_left (fun e n -> bind e n (Vrel Rel.empty)) env names
    in
    let step e =
      List.fold_left
        (fun acc (name, params, body) ->
          if params <> [] then
            raise (Type_error "recursive functions are not supported");
          bind acc name (eval e body))
        e bindings
    in
    let values e = List.map (fun n -> as_rel (lookup e n)) names in
    let rec go e n =
      if n > 1000 then raise (Type_error "rec definition did not converge");
      Option.iter Exec.Budget.check_time budget;
      let e' = step e in
      if List.for_all2 Rel.equal (values e) (values e') then e' else go e' n
    in
    go start 0
  end

type outcome = { check_name : string; kind : Ast.check_kind; holds : bool }

let run_check env kind e name =
  let holds =
    match kind with
    | Ast.Acyclic -> Rel.is_acyclic (as_rel (eval env e))
    | Ast.Irreflexive -> Rel.is_irreflexive (as_rel (eval env e))
    | Ast.Is_empty -> (
        match eval env e with
        | Vset s -> Iset.is_empty s
        | v -> Rel.is_empty (as_rel v))
  in
  { check_name = Option.value ~default:"(unnamed)" name; kind; holds }

(* Run all statements; returns the outcome of every constraint.  With a
   budget, the deadline is probed between statements and inside recursive
   fixpoints (raising {!Exec.Budget.Exceeded}). *)
let run ?budget (model : Ast.t) env =
  let rec go env acc = function
    | [] -> List.rev acc
    | Ast.Let (bs, is_rec) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go (eval_let ?budget env bs is_rec) acc rest
    | Ast.Check (kind, e, name) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go env (run_check env kind e name :: acc) rest
  in
  go env [] model.stmts

(* ------------------------------------------------------------------ *)
(* The predefined environment of a candidate execution                 *)
(* ------------------------------------------------------------------ *)

let env_of_execution (x : Exec.t) =
  let set p = Exec.events_where x p in
  let annot a = set (fun e -> e.Exec.Event.annot = a) in
  let bindings =
    [
      ("_", Vset x.universe);
      ("W", Vset x.writes);
      ("R", Vset x.reads);
      ("M", Vset x.mem);
      ("F", Vset x.fences);
      ("IW", Vset x.init_ws);
      ("Once", Vset (annot Exec.Event.Once));
      ("Acquire", Vset (annot Exec.Event.Acquire));
      ("Release", Vset (annot Exec.Event.Release));
      ("Rmb", Vset (annot Exec.Event.Rmb));
      ("Wmb", Vset (annot Exec.Event.Wmb));
      ("Mb", Vset (annot Exec.Event.Mb));
      ("Rb-dep", Vset (annot Exec.Event.Rb_dep));
      ("Sync", Vset (annot Exec.Event.Sync_rcu));
      ("Rcu-lock", Vset (annot Exec.Event.Rcu_lock));
      ("Rcu-unlock", Vset (annot Exec.Event.Rcu_unlock));
      ("po", Vrel x.po);
      ("addr", Vrel x.addr);
      ("data", Vrel x.data);
      ("ctrl", Vrel x.ctrl);
      ("rmw", Vrel x.rmw);
      ("rf", Vrel x.rf);
      ("co", Vrel x.co);
      ("fr", Vrel x.fr);
      ("rfi", Vrel x.rfi);
      ("rfe", Vrel x.rfe);
      ("coi", Vrel x.coi);
      ("coe", Vrel x.coe);
      ("fri", Vrel x.fri);
      ("fre", Vrel x.fre);
      ("com", Vrel x.com);
      ("po-loc", Vrel x.po_loc);
      ("loc", Vrel x.loc_r);
      ("int", Vrel x.int_r);
      ("ext", Vrel x.ext_r);
      ("id", Vrel x.id_r);
      ("crit", Vrel x.crit);
    ]
  in
  { universe = x.universe; bindings }
