(* Interpreter for the cat subset: evaluates a model's statements against
   the base relations of one candidate execution, in the style of the herd
   simulator. *)

module Iset = Rel.Iset

type value =
  | Vset of Iset.t
  | Vrel of Rel.t
  | Vfun of string list * Ast.expr * env

and env = { universe : Iset.t; bindings : (string * value) list }

exception Type_error of string

let lookup env x =
  match List.assoc_opt x env.bindings with
  | Some v -> v
  | None -> raise (Type_error ("unbound identifier " ^ x))

let bind env x v = { env with bindings = (x, v) :: env.bindings }

(* Sets appearing where a relation is expected become identities, the
   usual [S] coercion. *)
let as_rel = function
  | Vrel r -> r
  | Vset s -> Rel.id_of_set s
  | Vfun _ -> raise (Type_error "function used as a relation")

let as_set = function
  | Vset s -> s
  | Vrel _ -> raise (Type_error "relation used as a set")
  | Vfun _ -> raise (Type_error "function used as a set")

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Id x -> lookup env x
  | Ast.Empty_rel -> Vrel Rel.empty
  | Ast.Union (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.union s1 s2)
      | v1, v2 -> Vrel (Rel.union (as_rel v1) (as_rel v2)))
  | Ast.Inter (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.inter s1 s2)
      | v1, v2 -> Vrel (Rel.inter (as_rel v1) (as_rel v2)))
  | Ast.Diff (a, b) -> (
      match (eval env a, eval env b) with
      | Vset s1, Vset s2 -> Vset (Iset.diff s1 s2)
      | v1, v2 -> Vrel (Rel.diff (as_rel v1) (as_rel v2)))
  | Ast.Seq (a, b) -> Vrel (Rel.seq (as_rel (eval env a)) (as_rel (eval env b)))
  | Ast.Cartesian (a, b) ->
      Vrel (Rel.cartesian (as_set (eval env a)) (as_set (eval env b)))
  | Ast.Inverse a -> Vrel (Rel.inverse (as_rel (eval env a)))
  | Ast.Plus a -> Vrel (Rel.transitive_closure (as_rel (eval env a)))
  | Ast.Star a ->
      Vrel
        (Rel.reflexive_transitive_closure ~universe:env.universe
           (as_rel (eval env a)))
  | Ast.Opt a ->
      Vrel (Rel.reflexive_closure ~universe:env.universe (as_rel (eval env a)))
  | Ast.Complement a -> (
      match eval env a with
      | Vset s -> Vset (Iset.diff env.universe s)
      | v -> Vrel (Rel.complement ~universe:env.universe (as_rel v)))
  | Ast.Bracket a -> Vrel (Rel.id_of_set (as_set (eval env a)))
  | Ast.App (f, arg) -> (
      match lookup env f with
      | Vfun ([ p ], body, closure_env) ->
          eval (bind closure_env p (eval env arg)) body
      | Vfun (ps, _, _) ->
          raise
            (Type_error
               (Printf.sprintf "%s expects %d arguments" f (List.length ps)))
      | _ -> raise (Type_error (f ^ " is not a function")))

(* Evaluate one let group; recursive groups are solved by Kleene iteration
   from empty relations (cat's rec is a least fixed point of monotone
   equations).  [?budget] bounds the iteration wall-clock: each Kleene
   step probes the deadline, so a pathological model gives up instead of
   spinning its full 1000-round allowance on big relations. *)

let c_fixpoint = Obs.Counter.make "cat.fixpoint_iters"

let eval_let ?budget env bindings is_rec =
  if not is_rec then
    List.fold_left
      (fun env' (name, params, body) ->
        match params with
        | [] -> bind env' name (eval env body)
        | ps -> bind env' name (Vfun (ps, body, env)))
      env bindings
  else begin
    let names = List.map (fun (n, _, _) -> n) bindings in
    let start =
      List.fold_left (fun e n -> bind e n (Vrel Rel.empty)) env names
    in
    let step e =
      List.fold_left
        (fun acc (name, params, body) ->
          if params <> [] then
            raise (Type_error "recursive functions are not supported");
          bind acc name (eval e body))
        e bindings
    in
    let values e = List.map (fun n -> as_rel (lookup e n)) names in
    let rec go e n =
      if n > 1000 then raise (Type_error "rec definition did not converge");
      Option.iter Exec.Budget.check_time budget;
      Obs.Counter.incr c_fixpoint;
      let e' = step e in
      (* [n + 1], not [n]: the round counter must actually advance for the
         1000-round allowance to mean anything (an unbudgeted divergent
         model previously looped forever here) *)
      if List.for_all2 Rel.equal (values e) (values e') then e'
      else go e' (n + 1)
    in
    go start 0
  end

type outcome = { check_name : string; kind : Ast.check_kind; holds : bool }

let run_check env kind e name =
  let holds =
    match kind with
    | Ast.Acyclic -> Rel.is_acyclic (as_rel (eval env e))
    | Ast.Irreflexive -> Rel.is_irreflexive (as_rel (eval env e))
    | Ast.Is_empty -> (
        match eval env e with
        | Vset s -> Iset.is_empty s
        | v -> Rel.is_empty (as_rel v))
  in
  { check_name = Option.value ~default:"(unnamed)" name; kind; holds }

(* Run all statements; returns the outcome of every constraint.  With a
   budget, the deadline is probed between statements and inside recursive
   fixpoints (raising {!Exec.Budget.Exceeded}). *)
let run ?budget (model : Ast.t) env =
  let rec go env acc = function
    | [] -> List.rev acc
    | Ast.Let (bs, is_rec) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go (eval_let ?budget env bs is_rec) acc rest
    | Ast.Check (kind, e, name) :: rest ->
        Option.iter Exec.Budget.tick budget;
        go env (run_check env kind e name :: acc) rest
  in
  go env [] model.stmts

(* ------------------------------------------------------------------ *)
(* Static-prefix evaluation                                            *)
(* ------------------------------------------------------------------ *)

(* Candidate executions of one litmus test share their event structure
   (events, po, addr, data, ctrl, rmw and every predefined set) across
   all rf/co witnesses; only rf, co and their derivatives change.  A
   binding whose free identifiers never reach a witness-dependent name
   therefore has the same value for every candidate, and can be computed
   once per event structure instead of once per candidate.

   [compile] finds those bindings, once per model: a statement is static
   iff every free identifier of its bodies is static at that program
   point, starting from the predefined environment minus the witness
   relations, and tracking shadowing (rebinding a name with a dynamic
   definition makes later uses dynamic).  [prefix] evaluates the static
   statements against one candidate's environment; [run_with_prefix]
   then replays the statement list in source order, pulling static
   bindings and static check outcomes from the prefix and evaluating
   only the dynamic remainder, so results are identical to {!run}. *)

module Sset = Set.Make (String)

(* The predefined names that depend on the execution witness (rf, co). *)
let witness_names =
  [ "rf"; "co"; "fr"; "rfi"; "rfe"; "coi"; "coe"; "fri"; "fre"; "com" ]

(* Every other predefined name is a function of the event structure. *)
let structural_names =
  [
    "_"; "W"; "R"; "M"; "F"; "IW"; "Once"; "Acquire"; "Release"; "Rmb";
    "Wmb"; "Mb"; "Rb-dep"; "Sync"; "Rcu-lock"; "Rcu-unlock"; "po"; "addr";
    "data"; "ctrl"; "rmw"; "po-loc"; "loc"; "int"; "ext"; "id"; "crit";
  ]

let rec free_ids acc = function
  | Ast.Id x -> Sset.add x acc
  | Ast.Empty_rel -> acc
  | Ast.Union (a, b) | Ast.Inter (a, b) | Ast.Diff (a, b) | Ast.Seq (a, b)
  | Ast.Cartesian (a, b) ->
      free_ids (free_ids acc a) b
  | Ast.Inverse a | Ast.Plus a | Ast.Star a | Ast.Opt a | Ast.Complement a
  | Ast.Bracket a ->
      free_ids acc a
  | Ast.App (f, arg) -> free_ids (Sset.add f acc) arg

type compiled = {
  model : Ast.t;
  static_stmt : bool array; (* per statement, in source order *)
}

let compile (model : Ast.t) =
  let static_stmt = Array.make (List.length model.stmts) false in
  let static = ref (Sset.of_list structural_names) in
  List.iteri
    (fun i stmt ->
      match stmt with
      | Ast.Let (bs, is_rec) ->
          let names = List.map (fun (n, _, _) -> n) bs in
          let stmt_static =
            List.for_all
              (fun (_, params, body) ->
                let frees = free_ids Sset.empty body in
                let frees =
                  List.fold_right Sset.remove params
                    (if is_rec then List.fold_right Sset.remove names frees
                     else frees)
                in
                Sset.subset frees !static)
              bs
          in
          static_stmt.(i) <- stmt_static;
          static :=
            List.fold_left
              (fun s n ->
                if stmt_static then Sset.add n s else Sset.remove n s)
              !static names
      | Ast.Check (_, e, _) ->
          static_stmt.(i) <- Sset.subset (free_ids Sset.empty e) !static)
    model.stmts;
  { model; static_stmt }

type prefix = {
  compiled : compiled;
  lets : (string * value) list array;
      (* for a static Let at index i: its bindings, innermost first *)
  checks : outcome option array; (* for a static Check at index i *)
}

let rec first_n n l =
  if n = 0 then []
  else
    match l with
    | x :: rest -> x :: first_n (n - 1) rest
    | [] -> invalid_arg "first_n"

let prefix ?budget compiled env =
  Obs.with_span "prefix-eval" (fun () ->
      let n = List.length compiled.model.stmts in
      let lets = Array.make n [] and checks = Array.make n None in
      let env = ref env in
      List.iteri
        (fun i stmt ->
          if compiled.static_stmt.(i) then begin
            Option.iter Exec.Budget.tick budget;
            match stmt with
            | Ast.Let (bs, is_rec) ->
                let before = List.length !env.bindings in
                env := eval_let ?budget !env bs is_rec;
                lets.(i) <-
                  first_n (List.length !env.bindings - before) !env.bindings
            | Ast.Check (kind, e, name) ->
                checks.(i) <- Some (run_check !env kind e name)
          end)
        compiled.model.stmts;
      { compiled; lets; checks })

let run_with_prefix ?budget { compiled; lets; checks } env =
  let rec go i env acc = function
    | [] -> List.rev acc
    | stmt :: rest ->
        if compiled.static_stmt.(i) then
          match stmt with
          | Ast.Let _ ->
              let env =
                List.fold_right (fun (n, v) e -> bind e n v) lets.(i) env
              in
              go (i + 1) env acc rest
          | Ast.Check _ -> (
              match checks.(i) with
              | Some o -> go (i + 1) env (o :: acc) rest
              | None -> assert false)
        else
          match stmt with
          | Ast.Let (bs, is_rec) ->
              Option.iter Exec.Budget.tick budget;
              go (i + 1) (eval_let ?budget env bs is_rec) acc rest
          | Ast.Check (kind, e, name) ->
              Option.iter Exec.Budget.tick budget;
              go (i + 1) env (run_check env kind e name :: acc) rest
  in
  go 0 env [] compiled.model.stmts

(* ------------------------------------------------------------------ *)
(* Batched evaluation of the dynamic suffix                            *)
(* ------------------------------------------------------------------ *)

(* Up to 63 pairwise static-compatible candidates
   ({!Exec.Execution.static_compatible}), evaluated at once: the
   witness relations (rf, co and derivatives) become candidate-major
   bit planes ({!Rel.Batch}) and every operator of the dynamic suffix
   runs word-parallel across all planes; static bindings ride along as
   ordinary scalar values ([Bval]) and are broadcast into planes only
   at the point an operator mixes them with a witness-dependent
   operand.

   The value domain is total for the supported dialect: the language
   has no relation-to-set operator, so a witness-dependent value is
   always relation-valued — anywhere a set is required ([Bracket],
   [Cartesian]), a [Bplanes] operand is a type error in the scalar
   interpreter too, and the batched evaluator raises the same
   {!Type_error}.  Differential equivalence with the scalar path over
   the corpus and the randomized suite is the correctness contract. *)

module B = Rel.Batch

type bvalue =
  | Bval of value (* identical in every candidate (static) *)
  | Bplanes of B.t (* relation-valued, varying per candidate *)
  | Bfun of string list * Ast.expr * benv

and benv = {
  b_n : int; (* events per candidate: the shared universe size *)
  b_mask : int; (* planes still undecided; broadcasts target these *)
  b_univ : Iset.t;
  b_bindings : (string * bvalue) list;
}

let lookup_b benv x =
  match List.assoc_opt x benv.b_bindings with
  | Some v -> v
  | None -> raise (Type_error ("unbound identifier " ^ x))

let bind_b benv x v = { benv with b_bindings = (x, v) :: benv.b_bindings }

(* A scalar closure environment, lifted: its bindings are static. *)
let benv_of_env benv (env : env) =
  {
    benv with
    b_univ = env.universe;
    b_bindings = List.map (fun (n, v) -> (n, Bval v)) env.bindings;
  }

let promote benv = function
  | Bval v -> B.broadcast ~n:benv.b_n ~mask:benv.b_mask (as_rel v)
  | Bplanes p -> p
  | Bfun _ -> raise (Type_error "function used as a relation")

let as_set_b = function
  | Bval v -> as_set v
  | Bplanes _ -> raise (Type_error "relation used as a set")
  | Bfun _ -> raise (Type_error "function used as a set")

let rec eval_b benv (e : Ast.expr) =
  match e with
  | Ast.Id x -> lookup_b benv x
  | Ast.Empty_rel -> Bval (Vrel Rel.empty)
  | Ast.Union (a, b) -> (
      match (eval_b benv a, eval_b benv b) with
      | Bval (Vset s1), Bval (Vset s2) -> Bval (Vset (Iset.union s1 s2))
      | Bval v1, Bval v2 -> Bval (Vrel (Rel.union (as_rel v1) (as_rel v2)))
      | v1, v2 -> Bplanes (B.union (promote benv v1) (promote benv v2)))
  | Ast.Inter (a, b) -> (
      match (eval_b benv a, eval_b benv b) with
      | Bval (Vset s1), Bval (Vset s2) -> Bval (Vset (Iset.inter s1 s2))
      | Bval v1, Bval v2 -> Bval (Vrel (Rel.inter (as_rel v1) (as_rel v2)))
      | v1, v2 -> Bplanes (B.inter (promote benv v1) (promote benv v2)))
  | Ast.Diff (a, b) -> (
      match (eval_b benv a, eval_b benv b) with
      | Bval (Vset s1), Bval (Vset s2) -> Bval (Vset (Iset.diff s1 s2))
      | Bval v1, Bval v2 -> Bval (Vrel (Rel.diff (as_rel v1) (as_rel v2)))
      | v1, v2 -> Bplanes (B.diff (promote benv v1) (promote benv v2)))
  | Ast.Seq (a, b) -> (
      match (eval_b benv a, eval_b benv b) with
      | Bval v1, Bval v2 -> Bval (Vrel (Rel.seq (as_rel v1) (as_rel v2)))
      | v1, v2 -> Bplanes (B.seq (promote benv v1) (promote benv v2)))
  | Ast.Cartesian (a, b) ->
      Bval
        (Vrel
           (Rel.cartesian
              (as_set_b (eval_b benv a))
              (as_set_b (eval_b benv b))))
  | Ast.Inverse a -> (
      match eval_b benv a with
      | Bval v -> Bval (Vrel (Rel.inverse (as_rel v)))
      | v -> Bplanes (B.inverse (promote benv v)))
  | Ast.Plus a -> (
      match eval_b benv a with
      | Bval v -> Bval (Vrel (Rel.transitive_closure (as_rel v)))
      | v -> Bplanes (B.transitive_closure (promote benv v)))
  | Ast.Star a -> (
      match eval_b benv a with
      | Bval v ->
          Bval
            (Vrel
               (Rel.reflexive_transitive_closure ~universe:benv.b_univ
                  (as_rel v)))
      | v ->
          Bplanes
            (B.reflexive_transitive_closure ~mask:benv.b_mask
               (promote benv v)))
  | Ast.Opt a -> (
      match eval_b benv a with
      | Bval v ->
          Bval (Vrel (Rel.reflexive_closure ~universe:benv.b_univ (as_rel v)))
      | v -> Bplanes (B.reflexive_closure ~mask:benv.b_mask (promote benv v)))
  | Ast.Complement a -> (
      match eval_b benv a with
      | Bval (Vset s) -> Bval (Vset (Iset.diff benv.b_univ s))
      | Bval v ->
          Bval (Vrel (Rel.complement ~universe:benv.b_univ (as_rel v)))
      | v -> Bplanes (B.complement ~mask:benv.b_mask (promote benv v)))
  | Ast.Bracket a -> Bval (Vrel (Rel.id_of_set (as_set_b (eval_b benv a))))
  | Ast.App (f, arg) -> (
      match lookup_b benv f with
      | Bval (Vfun ([ p ], body, closure_env)) ->
          eval_b
            (bind_b (benv_of_env benv closure_env) p (eval_b benv arg))
            body
      | Bfun ([ p ], body, closure_benv) ->
          eval_b (bind_b closure_benv p (eval_b benv arg)) body
      | Bval (Vfun (ps, _, _)) | Bfun (ps, _, _) ->
          raise
            (Type_error
               (Printf.sprintf "%s expects %d arguments" f (List.length ps)))
      | _ -> raise (Type_error (f ^ " is not a function")))

(* Plane-wise equality, for the Kleene convergence test; [Bfun]s never
   appear (scalar [rec] rejects function bindings the same way). *)
let bvalue_equal benv v1 v2 =
  match (v1, v2) with
  | Bval a, Bval b -> Rel.equal (as_rel a) (as_rel b)
  | (Bval _ | Bplanes _), (Bval _ | Bplanes _) ->
      B.equal (promote benv v1) (promote benv v2)
  | _ -> raise (Type_error "function used as a relation")

let eval_let_b ?budget benv bindings is_rec =
  if not is_rec then
    List.fold_left
      (fun benv' (name, params, body) ->
        match params with
        | [] -> bind_b benv' name (eval_b benv body)
        | ps -> bind_b benv' name (Bfun (ps, body, benv)))
      benv bindings
  else begin
    let names = List.map (fun (n, _, _) -> n) bindings in
    let start =
      List.fold_left
        (fun e n -> bind_b e n (Bval (Vrel Rel.empty)))
        benv names
    in
    let step e =
      List.fold_left
        (fun acc (name, params, body) ->
          if params <> [] then
            raise (Type_error "recursive functions are not supported");
          bind_b acc name (eval_b e body))
        e bindings
    in
    let values e = List.map (fun n -> lookup_b e n) names in
    let rec go e n =
      if n > 1000 then raise (Type_error "rec definition did not converge");
      Option.iter Exec.Budget.check_time budget;
      Obs.Counter.incr c_fixpoint;
      let e' = step e in
      if List.for_all2 (bvalue_equal benv) (values e) (values e') then e'
      else go e' (n + 1)
    in
    go start 0
  end

(* One check, decided for every live plane at once: the mask of planes
   (within [b_mask]) where it holds. *)
let run_check_b benv kind e =
  match (kind, eval_b benv e) with
  | _, Bfun _ -> raise (Type_error "function used as a relation")
  | Ast.Acyclic, Bval v ->
      if Rel.is_acyclic (as_rel v) then benv.b_mask else 0
  | Ast.Acyclic, Bplanes p -> B.acyclic_mask ~mask:benv.b_mask p
  | Ast.Irreflexive, Bval v ->
      if Rel.is_irreflexive (as_rel v) then benv.b_mask else 0
  | Ast.Irreflexive, Bplanes p -> B.irreflexive_mask ~mask:benv.b_mask p
  | Ast.Is_empty, Bval (Vset s) ->
      if Iset.is_empty s then benv.b_mask else 0
  | Ast.Is_empty, Bval v -> if Rel.is_empty (as_rel v) then benv.b_mask else 0
  | Ast.Is_empty, Bplanes p -> B.empty_mask ~mask:benv.b_mask p

let c_batch_early = Obs.Counter.make "cat.batch.early_exit"

(* Replay the statement list for a whole batch: static lets and checks
   come from the prefix (lifted to [Bval] / all-or-nothing masks), the
   dynamic remainder evaluates over planes.  Returns the mask of planes
   satisfying every check.  Statements are never skipped — a model that
   would raise [Type_error] on the scalar path raises here too — but
   the live mask shrinks as checks fail, so later broadcasts and
   closures stop paying for decided candidates (their planes zero out
   and the kernels skip zero words). *)
let run_with_prefix_batched ?budget { compiled; lets; checks } benv =
  let last_check =
    let rec go i last = function
      | [] -> last
      | Ast.Check _ :: rest -> go (i + 1) i rest
      | Ast.Let _ :: rest -> go (i + 1) last rest
    in
    go 0 (-1) compiled.model.stmts
  in
  let rec go i benv acc = function
    | [] -> acc
    | stmt :: rest ->
        let live benv m =
          (* planes decided before the final check are early exits *)
          let acc' = acc land m in
          if i <> last_check && acc' <> acc then
            Obs.Counter.incr c_batch_early;
          (* keep evaluating with the shrunk mask: broadcasts target
             only still-live planes *)
          go (i + 1) { benv with b_mask = acc' } acc' rest
        in
        if compiled.static_stmt.(i) then
          match stmt with
          | Ast.Let _ ->
              let benv =
                List.fold_right
                  (fun (n, v) e -> bind_b e n (Bval v))
                  lets.(i) benv
              in
              go (i + 1) benv acc rest
          | Ast.Check _ -> (
              match checks.(i) with
              | Some o -> live benv (if o.holds then benv.b_mask else 0)
              | None -> assert false)
        else begin
          match stmt with
          | Ast.Let (bs, is_rec) ->
              Option.iter Exec.Budget.tick budget;
              go (i + 1) (eval_let_b ?budget benv bs is_rec) acc rest
          | Ast.Check (kind, e, _) ->
              Option.iter Exec.Budget.tick budget;
              live benv (run_check_b benv kind e)
        end
  in
  go 0 benv benv.b_mask compiled.model.stmts

(* ------------------------------------------------------------------ *)
(* The predefined environment of a candidate execution                 *)
(* ------------------------------------------------------------------ *)

let env_of_execution (x : Exec.t) =
  let set p = Exec.events_where x p in
  let annot a = set (fun e -> e.Exec.Event.annot = a) in
  let bindings =
    [
      ("_", Vset x.universe);
      ("W", Vset x.writes);
      ("R", Vset x.reads);
      ("M", Vset x.mem);
      ("F", Vset x.fences);
      ("IW", Vset x.init_ws);
      ("Once", Vset (annot Exec.Event.Once));
      ("Acquire", Vset (annot Exec.Event.Acquire));
      ("Release", Vset (annot Exec.Event.Release));
      ("Rmb", Vset (annot Exec.Event.Rmb));
      ("Wmb", Vset (annot Exec.Event.Wmb));
      ("Mb", Vset (annot Exec.Event.Mb));
      ("Rb-dep", Vset (annot Exec.Event.Rb_dep));
      ("Sync", Vset (annot Exec.Event.Sync_rcu));
      ("Rcu-lock", Vset (annot Exec.Event.Rcu_lock));
      ("Rcu-unlock", Vset (annot Exec.Event.Rcu_unlock));
      ("po", Vrel x.po);
      ("addr", Vrel x.addr);
      ("data", Vrel x.data);
      ("ctrl", Vrel x.ctrl);
      ("rmw", Vrel x.rmw);
      ("rf", Vrel x.rf);
      ("co", Vrel x.co);
      ("fr", Vrel x.fr);
      ("rfi", Vrel x.rfi);
      ("rfe", Vrel x.rfe);
      ("coi", Vrel x.coi);
      ("coe", Vrel x.coe);
      ("fri", Vrel x.fri);
      ("fre", Vrel x.fre);
      ("com", Vrel x.com);
      ("po-loc", Vrel x.po_loc);
      ("loc", Vrel x.loc_r);
      ("int", Vrel x.int_r);
      ("ext", Vrel x.ext_r);
      ("id", Vrel x.id_r);
      ("crit", Vrel x.crit);
    ]
  in
  { universe = x.universe; bindings }

(* The batched counterpart: one shared event structure, up to 63
   witnesses.  Structural bindings come from candidate 0 (identical in
   every candidate by construction); the witness relations become
   candidate-major bit planes. *)
let benv_of_executions ~mask (xs : Exec.t array) =
  let x0 = xs.(0) in
  let n = Array.length x0.Exec.events in
  let dyn f = Bplanes (B.of_rels ~n ~mask (Array.map f xs)) in
  let env = env_of_execution x0 in
  let static =
    List.filter (fun (nm, _) -> not (List.mem nm witness_names)) env.bindings
  in
  let planes =
    [
      ("rf", dyn (fun x -> x.Exec.rf));
      ("co", dyn (fun x -> x.Exec.co));
      ("fr", dyn (fun x -> x.Exec.fr));
      ("rfi", dyn (fun x -> x.Exec.rfi));
      ("rfe", dyn (fun x -> x.Exec.rfe));
      ("coi", dyn (fun x -> x.Exec.coi));
      ("coe", dyn (fun x -> x.Exec.coe));
      ("fri", dyn (fun x -> x.Exec.fri));
      ("fre", dyn (fun x -> x.Exec.fre));
      ("com", dyn (fun x -> x.Exec.com));
    ]
  in
  {
    b_n = n;
    b_mask = mask;
    b_univ = env.universe;
    b_bindings =
      planes @ List.map (fun (nm, v) -> (nm, Bval v)) static;
  }
