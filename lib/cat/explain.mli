(** Provenance-tracking explanations for cat-model verdicts.

    For a candidate execution a cat model rejects, produces one
    {!Exec.Explain.t} per failed check: a minimal witnessing cycle
    (shortest, BFS over the dense relation kernel) for
    [acyclic]/[irreflexive], the offending pairs for [empty], each edge
    labelled with the branch of the checked relation it belongs to and
    decomposed — through unions, sequences, closures, inverses, named
    definitions and unary function application — down to primitive
    rf/co/fr/po/dependency edges.  Recursive definitions ([rcu-path])
    are guarded by a visiting set: a revisited name stays an opaque
    primitive, which still re-validates by membership.

    Every explanation is checked with {!Exec.Explain.validate} against
    the model's own evaluated relations before it is returned; a
    mismatch raises {!Exec.Explain.Invalid} (a hard error — never a
    silently wrong witness). *)

(** Explanations for every failed check of [model] on [x]; [[]] iff [x]
    is consistent.  [?budget] bounds the statement replay like
    {!Interp.run}. *)
val explain_execution :
  ?budget:Exec.Budget.t -> Ast.t -> Exec.t -> Exec.Explain.t list

(** [explainer ?budget model] packages {!explain_execution} for
    {!Exec.Check.run}'s [?explainer] argument. *)
val explainer :
  ?budget:Exec.Budget.t -> Ast.t -> Exec.t -> Exec.Explain.t list

(** The [as] names of the model's checks, in source order (the
    vocabulary [--explain-diff] compares). *)
val check_names : Ast.t -> string list

(** [resolver model x] maps every relation name of [model]'s full
    environment on [x] (primitive and defined alike) to its evaluated
    relation — for re-validating shipped explanations with
    {!Exec.Explain.validate}. *)
val resolver :
  ?budget:Exec.Budget.t -> Ast.t -> Exec.t -> string -> Rel.t option

(** Render a cat expression back to concrete syntax (used for opaque
    edge labels; exposed for tests). *)
val render : Ast.expr -> string
