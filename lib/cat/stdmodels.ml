(* The models shipped with the library, as cat source.  These strings are
   the source of truth; the files under models/ are generated from them
   (see bin/catgen) and a test keeps them in sync.

   Dialect note: closures are written with an explicit hat — r^+ and the
   hat-star spelling — so the infix cartesian product of sets stays
   unambiguous; herd's cat accepts both spellings. *)

let lk =
  {|"Linux-kernel memory model (ASPLOS 2018, Figures 3, 8 and 12)"

(* auxiliary relations, Section 3.1 *)
let acq-po = [R & Acquire] ; po
let po-rel = po ; [W & Release]
let rfi-rel-acq = [W & Release] ; rfi ; [R & Acquire]
let rmb = [R] ; po ; [Rmb] ; po ; [R]
let wmb = [W] ; po ; [Wmb] ; po ; [W]
let mb = po ; [Mb] ; po
let rb-dep = [R] ; po ; [Rb-dep] ; po ; [R]

(* RCU base relations, Figure 12; crit is predefined *)
let gp = (po & (_ * Sync)) ; po?
let rscs = po ; crit^-1 ; po?

(* Figure 8 *)
let dep = addr | data
let rwdep = (dep | ctrl) & (R * W)
let overwrite = co | fr
let to-w = rwdep | (overwrite & int)
let rrdep = addr | (dep ; rfi)
let strong-rrdep = rrdep^+ & rb-dep
let to-r = strong-rrdep | rfi-rel-acq
let strong-fence = mb | gp
let fence = strong-fence | po-rel | wmb | rmb | acq-po
let ppo = rrdep^* ; (to-r | to-w | fence)
let A-cumul(r) = rfe? ; r
let cumul-fence = A-cumul(strong-fence | po-rel) | wmb
let prop = (overwrite & ext)? ; cumul-fence^* ; rfe?
let hb = ((prop \ id) & int) | ppo | rfe
let pb = prop ; strong-fence ; hb^*

(* Figure 12 *)
let link = hb^* ; pb^* ; prop
let gp-link = gp ; link
let rscs-link = rscs ; link
let rec rcu-path = gp-link
  | (rcu-path ; rcu-path)
  | (gp-link ; rscs-link)
  | (rscs-link ; gp-link)
  | (gp-link ; rcu-path ; rscs-link)
  | (rscs-link ; rcu-path ; gp-link)

(* the axioms: Figure 3 plus the RCU axiom of Figure 12 *)
acyclic po-loc | com as sc-per-variable
empty rmw & (fre ; coe) as atomicity
acyclic hb as happens-before
acyclic pb as propagates-before
irreflexive rcu-path as rcu
|}

let sc =
  {|"Sequential consistency"
acyclic po | rf | co | fr as sc
empty rmw & (fre ; coe) as atomicity
|}

let tso =
  {|"x86-TSO (LK mapping: smp_mb is mfence, other fences are compiler-only)"
let ppo-tso = (po & (M * M)) \ (W * R)
let implied = po ; [Mb] ; po
let ghb = ppo-tso | implied | rfe | co | fr
acyclic ghb as tso
acyclic po-loc | com as sc-per-variable
empty rmw & (fre ; coe) as atomicity
|}

let c11 =
  {|"C11, original SC-fence semantics (Batty et al.), LK mapping of P0124"
let relw = W & Release
let acqr = R & Acquire
let relf = Wmb | Mb
let acqf = Rmb | Mb
let sw = ([relw] ; rf ; [acqr])
  | ([relw] ; rf ; [R] ; po ; [acqf])
  | ([relf] ; po ; [W] ; rf ; [acqr])
  | ([relf] ; po ; [W] ; rf ; [R] ; po ; [acqf])
let hb = (po | sw)^+
let eco = (rf | co | fr)^+
irreflexive hb ; eco? as coherence
empty rmw & (fre ; coe) as atomicity
let sc-ord = ([Mb] ; hb ; [Mb]) | ([Mb] ; po ; (fr | co) ; po ; [Mb])
acyclic sc-ord as sc-fences
|}

let c11_psc =
  {|"C11 with strengthened (RC11-style) SC fences"
let relw = W & Release
let acqr = R & Acquire
let relf = Wmb | Mb
let acqf = Rmb | Mb
let sw = ([relw] ; rf ; [acqr])
  | ([relw] ; rf ; [R] ; po ; [acqf])
  | ([relf] ; po ; [W] ; rf ; [acqr])
  | ([relf] ; po ; [W] ; rf ; [R] ; po ; [acqf])
let hb = (po | sw)^+
let eco = (rf | co | fr)^+
irreflexive hb ; eco? as coherence
empty rmw & (fre ; coe) as atomicity
let psc = [Mb] ; (hb | (hb ; eco ; hb)) ; [Mb]
acyclic psc as sc-fences
|}

(* (name, file name, source) for every shipped model *)
let all =
  [
    ("LK", "lk.cat", lk);
    ("SC", "sc.cat", sc);
    ("x86-TSO", "tso.cat", tso);
    ("C11", "c11.cat", c11);
    ("C11-psc", "c11-psc.cat", c11_psc);
  ]
