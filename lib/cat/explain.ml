(* Provenance-tracking explanation engine for cat models.

   When a check of a cat model fails on a candidate execution, this
   module turns the bare [holds = false] into an {!Exec.Explain.t}: a
   minimal witnessing cycle (shortest, via BFS in the dense relation
   kernel) for [acyclic]/[irreflexive], the offending pairs for
   [empty], each edge labelled with the branch of the checked relation
   it belongs to and decomposed — through union / sequence / closure /
   inverse / named definitions — down to primitive rf/co/fr/po/
   dependency edges.

   The decomposition is semantic, not syntactic: at every AST node the
   engine re-evaluates the relevant sub-expressions (in the environment
   the definition was evaluated in, so shadowing and [let rec]
   fixpoints resolve exactly as the interpreter resolved them) and
   follows the operand that actually contains the edge.  A [Union]
   picks the matching side; a [Seq] finds a midpoint; [Plus]/[Star]
   find a shortest path through the base relation and decompose each
   hop; [Inverse] decomposes the flipped edge and tags labels with
   [^-1]; an [Id] bound by a [let] recurses into its body (guarded
   against recursive definitions such as [rcu-path] by a visiting set —
   a revisited name becomes an opaque primitive, which still
   re-validates by membership); function application ([A-cumul(r)])
   substitutes the argument expression for the parameter.  [Cartesian]
   and [Complement] edges stay opaque: their pairs are not produced by
   other edges.

   Every explanation is passed through {!Exec.Explain.validate} against
   the model's own environment before it is released — the resolver
   maps relation names back to their evaluated values, so each reported
   edge is re-checked for membership in the relation its label names.
   A failure there raises {!Exec.Explain.Invalid}: a hard error by
   design (ISSUE 5), never a silently wrong diagram. *)

module E = Exec.Explain
module Iset = Rel.Iset
module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Rendering cat expressions (for opaque labels)                       *)
(* ------------------------------------------------------------------ *)

let rec render (e : Ast.expr) =
  match e with
  | Ast.Id x -> x
  | Ast.Empty_rel -> "0"
  | Ast.Union (a, b) -> Printf.sprintf "%s | %s" (atom a) (atom b)
  | Ast.Inter (a, b) -> Printf.sprintf "%s & %s" (atom a) (atom b)
  | Ast.Diff (a, b) -> Printf.sprintf "%s \\ %s" (atom a) (atom b)
  | Ast.Seq (a, b) -> Printf.sprintf "%s ; %s" (atom a) (atom b)
  | Ast.Cartesian (a, b) -> Printf.sprintf "%s * %s" (atom a) (atom b)
  | Ast.Inverse a -> atom a ^ "^-1"
  | Ast.Plus a -> atom a ^ "^+"
  | Ast.Star a -> atom a ^ "^*"
  | Ast.Opt a -> atom a ^ "?"
  | Ast.Complement a -> "~" ^ atom a
  | Ast.Bracket a -> "[" ^ render a ^ "]"
  | Ast.App (f, arg) -> Printf.sprintf "%s(%s)" f (render arg)

and atom e =
  match e with
  | Ast.Id _ | Ast.Empty_rel | Ast.Bracket _ | Ast.App _ -> render e
  | _ -> "(" ^ render e ^ ")"

(* ------------------------------------------------------------------ *)
(* Statement replay: outcomes plus a definition table                  *)
(* ------------------------------------------------------------------ *)

(* For decomposition each defined name needs its body *and* the
   environment that body was evaluated in: the pre-group environment
   for plain lets (also the closure environment of function
   definitions), the post-fixpoint environment for [let rec] — at the
   fixpoint, value(name) = eval(body, fixpoint env), so any edge of the
   value is derivable from the body there. *)
type def = { params : string list; body : Ast.expr; denv : Interp.env }

type replayed = {
  env : Interp.env; (* after all statements *)
  defs : (string, def) Hashtbl.t;
  failed : (Ast.check_kind * Ast.expr * string option * Interp.env) list;
      (* failed checks, with the environment at their program point *)
}

let check_holds env kind e =
  match kind with
  | Ast.Acyclic -> Rel.is_acyclic (Interp.as_rel (Interp.eval env e))
  | Ast.Irreflexive -> Rel.is_irreflexive (Interp.as_rel (Interp.eval env e))
  | Ast.Is_empty -> (
      match Interp.eval env e with
      | Interp.Vset s -> Iset.is_empty s
      | v -> Rel.is_empty (Interp.as_rel v))

let replay ?budget (model : Ast.t) env0 =
  let defs = Hashtbl.create 64 in
  let failed = ref [] in
  let env =
    List.fold_left
      (fun env stmt ->
        match stmt with
        | Ast.Let (bs, is_rec) ->
            Option.iter Exec.Budget.tick budget;
            let env' = Interp.eval_let ?budget env bs is_rec in
            List.iter
              (fun (n, params, body) ->
                Hashtbl.replace defs n
                  { params; body; denv = (if is_rec then env' else env) })
              bs;
            env'
        | Ast.Check (kind, e, name) ->
            Option.iter Exec.Budget.tick budget;
            if not (check_holds env kind e) then
              failed := (kind, e, name, env) :: !failed;
            env)
      env0 model.Ast.stmts
  in
  { env; defs; failed = List.rev !failed }

(* ------------------------------------------------------------------ *)
(* Decomposition into primitive edges                                  *)
(* ------------------------------------------------------------------ *)

(* The predefined relation names decomposition terminates on.  [com] is
   predefined too, but splits informatively into rf/co/fr. *)
let primitive_names =
  Sset.of_list (Interp.witness_names @ Interp.structural_names)

let try_rel env e =
  match Interp.as_rel (Interp.eval env e) with
  | r -> Some r
  | exception Interp.Type_error _ -> None

let mem_of env e a b =
  match try_rel env e with Some r -> Rel.mem a b r | None -> false

(* Shortest path [a; ...; b] (at least one edge) through [rel], or
   [None].  Handles a = b (a proper cycle through [a]). *)
let bfs_path rel a b =
  let adj : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  Rel.iter
    (fun x y ->
      Hashtbl.replace adj x
        (y :: Option.value ~default:[] (Hashtbl.find_opt adj x)))
    rel;
  let succs x = Option.value ~default:[] (Hashtbl.find_opt adj x) in
  (* prev.(y) = predecessor of y on a shortest path from a; a itself is
     never keyed, so paths of length >= 1 fall out naturally even when
     a = b *)
  let prev : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let q = Queue.create () in
  let visit p y = if not (Hashtbl.mem prev y) then begin
      Hashtbl.replace prev y p;
      Queue.add y q
    end
  in
  List.iter (visit a) (succs a);
  let rec loop () =
    if Hashtbl.mem prev b then
      let rec back acc n = if n = a then a :: acc
        else back (n :: acc) (Hashtbl.find prev n)
      in
      (* walk back from b; the path has >= 1 edge by construction *)
      Some (back [ b ] (Hashtbl.find prev b))
    else if Queue.is_empty q then None
    else begin
      let x = Queue.pop q in
      List.iter (visit x) (succs x);
      loop ()
    end
  in
  loop ()

let invert_label l =
  if Filename.check_suffix l "^-1" then Filename.chop_suffix l "^-1"
  else l ^ "^-1"

let max_depth = 400

(* A decomposition is unproductive when it contains a prim produced by
   the recursion guard: the same definition name on the same edge as a
   frame already on the decomposition stack. *)
let productive visiting prims =
  not
    (List.exists
       (fun (p : E.prim) ->
         List.mem (p.E.p_label, p.E.p_src, p.E.p_dst) visiting)
       prims)

(* [decompose] returns a primitive path from [a] to [b], assuming
   (a, b) is an edge of [eval env e] (the caller established that by
   membership).  [opaque] is the safety net everywhere: an edge we
   cannot (or choose not to) split becomes one primitive carrying the
   rendered expression — named opaque edges still re-validate by
   membership, rendered ones structurally.

   [visiting] guards recursive definitions by (name, edge), not name
   alone: [rcu-path] on a *sub*-edge of the one being decomposed is
   genuine progress (the Seq split of [rcu-path ; rcu-path] hands each
   half a shorter edge), while the same name on the same edge means the
   recursion made no progress and must stop. *)
let rec decompose defs ~visiting ~depth env (e : Ast.expr) a b :
    E.prim list =
  let opaque () = [ { E.p_src = a; p_dst = b; p_label = render e } ] in
  if depth > max_depth then opaque ()
  else
    match e with
    | Ast.Id "com" ->
        (* predefined rf | co | fr: split for herd-style labels *)
        let pick n = mem_of env (Ast.Id n) a b in
        let l = if pick "rf" then "rf" else if pick "co" then "co" else "fr" in
        [ { E.p_src = a; p_dst = b; p_label = l } ]
    | Ast.Id x when Sset.mem x primitive_names ->
        [ { E.p_src = a; p_dst = b; p_label = x } ]
    | Ast.Id x -> (
        match Hashtbl.find_opt defs x with
        | Some { params = []; body; denv }
          when not (List.mem (x, a, b) visiting) ->
            decompose defs
              ~visiting:((x, a, b) :: visiting)
              ~depth:(depth + 1) denv body a b
        | _ ->
            (* unproductive revisit, parameter, or unknown: opaque, but
               a bound name still validates by membership *)
            [ { E.p_src = a; p_dst = b; p_label = x } ])
    | Ast.Empty_rel -> opaque ()
    | Ast.Union (l, r) -> (
        (* prefer a branch whose decomposition makes progress: a
           recursive definition's trivial branch ([rcu-path ;
           rcu-path] contains (a,a) as soon as (a,a) is in rcu-path)
           matches first but decomposes into guard-stopped prims, while
           a later branch ([gp-link ; rscs-link]) carries the real
           derivation *)
        let try_branch e' =
          if mem_of env e' a b then
            Some (decompose defs ~visiting ~depth:(depth + 1) env e' a b)
          else None
        in
        match try_branch l with
        | Some dl when productive visiting dl -> dl
        | dl -> (
            match try_branch r with
            | Some dr when productive visiting dr -> dr
            | dr -> (
                match (dl, dr) with
                | Some d, _ | _, Some d -> d
                | None, None -> opaque ())))
    | Ast.Inter (l, r) ->
        (* both operands contain the edge; decompose the more telling
           one (more primitives — [rmw & (fre ; coe)] shows fre;coe) *)
        let dl = decompose defs ~visiting ~depth:(depth + 1) env l a b
        and dr = decompose defs ~visiting ~depth:(depth + 1) env r a b in
        if List.length dr > List.length dl then dr else dl
    | Ast.Diff (l, _) ->
        decompose defs ~visiting ~depth:(depth + 1) env l a b
    | Ast.Seq (l, r) -> (
        match (try_rel env l, try_rel env r) with
        | Some rl, Some rr -> (
            (* candidate midpoints m with (a,m) in l and (m,b) in r,
               strict ones (distinct from both endpoints) first: a
               degenerate midpoint hands one half the original edge
               back, which only a recursion guard can stop *)
            let mids = ref [] in
            Rel.iter
              (fun x y -> if x = a && Rel.mem y b rr then mids := y :: !mids)
              rl;
            let strict, degen =
              List.partition (fun m -> m <> a && m <> b) (List.rev !mids)
            in
            let split m =
              decompose defs ~visiting ~depth:(depth + 1) env l a m
              @ decompose defs ~visiting ~depth:(depth + 1) env r m b
            in
            let rec try_mids fallback budget = function
              | [] -> (
                  match fallback with Some d -> d | None -> opaque ())
              | m :: rest ->
                  if budget = 0 then
                    match fallback with Some d -> d | None -> split m
                  else
                    let d = split m in
                    if productive visiting d then d
                    else
                      try_mids
                        (if fallback = None then Some d else fallback)
                        (budget - 1) rest
            in
            try_mids None 8 (strict @ degen))
        | _ -> opaque ())
    | Ast.Inverse inner ->
        decompose defs ~visiting ~depth:(depth + 1) env inner b a
        |> List.rev_map (fun (p : E.prim) ->
               {
                 E.p_src = p.E.p_dst;
                 p_dst = p.E.p_src;
                 p_label = invert_label p.E.p_label;
               })
    | Ast.Star _ when a = b ->
        (* the reflexive part always covers (a, a) *)
        [ { E.p_src = a; p_dst = b; p_label = "id" } ]
    | Ast.Plus inner | Ast.Star inner -> (
        match try_rel env inner with
        | Some base -> (
            match bfs_path base a b with
            | Some path ->
                let rec hops = function
                  | x :: (y :: _ as rest) ->
                      decompose defs ~visiting ~depth:(depth + 1) env inner
                        x y
                      @ hops rest
                  | _ -> []
                in
                hops path
            | None -> opaque ())
        | None -> opaque ())
    | Ast.Opt inner ->
        if mem_of env inner a b then
          decompose defs ~visiting ~depth:(depth + 1) env inner a b
        else [ { E.p_src = a; p_dst = b; p_label = "id" } ]
    | Ast.Cartesian _ | Ast.Complement _ -> opaque ()
    | Ast.Bracket _ -> [ { E.p_src = a; p_dst = b; p_label = render e } ]
    | Ast.App (f, arg) -> (
        match Hashtbl.find_opt defs f with
        | Some { params = [ p ]; body; denv }
          when not (List.mem (f, a, b) visiting) -> (
            match Interp.eval env arg with
            | v ->
                (* bind the parameter's *value* for membership tests and
                   register its *expression* as a definition, so the
                   body's decomposition recurses into the argument *)
                let env_b = Interp.bind denv p v in
                let defs' = Hashtbl.copy defs in
                Hashtbl.replace defs' p { params = []; body = arg; denv = env };
                decompose defs' ~visiting:((f, a, b) :: visiting)
                  ~depth:(depth + 1) env_b body a b
            | exception Interp.Type_error _ -> opaque ())
        | _ -> opaque ())

(* ------------------------------------------------------------------ *)
(* Herd-style edge labels for the witness steps                        *)
(* ------------------------------------------------------------------ *)

(* The label of a cycle edge is the branch of the checked relation the
   edge belongs to: checking [hb = ((prop \ id) & int) | ppo | rfe]
   labels each edge "ppo", "rfe" or the rendered first branch.  Named
   definitions are descended only while they keep splitting into
   unions; the first non-union name ("ppo") is the label herd users
   expect.  Branches that mention a definition being expanded are
   deprioritised — [rcu-path ; rcu-path] contains every edge of
   rcu-path trivially, while [rscs-link ; gp-link] names the actual
   derivation. *)
let rec mentions n = function
  | Ast.Id x -> x = n
  | Ast.Empty_rel -> false
  | Ast.Union (a, b) | Ast.Inter (a, b) | Ast.Diff (a, b) | Ast.Seq (a, b)
  | Ast.Cartesian (a, b) ->
      mentions n a || mentions n b
  | Ast.Inverse a | Ast.Plus a | Ast.Star a | Ast.Opt a | Ast.Complement a
  | Ast.Bracket a ->
      mentions n a
  | Ast.App (f, arg) -> f = n || mentions n arg

let rec branch_label defs ~visiting env (e : Ast.expr) a b =
  match e with
  | Ast.Id "com" ->
      let pick n = mem_of env (Ast.Id n) a b in
      if pick "rf" then "rf" else if pick "co" then "co" else "fr"
  | Ast.Id x when Sset.mem x primitive_names -> x
  | Ast.Id x -> (
      match Hashtbl.find_opt defs x with
      | Some { params = []; body = Ast.Union _ as body; denv }
        when not (Sset.mem x visiting) ->
          branch_label defs ~visiting:(Sset.add x visiting) denv body a b
      | _ -> x)
  | Ast.Union _ -> (
      let rec flat = function
        | Ast.Union (l, r) -> flat l @ flat r
        | e' -> [ e' ]
      in
      let self e' = Sset.exists (fun n -> mentions n e') visiting in
      let matching = List.filter (fun e' -> mem_of env e' a b) (flat e) in
      match
        ( List.find_opt (fun e' -> not (self e')) matching,
          matching )
      with
      | Some e', _ | None, e' :: _ -> branch_label defs ~visiting env e' a b
      | None, [] -> render e)
  | _ -> render e

(* ------------------------------------------------------------------ *)
(* Building explanations for one execution                             *)
(* ------------------------------------------------------------------ *)

let max_empty_pairs = 16

let kind_of = function
  | Ast.Acyclic -> E.Acyclic
  | Ast.Irreflexive -> E.Irreflexive
  | Ast.Is_empty -> E.Nonempty

let resolver env name =
  match Interp.lookup env name with
  | Interp.Vrel r -> Some r
  | Interp.Vset s -> Some (Rel.id_of_set s)
  | Interp.Vfun _ -> None
  | exception Interp.Type_error _ -> None

let step defs env checked a b =
  {
    E.src = a;
    dst = b;
    label = branch_label defs ~visiting:Sset.empty env checked a b;
    prims = decompose defs ~visiting:[] ~depth:0 env checked a b;
  }

let rec consecutive = function
  | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
  | _ -> []

let build (x : Exec.t) defs (kind, e, name, env) =
  let name = Option.value ~default:"(unnamed)" name in
  let finish steps =
    let t =
      {
        E.check = name;
        kind = kind_of kind;
        steps;
        events = E.events_of_steps x.Exec.events steps;
      }
    in
    E.validate ~resolve:(resolver env) t;
    Some t
  in
  match kind with
  | Ast.Acyclic -> (
      let r = Interp.as_rel (Interp.eval env e) in
      match Rel.find_cycle r with
      | None -> None (* cannot happen for a failed acyclic check *)
      | Some cycle ->
          finish (List.map (fun (a, b) -> step defs env e a b) (consecutive cycle))
      )
  | Ast.Irreflexive -> (
      let r = Interp.as_rel (Interp.eval env e) in
      match List.find_opt (fun (a, b) -> a = b) (Rel.to_list r) with
      | None -> None
      | Some (a, _) -> finish [ step defs env e a a ])
  | Ast.Is_empty -> (
      match Interp.eval env e with
      | Interp.Vset s ->
          let label = render e in
          Iset.elements s
          |> List.filteri (fun i _ -> i < max_empty_pairs)
          |> List.map (fun a ->
                 { E.src = a; dst = a; label; prims = [] })
          |> finish
      | v ->
          let pairs = Rel.to_list (Interp.as_rel v) in
          List.filteri (fun i _ -> i < max_empty_pairs) pairs
          |> List.map (fun (a, b) -> step defs env e a b)
          |> finish)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* [explain_execution ?budget model x] explains every failed check of
   [model] on the candidate [x]; [] iff [x] is consistent. *)
let explain_execution ?budget (model : Ast.t) (x : Exec.t) =
  let { defs; failed; _ } = replay ?budget model (Interp.env_of_execution x) in
  List.filter_map (build x defs) failed

(* An explainer for {!Exec.Check.run}'s [?explainer]. *)
let explainer ?budget (model : Ast.t) : Exec.t -> E.t list =
 fun x -> explain_execution ?budget model x

(* A membership resolver over [model]'s full environment on [x] (every
   primitive and defined relation name), for re-validating explanations
   outside the engine. *)
let resolver ?budget (model : Ast.t) (x : Exec.t) =
  let { env; _ } = replay ?budget model (Interp.env_of_execution x) in
  resolver env

(* The [as] names of a model's checks, in source order (for
   [--explain-diff]). *)
let check_names (model : Ast.t) =
  List.filter_map
    (function
      | Ast.Check (_, _, name) -> Some (Option.value ~default:"(unnamed)" name)
      | Ast.Let _ -> None)
    model.Ast.stmts
