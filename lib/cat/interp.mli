(** Interpreter for the cat subset: evaluates a model's statements against
    the base relations of one candidate execution, herd-style.

    Values are sets of events, relations, or (unapplied) functions; sets
    appearing in relation position are coerced to identities, as with the
    bracket form [[S]].  Recursive definitions are solved by Kleene
    iteration from the empty relation (cat's [rec] is a least fixed point
    of monotone equations). *)

module Iset = Rel.Iset

type value =
  | Vset of Iset.t
  | Vrel of Rel.t
  | Vfun of string list * Ast.expr * env

and env = { universe : Iset.t; bindings : (string * value) list }

(** Raised on unbound identifiers, arity mismatches, or set/relation
    confusion ([empty W * po], a function used as a relation, ...). *)
exception Type_error of string

val lookup : env -> string -> value
val bind : env -> string -> value -> env
val as_rel : value -> Rel.t
val as_set : value -> Iset.t
val eval : env -> Ast.expr -> value

(** [eval_let ?budget env bindings is_rec] evaluates one [let] group
    (Kleene iteration when [is_rec]) and returns the extended
    environment.  Exposed for {!Explain}, which replays a model's
    statements to record where each name was defined. *)
val eval_let :
  ?budget:Exec.Budget.t ->
  env -> (string * string list * Ast.expr) list -> bool -> env

type outcome = {
  check_name : string;  (** the [as name] label, or ["(unnamed)"] *)
  kind : Ast.check_kind;
  holds : bool;
}

(** [run ?budget model env] executes all statements; returns every
    constraint's outcome in source order.  With a budget, the deadline is
    probed between statements and on every Kleene iteration of recursive
    definitions, raising {!Exec.Budget.Exceeded} when it passes. *)
val run : ?budget:Exec.Budget.t -> Ast.t -> env -> outcome list

(** {1 Static-prefix evaluation}

    Candidate executions of one litmus test share their event structure
    across all rf/co witnesses; a binding whose free identifiers never
    reach a witness-dependent name has the same value for every
    candidate and can be evaluated once per test instead of once per
    candidate.  [compile] performs that dependency analysis once per
    model, [prefix] evaluates the static statements against one
    candidate, and [run_with_prefix] replays the statement list reusing
    the prefix — producing exactly {!run}'s outcomes. *)

(** The predefined names that depend on the execution witness. *)
val witness_names : string list

(** The predefined names determined by the event structure alone. *)
val structural_names : string list

(** A model with each statement classified static (computable from the
    event structure alone) or dynamic. *)
type compiled

val compile : Ast.t -> compiled

(** The values of a [compiled] model's static statements, for one event
    structure. *)
type prefix

(** [prefix ?budget compiled env] evaluates the static statements in
    source order (skipping dynamic ones, which by construction no static
    statement depends on). *)
val prefix : ?budget:Exec.Budget.t -> compiled -> env -> prefix

(** [run_with_prefix ?budget p env] replays all statements in source
    order against [env], binding static definitions and reusing static
    check outcomes from [p] instead of re-evaluating them.  [env] must
    come from a candidate sharing the event structure [p] was built
    from; the result then equals [run compiled.model env]. *)
val run_with_prefix :
  ?budget:Exec.Budget.t -> prefix -> env -> outcome list

(** {1 Batched evaluation}

    The dynamic suffix for up to 63 pairwise static-compatible
    witnesses ({!Exec.Execution.static_compatible}) at once: witness
    relations become candidate-major bit planes
    ({!Rel.Batch}) and every operator runs word-parallel across all
    planes; static bindings ride along as scalar values, broadcast into
    planes only where an operator mixes them with a witness-dependent
    operand.  Observationally equivalent to replaying
    {!run_with_prefix} per candidate — including {!Type_error}s: the
    dialect has no relation-to-set operator, so plane-valued values are
    always relations, and set positions reject them exactly where the
    scalar evaluator does. *)

(** A value in the batched evaluator. *)
type bvalue =
  | Bval of value  (** identical in every candidate (static) *)
  | Bplanes of Rel.Batch.t  (** relation-valued, varying per candidate *)
  | Bfun of string list * Ast.expr * benv

and benv = {
  b_n : int;  (** events per candidate: the shared universe size *)
  b_mask : int;  (** planes still undecided; broadcasts target these *)
  b_univ : Iset.t;
  b_bindings : (string * bvalue) list;
}

val eval_b : benv -> Ast.expr -> bvalue

(** [run_with_prefix_batched ?budget p benv] replays all statements for
    a whole batch, pulling static bindings and check outcomes from [p]
    and evaluating the dynamic remainder over planes.  Returns the mask
    of planes (within [benv.b_mask]) satisfying every check.  The live
    mask shrinks as checks fail — decided planes zero out and stop
    paying for later statements — but no statement is skipped, so
    models that raise on the scalar path raise here too. *)
val run_with_prefix_batched : ?budget:Exec.Budget.t -> prefix -> benv -> int

(** [benv_of_executions ~mask xs] is the batched counterpart of
    {!env_of_execution}: structural bindings from [xs.(0)] (identical in
    every candidate by construction), witness relations stacked into bit
    planes covering the candidates of [mask]. *)
val benv_of_executions : mask:int -> Exec.t array -> benv

(** The predefined cat environment of an execution: the event sets ([_],
    [W], [R], [M], [F], [IW], and one per annotation), the base relations
    ([po], [addr], [data], [ctrl], [rmw], [rf], [co]), the usual derived
    ones ([fr], [rfi]/[rfe], [coi]/[coe], [fri]/[fre], [com], [po-loc],
    [loc], [int], [ext], [id]) and the RCU [crit] matching. *)
val env_of_execution : Exec.t -> env
