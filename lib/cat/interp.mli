(** Interpreter for the cat subset: evaluates a model's statements against
    the base relations of one candidate execution, herd-style.

    Values are sets of events, relations, or (unapplied) functions; sets
    appearing in relation position are coerced to identities, as with the
    bracket form [[S]].  Recursive definitions are solved by Kleene
    iteration from the empty relation (cat's [rec] is a least fixed point
    of monotone equations). *)

module Iset = Rel.Iset

type value =
  | Vset of Iset.t
  | Vrel of Rel.t
  | Vfun of string list * Ast.expr * env

and env = { universe : Iset.t; bindings : (string * value) list }

(** Raised on unbound identifiers, arity mismatches, or set/relation
    confusion ([empty W * po], a function used as a relation, ...). *)
exception Type_error of string

val lookup : env -> string -> value
val bind : env -> string -> value -> env
val as_rel : value -> Rel.t
val as_set : value -> Iset.t
val eval : env -> Ast.expr -> value

type outcome = {
  check_name : string;  (** the [as name] label, or ["(unnamed)"] *)
  kind : Ast.check_kind;
  holds : bool;
}

(** [run ?budget model env] executes all statements; returns every
    constraint's outcome in source order.  With a budget, the deadline is
    probed between statements and on every Kleene iteration of recursive
    definitions, raising {!Exec.Budget.Exceeded} when it passes. *)
val run : ?budget:Exec.Budget.t -> Ast.t -> env -> outcome list

(** The predefined cat environment of an execution: the event sets ([_],
    [W], [R], [M], [F], [IW], and one per annotation), the base relations
    ([po], [addr], [data], [ctrl], [rmw], [rf], [co]), the usual derived
    ones ([fr], [rfi]/[rfe], [coi]/[coe], [fri]/[fre], [com], [po-loc],
    [loc], [int], [ext], [id]) and the RCU [crit] matching. *)
val env_of_execution : Exec.t -> env
