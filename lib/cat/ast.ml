(* Abstract syntax of the cat language (Alglave, Cousot, Maranget [3]) —
   the subset needed to express the LK model, C11, SC and TSO:
   definitions (possibly recursive), unary functions, and the three
   constraint forms. *)

type expr =
  | Id of string
  | Empty_rel (* the literal 0 *)
  | Union of expr * expr (* e1 | e2 *)
  | Inter of expr * expr (* e1 & e2 *)
  | Diff of expr * expr (* e1 \ e2 *)
  | Seq of expr * expr (* e1 ; e2 *)
  | Cartesian of expr * expr (* S1 * S2 *)
  | Inverse of expr (* e^-1 *)
  | Plus of expr (* e^+ *)
  | Star of expr (* e^* *)
  | Opt of expr (* e? *)
  | Complement of expr (* ~e *)
  | Bracket of expr (* [S] : identity over the set S *)
  | App of string * expr (* f(e) *)

type check_kind = Acyclic | Irreflexive | Is_empty

type stmt =
  | Let of (string * string list * expr) list * bool
      (* bindings (name, params, body); the flag marks [let rec] *)
  | Check of check_kind * expr * string option (* acyclic e as name *)

type t = { title : string; stmts : stmt list }
