(* Lexer for the cat language.  Identifiers may contain '-' (e.g. rb-dep,
   rcu-path), as in herd's dialect; comments are OCaml-style. *)

type token =
  | ID of string
  | STRING of string
  | ZERO
  | LPAR
  | RPAR
  | LBRACK
  | RBRACK
  | EQ
  | BAR
  | AMP
  | BSLASH
  | SEMI
  | STAR
  | QMARK
  | TILDE
  | HAT_INV (* ^-1 *)
  | HAT_PLUS (* ^+ *)
  | HAT_STAR (* ^* *)
  | COMMA
  | EOF

exception Error of string * int

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peekn st n =
  if st.pos + n < String.length st.src then Some st.src.[st.pos + n] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '(' when peekn st 1 = Some '*' ->
      advance st;
      advance st;
      let rec eat depth =
        match (peek st, peekn st 1) with
        | Some '*', Some ')' ->
            advance st;
            advance st;
            if depth > 0 then eat (depth - 1)
        | Some '(', Some '*' ->
            advance st;
            advance st;
            eat (depth + 1)
        | None, _ -> raise (Error ("unterminated comment", st.line))
        | Some _, _ ->
            advance st;
            eat depth
      in
      eat 0;
      skip_ws st
  | Some '/' when peekn st 1 = Some '/' ->
      let rec eat () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            eat ()
      in
      eat ();
      skip_ws st
  | _ -> ()

let next st =
  skip_ws st;
  let line = st.line in
  match peek st with
  | None -> (EOF, line)
  | Some c when is_id_start c ->
      let start = st.pos in
      while match peek st with Some c -> is_id_char c | None -> false do
        advance st
      done;
      (* identifiers must not end in '-' (so [a ^-1] lexes); trim *)
      let s = String.sub st.src start (st.pos - start) in
      (ID s, line)
  | Some '"' ->
      advance st;
      let start = st.pos in
      while (match peek st with Some '"' -> false | Some _ -> true | None -> false) do
        advance st
      done;
      let s = String.sub st.src start (st.pos - start) in
      (match peek st with
      | Some '"' -> advance st
      | _ -> raise (Error ("unterminated string", line)));
      (STRING s, line)
  | Some '0' ->
      advance st;
      (ZERO, line)
  | Some '^' -> (
      advance st;
      match (peek st, peekn st 1) with
      | Some '-', Some '1' ->
          advance st;
          advance st;
          (HAT_INV, line)
      | Some '+', _ ->
          advance st;
          (HAT_PLUS, line)
      | Some '*', _ ->
          advance st;
          (HAT_STAR, line)
      | _ -> raise (Error ("expected -1, + or * after ^", line)))
  | Some c ->
      advance st;
      let t =
        match c with
        | '(' -> LPAR
        | ')' -> RPAR
        | '[' -> LBRACK
        | ']' -> RBRACK
        | '=' -> EQ
        | '|' -> BAR
        | '&' -> AMP
        | '\\' -> BSLASH
        | ';' -> SEMI
        | '*' -> STAR
        | '?' -> QMARK
        | '~' -> TILDE
        | ',' -> COMMA
        | c -> raise (Error (Printf.sprintf "unexpected character %C" c, line))
      in
      (t, line)

let tokens src =
  let st = { src; pos = 0; line = 1 } in
  let rec go acc =
    match next st with
    | (EOF, _) as t -> List.rev (t :: acc)
    | t -> go (t :: acc)
  in
  go []

let to_string = function
  | ID s -> s
  | STRING s -> Printf.sprintf "%S" s
  | ZERO -> "0"
  | LPAR -> "("
  | RPAR -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | EQ -> "="
  | BAR -> "|"
  | AMP -> "&"
  | BSLASH -> "\\"
  | SEMI -> ";"
  | STAR -> "*"
  | QMARK -> "?"
  | TILDE -> "~"
  | HAT_INV -> "^-1"
  | HAT_PLUS -> "^+"
  | HAT_STAR -> "^*"
  | COMMA -> ","
  | EOF -> "<eof>"
