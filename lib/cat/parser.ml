(* Recursive-descent parser for the cat subset.

   Precedence, loosest to tightest:
     |   union
     &   intersection
     \   difference
     ;   sequence
     *   cartesian product
     postfix ^-1 ^+ ^* ?
     atoms: identifiers, 0, [S], ~e, f(e), (e)                       *)

open Ast

exception Error of string * int

type cursor = { mutable toks : (Lexer.token * int) list }

let line c = match c.toks with (_, l) :: _ -> l | [] -> 0
let peek c = match c.toks with (t, _) :: _ -> t | [] -> Lexer.EOF
let peek2 c = match c.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF
let junk c = match c.toks with _ :: rest -> c.toks <- rest | [] -> ()

let fail c msg =
  raise
    (Error (Printf.sprintf "%s (near %s)" msg (Lexer.to_string (peek c)), line c))

let expect c tok =
  if peek c = tok then junk c
  else fail c (Printf.sprintf "expected %s" (Lexer.to_string tok))

let ident c =
  match peek c with
  | Lexer.ID s ->
      junk c;
      s
  | _ -> fail c "expected identifier"

let rec parse_expr c = parse_union c

and parse_union c =
  let lhs = parse_inter c in
  match peek c with
  | Lexer.BAR ->
      junk c;
      Union (lhs, parse_union c)
  | _ -> lhs

and parse_inter c =
  let lhs = parse_diff c in
  match peek c with
  | Lexer.AMP ->
      junk c;
      Inter (lhs, parse_inter c)
  | _ -> lhs

and parse_diff c =
  let rec go lhs =
    match peek c with
    | Lexer.BSLASH ->
        junk c;
        go (Diff (lhs, parse_seq c))
    | _ -> lhs
  in
  go (parse_seq c)

and parse_seq c =
  let lhs = parse_cart c in
  match peek c with
  | Lexer.SEMI ->
      junk c;
      Seq (lhs, parse_seq c)
  | _ -> lhs

and parse_cart c =
  let lhs = parse_postfix c in
  match peek c with
  | Lexer.STAR ->
      junk c;
      Cartesian (lhs, parse_cart c)
  | _ -> lhs

and parse_postfix c =
  let rec go e =
    match peek c with
    | Lexer.HAT_INV ->
        junk c;
        go (Inverse e)
    | Lexer.HAT_PLUS ->
        junk c;
        go (Plus e)
    | Lexer.HAT_STAR ->
        junk c;
        go (Star e)
    | Lexer.QMARK ->
        junk c;
        go (Opt e)
    | _ -> e
  in
  go (parse_atom c)

and parse_atom c =
  match peek c with
  | Lexer.ZERO ->
      junk c;
      Empty_rel
  | Lexer.TILDE ->
      junk c;
      Complement (parse_atom c)
  | Lexer.LBRACK ->
      junk c;
      let e = parse_expr c in
      expect c Lexer.RBRACK;
      Bracket e
  | Lexer.LPAR ->
      junk c;
      let e = parse_expr c in
      expect c Lexer.RPAR;
      e
  | Lexer.ID f when peek2 c = Lexer.LPAR ->
      junk c;
      junk c;
      let arg = parse_expr c in
      expect c Lexer.RPAR;
      App (f, arg)
  | Lexer.ID x ->
      junk c;
      Id x
  | _ -> fail c "expected expression"

(* let [rec] name [(params)] = expr { and ... } *)
let parse_let c =
  expect c (Lexer.ID "let");
  let is_rec =
    match peek c with
    | Lexer.ID "rec" ->
        junk c;
        true
    | _ -> false
  in
  let parse_binding () =
    let name = ident c in
    let params =
      match peek c with
      | Lexer.LPAR ->
          junk c;
          let rec go acc =
            let p = ident c in
            match peek c with
            | Lexer.COMMA ->
                junk c;
                go (p :: acc)
            | _ ->
                expect c Lexer.RPAR;
                List.rev (p :: acc)
          in
          go []
      | _ -> []
    in
    expect c Lexer.EQ;
    let body = parse_expr c in
    (name, params, body)
  in
  let rec go acc =
    let b = parse_binding () in
    match peek c with
    | Lexer.ID "and" ->
        junk c;
        go (b :: acc)
    | _ -> List.rev (b :: acc)
  in
  Let (go [], is_rec)

let parse_check c kind =
  junk c;
  let e = parse_expr c in
  let name =
    match peek c with
    | Lexer.ID "as" ->
        junk c;
        Some (ident c)
    | _ -> None
  in
  Check (kind, e, name)

let parse_model src =
  let c = { toks = Lexer.tokens src } in
  let title =
    match peek c with
    | Lexer.STRING s ->
        junk c;
        s
    | Lexer.ID s when peek2 c <> Lexer.EQ ->
        (* herd also allows a bare-identifier title *)
        junk c;
        s
    | _ -> "unnamed"
  in
  let rec go acc =
    match peek c with
    | Lexer.EOF -> List.rev acc
    | Lexer.ID "let" -> go (parse_let c :: acc)
    | Lexer.ID "acyclic" -> go (parse_check c Acyclic :: acc)
    | Lexer.ID "irreflexive" -> go (parse_check c Irreflexive :: acc)
    | Lexer.ID "empty" -> go (parse_check c Is_empty :: acc)
    | _ -> fail c "expected let, acyclic, irreflexive or empty"
  in
  { title; stmts = go [] }
