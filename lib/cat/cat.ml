(* The cat language: consistency models as executable constraint sets, as
   in the herd simulator.

   - {!Ast}, {!Lexer}, {!Parser}: the language (see {!Stdmodels} for the
     supported dialect);
   - {!Interp}: evaluation against one candidate execution;
   - {!Stdmodels}: the shipped models (lk.cat, sc.cat, tso.cat, c11.cat,
     c11-psc.cat). *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Interp = Interp
module Stdmodels = Stdmodels

type model = Ast.t

(** [parse src] parses a cat model from source.  Raises {!Parser.Error} or
    {!Lexer.Error} on malformed input. *)
let parse = Parser.parse_model

(** [load_file path] parses the cat model stored at [path]. *)
let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

(** [outcomes ?budget model x] evaluates every constraint of [model] on
    the candidate execution [x]; [?budget] bounds the interpretation
    wall-clock (see {!Interp.run}). *)
let outcomes ?budget (model : model) (x : Exec.t) =
  Interp.run ?budget model (Interp.env_of_execution x)

(** [consistent ?budget model x] holds iff [x] satisfies all of [model]'s
    constraints. *)
let consistent ?budget (model : model) (x : Exec.t) =
  List.for_all (fun (o : Interp.outcome) -> o.holds) (outcomes ?budget model x)

(** [to_check_model ~name ?budget model] packages a cat model for
    {!Exec.Check.run}.  Pass the same running budget to {!Exec.Check.run}
    so the fixpoint interpreter shares the test's deadline. *)
let to_check_model ~name ?budget (model : model) : (module Exec.Check.MODEL) =
  (module struct
    let name = name
    let consistent = consistent ?budget model
  end)

(** The shipped LK model (lk.cat), parsed. *)
let lk = lazy (parse Stdmodels.lk)

(** [check_lk test] runs [test] against the cat-interpreted LK model. *)
let check_lk test =
  Exec.Check.run (to_check_model ~name:"LK(cat)" (Lazy.force lk)) test
