(* The cat language: consistency models as executable constraint sets, as
   in the herd simulator.

   - {!Ast}, {!Lexer}, {!Parser}: the language (see {!Stdmodels} for the
     supported dialect);
   - {!Interp}: evaluation against one candidate execution;
   - {!Stdmodels}: the shipped models (lk.cat, sc.cat, tso.cat, c11.cat,
     c11-psc.cat). *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Interp = Interp
module Stdmodels = Stdmodels
module Explain = Explain

type model = Ast.t

(** [parse src] parses a cat model from source.  Raises {!Parser.Error} or
    {!Lexer.Error} on malformed input. *)
let parse = Parser.parse_model

(** [load_file path] parses the cat model stored at [path]. *)
let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

(** [outcomes ?budget model x] evaluates every constraint of [model] on
    the candidate execution [x]; [?budget] bounds the interpretation
    wall-clock (see {!Interp.run}). *)
let outcomes ?budget (model : model) (x : Exec.t) =
  Interp.run ?budget model (Interp.env_of_execution x)

(** [consistent ?budget model x] holds iff [x] satisfies all of [model]'s
    constraints. *)
let consistent ?budget (model : model) (x : Exec.t) =
  List.for_all (fun (o : Interp.outcome) -> o.holds) (outcomes ?budget model x)

(** [to_check_model ~name ?budget ?cache model] packages a cat model for
    {!Exec.Check.run}.  Pass the same running budget to {!Exec.Check.run}
    so the fixpoint interpreter shares the test's deadline.

    With [?cache] (default [true]), the model is compiled once
    ({!Interp.compile}) and its static prefix — every binding depending
    only on the event structure, not on the rf/co witness — is evaluated
    once per event structure and reused across the candidates sharing
    it.  The enumeration yields all witnesses of one event structure
    consecutively with a physically shared [events] array, so a one-slot
    cache keyed on that array's identity hits for all but the first
    candidate of each structure.  Caching is observationally transparent
    (prefix replay reproduces {!Interp.run} exactly); [~cache:false]
    recovers the direct interpreter, e.g. for benchmarking. *)
let c_cache_hits = Obs.Counter.make "cat.cache.hits"
let c_cache_misses = Obs.Counter.make "cat.cache.misses"
let h_replay = Obs.Histogram.make "cat.replay_us"

let to_check_model ~name ?budget ?(cache = true) (model : model) :
    (module Exec.Check.MODEL) =
  if not cache then
    (module struct
      let name = name
      let consistent = consistent ?budget model
    end)
  else begin
    let compiled = Interp.compile model in
    let slot : (Exec.Event.t array * Interp.prefix) option ref = ref None in
    (module struct
      let name = name

      let consistent (x : Exec.t) =
        let env = Interp.env_of_execution x in
        let prefix =
          match !slot with
          | Some (ev, p) when ev == x.Exec.events ->
              Obs.Counter.incr c_cache_hits;
              p
          | _ ->
              Obs.Counter.incr c_cache_misses;
              let p = Interp.prefix ?budget compiled env in
              slot := Some (x.Exec.events, p);
              p
        in
        let t0 = if Obs.enabled () then Obs.now_us () else 0. in
        let outcomes = Interp.run_with_prefix ?budget prefix env in
        if Obs.enabled () then
          Obs.Histogram.observe h_replay (Obs.now_us () -. t0);
        List.for_all (fun (o : Interp.outcome) -> o.holds) outcomes
    end)
  end

(** [to_batched_model ~name ?budget model] packages a cat model for the
    batched path of {!Exec.Check.run}: a scalar {!Exec.Check.MODEL} plus
    a {!Exec.Check.batch_fn} deciding up to 63 pairwise
    static-compatible witnesses per word-parallel pass
    ({!Interp.run_with_prefix_batched}); statics come from the first
    candidate, which the compatibility contract makes representative.
    Both share one compiled model and one static-prefix slot, so mixing
    them (the batch loop never calls the scalar module, but callers may)
    stays cheap.  [~coherent] is ignored — cat models re-check their
    coherence axiom even on prefiltered candidates, which is sound and
    keeps the evaluator oblivious to which checks encode coherence. *)
let to_batched_model ~name ?budget (model : model) :
    (module Exec.Check.MODEL) * Exec.Check.batch_fn =
  let compiled = Interp.compile model in
  let slot : (Exec.Event.t array * Interp.prefix) option ref = ref None in
  let prefix_of (x : Exec.t) =
    match !slot with
    | Some (ev, p) when ev == x.Exec.events ->
        Obs.Counter.incr c_cache_hits;
        p
    | _ ->
        Obs.Counter.incr c_cache_misses;
        let p = Interp.prefix ?budget compiled (Interp.env_of_execution x) in
        slot := Some (x.Exec.events, p);
        p
  in
  let scalar : (module Exec.Check.MODEL) =
    (module struct
      let name = name

      let consistent (x : Exec.t) =
        let env = Interp.env_of_execution x in
        let prefix = prefix_of x in
        let t0 = if Obs.enabled () then Obs.now_us () else 0. in
        let outcomes = Interp.run_with_prefix ?budget prefix env in
        if Obs.enabled () then
          Obs.Histogram.observe h_replay (Obs.now_us () -. t0);
        List.for_all (fun (o : Interp.outcome) -> o.holds) outcomes
    end)
  in
  let batch ~coherent:_ ~mask (xs : Exec.t array) =
    let prefix = prefix_of xs.(0) in
    let benv = Interp.benv_of_executions ~mask xs in
    Interp.run_with_prefix_batched ?budget prefix benv
  in
  (scalar, batch)

(** [to_oracle ~name model] packages a cat model as an
    {!Exec.Oracle.t}: the scalar and bit-plane batched engines of
    {!to_batched_model} sharing one compiled model and one
    static-prefix slot, budget-indexed per request (the fixpoint
    interpreter shares the test's deadline).  No symbolic engine yet —
    a [Sat] request falls back enumeratively, counted, per
    {!Exec.Oracle.run}. *)
let to_oracle ~name (model : model) : Exec.Oracle.t =
  let compiled = Interp.compile model in
  let slot : (Exec.Event.t array * Interp.prefix) option ref = ref None in
  let prefix_of budget (x : Exec.t) =
    match !slot with
    | Some (ev, p) when ev == x.Exec.events ->
        Obs.Counter.incr c_cache_hits;
        p
    | _ ->
        Obs.Counter.incr c_cache_misses;
        let p = Interp.prefix ?budget compiled (Interp.env_of_execution x) in
        slot := Some (x.Exec.events, p);
        p
  in
  Exec.Oracle.make ~name
    ~model:(fun budget ->
      (module struct
        let name = name

        let consistent (x : Exec.t) =
          let env = Interp.env_of_execution x in
          let prefix = prefix_of budget x in
          let t0 = if Obs.enabled () then Obs.now_us () else 0. in
          let outcomes = Interp.run_with_prefix ?budget prefix env in
          if Obs.enabled () then
            Obs.Histogram.observe h_replay (Obs.now_us () -. t0);
          List.for_all (fun (o : Interp.outcome) -> o.holds) outcomes
      end : Exec.Check.MODEL))
    ~batch:(fun budget ~coherent:_ ~mask (xs : Exec.t array) ->
      let prefix = prefix_of budget xs.(0) in
      let benv = Interp.benv_of_executions ~mask xs in
      Interp.run_with_prefix_batched ?budget prefix benv)
    ()

(** [explainer ?budget model] is a verdict-forensics hook for
    {!Exec.Check.run}: explanations of every failed check on a rejected
    candidate (see {!Explain}). *)
let explainer = Explain.explainer

(** The [as] names of [model]'s checks, in source order. *)
let check_names = Explain.check_names

(** The shipped LK model (lk.cat), parsed. *)
let lk = lazy (parse Stdmodels.lk)

(** [check_lk test] runs [test] against the cat-interpreted LK model,
    batched ([?batched], default [true]: the bit-plane path,
    observationally identical to the scalar one). *)
let check_lk ?(batched = true) test =
  if batched then
    let m, batch = to_batched_model ~name:"LK(cat)" (Lazy.force lk) in
    Exec.Check.run ~batch m test
  else
    Exec.Check.run ~delta:false
      (to_check_model ~name:"LK(cat)" (Lazy.force lk))
      test
