(* Reference consistency models used for comparison with the LK model:

   - {!Sc}: sequential consistency;
   - {!Tso}: x86-TSO (the strongest hardware target of the LK);
   - {!C11}: original C11 under the mapping of [68] — the paper's
     comparison column — plus {!C11.Strengthened}, the repaired SC-fence
     semantics (RC11-style psc). *)

module Sc = Sc
module Tso = Tso
module C11 = C11
