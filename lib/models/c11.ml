(* The C11 model used for the paper's comparison column (Section 5.2),
   i.e. the *original* C11 semantics of Batty et al. [15], under the LK ->
   C11 mapping of [68]:

     READ_ONCE            -> relaxed load
     WRITE_ONCE           -> relaxed store
     smp_load_acquire     -> acquire load
     smp_store_release    -> release store
     smp_rmb              -> atomic_thread_fence(acquire)
     smp_wmb              -> atomic_thread_fence(release)
     smp_mb               -> atomic_thread_fence(seq_cst)

   The fragment reachable from LK tests has no SC atomics, so the SC axiom
   reduces to the fence-fence rules of N1570 29.3: the total order S over SC
   fences must be consistent with happens-before, with the read observation
   rule (a read after one fence must not read a write mo-older than a write
   before an S-earlier fence), and with modification order between writes
   separated by fence pairs.  Such an S exists iff the [sc_order] relation
   below is acyclic.

   Crucially, C11 has no dependency ordering for relaxed accesses (ctrl,
   addr, data are not respected) and its SC fences do not "restore SC":
   Figure 4 (LB+ctrl+mb), Figure 7 (PeterZ) and Figure 13 (RWC+mbs) are all
   allowed — the discrepancies Table 5 reports. *)

module E = Exec.Event

let name = "C11"

(* The test uses primitives that have no C11 counterpart (RCU). *)
let applicable (test : Litmus.Ast.t) = not (Litmus.Ast.has_rcu test)

type sets = {
  rel_w : Rel.t; (* [W & release] *)
  acq_r : Rel.t; (* [R & acquire] *)
  rel_f : Rel.t; (* [release or seq_cst fences] *)
  acq_f : Rel.t; (* [acquire or seq_cst fences] *)
  sc_f : Rel.Iset.t; (* seq_cst fences *)
}

let classify (x : Exec.t) =
  let set p = Exec.events_where x p in
  {
    rel_w = Rel.id_of_set (set (fun e -> e.dir = E.W && e.annot = E.Release));
    acq_r = Rel.id_of_set (set (fun e -> e.dir = E.R && e.annot = E.Acquire));
    rel_f =
      Rel.id_of_set
        (set (fun e -> e.dir = E.F && (e.annot = E.Wmb || e.annot = E.Mb)));
    acq_f =
      Rel.id_of_set
        (set (fun e -> e.dir = E.F && (e.annot = E.Rmb || e.annot = E.Mb)));
    sc_f = set (fun e -> e.dir = E.F && e.annot = E.Mb);
  }

(* synchronizes-with, including the four fence shapes of 32.9 [atomics.fences]. *)
let sw (x : Exec.t) s =
  let ( |>> ) = Rel.seq in
  let w_id = Rel.id_of_set x.writes and r_id = Rel.id_of_set x.reads in
  let direct = s.rel_w |>> x.rf |>> s.acq_r in
  let w_to_fence = s.rel_w |>> x.rf |>> r_id |>> x.po |>> s.acq_f in
  let fence_to_r = s.rel_f |>> x.po |>> w_id |>> x.rf |>> s.acq_r in
  let fence_to_fence =
    s.rel_f |>> x.po |>> w_id |>> x.rf |>> r_id |>> x.po |>> s.acq_f
  in
  List.fold_left Rel.union direct [ w_to_fence; fence_to_r; fence_to_fence ]

let hb (x : Exec.t) s = Rel.transitive_closure (Rel.union x.po (sw x s))

let eco (x : Exec.t) =
  Rel.transitive_closure (Rel.union x.rf (Rel.union x.co x.fr))

(* The order S must extend; acyclicity of this is existence of S. *)
let sc_order (x : Exec.t) s hb_rel =
  let ( |>> ) = Rel.seq in
  let sc_id = Rel.id_of_set s.sc_f in
  let hb_between = sc_id |>> hb_rel |>> sc_id in
  let observation =
    sc_id |>> x.po |>> Rel.union x.fr x.co |>> x.po |>> sc_id
  in
  Rel.union hb_between observation

let consistent (x : Exec.t) =
  let s = classify x in
  let hb_rel = hb x s in
  let coherence =
    Rel.is_irreflexive
      (Rel.seq hb_rel (Rel.reflexive_closure ~universe:x.universe (eco x)))
  in
  let atomicity = Rel.is_empty (Rel.inter x.rmw (Rel.seq x.fre x.coe)) in
  let sc = Rel.is_acyclic (sc_order x s hb_rel) in
  coherence && atomicity && sc

(* ------------------------------------------------------------------ *)
(* The strengthened SC-fence semantics (RC11 / "Overhauling SC atomics",
   later adopted): fences restore sequential consistency via psc.  Under
   this repair, RWC+mbs and PeterZ flip to Forbidden — the ablation bench
   quantifies exactly the delta discussed in Section 5.2.                *)
(* ------------------------------------------------------------------ *)

module Strengthened = struct
  let name = "C11-psc"
  let applicable = applicable

  let consistent (x : Exec.t) =
    let s = classify x in
    let hb_rel = hb x s in
    let coherence =
      Rel.is_irreflexive
        (Rel.seq hb_rel (Rel.reflexive_closure ~universe:x.universe (eco x)))
    in
    let atomicity = Rel.is_empty (Rel.inter x.rmw (Rel.seq x.fre x.coe)) in
    let sc_id = Rel.id_of_set s.sc_f in
    let psc =
      Rel.seq sc_id
        (Rel.seq
           (Rel.union hb_rel
              (Rel.seq hb_rel (Rel.seq (eco x) hb_rel)))
           sc_id)
    in
    coherence && atomicity && Rel.is_acyclic psc
end
