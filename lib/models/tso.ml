(* x86-TSO: program order is preserved except write-to-read (the store
   buffer), smp_mb drains the buffer, and writes are multi-copy atomic.
   The standard axiomatisation: ghb := ppo U implied-fences U rfe U co U fr
   must be acyclic, plus per-location SC and rmw atomicity.

   LK primitives map to x86 as: smp_mb -> mfence; smp_rmb / smp_wmb /
   acquire / release -> compiler-only (TSO already provides the
   ordering). *)

let name = "x86-TSO"

let consistent (x : Exec.t) =
  let w_to_r =
    Rel.filter
      (fun a b ->
        Exec.Event.is_write x.events.(a) && Exec.Event.is_read x.events.(b))
      x.po
  in
  (* po minus the store-buffer relaxation, restricted to memory events *)
  let ppo =
    Rel.filter
      (fun a b ->
        Exec.Event.is_mem x.events.(a) && Exec.Event.is_mem x.events.(b))
      (Rel.diff x.po w_to_r)
  in
  let mb_fences =
    Exec.events_where x (fun e -> e.annot = Exec.Event.Mb)
  in
  (* any access before an mfence is ordered with any access after it *)
  let implied =
    Rel.seq
      (Rel.seq x.po (Rel.id_of_set mb_fences))
      x.po
  in
  (* full xchg is a locked instruction: both its events order like a fence
     with everything around them; approximate via the rmw pair itself plus
     the implied fences the LK mapping inserts (xchg already carries
     F[mb] events in our event decomposition, so nothing more needed). *)
  let ghb =
    List.fold_left Rel.union ppo [ implied; x.rfe; x.co; x.fr ]
  in
  Rel.is_acyclic ghb
  && Rel.is_acyclic (Rel.union x.po_loc x.com)
  && Rel.is_empty (Rel.inter x.rmw (Rel.seq x.fre x.coe))
