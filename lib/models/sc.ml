(* Sequential consistency (Lamport): one interleaving explains everything.
   Axiomatically: po together with all communications is acyclic. *)

let name = "SC"

let consistent (x : Exec.t) =
  Rel.is_acyclic (Rel.union x.po x.com)
  && Rel.is_empty (Rel.inter x.rmw (Rel.seq x.fre x.coe))
