(* Binary relations over event identifiers, the algebraic substrate of
   axiomatic memory models (herd's kernel).

   The representation is a dense bit matrix over the small integer event
   universe: one bit vector (row) per source event, packed into a single
   int array at 63 bits per word.  Union, intersection, difference and
   relational composition are word-parallel; transitive closure is
   Warshall's algorithm at O(n³/63); acyclicity is a DFS that never
   materialises the closure.  Every operation is persistent — arrays are
   copied, never shared mutably — so the functional interface of the
   original pair-set implementation (retained as {!Reference}) is
   unchanged.

   Capacity is an implementation detail: a relation knows the smallest
   universe [0, n) enclosing every pair ever added, rows grow on demand,
   and all observable behaviour (equality included) is capacity-
   independent. *)

module Iset = Iset
module Reference = Rel_ref

let bpw = 63 (* usable bits in an OCaml int *)

(* Words touched by the word-parallel ops, at op granularity: map2 ops
   charge the result array, composition/closure/acyclicity charge one
   row per row OR-ed or visited.  Self-guarded: free when Obs is off. *)
let words_touched = Obs.Counter.make "rel.words"

type t = {
  n : int; (* row capacity: both endpoints of every pair are < n *)
  w : int; (* words per row: (n + bpw - 1) / bpw *)
  bits : int array; (* n * w words; row i occupies [i*w, (i+1)*w) *)
}

let words n = (n + bpw - 1) / bpw
let empty = { n = 0; w = 0; bits = [||] }

(* Number of trailing zeros of a one-bit word (b = x land (-x)). *)
let ntz b =
  let n = ref 0 and b = ref b in
  if !b land 0x7FFFFFFF = 0 then begin n := !n + 31; b := !b lsr 31 end;
  if !b land 0xFFFF = 0 then begin n := !n + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin n := !n + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin n := !n + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin n := !n + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr n;
  !n

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    incr c;
    x := !x land (!x - 1)
  done;
  !c

let check_ids x y =
  if x < 0 || y < 0 then invalid_arg "Rel: negative event id"

(* A copy grown to capacity [c] (identity if already big enough). *)
let grow c t =
  if c <= t.n then t
  else begin
    let w = words c in
    let bits = Array.make (c * w) 0 in
    for i = 0 to t.n - 1 do
      Array.blit t.bits (i * t.w) bits (i * w) t.w
    done;
    { n = c; w; bits }
  end

let align t1 t2 =
  let c = max t1.n t2.n in
  (grow c t1, grow c t2)

let is_empty t = Array.for_all (fun w -> w = 0) t.bits

let mem x y t =
  x >= 0 && y >= 0 && x < t.n && y < t.n
  && t.bits.((x * t.w) + (y / bpw)) land (1 lsl (y mod bpw)) <> 0

(* Mutable bit set, used only on freshly-allocated arrays. *)
let set_bit bits w x y =
  let i = (x * w) + (y / bpw) in
  bits.(i) <- bits.(i) lor (1 lsl (y mod bpw))

let add x y t =
  check_ids x y;
  if mem x y t then t
  else begin
    let t =
      if max x y < t.n then { t with bits = Array.copy t.bits }
      else grow (max x y + 1) t
    in
    set_bit t.bits t.w x y;
    t
  end

let remove x y t =
  if not (mem x y t) then t
  else begin
    let bits = Array.copy t.bits in
    let i = (x * t.w) + (y / bpw) in
    bits.(i) <- bits.(i) land lnot (1 lsl (y mod bpw));
    { t with bits }
  end

let of_list ps =
  let c =
    List.fold_left
      (fun c (x, y) ->
        check_ids x y;
        max c (max x y + 1))
      0 ps
  in
  let w = words c in
  let bits = Array.make (c * w) 0 in
  List.iter (fun (x, y) -> set_bit bits w x y) ps;
  { n = c; w; bits }

let singleton x y = add x y empty

(* Iterate the successors of row [i] in increasing order. *)
let iter_row f t i =
  let base = i * t.w in
  for wi = 0 to t.w - 1 do
    let word = ref t.bits.(base + wi) in
    let off = wi * bpw in
    while !word <> 0 do
      let b = !word land (- !word) in
      f (off + ntz b);
      word := !word lxor b
    done
  done

(* Pairs in increasing lexicographic order, like the pair-set's fold. *)
let iter f t =
  for i = 0 to t.n - 1 do
    iter_row (fun j -> f i j) t i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun x y -> acc := f x y !acc) t;
  !acc

let to_list t = List.rev (fold (fun x y acc -> (x, y) :: acc) t [])
let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.bits

let equal t1 t2 =
  let t1, t2 = align t1 t2 in
  let rec go i =
    i < 0 || (t1.bits.(i) = t2.bits.(i) && go (i - 1))
  in
  go (Array.length t1.bits - 1)

let subset t1 t2 =
  let t1, t2 = align t1 t2 in
  let rec go i =
    i < 0 || (t1.bits.(i) land lnot t2.bits.(i) = 0 && go (i - 1))
  in
  go (Array.length t1.bits - 1)

let map2_words op t1 t2 =
  let t1, t2 = align t1 t2 in
  Obs.Counter.add words_touched (Array.length t1.bits);
  { t1 with bits = Array.init (Array.length t1.bits) (fun i -> op t1.bits.(i) t2.bits.(i)) }

let union = map2_words ( lor )
let inter = map2_words ( land )
let diff = map2_words (fun a b -> a land lnot b)

let filter f t =
  let bits = Array.make (Array.length t.bits) 0 in
  iter (fun x y -> if f x y then set_bit bits t.w x y) t;
  { t with bits }

let exists f t =
  let exception Found in
  try
    iter (fun x y -> if f x y then raise Found) t;
    false
  with Found -> true

let for_all f t = not (exists (fun x y -> not (f x y)) t)

let inverse t =
  let bits = Array.make (Array.length t.bits) 0 in
  iter (fun x y -> set_bit bits t.w y x) t;
  { t with bits }

let domain t =
  let acc = ref Iset.empty in
  for i = 0 to t.n - 1 do
    let base = i * t.w in
    let nonzero = ref false in
    for wi = 0 to t.w - 1 do
      if t.bits.(base + wi) <> 0 then nonzero := true
    done;
    if !nonzero then acc := Iset.add i !acc
  done;
  !acc

let range t =
  (* OR every row into one vector, then read its bits off. *)
  let row = Array.make t.w 0 in
  for i = 0 to t.n - 1 do
    let base = i * t.w in
    for wi = 0 to t.w - 1 do
      row.(wi) <- row.(wi) lor t.bits.(base + wi)
    done
  done;
  let acc = ref Iset.empty in
  for wi = 0 to t.w - 1 do
    let word = ref row.(wi) in
    let off = wi * bpw in
    while !word <> 0 do
      let b = !word land (- !word) in
      acc := Iset.add (off + ntz b) !acc;
      word := !word lxor b
    done
  done;
  !acc

let field t = Iset.union (domain t) (range t)

let seq t1 t2 =
  let t1, t2 = align t1 t2 in
  let n = t1.n and w = t1.w in
  let bits = Array.make (n * w) 0 in
  for i = 0 to n - 1 do
    let base = i * w in
    iter_row
      (fun j ->
        Obs.Counter.add words_touched w;
        let jbase = j * w in
        for k = 0 to w - 1 do
          bits.(base + k) <- bits.(base + k) lor t2.bits.(jbase + k)
        done)
      t1 i
  done;
  { n; w; bits }

let rec seqs = function
  | [] -> invalid_arg "Rel.seqs: empty list"
  | [ t ] -> t
  | t :: ts -> seq t (seqs ts)

(* [set_row_from ~src j i t]: [t] with the successor row of [i] replaced
   wholesale by row [j] of [src] — the delta-patch primitive: when a
   read's writer changes from [w] to [w'], its from-reads row becomes
   exactly the coherence row of [w']. *)
let set_row_from ~src j i t =
  check_ids i j;
  let c = max (max src.n t.n) (max i j + 1) in
  let src = grow c src and t = grow c t in
  let bits = Array.copy t.bits in
  Array.blit src.bits (j * src.w) bits (i * t.w) t.w;
  { t with bits }

let id_of_set s = Iset.fold (fun x acc -> add x x acc) s empty
let id_of_list xs = List.fold_left (fun acc x -> add x x acc) empty xs

(* The bit-vector mask of an integer set, at [w] words. *)
let mask_of_set w s =
  let m = Array.make (max w 1) 0 in
  Iset.iter (fun x -> m.(x / bpw) <- m.(x / bpw) lor (1 lsl (x mod bpw))) s;
  m

let cartesian s1 s2 =
  if Iset.is_empty s1 || Iset.is_empty s2 then empty
  else begin
    let c = max (Iset.max_elt s1) (Iset.max_elt s2) + 1 in
    if Iset.min_elt s1 < 0 || Iset.min_elt s2 < 0 then
      invalid_arg "Rel.cartesian: negative event id";
    let w = words c in
    let m = mask_of_set w s2 in
    let bits = Array.make (c * w) 0 in
    Iset.iter (fun i -> Array.blit m 0 bits (i * w) w) s1;
    { n = c; w; bits }
  end

let restrict_domain s t =
  let bits = Array.copy t.bits in
  for i = 0 to t.n - 1 do
    if not (Iset.mem i s) then Array.fill bits (i * t.w) t.w 0
  done;
  { t with bits }

let restrict_range s t =
  let m = mask_of_set t.w (Iset.filter (fun x -> x >= 0 && x < t.n) s) in
  let bits =
    Array.init (Array.length t.bits) (fun i -> t.bits.(i) land m.(i mod t.w))
  in
  { t with bits }

let restrict s t = restrict_domain s (restrict_range s t)

let transitive_closure t =
  (* Warshall: after round k, paths through intermediates <= k are edges. *)
  let n = t.n and w = t.w in
  let bits = Array.copy t.bits in
  for k = 0 to n - 1 do
    let kw = k / bpw and kb = 1 lsl (k mod bpw) in
    let kbase = k * w in
    for i = 0 to n - 1 do
      let ibase = i * w in
      if bits.(ibase + kw) land kb <> 0 then begin
        Obs.Counter.add words_touched w;
        for m = 0 to w - 1 do
          bits.(ibase + m) <- bits.(ibase + m) lor bits.(kbase + m)
        done
      end
    done
  done;
  { t with bits }

let reflexive_closure ~universe t = union t (id_of_set universe)

let reflexive_transitive_closure ~universe t =
  reflexive_closure ~universe (transitive_closure t)

let complement ~universe t = diff (cartesian universe universe) t

let is_irreflexive t =
  let rec go i = i >= t.n || ((not (mem i i t)) && go (i + 1)) in
  go 0

let is_acyclic t =
  (* Three-colour DFS over the successor rows; no closure is built, so a
     verdict on an already-cyclic relation costs O(V + E). *)
  let exception Cyclic in
  let color = Array.make t.n 0 in
  (* 0 white, 1 on stack, 2 done *)
  let rec visit i =
    color.(i) <- 1;
    Obs.Counter.add words_touched t.w;
    iter_row
      (fun j ->
        match color.(j) with
        | 0 -> visit j
        | 1 -> raise Cyclic
        | _ -> ())
      t i;
    color.(i) <- 2
  in
  try
    for i = 0 to t.n - 1 do
      if color.(i) = 0 then visit i
    done;
    true
  with Cyclic -> false

let find_cycle t =
  (* A shortest witness cycle, as a list of events [e0; e1; ...; en] with
     (ei, ei+1) in [t] and e0 = en; [None] if acyclic.  Used to explain
     verdicts, so we prefer short cycles: BFS from each event, bailing
     out as soon as nothing shorter can exist — a self-loop ([x; x],
     length 2) immediately, a 2-cycle ([x; y; x], length 3) once the
     diagonal is known clean — so --explain paths don't pay O(V·E) on
     every already-failed check. *)
  let exception Done of int list in
  try
    for i = 0 to t.n - 1 do
      if mem i i t then raise (Done [ i; i ])
    done;
    let best = ref None in
    let best_len = ref max_int in
    for start = 0 to t.n - 1 do
      if !best_len > 3 then begin
        (* BFS from [start] for the shortest path back to it. *)
        let parent = Array.make t.n (-1) in
        let q = Queue.create () in
        iter_row
          (fun y ->
            if parent.(y) < 0 then begin
              parent.(y) <- start;
              Queue.add y q
            end)
          t start;
        let found = ref false in
        while (not !found) && not (Queue.is_empty q) do
          let x = Queue.pop q in
          iter_row
            (fun y ->
              if (not !found) && y = start then begin
                let rec back acc v =
                  if v = start then start :: acc
                  else back (v :: acc) parent.(v)
                in
                let path = back [ start ] x in
                let len = List.length path in
                if len < !best_len then begin
                  best := Some path;
                  best_len := len
                end;
                found := true
              end
              else if parent.(y) < 0 then begin
                parent.(y) <- x;
                Queue.add y q
              end)
            t x
        done
      end
    done;
    !best
  with Done path -> Some path

let topological_sort ~universe t =
  (* Kahn's algorithm with in-degree counts, restricted to edges within
     the universe; picks the smallest ready event each round, so the
     order is the lexicographically least one (as the pair-set
     implementation produced). *)
  let t = restrict universe t in
  let members = Iset.to_list universe in
  let total = List.length members in
  if total = 0 then Some []
  else begin
    let c = Iset.max_elt universe + 1 in
    let t = grow c t in
    let in_universe = Array.make c false in
    List.iter (fun x -> in_universe.(x) <- true) members;
    let indeg = Array.make c 0 in
    iter (fun _ y -> indeg.(y) <- indeg.(y) + 1) t;
    let remaining = Array.copy in_universe in
    let out = ref [] and placed = ref 0 and stuck = ref false in
    while (not !stuck) && !placed < total do
      (* smallest remaining event with no incoming edge *)
      let x = ref (-1) in
      (try
         for i = 0 to c - 1 do
           if remaining.(i) && indeg.(i) = 0 then begin
             x := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !x < 0 then stuck := true (* every remaining event is on a cycle *)
      else begin
        remaining.(!x) <- false;
        incr placed;
        out := !x :: !out;
        iter_row (fun y -> indeg.(y) <- indeg.(y) - 1) t !x
      end
    done;
    if !stuck then None else Some (List.rev !out)
  end

let linear_extensions elems =
  (* All total orders of [elems], as relations; used to enumerate coherence
     orders.  [elems] has at most a handful of entries per location.
     Removal is positional, not by value: filtering out every copy of a
     repeated element would silently drop elements and miscount the
     permutations of a multiset. *)
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        let rec pick pre = function
          | [] -> []
          | x :: rest ->
              List.map
                (fun p -> x :: p)
                (perms (List.rev_append pre rest))
              @ pick (x :: pre) rest
        in
        pick [] xs
  in
  let order_of_list l =
    let rec go acc = function
      | [] -> acc
      | x :: rest ->
          go (List.fold_left (fun acc y -> add x y acc) acc rest) rest
    in
    go empty l
  in
  List.map order_of_list (perms elems)

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any "->") int int))
    (to_list t)

(* ------------------------------------------------------------------ *)
(* Candidate-major bit planes                                          *)
(* ------------------------------------------------------------------ *)

(* The scalar rows above pack one relation's successors into 63-bit
   words, which wastes most of each word on litmus-sized universes
   (n ≈ 8–16 events).  Candidates of one event structure differ only in
   their witness relations over the *same* universe, so the batched
   layout transposes the packing: one word per event *pair* (x, y),
   bit c meaning "edge (x, y) is present in candidate c".  The algebra
   then evaluates up to 63 candidates in the same pass, and per-plane
   masks let decided candidates drop out ([restrict]) so they stop
   costing work: sequence and closure skip zero pair-words.

   The universe [0, n) is fixed at construction (all candidates of one
   structure share it); binary operations require equal universes.
   Operations are persistent, like the scalar ones. *)
module Batch = struct
  type rel = t

  let width = bpw (* planes per batch: the usable bits of an int *)

  (* All-ones over the low [k] bits.  [k = 63] needs the special case:
     [1 lsl 63] is out of range for a shift on a 63-bit int, and [-1]
     is exactly the 63 ones wanted.  ([k = 62] is fine by wraparound:
     [1 lsl 62] is [min_int] and [min_int - 1] is [max_int], the 62
     low ones.) *)
  let full_mask k =
    if k < 0 || k > width then invalid_arg "Batch.full_mask"
    else if k = width then -1
    else (1 lsl k) - 1

  let batch_words = Obs.Counter.make "rel.batch.words"

  type t = {
    bn : int; (* universe size: planes are over pairs in [0, bn)² *)
    planes : int array; (* bn * bn words; pair (x, y) at index x*bn + y *)
  }

  let n t = t.bn
  let create ~n = { bn = n; planes = Array.make (n * n) 0 }

  let check2 a b =
    if a.bn <> b.bn then invalid_arg "Batch: universe size mismatch"

  let of_rels ~n ?mask (rels : rel array) =
    let k = Array.length rels in
    if k > width then invalid_arg "Batch.of_rels: more than 63 candidates";
    let mask = match mask with Some m -> m | None -> full_mask k in
    let planes = Array.make (n * n) 0 in
    Array.iteri
      (fun c r ->
        let bit = 1 lsl c in
        if mask land bit <> 0 then
          iter
            (fun x y ->
              if x >= n || y >= n then
                invalid_arg "Batch.of_rels: id out of universe";
              planes.((x * n) + y) <- planes.((x * n) + y) lor bit)
            r)
      rels;
    { bn = n; planes }

  (* The lift of a static, witness-independent relation: [r] in every
     plane of [mask], the empty relation elsewhere. *)
  let broadcast ~n ~mask (r : rel) =
    let planes = Array.make (n * n) 0 in
    iter
      (fun x y ->
        if x >= n || y >= n then
          invalid_arg "Batch.broadcast: id out of universe";
        planes.((x * n) + y) <- mask)
      r;
    { bn = n; planes }

  (* Plane [c], back as a scalar relation (tests, forensics). *)
  let plane t c =
    let bit = 1 lsl c in
    let acc = ref empty in
    for x = 0 to t.bn - 1 do
      for y = 0 to t.bn - 1 do
        if t.planes.((x * t.bn) + y) land bit <> 0 then acc := add x y !acc
      done
    done;
    !acc

  let map2 op a b =
    check2 a b;
    Obs.Counter.add batch_words (Array.length a.planes);
    {
      a with
      planes =
        Array.init (Array.length a.planes) (fun i ->
            op a.planes.(i) b.planes.(i));
    }

  let union = map2 ( lor )
  let inter = map2 ( land )
  let diff = map2 (fun x y -> x land lnot y)

  (* Relational composition, all planes at once: out(x, z) gets bit c
     iff some y has (x, y) and (y, z) in plane c.  The inner loop runs
     only for nonzero (x, y) words, so decided (zeroed) planes and
     sparse relations cost nothing. *)
  let seq a b =
    check2 a b;
    let n = a.bn in
    let out = Array.make (n * n) 0 in
    for x = 0 to n - 1 do
      let xb = x * n in
      for y = 0 to n - 1 do
        let v = a.planes.(xb + y) in
        if v <> 0 then begin
          Obs.Counter.add batch_words n;
          let yb = y * n in
          for z = 0 to n - 1 do
            out.(xb + z) <- out.(xb + z) lor (v land b.planes.(yb + z))
          done
        end
      done
    done;
    { bn = n; planes = out }

  let inverse t =
    let n = t.bn in
    let out = Array.make (n * n) 0 in
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        out.((y * n) + x) <- t.planes.((x * n) + y)
      done
    done;
    { bn = n; planes = out }

  (* Warshall over planes: after round k, paths through intermediates
     <= k are edges — in every plane at once. *)
  let transitive_closure t =
    let n = t.bn in
    let p = Array.copy t.planes in
    for k = 0 to n - 1 do
      let kb = k * n in
      for i = 0 to n - 1 do
        let ib = i * n in
        let v = p.(ib + k) in
        if v <> 0 then begin
          Obs.Counter.add batch_words n;
          for j = 0 to n - 1 do
            p.(ib + j) <- p.(ib + j) lor (v land p.(kb + j))
          done
        end
      done
    done;
    { t with planes = p }

  (* The diagonal set in the planes of [mask]: reflexive closure over
     the full universe [0, n). *)
  let reflexive_closure ~mask t =
    let n = t.bn in
    let p = Array.copy t.planes in
    for i = 0 to n - 1 do
      p.((i * n) + i) <- p.((i * n) + i) lor mask
    done;
    { t with planes = p }

  let reflexive_transitive_closure ~mask t =
    reflexive_closure ~mask (transitive_closure t)

  let complement ~mask t =
    Obs.Counter.add batch_words (Array.length t.planes);
    { t with planes = Array.map (fun w -> mask land lnot w) t.planes }

  (* Zero the planes outside [mask]: the batched early-exit. *)
  let restrict ~mask t =
    Obs.Counter.add batch_words (Array.length t.planes);
    { t with planes = Array.map (fun w -> w land mask) t.planes }

  let equal a b =
    a.bn = b.bn
    &&
    let rec go i = i < 0 || (a.planes.(i) = b.planes.(i) && go (i - 1)) in
    go (Array.length a.planes - 1)

  (* Mask of planes in which edge (x, y) is present. *)
  let mem x y t =
    if x < 0 || y < 0 || x >= t.bn || y >= t.bn then 0
    else t.planes.((x * t.bn) + y)

  (* Per-plane decision masks: one bit per candidate, answering the
     cat-style checks for every plane in one scan. *)

  let nonempty_mask t = Array.fold_left ( lor ) 0 t.planes

  let reflexive_mask t =
    let n = t.bn in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lor t.planes.((i * n) + i)
    done;
    !acc

  (* Planes whose relation has a cycle: the closure's diagonal. *)
  let cyclic_mask t = reflexive_mask (transitive_closure t)

  let irreflexive_mask ~mask t = mask land lnot (reflexive_mask t)
  let acyclic_mask ~mask t = mask land lnot (cyclic_mask t)
  let empty_mask ~mask t = mask land lnot (nonempty_mask t)
end
