(** Binary relations over event identifiers.

    Candidate executions of litmus tests are graphs whose nodes are events
    (identified by small dense integers) and whose edges form relations such
    as program order [po] or reads-from [rf].  A consistency model written in
    the cat style is a set of constraints ([acyclic], [irreflexive], [empty])
    over relations built with the operators below.  This module is the entire
    algebra: sets of pairs plus union, intersection, difference, sequence,
    inverse, closures, cartesian products, and (a)cyclicity tests.

    The implementation is a dense bit matrix (a row of bits per source
    event), so the bulk operations are word-parallel and transitive
    closure runs in O(n³/63); the original pair-set implementation is
    retained as {!Reference} and checked against this one by the
    differential property suite.  Event ids must be non-negative. *)

module Iset = Iset

(** The retained pair-set implementation: the same algebra on the same
    pair-list interface, kept as the executable specification of this
    module (and exercised against it by test/test_rel_dense.ml). *)
module Reference = Rel_ref

type t
(** A finite binary relation over event ids. *)

val empty : t

(** [is_empty t] holds iff [t] has no pairs — the cat [empty] check. *)
val is_empty : t -> bool

(** [mem x y t] holds iff [(x, y)] is an edge of [t]. *)
val mem : int -> int -> t -> bool

val add : int -> int -> t -> t

(** [remove x y t] is [t] without the edge [(x, y)]. *)
val remove : int -> int -> t -> t

val singleton : int -> int -> t
val of_list : (int * int) list -> t

(** Pairs in lexicographic order. *)
val to_list : t -> (int * int) list

val cardinal : t -> int
val equal : t -> t -> bool

(** [subset t1 t2] holds iff every edge of [t1] is an edge of [t2]. *)
val subset : t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t

(** [diff t1 t2] is set difference, the cat [\ ] operator. *)
val diff : t -> t -> t

val filter : (int -> int -> bool) -> t -> t
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> unit) -> t -> unit
val exists : (int -> int -> bool) -> t -> bool
val for_all : (int -> int -> bool) -> t -> bool

(** [inverse t] is the converse relation, the cat [^-1] operator. *)
val inverse : t -> t

val domain : t -> Iset.t
val range : t -> Iset.t

(** [field t] is [domain t ∪ range t]. *)
val field : t -> Iset.t

(** [seq t1 t2] is relational composition [t1 ; t2]:
    [{(x, z) | ∃y. (x, y) ∈ t1 ∧ (y, z) ∈ t2}]. *)
val seq : t -> t -> t

(** [seqs [t1; ...; tn]] is [t1 ; ... ; tn].  Raises [Invalid_argument] on
    the empty list. *)
val seqs : t list -> t

(** [set_row_from ~src j i t] is [t] with the successor row of [i]
    replaced wholesale by row [j] of [src] — the delta-patch primitive
    of the incremental enumerator: when a read's writer changes from
    [w] to [w'], its from-reads row becomes exactly the coherence row
    of [w']. *)
val set_row_from : src:t -> int -> int -> t -> t

(** [id_of_set s] is the identity relation restricted to [s] — the cat
    bracket [[S]].  [seq [S] r] keeps edges of [r] whose source is in [S]. *)
val id_of_set : Iset.t -> t

val id_of_list : int list -> t

(** [cartesian s1 s2] is the direct product [s1 × s2]. *)
val cartesian : Iset.t -> Iset.t -> t

val restrict_domain : Iset.t -> t -> t
val restrict_range : Iset.t -> t -> t

(** [restrict s t] keeps edges with both endpoints in [s]. *)
val restrict : Iset.t -> t -> t

(** [transitive_closure t] is [t^+]. *)
val transitive_closure : t -> t

(** [reflexive_closure ~universe t] is [t^?]: [t ∪ id] over [universe]. *)
val reflexive_closure : universe:Iset.t -> t -> t

(** [reflexive_transitive_closure ~universe t] is [t^*]. *)
val reflexive_transitive_closure : universe:Iset.t -> t -> t

(** [complement ~universe t] is [universe² \ t], the cat [~] operator. *)
val complement : universe:Iset.t -> t -> t

(** The cat [irreflexive] check: no pair [(x, x)]. *)
val is_irreflexive : t -> bool

(** The cat [acyclic] check: [t^+] is irreflexive. *)
val is_acyclic : t -> bool

(** [find_cycle t] is a shortest cycle [e0; e1; ...; e0] of [t] (first and
    last elements equal), or [None] if [t] is acyclic.  Used to explain why
    an execution is forbidden. *)
val find_cycle : t -> int list option

(** [topological_sort ~universe t] is a linearisation of [universe]
    compatible with [t], or [None] if [t] is cyclic. *)
val topological_sort : universe:Iset.t -> t -> int list option

(** [linear_extensions elems] enumerates all total strict orders over
    [elems], as relations.  Used to enumerate coherence orders per
    location. *)
val linear_extensions : int list -> t list

val pp : t Fmt.t

(** Candidate-major bit planes: up to 63 relations over one small event
    universe, operated on word-parallel.

    The scalar rows above pack one relation's successors into 63-bit
    words, wasting most of each word on litmus-sized universes.
    Candidates of one event structure differ only in their witness
    relations over the {e same} universe, so this module transposes the
    packing: one word per event pair [(x, y)], bit [c] meaning "edge
    [(x, y)] is present in candidate [c]".  The algebra below evaluates
    all K ≤ 63 candidates in the same pass, and per-plane masks let
    decided candidates drop out ({!Batch.restrict}) so they stop
    costing work.

    The universe [[0, n)] is fixed at construction; binary operations
    require equal universes.  All operations are persistent. *)
module Batch : sig
  type rel := t

  type t
  (** A batch of up to {!width} relation planes over one universe. *)

  (** Planes per batch: 63, the usable bits of an OCaml [int]. *)
  val width : int

  (** [full_mask k] has the low [k] bits set ([0 <= k <= width]). *)
  val full_mask : int -> int

  val n : t -> int

  (** The batch of [n]² empty planes. *)
  val create : n:int -> t

  (** [of_rels ~n ?mask rels] stacks [rels.(c)] into plane [c], keeping
      only the planes selected by [mask] (default: all).  Raises
      [Invalid_argument] beyond {!width} relations or on ids outside
      [[0, n)]. *)
  val of_rels : n:int -> ?mask:int -> rel array -> t

  (** [broadcast ~n ~mask r] holds the (witness-independent) relation
      [r] in every plane of [mask], and the empty relation elsewhere. *)
  val broadcast : n:int -> mask:int -> rel -> t

  (** Plane [c], back as a scalar relation. *)
  val plane : t -> int -> rel

  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  (** Relational composition, per plane; zero pair-words (decided
      planes, sparse relations) skip the inner loop. *)
  val seq : t -> t -> t

  val inverse : t -> t

  (** Warshall's closure across all planes at once. *)
  val transitive_closure : t -> t

  (** [reflexive_closure ~mask t] sets the diagonal in the planes of
      [mask] — [t?] over the full universe [[0, n)]. *)
  val reflexive_closure : mask:int -> t -> t

  val reflexive_transitive_closure : mask:int -> t -> t

  (** [complement ~mask t] is universe² \ t in each plane of [mask]. *)
  val complement : mask:int -> t -> t

  (** [restrict ~mask t] zeroes every plane outside [mask]; the batched
      early-exit: decided candidates' planes stop costing work. *)
  val restrict : mask:int -> t -> t

  val equal : t -> t -> bool

  (** [mem x y t] is the mask of planes containing edge [(x, y)]. *)
  val mem : int -> int -> t -> int

  (** Mask of planes whose relation is non-empty / has a diagonal
      edge / has a cycle — the cat checks, decided for all planes in
      one scan. *)
  val nonempty_mask : t -> int

  val reflexive_mask : t -> int
  val cyclic_mask : t -> int

  (** The same checks relative to a mask of still-undecided planes:
      [acyclic_mask ~mask t] is the planes of [mask] whose relation is
      acyclic, and so on. *)
  val acyclic_mask : mask:int -> t -> int

  val irreflexive_mask : mask:int -> t -> int
  val empty_mask : mask:int -> t -> int
end
