(* Sets of event identifiers (small dense integers). *)

include Set.Make (Int)

let of_range lo hi =
  let rec go acc i = if i > hi then acc else go (add i acc) (i + 1) in
  go empty lo

let to_list t = elements t

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
