(** Reference implementation of the relation algebra ({!Rel}'s executable
    specification): a [Set.Make] over ordered pairs, operation for
    operation the same interface as the dense bitset kernel.  Used by the
    differential property suite and as a readable statement of what each
    operator means; not used on any hot path. *)

type t

val empty : t
val is_empty : t -> bool
val mem : int -> int -> t -> bool
val add : int -> int -> t -> t
val singleton : int -> int -> t
val of_list : (int * int) list -> t

(** Pairs in lexicographic order. *)
val to_list : t -> (int * int) list

val cardinal : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val filter : (int -> int -> bool) -> t -> t
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> unit) -> t -> unit
val exists : (int -> int -> bool) -> t -> bool
val for_all : (int -> int -> bool) -> t -> bool
val inverse : t -> t
val domain : t -> Iset.t
val range : t -> Iset.t
val field : t -> Iset.t
val seq : t -> t -> t
val seqs : t list -> t
val id_of_set : Iset.t -> t
val id_of_list : int list -> t
val cartesian : Iset.t -> Iset.t -> t
val restrict_domain : Iset.t -> t -> t
val restrict_range : Iset.t -> t -> t
val restrict : Iset.t -> t -> t
val transitive_closure : t -> t
val reflexive_closure : universe:Iset.t -> t -> t
val reflexive_transitive_closure : universe:Iset.t -> t -> t
val complement : universe:Iset.t -> t -> t
val is_irreflexive : t -> bool
val is_acyclic : t -> bool
val find_cycle : t -> int list option
val topological_sort : universe:Iset.t -> t -> int list option
val linear_extensions : int list -> t list
val pp : t Fmt.t
