(** Sets of event identifiers (small dense integers).

    This is the set half of the relational algebra used by every axiomatic
    model in the library: the predefined sets of the cat language ([W], [R],
    [F], ...) and every set computed from them are values of this type. *)

include Set.S with type elt = int

(** [of_range lo hi] is the set [{lo, lo+1, ..., hi}] (empty if [lo > hi]). *)
val of_range : int -> int -> t

(** [to_list t] is the elements of [t] in increasing order. *)
val to_list : t -> int list

(** Pretty-printer, e.g. [{0,3,5}]. *)
val pp : t Fmt.t
