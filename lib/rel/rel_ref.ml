(* Reference implementation of the relation algebra: a set of ordered
   pairs of small integers, kept as the executable specification of
   {!Rel}.  The dense bitset kernel in rel.ml is the production
   implementation; this one trades speed for obviousness and is what the
   differential property suite (test/test_rel_dense.ml) checks the dense
   kernel against, op by op. *)

module Pair = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
end

module PS = Set.Make (Pair)

type t = PS.t

let empty = PS.empty
let is_empty = PS.is_empty
let mem x y t = PS.mem (x, y) t
let add x y t = PS.add (x, y) t
let singleton x y = PS.singleton (x, y)
let of_list ps = PS.of_list ps
let to_list t = PS.elements t
let cardinal = PS.cardinal
let equal = PS.equal
let subset = PS.subset
let union = PS.union
let inter = PS.inter
let diff = PS.diff
let filter f t = PS.filter (fun (x, y) -> f x y) t
let fold f t acc = PS.fold (fun (x, y) acc -> f x y acc) t acc
let iter f t = PS.iter (fun (x, y) -> f x y) t
let exists f t = PS.exists (fun (x, y) -> f x y) t
let for_all f t = PS.for_all (fun (x, y) -> f x y) t

let inverse t = fold (fun x y acc -> add y x acc) t empty

let domain t = fold (fun x _ acc -> Iset.add x acc) t Iset.empty
let range t = fold (fun _ y acc -> Iset.add y acc) t Iset.empty
let field t = Iset.union (domain t) (range t)

(* Successor index: event -> sorted list of successors.  Rebuilt on demand;
   relations are tiny. *)
let successors t =
  let tbl = Hashtbl.create 16 in
  iter
    (fun x y ->
      let old = try Hashtbl.find tbl x with Not_found -> [] in
      Hashtbl.replace tbl x (y :: old))
    t;
  fun x -> try Hashtbl.find tbl x with Not_found -> []

let seq t1 t2 =
  let succ2 = successors t2 in
  fold
    (fun x y acc -> List.fold_left (fun acc z -> add x z acc) acc (succ2 y))
    t1 empty

let rec seqs = function
  | [] -> invalid_arg "Rel.seqs: empty list"
  | [ t ] -> t
  | t :: ts -> seq t (seqs ts)

let id_of_set s = Iset.fold (fun x acc -> add x x acc) s empty
let id_of_list xs = List.fold_left (fun acc x -> add x x acc) empty xs

let cartesian s1 s2 =
  Iset.fold (fun x acc -> Iset.fold (fun y acc -> add x y acc) s2 acc) s1 empty

let restrict_domain s t = filter (fun x _ -> Iset.mem x s) t
let restrict_range s t = filter (fun _ y -> Iset.mem y s) t
let restrict s t = filter (fun x y -> Iset.mem x s && Iset.mem y s) t

let transitive_closure t =
  (* Kleene iteration; |E| is small. *)
  let rec go acc =
    let next = union acc (seq acc t) in
    if equal next acc then acc else go next
  in
  go t

let reflexive_closure ~universe t = union t (id_of_set universe)

let reflexive_transitive_closure ~universe t =
  reflexive_closure ~universe (transitive_closure t)

let complement ~universe t = diff (cartesian universe universe) t

let is_irreflexive t = not (exists (fun x y -> x = y) t)

let is_acyclic t = is_irreflexive (transitive_closure t)

let find_cycle t =
  (* A shortest witness cycle, as a list of events [e0; e1; ...; en] with
     (ei, ei+1) in [t] and e0 = en; [None] if acyclic.  Used to explain
     verdicts, so we prefer short cycles: BFS from each event. *)
  let succ = successors t in
  let nodes = Iset.to_list (field t) in
  let best = ref None in
  let consider path =
    match !best with
    | Some b when List.length b <= List.length path -> ()
    | _ -> best := Some path
  in
  let bfs start =
    let parent = Hashtbl.create 16 in
    let q = Queue.create () in
    List.iter
      (fun y ->
        if y = start then consider [ start; start ]
        else if not (Hashtbl.mem parent y) then begin
          Hashtbl.replace parent y start;
          Queue.add y q
        end)
      (succ start);
    let rec drain () =
      if not (Queue.is_empty q) then begin
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if y = start then begin
              (* reconstruct path start -> ... -> x -> start *)
              let rec back acc v =
                if v = start then start :: acc else back (v :: acc) (Hashtbl.find parent v)
              in
              consider (back [ start ] x)
            end
            else if not (Hashtbl.mem parent y) then begin
              Hashtbl.replace parent y x;
              Queue.add y q
            end)
          (succ x);
        drain ()
      end
    in
    drain ()
  in
  List.iter bfs nodes;
  !best

let topological_sort ~universe t =
  (* Kahn's algorithm; restricted to edges within the universe *)
  let t = restrict universe t in
  if not (is_acyclic t) then None
  else begin
    let remaining = ref universe and edges = ref t and out = ref [] in
    while not (Iset.is_empty !remaining) do
      let ready =
        Iset.filter
          (fun x -> not (exists (fun _ y -> y = x) !edges))
          !remaining
      in
      (* acyclicity guarantees progress *)
      let x = Iset.min_elt ready in
      out := x :: !out;
      remaining := Iset.remove x !remaining;
      edges := filter (fun a _ -> a <> x) !edges
    done;
    Some (List.rev !out)
  end

let linear_extensions elems =
  (* All total orders of [elems], as relations; used to enumerate coherence
     orders.  [elems] has at most a handful of entries per location.
     Removal is positional, not by value: filtering out every copy of a
     repeated element would silently drop elements and miscount the
     permutations of a multiset. *)
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        let rec pick pre = function
          | [] -> []
          | x :: rest ->
              List.map
                (fun p -> x :: p)
                (perms (List.rev_append pre rest))
              @ pick (x :: pre) rest
        in
        pick [] xs
  in
  let order_of_list l =
    let rec go acc = function
      | [] -> acc
      | x :: rest ->
          go (List.fold_left (fun acc y -> add x y acc) acc rest) rest
    in
    go empty l
  in
  List.map order_of_list (perms elems)

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any "->") int int))
    (to_list t)
