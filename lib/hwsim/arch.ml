(* Architecture profiles for the operational simulator — the stand-in for
   the paper's hardware testbed (Section 5.1).  A profile enables the
   reordering features of the machine and sets the scheduling biases that
   govern how often each weak behaviour is exhibited:

   - store_buffer : writes are buffered and commit later (SB, PeterZ-NS);
   - fifo_drain   : the buffer drains in order (TSO) rather than
                    out of order per location (ARM/Power W-W reordering);
   - early_reads  : reads may execute ahead of program order when no
                    fence, dependency or same-location access intervenes
                    (MP, WRC, RWC weak outcomes);
   - alpha_stale  : reads may be satisfied from a stale memory snapshot
                    even through an address dependency, unless an
                    smp_read_barrier_depends intervenes (Alpha).

   None of the profiles executes writes early, so load-buffering (LB)
   outcomes are never produced — matching Table 5, where LB was never
   observed on any tested machine. *)

type t = {
  name : string;
  store_buffer : bool;
  fifo_drain : bool;
  early_reads : bool;
  alpha_stale : bool;
  p_prefetch : float; (* chance of attempting an early read per step *)
  p_drain : float; (* chance of preferring a buffer drain per step *)
  p_stale : float; (* chance a read uses the stale snapshot (Alpha) *)
}

let sc =
  {
    name = "SC";
    store_buffer = false;
    fifo_drain = true;
    early_reads = false;
    alpha_stale = false;
    p_prefetch = 0.;
    p_drain = 0.;
    p_stale = 0.;
  }

let x86 =
  {
    name = "X86";
    store_buffer = true;
    fifo_drain = true;
    early_reads = false;
    alpha_stale = false;
    p_prefetch = 0.;
    p_drain = 0.35;
    p_stale = 0.;
  }

let armv7 =
  {
    name = "ARMv7";
    store_buffer = true;
    fifo_drain = false;
    early_reads = true;
    alpha_stale = false;
    p_prefetch = 0.25;
    p_drain = 0.3;
    p_stale = 0.;
  }

let armv8 =
  {
    name = "ARMv8";
    store_buffer = true;
    fifo_drain = false;
    early_reads = true;
    alpha_stale = false;
    p_prefetch = 0.35;
    p_drain = 0.3;
    p_stale = 0.;
  }

let power8 =
  {
    name = "Power8";
    store_buffer = true;
    fifo_drain = false;
    early_reads = true;
    alpha_stale = false;
    p_prefetch = 0.45;
    p_drain = 0.25;
    p_stale = 0.;
  }

let alpha =
  {
    name = "Alpha";
    store_buffer = true;
    fifo_drain = false;
    early_reads = true;
    alpha_stale = true;
    p_prefetch = 0.35;
    p_drain = 0.3;
    p_stale = 0.35;
  }

(* The Table 5 hardware columns. *)
let table5 = [ power8; armv8; armv7; x86 ]
let all = [ sc; x86; armv7; armv8; power8; alpha ]
let find name = List.find (fun a -> a.name = name) all
