(* The operational weak-memory machine: interprets Kir programs under an
   architecture profile with a randomised scheduler, playing the role of
   the paper's klitmus kernel-module runs.

   Memory is multi-copy atomic (a single versioned store); weak behaviours
   come from three mechanisms, per profile:
   - a per-thread store buffer with out-of-order drain (unless fifo_drain),
     wmb group markers, and head-only drain for releases;
   - early execution of reads ("prefetch") within the current straight-line
     window, blocked by fences, acquires, same-location accesses, and
     register dependencies — address/data/control dependencies are thus
     respected, except that
   - the Alpha profile may satisfy a read from a stale memory snapshot,
     which breaks even address-dependent read pairs unless an
     smp_read_barrier_depends refreshed the snapshot. *)

open Kir

type buf_entry = { key : string; v : int; release : bool; group : int }

type wait = Wait_gp of (int * int) list (* (tid, epoch) at GP start *)

type thread = {
  tid : int;
  regs : (string, int) Hashtbl.t;
  floors : (string, int) Hashtbl.t; (* per-location coherence floor *)
  stale : (string, int * int) Hashtbl.t; (* Alpha snapshot: key -> v, ver *)
  mutable conts : stmt list;
  mutable buf : buf_entry list; (* oldest first *)
  mutable group : int;
  mutable nesting : int; (* native RCU read-side nesting *)
  mutable epoch : int; (* bumped at each outermost rcu_read_unlock *)
  mutable waiting : wait option;
  mutable stall : int; (* remaining steps of a preemption / msleep stall *)
}

type state = {
  prog : program;
  arch : Arch.t;
  rng : Random.State.t;
  mem : (string, int * int) Hashtbl.t; (* key -> value, version *)
  mutable version : int;
  mutexes : (string, int option) Hashtbl.t;
  threads : thread array; (* program threads plus one callback thread *)
  mutable cb_queue : (wait * stmt list) list; (* pending call_rcu, FIFO *)
  mutable steps : int;
}

exception Stuck of string

(* ------------------------------------------------------------------ *)
(* Expressions and locations                                           *)
(* ------------------------------------------------------------------ *)

let reg_value t r = try Hashtbl.find t.regs r with Not_found -> 0

let rec eval st t = function
  | Int n -> n
  | Reg r -> reg_value t r
  | Tid -> t.tid
  | Addr x -> (
      match List.assoc_opt x st.prog.addr_table with
      | Some a -> a
      | None -> raise (Stuck ("no address for global " ^ x)))
  | Bin (op, a, b) -> Exec.Sem.eval_binop op (eval st t a) (eval st t b)
  | Un (Litmus.Ast.Neg, a) -> -eval st t a
  | Un (Litmus.Ast.Lnot, a) -> if eval st t a = 0 then 1 else 0

let key_of_loc st t = function
  | Var x -> x
  | Arr (x, e) -> Printf.sprintf "%s[%d]" x (eval st t e)
  | Deref r -> (
      let a = reg_value t r in
      match
        List.find_map
          (fun (x, a') -> if a = a' then Some x else None)
          st.prog.addr_table
      with
      | Some x -> x
      | None -> raise (Stuck (Printf.sprintf "bad pointer %d in %s" a r)))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let mem_read st key = try Hashtbl.find st.mem key with Not_found -> (0, 0)

let commit st t key v =
  st.version <- st.version + 1;
  Hashtbl.replace st.mem key (v, st.version);
  Hashtbl.replace t.floors key st.version

let refresh_stale st t =
  if st.arch.alpha_stale then begin
    Hashtbl.reset t.stale;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.stale k v) st.mem
  end

(* A read: own store buffer first, then (on Alpha, possibly) the stale
   snapshot, then memory.  The coherence floor guarantees po-loc order. *)
let do_read st t key =
  let rec forwarded = function
    | [] -> None
    | e :: rest -> (
        match forwarded rest with
        | Some v -> Some v
        | None -> if e.key = key then Some e.v else None)
  in
  match forwarded t.buf with
  | Some v -> v
  | None ->
      let floor = try Hashtbl.find t.floors key with Not_found -> 0 in
      let fresh () =
        let v, ver = mem_read st key in
        Hashtbl.replace t.floors key (max floor ver);
        v
      in
      if
        st.arch.alpha_stale
        && Random.State.float st.rng 1.0 < st.arch.p_stale
      then
        match Hashtbl.find_opt t.stale key with
        | Some (v, ver) when ver >= floor ->
            Hashtbl.replace t.floors key ver;
            v
        | _ -> fresh ()
      else fresh ()

(* ------------------------------------------------------------------ *)
(* Store buffer                                                        *)
(* ------------------------------------------------------------------ *)

(* Indices of drainable entries. *)
let drainable st t =
  match t.buf with
  | [] -> []
  | head :: _ when st.arch.fifo_drain ->
      ignore head;
      [ 0 ]
  | buf ->
      List.mapi (fun k e -> (k, e)) buf
      |> List.filter_map (fun (k, e) ->
             let earlier = List.filteri (fun i _ -> i < k) buf in
             let ok =
               (not (e.release && k > 0))
               && List.for_all
                    (fun e' -> e'.key <> e.key && e'.group = e.group)
                    earlier
             in
             if ok then Some k else None)

let drain_at st t k =
  let e = List.nth t.buf k in
  commit st t e.key e.v;
  t.buf <- List.filteri (fun i _ -> i <> k) t.buf

let drain_random st t =
  match drainable st t with
  | [] -> false
  | ks ->
      drain_at st t (List.nth ks (Random.State.int st.rng (List.length ks)));
      true

(* ------------------------------------------------------------------ *)
(* Early reads (prefetching)                                           *)
(* ------------------------------------------------------------------ *)

let rec expr_regs = function
  | Int _ | Tid | Addr _ -> []
  | Reg r -> [ r ]
  | Bin (_, a, b) -> expr_regs a @ expr_regs b
  | Un (_, a) -> expr_regs a

let loc_regs = function
  | Var _ -> []
  | Arr (_, e) -> expr_regs e
  | Deref r -> [ r ]

(* Find read statements eligible for early execution: scan the current
   straight-line window, stopping at anything that orders later reads. *)
let prefetch_candidates st t =
  let rec scan i blocked seen acc = function
    | [] -> acc
    | s :: rest -> (
        match s with
        | Skip | Sleep -> scan (i + 1) blocked seen acc rest
        | Assign (r, _) ->
            (* the assignment has not executed: r's new value is not
               available to anything hoisted above it *)
            scan (i + 1) (r :: blocked) seen acc rest
        | Fence Litmus.Ast.F_wmb ->
            scan (i + 1) blocked seen acc rest (* wmb orders writes only *)
        | Fence _ -> acc (* every other fence blocks later reads here *)
        | Write (_, loc, _) -> (
            (* reads may pass a plain or release write to another location *)
            if List.exists (fun u -> List.mem u blocked) (loc_regs loc) then
              acc
            else
              match (try Some (key_of_loc st t loc) with Stuck _ -> None) with
              | None -> acc
              | Some key -> scan (i + 1) blocked (key :: seen) acc rest)
        | Read (annot, r, loc) -> (
            if List.exists (fun u -> List.mem u blocked) (loc_regs loc) then
              (* address depends on an earlier read: cannot go early; an
                 acquire additionally stops everything behind it *)
              if annot = Litmus.Ast.R_acquire then acc
              else scan (i + 1) (r :: blocked) seen acc rest
            else
              match (try Some (key_of_loc st t loc) with Stuck _ -> None) with
              | None -> acc
              | Some key ->
                  let acc' =
                    if i > 0 && not (List.mem key seen) then (i, r, key) :: acc
                    else acc
                  in
                  if annot = Litmus.Ast.R_acquire then acc'
                    (* nothing moves above an acquire: stop *)
                  else scan (i + 1) (r :: blocked) (key :: seen) acc' rest)
        | Xchg _ | Cmpxchg _ | Atomic_add _ | If _ | While _ | Mutex_lock _
        | Mutex_unlock _ | Call_rcu _ | Rcu_barrier ->
            acc)
    (* blocked: registers whose value is not available in program order *)
  in
  scan 0 [] [] [] t.conts

(* A prefetched read must not interfere with uses of its target register
   by the skipped-over prefix. *)
let register_free t j r =
  let rec check i = function
    | [] -> true
    | _ when i >= j -> true
    | s :: rest ->
        let uses =
          match s with
          | Assign (_, e) -> expr_regs e
          | Write (_, loc, e) -> loc_regs loc @ expr_regs e
          | Read (_, _, loc) | Xchg (_, _, loc, _)
          | Cmpxchg (_, _, loc, _, _)
          | Atomic_add (_, _, loc, _) ->
              loc_regs loc
          | If (e, _, _) | While (e, _) -> expr_regs e
          | _ -> []
        in
        let defs =
          match s with
          | Assign (d, _) | Read (_, d, _) | Xchg (_, d, _, _)
          | Cmpxchg (_, d, _, _, _)
          | Atomic_add (_, Some d, _, _) ->
              [ d ]
          | _ -> []
        in
        if List.mem r uses || List.mem r defs then false
        else check (i + 1) rest
  in
  check 0 t.conts

let try_prefetch st t =
  match prefetch_candidates st t with
  | [] -> false
  | cands -> (
      let cands = List.filter (fun (j, r, _) -> register_free t j r) cands in
      match cands with
      | [] -> false
      | _ ->
          let j, r, key =
            List.nth cands (Random.State.int st.rng (List.length cands))
          in
          let v = do_read st t key in
          Hashtbl.replace t.regs r v;
          t.conts <- List.mapi (fun i s -> if i = j then Skip else s) t.conts;
          true)

(* ------------------------------------------------------------------ *)
(* Executing one statement                                             *)
(* ------------------------------------------------------------------ *)

(* Execute the head statement of [t] if possible; returns false when the
   thread cannot make that kind of progress right now. *)
let exec_head st t =
  match t.conts with
  | [] -> false
  | s :: rest -> (
      match s with
      | Skip ->
          t.conts <- rest;
          true
      | Sleep ->
          (* msleep: deschedule for a while *)
          t.stall <- 20 + Random.State.int st.rng 100;
          t.conts <- rest;
          true
      | Assign (r, e) ->
          Hashtbl.replace t.regs r (eval st t e);
          t.conts <- rest;
          true
      | Read (annot, r, loc) ->
          let key = key_of_loc st t loc in
          Hashtbl.replace t.regs r (do_read st t key);
          if annot = Litmus.Ast.R_acquire then refresh_stale st t;
          t.conts <- rest;
          true
      | Write (annot, loc, e) ->
          let key = key_of_loc st t loc in
          let v = eval st t e in
          if st.arch.store_buffer then
            t.buf <-
              t.buf
              @ [
                  {
                    key;
                    v;
                    release = annot = Litmus.Ast.W_release;
                    group = t.group;
                  };
                ]
          else commit st t key v;
          t.conts <- rest;
          true
      | Fence Litmus.Ast.F_wmb ->
          t.group <- t.group + 1;
          t.conts <- rest;
          true
      | Fence (Litmus.Ast.F_rmb | Litmus.Ast.F_rb_dep) ->
          refresh_stale st t;
          t.conts <- rest;
          true
      | Fence Litmus.Ast.F_mb ->
          if t.buf <> [] then drain_random st t
          else begin
            refresh_stale st t;
            t.conts <- rest;
            true
          end
      | Fence Litmus.Ast.F_rcu_lock ->
          t.nesting <- t.nesting + 1;
          refresh_stale st t;
          t.conts <- rest;
          true
      | Fence Litmus.Ast.F_rcu_unlock ->
          if t.buf <> [] then drain_random st t
          else begin
            t.nesting <- max 0 (t.nesting - 1);
            if t.nesting = 0 then t.epoch <- t.epoch + 1;
            t.conts <- rest;
            true
          end
      | Call_rcu body ->
          (* publish the callback: release semantics, then defer it until
             every current read-side critical section has ended *)
          if t.buf <> [] then drain_random st t
          else begin
            let snapshot =
              Array.to_list st.threads
              |> List.filter (fun t' -> t'.tid <> t.tid && t'.nesting > 0)
              |> List.map (fun t' -> (t'.tid, t'.epoch))
            in
            st.cb_queue <- st.cb_queue @ [ (Wait_gp snapshot, body) ];
            t.conts <- rest;
            true
          end
      | Rcu_barrier ->
          (* wait until every pending callback has been promoted and the
             callback thread has finished running them *)
          if t.buf <> [] then drain_random st t
          else
            let cb = st.threads.(Array.length st.threads - 1) in
            if st.cb_queue = [] && cb.conts = [] && cb.buf = [] then begin
              t.conts <- rest;
              true
            end
            else false
      | Fence Litmus.Ast.F_sync_rcu ->
          if t.buf <> [] then drain_random st t
          else begin
            let snapshot =
              Array.to_list st.threads
              |> List.filter (fun t' -> t'.tid <> t.tid && t'.nesting > 0)
              |> List.map (fun t' -> (t'.tid, t'.epoch))
            in
            t.waiting <- Some (Wait_gp snapshot);
            t.conts <- rest;
            true
          end
      | Cmpxchg (_, r, loc, e_old, e_new) ->
          (* like xchg: drain, then an atomic compare-and-swap on memory *)
          if t.buf <> [] then drain_random st t
          else begin
            let key = key_of_loc st t loc in
            let v_old = eval st t e_old and v_new = eval st t e_new in
            let v_cur, _ = mem_read st key in
            if v_cur = v_old then commit st t key v_new;
            Hashtbl.replace t.regs r v_cur;
            refresh_stale st t;
            t.conts <- rest;
            true
          end
      | Atomic_add (_, reg, loc, e) ->
          if t.buf <> [] then drain_random st t
          else begin
            let key = key_of_loc st t loc in
            let v_cur, _ = mem_read st key in
            let v_new = v_cur + eval st t e in
            commit st t key v_new;
            (match reg with
            | Some r -> Hashtbl.replace t.regs r v_new
            | None -> ());
            refresh_stale st t;
            t.conts <- rest;
            true
          end
      | Xchg (_, r, loc, e) ->
          (* all xchg flavours are modelled at full strength: drain, then
             atomically swap against memory *)
          if t.buf <> [] then drain_random st t
          else begin
            let key = key_of_loc st t loc in
            let v_new = eval st t e in
            let v_old, _ = mem_read st key in
            commit st t key v_new;
            Hashtbl.replace t.regs r v_old;
            refresh_stale st t;
            t.conts <- rest;
            true
          end
      | If (e, a, b) ->
          t.conts <- (if eval st t e <> 0 then a else b) @ rest;
          true
      | While (e, body) ->
          if eval st t e <> 0 then t.conts <- body @ (s :: rest)
          else t.conts <- rest;
          true
      | Mutex_lock m -> (
          match Hashtbl.find_opt st.mutexes m with
          | Some (Some holder) when holder <> t.tid -> false
          | _ ->
              Hashtbl.replace st.mutexes m (Some t.tid);
              refresh_stale st t;
              t.conts <- rest;
              true)
      | Mutex_unlock m ->
          if t.buf <> [] then drain_random st t
          else begin
            Hashtbl.replace st.mutexes m None;
            t.conts <- rest;
            true
          end)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let gp_done st = function
  | Wait_gp snapshot ->
      List.for_all
        (fun (tid, epoch) ->
          let t' = st.threads.(tid) in
          t'.nesting = 0 || t'.epoch > epoch)
        snapshot

let thread_live t = t.conts <> [] || t.buf <> [] || t.waiting <> None

let step_thread st t =
  match t.waiting with
  | Some w ->
      if gp_done st w then begin
        t.waiting <- None;
        refresh_stale st t;
        true
      end
      else false
  | None ->
      (* the Alpha snapshot drifts: refreshed at random moments, so a
         dependent read may observe memory as of an earlier time *)
      if st.arch.alpha_stale && Random.State.float st.rng 1.0 < 0.2 then
        refresh_stale st t;
      let r = Random.State.float st.rng 1.0 in
      if st.arch.early_reads && r < st.arch.p_prefetch && try_prefetch st t
      then true
      else if
        r < st.arch.p_prefetch +. st.arch.p_drain && drain_random st t
      then true
      else if t.conts <> [] then exec_head st t
      else drain_random st t

type run_result = {
  regs : (int * string * int) list; (* tid, register, value *)
  mem : (string * int) list;
}

let max_steps = 200_000

let run ?(rng = Random.State.make_self_init ()) (arch : Arch.t)
    (prog : program) =
  let st =
    {
      prog;
      arch;
      rng;
      mem = Hashtbl.create 16;
      version = 0;
      mutexes = Hashtbl.create 4;
      threads =
        Array.of_list
          (List.mapi
             (fun tid conts ->
               {
                 tid;
                 regs = Hashtbl.create 8;
                 floors = Hashtbl.create 8;
                 stale = Hashtbl.create 8;
                 conts;
                 buf = [];
                 group = 0;
                 nesting = 0;
                 epoch = 0;
                 waiting = None;
                 stall = 0;
               })
             (prog.threads @ [ [] (* the callback thread *) ]));
      cb_queue = [];
      steps = 0;
    }
  in
  List.iter (fun (x, v) -> Hashtbl.replace st.mem x (v, 0)) prog.init;
  List.iter
    (fun (x, n) ->
      for i = 0 to n - 1 do
        Hashtbl.replace st.mem (Printf.sprintf "%s[%d]" x i) (0, 0)
      done)
    prog.arrays;
  Array.iter (fun t -> refresh_stale st t) st.threads;
  let cb_thread = st.threads.(Array.length st.threads - 1) in
  let promote_callbacks () =
    match st.cb_queue with
    | (w, body) :: rest when gp_done st w ->
        (* callbacks run in order on the dedicated callback thread *)
        cb_thread.conts <- cb_thread.conts @ body;
        st.cb_queue <- rest
    | _ -> ()
  in
  (* Per-run thread speeds, drawn log-uniformly: real machines interleave
     with wildly asymmetric timing (interrupts, frequency scaling), and
     many races only open up when one thread stalls for a long stretch. *)
  let weights =
    Array.map
      (fun _ -> exp (Random.State.float rng 4.0))
      st.threads
  in
  let live () =
    promote_callbacks ();
    let base = Array.to_list st.threads |> List.filter thread_live in
    if st.cb_queue <> [] then
      (* keep the machine alive while callbacks are pending *)
      if List.memq cb_thread base then base else cb_thread :: base
    else base
  in
  let pick ts =
    let total = List.fold_left (fun s t -> s +. weights.(t.tid)) 0.0 ts in
    let x = Random.State.float st.rng total in
    let rec go acc = function
      | [ t ] -> t
      | t :: rest ->
          let acc = acc +. weights.(t.tid) in
          if x < acc then t else go acc rest
      | [] -> assert false
    in
    go 0.0 ts
  in
  let rec go () =
    match live () with
    | [] ->
        let regs =
          Array.to_list st.threads
          |> List.concat_map (fun t ->
                 Hashtbl.fold (fun r v acc -> (t.tid, r, v) :: acc) t.regs [])
        in
        let mem =
          Hashtbl.fold (fun k (v, _) acc -> (k, v) :: acc) st.mem []
        in
        Some { regs; mem }
    | ts ->
        st.steps <- st.steps + 1;
        if st.steps > max_steps then None
        else begin
          List.iter
            (fun t -> if t.stall > 0 then t.stall <- t.stall - 1)
            ts;
          (match List.filter (fun t -> t.stall = 0) ts with
          | [] -> () (* everyone descheduled; let time pass *)
          | runnable ->
              let t = pick runnable in
              (* preemption: occasionally a thread loses the CPU for a
                 long stretch — interrupts and scheduling on a real
                 machine; many RCU races only open in such windows *)
              if Random.State.float st.rng 1.0 < 0.01 then
                t.stall <- 20 + Random.State.int st.rng 300
              else ignore (step_thread st t));
          go ()
        end
  in
  go ()
