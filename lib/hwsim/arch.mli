(** Architecture profiles for the operational simulators — the stand-ins
    for the paper's hardware testbed (Section 5.1).

    A profile switches the machine's reordering features on or off and
    sets the scheduling biases that govern how often weak behaviours are
    exhibited.  None of the profiles executes writes early, so
    load-buffering (LB) outcomes are never produced, matching Table 5. *)

type t = {
  name : string;
  store_buffer : bool;  (** writes are buffered and commit later *)
  fifo_drain : bool;  (** TSO: buffer drains in order *)
  early_reads : bool;  (** reads may execute ahead of program order *)
  alpha_stale : bool;
      (** reads may hit a stale snapshot even through an address
          dependency, unless smp_read_barrier_depends intervenes *)
  p_prefetch : float;  (** chance of attempting an early read per step *)
  p_drain : float;  (** chance of preferring a buffer drain per step *)
  p_stale : float;  (** chance a read uses the stale snapshot (Alpha) *)
}

(** Sequentially consistent machine: no buffering, no reordering. *)
val sc : t

(** x86-TSO: FIFO store buffer only. *)
val x86 : t

val armv7 : t
val armv8 : t
val power8 : t

(** ARM-like relaxed machine plus the stale-snapshot mechanism that breaks
    read-read address dependencies (Section 3.2.2). *)
val alpha : t

(** The four hardware columns of Table 5: Power8, ARMv8, ARMv7, X86. *)
val table5 : t list

val all : t list

(** [find name] looks a profile up by name.  Raises [Not_found]. *)
val find : string -> t
