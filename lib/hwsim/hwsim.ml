(* Operational hardware simulators — the repository's stand-in for the
   paper's hardware testbed and klitmus kernel-module runs (Section 5).

   - {!Arch}: per-architecture profiles (X86/TSO, ARMv7, ARMv8, Power8,
     Alpha, SC);
   - {!Machine}: the randomised operational machine over {!Kir} programs;
   - this module: running litmus tests many times and histogramming
     outcomes, in Table 5's observed/total format. *)

module Arch = Arch
module Machine = Machine

type stats = {
  arch : string;
  total : int; (* completed runs *)
  matched : int; (* runs whose final state satisfies the condition *)
  outcomes : (Exec.outcome * int) list; (* histogram *)
}

(* Extract an {!Exec.outcome}-compatible assoc list from a run, so that
   simulator results are directly comparable with model verdicts. *)
let outcome_of_run (test : Litmus.Ast.t) (r : Machine.run_result) :
    Exec.outcome =
  List.map
    (function
      | `Reg (tid, reg) ->
          ( Printf.sprintf "%d:%s" tid reg,
            List.fold_left
              (fun acc (tid', reg', v) ->
                if tid = tid' && reg = reg' then v else acc)
              0 r.Machine.regs )
      | `Mem x -> (x, try List.assoc x r.Machine.mem with Not_found -> 0))
    (Exec.observables test)

let eval_cond (test : Litmus.Ast.t) (r : Machine.run_result) =
  let reg_val tid reg =
    List.fold_left
      (fun acc (tid', reg', v) -> if tid = tid' && reg = reg' then v else acc)
      0 r.Machine.regs
  in
  let mem_val x = try List.assoc x r.Machine.mem with Not_found -> 0 in
  let atom = function
    | Litmus.Ast.Reg_eq (tid, reg, cv) ->
        reg_val tid reg = Litmus.Ast.cvalue_to_int test cv
    | Litmus.Ast.Mem_eq (x, cv) -> mem_val x = Litmus.Ast.cvalue_to_int test cv
  in
  let rec go = function
    | Litmus.Ast.Atom a -> atom a
    | Litmus.Ast.Not c -> not (go c)
    | Litmus.Ast.And (a, b) -> go a && go b
    | Litmus.Ast.Or (a, b) -> go a || go b
    | Litmus.Ast.Ctrue -> true
  in
  go test.cond

(* [run_test arch ~runs ~seed test] executes [test] [runs] times on the
   simulated architecture and reports how often the condition matched —
   one cell of Table 5. *)
let run_test (arch : Arch.t) ?(runs = 10_000) ?(seed = 42)
    (test : Litmus.Ast.t) =
  let prog = Kir.of_litmus test in
  let rng = Random.State.make [| seed |] in
  let hist = Hashtbl.create 16 in
  let matched = ref 0 and total = ref 0 in
  for _ = 1 to runs do
    match Machine.run ~rng arch prog with
    | None -> () (* aborted run (step cap); not counted *)
    | Some r ->
        incr total;
        if eval_cond test r then incr matched;
        let o = outcome_of_run test r in
        Hashtbl.replace hist o (1 + Option.value ~default:0 (Hashtbl.find_opt hist o))
  done;
  {
    arch = arch.Arch.name;
    total = !total;
    matched = !matched;
    outcomes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []);
  }

(* [run_program arch ~runs ~seed prog] histograms the raw final states of an
   arbitrary IR program (used for the Figure 15 / Theorem 2 study). *)
let run_program (arch : Arch.t) ?(runs = 1_000) ?(seed = 42)
    (prog : Kir.program) =
  let rng = Random.State.make [| seed |] in
  let results = ref [] and aborted = ref 0 in
  for _ = 1 to runs do
    match Machine.run ~rng arch prog with
    | None -> incr aborted
    | Some r -> results := r :: !results
  done;
  (List.rev !results, !aborted)

(* ------------------------------------------------------------------ *)
(* Retry-until-stable sampling                                         *)
(* ------------------------------------------------------------------ *)

(* Randomised runs face a sampling question the model checker does not:
   is a weak outcome genuinely unobservable on this architecture, or did
   we just not run enough iterations?  [run_test_stable] re-runs a test
   in batches with fresh seeds until the outcome histogram converges —
   no new outcome appears and every per-outcome frequency moves by less
   than [tol] — for [stable_batches] consecutive batches, or the
   [max_batches] retry cap hits. *)
type stable_stats = {
  stats : stats; (* cumulative over all batches *)
  batches : int; (* batches actually run *)
  converged : bool; (* false = retry cap hit before convergence *)
  seeds : int list;
      (* the per-batch seeds actually used, in batch order — the exact
         seed set to replay a non-converging run *)
}

let merge_stats a b =
  let hist = Hashtbl.create 16 in
  List.iter
    (fun (o, n) ->
      Hashtbl.replace hist o (n + Option.value ~default:0 (Hashtbl.find_opt hist o)))
    (a.outcomes @ b.outcomes);
  {
    arch = a.arch;
    total = a.total + b.total;
    matched = a.matched + b.matched;
    outcomes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []);
  }

let frequencies (s : stats) =
  let total = max 1 s.total in
  List.map (fun (o, n) -> (o, float_of_int n /. float_of_int total)) s.outcomes

(* One batch is "stable" w.r.t. the previous cumulative histogram when it
   introduces no new outcome and shifts no frequency by more than [tol]. *)
let batch_stable ~tol before after =
  let f_before = frequencies before and f_after = frequencies after in
  List.for_all
    (fun (o, f) ->
      match List.assoc_opt o f_before with
      | None -> false (* a new outcome appeared: not converged *)
      | Some f' -> Float.abs (f -. f') <= tol)
    f_after

let run_test_stable (arch : Arch.t) ?(batch = 2_000) ?(max_batches = 25)
    ?(stable_batches = 3) ?(tol = 0.01) ?(seed = 42) (test : Litmus.Ast.t) =
  let seeds_used i = List.init i (fun k -> seed + k) in
  let rec go acc streak i =
    if streak >= stable_batches then
      { stats = acc; batches = i; converged = true; seeds = seeds_used i }
    else if i >= max_batches then
      { stats = acc; batches = i; converged = false; seeds = seeds_used i }
    else
      let b = run_test arch ~runs:batch ~seed:(seed + i) test in
      let acc' = merge_stats acc b in
      let streak' = if batch_stable ~tol acc acc' then streak + 1 else 0 in
      go acc' streak' (i + 1)
  in
  let first = run_test arch ~runs:batch ~seed test in
  go first 0 1

(* ------------------------------------------------------------------ *)
(* Soundness against a model                                           *)
(* ------------------------------------------------------------------ *)

(* Soundness against a model: every outcome the simulator produced must be
   allowed by the model (the paper's Table 5 claim).  Returns offending
   outcomes, empty = sound.  The model comes as an {!Exec.Oracle.t}, so
   the outcome enumeration runs on the model's batched engine when it
   ships one ([?backend] overrides). *)
let unsound_outcomes ?budget ?backend (oracle : Exec.Oracle.t)
    (test : Litmus.Ast.t) (s : stats) =
  let allowed = Exec.Oracle.allowed_outcomes ?budget ?backend oracle test in
  List.filter_map
    (fun (o, n) -> if List.mem o allowed then None else Some (o, n))
    s.outcomes

(* Budget-aware soundness verdict: [Soundness_unknown] when the model's
   outcome enumeration blew its budget — distinct from both "sound" and
   "unsound", so sweeps can report partial coverage honestly. *)
type soundness =
  | Sound
  | Unsound of (Exec.outcome * int) list
  | Soundness_unknown of Exec.Budget.reason

let soundness ?limits ?backend oracle test s =
  let budget = Option.map Exec.Budget.start limits in
  match unsound_outcomes ?budget ?backend oracle test s with
  | [] -> Sound
  | bad -> Unsound bad
  | exception Exec.Budget.Exceeded r -> Soundness_unknown r
