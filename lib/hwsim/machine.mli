(** The operational weak-memory machine: interprets Kir programs under an
    architecture profile with a randomised scheduler, playing the role of
    the paper's klitmus kernel-module runs.

    Memory is a single versioned multi-copy-atomic store; weak behaviours
    come from three per-profile mechanisms:
    - a per-thread store buffer with out-of-order drain (unless
      [fifo_drain]), smp_wmb group markers and head-only drain for
      releases;
    - early execution of reads within the current straight-line window,
      blocked by fences, acquires, same-location accesses and register
      dependencies — so address/data/control dependencies are respected;
    - the Alpha stale-snapshot mode, which lets even an address-dependent
      read observe old memory until an smp_read_barrier_depends.

    The scheduler draws per-run thread speeds log-uniformly and injects
    random preemption stalls (and honours [msleep]), because many races —
    notably the broken-RCU ablations — only open when one thread stalls
    for a long stretch.  RCU is native here: read-side nesting counters,
    grace periods that wait for the critical sections active at their
    start, and a callback thread for [call_rcu]/[rcu_barrier]. *)

type buf_entry = { key : string; v : int; release : bool; group : int }

type wait = Wait_gp of (int * int) list
    (** threads (with their unlock epochs) that were inside a read-side
        critical section when the grace period began *)

type thread = {
  tid : int;
  regs : (string, int) Hashtbl.t;
  floors : (string, int) Hashtbl.t;  (** per-location coherence floor *)
  stale : (string, int * int) Hashtbl.t;  (** Alpha snapshot *)
  mutable conts : Kir.stmt list;
  mutable buf : buf_entry list;  (** store buffer, oldest first *)
  mutable group : int;  (** current smp_wmb group *)
  mutable nesting : int;  (** RCU read-side nesting depth *)
  mutable epoch : int;  (** bumped at each outermost rcu_read_unlock *)
  mutable waiting : wait option;  (** blocked in synchronize_rcu *)
  mutable stall : int;  (** remaining preemption / msleep steps *)
}

type state

(** Raised when a program dereferences a value that is not the address of
    a global, or similar execution errors. *)
exception Stuck of string

type run_result = {
  regs : (int * string * int) list;  (** (tid, register, final value) *)
  mem : (string * int) list;  (** final memory, one entry per location *)
}

(** Runs aborting after this many scheduler steps return [None]
    (livelock protection). *)
val max_steps : int

(** [run ~rng arch prog] executes [prog] once to completion under the
    architecture profile; [None] if the step cap was hit. *)
val run : ?rng:Random.State.t -> Arch.t -> Kir.program -> run_result option
