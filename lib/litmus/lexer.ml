(* Hand-written lexer for the C-flavoured litmus format. *)

type token =
  | ID of string
  | INT of int
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | SEMI
  | COMMA
  | COLON
  | EQ (* = *)
  | EQEQ (* == *)
  | NEQ (* != *)
  | STAR
  | AMP (* & *)
  | AMPAMP (* && *)
  | BARBAR (* || *)
  | PLUS
  | MINUS
  | CARET
  | BAR
  | BANG
  | TILDE
  | LT
  | GT
  | LE
  | GE
  | SLASHBSLASH (* /\ *)
  | BSLASHSLASH (* \/ *)
  | EOF

exception Error of string * int (* message, line *)

type state = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }

let peek_char st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2_char st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek2_char st = Some '/' ->
      let rec eat () =
        match peek_char st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            eat ()
      in
      eat ();
      skip_ws st
  | Some '/' when peek2_char st = Some '*' ->
      advance st;
      advance st;
      let rec eat () =
        match (peek_char st, peek2_char st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> raise (Error ("unterminated /* comment", st.line))
        | Some _, _ ->
            advance st;
            eat ()
      in
      eat ();
      skip_ws st
  | _ -> ()
(* NB: no OCaml-style comments here — a paren followed by a star clashes
   with C dereferences in argument position, e.g. READ_ONCE of *r1. *)

let next st =
  skip_ws st;
  let line = st.line in
  match peek_char st with
  | None -> (EOF, line)
  | Some c ->
      let two tok =
        advance st;
        advance st;
        (tok, line)
      in
      let one tok =
        advance st;
        (tok, line)
      in
      if is_id_start c then begin
        let start = st.pos in
        while
          match peek_char st with Some c -> is_id_char c | None -> false
        do
          advance st
        done;
        (ID (String.sub st.src start (st.pos - start)), line)
      end
      else if is_digit c then begin
        let start = st.pos in
        while
          match peek_char st with
          | Some c -> is_digit c || c = 'x' || (c >= 'a' && c <= 'f')
          | None -> false
        do
          advance st
        done;
        let s = String.sub st.src start (st.pos - start) in
        match int_of_string_opt s with
        | Some n -> (INT n, line)
        | None -> raise (Error ("bad integer literal " ^ s, line))
      end
      else
        match (c, peek2_char st) with
        | '/', Some '\\' -> two SLASHBSLASH
        | '\\', Some '/' -> two BSLASHSLASH
        | '=', Some '=' -> two EQEQ
        | '!', Some '=' -> two NEQ
        | '&', Some '&' -> two AMPAMP
        | '|', Some '|' -> two BARBAR
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '(', _ -> one LPAR
        | ')', _ -> one RPAR
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACK
        | ']', _ -> one RBRACK
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | ':', _ -> one COLON
        | '=', _ -> one EQ
        | '*', _ -> one STAR
        | '&', _ -> one AMP
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '^', _ -> one CARET
        | '|', _ -> one BAR
        | '!', _ -> one BANG
        | '~', _ -> one TILDE
        | '<', _ -> one LT
        | '>', _ -> one GT
        | c, _ -> raise (Error (Printf.sprintf "unexpected character %C" c, line))

(* Tokenise the whole input eagerly; litmus tests are small. *)
let tokens src =
  let st = make src in
  let rec go acc =
    match next st with
    | (EOF, _) as t -> List.rev (t :: acc)
    | t -> go (t :: acc)
  in
  go []

let to_string = function
  | ID s -> s
  | INT n -> string_of_int n
  | LPAR -> "("
  | RPAR -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACK -> "["
  | RBRACK -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | STAR -> "*"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | PLUS -> "+"
  | MINUS -> "-"
  | CARET -> "^"
  | BAR -> "|"
  | BANG -> "!"
  | TILDE -> "~"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | SLASHBSLASH -> "/\\"
  | BSLASHSLASH -> "\\/"
  | EOF -> "<eof>"
