(* Pretty-printing of litmus tests back to their concrete syntax. *)

open Ast

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

let rec pp_expr ppf = function
  | Const n -> Fmt.int ppf n
  | Reg r -> Fmt.string ppf r
  | Addr x -> Fmt.pf ppf "&%s" x
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Unop (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Unop (Lnot, a) -> Fmt.pf ppf "(!%a)" pp_expr a

let pp_loc ppf = function
  | Sym x -> Fmt.pf ppf "*%s" x
  | Deref r -> Fmt.pf ppf "*%s" r

let fence_name = function
  | F_rmb -> "smp_rmb"
  | F_wmb -> "smp_wmb"
  | F_mb -> "smp_mb"
  | F_rb_dep -> "smp_read_barrier_depends"
  | F_rcu_lock -> "rcu_read_lock"
  | F_rcu_unlock -> "rcu_read_unlock"
  | F_sync_rcu -> "synchronize_rcu"

let xchg_name = function
  | X_relaxed -> "xchg_relaxed"
  | X_acquire -> "xchg_acquire"
  | X_release -> "xchg_release"
  | X_full -> "xchg"

let rec pp_instr ~indent ppf i =
  let pad = String.make indent ' ' in
  match i with
  | Read (R_once, r, l) ->
      Fmt.pf ppf "%sint %s = READ_ONCE(%a);" pad r pp_loc l
  | Read (R_acquire, r, l) ->
      Fmt.pf ppf "%sint %s = smp_load_acquire(%a);" pad r pp_loc l
  | Rcu_dereference (r, l) ->
      Fmt.pf ppf "%sint %s = rcu_dereference(%a);" pad r pp_loc l
  | Write (W_once, l, e) ->
      Fmt.pf ppf "%sWRITE_ONCE(%a, %a);" pad pp_loc l pp_expr e
  | Write (W_release, l, e) ->
      Fmt.pf ppf "%ssmp_store_release(%a, %a);" pad pp_loc l pp_expr e
  | Fence f -> Fmt.pf ppf "%s%s();" pad (fence_name f)
  | Xchg (k, r, l, e) ->
      Fmt.pf ppf "%sint %s = %s(%a, %a);" pad r (xchg_name k) pp_loc l
        pp_expr e
  | Cmpxchg (k, r, l, e1, e2) ->
      let base =
        match k with
        | X_relaxed -> "cmpxchg_relaxed"
        | X_acquire -> "cmpxchg_acquire"
        | X_release -> "cmpxchg_release"
        | X_full -> "cmpxchg"
      in
      Fmt.pf ppf "%sint %s = %s(%a, %a, %a);" pad r base pp_loc l pp_expr e1
        pp_expr e2
  | Atomic_add_return (k, r, l, e) ->
      let base =
        match k with
        | X_relaxed -> "atomic_add_return_relaxed"
        | X_acquire -> "atomic_add_return_acquire"
        | X_release -> "atomic_add_return_release"
        | X_full -> "atomic_add_return"
      in
      Fmt.pf ppf "%sint %s = %s(%a, %a);" pad r base pp_expr e pp_loc l
  | Atomic_add (l, e) ->
      Fmt.pf ppf "%satomic_add(%a, %a);" pad pp_expr e pp_loc l
  | Assign (r, e) -> Fmt.pf ppf "%sint %s = %a;" pad r pp_expr e
  | Spin_lock l -> Fmt.pf ppf "%sspin_lock(%a);" pad pp_loc l
  | Spin_unlock l -> Fmt.pf ppf "%sspin_unlock(%a);" pad pp_loc l
  | If (e, t, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr e
        (pp_body ~indent:(indent + 2))
        t pad
  | If (e, t, f) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr e
        (pp_body ~indent:(indent + 2))
        t pad
        (pp_body ~indent:(indent + 2))
        f pad

and pp_body ~indent ppf instrs =
  Fmt.(list ~sep:(any "@\n") (pp_instr ~indent)) ppf instrs

let pp_cvalue ppf = function
  | VInt n -> Fmt.int ppf n
  | VAddr x -> Fmt.pf ppf "&%s" x

let pp_atom ppf = function
  | Reg_eq (tid, r, v) -> Fmt.pf ppf "%d:%s=%a" tid r pp_cvalue v
  | Mem_eq (x, v) -> Fmt.pf ppf "%s=%a" x pp_cvalue v

let rec pp_cond ppf = function
  | Atom a -> pp_atom ppf a
  | Not c -> Fmt.pf ppf "~(%a)" pp_cond c
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp_cond a pp_cond b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp_cond a pp_cond b
  | Ctrue -> Fmt.string ppf "true"

let quant_to_string = function
  | Q_exists -> "exists"
  | Q_not_exists -> "~exists"
  | Q_forall -> "forall"

let pp ppf (t : t) =
  Fmt.pf ppf "C %s@\n@\n" t.name;
  Fmt.pf ppf "{ %a }@\n@\n"
    Fmt.(list ~sep:(any " ") (fun ppf (x, v) -> pf ppf "%s=%a;" x pp_cvalue v))
    t.init;
  Array.iteri
    (fun tid body ->
      let params =
        String.concat ", " (List.map (fun g -> "int *" ^ g) (globals t))
      in
      Fmt.pf ppf "P%d(%s) {@\n%a@\n}@\n@\n" tid params (pp_body ~indent:2)
        body)
    t.threads;
  Fmt.pf ppf "%s (%a)@\n" (quant_to_string t.quant) pp_cond t.cond

let to_string t = Fmt.str "%a" pp t
