(* Static well-formedness checks for litmus tests, in the spirit of
   herd's bell-file checks: catch tests that would silently mean something
   other than intended. *)

open Ast

type issue = {
  severity : [ `Error | `Warning ];
  message : string;
}

let error fmt = Printf.ksprintf (fun m -> { severity = `Error; message = m }) fmt
let warn fmt = Printf.ksprintf (fun m -> { severity = `Warning; message = m }) fmt

(* RCU read-side critical sections must nest properly per thread. *)
let check_rcu_balance (t : t) =
  Array.to_list t.threads
  |> List.concat_map (fun instrs ->
         (* conservative: only flat lock/unlock structure is analysed;
            branches containing RCU markers are flagged instead *)
         let rec flat acc = function
           | [] -> Some (List.rev acc)
           | Fence f :: rest -> flat (f :: acc) rest
           | If (_, a, b) :: rest ->
               if
                 List.exists
                   (fun i ->
                     match i with
                     | Fence (F_rcu_lock | F_rcu_unlock | F_sync_rcu) -> true
                     | _ -> false)
                   (a @ b)
               then None
               else flat acc rest
           | _ :: rest -> flat acc rest
         in
         match flat [] instrs with
         | None ->
             [ warn "RCU primitives under a conditional are not checked" ]
         | Some fences ->
             let depth =
               List.fold_left
                 (fun d f ->
                   match f with
                   | F_rcu_lock -> d + 1
                   | F_rcu_unlock -> d - 1
                   | _ -> d)
                 0 fences
             in
             let dips_negative =
               List.fold_left
                 (fun (d, bad) f ->
                   let d' =
                     match f with
                     | F_rcu_lock -> d + 1
                     | F_rcu_unlock -> d - 1
                     | _ -> d
                   in
                   (d', bad || d' < 0))
                 (0, false) fences
               |> snd
             in
             (if dips_negative then
                [ error "rcu_read_unlock without a matching rcu_read_lock" ]
              else [])
             @
             if depth <> 0 then
               [ error "unbalanced rcu_read_lock/rcu_read_unlock" ]
             else [])

(* synchronize_rcu inside a read-side critical section deadlocks. *)
let check_sync_in_rscs (t : t) =
  Array.to_list t.threads
  |> List.concat_map (fun instrs ->
         let rec go depth acc = function
           | [] -> acc
           | Fence F_rcu_lock :: rest -> go (depth + 1) acc rest
           | Fence F_rcu_unlock :: rest -> go (max 0 (depth - 1)) acc rest
           | Fence F_sync_rcu :: rest when depth > 0 ->
               go depth
                 (error
                    "synchronize_rcu inside a read-side critical section \
                     (self-deadlock)"
                 :: acc)
                 rest
           | If (_, a, b) :: rest -> go depth (go depth (go depth acc a) b) rest
           | _ :: rest -> go depth acc rest
         in
         go 0 [] instrs)

(* Registers referenced by the condition must exist in the thread. *)
let check_condition_registers (t : t) =
  let thread_regs tid =
    if tid < 0 || tid >= Array.length t.threads then []
    else
      let rec instr_regs = function
        | Read (_, r, _) | Rcu_dereference (r, _) | Xchg (_, r, _, _)
        | Cmpxchg (_, r, _, _, _)
        | Atomic_add_return (_, r, _, _)
        | Assign (r, _) ->
            [ r ]
        | If (_, a, b) ->
            List.concat_map instr_regs a @ List.concat_map instr_regs b
        | Write _ | Fence _ | Atomic_add _ | Spin_lock _ | Spin_unlock _ ->
            []
      in
      List.concat_map instr_regs t.threads.(tid)
  in
  let rec atoms = function
    | Atom a -> [ a ]
    | Not c -> atoms c
    | And (a, b) | Or (a, b) -> atoms a @ atoms b
    | Ctrue -> []
  in
  List.filter_map
    (function
      | Reg_eq (tid, r, _) ->
          if tid >= Array.length t.threads then
            Some (error "condition names thread %d which does not exist" tid)
          else if not (List.mem r (thread_regs tid)) then
            Some (error "condition reads %d:%s but P%d never writes %s" tid r tid r)
          else None
      | Mem_eq _ -> None)
    (atoms t.cond)

(* Spinlock locations should not be accessed as plain data, and lock /
   unlock should pair up per lock. *)
let check_lock_usage (t : t) =
  let lock_locs = ref [] in
  let data_locs = ref [] in
  let rec scan = function
    | Spin_lock (Sym l) | Spin_unlock (Sym l) ->
        if not (List.mem l !lock_locs) then lock_locs := l :: !lock_locs
    | Read (_, _, Sym l) | Write (_, Sym l, _) | Xchg (_, _, Sym l, _)
    | Cmpxchg (_, _, Sym l, _, _)
    | Atomic_add_return (_, _, Sym l, _)
    | Atomic_add (Sym l, _)
    | Rcu_dereference (_, Sym l) ->
        if not (List.mem l !data_locs) then data_locs := l :: !data_locs
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | _ -> ()
  in
  Array.iter (List.iter scan) t.threads;
  List.filter_map
    (fun l ->
      if List.mem l !data_locs then
        Some (warn "location %s is used both as a spinlock and as data" l)
      else None)
    !lock_locs

(* A test whose condition can never hold (no candidate execution matches)
   is almost certainly a typo; this check is semantic and optional. *)
let check_all ?(semantic = false) (t : t) =
  let static =
    check_rcu_balance t @ check_sync_in_rscs t @ check_condition_registers t
    @ check_lock_usage t
  in
  ignore semantic;
  static

let pp_issue ppf i =
  Fmt.pf ppf "%s: %s"
    (match i.severity with `Error -> "error" | `Warning -> "warning")
    i.message

let errors issues = List.filter (fun i -> i.severity = `Error) issues
