(* Abstract syntax of litmus tests, covering the LK subset of C used by the
   paper (Table 3 and Table 4 primitives, conditionals, register
   arithmetic). *)

type r_annot = R_once | R_acquire
type w_annot = W_once | W_release
type xchg_kind = X_relaxed | X_acquire | X_release | X_full

type fence_kind =
  | F_rmb
  | F_wmb
  | F_mb
  | F_rb_dep
  | F_rcu_lock
  | F_rcu_unlock
  | F_sync_rcu

type binop =
  | Add
  | Sub
  | Band
  | Bor
  | Bxor
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | Land
  | Lor

type unop = Neg | Lnot

type reg = string

(* A value computation over registers and constants; reads from shared
   memory never appear inside expressions, only as statements, which keeps
   dependency tracking syntactic. *)
type expr =
  | Const of int
  | Reg of reg
  | Addr of string (* &x : the address of global x, usable as a value *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

(* Where a shared access goes: a named global, or the global whose address
   is held in a register (address dependency). *)
type loc_expr = Sym of string | Deref of reg

type instr =
  | Read of r_annot * reg * loc_expr (* r = READ_ONCE(x) / smp_load_acquire *)
  | Write of w_annot * loc_expr * expr (* WRITE_ONCE / smp_store_release *)
  | Rcu_dereference of reg * loc_expr (* R[once] followed by F[rb-dep] *)
  | Fence of fence_kind
  | Xchg of xchg_kind * reg * loc_expr * expr
  (* cmpxchg(x, old, new): the write happens only if the read returns
     [old]; a failed cmpxchg is just a read and provides no ordering *)
  | Cmpxchg of xchg_kind * reg * loc_expr * expr * expr
  (* atomic_add_return(i, v) and friends: value-returning atomics carry
     the ordering of their kind; void atomics (atomic_add/inc/dec) are
     fully relaxed and provide no ordering [atomic_ops.rst] *)
  | Atomic_add_return of xchg_kind * reg * loc_expr * expr
  | Atomic_add of loc_expr * expr
  | Assign of reg * expr
  | If of expr * instr list * instr list
  (* Section 7: locking emulated with the constructs we already have —
     spin_lock behaves like xchg_acquire on the lock location (only the
     successful acquisition, reading 0, is modelled), spin_unlock like
     smp_store_release. *)
  | Spin_lock of loc_expr
  | Spin_unlock of loc_expr

(* Final-condition values: integers or addresses of globals. *)
type cvalue = VInt of int | VAddr of string

type cond_atom =
  | Reg_eq of int * reg * cvalue (* 0:r1 = 1 *)
  | Mem_eq of string * cvalue (* x = 2 *)

type cond =
  | Atom of cond_atom
  | Not of cond
  | And of cond * cond
  | Or of cond * cond
  | Ctrue

type quantifier = Q_exists | Q_not_exists | Q_forall

type t = {
  name : string;
  init : (string * cvalue) list; (* globals not listed start at 0 *)
  threads : instr list array;
  quant : quantifier;
  cond : cond;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_regs = function
  | Const _ | Addr _ -> []
  | Reg r -> [ r ]
  | Binop (_, a, b) -> expr_regs a @ expr_regs b
  | Unop (_, a) -> expr_regs a

let rec instr_globals i =
  let loc_globals = function Sym x -> [ x ] | Deref _ -> [] in
  let rec expr_globals = function
    | Addr x -> [ x ]
    | Const _ | Reg _ -> []
    | Binop (_, a, b) -> expr_globals a @ expr_globals b
    | Unop (_, a) -> expr_globals a
  in
  match i with
  | Read (_, _, l) | Rcu_dereference (_, l) | Spin_lock l | Spin_unlock l ->
      loc_globals l
  | Write (_, l, e) | Xchg (_, _, l, e) -> loc_globals l @ expr_globals e
  | Cmpxchg (_, _, l, e1, e2) ->
      loc_globals l @ expr_globals e1 @ expr_globals e2
  | Atomic_add_return (_, _, l, e) | Atomic_add (l, e) ->
      loc_globals l @ expr_globals e
  | Assign (_, e) -> expr_globals e
  | Fence _ -> []
  | If (e, t, f) ->
      expr_globals e
      @ List.concat_map instr_globals t
      @ List.concat_map instr_globals f

let cond_globals cond =
  let atom = function
    | Reg_eq (_, _, VAddr x) -> [ x ]
    | Reg_eq _ -> []
    | Mem_eq (x, VAddr y) -> [ x; y ]
    | Mem_eq (x, _) -> [ x ]
  in
  let rec go = function
    | Atom a -> atom a
    | Not c -> go c
    | And (a, b) | Or (a, b) -> go a @ go b
    | Ctrue -> []
  in
  go cond

(* All globals mentioned anywhere in the test, sorted, without dups. *)
let globals t =
  let from_threads =
    Array.to_list t.threads
    |> List.concat_map (List.concat_map instr_globals)
  in
  let from_init =
    List.concat_map
      (fun (x, v) -> match v with VAddr y -> [ x; y ] | VInt _ -> [ x ])
      t.init
  in
  List.sort_uniq String.compare (from_threads @ from_init @ cond_globals t.cond)

(* Deterministic address assignment for &x values: globals are numbered in
   sorted order starting at [addr_base]. *)
let addr_base = 1000

let addresses t =
  List.mapi (fun i x -> (x, addr_base + i)) (globals t)

let address_of t x =
  match List.assoc_opt x (addresses t) with
  | Some a -> a
  | None -> invalid_arg ("Ast.address_of: unknown global " ^ x)

let global_of_address t a =
  List.find_map (fun (x, a') -> if a = a' then Some x else None) (addresses t)

let init_value t x =
  match List.assoc_opt x t.init with
  | None -> 0
  | Some (VInt n) -> n
  | Some (VAddr y) -> address_of t y

let cvalue_to_int t = function
  | VInt n -> n
  | VAddr x -> address_of t x

let has_rcu t =
  let rec in_instr = function
    | Fence (F_rcu_lock | F_rcu_unlock | F_sync_rcu) -> true
    | Rcu_dereference _ -> true
    | If (_, a, b) -> List.exists in_instr a || List.exists in_instr b
    | Read _ | Write _ | Fence _ | Xchg _ | Cmpxchg _ | Atomic_add_return _
    | Atomic_add _ | Assign _ | Spin_lock _ | Spin_unlock _ ->
        false
  in
  Array.exists (List.exists in_instr) t.threads
