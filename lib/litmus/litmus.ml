(* Litmus tests: the LK subset of C of the paper's Section 2.

   - {!Ast} defines programs (Table 3 / Table 4 primitives, conditionals,
     register arithmetic) and final conditions;
   - {!Parser} reads the C-flavoured concrete format;
   - {!Pp} prints tests back;
   - {!Build} offers combinators for programmatic construction;
   - {!Lint} statically checks well-formedness. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Pp = Pp
module Build = Build
module Lint = Lint

type t = Ast.t

(** [parse src] parses a litmus test from its concrete syntax.
    Raises {!Parser.Error} or {!Lexer.Error} on malformed input. *)
let parse = Parser.parse_string

(** [to_string t] prints [t] in the concrete syntax accepted by {!parse}. *)
let to_string = Pp.to_string

let pp = Pp.pp
