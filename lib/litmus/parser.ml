(* Recursive-descent parser for the C-flavoured litmus format:

     C MP+wmb+rmb

     { x=0; y=0; }

     P0(int *x, int *y) {
       WRITE_ONCE(x, 1);
       smp_wmb();
       WRITE_ONCE(y, 1);
     }

     P1(int *x, int *y) {
       int r1 = READ_ONCE(y);
       smp_rmb();
       int r2 = READ_ONCE(x);
     }

     exists (1:r1=1 /\ 1:r2=0)

   Location arguments of primitives may be written [*x], [x] or [*r]; a name
   that was declared with [int r = ...] in the current thread is a register
   (giving an address dependency when dereferenced), anything else is a
   global. *)

open Ast

exception Error of string * int

type cursor = { mutable toks : (Lexer.token * int) list }

let line c = match c.toks with (_, l) :: _ -> l | [] -> 0
let peek c = match c.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let peek2 c =
  match c.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

let junk c = match c.toks with _ :: rest -> c.toks <- rest | [] -> ()

let fail c msg =
  raise (Error (Printf.sprintf "%s (near %s)" msg (Lexer.to_string (peek c)), line c))

let expect c tok =
  if peek c = tok then junk c
  else fail c (Printf.sprintf "expected %s" (Lexer.to_string tok))

let ident c =
  match peek c with
  | Lexer.ID s ->
      junk c;
      s
  | _ -> fail c "expected identifier"

let int_lit c =
  match peek c with
  | Lexer.INT n ->
      junk c;
      n
  | Lexer.MINUS ->
      junk c;
      (match peek c with
      | Lexer.INT n ->
          junk c;
          -n
      | _ -> fail c "expected integer after -")
  | _ -> fail c "expected integer"

(* ------------------------------------------------------------------ *)
(* Expressions (registers, constants, &globals)                        *)
(* ------------------------------------------------------------------ *)

(* [regs] is the set of register names declared so far in this thread. *)
let rec parse_expr c regs = parse_lor c regs

and parse_lor c regs =
  let lhs = parse_land c regs in
  match peek c with
  | Lexer.BARBAR ->
      junk c;
      Binop (Lor, lhs, parse_lor c regs)
  | _ -> lhs

and parse_land c regs =
  let lhs = parse_cmp c regs in
  match peek c with
  | Lexer.AMPAMP ->
      junk c;
      Binop (Land, lhs, parse_land c regs)
  | _ -> lhs

and parse_cmp c regs =
  let lhs = parse_add c regs in
  let bin op =
    junk c;
    Binop (op, lhs, parse_add c regs)
  in
  match peek c with
  | Lexer.EQEQ -> bin Eq
  | Lexer.NEQ -> bin Neq
  | Lexer.LT -> bin Lt
  | Lexer.GT -> bin Gt
  | Lexer.LE -> bin Le
  | Lexer.GE -> bin Ge
  | _ -> lhs

and parse_add c regs =
  let rec go lhs =
    match peek c with
    | Lexer.PLUS ->
        junk c;
        go (Binop (Add, lhs, parse_bits c regs))
    | Lexer.MINUS ->
        junk c;
        go (Binop (Sub, lhs, parse_bits c regs))
    | _ -> lhs
  in
  go (parse_bits c regs)

and parse_bits c regs =
  let rec go lhs =
    match peek c with
    | Lexer.AMP ->
        junk c;
        go (Binop (Band, lhs, parse_atom c regs))
    | Lexer.BAR ->
        junk c;
        go (Binop (Bor, lhs, parse_atom c regs))
    | Lexer.CARET ->
        junk c;
        go (Binop (Bxor, lhs, parse_atom c regs))
    | _ -> lhs
  in
  go (parse_atom c regs)

and parse_atom c regs =
  match peek c with
  | Lexer.INT _ | Lexer.MINUS -> Const (int_lit c)
  | Lexer.BANG ->
      junk c;
      Unop (Lnot, parse_atom c regs)
  | Lexer.AMP ->
      junk c;
      Addr (ident c)
  | Lexer.LPAR ->
      junk c;
      let e = parse_expr c regs in
      expect c Lexer.RPAR;
      e
  | Lexer.ID x ->
      junk c;
      if List.mem x regs then Reg x
      else fail c (Printf.sprintf "unknown register %s in expression" x)
  | _ -> fail c "expected expression"

(* ------------------------------------------------------------------ *)
(* Locations                                                           *)
(* ------------------------------------------------------------------ *)

let parse_loc c regs =
  let deref =
    match peek c with
    | Lexer.STAR ->
        junk c;
        true
    | _ -> false
  in
  let x = ident c in
  if List.mem x regs then
    if deref then Deref x
    else fail c (Printf.sprintf "register %s used as location without *" x)
  else Sym x

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let fence_of_name = function
  | "smp_mb" -> Some F_mb
  | "smp_rmb" -> Some F_rmb
  | "smp_wmb" -> Some F_wmb
  | "smp_read_barrier_depends" -> Some F_rb_dep
  | "rcu_read_lock" -> Some F_rcu_lock
  | "rcu_read_unlock" -> Some F_rcu_unlock
  | "synchronize_rcu" | "synchronize_rcu_expedited" -> Some F_sync_rcu
  | _ -> None

let cmpxchg_of_name = function
  | "cmpxchg" -> Some X_full
  | "cmpxchg_relaxed" -> Some X_relaxed
  | "cmpxchg_acquire" -> Some X_acquire
  | "cmpxchg_release" -> Some X_release
  | _ -> None

let xchg_of_name = function
  | "xchg" -> Some X_full
  | "xchg_relaxed" -> Some X_relaxed
  | "xchg_acquire" -> Some X_acquire
  | "xchg_release" -> Some X_release
  | _ -> None

let add_return_of_name = function
  | "atomic_add_return" -> Some X_full
  | "atomic_add_return_relaxed" -> Some X_relaxed
  | "atomic_add_return_acquire" -> Some X_acquire
  | "atomic_add_return_release" -> Some X_release
  | _ -> None

let read_of_name = function
  | "READ_ONCE" -> Some `Once
  | "smp_load_acquire" -> Some `Acquire
  | "rcu_dereference" -> Some `Rcu_deref
  | _ -> None

(* Parse the right-hand side of [r = ...]: a read primitive, an xchg, or a
   pure expression. *)
let parse_rhs c regs reg =
  match peek c with
  | Lexer.ID name when read_of_name name <> None -> begin
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.RPAR;
      match read_of_name name with
      | Some `Once -> Read (R_once, reg, loc)
      | Some `Acquire -> Read (R_acquire, reg, loc)
      | Some `Rcu_deref -> Rcu_dereference (reg, loc)
      | None -> assert false
    end
  | Lexer.ID name when xchg_of_name name <> None ->
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.COMMA;
      let e = parse_expr c regs in
      expect c Lexer.RPAR;
      Xchg (Option.get (xchg_of_name name), reg, loc, e)
  | Lexer.ID name when cmpxchg_of_name name <> None ->
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.COMMA;
      let e1 = parse_expr c regs in
      expect c Lexer.COMMA;
      let e2 = parse_expr c regs in
      expect c Lexer.RPAR;
      Cmpxchg (Option.get (cmpxchg_of_name name), reg, loc, e1, e2)
  | Lexer.ID name when add_return_of_name name <> None ->
      (* LK argument order: atomic_add_return(i, v) *)
      junk c;
      expect c Lexer.LPAR;
      let e = parse_expr c regs in
      expect c Lexer.COMMA;
      let loc = parse_loc c regs in
      expect c Lexer.RPAR;
      Atomic_add_return (Option.get (add_return_of_name name), reg, loc, e)
  | _ -> Assign (reg, parse_expr c regs)

let rec parse_stmt c regs =
  match peek c with
  | Lexer.ID "int" ->
      (* int r = <rhs>; *)
      junk c;
      (* allow optional * in declarations: int *r = ... *)
      (match peek c with Lexer.STAR -> junk c | _ -> ());
      let r = ident c in
      expect c Lexer.EQ;
      let regs' = r :: regs in
      let stmt = parse_rhs c regs r in
      expect c Lexer.SEMI;
      ([ stmt ], regs')
  | Lexer.ID "if" ->
      junk c;
      expect c Lexer.LPAR;
      let e = parse_expr c regs in
      expect c Lexer.RPAR;
      let then_b, regs = parse_block_or_stmt c regs in
      let else_b, regs =
        match peek c with
        | Lexer.ID "else" ->
            junk c;
            parse_block_or_stmt c regs
        | _ -> ([], regs)
      in
      ([ If (e, then_b, else_b) ], regs)
  | Lexer.ID name when fence_of_name name <> None ->
      junk c;
      expect c Lexer.LPAR;
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      ([ Fence (Option.get (fence_of_name name)) ], regs)
  | Lexer.ID "atomic_add" ->
      junk c;
      expect c Lexer.LPAR;
      let e = parse_expr c regs in
      expect c Lexer.COMMA;
      let loc = parse_loc c regs in
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      ([ Atomic_add (loc, e) ], regs)
  | Lexer.ID (("atomic_inc" | "atomic_dec") as name) ->
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      ([ Atomic_add (loc, Const (if name = "atomic_inc" then 1 else -1)) ],
       regs)
  | Lexer.ID (("spin_lock" | "spin_unlock") as name) ->
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      ([ (if name = "spin_lock" then Spin_lock loc else Spin_unlock loc) ],
       regs)
  | Lexer.ID ("WRITE_ONCE" | "smp_store_release" | "rcu_assign_pointer") ->
      let name = ident c in
      let annot = if name = "WRITE_ONCE" then W_once else W_release in
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.COMMA;
      let e = parse_expr c regs in
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      ([ Write (annot, loc, e) ], regs)
  | Lexer.ID name when xchg_of_name name <> None ->
      (* bare xchg statement: result discarded into a fresh register *)
      junk c;
      expect c Lexer.LPAR;
      let loc = parse_loc c regs in
      expect c Lexer.COMMA;
      let e = parse_expr c regs in
      expect c Lexer.RPAR;
      expect c Lexer.SEMI;
      let r = Printf.sprintf "__x%d" (List.length regs) in
      ([ Xchg (Option.get (xchg_of_name name), r, loc, e) ], r :: regs)
  | Lexer.ID name when List.mem name regs ->
      junk c;
      expect c Lexer.EQ;
      let stmt = parse_rhs c regs name in
      expect c Lexer.SEMI;
      ([ stmt ], regs)
  | _ -> fail c "expected statement"

and parse_block_or_stmt c regs =
  match peek c with
  | Lexer.LBRACE ->
      junk c;
      let rec go acc regs =
        match peek c with
        | Lexer.RBRACE ->
            junk c;
            (List.rev acc, regs)
        | _ ->
            let stmts, regs = parse_stmt c regs in
            go (List.rev_append stmts acc) regs
      in
      go [] regs
  | _ -> parse_stmt c regs

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

let parse_thread c =
  (* P<k> ( ...ignored params... ) { stmts } *)
  let name = ident c in
  let tid =
    if String.length name >= 2 && name.[0] = 'P' then
      match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
      | Some k -> k
      | None -> fail c "thread header must be P<k>"
    else fail c "thread header must be P<k>"
  in
  expect c Lexer.LPAR;
  let rec skip_params depth =
    match peek c with
    | Lexer.RPAR when depth = 0 -> junk c
    | Lexer.RPAR ->
        junk c;
        skip_params (depth - 1)
    | Lexer.LPAR ->
        junk c;
        skip_params (depth + 1)
    | Lexer.EOF -> fail c "unterminated parameter list"
    | _ ->
        junk c;
        skip_params depth
  in
  skip_params 0;
  expect c Lexer.LBRACE;
  let rec go acc regs =
    match peek c with
    | Lexer.RBRACE ->
        junk c;
        List.rev acc
    | _ ->
        let stmts, regs = parse_stmt c regs in
        go (List.rev_append stmts acc) regs
  in
  (tid, go [] [])

(* ------------------------------------------------------------------ *)
(* Init section and final condition                                    *)
(* ------------------------------------------------------------------ *)

let parse_cvalue c =
  match peek c with
  | Lexer.AMP ->
      junk c;
      VAddr (ident c)
  | _ -> VInt (int_lit c)

let parse_init c =
  (* { x=0; y=&z; } — also tolerates type prefixes like [int x = 0]. *)
  expect c Lexer.LBRACE;
  let rec go acc =
    match peek c with
    | Lexer.RBRACE ->
        junk c;
        List.rev acc
    | Lexer.SEMI ->
        junk c;
        go acc
    | _ ->
        let x = ident c in
        let x = if x = "int" then ident c else x in
        expect c Lexer.EQ;
        let v = parse_cvalue c in
        (match peek c with Lexer.SEMI -> junk c | _ -> ());
        go ((x, v) :: acc)
  in
  go []

let rec parse_cond c = parse_cond_or c

and parse_cond_or c =
  let lhs = parse_cond_and c in
  match peek c with
  | Lexer.BSLASHSLASH ->
      junk c;
      Or (lhs, parse_cond_or c)
  | _ -> lhs

and parse_cond_and c =
  let lhs = parse_cond_atom c in
  match peek c with
  | Lexer.SLASHBSLASH ->
      junk c;
      And (lhs, parse_cond_and c)
  | _ -> lhs

and parse_cond_atom c =
  match peek c with
  | Lexer.TILDE | Lexer.BANG ->
      junk c;
      Not (parse_cond_atom c)
  | Lexer.ID "not" ->
      junk c;
      Not (parse_cond_atom c)
  | Lexer.ID "true" ->
      junk c;
      Ctrue
  | Lexer.LPAR ->
      junk c;
      let co = parse_cond c in
      expect c Lexer.RPAR;
      co
  | Lexer.INT tid when peek2 c = Lexer.COLON ->
      junk c;
      junk c;
      let r = ident c in
      expect c Lexer.EQ;
      Atom (Reg_eq (tid, r, parse_cvalue c))
  | Lexer.ID x ->
      junk c;
      expect c Lexer.EQ;
      Atom (Mem_eq (x, parse_cvalue c))
  | _ -> fail c "expected condition"

(* ------------------------------------------------------------------ *)
(* Whole test                                                          *)
(* ------------------------------------------------------------------ *)

let parse_test c =
  (* Header: C <name> (or LK <name>). *)
  (match peek c with
  | Lexer.ID ("C" | "LK") -> junk c
  | _ -> fail c "test must start with C or LK");
  (* Test names are free-form up to the init brace: they may contain [+],
     [-] and digits (e.g. 2+2W); accept any tokens until LBRACE. *)
  let buf = Buffer.create 16 in
  let rec eat_name () =
    match peek c with
    | Lexer.LBRACE -> ()
    | Lexer.EOF -> fail c "unexpected end of test"
    | t ->
        junk c;
        Buffer.add_string buf (Lexer.to_string t);
        eat_name ()
  in
  eat_name ();
  let name = Buffer.contents buf in
  let init = parse_init c in
  let rec threads acc =
    match peek c with
    | Lexer.ID s when String.length s >= 2 && s.[0] = 'P' && s <> "Pb" ->
        let tid, body = parse_thread c in
        threads ((tid, body) :: acc)
    | _ -> List.rev acc
  in
  let tl = threads [] in
  if tl = [] then fail c "test has no threads";
  let n = 1 + List.fold_left (fun m (t, _) -> max m t) 0 tl in
  let arr = Array.make n [] in
  List.iter (fun (t, body) -> arr.(t) <- body) tl;
  (* skip an optional locations [...] clause *)
  (match peek c with
  | Lexer.ID "locations" ->
      junk c;
      expect c Lexer.LBRACK;
      let rec skip () =
        match peek c with
        | Lexer.RBRACK -> junk c
        | Lexer.EOF -> fail c "unterminated locations clause"
        | _ ->
            junk c;
            skip ()
      in
      skip ()
  | _ -> ());
  let quant =
    match peek c with
    | Lexer.ID "exists" ->
        junk c;
        Q_exists
    | Lexer.TILDE when peek2 c = Lexer.ID "exists" ->
        junk c;
        junk c;
        Q_not_exists
    | Lexer.ID "forall" ->
        junk c;
        Q_forall
    | _ -> fail c "expected exists / ~exists / forall"
  in
  let cond = parse_cond c in
  (match peek c with
  | Lexer.EOF -> ()
  | _ -> fail c "trailing tokens after condition");
  { name; init; threads = arr; quant; cond }

let parse_string src =
  let c = { toks = Lexer.tokens src } in
  parse_test c
