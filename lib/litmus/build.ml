(* Combinators for constructing litmus tests programmatically; used by the
   built-in battery, the diy-style generator and the test suites. *)

open Ast

let read ?(a = R_once) r x = Read (a, r, Sym x)
let read_acq r x = Read (R_acquire, r, Sym x)
let read_deref ?(a = R_once) r ptr = Read (a, r, Deref ptr)
let rcu_deref r x = Rcu_dereference (r, Sym x)
let write ?(a = W_once) x v = Write (a, Sym x, Const v)
let write_rel x v = Write (W_release, Sym x, Const v)
let write_expr ?(a = W_once) x e = Write (a, Sym x, e)
let write_deref ?(a = W_once) ptr v = Write (a, Deref ptr, Const v)
let write_addr ?(a = W_once) x target = Write (a, Sym x, Addr target)
let rmb = Fence F_rmb
let wmb = Fence F_wmb
let mb = Fence F_mb
let rb_dep = Fence F_rb_dep
let rcu_lock = Fence F_rcu_lock
let rcu_unlock = Fence F_rcu_unlock
let sync_rcu = Fence F_sync_rcu
let assign r e = Assign (r, e)
let xchg ?(k = X_full) r x v = Xchg (k, r, Sym x, Const v)
let if_ e t f = If (e, t, f)
let spin_lock x = Spin_lock (Sym x)
let spin_unlock x = Spin_unlock (Sym x)

(* Final-condition helpers. *)
let r_eq tid r v = Atom (Reg_eq (tid, r, VInt v))
let r_eq_addr tid r x = Atom (Reg_eq (tid, r, VAddr x))
let m_eq x v = Atom (Mem_eq (x, VInt v))

let rec conj = function
  | [] -> Ctrue
  | [ c ] -> c
  | c :: rest -> And (c, conj rest)

let make ?(init = []) ~name ~threads ~exists () =
  { name; init; threads = Array.of_list threads; quant = Q_exists; cond = exists }
