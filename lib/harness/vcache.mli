(** Content-addressed verdict cache for the checking service.

    Keyed on [Digest (model_key NUL source)]: the test's exact source
    text and the model's full identity ([model_key] must include a
    contents digest for [.cat]-file models — {!Serve} arranges this).
    Only deterministic outcomes ([Pass]/[Fail] entries) are cached;
    [Gave_up] is budget-relative and [Err] may be transient, so both
    always re-run.

    With [?journal], each insertion appends one JSONL line (the entry's
    {!Journal} line plus a leading ["vkey"] member) through
    {!Journal.write_line}, and {!create} recovers the file first with
    the same torn-tail tolerance as {!Journal.load} — a daemon killed
    mid-append restarts with every complete insertion and without the
    torn one.  All operations are mutex-protected (shared across the
    daemon's domains); hit/miss/store counts surface as the Obs
    counters [serve.cache.hits]/[.misses]/[.stores]. *)

type t

val key : model_key:string -> source:string -> string
(** The cache key: hex digest of model identity and source text. *)

val create :
  ?journal:string -> ?fsync:bool -> ?compact_threshold:int -> unit -> t
(** Recover [journal] (if given and present), then open it for append;
    [fsync] forces each insertion to stable storage
    ({!Journal.open_writer}).

    Across restarts the journal accumulates duplicate keys, torn tails
    and foreign garbage: replay cost grows without bound even though
    the live set does not.  When recovery reads at least
    [compact_threshold] raw lines (default 8192) and more lines than
    live bindings, the file is compacted on startup — rewritten
    atomically (temp + fsync + rename) to exactly the live bindings,
    duplicate keys resolved last-wins — so long-lived [lkserve]
    instances never replay unbounded history. *)

val find : t -> string -> Report.entry option
(** Lookup by key; counts a hit or a miss. *)

val store : t -> string -> Report.entry -> unit
(** Insert and journal a completed entry.  No-op for non-cacheable
    entries ([Gave_up]/[Err]) and for keys already present (first
    verdict wins; identical by construction). *)

val size : t -> int
val hits : t -> int
val misses : t -> int

val close : t -> unit
(** Close the journal writer (bindings stay usable in memory). *)
