(* Campaign manifest: the crash-safe shard ledger of {!Campaign}.

   A campaign over 10^5+ generated tests is partitioned into shards,
   each a deterministic (generator config, seed range) pair — tests are
   regenerated inside workers ({!Diygen.test_of_seed}), never stored.
   The manifest is the only authority on shard state; it is an
   append-only JSONL journal written through {!Journal.write_line} and
   replayed through the same torn-tail-tolerant reader as every other
   journal in the tree, so a [kill -9] at any byte offset loses at most
   the line being written and a resumed orchestrator reconstructs the
   exact surviving state.

   Line shapes:

     {"manifest_version": 1, "spec": {"size": 4, "seed_lo": 0, ...}}
     {"ev": "lease", "lo": 0, "hi": 128, "attempt": 1, "pid": 7, ...}
     {"ev": "requeue", "lo": 0, "hi": 128}
     {"ev": "split", "lo": 0, "hi": 128, "mid": 64}
     {"ev": "done", "lo": 0, "hi": 128, "summary": {...}}
     {"ev": "quarantine", "lo": 0, "hi": 128, "attempts": 2, "error": ".."}

   The header pins the campaign's identity; resuming with a different
   spec is refused (shard ranges would no longer mean the same tests).
   Replay starts from the spec's initial shard partition and folds the
   events in file order; events naming an unknown shard range are
   ignored with the same tolerance as garbage lines.  [done] events
   embed the shard's compacted verdict summary, which is what lets the
   orchestrator delete per-shard result journals (the disk-budget
   guard) without losing the campaign's mining inputs. *)

module Json = Journal.Json

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type spec = {
  size : int; (* cycle length handed to the generator *)
  seed_lo : int; (* inclusive *)
  seed_hi : int; (* exclusive *)
  shard_size : int; (* seeds per initial shard *)
}

(* One mined disagreement: the seed regenerates the test on demand, the
   verdict vector is what the models said, [kinds] the disagreement
   classes the row exhibits (sorted; see {!Campaign}). *)
type row = {
  seed : int;
  test : string;
  verdicts : (string * string) list; (* model -> verdict string, sorted *)
  kinds : string list;
}

(* The compacted residue of a finished shard: everything mining needs,
   nothing per-test except the disagreement rows (capped, with the
   dropped count surfaced — never silently). *)
type summary = {
  n_seeds : int; (* seeds covered (= hi - lo) *)
  n_tests : int; (* seeds that realised a test *)
  n_unknown : int; (* per-model Unknown verdicts recorded *)
  counts : (string * int) list; (* "lk:Allow" -> n, sorted by key *)
  rows : row list; (* disagreement rows, seed order *)
  rows_dropped : int;
  time_s : float; (* worker wall-clock spent on the shard *)
}

type state =
  | Pending
  | Leased of { attempt : int; pid : int; since : float }
  | Done of summary
  | Quarantined of { attempts : int; error : string }

type shard = { lo : int; hi : int; attempts : int; state : state }

type event =
  | Lease of { lo : int; hi : int; attempt : int; pid : int; since : float }
  | Requeue of { lo : int; hi : int; failed : bool }
  | Split of { lo : int; hi : int; mid : int }
  | Completed of { lo : int; hi : int; summary : summary }
  | Quarantine of { lo : int; hi : int; attempts : int; error : string }

type t = {
  path : string;
  spec : spec;
  shards : (int * int, shard) Hashtbl.t;
  mutable writer : Journal.writer option;
}

let manifest_version = 1

let shard_id lo hi = Printf.sprintf "s%d-%d" lo hi

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let esc = Report.json_escape

let spec_to_json s =
  Printf.sprintf
    "{\"size\": %d, \"seed_lo\": %d, \"seed_hi\": %d, \"shard_size\": %d}"
    s.size s.seed_lo s.seed_hi s.shard_size

let row_to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"test\": \"%s\", \"kinds\": [%s], \"v\": {%s}}" r.seed
    (esc r.test)
    (String.concat ", "
       (List.map (fun k -> Printf.sprintf "\"%s\"" (esc k)) r.kinds))
    (String.concat ", "
       (List.map
          (fun (m, v) -> Printf.sprintf "\"%s\": \"%s\"" (esc m) (esc v))
          r.verdicts))

let summary_to_json s =
  Printf.sprintf
    "{\"n_seeds\": %d, \"n_tests\": %d, \"n_unknown\": %d, \"time_s\": %.3f, \
     \"rows_dropped\": %d, \"counts\": {%s}, \"rows\": [%s]}"
    s.n_seeds s.n_tests s.n_unknown s.time_s s.rows_dropped
    (String.concat ", "
       (List.map
          (fun (k, n) -> Printf.sprintf "\"%s\": %d" (esc k) n)
          s.counts))
    (String.concat ", " (List.map row_to_json s.rows))

let line_of_event = function
  | Lease { lo; hi; attempt; pid; since } ->
      Printf.sprintf
        "{\"ev\": \"lease\", \"lo\": %d, \"hi\": %d, \"attempt\": %d, \
         \"pid\": %d, \"since\": %.3f}"
        lo hi attempt pid since
  | Requeue { lo; hi; failed } ->
      Printf.sprintf
        "{\"ev\": \"requeue\", \"lo\": %d, \"hi\": %d, \"failed\": %b}" lo hi
        failed
  | Split { lo; hi; mid } ->
      Printf.sprintf
        "{\"ev\": \"split\", \"lo\": %d, \"hi\": %d, \"mid\": %d}" lo hi mid
  | Completed { lo; hi; summary } ->
      Printf.sprintf
        "{\"ev\": \"done\", \"lo\": %d, \"hi\": %d, \"summary\": %s}" lo hi
        (summary_to_json summary)
  | Quarantine { lo; hi; attempts; error } ->
      Printf.sprintf
        "{\"ev\": \"quarantine\", \"lo\": %d, \"hi\": %d, \"attempts\": %d, \
         \"error\": \"%s\"}"
        lo hi attempts (esc error)

(* ------------------------------------------------------------------ *)
(* JSON parsing                                                        *)
(* ------------------------------------------------------------------ *)

let int_mem key j = Option.map int_of_float (Option.bind (Json.mem key j) Json.num)
let num_mem key j = Option.bind (Json.mem key j) Json.num
let str_mem key j = Option.bind (Json.mem key j) Json.str

let spec_of_json j =
  match
    (int_mem "size" j, int_mem "seed_lo" j, int_mem "seed_hi" j,
     int_mem "shard_size" j)
  with
  | Some size, Some seed_lo, Some seed_hi, Some shard_size ->
      Some { size; seed_lo; seed_hi; shard_size }
  | _ -> None

let row_of_json j =
  let ( let* ) = Option.bind in
  let* seed = int_mem "seed" j in
  let* test = str_mem "test" j in
  let kinds =
    match Json.mem "kinds" j with
    | Some (Json.Arr ks) ->
        List.filter_map (function Json.Str s -> Some s | _ -> None) ks
    | _ -> []
  in
  let verdicts =
    match Json.mem "v" j with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.str v))
          kvs
    | _ -> []
  in
  Some { seed; test; verdicts; kinds }

let summary_of_json j =
  let ( let* ) = Option.bind in
  let* n_seeds = int_mem "n_seeds" j in
  let* n_tests = int_mem "n_tests" j in
  let* n_unknown = int_mem "n_unknown" j in
  let time_s = Option.value ~default:0. (num_mem "time_s" j) in
  let rows_dropped = Option.value ~default:0 (int_mem "rows_dropped" j) in
  let counts =
    match Json.mem "counts" j with
    | Some (Json.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            Option.map (fun n -> (k, int_of_float n)) (Json.num v))
          kvs
    | _ -> []
  in
  let rows =
    match Json.mem "rows" j with
    | Some (Json.Arr rs) -> List.filter_map row_of_json rs
    | _ -> []
  in
  Some { n_seeds; n_tests; n_unknown; counts; rows; rows_dropped; time_s }

let event_of_json j =
  let ( let* ) = Option.bind in
  let* ev = str_mem "ev" j in
  let* lo = int_mem "lo" j in
  let* hi = int_mem "hi" j in
  match ev with
  | "lease" ->
      let* attempt = int_mem "attempt" j in
      let pid = Option.value ~default:0 (int_mem "pid" j) in
      let since = Option.value ~default:0. (num_mem "since" j) in
      Some (Lease { lo; hi; attempt; pid; since })
  | "requeue" ->
      let failed =
        Option.value ~default:false
          (Option.bind (Json.mem "failed" j) Json.bool_)
      in
      Some (Requeue { lo; hi; failed })
  | "split" ->
      let* mid = int_mem "mid" j in
      if lo < mid && mid < hi then Some (Split { lo; hi; mid }) else None
  | "done" ->
      let* summary = Option.bind (Json.mem "summary" j) summary_of_json in
      Some (Completed { lo; hi; summary })
  | "quarantine" ->
      let* attempts = int_mem "attempts" j in
      let error = Option.value ~default:"" (str_mem "error" j) in
      Some (Quarantine { lo; hi; attempts; error })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* State machine                                                       *)
(* ------------------------------------------------------------------ *)

let initial_shards spec =
  let tbl = Hashtbl.create 64 in
  let rec go lo =
    if lo < spec.seed_hi then begin
      let hi = min (lo + spec.shard_size) spec.seed_hi in
      Hashtbl.replace tbl (lo, hi) { lo; hi; attempts = 0; state = Pending };
      go hi
    end
  in
  if spec.shard_size > 0 then go spec.seed_lo;
  tbl

(* Events naming an unknown shard range are ignored — the same
   tolerance the journal readers give torn lines, and what makes a
   truncated manifest replay to a consistent prefix of the run. *)
let apply shards = function
  | Lease { lo; hi; attempt; pid; since } ->
      Option.iter
        (fun sh ->
          Hashtbl.replace shards (lo, hi)
            { sh with state = Leased { attempt; pid; since } })
        (Hashtbl.find_opt shards (lo, hi))
  | Requeue { lo; hi; failed } ->
      (* [failed] escalates the degradation ladder; a requeue after
         orchestrator death does not — the worker never got to fail, and
         resumed campaigns must classify exactly as uninterrupted ones *)
      Option.iter
        (fun sh ->
          Hashtbl.replace shards (lo, hi)
            {
              sh with
              attempts = (sh.attempts + if failed then 1 else 0);
              state = Pending;
            })
        (Hashtbl.find_opt shards (lo, hi))
  | Split { lo; hi; mid } ->
      if Hashtbl.mem shards (lo, hi) then begin
        Hashtbl.remove shards (lo, hi);
        Hashtbl.replace shards (lo, mid)
          { lo; hi = mid; attempts = 0; state = Pending };
        Hashtbl.replace shards (mid, hi)
          { lo = mid; hi; attempts = 0; state = Pending }
      end
  | Completed { lo; hi; summary } ->
      Option.iter
        (fun sh ->
          Hashtbl.replace shards (lo, hi) { sh with state = Done summary })
        (Hashtbl.find_opt shards (lo, hi))
  | Quarantine { lo; hi; attempts; error } ->
      Option.iter
        (fun sh ->
          Hashtbl.replace shards (lo, hi)
            { sh with attempts; state = Quarantined { attempts; error } })
        (Hashtbl.find_opt shards (lo, hi))

(* ------------------------------------------------------------------ *)
(* Creation, loading, recording                                        *)
(* ------------------------------------------------------------------ *)

let header_line spec =
  Printf.sprintf "{\"manifest_version\": %d, \"spec\": %s}" manifest_version
    (spec_to_json spec)

let create path spec =
  let w = Journal.open_writer path in
  Journal.write_line w (header_line spec);
  { path; spec; shards = initial_shards spec; writer = Some w }

(* Replay: the first line must be a valid header (a manifest torn
   before its header ever hit the disk is indistinguishable from no
   manifest — callers fall back to [create]); every later line that
   parses as an event folds into the state, everything else is
   dropped. *)
let load path =
  if not (Sys.file_exists path) then Error "no manifest"
  else begin
    let spec = ref None in
    let shards = ref None in
    Journal.iter_lines path (fun line ->
        match Json.of_string line with
        | exception Json.Malformed _ -> ()
        | j -> (
            match !spec with
            | None -> (
                match Option.bind (Json.mem "spec" j) spec_of_json with
                | Some s ->
                    spec := Some s;
                    shards := Some (initial_shards s)
                | None -> ())
            | Some _ ->
                Option.iter
                  (fun ev ->
                    match !shards with
                    | Some tbl -> apply tbl ev
                    | None -> ())
                  (event_of_json j)));
    match (!spec, !shards) with
    | Some spec, Some shards -> Ok { path; spec; shards; writer = None }
    | _ -> Error "manifest has no valid header"
  end

(* Resume when the on-disk spec matches, create otherwise-absent
   manifests, refuse a mismatch: shard ranges are only meaningful
   relative to the generator config that named them. *)
let open_ path spec =
  match load path with
  | Ok m ->
      if m.spec = spec then begin
        m.writer <- Some (Journal.open_writer path);
        Ok m
      end
      else
        Error
          (Printf.sprintf
             "manifest %s was created with a different campaign spec %s (got \
              %s)"
             path (spec_to_json m.spec) (spec_to_json spec))
  | Error _ when Sys.file_exists path ->
      (* a torn header: the file carries no recoverable state — start
         over in place *)
      (try Sys.remove path with Sys_error _ -> ());
      Ok (create path spec)
  | Error _ -> Ok (create path spec)

let record m ev =
  apply m.shards ev;
  match m.writer with
  | Some w -> Journal.write_line w (line_of_event ev)
  | None -> invalid_arg "Manifest.record: read-only manifest"

let spec m = m.spec

let shards m =
  Hashtbl.fold (fun _ sh acc -> sh :: acc) m.shards []
  |> List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi))

let close m =
  (match m.writer with Some w -> Journal.close w | None -> ());
  m.writer <- None
