(* Content-addressed verdict cache for the checking service.

   A verdict depends on exactly two things: the test source and the
   model checking it.  The cache key is therefore
   [Digest (model_key NUL source)] — whitespace-identical resubmissions
   of the same test under the same model hit, anything else misses.
   [model_key] must capture the model's full identity: for built-in
   models the name suffices (the binary pins the semantics); for .cat
   files it must include a digest of the file's contents, which
   {!Serve} arranges when it builds its model table.

   Only deterministic outcomes are cached: [Pass] and [Fail] entries.
   [Gave_up] depends on the budget a request happened to carry and
   [Err] may be transient (a crashed worker), so both always re-run.

   Persistence rides on {!Journal}: each insertion appends one JSONL
   line — the entry's journal line with a leading ["vkey"] member — and
   recovery re-reads the file through the same torn-tail-tolerant
   loader the run journal uses, so a daemon killed mid-append recovers
   every complete insertion and silently drops the torn one. *)

type t = {
  tbl : (string, Report.entry) Hashtbl.t;
  mutex : Mutex.t;
  writer : Journal.writer option;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  stores : Obs.Counter.t;
}

let key ~model_key ~source =
  Digest.to_hex (Digest.string (model_key ^ "\x00" ^ source))

(* The persisted line: the entry's journal line with the cache key
   spliced in as a leading member ({!Journal.entry_of_line} ignores
   members it does not know, so the line is still a valid entry line). *)
let line_of_binding vkey entry =
  let line = Journal.line_of_entry entry in
  (* line is "{...}"; re-open it with the vkey member in front. *)
  Printf.sprintf "{\"vkey\": \"%s\", %s" (Report.json_escape vkey)
    (String.sub line 1 (String.length line - 1))

let cacheable (e : Report.entry) =
  match e.Report.status with
  | Report.Pass _ | Report.Fail _ -> true
  | Report.Gave_up _ | Report.Err _ -> false

(* Recovery walks the file line by line (streamed through
   {!Journal.iter_lines} — a long-lived daemon's journal can hold far
   more history than is worth holding as a list), keeping lines that
   both parse as JSON with a ["vkey"] member and round-trip through
   {!Journal.entry_of_line} — same tolerance as {!Journal.load}: torn
   or foreign lines are dropped, never propagated.  Returns the
   bindings in file order plus the raw line count, which the startup
   compaction below compares against the live set. *)
let load_bindings path =
  let n_lines = ref 0 in
  let acc = ref [] in
  Journal.iter_lines path (fun line ->
      incr n_lines;
      match Journal.Json.of_string line with
      | exception Journal.Json.Malformed _ -> () (* torn tail, garbage *)
      | j -> (
          match
            ( Option.bind (Journal.Json.mem "vkey" j) Journal.Json.str,
              Journal.entry_of_line line )
          with
          | Some vkey, Some entry when cacheable entry ->
              acc := (vkey, entry) :: !acc
          | _ -> ()));
  (List.rev !acc, !n_lines)

(* Startup compaction: across restarts the journal accumulates
   duplicate keys (overlapping daemons, replayed inserts), torn tails
   and foreign garbage, and replay cost grows without bound even though
   the live set does not.  When the raw line count reaches the
   threshold and exceeds the live set, the file is rewritten to exactly
   the live bindings — atomically (temp + fsync + rename), so a kill at
   any point leaves either the old journal or the compacted one, never
   a torn hybrid.  Duplicate keys resolve last-wins, first-occurrence
   key order preserved (the same resolution the in-memory table
   applies). *)
let default_compact_threshold = 8192

let compact_file path lines =
  let tmp = path ^ ".compact.tmp" in
  (try Sys.remove tmp with Sys_error _ -> ());
  let oc = open_out tmp in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

let create ?journal ?(fsync = false)
    ?(compact_threshold = default_compact_threshold) () =
  let tbl = Hashtbl.create 256 in
  let writer =
    match journal with
    | None -> None
    | Some path ->
        (* Recover first (tolerant), then open for append: bindings that
           survived the crash keep serving, the torn tail is gone, and
           new insertions extend the same file. *)
        let bindings, n_lines = load_bindings path in
        let order = ref [] in
        List.iter
          (fun (k, e) ->
            if not (Hashtbl.mem tbl k) then order := k :: !order;
            Hashtbl.replace tbl k e)
          bindings;
        if n_lines >= compact_threshold && n_lines > Hashtbl.length tbl then
          compact_file path
            (List.rev_map
               (fun k -> line_of_binding k (Hashtbl.find tbl k))
               !order);
        Some (Journal.open_writer ~fsync path)
  in
  {
    tbl;
    mutex = Mutex.create ();
    writer;
    hits = Obs.Counter.make "serve.cache.hits";
    misses = Obs.Counter.make "serve.cache.misses";
    stores = Obs.Counter.make "serve.cache.stores";
  }

let locked c f =
  Mutex.lock c.mutex;
  match f () with
  | v ->
      Mutex.unlock c.mutex;
      v
  | exception e ->
      Mutex.unlock c.mutex;
      raise e

let find c vkey =
  locked c (fun () ->
      match Hashtbl.find_opt c.tbl vkey with
      | Some e ->
          Obs.Counter.incr_always c.hits;
          Some e
      | None ->
          Obs.Counter.incr_always c.misses;
          None)

let store c vkey entry =
  if cacheable entry then
    locked c (fun () ->
        if not (Hashtbl.mem c.tbl vkey) then begin
          Hashtbl.replace c.tbl vkey entry;
          Obs.Counter.incr_always c.stores;
          match c.writer with
          | Some w -> Journal.write_line w (line_of_binding vkey entry)
          | None -> ()
        end)

let size c = locked c (fun () -> Hashtbl.length c.tbl)
let hits c = Obs.Counter.value c.hits
let misses c = Obs.Counter.value c.misses

let close c =
  locked c (fun () ->
      match c.writer with Some w -> Journal.close w | None -> ())
