(* Fault-isolated batch runner (robustness layer).

   Batteries, corpora and diy sweeps run thousands of tests; one
   malformed or explosive test must not take the batch down.  Each item
   runs under a fresh per-test budget with every exception caught and
   classified into a unified taxonomy (parse / lex / type / lint /
   budget / internal, with source positions when available), producing a
   structured pass/fail/error/gave-up report with JSON output and a
   deterministic exit-code policy:

     0  every item passed
     1  some verdict mismatched its expectation (FAIL)
     2  some item errored (parse/lex/type/lint/internal)
     3  some item exceeded its budget, none failed or errored
     4  some item crashed its isolated worker (signal death under
        Harness.Pool: segfault, OOM kill, ...)

   (4 beats 2 beats 1 beats 3 when a batch mixes them.) *)

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

type error_class =
  | Parse
  | Lex
  | Type
  | Lint
  | Budget
  | Internal
  | Crash of int (* worker died on this signal (process isolation only) *)

let class_to_string = function
  | Parse -> "parse"
  | Lex -> "lex"
  | Type -> "type"
  | Lint -> "lint"
  | Budget -> "budget"
  | Internal -> "internal"
  | Crash _ -> "crash"

type error_info = {
  cls : error_class;
  msg : string;
  line : int option; (* source position, when the error carries one *)
}

let classify_exn : exn -> error_info = function
  | Litmus.Parser.Error (msg, line) -> { cls = Parse; msg; line = Some line }
  | Litmus.Lexer.Error (msg, line) -> { cls = Lex; msg; line = Some line }
  | Cat.Parser.Error (msg, line) -> { cls = Parse; msg; line = Some line }
  | Cat.Lexer.Error (msg, line) -> { cls = Lex; msg; line = Some line }
  | Cat.Interp.Type_error msg -> { cls = Type; msg; line = None }
  | Exec.Budget.Exceeded r ->
      { cls = Budget; msg = Exec.Budget.reason_to_string r; line = None }
  | Failure msg -> { cls = Internal; msg; line = None }
  | Stack_overflow -> { cls = Internal; msg = "stack overflow"; line = None }
  | Not_found -> { cls = Internal; msg = "not found"; line = None }
  | exn -> { cls = Internal; msg = Printexc.to_string exn; line = None }

let pp_error ppf e =
  match e.line with
  | Some l -> Fmt.pf ppf "%s error, line %d: %s" (class_to_string e.cls) l e.msg
  | None -> Fmt.pf ppf "%s error: %s" (class_to_string e.cls) e.msg

(* ------------------------------------------------------------------ *)
(* Items and statuses                                                  *)
(* ------------------------------------------------------------------ *)

type source =
  [ `Text of string (* litmus concrete syntax *)
  | `File of string (* path to a .litmus file *)
  | `Ast of Litmus.Ast.t (* already parsed *) ]

type item = {
  id : string;
  source : source;
  expected : Exec.Check.verdict option; (* golden verdict, if any *)
}

type status =
  | Pass of Exec.Check.verdict (* completed; matched expectation if any *)
  | Fail of { expected : Exec.Check.verdict; got : Exec.Check.verdict }
  | Gave_up of Exec.Budget.reason (* budget exceeded: partial result *)
  | Err of error_info

type entry = {
  item_id : string;
  status : status;
  time : float; (* wall-clock seconds for this item *)
  n_candidates : int; (* candidates enumerated (partial on Gave_up) *)
  retried : bool; (* true = this is the second attempt after a crash *)
  result : Exec.Check.result option;
      (* the full check result when one was produced (Pass/Fail) *)
}

type report = {
  entries : entry list;
  n_pass : int;
  n_fail : int;
  n_error : int;
  n_crash : int; (* Err entries whose class is Crash (counted apart) *)
  n_gave_up : int;
  wall : float; (* wall-clock seconds for the whole batch *)
}

let is_crash (e : entry) =
  match e.status with Err { cls = Crash _; _ } -> true | _ -> false

(* A model may need the per-item running budget (cat interpretation shares
   the test's deadline), so batches take a budget-indexed factory. *)
type model_factory = Exec.Budget.t option -> (module Exec.Check.MODEL)

let static_model m : model_factory = fun _ -> m

let of_battery (entries : Battery.entry list) =
  List.map
    (fun (e : Battery.entry) ->
      { id = e.Battery.name; source = `Text e.Battery.source; expected = Some e.Battery.lk })
    entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Running one item                                                    *)
(* ------------------------------------------------------------------ *)

exception Lint_failed of string

let run_item ?(limits = Exec.Budget.default) ?(lint = true)
    ~(model : model_factory) (item : item) =
  let t0 = Unix.gettimeofday () in
  let budget =
    if Exec.Budget.is_unlimited limits then None
    else Some (Exec.Budget.start limits)
  in
  let finish ?result status =
    {
      item_id = item.id;
      status;
      retried = false;
      time = Unix.gettimeofday () -. t0;
      n_candidates =
        (match (result, budget) with
        | Some (r : Exec.Check.result), _ -> r.Exec.Check.n_candidates
        | None, Some b -> Exec.Budget.candidates_seen b
        | None, None -> 0);
      result;
    }
  in
  match
    (* everything — file IO, parsing, linting, checking — inside the
       fault barrier; no exception escapes an item *)
    let test =
      match item.source with
      | `Ast t -> t
      | `Text s -> Litmus.parse s
      | `File p -> Litmus.parse (read_file p)
    in
    (if lint then
       match Litmus.Lint.errors (Litmus.Lint.check_all test) with
       | [] -> ()
       | issues ->
           raise
             (Lint_failed
                (String.concat "; "
                   (List.map
                      (fun (i : Litmus.Lint.issue) -> i.Litmus.Lint.message)
                      issues))));
    let r = Exec.Check.run ?budget (model budget) test in
    match r.Exec.Check.verdict with
    | Exec.Check.Unknown (Exec.Check.Budget_exceeded reason) ->
        finish (Gave_up reason)
    | Exec.Check.Unknown (Exec.Check.Model_error exn) ->
        (* the check caught the model's exception; recover its class *)
        finish (Err (classify_exn exn))
    | got -> (
        match item.expected with
        | Some expected when expected <> got ->
            finish ~result:r (Fail { expected; got })
        | _ -> finish ~result:r (Pass got))
  with
  | entry -> entry
  | exception Lint_failed msg -> finish (Err { cls = Lint; msg; line = None })
  | exception Exec.Budget.Exceeded reason -> finish (Gave_up reason)
  | exception exn -> finish (Err (classify_exn exn))

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let summarise ~wall entries =
  let count p = List.length (List.filter p entries) in
  {
    entries;
    n_pass = count (fun e -> match e.status with Pass _ -> true | _ -> false);
    n_fail = count (fun e -> match e.status with Fail _ -> true | _ -> false);
    n_error =
      count (fun e ->
          match e.status with Err _ -> not (is_crash e) | _ -> false);
    n_crash = count is_crash;
    n_gave_up =
      count (fun e -> match e.status with Gave_up _ -> true | _ -> false);
    wall;
  }

let run ?limits ?lint ?(model = static_model (module Lkmm : Exec.Check.MODEL))
    (items : item list) =
  let t0 = Unix.gettimeofday () in
  let entries = List.map (run_item ?limits ?lint ~model) items in
  summarise ~wall:(Unix.gettimeofday () -. t0) entries

(* The deterministic exit-code policy (see the header comment):
   crash > error > fail > gave-up. *)
let exit_code r =
  if r.n_crash > 0 then 4
  else if r.n_error > 0 then 2
  else if r.n_fail > 0 then 1
  else if r.n_gave_up > 0 then 3
  else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_status ppf = function
  | Pass v -> Fmt.pf ppf "PASS (%s)" (Exec.Check.verdict_to_string v)
  | Fail { expected; got } ->
      Fmt.pf ppf "FAIL (expected %s, got %s)"
        (Exec.Check.verdict_to_string expected)
        (Exec.Check.verdict_to_string got)
  | Gave_up r -> Fmt.pf ppf "GAVE UP (%s)" (Exec.Budget.reason_to_string r)
  | Err e -> Fmt.pf ppf "ERROR (%a)" pp_error e

let pp_entry ppf e =
  Fmt.pf ppf "%-45s %a  [%.3fs]" e.item_id pp_status e.status e.time

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,%d items: %d pass, %d fail, %d error, %d crash, %d \
              gave up (%.3fs)@]"
    Fmt.(list ~sep:cut pp_entry)
    r.entries
    (List.length r.entries)
    r.n_pass r.n_fail r.n_error r.n_crash r.n_gave_up r.wall

(* Minimal JSON emission (no JSON library in the tree). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Reports and journal lines carry this version so downstream consumers
   can detect format changes; bump on any incompatible field change. *)
let schema_version = 1

let entry_to_json e =
  let base =
    Printf.sprintf "\"id\": \"%s\", \"time_s\": %.6f, \"candidates\": %d%s%s"
      (json_escape e.item_id) e.time e.n_candidates
      (match e.result with
      | Some r when r.Exec.Check.n_prefiltered > 0 ->
          Printf.sprintf ", \"prefiltered\": %d" r.Exec.Check.n_prefiltered
      | _ -> "")
      (if e.retried then ", \"retried\": true" else "")
  in
  let rest =
    match e.status with
    | Pass v ->
        Printf.sprintf "\"status\": \"pass\", \"verdict\": \"%s\""
          (json_escape (Exec.Check.verdict_to_string v))
    | Fail { expected; got } ->
        Printf.sprintf
          "\"status\": \"fail\", \"expected\": \"%s\", \"got\": \"%s\""
          (json_escape (Exec.Check.verdict_to_string expected))
          (json_escape (Exec.Check.verdict_to_string got))
    | Gave_up r ->
        Printf.sprintf "\"status\": \"gave_up\", \"reason\": \"%s\""
          (json_escape (Exec.Budget.reason_to_string r))
    | Err err ->
        Printf.sprintf
          "\"status\": \"error\", \"class\": \"%s\", \"msg\": \"%s\"%s%s"
          (class_to_string err.cls) (json_escape err.msg)
          (match err.cls with
          | Crash s -> Printf.sprintf ", \"signal\": %d" s
          | _ -> "")
          (match err.line with
          | Some l -> Printf.sprintf ", \"line\": %d" l
          | None -> "")
  in
  Printf.sprintf "{%s, %s}" base rest

(* Per-batch perf aggregates: the slowest item and the candidate-count
   peak, so perf regressions are attributable to a single test. *)
let slowest r =
  List.fold_left
    (fun acc (e : entry) ->
      match acc with
      | Some (m : entry) when m.time >= e.time -> acc
      | _ -> Some e)
    None r.entries

let peak_candidates r =
  List.fold_left
    (fun acc (e : entry) ->
      match acc with
      | Some (m : entry) when m.n_candidates >= e.n_candidates -> acc
      | _ -> Some e)
    None r.entries

let to_json r =
  let stat name (e : entry option) value =
    match e with
    | None -> ""
    | Some e ->
        Printf.sprintf " \"%s\": %s, \"%s_id\": \"%s\"," name (value e) name
          (json_escape e.item_id)
  in
  Printf.sprintf
    "{\"schema_version\": %d, \"total\": %d, \"pass\": %d, \"fail\": %d, \
     \"error\": %d, \"crash\": %d, \"gave_up\": %d, \"wall_s\": %.6f,%s%s \
     \"exit_code\": %d,\n\"entries\": [\n%s\n]}"
    schema_version
    (List.length r.entries)
    r.n_pass r.n_fail r.n_error r.n_crash r.n_gave_up r.wall
    (stat "max_time_s" (slowest r) (fun e -> Printf.sprintf "%.6f" e.time))
    (stat "peak_candidates" (peak_candidates r) (fun e ->
         string_of_int e.n_candidates))
    (exit_code r)
    (String.concat ",\n" (List.map entry_to_json r.entries))
