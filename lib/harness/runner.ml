(* Fault-isolated batch runner (robustness layer).

   Batteries, corpora and diy sweeps run thousands of tests; one
   malformed or explosive test must not take the batch down.  Each item
   runs under a fresh per-test budget with every exception caught and
   classified into a unified taxonomy (parse / lex / type / lint /
   budget / internal, with source positions when available), producing a
   structured pass/fail/error/gave-up report.

   The result types — error taxonomy, per-item entries, batch reports,
   their JSON rendering and the exit-code policy — live in {!Report}
   (the unified schema shared with {!Pool} and {!Journal}); they are
   re-exported here by equation, so [Runner.entry] and [Report.entry]
   are interchangeable and pre-existing callers compile unchanged. *)

(* ------------------------------------------------------------------ *)
(* Error taxonomy (defined in Report, re-exported)                     *)
(* ------------------------------------------------------------------ *)

type error_class = Report.error_class =
  | Parse
  | Lex
  | Type
  | Lint
  | Budget
  | Internal
  | Crash of int (* worker died on this signal (process isolation only) *)

let class_to_string = Report.class_to_string

type error_info = Report.error_info = {
  cls : error_class;
  msg : string;
  line : int option;
}

let classify_exn : exn -> error_info = function
  | Litmus.Parser.Error (msg, line) -> { cls = Parse; msg; line = Some line }
  | Litmus.Lexer.Error (msg, line) -> { cls = Lex; msg; line = Some line }
  | Cat.Parser.Error (msg, line) -> { cls = Parse; msg; line = Some line }
  | Cat.Lexer.Error (msg, line) -> { cls = Lex; msg; line = Some line }
  | Cat.Interp.Type_error msg -> { cls = Type; msg; line = None }
  | Exec.Budget.Exceeded r ->
      { cls = Budget; msg = Exec.Budget.reason_to_string r; line = None }
  | Failure msg -> { cls = Internal; msg; line = None }
  | Stack_overflow -> { cls = Internal; msg = "stack overflow"; line = None }
  | Not_found -> { cls = Internal; msg = "not found"; line = None }
  | exn -> { cls = Internal; msg = Printexc.to_string exn; line = None }

let pp_error = Report.pp_error

(* ------------------------------------------------------------------ *)
(* Items and statuses                                                  *)
(* ------------------------------------------------------------------ *)

type source =
  [ `Text of string (* litmus concrete syntax *)
  | `File of string (* path to a .litmus file *)
  | `Ast of Litmus.Ast.t (* already parsed *) ]

type item = {
  id : string;
  source : source;
  expected : Exec.Check.verdict option; (* golden verdict, if any *)
}

type status = Report.status =
  | Pass of Exec.Check.verdict
  | Fail of { expected : Exec.Check.verdict; got : Exec.Check.verdict }
  | Gave_up of Exec.Budget.reason
  | Err of error_info

type entry = Report.entry = {
  item_id : string;
  status : status;
  time : float;
  n_candidates : int;
  retried : bool;
  result : Exec.Check.result option;
}

type report = Report.t = {
  entries : entry list;
  n_pass : int;
  n_fail : int;
  n_error : int;
  n_crash : int;
  n_gave_up : int;
  wall : float;
}

let is_crash = Report.is_crash

(* Deprecation shims, one release: the budget-indexed (model, batch)
   pairing predating {!Exec.Oracle.t}.  Kept so out-of-tree callers
   keep compiling (with an alert pointing at [Oracle.t], see the mli);
   in-tree, engine selection flows through oracles only. *)
type model_factory = Exec.Budget.t option -> (module Exec.Check.MODEL)

let static_model m : model_factory = fun _ -> m

type batch_factory = Exec.Budget.t option -> Exec.Check.batch_fn

let static_batch b : batch_factory = fun _ -> b

(* The compatibility funnel: an explicit oracle wins; a legacy (model,
   batch) pair is wrapped into an anonymous oracle (named after the
   model, batch engine iff one came along); nothing at all means the
   native LK oracle with all three engines. *)
let resolve_oracle ?oracle ?model ?batch () =
  match oracle with
  | Some o -> o
  | None -> (
      match (model, batch) with
      | None, None -> Lkmm.oracle
      | Some m, b ->
          let (module M : Exec.Check.MODEL) = m None in
          Exec.Oracle.make ~name:M.name ~model:m ?batch:b ()
      | None, Some b ->
          Exec.Oracle.make ~name:Lkmm.name
            ~model:(fun _ -> (module Lkmm : Exec.Check.MODEL))
            ~batch:b ())

let of_battery (entries : Battery.entry list) =
  List.map
    (fun (e : Battery.entry) ->
      { id = e.Battery.name; source = `Text e.Battery.source; expected = Some e.Battery.lk })
    entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Running one item                                                    *)
(* ------------------------------------------------------------------ *)

exception Lint_failed of string

let run_item ?(limits = Exec.Budget.default) ?deadline ?(lint = true) ?explainer
    ?delta ?backend ?(batch : batch_factory option)
    ?(model : model_factory option) ?oracle (item : item) =
  let oracle = resolve_oracle ?oracle ?model ?batch () in
  let t0 = Unix.gettimeofday () in
  let budget =
    match deadline with
    | Some d -> Some (Exec.Budget.start_at ~deadline:d limits)
    | None ->
        if Exec.Budget.is_unlimited limits then None
        else Some (Exec.Budget.start limits)
  in
  let finish ?result status =
    {
      item_id = item.id;
      status;
      retried = false;
      time = Unix.gettimeofday () -. t0;
      n_candidates =
        (match (result, budget) with
        | Some (r : Exec.Check.result), _ -> r.Exec.Check.n_candidates
        | None, Some b -> Exec.Budget.candidates_seen b
        | None, None -> 0);
      result;
    }
  in
  (* the "item" span brackets the whole fault barrier, so parse, lint
     and check (which opens its own spans) all nest under it *)
  Obs.with_span ~item:item.id "item" (fun () ->
      match
        (* everything — file IO, parsing, linting, checking — inside the
           fault barrier; no exception escapes an item *)
        let test =
          Obs.with_span ~item:item.id "parse" (fun () ->
              match item.source with
              | `Ast t -> t
              | `Text s -> Litmus.parse s
              | `File p -> Litmus.parse (read_file p))
        in
        Obs.with_span ~item:item.id "lint" (fun () ->
            if lint then
              match Litmus.Lint.errors (Litmus.Lint.check_all test) with
              | [] -> ()
              | issues ->
                  raise
                    (Lint_failed
                       (String.concat "; "
                          (List.map
                             (fun (i : Litmus.Lint.issue) ->
                               i.Litmus.Lint.message)
                             issues))));
        let r = Exec.Oracle.run ?budget ?delta ?explainer ?backend oracle test in
        match r.Exec.Check.verdict with
        | Exec.Check.Unknown (Exec.Check.Budget_exceeded reason) ->
            finish (Gave_up reason)
        | Exec.Check.Unknown (Exec.Check.Model_error exn) ->
            (* the check caught the model's exception; recover its class *)
            finish (Err (classify_exn exn))
        | got -> (
            match item.expected with
            | Some expected when expected <> got ->
                finish ~result:r (Fail { expected; got })
            | _ -> finish ~result:r (Pass got))
      with
      | entry -> entry
      | exception Lint_failed msg ->
          finish (Err { cls = Lint; msg; line = None })
      | exception Exec.Budget.Exceeded reason -> finish (Gave_up reason)
      | exception exn -> finish (Err (classify_exn exn)))

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

let summarise = Report.summarise

let run ?limits ?lint ?explainer ?delta ?backend ?model ?batch ?oracle
    (items : item list) =
  let oracle = resolve_oracle ?oracle ?model ?batch () in
  let t0 = Unix.gettimeofday () in
  let entries =
    List.map (run_item ?limits ?lint ?explainer ?delta ?backend ~oracle) items
  in
  summarise ~wall:(Unix.gettimeofday () -. t0) entries

let exit_code = Report.exit_code

(* ------------------------------------------------------------------ *)
(* Rendering (all in Report; kept under the old names)                 *)
(* ------------------------------------------------------------------ *)

let pp_status = Report.pp_status
let pp_entry = Report.pp_entry
let pp = Report.pp
let json_escape = Report.json_escape
let schema_version = Report.schema_version
let entry_to_json = Report.entry_to_json
let to_json = Report.to_json
