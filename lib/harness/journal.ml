(* Crash-safe run journal (robustness layer).

   Long batteries must survive being killed: the journal is an
   append-only JSONL file with one self-contained line per completed
   item, written and flushed as the run progresses.  A [kill -9]
   mid-run loses at most the line being written; {!load} tolerates a
   truncated final line (and any other unparseable line) by dropping
   it, so a journal is always readable after a crash.

   A journal line is the runner's per-entry JSON plus a [schema_version]
   field and, for [gave_up] entries, a structured reason that
   round-trips exactly:

     {"schema_version": 3, "id": "corpus/SB.litmus", "time_s": 0.003,
      "candidates": 12, "status": "pass", "verdict": "Allow"}

   Duplicate ids can appear legitimately (a crashed item retried and
   re-journalled, or a resumed run overlapping the original); the last
   line for an id wins.  Resuming a run means loading the journal,
   recycling every journalled entry whose id matches a requested item,
   and running only the remainder. *)

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader                                               *)
(* ------------------------------------------------------------------ *)

(* The tree ships no JSON library; emission lives in {!Report.to_json}
   and this is its reading half.  Full JSON value syntax, no streaming:
   a journal line is a few hundred bytes. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Malformed of string

  let fail msg = raise (Malformed msg)

  type state = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> fail (Printf.sprintf "expected '%c' at %d" c st.pos)

  let literal st word value =
    let n = String.length word in
    if
      st.pos + n <= String.length st.s
      && String.sub st.s st.pos n = word
    then begin
      st.pos <- st.pos + n;
      value
    end
    else fail ("bad literal at " ^ string_of_int st.pos)

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
          advance st;
          match peek st with
          | None -> fail "unterminated escape"
          | Some c ->
              advance st;
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if st.pos + 4 > String.length st.s then fail "short \\u";
                  let hex = String.sub st.s st.pos 4 in
                  st.pos <- st.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* journal strings are ASCII-escaped on the way out, so
                     codes above 0xff do not occur; keep the low byte *)
                  Buffer.add_char buf (Char.chr (code land 0xff))
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              go ()
          )
      | Some c ->
          advance st;
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let rec go () =
      match peek st with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    if st.pos = start then fail "empty number";
    match float_of_string_opt (String.sub st.s start (st.pos - start)) with
    | Some f -> f
    | None -> fail "bad number"

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | None -> fail "unexpected end"
    | Some '{' ->
        advance st;
        skip_ws st;
        if peek st = Some '}' then begin
          advance st;
          Obj []
        end
        else
          let rec members acc =
            skip_ws st;
            let key = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                members ((key, v) :: acc)
            | Some '}' ->
                advance st;
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance st;
        skip_ws st;
        if peek st = Some ']' then begin
          advance st;
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                elements (v :: acc)
            | Some ']' ->
                advance st;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (parse_number st)

  let of_string s =
    let st = { s; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail "trailing garbage";
    v

  let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
  let bool_ = function Bool b -> Some b | _ -> None

  (* Re-render a parsed value (member order preserved; numbers via %g,
     integers printed without a point).  Lets a tool extract one member
     of a line — lkserve --metrics-dump, obs_report --postmortem-json —
     and print it as JSON again. *)
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | ch when Char.code ch < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
        | ch -> Buffer.add_char buf ch)
      s;
    Buffer.contents buf

  let rec to_string = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.0f" f
        else Printf.sprintf "%g" f
    | Str s -> "\"" ^ escape s ^ "\""
    | Arr vs -> "[" ^ String.concat ", " (List.map to_string vs) ^ "]"
    | Obj kvs ->
        "{"
        ^ String.concat ", "
            (List.map
               (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v)
               kvs)
        ^ "}"
end

(* ------------------------------------------------------------------ *)
(* Entry <-> line                                                      *)
(* ------------------------------------------------------------------ *)

(* [Gave_up] reasons are structured so a resumed report equals the
   uninterrupted one; the human-readable [reason] string from the
   runner's JSON is kept alongside for consumers that only display. *)
let reason_fields (r : Exec.Budget.reason) =
  match r with
  | Exec.Budget.Timed_out s ->
      Printf.sprintf ", \"reason_kind\": \"timed_out\", \"reason_arg\": %g" s
  | Exec.Budget.Too_many_events (n, m) ->
      Printf.sprintf
        ", \"reason_kind\": \"too_many_events\", \"reason_arg\": %d, \
         \"reason_arg2\": %d"
        n m
  | Exec.Budget.Too_many_candidates m ->
      Printf.sprintf
        ", \"reason_kind\": \"too_many_candidates\", \"reason_arg\": %d" m
  | Exec.Budget.Heap_exceeded mb ->
      Printf.sprintf ", \"reason_kind\": \"heap_exceeded\", \"reason_arg\": %d"
        mb

let line_of_entry (e : Report.entry) =
  let extra =
    match e.Report.status with
    | Report.Gave_up r -> reason_fields r
    | _ -> ""
  in
  let body = Report.entry_to_json e in
  (* splice schema_version and the structured extras into the object *)
  Printf.sprintf "{\"schema_version\": %d, %s%s}" Report.schema_version
    (String.sub body 1 (String.length body - 2))
    extra

let reason_of_json j =
  let arg name = Option.bind (Json.mem name j) Json.num in
  match Option.bind (Json.mem "reason_kind" j) Json.str with
  | Some "timed_out" ->
      Option.map (fun s -> Exec.Budget.Timed_out s) (arg "reason_arg")
  | Some "too_many_events" -> (
      match (arg "reason_arg", arg "reason_arg2") with
      | Some n, Some m ->
          Some (Exec.Budget.Too_many_events (int_of_float n, int_of_float m))
      | _ -> None)
  | Some "too_many_candidates" ->
      Option.map
        (fun m -> Exec.Budget.Too_many_candidates (int_of_float m))
        (arg "reason_arg")
  | Some "heap_exceeded" ->
      Option.map
        (fun mb -> Exec.Budget.Heap_exceeded (int_of_float mb))
        (arg "reason_arg")
  | _ -> None

let class_of_json j =
  match Option.bind (Json.mem "class" j) Json.str with
  | Some "parse" -> Some Report.Parse
  | Some "lex" -> Some Report.Lex
  | Some "type" -> Some Report.Type
  | Some "lint" -> Some Report.Lint
  | Some "budget" -> Some Report.Budget
  | Some "internal" -> Some Report.Internal
  | Some "crash" ->
      Some
        (Report.Crash
           (match Option.bind (Json.mem "signal" j) Json.num with
           | Some s -> int_of_float s
           | None -> 0))
  | _ -> None

let verdict_of_json j key =
  match Option.bind (Json.mem key j) Json.str with
  | Some "Allow" -> Some Exec.Check.Allow
  | Some "Forbid" -> Some Exec.Check.Forbid
  | _ -> None (* Unknown verdicts never appear in Pass/Fail statuses *)

let entry_of_line line : Report.entry option =
  match Json.of_string line with
  | exception Json.Malformed _ -> None
  | j -> (
      let ( let* ) = Option.bind in
      let* id = Option.bind (Json.mem "id" j) Json.str in
      let time =
        match Option.bind (Json.mem "time_s" j) Json.num with
        | Some t -> t
        | None -> 0.
      in
      let n_candidates =
        match Option.bind (Json.mem "candidates" j) Json.num with
        | Some n -> int_of_float n
        | None -> 0
      in
      let retried =
        Option.value ~default:false
          (Option.bind (Json.mem "retried" j) Json.bool_)
      in
      let* status =
        match Option.bind (Json.mem "status" j) Json.str with
        | Some "pass" ->
            Option.map (fun v -> Report.Pass v) (verdict_of_json j "verdict")
        | Some "fail" ->
            let* expected = verdict_of_json j "expected" in
            let* got = verdict_of_json j "got" in
            Some (Report.Fail { expected; got })
        | Some "gave_up" ->
            Option.map (fun r -> Report.Gave_up r) (reason_of_json j)
        | Some "error" ->
            let* cls = class_of_json j in
            let msg =
              Option.value ~default:""
                (Option.bind (Json.mem "msg" j) Json.str)
            in
            let line =
              Option.map int_of_float
                (Option.bind (Json.mem "line" j) Json.num)
            in
            Some (Report.Err { Report.cls; msg; line })
        | _ -> None
      in
      Some
        {
          Report.item_id = id;
          status;
          time;
          n_candidates;
          retried;
          result = None (* full check results are not journalled *);
        })

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; path : string; fsync : bool }

(* Append mode: resuming writes into the same journal, so the recycled
   lines stay and the file remains a complete record of the battery.

   [~fsync] (off by default) forces every appended line to stable
   storage before {!write} returns: a flush hands the line to the
   kernel, surviving a process kill but not a power cut or OS crash;
   fsync survives those too, at a per-append cost.  The verdict cache
   of the checking service opts in, batch journals usually do not. *)
let open_writer ?(fsync = false) path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { oc; path; fsync }

let writer_path w = w.path

(* Raw line append (the verdict cache journals its own line shape
   through the same durability path). *)
let write_line w line =
  output_string w.oc line;
  output_char w.oc '\n';
  flush w.oc;
  if w.fsync then
    try Unix.fsync (Unix.descr_of_out_channel w.oc)
    with Unix.Unix_error _ -> ()

(* One line per entry, flushed immediately: after a hard kill the
   journal is complete up to the last finished item. *)
let write w (e : Report.entry) = write_line w (line_of_entry e)

let close w = close_out_noerr w.oc

(* ------------------------------------------------------------------ *)
(* Streaming readers                                                    *)
(* ------------------------------------------------------------------ *)

(* Campaign-scale journals hold 10^5+ lines; the streaming readers visit
   one line at a time so a resume never materialises the whole file as a
   list.  Everything below (tolerant loading, partitioning, the verdict
   cache's recovery, the campaign manifest replay) is built on these. *)

let iter_lines path f =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    (try
       while true do
         f (input_line ic)
       done
     with End_of_file -> ());
    close_in_noerr ic
  end

let fold_lines path ~init ~f =
  let acc = ref init in
  iter_lines path (fun l -> acc := f !acc l);
  !acc

(* Parsed-entry streaming: torn or garbage lines are skipped, exactly as
   {!load} drops them.  No duplicate-id resolution — the caller sees the
   raw append order (last occurrence supersedes for callers that fold
   into a table). *)
let fold path ~init ~f =
  fold_lines path ~init ~f:(fun acc l ->
      match entry_of_line l with Some e -> f acc e | None -> acc)

let iter path f = fold path ~init:() ~f:(fun () e -> f e)

(* Tolerant raw loading shared with non-entry JSONL journals: every
   line that parses as JSON, in file order; torn or garbage lines are
   dropped exactly as {!load} drops them. *)
let load_json path =
  fold_lines path ~init:[] ~f:(fun acc l ->
      match Json.of_string l with
      | j -> j :: acc
      | exception Json.Malformed _ -> acc)
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Loading and resuming                                                *)
(* ------------------------------------------------------------------ *)

let load path =
  (* one streaming pass: the LAST line for an id wins (it supersedes
     earlier attempts), but the first occurrence keeps its position *)
  let best = Hashtbl.create 64 in
  let order =
    fold path ~init:[] ~f:(fun order (e : Report.entry) ->
        let fresh = not (Hashtbl.mem best e.Report.item_id) in
        Hashtbl.replace best e.Report.item_id e;
        if fresh then e.Report.item_id :: order else order)
  in
  List.rev_map (Hashtbl.find best) order

(* [partition journal items] — split [items] into (already-journalled
   entries, still-to-run items).  Journalled entries are keyed by item
   id; journal lines for unknown ids are ignored.  Streams the journal:
   only entries whose id matches a requested item are retained. *)
let partition path (items : Runner.item list) =
  let wanted = Hashtbl.create 64 in
  List.iter (fun (i : Runner.item) -> Hashtbl.replace wanted i.Runner.id ()) items;
  let by_id = Hashtbl.create 64 in
  iter path (fun (e : Report.entry) ->
      if Hashtbl.mem wanted e.Report.item_id then
        Hashtbl.replace by_id e.Report.item_id e);
  let recycled, todo =
    List.partition_map
      (fun (i : Runner.item) ->
        match Hashtbl.find_opt by_id i.Runner.id with
        | Some e -> Left e
        | None -> Right i)
      items
  in
  (recycled, todo)
