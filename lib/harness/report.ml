(* The unified result schema (observability/API layer).

   Before this module, three shapes of "what happened" coexisted:
   {!Exec.Check.result} (one check), the runner's per-item entries and
   batch report, and the pool's crash/retry statistics folded into the
   same records by hand.  Everything downstream — JSON reports, the
   journal, resume, the CLIs' summaries — now reads and writes this one
   versioned type: an {!entry} wraps the per-item outcome (including
   the full {!Exec.Check.result} when one was produced), a {!t}
   aggregates a batch, and both serialise through the functions here
   and nowhere else.

   Schema history:

   v1 (PR 1-3)  per-entry: id, time_s, candidates, status fields,
                [prefiltered] only when non-zero, [retried] flag;
                top level: totals, wall_s, max_time_s/peak_candidates
                stats, exit_code.
   v2 (this PR) per-entry: [prefiltered], [consistent] and [matching]
                are always present when a check result is (previously
                [prefiltered] appeared only when non-zero and the other
                two not at all); top level additionally carries
                [retried] (count of retried entries) and, when the
                observability collector is enabled, a [metrics] object
                ({!Obs.summary_json}: counters, per-phase span totals,
                histograms).  No v1 field changed meaning or name, so
                v1 consumers that ignore unknown fields read v2
                documents unchanged; journals written at v1 load at v2
                (the journal reader has never keyed on the version).
   v3 (PR 6)    per-entry: when a check ran with an explainer and the
                verdict is Forbid, an [explanations] array rides along
                (one object per failed check: name, constraint kind,
                the witnessing cycle/pairs as [steps] with primitive
                provenance, and the event labels — the exact
                {!Exec.Explain.to_json} shape, already self-validated
                before serialisation).  Absent otherwise, so v2
                consumers that ignore unknown fields read v3 documents
                unchanged.
   v4 (this PR) per-entry: when a check result is present it carries
                [backend] ("enum" | "batch" | "sat" — the engine that
                produced it, {!Exec.Check.backend}) and, for the SAT
                engine only, a [sat] object ({"conflicts": n,
                "decisions": n, "fallback": bool} — solver counters,
                [fallback] true when the model had no solver and the
                check fell back enumeratively).  Absent on entries
                without a result, so v3 consumers that ignore unknown
                fields read v4 documents unchanged.

   The exit-code policy lives here too, because it is a function of the
   report alone: 0 = all pass, 1 = some FAIL, 2 = some ERROR, 3 = some
   gave-up and nothing worse, 4 = some crashed worker; 4 beats 2 beats
   1 beats 3 in mixed batches. *)

(* ------------------------------------------------------------------ *)
(* Error taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

type error_class =
  | Parse
  | Lex
  | Type
  | Lint
  | Budget
  | Internal
  | Crash of int (* worker died on this signal (process isolation only) *)

let class_to_string = function
  | Parse -> "parse"
  | Lex -> "lex"
  | Type -> "type"
  | Lint -> "lint"
  | Budget -> "budget"
  | Internal -> "internal"
  | Crash _ -> "crash"

type error_info = {
  cls : error_class;
  msg : string;
  line : int option; (* source position, when the error carries one *)
}

let pp_error ppf e =
  match e.line with
  | Some l -> Fmt.pf ppf "%s error, line %d: %s" (class_to_string e.cls) l e.msg
  | None -> Fmt.pf ppf "%s error: %s" (class_to_string e.cls) e.msg

(* ------------------------------------------------------------------ *)
(* Entries and reports                                                 *)
(* ------------------------------------------------------------------ *)

type status =
  | Pass of Exec.Check.verdict (* completed; matched expectation if any *)
  | Fail of { expected : Exec.Check.verdict; got : Exec.Check.verdict }
  | Gave_up of Exec.Budget.reason (* budget exceeded: partial result *)
  | Err of error_info

type entry = {
  item_id : string;
  status : status;
  time : float; (* wall-clock seconds for this item *)
  n_candidates : int; (* candidates enumerated (partial on Gave_up) *)
  retried : bool; (* true = this is the second attempt after a crash *)
  result : Exec.Check.result option;
      (* the full check result when one was produced (Pass/Fail) *)
}

type t = {
  entries : entry list;
  n_pass : int;
  n_fail : int;
  n_error : int;
  n_crash : int; (* Err entries whose class is Crash (counted apart) *)
  n_gave_up : int;
  wall : float; (* wall-clock seconds for the whole batch *)
}

let is_crash (e : entry) =
  match e.status with Err { cls = Crash _; _ } -> true | _ -> false

let summarise ~wall entries =
  let count p = List.length (List.filter p entries) in
  {
    entries;
    n_pass = count (fun e -> match e.status with Pass _ -> true | _ -> false);
    n_fail = count (fun e -> match e.status with Fail _ -> true | _ -> false);
    n_error =
      count (fun e ->
          match e.status with Err _ -> not (is_crash e) | _ -> false);
    n_crash = count is_crash;
    n_gave_up =
      count (fun e -> match e.status with Gave_up _ -> true | _ -> false);
    wall;
  }

(* The deterministic exit-code policy (see the header comment):
   crash > error > fail > gave-up. *)
let exit_code r =
  if r.n_crash > 0 then 4
  else if r.n_error > 0 then 2
  else if r.n_fail > 0 then 1
  else if r.n_gave_up > 0 then 3
  else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_status ppf = function
  | Pass v -> Fmt.pf ppf "PASS (%s)" (Exec.Check.verdict_to_string v)
  | Fail { expected; got } ->
      Fmt.pf ppf "FAIL (expected %s, got %s)"
        (Exec.Check.verdict_to_string expected)
        (Exec.Check.verdict_to_string got)
  | Gave_up r -> Fmt.pf ppf "GAVE UP (%s)" (Exec.Budget.reason_to_string r)
  | Err e -> Fmt.pf ppf "ERROR (%a)" pp_error e

let pp_entry ppf e =
  Fmt.pf ppf "%-45s %a  [%.3fs]" e.item_id pp_status e.status e.time

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,%d items: %d pass, %d fail, %d error, %d crash, %d \
              gave up (%.3fs)@]"
    Fmt.(list ~sep:cut pp_entry)
    r.entries
    (List.length r.entries)
    r.n_pass r.n_fail r.n_error r.n_crash r.n_gave_up r.wall

(* Minimal JSON emission (no JSON library in the tree). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Reports and journal lines carry this version so downstream consumers
   can detect format changes; bump on any incompatible field change
   (history in the module header). *)
let schema_version = 4

let entry_to_json e =
  let base =
    Printf.sprintf "\"id\": \"%s\", \"time_s\": %.6f, \"candidates\": %d%s%s"
      (json_escape e.item_id) e.time e.n_candidates
      (match e.result with
      | Some r ->
          Printf.sprintf
            ", \"prefiltered\": %d, \"consistent\": %d, \"matching\": %d, \
             \"backend\": \"%s\"%s%s"
            r.Exec.Check.n_prefiltered r.Exec.Check.n_consistent
            r.Exec.Check.n_matching
            (Exec.Check.backend_to_string r.Exec.Check.backend)
            (match r.Exec.Check.sat with
            | Some s ->
                Printf.sprintf
                  ", \"sat\": {\"conflicts\": %d, \"decisions\": %d, \
                   \"fallback\": %b}"
                  s.Exec.Check.conflicts s.Exec.Check.decisions
                  s.Exec.Check.fallback
            | None -> "")
            (match r.Exec.Check.explanations with
            | [] -> ""
            | es ->
                Printf.sprintf ", \"explanations\": [%s]"
                  (String.concat ", " (List.map Exec.Explain.to_json es)))
      | None -> "")
      (if e.retried then ", \"retried\": true" else "")
  in
  let rest =
    match e.status with
    | Pass v ->
        Printf.sprintf "\"status\": \"pass\", \"verdict\": \"%s\""
          (json_escape (Exec.Check.verdict_to_string v))
    | Fail { expected; got } ->
        Printf.sprintf
          "\"status\": \"fail\", \"expected\": \"%s\", \"got\": \"%s\""
          (json_escape (Exec.Check.verdict_to_string expected))
          (json_escape (Exec.Check.verdict_to_string got))
    | Gave_up r ->
        Printf.sprintf "\"status\": \"gave_up\", \"reason\": \"%s\""
          (json_escape (Exec.Budget.reason_to_string r))
    | Err err ->
        Printf.sprintf
          "\"status\": \"error\", \"class\": \"%s\", \"msg\": \"%s\"%s%s"
          (class_to_string err.cls) (json_escape err.msg)
          (match err.cls with
          | Crash s -> Printf.sprintf ", \"signal\": %d" s
          | _ -> "")
          (match err.line with
          | Some l -> Printf.sprintf ", \"line\": %d" l
          | None -> "")
  in
  Printf.sprintf "{%s, %s}" base rest

(* Per-batch perf aggregates: the slowest item and the candidate-count
   peak, so perf regressions are attributable to a single test. *)
let slowest r =
  List.fold_left
    (fun acc (e : entry) ->
      match acc with
      | Some (m : entry) when m.time >= e.time -> acc
      | _ -> Some e)
    None r.entries

let peak_candidates r =
  List.fold_left
    (fun acc (e : entry) ->
      match acc with
      | Some (m : entry) when m.n_candidates >= e.n_candidates -> acc
      | _ -> Some e)
    None r.entries

let to_json r =
  let stat name (e : entry option) value =
    match e with
    | None -> ""
    | Some e ->
        Printf.sprintf " \"%s\": %s, \"%s_id\": \"%s\"," name (value e) name
          (json_escape e.item_id)
  in
  let n_retried =
    List.length (List.filter (fun e -> e.retried) r.entries)
  in
  (* the live collector's totals ride along when tracing is on, so a
     single --json --metrics run yields one self-contained document *)
  let metrics =
    if Obs.enabled () then
      Printf.sprintf " \"metrics\": %s," (Obs.summary_json ())
    else ""
  in
  Printf.sprintf
    "{\"schema_version\": %d, \"total\": %d, \"pass\": %d, \"fail\": %d, \
     \"error\": %d, \"crash\": %d, \"gave_up\": %d, \"retried\": %d, \
     \"wall_s\": %.6f,%s%s%s \"exit_code\": %d,\n\"entries\": [\n%s\n]}"
    schema_version
    (List.length r.entries)
    r.n_pass r.n_fail r.n_error r.n_crash r.n_gave_up n_retried r.wall
    (stat "max_time_s" (slowest r) (fun e -> Printf.sprintf "%.6f" e.time))
    (stat "peak_candidates" (peak_candidates r) (fun e ->
         string_of_int e.n_candidates))
    metrics (exit_code r)
    (String.concat ",\n" (List.map entry_to_json r.entries))
