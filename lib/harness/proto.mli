(** Wire protocol of the checking service ({!Serve}): one JSON object
    per line in each direction over a Unix-domain stream socket,
    request/response pairs correlated by a client-chosen [id] (clients
    may pipeline; the daemon may answer out of order).

    Every response carries a [class] — the service-side failure
    taxonomy.  [ok]/[fail]/[unknown]/[error] embed a full schema-v3
    {!Report} entry when a check actually ran; [overloaded] and
    [quarantined] are admission-control outcomes and carry only a
    message.  No request ever gets no answer, and no failure escapes
    the taxonomy. *)

(** {1 Requests} *)

type check = {
  test : string;  (** litmus concrete syntax *)
  model : string;  (** model name, as accepted by [herd_lk -model] *)
  timeout_ms : int option;
      (** per-request deadline; [None] = daemon default *)
  expected : Exec.Check.verdict option;  (** golden verdict, if any *)
}

type op =
  | Check of check
  | Ping
  | Stats
  | Metrics
      (** live telemetry snapshot: counters, gauges and p50/p95/p99
          latency/queue-wait percentiles as one [lkmetrics-1] object *)
  | Shutdown
  | Chaos_kill  (** fault injection: the worker dies (needs [--chaos-ops]) *)
  | Chaos_wedge of float
      (** fault injection: the worker hangs for [n] seconds without
          ticking its budget (needs [--chaos-ops]) *)

type request = {
  req_id : string;
  trace : string option;
      (** client-chosen distributed-trace id; the daemon spans the
          request's whole lifecycle under it and echoes it back
          (defaulting to the request id when absent) *)
  op : op;
}

val op_name : op -> string

(** [Error (msg, id)] on malformed input; [id] is recovered when the
    line parsed far enough to contain one, so the [error] response can
    still correlate. *)
val parse_request : string -> (request, string * string option) result

(** {2 Client-side request emission} *)

val check_line :
  id:string ->
  ?trace:string ->
  ?model:string ->
  ?timeout_ms:int ->
  ?expected:Exec.Check.verdict ->
  string ->
  string

(** [simple_line ~id op] for the payload-free ops
    ("ping"/"stats"/"metrics"/"shutdown"/"chaos_kill"). *)
val simple_line : id:string -> ?trace:string -> string -> string

val chaos_wedge_line : id:string -> ?trace:string -> float -> string

(** {1 Responses} *)

type cls =
  | Ok_  (** verdict matched expectation (or no expectation) *)
  | Fail  (** verdict contradicts the request's [expected] *)
  | Unknown  (** budget gave out — deadline, event/candidate caps *)
  | Error  (** classified failure: parse error, malformed request,
              oversized line, duplicate id, unrecoverable worker loss *)
  | Overloaded  (** rejected at admission: queue at bound, nothing ran *)
  | Quarantined  (** poison request: killed two workers, or matches the
                    fingerprint of one that did *)

val cls_name : cls -> string
val cls_of_name : string -> cls option

(** The class a completed entry reports as ([Pass]→[Ok_], [Fail]→[Fail],
    [Gave_up]→[Unknown], [Err]→[Error]). *)
val cls_of_entry : Report.entry -> cls

(** [response_line ~id ~cls ?trace ?cache ?entry ?msg ?extra ()] — one
    response line (no trailing newline).  [trace] echoes the request's
    trace id, [cache] notes verdict-cache hit/miss, [entry] embeds the
    schema-v3 entry via {!Journal.line_of_entry}, [extra] appends
    pre-rendered JSON members (the [stats]/[metrics] payloads). *)
val response_line :
  id:string ->
  cls:cls ->
  ?trace:string ->
  ?cache:bool ->
  ?entry:Report.entry ->
  ?msg:string ->
  ?extra:(string * string) list ->
  unit ->
  string

(** Client-side view of one response line. *)
type response = {
  rsp_id : string;
  rsp_cls : cls;
  rsp_trace : string option;  (** trace id, echoed on traced requests *)
  rsp_cache_hit : bool option;  (** [None] when no cache field was sent *)
  rsp_verdict : string option;  (** entry's verdict (or [got]), if any *)
  rsp_status : string option;  (** entry's status tag, if any *)
  rsp_msg : string option;
  rsp_json : Journal.Json.t;  (** the whole line, for stats payloads *)
}

val parse_response : string -> (response, string) result
