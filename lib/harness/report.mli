(** The unified, versioned result schema: per-item entries and batch
    reports, shared by {!Runner} (in-process batches), {!Pool}
    (process-isolated batches), {!Journal} (persistence and resume) and
    every CLI's [--json] output.

    Schema version 2; the field migration from v1 is documented in the
    implementation header and DESIGN.md §observability.  Exit-code
    policy: 0 = all pass, 1 = some FAIL (verdict mismatch), 2 = some
    ERROR (parse/lex/type/lint/internal), 3 = some item gave its budget
    up and nothing failed or errored, 4 = some item crashed its
    isolated worker; 4 beats 2 beats 1 beats 3 in mixed batches. *)

(** {1 Error taxonomy} *)

type error_class =
  | Parse
  | Lex
  | Type
  | Lint
  | Budget
  | Internal
  | Crash of int
      (** worker died on this signal; produced only under process
          isolation ({!Pool}) *)

val class_to_string : error_class -> string

type error_info = {
  cls : error_class;
  msg : string;
  line : int option;  (** source position, when the error carries one *)
}

val pp_error : error_info Fmt.t

(** {1 Entries and reports} *)

type status =
  | Pass of Exec.Check.verdict
  | Fail of { expected : Exec.Check.verdict; got : Exec.Check.verdict }
  | Gave_up of Exec.Budget.reason  (** budget exceeded: partial result *)
  | Err of error_info

type entry = {
  item_id : string;
  status : status;
  time : float;  (** wall-clock seconds for this item *)
  n_candidates : int;  (** candidates enumerated (partial on [Gave_up]) *)
  retried : bool;  (** true = second attempt after a worker crash *)
  result : Exec.Check.result option;
      (** the full check result when one was produced (Pass/Fail) *)
}

type t = {
  entries : entry list;
  n_pass : int;
  n_fail : int;
  n_error : int;  (** [Err] entries other than crashes *)
  n_crash : int;  (** [Err] entries whose class is [Crash] *)
  n_gave_up : int;
  wall : float;
}

(** Whether an entry records a worker crash. *)
val is_crash : entry -> bool

(** Re-count the batch summary from a list of entries (used when entries
    are assembled out of band, e.g. journal resume). *)
val summarise : wall:float -> entry list -> t

(** The deterministic exit-code policy (see the module header). *)
val exit_code : t -> int

(** {1 Rendering} *)

val pp_status : status Fmt.t
val pp_entry : entry Fmt.t
val pp : t Fmt.t

(** Version stamped into JSON reports and journal lines. *)
val schema_version : int

(** JSON string escaping shared by the report and journal writers. *)
val json_escape : string -> string

val entry_to_json : entry -> string

(** The report as a JSON document (stable field names; see README).
    When the observability collector is enabled the document carries a
    [metrics] object with the collector's totals. *)
val to_json : t -> string
