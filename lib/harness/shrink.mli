(** Automatic failure shrinking: a deterministic ddmin-style greedy
    minimiser over a litmus test's threads, instructions, final
    condition and init assignments.  Given a failing {!Report.entry}
    and an oracle that re-checks a candidate reduction, it produces the
    smallest test still tripping the same classified failure
    ({!fingerprint}); crash oracles re-check in an isolated {!Pool}
    worker so a segfaulting reproduction cannot take the shrinker
    down. *)

(** {1 Structural size and reductions} *)

(** Structural size of a test (threads + instructions + condition
    atoms + inits): what the greedy loop minimises. *)
val size : Litmus.Ast.t -> int

(** [drop_thread t i] — remove thread [i]; condition atoms observing it
    become trivially true so the oracle still parses. *)
val drop_thread : Litmus.Ast.t -> int -> Litmus.Ast.t

(** Every candidate one-step reduction of a test, largest strides
    first. *)
val candidates : Litmus.Ast.t -> Litmus.Ast.t list

(** {1 The greedy loop} *)

type outcome = {
  reduced : Litmus.Ast.t;
  steps : int;  (** accepted reductions *)
  oracle_runs : int;  (** total oracle invocations *)
  initial_size : int;
  final_size : int;
}

(** [minimise ~oracle t] — greedily apply the first reduction the
    oracle still accepts, to a fixed point.  [t] itself is assumed to
    trip.  [max_steps] bounds accepted reductions as a runaway
    backstop (default 10000). *)
val minimise :
  ?max_steps:int -> oracle:(Litmus.Ast.t -> bool) -> Litmus.Ast.t -> outcome

(** {1 Oracles} *)

(** A coarse fingerprint of an entry's classified outcome (status,
    verdicts, budget-reason kind, crash signal): what a reduction must
    preserve. *)
val fingerprint : Report.entry -> string

(** One isolated check: a single-item {!Pool} run (own process,
    watchdog, heap cap), returning that item's entry.  The [check] to
    build oracles from when the failure can kill its process. *)
val isolated_check :
  ?config:Pool.config ->
  ?worker:(Runner.item -> Report.entry) ->
  ?oracle:Exec.Oracle.t ->
  ?backend:Exec.Check.backend ->
  ?expected:Exec.Check.verdict ->
  Litmus.Ast.t ->
  Report.entry

(** [entry_oracle ~check base] — the canonical oracle: [t'] trips iff
    its entry carries the same fingerprint as the original failure. *)
val entry_oracle :
  check:(Litmus.Ast.t -> Report.entry) -> Report.entry -> Litmus.Ast.t -> bool

(** End-to-end: the minimal reproducer still tripping the same
    fingerprint as the given failing entry. *)
val shrink_entry :
  ?max_steps:int ->
  check:(Litmus.Ast.t -> Report.entry) ->
  Report.entry ->
  Litmus.Ast.t ->
  outcome

(** Atomic (temp + rename) write of a reproducer [.litmus] file. *)
val write_reproducer : string -> Litmus.Ast.t -> unit
