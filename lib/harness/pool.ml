(* Process-isolated parallel checking (robustness layer).

   {!Runner.run_item}'s fault barrier is cooperative: it catches
   exceptions and budget trips, but a segfault, a stack overflow in an
   un-instrumented path, a runaway allocation or a genuine hang is
   beyond it.  The pool gives every item its own process:

   - [fork] one worker per item, up to [jobs] concurrently; the worker
     runs the ordinary {!Runner.run_item} and marshals its entry back
     over a pipe, so one dying worker cannot take the battery down;
   - a hard watchdog in the parent [SIGKILL]s any worker that outlives
     its deadline (the cooperative timeout plus slack), containing
     infinite loops that never tick a budget;
   - an rlimit-style memory cap in the worker (a [Gc] alarm checked at
     every major collection, plus the budget's own sampled probe)
     turns runaway allocation into a classified [Heap_exceeded] entry
     before the kernel's OOM killer gets involved;
   - a worker that dies on a signal is reaped and classified as
     [Err {cls = Crash signal}]; it is retried with exponential
     backoff, separating flaky crashes (the retry's entry is marked
     [retried]) from deterministic ones (a crash on the final attempt
     is final);
   - with a journal, every completed entry is appended and flushed as
     it arrives, and a previous journal can be resumed: already-
     journalled items are recycled without re-running.

   Report entries come back in item order whatever the completion
   order, so [-j N] output is deterministic modulo timings. *)

type config = {
  jobs : int; (* concurrent workers (>= 1) *)
  limits : Exec.Budget.limits; (* per-item cooperative budget *)
  mem_limit_mb : int option; (* hard heap cap enforced in the worker *)
  watchdog : float option;
      (* hard wall-clock kill, seconds; [None] = derive from the budget
         timeout (2x + 1s), unlimited if the budget has no timeout *)
  retries : int; (* attempts after a crash (default 1) *)
  backoff : float; (* seconds before the first crash retry, doubling *)
  lint : bool;
  flight_dir : string option;
      (* arm the crash flight recorder in every forked worker: each
         checkpoints its obs ring to <dir>/flight-<pid>.jsonl, so the
         watchdog's SIGKILL (which forfeits the result-pipe dump) still
         leaves a post-mortem trace of the item that died *)
}

let default =
  {
    jobs = 2;
    limits = Exec.Budget.default;
    mem_limit_mb = None;
    watchdog = None;
    retries = 1;
    backoff = 0.05;
    lint = true;
    flight_dir = None;
  }

(* Worker exit codes above the user range: the parent maps them back to
   classified entries when the result pipe carries nothing usable. *)
let exit_mem_cap = 97 (* the Gc-alarm heap cap fired *)
let exit_protocol = 98 (* the worker could not write its entry *)

let derived_watchdog cfg =
  match cfg.watchdog with
  | Some s -> Some s
  | None ->
      Option.map (fun t -> (2. *. t) +. 1.) cfg.limits.Exec.Budget.timeout

(* ------------------------------------------------------------------ *)
(* The worker side                                                     *)
(* ------------------------------------------------------------------ *)

(* Runs in the child after [fork]: compute the entry, marshal it out,
   [_exit] without touching the parent's buffers or [at_exit] hooks.

   Observability crosses the fork boundary here: the child resets the
   collector it inherited (the parent's spans must not be re-reported),
   records its own item, and ships an {!Obs.dump} alongside the entry;
   the parent merges it tagged with the worker's pid.  A worker the
   watchdog kills never reaches the marshalling step, so its partial
   trace is lost with it — the entry the parent synthesises still
   appears in the report, just without spans. *)
let worker_main cfg ~worker fd (item : Runner.item) =
  (match cfg.mem_limit_mb with
  | None -> ()
  | Some mb ->
      (* checked at the end of every major collection: catches runaway
         allocation even in code that never ticks a budget *)
      ignore
        (Gc.create_alarm (fun () ->
             if Exec.Budget.heap_mb () > mb then Unix._exit exit_mem_cap)));
  if Obs.enabled () then Obs.reset ();
  (match cfg.flight_dir with
  | Some dir ->
      (* Post-fork: arm this worker's own recorder (the parent never
         armed one, so there is no inherited channel to contend with)
         and leave the item's id on disk before any work happens — a
         watchdog SIGKILL mid-item then always has a post-mortem. *)
      if not (Obs.enabled ()) then Obs.set_enabled true;
      (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
      Obs.flight_start
        (Filename.concat dir
           (Printf.sprintf "flight-%d.jsonl" (Unix.getpid ())))
  | None -> ());
  let entry : Runner.entry =
    if Obs.flight_active () then
      Obs.with_span ~item:item.Runner.id "pool.item" (fun () ->
          Obs.flight_checkpoint ~reason:"item-start" ();
          worker item)
    else worker item
  in
  if Obs.flight_active () then Obs.flight_stop ();
  let dump = if Obs.enabled () then Some (Obs.dump ()) else None in
  match
    let oc = Unix.out_channel_of_descr fd in
    Marshal.to_channel oc (entry, dump) [];
    flush oc
  with
  | () -> Unix._exit 0
  | exception _ -> Unix._exit exit_protocol

(* ------------------------------------------------------------------ *)
(* The parent side                                                     *)
(* ------------------------------------------------------------------ *)

type running = {
  pid : int;
  idx : int; (* position in the original item list *)
  item : Runner.item;
  fd : Unix.file_descr;
  buf : Buffer.t; (* marshalled entry, accumulated as it streams in *)
  mutable eof : bool;
  started : float;
  deadline : float option;
  mutable watchdog_killed : bool;
  attempt : int; (* 0 = first run, 1 = first retry, ... *)
}

type queued = {
  q_idx : int;
  q_item : Runner.item;
  q_attempt : int;
  not_before : float; (* crash-retry backoff gate *)
}

let spawn cfg ~worker idx attempt (item : Runner.item) =
  let r, w = Unix.pipe ~cloexec:false () in
  (* the child inherits the parent's pending output; flush so nothing
     is written twice *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      worker_main cfg ~worker w item
  | pid ->
      Unix.close w;
      Unix.set_nonblock r;
      let now = Unix.gettimeofday () in
      {
        pid;
        idx;
        item;
        fd = r;
        buf = Buffer.create 4096;
        eof = false;
        started = now;
        deadline = Option.map (fun s -> now +. s) (derived_watchdog cfg);
        watchdog_killed = false;
        attempt;
      }

(* Pull whatever the (non-blocking) pipe holds; workers stream their
   entry and close, so big marshalled results cannot deadlock against a
   full pipe buffer. *)
let drain r =
  if not r.eof then begin
    let chunk = Bytes.create 65536 in
    let rec go () =
      match Unix.read r.fd chunk 0 (Bytes.length chunk) with
      | 0 -> r.eof <- true
      | n ->
          Buffer.add_subbytes r.buf chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  end

(* Classify a reaped worker into a final entry, or a crash eligible for
   retry. *)
let classify_exit cfg (r : running) status =
  let mk status_ =
    {
      Runner.item_id = r.item.Runner.id;
      status = status_;
      time = Unix.gettimeofday () -. r.started;
      n_candidates = 0;
      retried = r.attempt > 0;
      result = None;
    }
  in
  match status with
  | Unix.WEXITED 0 -> (
      match
        (Marshal.from_string (Buffer.contents r.buf) 0
          : Runner.entry * Obs.dump option)
      with
      | entry, dump ->
          if Obs.enabled () then Option.iter (Obs.merge ~tid:r.pid) dump;
          (`Done, { entry with Runner.retried = r.attempt > 0 })
      | exception _ ->
          ( `Done,
            mk
              (Runner.Err
                 {
                   Runner.cls = Runner.Internal;
                   msg = "worker result truncated";
                   line = None;
                 }) ))
  | Unix.WEXITED n when n = exit_mem_cap ->
      let mb = Option.value ~default:0 cfg.mem_limit_mb in
      (`Done, mk (Runner.Gave_up (Exec.Budget.Heap_exceeded mb)))
  | Unix.WEXITED n ->
      ( `Done,
        mk
          (Runner.Err
             {
               Runner.cls = Runner.Internal;
               msg = Printf.sprintf "worker exited with code %d" n;
               line = None;
             }) )
  | Unix.WSIGNALED _ when r.watchdog_killed ->
      (* we killed it for overrunning the hard deadline: that is budget
         exhaustion, not a crash *)
      let wd = Option.value ~default:0. (derived_watchdog cfg) in
      (`Done, mk (Runner.Gave_up (Exec.Budget.Timed_out wd)))
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      let entry =
        mk
          (Runner.Err
             {
               Runner.cls = Runner.Crash s;
               msg = "worker killed by " ^ Exec.Check.signal_name s;
               line = None;
             })
      in
      if r.attempt < cfg.retries then (`Retry, entry) else (`Done, entry)

(* [run_queue] drives the spawn/drain/reap loop until every queued item
   has produced exactly one final entry; crash retries re-enter the
   queue behind their backoff gate.

   [drain] is the graceful-shutdown latch (set by the SIGTERM/SIGINT
   handlers that {!run} installs): once set, no further item is
   dispatched, but every in-flight worker is seen through to its entry
   — reaped, classified, journalled — before the loop returns.  The
   watchdogs stay armed, so draining cannot hang on a wedged worker. *)
let run_queue cfg ~worker ~on_entry ~(drain_sig : int option ref)
    (queue : queued list) =
  let pending = ref queue in
  let running : running list ref = ref [] in
  let finished = ref [] in
  let n_final = ref 0 in
  let total = List.length queue in
  let finish idx entry =
    incr n_final;
    on_entry entry;
    finished := (idx, entry) :: !finished
  in
  while (!drain_sig = None && !n_final < total) || !running <> [] do
    (* 1. fill free slots with runnable queued items (none once draining) *)
    let now = Unix.gettimeofday () in
    let runnable, gated =
      List.partition (fun q -> q.not_before <= now) !pending
    in
    let free =
      if !drain_sig <> None then 0 else cfg.jobs - List.length !running
    in
    let rec take n = function
      | x :: rest when n > 0 ->
          let taken, left = take (n - 1) rest in
          (x :: taken, left)
      | rest -> ([], rest)
    in
    let to_spawn, still_queued = take free runnable in
    pending := still_queued @ gated;
    List.iter
      (fun q ->
        running := spawn cfg ~worker q.q_idx q.q_attempt q.q_item :: !running)
      to_spawn;
    (* 2. wait for worker output, a watchdog deadline or a backoff gate *)
    let fds =
      List.filter_map (fun r -> if r.eof then None else Some r.fd) !running
    in
    let wait =
      let earliest acc t =
        match acc with Some a -> Some (min a t) | None -> Some t
      in
      let next =
        List.fold_left
          (fun acc r ->
            match r.deadline with
            | Some d when not r.watchdog_killed -> earliest acc d
            | _ -> acc)
          None !running
      in
      let next =
        List.fold_left (fun acc q -> earliest acc q.not_before) next gated
      in
      match next with
      | Some t -> Float.max 0.001 (Float.min 0.05 (t -. Unix.gettimeofday ()))
      | None -> 0.05
    in
    (* a worker at EOF has left the select set but may not be reapable
       yet (fd closes before the zombie appears): poll fast instead of
       sleeping out the idle timeout *)
    let wait =
      if List.exists (fun r -> r.eof) !running then 0.001 else wait
    in
    (match Unix.select fds [] [] wait with
    | ready, _, _ ->
        List.iter
          (fun fd ->
            match List.find_opt (fun r -> r.fd = fd) !running with
            | Some r -> drain r
            | None -> ())
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* 3. enforce watchdog deadlines *)
    let now = Unix.gettimeofday () in
    List.iter
      (fun r ->
        match r.deadline with
        | Some d when (not r.watchdog_killed) && now > d ->
            r.watchdog_killed <- true;
            (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ())
        | _ -> ())
      !running;
    (* 4. reap exited workers *)
    let still = ref [] in
    List.iter
      (fun r ->
        match Unix.waitpid [ Unix.WNOHANG ] r.pid with
        | 0, _ -> still := r :: !still
        | _, status -> (
            drain r;
            Unix.close r.fd;
            match classify_exit cfg r status with
            | `Retry, _ ->
                (* exponential backoff before the retry, without
                   blocking the other workers *)
                let delay = cfg.backoff *. (2. ** float_of_int r.attempt) in
                pending :=
                  {
                    q_idx = r.idx;
                    q_item = r.item;
                    q_attempt = r.attempt + 1;
                    not_before = Unix.gettimeofday () +. delay;
                  }
                  :: !pending
            | `Done, entry -> finish r.idx entry)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            Unix.close r.fd;
            finish r.idx
              {
                Runner.item_id = r.item.Runner.id;
                status =
                  Runner.Err
                    {
                      Runner.cls = Runner.Internal;
                      msg = "worker vanished (ECHILD)";
                      line = None;
                    };
                time = Unix.gettimeofday () -. r.started;
                n_candidates = 0;
                retried = r.attempt > 0;
                result = None;
              })
      !running;
    running := !still
  done;
  !finished

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* [run ?config ?worker ?journal ?resume ?oracle items]:

   - [worker] overrides the per-item computation (tests inject crashing
     workers); the default is {!Runner.run_item} under the config's
     budget, with the heap cap folded into the budget so cooperative
     paths classify allocation blowups before the Gc alarm must;
   - [oracle]/[backend] select the checking oracle and its engine
     ({!Exec.Oracle.run}; defaults: {!Lkmm.oracle} on its batched
     engine);
   - [journal] appends each completed entry to a JSONL journal;
   - [resume] recycles entries from an existing journal and runs only
     the missing items (pass the same path as [journal] to extend it in
     place).

   SIGTERM/SIGINT during the run trigger a graceful drain: dispatching
   stops, in-flight workers are reaped and their entries journalled,
   the journal is flushed and closed, and the process exits with the
   conventional 128+signal code (143 for SIGTERM, 130 for SIGINT) —
   so an interrupted [--journal] run is always resumable with no item
   half-recorded.  The previous handlers are restored on a normal
   return, so library callers outside a run keep their own behavior. *)
let run ?(config = default) ?worker ?journal ?resume ?explainer ?delta ?backend
    ?(oracle = Lkmm.oracle) (items : Runner.item list) =
  let t0 = Unix.gettimeofday () in
  let config = { config with jobs = max 1 config.jobs } in
  let limits =
    match config.mem_limit_mb with
    | Some mb -> { config.limits with Exec.Budget.max_heap_mb = Some mb }
    | None -> config.limits
  in
  let config = { config with limits } in
  let worker =
    match worker with
    | Some w -> w
    | None ->
        fun it ->
          Runner.run_item ~limits ~lint:config.lint ?explainer ?delta ?backend
            ~oracle it
  in
  let recycled =
    match resume with
    | Some path -> fst (Journal.partition path items)
    | None -> []
  in
  let recycled_ids = Hashtbl.create 64 in
  List.iter
    (fun (e : Runner.entry) -> Hashtbl.replace recycled_ids e.Runner.item_id ())
    recycled;
  let jw = Option.map Journal.open_writer journal in
  let on_entry e = Option.iter (fun w -> Journal.write w e) jw in
  let queue =
    List.filteri
      (fun _ (i : Runner.item) -> not (Hashtbl.mem recycled_ids i.Runner.id))
      items
    |> List.mapi (fun i x -> (i, x))
    |> List.map (fun (i, x) ->
           { q_idx = i; q_item = x; q_attempt = 0; not_before = 0. })
  in
  (* graceful drain on SIGTERM/SIGINT: the handler only sets the latch;
     the run loop does the draining at a safe point *)
  let drain = ref None in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun s -> drain := Some s)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_term = install Sys.sigterm and prev_int = install Sys.sigint in
  let restore s prev =
    match prev with Some b -> (try Sys.set_signal s b with _ -> ()) | None -> ()
  in
  let fresh =
    Obs.with_span "pool" (fun () ->
        run_queue config ~worker ~on_entry ~drain_sig:drain queue)
  in
  Option.iter Journal.close jw;
  (match !drain with
  | Some s ->
      (* every in-flight worker was reaped and journalled; exit with the
         conventional interrupted-by-signal code so callers and scripts
         can tell a drained run from a completed one.  (The latch holds
         OCaml's portable signal number, which is negative — map it back
         to the system convention by hand.) *)
      let sysnum = if s = Sys.sigint then 2 else 15 in
      Printf.eprintf
        "pool: %s received — drained %d finished item(s), journal %s; \
         exiting %d\n%!"
        (Exec.Check.signal_name s) (List.length fresh)
        (match journal with Some p -> "flushed to " ^ p | None -> "not kept")
        (128 + sysnum);
      Stdlib.exit (128 + sysnum)
  | None -> ());
  restore Sys.sigterm prev_term;
  restore Sys.sigint prev_int;
  (* reassemble in item order: recycled entries keep their item's slot *)
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (e : Runner.entry) -> Hashtbl.replace by_id e.Runner.item_id e)
    recycled;
  List.iter
    (fun ((_ : int), (e : Runner.entry)) ->
      Hashtbl.replace by_id e.Runner.item_id e)
    fresh;
  let entries =
    List.filter_map
      (fun (i : Runner.item) -> Hashtbl.find_opt by_id i.Runner.id)
      items
  in
  Runner.summarise ~wall:(Unix.gettimeofday () -. t0) entries
