(** Crash-safe run journal: an append-only JSONL file with one
    self-contained {!Report.entry} line per completed item, written and
    flushed as a run progresses.  A [kill -9] mid-run loses at most the
    line being written; {!load} tolerates a truncated final line (and
    any other unparseable line) by dropping it.  Duplicate ids can
    appear legitimately (crash retries, overlapping resumed runs): the
    last line for an id wins. *)

(** {1 JSON reading}

    The tree ships no JSON library; emission lives in {!Report} and
    this is its reading half (full JSON value syntax, no streaming).
    Exposed because other textual-JSON consumers in the tree
    ([tools/obs_report], tests) reuse it. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Malformed of string

  (** Parse one complete JSON value; raises {!Malformed}. *)
  val of_string : string -> t

  (** Object member lookup ([None] on non-objects and missing keys). *)
  val mem : string -> t -> t option

  val str : t -> string option
  val num : t -> float option
  val bool_ : t -> bool option

  (** Re-render a parsed value as JSON (member order preserved). *)
  val to_string : t -> string
end

(** {1 Entry <-> line} *)

(** One journal line (no trailing newline): the entry's {!Report} JSON
    plus [schema_version] and, for [Gave_up] entries, a structured
    reason that round-trips exactly. *)
val line_of_entry : Report.entry -> string

(** Parse a journal line back; [None] on any malformed or torn line.
    Full check results are not journalled, so [result] is [None]. *)
val entry_of_line : string -> Report.entry option

(** {1 Writing} *)

type writer

(** Open for append (create if missing): resuming writes into the same
    journal, keeping the file a complete record of the battery.  With
    [~fsync] (default [false]) every appended line is forced to stable
    storage before {!write} returns — surviving power loss and OS
    crashes, not just process kills, at a per-append cost. *)
val open_writer : ?fsync:bool -> string -> writer

val writer_path : writer -> string

(** Append one entry and flush: after a hard kill the journal is
    complete up to the last finished item. *)
val write : writer -> Report.entry -> unit

(** Append one raw (single-line) string through the same flush/fsync
    path; used by JSONL journals with their own line shape (the
    service's verdict cache). *)
val write_line : writer -> string -> unit

val close : writer -> unit

(** {1 Streaming readers}

    Campaign-scale journals hold 10^5+ lines; these visit one line at a
    time so a resume never materialises the file as a list.  All the
    list-returning loaders below are built on them. *)

(** [iter_lines path f] — [f] on every raw line, in file order; a no-op
    if the file does not exist. *)
val iter_lines : string -> (string -> unit) -> unit

(** [fold_lines path ~init ~f] — fold over every raw line. *)
val fold_lines : string -> init:'a -> f:('a -> string -> 'a) -> 'a

(** [fold path ~init ~f] — fold over every line that parses as an entry
    (torn or garbage lines skipped, as {!load} drops them).  No
    duplicate-id resolution: the caller sees raw append order. *)
val fold : string -> init:'a -> f:('a -> Report.entry -> 'a) -> 'a

(** [iter path f] — {!fold} without an accumulator. *)
val iter : string -> (Report.entry -> unit) -> unit

(** {1 Loading and resuming} *)

(** All entries of a journal, last-wins per id, first occurrence keeping
    its position; [[]] if the file does not exist. *)
val load : string -> Report.entry list

(** Every line of a JSONL file that parses as JSON, in file order;
    torn or garbage lines are dropped exactly as {!load} drops them.
    [[]] if the file does not exist.  For JSONL journals with a
    non-entry line shape. *)
val load_json : string -> Json.t list

(** [partition journal items] — split [items] into (already-journalled
    entries, still-to-run items), keyed by item id; journal lines for
    unknown ids are ignored. *)
val partition :
  string -> Runner.item list -> Report.entry list * Runner.item list
