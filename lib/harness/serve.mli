(** Checking-as-a-service: a long-running daemon answering {!Proto}
    requests over a Unix-domain socket, scheduling checks on an OCaml 5
    domain-based worker pool.  Models are compiled once at startup and
    shared by all workers (no fork, no marshalling, warm per-domain
    static-prefix caches); robustness comes from five mechanisms, each
    mapping a failure mode to a response class:

    - bounded queue with admission control — [overloaded], never
      unbounded accumulation;
    - absolute per-request deadlines armed into worker budgets
      ({!Exec.Budget.start_at}) — a slow request degrades to a
      structured [unknown], never a stuck worker;
    - a supervisor that abandons wedged worker domains (epoch bump:
      stale completions are dropped, the abandoned loop exits on its
      own) and replaces dead ones, up to a replacement bound;
    - retry-once-with-backoff for requests in flight on a lost worker,
      and [quarantined] for fingerprints that cost two workers;
    - a content-addressed, journal-backed verdict cache ({!Vcache})
      that survives [kill -9] and serves repeated requests without
      touching a worker.

    SIGTERM/SIGINT (or a [shutdown] request) drain gracefully: queued
    requests are answered [overloaded], in-flight checks finish (up to
    their deadline plus grace), the cache journal is closed. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  workers : int;  (** worker domains (>= 1) *)
  queue_bound : int;  (** max queued requests before [overloaded] *)
  limits : Exec.Budget.limits;  (** per-check budget (timeout clamped
      to the request deadline) *)
  default_timeout : float;
      (** request deadline, seconds, when the client sends none *)
  max_line : int;  (** request lines over this many bytes are rejected *)
  wedge_grace : float;
      (** seconds past its job's deadline before a worker is abandoned *)
  max_replacements : int;  (** lifetime bound on replacement domains *)
  cache_journal : string option;  (** verdict-cache persistence path *)
  fsync : bool;  (** fsync each cache insertion ({!Journal}) *)
  chaos_ops : bool;  (** accept [chaos_kill]/[chaos_wedge] requests *)
  retries : int;  (** retries for a request that lost its worker *)
  backoff : float;  (** seconds before the first retry, doubling *)
  backend : Exec.Check.backend;
      (** checking engine for every job ({!Exec.Oracle.run}): [Batch]
          by default; [Enum] is the scalar reference evaluation (the
          CLI's [--backend enum] / [--no-batch]); [Sat] the symbolic
          engine, falling back counted where a model ships none *)
  flight_dir : string option;
      (** arm the crash flight recorder ({!Obs.flight_start}): periodic
          and per-job checkpoints land in [<dir>/flight-<pid>.jsonl],
          so a [kill -9], wedge or quarantine leaves a post-mortem
          ([obs_report --postmortem]); implies enabling the collector *)
  flight_interval : float;
      (** seconds between opportunistic flight checkpoints *)
}

val default : config
(** 2 workers, queue 64, 10 s default deadline, 1 MiB lines, 2 s grace,
    no cache journal, chaos ops off, one retry at 50 ms backoff, flight
    recorder off. *)

val run : ?config:config -> unit -> int
(** Bind the socket, warm the models, spawn the workers and serve until
    SIGTERM/SIGINT or a [shutdown] request; returns the exit code (0
    after a clean drain).  Blocks the calling thread; intended as the
    whole program of [lkserve]. *)

(** Synchronous client for the daemon (used by [lkserve --client], the
    chaos driver, the benchmark and the tests).  One request at a time:
    each call sends one line and blocks for one response line. *)
module Client : sig
  type t

  val connect : string -> t
  (** Connect to the daemon's socket; raises [Unix.Unix_error] if the
      daemon is not there. *)

  val check :
    t ->
    ?id:string ->
    ?trace:string ->
    ?model:string ->
    ?timeout_ms:int ->
    ?expected:Exec.Check.verdict ->
    string ->
    (Proto.response, string) result
  (** Check one litmus source text; [id] defaults to a fresh
      per-connection id (pass one explicitly to exercise duplicate-id
      handling); [trace] names the request's distributed trace. *)

  val ping : t -> (Proto.response, string) result
  val stats : t -> (Proto.response, string) result

  val metrics : t -> (Proto.response, string) result
  (** Live telemetry snapshot; the response's [metrics] member is one
      [lkmetrics-1] object (see [ci/metrics.schema.json]). *)

  val shutdown : t -> (Proto.response, string) result
  val chaos_kill : ?trace:string -> t -> (Proto.response, string) result
  val chaos_wedge : ?trace:string -> t -> float -> (Proto.response, string) result

  val send : t -> string -> unit
  (** Raw line send (protocol-edge tests build their own lines). *)

  val recv : t -> (Proto.response, string) result
  (** Read one response line. *)

  val request : t -> string -> (Proto.response, string) result

  val close : t -> unit
end
