(** Shared CLI scaffolding for the executables: one definition of the
    common flags, one exit-code mapping ({!exit_infos}), one
    usage-error path ({!eval}), and the [--trace]/[--metrics] wiring
    for the observability collector ({!with_obs}).

    A binary composes its term from these plus its own flags, passes
    {!exit_infos} to [Cmd.info ~exits], and ends with
    [let () = Cli.eval ~name:"tool" cmd]. *)

open Cmdliner

(** {1 Common flags} *)

val timeout_arg : float option Term.t
(** [--timeout SECONDS] — wall-clock budget per model check. *)

val max_candidates_arg : int option Term.t
(** [--max-candidates N] — candidate-execution cap per check. *)

val max_events_arg : int option Term.t
(** [--max-events N] — event cap per candidate execution. *)

val jobs_arg : int Term.t
(** [-j N]/[--jobs N] — process-isolated parallel workers (default 1). *)

val mem_limit_arg : int option Term.t
(** [--mem-limit MB] — per-worker heap cap (implies isolation). *)

val journal_arg : string option Term.t
(** [--journal FILE] — append completed entries as JSONL. *)

val resume_arg : string option Term.t
(** [--resume FILE] — recycle entries already journalled. *)

val json_arg : bool Term.t
(** [--json] — emit the unified {!Report} JSON on stdout. *)

val no_batch_arg : bool Term.t
(** [--no-batch] — alias for [--backend enum] (scalar reference
    evaluation); ignored when [--backend] is given explicitly. *)

val backend_arg : Exec.Check.backend option Term.t
(** [--backend enum|batch|sat] — the checking engine
    ({!Exec.Oracle.run}); verdicts are identical across engines. *)

val backend :
  backend:Exec.Check.backend option -> no_batch:bool -> Exec.Check.backend
(** The one resolution rule: an explicit [--backend] wins; otherwise
    [--no-batch] selects [Enum], and the default is [Batch]. *)

val seed_range_conv : (int * int) Arg.conv
(** ["A..B"], half-open, [A < B] — deterministic seed intervals. *)

val trace_arg : string option Term.t
(** [--trace FILE] — enable the collector, write a Chrome trace. *)

val metrics_arg : string option Term.t
(** [--metrics FILE] — enable the collector, write metrics JSONL. *)

(** {1 Exit codes} *)

(** The one exit-code mapping: 0 pass, 1 fail, 2 error, 3 budget,
    4 worker crash, 124 usage error, 125 internal exception. *)
val exit_infos : Cmd.Exit.info list

(** {1 Observability wiring} *)

(** [with_obs ~trace ~metrics f] — when either output is requested,
    enable {!Obs}, run [f], and write the requested files even if [f]
    raises (the trace of a failing run is the one you want); otherwise
    just run [f]. *)
val with_obs :
  trace:string option -> metrics:string option -> (unit -> int) -> int

(** {1 Evaluation} *)

(** Evaluate the command and [exit]: the term's own code on success,
    124 on usage errors, 125 on internal exceptions; [Not_found]
    becomes a battery hint and other exceptions a classified one-line
    message, both exiting 2.  Never returns. *)
val eval : name:string -> int Cmd.t -> unit
