(* Checking-as-a-service: a long-running daemon on OCaml 5 domains.

   The batch tools ({!Pool}, herd_lk) pay per-invocation costs on
   every run: process startup, model construction, cold static-prefix
   caches.  The daemon pays them once — models are compiled eagerly at
   startup in the main domain (forcing every shared [lazy], which is
   not domain-safe to race on), workers are domains sharing them
   directly (no fork, no marshalling), and the per-domain static-prefix
   caches ({!Lkmm.Relations}'s DLS slot) stay warm across requests.

   Robustness is the point, not an afterthought; the moving parts:

   - {b Admission control.}  The request queue is bounded; a request
     arriving at the bound is rejected immediately with class
     [overloaded] — the daemon sheds load instead of accumulating it.

   - {b Deadline propagation.}  Every check carries an absolute
     deadline (client [timeout_ms] or the daemon default), armed into
     the worker's budget via {!Exec.Budget.start_at} — so time spent
     queued counts, and a slow request degrades to a structured
     [Unknown], never a stuck worker.

   - {b Supervision.}  Domains cannot be killed from outside, so the
     supervisor practises abandon-and-replace: each worker slot carries
     an epoch; a worker still busy past its job's deadline plus a grace
     period is abandoned (epoch bumped — its eventual completion is
     dropped on the mismatch and its loop exits) and a fresh domain
     takes the slot.  A worker whose job raises through the fault
     barrier dies and is replaced the same way.  Replacements are
     bounded; a daemon that exhausts them runs degraded rather than
     looping.

   - {b Retry and quarantine.}  A request in flight on a lost worker is
     retried once after an exponential backoff.  A request that costs
     two workers is poison: it is answered [quarantined], and any
     future request with the same fingerprint (cache key) is rejected
     at admission without touching a worker.

   - {b Verdict cache.}  Deterministic verdicts are cached
     content-addressed ({!Vcache}: digest of model identity and test
     source) and journalled through {!Journal}; a daemon killed with
     [kill -9] recovers every completed insertion on restart, torn
     tail dropped.

   Every failure mode maps to a response class ({!Proto.cls}); no
   request goes unanswered, and no failure escapes the taxonomy. *)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  socket : string;
  workers : int;
  queue_bound : int;
  limits : Exec.Budget.limits;
  default_timeout : float; (* seconds; request deadline when client gives none *)
  max_line : int; (* bytes; longer request lines are rejected *)
  wedge_grace : float; (* seconds past deadline before a worker is abandoned *)
  max_replacements : int;
  cache_journal : string option;
  fsync : bool;
  chaos_ops : bool; (* accept chaos_kill / chaos_wedge *)
  retries : int; (* retries after a worker loss *)
  backoff : float; (* seconds before the first retry, doubling *)
  backend : Exec.Check.backend;
      (* checking engine for every job: [Enum] is the scalar reference
         evaluation (no planes, no delta — the old --no-batch) *)
  flight_dir : string option;
      (* arm the crash flight recorder: periodic + per-job checkpoints
         of the obs ring land in <dir>/flight-<pid>.jsonl, so a kill -9,
         wedge or quarantine leaves a post-mortem *)
  flight_interval : float; (* seconds between opportunistic checkpoints *)
}

let default =
  {
    socket = "lkserve.sock";
    workers = 2;
    queue_bound = 64;
    limits = Exec.Budget.default;
    default_timeout = 10.;
    max_line = 1 lsl 20;
    wedge_grace = 2.0;
    max_replacements = 32;
    cache_journal = None;
    fsync = false;
    chaos_ops = false;
    retries = 1;
    backoff = 0.05;
    backend = Exec.Check.Batch;
    flight_dir = None;
    flight_interval = 0.5;
  }

(* ------------------------------------------------------------------ *)
(* Models                                                              *)
(* ------------------------------------------------------------------ *)

(* [mkey] is the model's full identity for cache addressing: the
   canonical name for built-ins (the binary pins their semantics), the
   digest of the file's contents for .cat files (edits invalidate). *)
type model = {
  mkey : string;
  oracle : Exec.Oracle.t;
      (* every engine the model ships; the config's [backend] picks *)
}

let builtin_models () =
  let scalar mkey m = { mkey; oracle = Exec.Oracle.of_model m } in
  let lk = { mkey = "lk"; oracle = Lkmm.oracle } in
  let lk_cat =
    {
      mkey = "lk-cat";
      oracle = Cat.to_oracle ~name:"LK(cat)" (Cat.parse Cat.Stdmodels.lk);
    }
  in
  [
    ("lk", lk);
    ("lkmm", lk);
    ("linux", lk);
    ("lk-cat", lk_cat);
    ("sc", scalar "sc" (module Models.Sc));
    ("tso", scalar "tso" (module Models.Tso));
    ("x86", scalar "tso" (module Models.Tso));
    ("c11", scalar "c11" (module Models.C11));
    ("c11-psc", scalar "c11-psc" (module Models.C11.Strengthened));
    ("rc11", scalar "c11-psc" (module Models.C11.Strengthened));
  ]

(* ------------------------------------------------------------------ *)
(* Jobs and state                                                      *)
(* ------------------------------------------------------------------ *)

type chaos = No_chaos | Kill | Wedge of float

type job = {
  req_id : string;
  trace : string; (* distributed-trace id; the req_id unless the client
                     chose one — stable across retry and replacement *)
  t_admit : float; (* admission time on the obs clock, microseconds *)
  conn_id : int;
  test : string;
  oracle : Exec.Oracle.t;
  expected : Exec.Check.verdict option;
  deadline : float; (* absolute, Unix time *)
  vkey : string; (* content fingerprint — cache and quarantine key *)
  chaos : chaos;
  mutable attempts : int; (* worker losses suffered so far *)
}

type outcome = Done of Report.entry | Lost of string

type slot = {
  sid : int;
  mutable epoch : int;
  mutable busy : job option;
  mutable alive : bool; (* current-epoch occupant is running *)
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable pending : string; (* bytes read but not yet a full line *)
  seen : (string, unit) Hashtbl.t; (* request ids used on this conn *)
  mutable discarding : bool; (* inside an oversized line *)
}

type t = {
  cfg : config;
  models : (string, model) Hashtbl.t; (* by name (built-ins) *)
  cat_models : (string, model) Hashtbl.t; (* by contents digest *)
  cache : Vcache.t;
  mutex : Mutex.t; (* guards queue / slots / completed *)
  cond : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  slots : slot array;
  mutable completed : (job * outcome) list;
  mutable replacements : int;
  strikes : (string, int) Hashtbl.t; (* vkey -> worker losses *)
  mutable gated : (float * job) list; (* backoff: ready-at, job *)
  conns : (int, conn) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  served : int array; (* responses by Proto.cls *)
  mutable n_requests : int;
  started_at : float;
}

let cls_index : Proto.cls -> int = function
  | Proto.Ok_ -> 0
  | Proto.Fail -> 1
  | Proto.Unknown -> 2
  | Proto.Error -> 3
  | Proto.Overloaded -> 4
  | Proto.Quarantined -> 5

let locked p f =
  Mutex.lock p.mutex;
  match f () with
  | v ->
      Mutex.unlock p.mutex;
      v
  | exception e ->
      Mutex.unlock p.mutex;
      raise e

(* Wake the main select loop (self-pipe trick); the write end is
   non-blocking — a full pipe already guarantees a pending wake-up. *)
let wake p =
  try ignore (Unix.write p.wake_w (Bytes.of_string "w") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

(* Service-level distributions, observed unconditionally
   ({!Obs.Histogram.observe_always}): the [metrics] op must answer with
   real p50/p95/p99 on a daemon that never switched tracing on. *)
let h_latency = Obs.Histogram.make "serve.latency_us"
let h_queue_wait = Obs.Histogram.make "serve.queue_wait_us"

exception Chaos_killed

let gave_up_entry job reason =
  {
    Report.item_id = job.req_id;
    status = Report.Gave_up reason;
    time = 0.;
    n_candidates = 0;
    retried = job.attempts > 0;
    result = None;
  }

(* The per-job computation, inside the worker domain.  Exceptions
   escaping this function kill the worker (deliberately, for [Kill];
   accidentally, for anything {!Runner.run_item}'s barrier missed) —
   the supervisor replaces the domain and retries the job. *)
let run_job cfg job =
  match job.chaos with
  | Kill -> raise Chaos_killed
  | Wedge s ->
      (* A genuine wedge: hold the slot without ticking any budget.  If
         the supervisor abandons us meanwhile, the completion below is
         dropped on the epoch mismatch. *)
      Unix.sleepf s;
      gave_up_entry job (Exec.Budget.Timed_out s)
  | No_chaos ->
      if Unix.gettimeofday () >= job.deadline then
        (* Deadline spent in the queue (or a zero-deadline request):
           answer without running. *)
        gave_up_entry job
          (Exec.Budget.Timed_out
             (Option.value ~default:0. cfg.limits.Exec.Budget.timeout))
      else
        let entry =
          Runner.run_item ~limits:cfg.limits ~deadline:job.deadline
            ~backend:cfg.backend ~oracle:job.oracle
            { Runner.id = job.req_id; source = `Text job.test;
              expected = job.expected }
        in
        { entry with Report.retried = job.attempts > 0 }

let rec worker_loop p slot epoch =
  Mutex.lock p.mutex;
  let rec next () =
    if slot.epoch <> epoch then None (* abandoned: let the slot go *)
    else if not (Queue.is_empty p.queue) then Some (Queue.pop p.queue)
    else if p.stopping then None
    else begin
      Condition.wait p.cond p.mutex;
      next ()
    end
  in
  match next () with
  | None ->
      Mutex.unlock p.mutex
  | Some job -> (
      slot.busy <- Some job;
      Mutex.unlock p.mutex;
      (* Queue wait (cumulative since admission) and the check itself,
         both on the request's trace.  The forced checkpoint means a
         worker lost to this job — killed, wedged, OOMed — has already
         left the victim's trace id on disk. *)
      let t_dequeue = Obs.now_us () in
      Obs.Histogram.observe_always h_queue_wait (t_dequeue -. job.t_admit);
      Obs.record ~item:job.trace ~start_us:job.t_admit
        ~dur_us:(t_dequeue -. job.t_admit) "serve.queue";
      let run () =
        Obs.with_span ~item:job.trace "serve.check" (fun () ->
            if Obs.flight_active () then
              Obs.flight_checkpoint ~reason:"job-start" ();
            run_job p.cfg job)
      in
      match run () with
      | entry ->
          let mine =
            locked p (fun () ->
                if slot.epoch = epoch then begin
                  slot.busy <- None;
                  p.completed <- (job, Done entry) :: p.completed;
                  true
                end
                else false)
          in
          wake p;
          if mine then worker_loop p slot epoch
      | exception e ->
          (* This domain is done for; report the loss so the supervisor
             replaces the slot and deals with the job. *)
          let why =
            match e with
            | Chaos_killed -> "worker killed (chaos)"
            | e -> "worker died: " ^ Printexc.to_string e
          in
          locked p (fun () ->
              if slot.epoch = epoch then begin
                slot.busy <- None;
                slot.alive <- false;
                p.completed <- (job, Lost why) :: p.completed
              end);
          wake p)

let spawn_worker p slot =
  slot.epoch <- slot.epoch + 1;
  slot.alive <- true;
  slot.busy <- None;
  let epoch = slot.epoch in
  ignore (Domain.spawn (fun () -> worker_loop p slot epoch))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let close_conn p c =
  Hashtbl.remove p.conns c.cid;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Write one response line; a client that vanished mid-request costs an
   EPIPE (SIGPIPE is ignored), never the daemon. *)
let respond p conn_id ~cls line =
  p.served.(cls_index cls) <- p.served.(cls_index cls) + 1;
  match Hashtbl.find_opt p.conns conn_id with
  | None -> () (* client disconnected: the answer has no address *)
  | Some c -> (
      let s = line ^ "\n" in
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      try
        let sent = ref 0 in
        while !sent < n do
          sent := !sent + Unix.write c.fd b !sent (n - !sent)
        done
      with Unix.Unix_error _ -> close_conn p c)

let verdict_of_entry (e : Report.entry) =
  match e.Report.status with
  | Report.Pass v -> Some v
  | Report.Fail { got; _ } -> Some got
  | _ -> None

let deterministic e =
  match verdict_of_entry e with
  | Some Exec.Check.Allow | Some Exec.Check.Forbid -> true
  | _ -> false

(* A cache hit stores the *verdict*; pass/fail is relative to the
   asking request's expectation, so rebuild the status against it. *)
let entry_of_hit (cached : Report.entry) ~req_id ~expected =
  match verdict_of_entry cached with
  | Some v ->
      let status =
        match expected with
        | None -> Report.Pass v
        | Some exp when exp = v -> Report.Pass v
        | Some exp -> Report.Fail { expected = exp; got = v }
      in
      { cached with Report.item_id = req_id; status; result = None }
  | None -> { cached with Report.item_id = req_id } (* not reachable: only
      deterministic entries are stored *)

(* Close out a job's request-lifecycle telemetry as its answer leaves:
   the end-to-end latency distribution and one admission→reply span on
   the request's trace. *)
let finish_job_telemetry job =
  let now = Obs.now_us () in
  Obs.Histogram.observe_always h_latency (now -. job.t_admit);
  Obs.record ~item:job.trace ~start_us:job.t_admit
    ~dur_us:(now -. job.t_admit) "serve.request"

let respond_entry p job ?(cache = false) entry =
  if (not cache) && deterministic entry then Vcache.store p.cache job.vkey entry;
  finish_job_telemetry job;
  respond p job.conn_id
    ~cls:(Proto.cls_of_entry entry)
    (Proto.response_line ~id:job.req_id
       ~cls:(Proto.cls_of_entry entry)
       ~trace:job.trace ~cache ~entry ())

(* ------------------------------------------------------------------ *)
(* Supervision: losses, retries, quarantine, replacement               *)
(* ------------------------------------------------------------------ *)

let quarantined p vkey =
  match Hashtbl.find_opt p.strikes vkey with Some s -> s >= 2 | None -> false

let note_loss p now job why =
  job.attempts <- job.attempts + 1;
  let s = 1 + Option.value ~default:0 (Hashtbl.find_opt p.strikes job.vkey) in
  Hashtbl.replace p.strikes job.vkey s;
  if s >= 2 then begin
    Obs.event ~item:job.trace "serve.quarantine";
    finish_job_telemetry job;
    respond p job.conn_id ~cls:Proto.Quarantined
      (Proto.response_line ~id:job.req_id ~cls:Proto.Quarantined
         ~trace:job.trace
         ~msg:(why ^ "; fingerprint quarantined after " ^ string_of_int s
               ^ " worker losses")
         ())
  end
  else if job.attempts <= p.cfg.retries then begin
    (* Same job record, same trace id: the retry is one more hop on the
       request's trace, not a new request. *)
    Obs.event ~item:job.trace "serve.retry";
    let delay = p.cfg.backoff *. (2. ** float_of_int (job.attempts - 1)) in
    p.gated <- (now +. delay, job) :: p.gated
  end
  else begin
    Obs.event ~item:job.trace "serve.drop";
    finish_job_telemetry job;
    respond p job.conn_id ~cls:Proto.Error
      (Proto.response_line ~id:job.req_id ~cls:Proto.Error ~trace:job.trace
         ~msg:(why ^ "; no retries left") ())
  end

(* One supervisor pass: abandon wedged workers, replace dead slots,
   promote backoff-gated retries whose time has come. *)
let supervise p now =
  let losses, respawn =
    locked p (fun () ->
        let losses = ref [] and respawn = ref [] in
        Array.iter
          (fun slot ->
            (match slot.busy with
            | Some job when now > job.deadline +. p.cfg.wedge_grace ->
                (* Busy past deadline + grace: the budget should have
                   tripped long ago — the worker is wedged.  Abandon the
                   domain (epoch bump drops its eventual completion). *)
                slot.epoch <- slot.epoch + 1;
                slot.busy <- None;
                slot.alive <- false;
                losses := (job, "worker wedged past deadline") :: !losses
            | _ -> ());
            if (not slot.alive) && p.replacements < p.cfg.max_replacements
               && not p.stopping
            then begin
              p.replacements <- p.replacements + 1;
              respawn := slot :: !respawn
            end)
          p.slots;
        (* Promote gated retries (Condition has no timed wait; the main
           loop's tick is the timer). *)
        let ready, waiting =
          List.partition (fun (at, _) -> at <= now) p.gated
        in
        p.gated <- waiting;
        List.iter (fun (_, j) -> Queue.push j p.queue) ready;
        if ready <> [] then Condition.broadcast p.cond;
        (!losses, !respawn))
  in
  List.iter (fun (job, why) -> note_loss p now job why) losses;
  List.iter
    (fun slot -> locked p (fun () -> spawn_worker p slot))
    respawn

let drain_completions p now =
  let cs = locked p (fun () ->
      let cs = List.rev p.completed in
      p.completed <- [];
      cs)
  in
  List.iter
    (fun (job, outcome) ->
      match outcome with
      | Done entry -> respond_entry p job entry
      | Lost why -> note_loss p now job why)
    cs

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let resolve_model p name =
  match Hashtbl.find_opt p.models (String.lowercase_ascii name) with
  | Some m -> Ok m
  | None ->
      if Filename.check_suffix name ".cat" && Sys.file_exists name then begin
        match Runner.read_file name with
        | exception Sys_error e -> Error ("cannot read model: " ^ e)
        | src -> (
            let digest = Digest.to_hex (Digest.string src) in
            match Hashtbl.find_opt p.cat_models digest with
            | Some m -> Ok m
            | None -> (
                match Cat.parse src with
                | exception e ->
                    Error ("cannot parse model: " ^ Printexc.to_string e)
                | parsed ->
                    let m =
                      {
                        mkey = "cat:" ^ digest;
                        oracle = Cat.to_oracle ~name parsed;
                      }
                    in
                    Hashtbl.replace p.cat_models digest m;
                    Ok m))
      end
      else Error ("unknown model: " ^ name)

let stats_extra p now =
  let alive =
    Array.fold_left (fun n s -> if s.alive then n + 1 else n) 0 p.slots
  in
  let queued, busy =
    locked p (fun () ->
        ( Queue.length p.queue,
          Array.fold_left
            (fun n s -> if s.busy <> None then n + 1 else n)
            0 p.slots ))
  in
  let served =
    String.concat ", "
      (List.mapi
         (fun i n -> Printf.sprintf "\"%s\": %d"
             (Proto.cls_name
                (List.nth
                   [ Proto.Ok_; Proto.Fail; Proto.Unknown; Proto.Error;
                     Proto.Overloaded; Proto.Quarantined ]
                   i))
             n)
         (Array.to_list p.served))
  in
  [
    ("workers", string_of_int alive);
    ("busy", string_of_int busy);
    ("queued", string_of_int queued);
    ("gated", string_of_int (List.length p.gated));
    ("requests", string_of_int p.n_requests);
    ("replacements", string_of_int p.replacements);
    ("quarantined_keys",
     string_of_int
       (Hashtbl.fold (fun _ s n -> if s >= 2 then n + 1 else n) p.strikes 0));
    ("cache_size", string_of_int (Vcache.size p.cache));
    ("cache_hits", string_of_int (Vcache.hits p.cache));
    ("cache_misses", string_of_int (Vcache.misses p.cache));
    ("uptime", Printf.sprintf "%.3f" (now -. p.started_at));
    ("served", "{" ^ served ^ "}");
  ]

(* The [metrics] payload: one self-contained lkmetrics-1 object —
   counters, gauges and latency/queue-wait percentiles — the same shape
   {!Campaign}'s periodic snapshots journal, so one schema
   (ci/metrics.schema.json) validates both surfaces. *)
let metrics_json p now =
  let alive =
    Array.fold_left (fun n s -> if s.alive then n + 1 else n) 0 p.slots
  in
  let queued, busy, gated =
    locked p (fun () ->
        ( Queue.length p.queue,
          Array.fold_left
            (fun n s -> if s.busy <> None then n + 1 else n)
            0 p.slots,
          List.length p.gated ))
  in
  let served =
    String.concat ", "
      (List.mapi
         (fun i n ->
           Printf.sprintf "\"%s\": %d"
             (Proto.cls_name
                (List.nth
                   [ Proto.Ok_; Proto.Fail; Proto.Unknown; Proto.Error;
                     Proto.Overloaded; Proto.Quarantined ]
                   i))
             n)
         (Array.to_list p.served))
  in
  Printf.sprintf
    "{\"schema\": \"lkmetrics-1\", \"ts_us\": %.1f, \"uptime_s\": %.3f, \
     \"requests\": %d, \"queue_depth\": %d, \"gated\": %d, \
     \"workers_live\": %d, \"workers_busy\": %d, \"replacements\": %d, \
     \"quarantined_keys\": %d, \"backend\": \"%s\", \"cache\": {\"size\": \
     %d, \"hits\": %d, \"misses\": %d}, \"served\": {%s}, \"latency_us\": \
     %s, \"queue_wait_us\": %s}"
    (Obs.now_us ())
    (now -. p.started_at)
    p.n_requests queued gated alive busy p.replacements
    (Hashtbl.fold (fun _ s n -> if s >= 2 then n + 1 else n) p.strikes 0)
    (Exec.Check.backend_to_string p.cfg.backend)
    (Vcache.size p.cache) (Vcache.hits p.cache) (Vcache.misses p.cache)
    served
    (Obs.hist_metrics_json (Obs.hist_snapshot h_latency))
    (Obs.hist_metrics_json (Obs.hist_snapshot h_queue_wait))

let enqueue p job =
  locked p (fun () ->
      Queue.push job p.queue;
      Condition.signal p.cond)

(* Handle one complete request line from [conn]. *)
let handle_line p conn line ~request_shutdown =
  p.n_requests <- p.n_requests + 1;
  let now = Unix.gettimeofday () in
  let err ?(id = "") msg =
    respond p conn.cid ~cls:Proto.Error
      (Proto.response_line ~id ~cls:Proto.Error ~msg ())
  in
  match Proto.parse_request line with
  | Error (msg, id) -> err ?id msg
  | Ok { req_id; trace = rtrace; op } -> (
      if Hashtbl.mem conn.seen req_id then
        err ~id:req_id ("duplicate request id: " ^ req_id)
      else begin
        Hashtbl.replace conn.seen req_id ();
        (* Every job-producing request carries a trace id — the
           client's, or the request id itself.  Control-plane answers
           echo the trace only when the client sent one. *)
        let trace = Option.value ~default:req_id rtrace in
        let t_admit = Obs.now_us () in
        let ok ?extra ?msg () =
          respond p conn.cid ~cls:Proto.Ok_
            (Proto.response_line ~id:req_id ~cls:Proto.Ok_ ?trace:rtrace ?msg
               ?extra ())
        in
        let overloaded msg =
          Obs.event ~item:trace "serve.overloaded";
          respond p conn.cid ~cls:Proto.Overloaded
            (Proto.response_line ~id:req_id ~cls:Proto.Overloaded ~trace ~msg
               ())
        in
        let chaos_gate k =
          if p.cfg.chaos_ops then k ()
          else err ~id:req_id "chaos ops disabled (start with --chaos-ops)"
        in
        let inject chaos =
          (* Chaos ops are jobs too: they queue, occupy a worker, and
             their fingerprint participates in quarantine. *)
          chaos_gate (fun () ->
              if p.stopping then overloaded "shutting down"
              else
                let vkey =
                  Vcache.key ~model_key:"chaos" ~source:(line ^ req_id)
                in
                if quarantined p vkey then
                  respond p conn.cid ~cls:Proto.Quarantined
                    (Proto.response_line ~id:req_id ~cls:Proto.Quarantined
                       ~trace ~msg:"fingerprint quarantined" ())
                else begin
                  Obs.event ~item:trace "serve.admit";
                  enqueue p
                    {
                      req_id;
                      trace;
                      t_admit;
                      conn_id = conn.cid;
                      test = "";
                      oracle = Lkmm.oracle;
                      expected = None;
                      deadline = now +. p.cfg.default_timeout;
                      vkey;
                      chaos;
                      attempts = 0;
                    }
                end)
        in
        match op with
        | Proto.Ping -> ok ~msg:"pong" ()
        | Proto.Stats -> ok ~extra:(stats_extra p now) ()
        | Proto.Metrics -> ok ~extra:[ ("metrics", metrics_json p now) ] ()
        | Proto.Shutdown ->
            ok ~msg:"draining" ();
            request_shutdown ()
        | Proto.Chaos_kill -> inject Kill
        | Proto.Chaos_wedge s -> inject (Wedge s)
        | Proto.Check c -> (
            match resolve_model p c.model with
            | Error msg -> err ~id:req_id msg
            | Ok m -> (
                let vkey = Vcache.key ~model_key:m.mkey ~source:c.test in
                if quarantined p vkey then
                  respond p conn.cid ~cls:Proto.Quarantined
                    (Proto.response_line ~id:req_id ~cls:Proto.Quarantined
                       ~trace
                       ~msg:"fingerprint quarantined (killed two workers)" ())
                else
                  match Vcache.find p.cache vkey with
                  | Some cached ->
                      let entry =
                        entry_of_hit cached ~req_id ~expected:c.expected
                      in
                      Obs.Histogram.observe_always h_latency
                        (Obs.now_us () -. t_admit);
                      Obs.record ~item:trace ~start_us:t_admit
                        ~dur_us:(Obs.now_us () -. t_admit) "serve.request";
                      respond p conn.cid ~cls:(Proto.cls_of_entry entry)
                        (Proto.response_line ~id:req_id
                           ~cls:(Proto.cls_of_entry entry)
                           ~trace ~cache:true ~entry ())
                  | None ->
                      if p.stopping then overloaded "shutting down"
                      else if
                        locked p (fun () -> Queue.length p.queue)
                        >= p.cfg.queue_bound
                      then overloaded "queue full"
                      else begin
                        let timeout =
                          match c.timeout_ms with
                          | Some ms -> float_of_int ms /. 1000.
                          | None -> p.cfg.default_timeout
                        in
                        Obs.event ~item:trace "serve.admit";
                        enqueue p
                          {
                            req_id;
                            trace;
                            t_admit;
                            conn_id = conn.cid;
                            test = c.test;
                            oracle = m.oracle;
                            expected = c.expected;
                            deadline = now +. timeout;
                            vkey;
                            chaos = No_chaos;
                            attempts = 0;
                          }
                      end))
      end)

(* ------------------------------------------------------------------ *)
(* Connection buffering                                                *)
(* ------------------------------------------------------------------ *)

(* Feed newly read bytes through the line splitter, honouring the line
   bound: an overlong line is answered with one [error] and discarded
   through its terminating newline — the connection survives. *)
let feed p conn data ~request_shutdown =
  let data = conn.pending ^ data in
  conn.pending <- "";
  let n = String.length data in
  let pos = ref 0 in
  let continue = ref true in
  while !continue && !pos < n do
    match String.index_from_opt data !pos '\n' with
    | Some i ->
        let line = String.sub data !pos (i - !pos) in
        if conn.discarding then conn.discarding <- false
        else if String.length line > p.cfg.max_line then
          respond p conn.cid ~cls:Proto.Error
            (Proto.response_line ~id:"" ~cls:Proto.Error
               ~msg:
                 (Printf.sprintf "request line over %d bytes" p.cfg.max_line)
               ())
        else if String.trim line <> "" then
          handle_line p conn line ~request_shutdown;
        pos := i + 1
    | None ->
        let rest = String.sub data !pos (n - !pos) in
        if conn.discarding then () (* still inside the oversized line *)
        else if String.length rest > p.cfg.max_line then begin
          respond p conn.cid ~cls:Proto.Error
            (Proto.response_line ~id:"" ~cls:Proto.Error
               ~msg:
                 (Printf.sprintf "request line over %d bytes" p.cfg.max_line)
               ());
          conn.discarding <- true
        end
        else conn.pending <- rest;
        continue := false
  done

(* ------------------------------------------------------------------ *)
(* Startup and main loop                                               *)
(* ------------------------------------------------------------------ *)

(* A trivial one-thread test: running it through every built-in model at
   startup forces shared lazies and warms parse tables in the main
   domain, before any worker domain can race on them. *)
let warmup_test =
  "C warmup\n\n{ }\n\nP0(int *x) {\n  int r0 = READ_ONCE(*x);\n}\n\n\
   exists (0:r0=1)\n"

let warmup p =
  ignore (Lazy.force Cat.lk);
  let item =
    { Runner.id = "warmup"; source = `Text warmup_test; expected = None }
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt p.models name with
      | Some m ->
          ignore
            (Runner.run_item
               ~limits:(Exec.Budget.limits ~timeout:10. ())
               ~backend:p.cfg.backend ~oracle:m.oracle item)
      | None -> ())
    [ "lk"; "lk-cat"; "sc"; "tso"; "c11"; "c11-psc" ]

let create cfg =
  let models = Hashtbl.create 16 in
  List.iter
    (fun (n, m) -> Hashtbl.replace models n m)
    (builtin_models ());
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  {
    cfg;
    models;
    cat_models = Hashtbl.create 8;
    cache = Vcache.create ?journal:cfg.cache_journal ~fsync:cfg.fsync ();
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    stopping = false;
    slots =
      Array.init (max 1 cfg.workers) (fun sid ->
          { sid; epoch = 0; busy = None; alive = false });
    completed = [];
    replacements = 0;
    strikes = Hashtbl.create 16;
    gated = [];
    conns = Hashtbl.create 16;
    wake_r;
    wake_w;
    served = Array.make 6 0;
    n_requests = 0;
    started_at = Unix.gettimeofday ();
  }

let run ?(config = default) () =
  (* The collector is NOT force-enabled here: tracing is the caller's
     choice (lkserve honours the shared --trace/--metrics flags).  An
     armed flight recorder needs the span ring, so it implies it. *)
  (match config.flight_dir with
  | Some dir ->
      if not (Obs.enabled ()) then Obs.set_enabled true;
      (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
      Obs.flight_start
        ~interval_us:(config.flight_interval *. 1e6)
        (Filename.concat dir
           (Printf.sprintf "flight-%d.jsonl" (Unix.getpid ())))
  | None -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let p = create config in
  warmup p;
  (* Bind the socket (replacing a stale file from a previous crash). *)
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket);
  Unix.listen listen_fd 64;
  locked p (fun () -> Array.iter (fun s -> spawn_worker p s) p.slots);
  let stop = ref false in
  let request_shutdown () = stop := true in
  let install s = Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true)) in
  install Sys.sigterm;
  install Sys.sigint;
  Printf.eprintf "lkserve: listening on %s (%d workers, queue %d%s)\n%!"
    config.socket (Array.length p.slots) config.queue_bound
    (if config.chaos_ops then ", chaos ops ON" else "");
  let next_cid = ref 0 in
  let buf = Bytes.create 65536 in
  let draining = ref false in
  let drain_deadline = ref infinity in
  let running = ref true in
  while !running do
    let fds =
      listen_fd :: p.wake_r
      :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) p.conns []
    in
    let readable, _, _ =
      match Unix.select fds [] [] 0.05 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let now = Unix.gettimeofday () in
    (* Accept new clients (not while draining). *)
    if List.mem listen_fd readable && not !draining then begin
      match Unix.accept listen_fd with
      | fd, _ ->
          incr next_cid;
          let cid = !next_cid in
          Hashtbl.replace p.conns cid
            { fd; cid; pending = ""; seen = Hashtbl.create 16;
              discarding = false }
      | exception Unix.Unix_error _ -> ()
    end;
    (* Drain wake-ups. *)
    if List.mem p.wake_r readable then
      (try ignore (Unix.read p.wake_r buf 0 (Bytes.length buf))
       with Unix.Unix_error _ -> ());
    (* Client input. *)
    Hashtbl.fold (fun _ c acc -> c :: acc) p.conns []
    |> List.iter (fun c ->
           if List.mem c.fd readable then
             match Unix.read c.fd buf 0 (Bytes.length buf) with
             | 0 -> close_conn p c (* EOF: mid-request disconnects land here *)
             | n ->
                 feed p c (Bytes.sub_string buf 0 n) ~request_shutdown
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error _ -> close_conn p c);
    (* Worker completions, then supervision. *)
    drain_completions p now;
    supervise p now;
    (* Shutdown: reject the queue, finish in-flight work, then leave. *)
    if !stop && not !draining then begin
      draining := true;
      let orphans =
        locked p (fun () ->
            p.stopping <- true;
            Condition.broadcast p.cond;
            let q = Queue.fold (fun acc j -> j :: acc) [] p.queue in
            Queue.clear p.queue;
            List.rev q)
      in
      List.iter
        (fun j ->
          respond p j.conn_id ~cls:Proto.Overloaded
            (Proto.response_line ~id:j.req_id ~cls:Proto.Overloaded
               ~trace:j.trace ~msg:"shutting down" ()))
        orphans;
      let gated = p.gated in
      p.gated <- [];
      List.iter
        (fun (_, j) ->
          respond p j.conn_id ~cls:Proto.Overloaded
            (Proto.response_line ~id:j.req_id ~cls:Proto.Overloaded
               ~trace:j.trace ~msg:"shutting down" ()))
        gated;
      (* Give in-flight work until its own deadline plus grace. *)
      drain_deadline :=
        locked p (fun () ->
            Array.fold_left
              (fun acc s ->
                match s.busy with
                | Some j -> Float.max acc (j.deadline +. config.wedge_grace)
                | None -> acc)
              (now +. 0.2) p.slots)
    end;
    if !draining then begin
      let idle =
        locked p (fun () ->
            p.completed = []
            && Array.for_all (fun s -> s.busy = None) p.slots)
      in
      if idle || now > !drain_deadline then running := false
    end
  done;
  drain_completions p (Unix.gettimeofday ());
  if Obs.flight_active () then Obs.flight_stop ();
  Vcache.close p.cache;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    p.conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  Printf.eprintf
    "lkserve: drained — %d requests served (%d ok, %d fail, %d unknown, %d \
     error, %d overloaded, %d quarantined), %d replacements\n%!"
    p.n_requests p.served.(0) p.served.(1) p.served.(2) p.served.(3)
    p.served.(4) p.served.(5) p.replacements;
  0

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type t = { ic : in_channel; oc : out_channel; mutable ctr : int }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    {
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      ctr = 0;
    }

  let fresh_id t =
    t.ctr <- t.ctr + 1;
    Printf.sprintf "c%d" t.ctr

  let send t line =
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc

  let recv t =
    match input_line t.ic with
    | line -> Proto.parse_response line
    | exception End_of_file -> Error "connection closed by daemon"

  let request t line =
    send t line;
    recv t

  let check t ?id ?trace ?model ?timeout_ms ?expected test =
    let id = match id with Some i -> i | None -> fresh_id t in
    request t (Proto.check_line ~id ?trace ?model ?timeout_ms ?expected test)

  let ping t = request t (Proto.simple_line ~id:(fresh_id t) "ping")
  let stats t = request t (Proto.simple_line ~id:(fresh_id t) "stats")
  let metrics t = request t (Proto.simple_line ~id:(fresh_id t) "metrics")
  let shutdown t = request t (Proto.simple_line ~id:(fresh_id t) "shutdown")

  let chaos_kill ?trace t =
    request t (Proto.simple_line ~id:(fresh_id t) ?trace "chaos_kill")

  let chaos_wedge ?trace t seconds =
    request t (Proto.chaos_wedge_line ~id:(fresh_id t) ?trace seconds)

  let close t =
    close_out_noerr t.oc;
    close_in_noerr t.ic
end
