(* Shared CLI scaffolding for the four executables (herd_lk,
   klitmus_sim, diy_gen, catgen): one definition of the common flags,
   one exit-code mapping, one usage-error path, and one way to wire the
   observability collector to --trace/--metrics.

   Before this module each binary carried its own copy of the budget /
   journal / pool flags and of the final [Cmd.eval_value] match; the
   copies had already drifted (different doc strings, diy_gen missing
   the battery hint on [Not_found]).  The flags and the match live here
   exactly once; a binary keeps only the flags that are genuinely its
   own (-model, -arch, -size, ...). *)

open Cmdliner

(* ---------------------------------------------------------------- *)
(* Common flags.  Doc strings are written to read correctly from any
   of the binaries, so a flag means the same thing everywhere. *)

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per model check; exceeding it yields the \
           Unknown verdict instead of a hang.")

let max_candidates_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-candidates" ] ~docv:"N"
        ~doc:
          "Cap on candidate executions per model check (the rf/co product \
           is pre-checked, so explosions fail fast).")

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Cap on events per candidate execution.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run items in $(docv) parallel worker processes.  Each item is \
           checked in its own forked process with a hard watchdog, so a \
           segfault or hang is contained and classified rather than fatal.")

let mem_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"MB"
        ~doc:
          "Hard per-worker heap cap in megabytes (implies process \
           isolation); exceeding it yields a classified Unknown entry.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append each completed entry to $(docv) as JSONL, flushed per \
           entry; a killed run loses at most the in-flight items.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Recycle entries already recorded in journal $(docv); only \
           missing items re-run.  Usually combined with --journal FILE to \
           continue the same journal.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the batch report as JSON on stdout (the unified \
           schema-versioned report; see README).")

let no_batch_arg =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:
          "Alias for $(b,--backend enum): evaluate candidates one at a \
           time on the scalar reference path — no bit-plane batching, no \
           incremental (delta) re-checking.  Ignored when $(b,--backend) \
           is given explicitly.")

let backend_conv =
  Arg.enum
    [
      ("enum", Exec.Check.Enum);
      ("batch", Exec.Check.Batch);
      ("sat", Exec.Check.Sat);
    ]

let backend_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"ENGINE"
        ~doc:
          "Checking engine: $(b,batch) (default) evaluates candidates in \
           word-parallel bit planes, $(b,enum) one at a time on the scalar \
           reference path (no delta re-checking), $(b,sat) solves the \
           candidate space symbolically (CDCL over a CNF encoding; decoded \
           witnesses are re-validated through the scalar model).  Verdicts \
           are identical across engines; a model without the requested \
           engine falls back enumeratively (counted as sat.fallback for \
           $(b,sat)).")

(* One resolution rule for every binary: an explicit [--backend] wins;
   the legacy [--no-batch] flag selects the scalar engine. *)
let backend ~backend ~no_batch =
  match backend with
  | Some b -> b
  | None -> if no_batch then Exec.Check.Enum else Exec.Check.Batch

(* A..B, half-open: the deterministic seed intervals of generated
   sweeps and campaign shards. *)
let seed_range_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i > 0
           && i + 2 < String.length s -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 2) (String.length s - i - 2))
          )
        with
        | Some a, Some b when a < b -> Ok (a, b)
        | Some a, Some b when a >= b ->
            Error (`Msg (Printf.sprintf "empty seed range %d..%d" a b))
        | _ -> Error (`Msg ("bad seed range: " ^ s)))
    | _ -> Error (`Msg ("expected A..B, got " ^ s))
  in
  let print ppf (a, b) = Format.fprintf ppf "%d..%d" a b in
  Arg.conv (parse, print)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable the observability collector and write the run's spans \
           as a Chrome trace-event file to $(docv) (loadable in \
           chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable the observability collector and write spans, counters \
           and histograms as JSONL to $(docv) (input to tools/obs_report).")

(* ---------------------------------------------------------------- *)
(* The exit-code mapping, once.  Every binary maps the same codes to
   the same meanings; binaries that cannot produce a code (catgen never
   crashes a worker) simply never return it. *)

let exit_infos =
  [
    Cmd.Exit.info 0 ~doc:"every item passed (completed, matching any \
                          recorded expectation)";
    Cmd.Exit.info 1 ~doc:"some item's verdict mismatched its expectation \
                          (FAIL)";
    Cmd.Exit.info 2 ~doc:"some item errored: parse, lex, type, lint or \
                          internal error";
    Cmd.Exit.info 3 ~doc:"some item exceeded its resource budget (Unknown) \
                          and none failed or errored";
    Cmd.Exit.info 4 ~doc:"some worker process crashed on a signal \
                          (process-isolated runs only); crash outranks \
                          error, fail and budget";
    Cmd.Exit.info 124
      ~doc:"command-line usage error: unknown option or bad value \
            (Cmdliner convention)";
    Cmd.Exit.info 125 ~doc:"uncaught internal exception (Cmdliner convention)";
  ]

(* ---------------------------------------------------------------- *)
(* Observability wiring: enable the collector iff the user asked for an
   output, and write the outputs even when the run fails (a trace of a
   failing run is the one you actually want). *)

let with_obs ~trace ~metrics f =
  if trace = None && metrics = None then f ()
  else begin
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Option.iter Obs.write_chrome trace;
        Option.iter Obs.write_jsonl metrics;
        Obs.set_enabled false)
      f
  end

(* ---------------------------------------------------------------- *)
(* The usage-error path, once: Cmdliner's own error classes keep their
   reserved codes; user errors become one-line classified messages
   rather than uncaught exceptions. *)

let eval ~name cmd =
  match Cmd.eval_value ~catch:false cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 124 (* CLI usage error *)
  | Error `Exn -> exit 125 (* internal error *)
  | exception Not_found ->
      Fmt.epr
        "%s: unknown name (for built-in battery tests see \
         lib/harness/battery.ml)@."
        name;
      exit 2
  | exception exn ->
      Fmt.epr "%s: %a@." name Report.pp_error (Runner.classify_exn exn);
      exit 2
