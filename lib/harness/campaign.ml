(* Campaign-scale sweeps: fault-tolerant sharded orchestration over
   10^5+ generated tests, with differential mining (Section 5 at scale).

   A campaign is a seed interval partitioned into shards, each a
   deterministic (generator config, seed range) pair.  Tests are
   regenerated on demand inside workers ({!Diygen.test_of_seed}) —
   never materialised as files — so a shard's entire state is its
   range plus a per-seed result journal, and any worker can pick a
   shard up from nothing.  The {!Manifest} journals shard-state
   transitions; a [kill -9] of the orchestrator at any byte offset is
   recoverable, and a resumed campaign mines a report byte-identical
   to an uninterrupted run (the chaos suite gates on this).

   Failure ladder per shard: attempt 1 runs the full budget; a worker
   failure (crash, non-zero exit, lease expiry) requeues with
   [failed = true] and attempt 2 runs the reduced budget; a second
   failure bisects the shard (children restart the ladder), narrowing
   crashes down to the poison seed, whose singleton shard is
   quarantined after its own two strikes — reported, never dropped.

   Determinism: per-seed classification is a pure function of
   (config, seed) as long as the budgets carry no wall-clock timeout
   (the defaults do not) — verdicts collapse to Allow/Forbid/Unknown
   strings, hwsim runs are seeded by the campaign seed, and mined
   output is fully sorted with no time fields.  This is what lets the
   chaos gates compare interrupted-and-resumed runs against
   uninterrupted ground truth for byte equality.  It also defuses the
   one unavoidable race: an orphaned worker (orchestrator died between
   [fork] and the lease record) sharing a shard journal with its
   replacement writes byte-identical lines, and a torn interleave is
   dropped by the tolerant reader and re-run. *)

module Json = Journal.Json

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  dir : string; (* manifest + shard journals + report live here *)
  size : int;
  seed_lo : int;
  seed_hi : int;
  shard_size : int;
  jobs : int;
  models : string list; (* subset of "lk", "cat", "c11" *)
  archs : string list; (* hwsim profiles, by Arch.find name *)
  hw_runs : int; (* operational runs per test per arch *)
  limits : Exec.Budget.limits; (* attempt 1 *)
  reduced : Exec.Budget.limits; (* attempt >= 2 *)
  lease_timeout : float; (* seconds before a straggler is SIGKILLed *)
  max_rows : int; (* disagreement rows kept per shard *)
  explain : bool; (* attach forensics to mined Forbid-side patterns *)
  backend : Exec.Check.backend; (* engine for the axiomatic columns *)
  poison : int list; (* chaos hook: worker exits 42 at these seeds *)
  wedge : int list; (* chaos hook: worker hangs at these seeds *)
  flight : bool; (* arm the crash flight recorder in every worker *)
  metrics_interval : float; (* seconds between metrics.jsonl snapshots *)
  log : string -> unit;
}

(* Deterministic by construction: the default budgets bound candidates
   and events, never wall-clock — a verdict depends only on (config,
   seed), which the chaos equality gates require.  Adding a timeout is
   fine for production sweeps but trades that equality away. *)
let default =
  {
    dir = "campaign";
    size = 4;
    seed_lo = 0;
    seed_hi = 100_000;
    shard_size = 4096;
    jobs = 2;
    models = [ "lk"; "cat"; "c11" ];
    archs = [];
    hw_runs = 2_000;
    limits = Exec.Budget.limits ~max_events:256 ~max_candidates:100_000 ();
    reduced = Exec.Budget.limits ~max_events:128 ~max_candidates:5_000 ();
    lease_timeout = 300.;
    max_rows = 64;
    explain = false;
    backend = Exec.Check.Batch;
    poison = [];
    wedge = [];
    flight = false;
    metrics_interval = 1.0;
    log = ignore;
  }

let spec_of_config c =
  {
    Manifest.size = c.size;
    seed_lo = c.seed_lo;
    seed_hi = c.seed_hi;
    shard_size = c.shard_size;
  }

let manifest_path dir = Filename.concat dir "manifest.jsonl"

let shard_journal_path dir lo hi =
  Filename.concat dir (Manifest.shard_id lo hi ^ ".jsonl")

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Per-seed classification (the worker's inner loop)                   *)
(* ------------------------------------------------------------------ *)

(* Campaigns pin the generator to the core vocabulary: the spec names
   (size, seed) and this module supplies the rest of the identity. *)
let vocabulary = Diygen.Edge.core_vocabulary

let int_mem k j = Option.map int_of_float (Option.bind (Json.mem k j) Json.num)
let num_mem k j = Option.bind (Json.mem k j) Json.num

let verdict_str = function
  | Exec.Check.Allow -> "Allow"
  | Exec.Check.Forbid -> "Forbid"
  | Exec.Check.Unknown _ -> "Unknown"

let check_verdict ?backend limits oracle t =
  match
    if Exec.Budget.is_unlimited limits then Exec.Oracle.run ?backend oracle t
    else
      Exec.Oracle.run ?backend ~budget:(Exec.Budget.start limits) oracle t
  with
  | r -> verdict_str r.Exec.Check.verdict
  | exception _ -> "Unknown"

(* The axiomatic columns, built once per worker: the packaged cat
   oracle carries a one-slot prefix cache that must live across the
   whole shard, not per test.  The config's [backend] picks each
   column's engine ([Batch] by default). *)
let build_checks config =
  List.filter_map
    (function
      | "lk" -> Some ("lk", Lkmm.oracle)
      | "cat" -> Some ("cat", Cat.to_oracle ~name:"LK(cat)" (Lazy.force Cat.lk))
      | _ -> None)
    config.models

(* One journal line per seed:
     {"seed": 7, "test": null}                      -- walk didn't realise
     {"seed": 8, "test": "...", "time_s": ..,
      "v": {"lk": "Allow", "cat": "Allow", "c11": "-", "hw:Power8": "obs"}} *)
let classify ~checks ~backend ~c11 ~archs ~hw_runs ~limits ~size seed =
  match Diygen.test_of_seed ~vocabulary ~size seed with
  | None -> Printf.sprintf "{\"seed\": %d, \"test\": null}" seed
  | Some t ->
      let t0 = Unix.gettimeofday () in
      let v =
        List.map
          (fun (name, oracle) -> (name, check_verdict ~backend limits oracle t))
          checks
        @ (if c11 then
             [
               ( "c11",
                 if Models.C11.applicable t then
                   check_verdict limits
                     (Exec.Oracle.of_model (module Models.C11))
                     t
                 else "-" );
             ]
           else [])
        @ List.map
            (fun (arch : Hwsim.Arch.t) ->
              ( "hw:" ^ arch.Hwsim.Arch.name,
                (* seeded by the campaign seed: the histogram is a pure
                   function of (arch, hw_runs, seed, test) *)
                match Hwsim.run_test arch ~runs:hw_runs ~seed t with
                | s -> if s.Hwsim.matched > 0 then "obs" else "unobs"
                | exception _ -> "err" ))
            archs
      in
      Printf.sprintf
        "{\"seed\": %d, \"test\": \"%s\", \"time_s\": %.6f, \"v\": {%s}}" seed
        (Report.json_escape t.Litmus.Ast.name)
        (Unix.gettimeofday () -. t0)
        (String.concat ", "
           (List.map
              (fun (m, x) ->
                Printf.sprintf "\"%s\": \"%s\"" (Report.json_escape m)
                  (Report.json_escape x))
              v))

(* ------------------------------------------------------------------ *)
(* Shard journals                                                      *)
(* ------------------------------------------------------------------ *)

type cell = { test : string option; v : (string * string) list; time : float }

(* Torn or foreign lines are dropped ({!Journal} tolerance); duplicate
   seeds resolve last-wins — both writers of a duplicate computed the
   same deterministic line anyway. *)
let read_shard_journal path : (int, cell) Hashtbl.t =
  let tbl = Hashtbl.create 512 in
  Journal.iter_lines path (fun line ->
      match Json.of_string line with
      | exception Json.Malformed _ -> ()
      | j -> (
          match (int_mem "seed" j, Json.mem "test" j) with
          | Some seed, Some test_j ->
              let v =
                match Json.mem "v" j with
                | Some (Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, x) -> Option.map (fun s -> (k, s)) (Json.str x))
                      kvs
                | _ -> []
              in
              Hashtbl.replace tbl seed
                {
                  test = Json.str test_j;
                  v;
                  time = Option.value ~default:0. (num_mem "time_s" j);
                }
          | _ -> ()));
  tbl

(* ------------------------------------------------------------------ *)
(* Disagreement analysis                                               *)
(* ------------------------------------------------------------------ *)

let decisive = function Some "Allow" | Some "Forbid" -> true | _ -> false

(* The reference column all comparisons anchor on: the native model
   when it ran, the cat interpretation otherwise. *)
let reference v =
  match List.assoc_opt "lk" v with
  | Some x -> ("lk", Some x)
  | None -> ("cat", List.assoc_opt "cat" v)

(* Disagreement kinds, by severity: "native-vs-cat" (the two LK
   implementations split — an implementation bug somewhere), then
   "hw-unsound:<arch>" (simulated hardware exhibits what LK forbids),
   then "lk-vs-c11" (an expected modelling gap, Table 5's staple). *)
let kinds_of_verdicts v =
  let get m = List.assoc_opt m v in
  let lk = get "lk" and cat = get "cat" and c11 = get "c11" in
  let _, rv = reference v in
  let ks = ref [] in
  if decisive lk && decisive cat && lk <> cat then
    ks := "native-vs-cat" :: !ks;
  List.iter
    (fun (m, value) ->
      if
        String.length m > 3
        && String.sub m 0 3 = "hw:"
        && value = "obs"
        && rv = Some "Forbid"
      then ks := ("hw-unsound:" ^ String.sub m 3 (String.length m - 3)) :: !ks)
    v;
  if decisive rv && decisive c11 && rv <> c11 then ks := "lk-vs-c11" :: !ks;
  List.sort compare !ks

let severity_of_kind k =
  if k = "native-vs-cat" then 0
  else if String.length k >= 10 && String.sub k 0 10 = "hw-unsound" then 1
  else 2

(* The verdict signature patterns group on, restricted to the models
   the kind compares. *)
let key_of_kind kind v =
  let get m = Option.value ~default:"?" (List.assoc_opt m v) in
  let rname, rv = reference v in
  let rv = Option.value ~default:"?" rv in
  if kind = "native-vs-cat" then
    Printf.sprintf "lk=%s cat=%s" (get "lk") (get "cat")
  else if String.length kind > 11 && String.sub kind 0 11 = "hw-unsound:" then
    Printf.sprintf "%s=%s hw:%s=obs" rname rv
      (String.sub kind 11 (String.length kind - 11))
  else Printf.sprintf "%s=%s c11=%s" rname rv (get "c11")

(* ------------------------------------------------------------------ *)
(* Shard summary                                                       *)
(* ------------------------------------------------------------------ *)

let summarise config ~lo ~hi (cells : (int, cell) Hashtbl.t) :
    Manifest.summary =
  let n_tests = ref 0 and n_unknown = ref 0 and time = ref 0. in
  let counts = Hashtbl.create 32 in
  let rows = ref [] and n_rows = ref 0 and dropped = ref 0 in
  for seed = lo to hi - 1 do
    match Hashtbl.find_opt cells seed with
    | None | Some { test = None; _ } -> ()
    | Some { test = Some name; v; time = t } ->
        incr n_tests;
        time := !time +. t;
        List.iter
          (fun (m, value) ->
            if value = "Unknown" then incr n_unknown;
            let k = m ^ ":" ^ value in
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          v;
        let kinds = kinds_of_verdicts v in
        if kinds <> [] then
          if !n_rows < config.max_rows then begin
            rows := { Manifest.seed; test = name; verdicts = v; kinds } :: !rows;
            incr n_rows
          end
          else incr dropped
  done;
  {
    Manifest.n_seeds = hi - lo;
    n_tests = !n_tests;
    n_unknown = !n_unknown;
    counts =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
      |> List.sort compare;
    rows = List.rev !rows;
    rows_dropped = !dropped;
    time_s = !time;
  }

(* ------------------------------------------------------------------ *)
(* Worker (child process)                                              *)
(* ------------------------------------------------------------------ *)

let worker_exit_uncaught = 3

(* Orchestrator service histograms.  Unconditional (observe_always) so
   the metrics journal carries real shard percentiles even when the
   tracing collector is off. *)
let h_shard_wall = Obs.Histogram.make "campaign.shard_wall_us"
let h_shard_pending = Obs.Histogram.make "campaign.shard_pending_us"

(* Resume within the shard: seeds already journalled (by this worker's
   predecessor, any attempt) are skipped, so a retried shard pays only
   for the seeds the crash lost.  Never returns. *)
let run_worker config ~lo ~hi ~attempt =
  let code =
    try
      (* Flight recorder: armed post-fork (the orchestrator never arms
         its own), checkpointed at every seed start, so the poison and
         wedge chaos hooks — like any real crash — leave a post-mortem
         whose open [campaign.seed] span names the victim seed.  [last]
         is kept small: at campaign scale the per-checkpoint span tail
         is the file-size budget. *)
      if config.flight then begin
        if not (Obs.enabled ()) then Obs.set_enabled true;
        Obs.flight_start ~last:8
          (Filename.concat config.dir
             (Printf.sprintf "flight-%d.jsonl" (Unix.getpid ())))
      end;
      let jpath = shard_journal_path config.dir lo hi in
      let done_cells = read_shard_journal jpath in
      let w = Journal.open_writer jpath in
      let checks = build_checks config in
      let c11 = List.mem "c11" config.models in
      let archs = List.map Hwsim.Arch.find config.archs in
      let limits = if attempt >= 2 then config.reduced else config.limits in
      for seed = lo to hi - 1 do
        if not (Hashtbl.mem done_cells seed) then
          Journal.write_line w
            (Obs.with_span
               ~item:("seed:" ^ string_of_int seed)
               "campaign.seed"
               (fun () ->
                 if Obs.flight_active () then
                   Obs.flight_checkpoint ~reason:"seed-start" ();
                 if List.mem seed config.poison then Unix._exit 42;
                 if List.mem seed config.wedge then
                   while true do
                     Unix.sleepf 3600.
                   done;
                 classify ~checks ~backend:config.backend ~c11 ~archs
                   ~hw_runs:config.hw_runs ~limits ~size:config.size seed))
      done;
      Journal.close w;
      if Obs.flight_active () then Obs.flight_stop ();
      0
    with _ -> worker_exit_uncaught
  in
  Unix._exit code

(* ------------------------------------------------------------------ *)
(* Split redistribution                                                *)
(* ------------------------------------------------------------------ *)

(* Bisecting a shard distributes its journalled results to the two
   children so completed seeds are never re-run.  Crash-safe without
   ceremony: killed before the parent journal is removed, the children
   get duplicate lines on a later retry — byte-identical (determinism)
   and last-wins on read; killed after, the children already hold
   every line. *)
let redistribute dir ~lo ~hi ~mid =
  let parent = shard_journal_path dir lo hi in
  if Sys.file_exists parent then begin
    let wl = Journal.open_writer (shard_journal_path dir lo mid) in
    let wr = Journal.open_writer (shard_journal_path dir mid hi) in
    Journal.iter_lines parent (fun line ->
        match Json.of_string line with
        | exception Json.Malformed _ -> ()
        | j -> (
            match int_mem "seed" j with
            | Some s when s >= lo && s < mid -> Journal.write_line wl line
            | Some s when s >= mid && s < hi -> Journal.write_line wr line
            | _ -> ()));
    Journal.close wl;
    Journal.close wr;
    try Sys.remove parent with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Mining                                                              *)
(* ------------------------------------------------------------------ *)

type exemplar = { seed : int; test : string; verdicts : (string * string) list }

type pattern = {
  kind : string;
  severity : int;
  key : string;
  count : int;
  exemplars : exemplar list; (* capped at 3, seed order *)
  explanations : string list;
}

type totals = {
  n_shards : int;
  n_quarantined : int;
  n_seeds : int; (* seeds classified in Done shards *)
  n_tests : int;
  n_unknown : int;
  rows_dropped : int;
}

type report = {
  spec : Manifest.spec;
  totals : totals;
  counts : (string * int) list;
  quarantined : Manifest.shard list;
  patterns : pattern list;
}

(* Forbid-side forensics: regenerate the pattern's first exemplar from
   its seed and attach the native model's validated explanations of the
   rejection (axiom-level, see {!Lkmm.Explain}). *)
let attach_explanations ~size (p : pattern) =
  match p.exemplars with
  | ex :: _ when List.assoc_opt "lk" ex.verdicts = Some "Forbid" -> (
      match Diygen.test_of_seed ~vocabulary ~size ex.seed with
      | None -> p
      | Some t -> (
          match
            Exec.Oracle.run
              ~budget:(Exec.Budget.start Exec.Budget.default)
              ~explainer:Lkmm.Explain.explainer Lkmm.oracle t
          with
          | r ->
              {
                p with
                explanations =
                  List.map Exec.Explain.to_string r.Exec.Check.explanations;
              }
          | exception _ -> p))
  | _ -> p

(* Fold the completed manifest into the discrepancy report.  Everything
   is sorted and time-free: two manifests describing the same completed
   campaign mine to byte-identical reports, which is the chaos suite's
   equality gate. *)
let mine ?(explain = false) m =
  let spec = Manifest.spec m in
  let shards = Manifest.shards m in
  let n_seeds = ref 0
  and n_tests = ref 0
  and n_unknown = ref 0
  and rows_dropped = ref 0 in
  let counts = Hashtbl.create 64 in
  let groups : (string * string, int ref * exemplar list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let quarantined = ref [] in
  List.iter
    (fun (sh : Manifest.shard) ->
      match sh.state with
      | Manifest.Done s ->
          n_seeds := !n_seeds + s.Manifest.n_seeds;
          n_tests := !n_tests + s.Manifest.n_tests;
          n_unknown := !n_unknown + s.Manifest.n_unknown;
          rows_dropped := !rows_dropped + s.Manifest.rows_dropped;
          List.iter
            (fun (k, n) ->
              Hashtbl.replace counts k
                (n + Option.value ~default:0 (Hashtbl.find_opt counts k)))
            s.Manifest.counts;
          List.iter
            (fun (r : Manifest.row) ->
              List.iter
                (fun kind ->
                  let key = key_of_kind kind r.Manifest.verdicts in
                  let cnt, exs =
                    match Hashtbl.find_opt groups (kind, key) with
                    | Some g -> g
                    | None ->
                        let g = (ref 0, ref []) in
                        Hashtbl.replace groups (kind, key) g;
                        g
                  in
                  incr cnt;
                  if List.length !exs < 3 then
                    exs :=
                      !exs
                      @ [
                          {
                            seed = r.Manifest.seed;
                            test = r.Manifest.test;
                            verdicts = r.Manifest.verdicts;
                          };
                        ])
                r.Manifest.kinds)
            s.Manifest.rows
      | Manifest.Quarantined _ -> quarantined := sh :: !quarantined
      | Manifest.Pending | Manifest.Leased _ -> ())
    shards;
  let patterns =
    Hashtbl.fold
      (fun (kind, key) (cnt, exs) acc ->
        {
          kind;
          severity = severity_of_kind kind;
          key;
          count = !cnt;
          exemplars = !exs;
          explanations = [];
        }
        :: acc)
      groups []
    |> List.sort (fun a b ->
           compare (a.severity, -a.count, a.kind, a.key)
             (b.severity, -b.count, b.kind, b.key))
  in
  let patterns =
    if explain then List.map (attach_explanations ~size:spec.Manifest.size) patterns
    else patterns
  in
  {
    spec;
    totals =
      {
        n_shards = List.length shards;
        n_quarantined = List.length !quarantined;
        n_seeds = !n_seeds;
        n_tests = !n_tests;
        n_unknown = !n_unknown;
        rows_dropped = !rows_dropped;
      };
    counts =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
      |> List.sort compare;
    quarantined =
      List.sort
        (fun (a : Manifest.shard) b -> compare (a.lo, a.hi) (b.lo, b.hi))
        !quarantined;
    patterns;
  }

(* ------------------------------------------------------------------ *)
(* Report emission                                                     *)
(* ------------------------------------------------------------------ *)

let campaign_schema_version = 1

let esc = Report.json_escape

let exemplar_to_json e =
  Printf.sprintf "{\"seed\": %d, \"test\": \"%s\", \"v\": {%s}}" e.seed
    (esc e.test)
    (String.concat ", "
       (List.map
          (fun (m, x) -> Printf.sprintf "\"%s\": \"%s\"" (esc m) (esc x))
          e.verdicts))

let pattern_to_json p =
  Printf.sprintf
    "{\"kind\": \"%s\", \"severity\": %d, \"key\": \"%s\", \"count\": %d, \
     \"exemplars\": [%s], \"explanations\": [%s]}"
    (esc p.kind) p.severity (esc p.key) p.count
    (String.concat ", " (List.map exemplar_to_json p.exemplars))
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "\"%s\"" (esc s)) p.explanations))

let quarantined_to_json (sh : Manifest.shard) =
  let attempts, error =
    match sh.state with
    | Manifest.Quarantined { attempts; error } -> (attempts, error)
    | _ -> (sh.attempts, "")
  in
  Printf.sprintf
    "{\"id\": \"%s\", \"lo\": %d, \"hi\": %d, \"attempts\": %d, \"error\": \
     \"%s\"}"
    (Manifest.shard_id sh.lo sh.hi)
    sh.lo sh.hi attempts (esc error)

(* No time fields anywhere: the mined report of a resumed campaign must
   compare byte-equal against an uninterrupted one. *)
let report_to_json r =
  Printf.sprintf
    "{\"campaign_schema_version\": %d, \"spec\": {\"size\": %d, \"seed_lo\": \
     %d, \"seed_hi\": %d, \"shard_size\": %d}, \"totals\": {\"n_shards\": %d, \
     \"n_quarantined\": %d, \"n_seeds\": %d, \"n_tests\": %d, \"n_unknown\": \
     %d, \"rows_dropped\": %d}, \"counts\": {%s}, \"quarantined\": [%s], \
     \"patterns\": [%s]}"
    campaign_schema_version r.spec.Manifest.size r.spec.Manifest.seed_lo
    r.spec.Manifest.seed_hi r.spec.Manifest.shard_size r.totals.n_shards
    r.totals.n_quarantined r.totals.n_seeds r.totals.n_tests
    r.totals.n_unknown r.totals.rows_dropped
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "\"%s\": %d" (esc k) n) r.counts))
    (String.concat ", " (List.map quarantined_to_json r.quarantined))
    (String.concat ", " (List.map pattern_to_json r.patterns))

let report_to_text r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "campaign: size=%d seeds=[%d,%d) shard=%d\n" r.spec.Manifest.size
    r.spec.Manifest.seed_lo r.spec.Manifest.seed_hi
    r.spec.Manifest.shard_size;
  pf "  shards %d (quarantined %d)  seeds %d  tests %d  unknown %d%s\n"
    r.totals.n_shards r.totals.n_quarantined r.totals.n_seeds r.totals.n_tests
    r.totals.n_unknown
    (if r.totals.rows_dropped > 0 then
       Printf.sprintf "  rows dropped %d" r.totals.rows_dropped
     else "");
  if r.counts <> [] then begin
    pf "verdict counts:\n";
    List.iter (fun (k, n) -> pf "  %-24s %d\n" k n) r.counts
  end;
  List.iter
    (fun (sh : Manifest.shard) ->
      match sh.state with
      | Manifest.Quarantined { attempts; error } ->
          pf "quarantined %s after %d attempts: %s\n"
            (Manifest.shard_id sh.lo sh.hi)
            attempts error
      | _ -> ())
    r.quarantined;
  if r.patterns = [] then pf "no cross-model disagreements mined\n"
  else begin
    pf "discrepancies (most severe first):\n";
    List.iter
      (fun p ->
        pf "  [%d] %-18s %-28s %5d tests" p.severity p.kind p.key p.count;
        (match p.exemplars with
        | e :: _ -> pf "  e.g. seed %d %s" e.seed e.test
        | [] -> ());
        pf "\n";
        List.iter
          (fun ex ->
            List.iter (fun l -> pf "        | %s\n" l)
              (String.split_on_char '\n' ex))
          p.explanations)
      r.patterns
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Orchestrator                                                        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = In_channel.input_all ic in
  close_in_noerr ic;
  s

(* A lease's pid is only worth killing if it is still alive *and* runs
   our own binary (an orphaned worker is a fork of the orchestrator):
   recycled pids belonging to unrelated processes are left alone. *)
let stale_worker_alive pid =
  pid > 0
  &&
  match Unix.kill pid 0 with
  | () -> (
      match
        ( read_file (Printf.sprintf "/proc/%d/cmdline" pid),
          read_file "/proc/self/cmdline" )
      with
      | a, b -> a = b
      | exception Sys_error _ -> false)
  | exception Unix.Unix_error _ -> false

let run config =
  ensure_dir config.dir;
  match Manifest.open_ (manifest_path config.dir) (spec_of_config config) with
  | Error e -> Error e
  | Ok m ->
      (* Resume: leases held by a dead orchestrator's workers are
         requeued without escalating the ladder — the worker never got
         to fail — after killing any orphan still running (two writers
         on one journal would be benign but wasteful). *)
      List.iter
        (fun (sh : Manifest.shard) ->
          match sh.state with
          | Manifest.Leased { pid; _ } ->
              if stale_worker_alive pid then (
                (try Unix.kill pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
              Manifest.record m
                (Manifest.Requeue { lo = sh.lo; hi = sh.hi; failed = false })
          | _ -> ())
        (Manifest.shards m);
      (* Force the cat model in the parent: workers inherit the parsed
         model copy-on-write instead of each re-parsing it. *)
      if List.mem "cat" config.models then ignore (Lazy.force Cat.lk);
      let running : (int, int * int * float) Hashtbl.t = Hashtbl.create 16 in
      (* Live telemetry: periodic lkmetrics-1 snapshots journalled
         alongside the manifest.  A separate file the miner never reads
         — the chaos byte-equality gates compare mined reports, which
         stay time-free. *)
      let t0 = Unix.gettimeofday () in
      let metrics_w =
        Journal.open_writer (Filename.concat config.dir "metrics.jsonl")
      in
      let seeds_classified = ref 0 in
      let pending_since : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
      let note_pending lo hi =
        if not (Hashtbl.mem pending_since (lo, hi)) then
          Hashtbl.replace pending_since (lo, hi) (Unix.gettimeofday ())
      in
      List.iter
        (fun (sh : Manifest.shard) ->
          match sh.state with
          | Manifest.Pending -> note_pending sh.lo sh.hi
          | _ -> ())
        (Manifest.shards m);
      let metrics_line () =
        let now = Unix.gettimeofday () in
        let pending, leased, done_, quarantined =
          List.fold_left
            (fun (p, l, d, q) (s : Manifest.shard) ->
              match s.state with
              | Manifest.Pending -> (p + 1, l, d, q)
              | Manifest.Leased _ -> (p, l + 1, d, q)
              | Manifest.Done _ -> (p, l, d + 1, q)
              | Manifest.Quarantined _ -> (p, l, d, q + 1))
            (0, 0, 0, 0) (Manifest.shards m)
        in
        Printf.sprintf
          "{\"schema\": \"lkmetrics-1\", \"ts_us\": %.0f, \"uptime_s\": \
           %.3f, \"requests\": %d, \"queue_depth\": %d, \"workers_live\": \
           %d, \"workers_busy\": %d, \"shards\": {\"pending\": %d, \
           \"leased\": %d, \"done\": %d, \"quarantined\": %d}, \
           \"latency_us\": %s, \"queue_wait_us\": %s}"
          (now *. 1e6) (now -. t0) !seeds_classified pending
          (Hashtbl.length running) (Hashtbl.length running) pending leased
          done_ quarantined
          (Obs.hist_metrics_json (Obs.hist_snapshot h_shard_wall))
          (Obs.hist_metrics_json (Obs.hist_snapshot h_shard_pending))
      in
      let shard_of lo hi =
        List.find
          (fun (s : Manifest.shard) -> s.lo = lo && s.hi = hi)
          (Manifest.shards m)
      in
      let failure lo hi err =
        Manifest.record m (Manifest.Requeue { lo; hi; failed = true });
        note_pending lo hi;
        let sh = shard_of lo hi in
        if sh.attempts >= 2 then
          if hi - lo <= 1 then begin
            Manifest.record m
              (Manifest.Quarantine { lo; hi; attempts = sh.attempts; error = err });
            Hashtbl.remove pending_since (lo, hi);
            (try Sys.remove (shard_journal_path config.dir lo hi)
             with Sys_error _ -> ());
            config.log
              (Printf.sprintf "shard %s quarantined after %d attempts: %s"
                 (Manifest.shard_id lo hi) sh.attempts err)
          end
          else begin
            let mid = lo + ((hi - lo) / 2) in
            redistribute config.dir ~lo ~hi ~mid;
            Manifest.record m (Manifest.Split { lo; hi; mid });
            Hashtbl.remove pending_since (lo, hi);
            note_pending lo mid;
            note_pending mid hi;
            config.log
              (Printf.sprintf "shard %s split at %d after %d failures (%s)"
                 (Manifest.shard_id lo hi) mid sh.attempts err)
          end
        else
          config.log
            (Printf.sprintf "shard %s failed (%s), retrying reduced"
               (Manifest.shard_id lo hi) err)
      in
      let finalize lo hi =
        let jpath = shard_journal_path config.dir lo hi in
        let cells = read_shard_journal jpath in
        let complete = ref true in
        for s = lo to hi - 1 do
          if not (Hashtbl.mem cells s) then complete := false
        done;
        if not !complete then failure lo hi "incomplete shard journal"
        else begin
          let summary = summarise config ~lo ~hi cells in
          seeds_classified := !seeds_classified + (hi - lo);
          (* the Done event embeds the summary; the per-seed journal is
             now redundant and deleted — the disk-budget guard that
             keeps a 10^5-seed campaign's footprint at O(shards) *)
          Manifest.record m (Manifest.Completed { lo; hi; summary });
          (try Sys.remove jpath with Sys_error _ -> ());
          config.log
            (Printf.sprintf "shard %s done: %d tests, %d disagreement rows"
               (Manifest.shard_id lo hi) summary.Manifest.n_tests
               (List.length summary.Manifest.rows))
        end
      in
      let dispatch_some () =
        let free = config.jobs - Hashtbl.length running in
        if free > 0 then
          List.iteri
            (fun i (sh : Manifest.shard) ->
              if i < free then begin
                let attempt = sh.attempts + 1 in
                match Unix.fork () with
                | 0 -> run_worker config ~lo:sh.lo ~hi:sh.hi ~attempt
                | pid ->
                    let now = Unix.gettimeofday () in
                    (match Hashtbl.find_opt pending_since (sh.lo, sh.hi) with
                    | Some since ->
                        Obs.Histogram.observe_always h_shard_pending
                          ((now -. since) *. 1e6);
                        Hashtbl.remove pending_since (sh.lo, sh.hi)
                    | None -> ());
                    Manifest.record m
                      (Manifest.Lease
                         { lo = sh.lo; hi = sh.hi; attempt; pid; since = now });
                    Hashtbl.replace running pid (sh.lo, sh.hi, now)
              end)
            (List.filter
               (fun (s : Manifest.shard) ->
                 match s.state with Manifest.Pending -> true | _ -> false)
               (Manifest.shards m))
      in
      let reap_once () =
        match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
        | 0, _ -> false
        | pid, status ->
            (match Hashtbl.find_opt running pid with
            | None -> ()
            | Some (lo, hi, since) -> (
                Hashtbl.remove running pid;
                Obs.Histogram.observe_always h_shard_wall
                  ((Unix.gettimeofday () -. since) *. 1e6);
                match status with
                | Unix.WEXITED 0 -> finalize lo hi
                | Unix.WEXITED n -> failure lo hi (Printf.sprintf "exit %d" n)
                | Unix.WSIGNALED s ->
                    failure lo hi ("signal " ^ Exec.Check.signal_name s)
                | Unix.WSTOPPED _ -> failure lo hi "stopped"));
            true
      in
      let expire_leases () =
        let now = Unix.gettimeofday () in
        let expired =
          Hashtbl.fold
            (fun pid (lo, hi, since) acc ->
              if now -. since > config.lease_timeout then (pid, lo, hi) :: acc
              else acc)
            running []
        in
        List.iter
          (fun (pid, lo, hi) ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
            Hashtbl.remove running pid;
            failure lo hi "lease expired")
          expired;
        expired <> []
      in
      let open_work () =
        Hashtbl.length running > 0
        || List.exists
             (fun (s : Manifest.shard) ->
               match s.state with
               | Manifest.Pending | Manifest.Leased _ -> true
               | _ -> false)
             (Manifest.shards m)
      in
      let next_metrics = ref (t0 +. config.metrics_interval) in
      let rec loop () =
        if open_work () then begin
          dispatch_some ();
          let progressed = reap_once () in
          let expired = expire_leases () in
          if Unix.gettimeofday () >= !next_metrics then begin
            Journal.write_line metrics_w (metrics_line ());
            next_metrics := Unix.gettimeofday () +. config.metrics_interval
          end;
          if not (progressed || expired) then Unix.sleepf 0.01;
          loop ()
        end
      in
      loop ();
      (* One final snapshot so even sub-interval campaigns leave a
         non-empty metrics journal. *)
      Journal.write_line metrics_w (metrics_line ());
      Journal.close metrics_w;
      let rep = mine ~explain:config.explain m in
      Manifest.close m;
      Ok rep
