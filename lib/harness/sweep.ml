(* Systematic sweeps in the spirit of Section 5: generate many tests with
   the diy-style generator, check them under several models, and verify
   the simulated hardware is sound with respect to the LK model. *)

type stats = {
  n_tests : int;
  lk_allow : int;
  lk_forbid : int;
  sc_forbid : int; (* forbidden under SC: sanity, SC is strongest *)
  c11_disagree : int; (* tests where C11 and LK verdicts differ *)
  unsound : (string * string) list; (* test, arch: sim outcome not in model *)
}

let classify ?(archs = [ Hwsim.Arch.power8; Hwsim.Arch.x86 ]) ?(runs = 300)
    ?(seed = 5) tests =
  let lk_allow = ref 0
  and lk_forbid = ref 0
  and sc_forbid = ref 0
  and c11_disagree = ref 0
  and unsound = ref [] in
  List.iter
    (fun (t : Litmus.Ast.t) ->
      let lk = (Exec.Check.run (module Lkmm) t).Exec.Check.verdict in
      (match lk with
      | Exec.Check.Allow -> incr lk_allow
      | Exec.Check.Forbid -> incr lk_forbid);
      (match (Exec.Check.run (module Models.Sc) t).Exec.Check.verdict with
      | Exec.Check.Forbid -> incr sc_forbid
      | Exec.Check.Allow -> ());
      (if Models.C11.applicable t then
         let c11 = (Exec.Check.run (module Models.C11) t).Exec.Check.verdict in
         if c11 <> lk then incr c11_disagree);
      List.iter
        (fun arch ->
          let s = Hwsim.run_test arch ~runs ~seed t in
          match Hwsim.unsound_outcomes (module Lkmm) t s with
          | [] -> ()
          | _ -> unsound := (t.name, arch.Hwsim.Arch.name) :: !unsound)
        archs)
    tests;
  {
    n_tests = List.length tests;
    lk_allow = !lk_allow;
    lk_forbid = !lk_forbid;
    sc_forbid = !sc_forbid;
    c11_disagree = !c11_disagree;
    unsound = !unsound;
  }

let pp ppf s =
  Fmt.pf ppf
    "tests: %d, LK allow/forbid: %d/%d, SC-forbidden: %d, C11 disagreements: \
     %d, unsound sim cells: %d"
    s.n_tests s.lk_allow s.lk_forbid s.sc_forbid s.c11_disagree
    (List.length s.unsound)

(* Weak-inclusion sanity across models: everything SC allows, TSO allows;
   everything TSO allows, LK allows (on non-RCU tests under the LK->x86
   mapping this is the expected strength ordering). *)
let strength_issues tests =
  List.concat_map
    (fun (t : Litmus.Ast.t) ->
      let v m = (Exec.Check.run m t).Exec.Check.verdict in
      let sc = v (module Models.Sc)
      and tso = v (module Models.Tso)
      and lk = v (module Lkmm) in
      (if sc = Exec.Check.Allow && tso = Exec.Check.Forbid then
         [ Printf.sprintf "%s: SC allows but TSO forbids" t.name ]
       else [])
      @
      (* RCU guarantees come from the grace-period algorithm, not from the
         hardware model, so the comparison only makes sense without RCU *)
      if
        (not (Litmus.Ast.has_rcu t))
        && tso = Exec.Check.Allow
        && lk = Exec.Check.Forbid
      then [ Printf.sprintf "%s: TSO allows but LK forbids" t.name ]
      else [])
    tests
