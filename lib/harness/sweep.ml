(* Systematic sweeps in the spirit of Section 5: generate many tests with
   the diy-style generator, check them under several models, and verify
   the simulated hardware is sound with respect to the LK model.

   Every per-test check runs under a fresh budget (when one is given), so
   a single explosive test degrades to an [Unknown] entry instead of
   stalling the whole sweep. *)

type stats = {
  n_tests : int;
  lk_allow : int;
  lk_forbid : int;
  lk_unknown : int; (* budget tripped or model failed: partial result *)
  sc_forbid : int; (* forbidden under SC: sanity, SC is strongest *)
  c11_disagree : int; (* tests where C11 and LK verdicts differ *)
  unsound : (string * string) list; (* test, arch: sim outcome not in model *)
  unknown : (string * string) list; (* test, reason: checks that gave up *)
}

(* A budgeted run: fresh budget per test so one explosion cannot eat the
   whole sweep's allowance.  Checks go through {!Exec.Oracle.run}, so
   [?backend] picks each model's engine (the LK oracle ships all
   three; the scalar comparison models resolve to their only one). *)
let budgeted_run ?limits ?backend oracle t =
  match limits with
  | None -> Exec.Oracle.run ?backend oracle t
  | Some l -> Exec.Oracle.run ?backend ~budget:(Exec.Budget.start l) oracle t

let classify ?limits ?backend ?(archs = [ Hwsim.Arch.power8; Hwsim.Arch.x86 ])
    ?(runs = 300) ?(seed = 5) tests =
  let lk_allow = ref 0
  and lk_forbid = ref 0
  and lk_unknown = ref 0
  and sc_forbid = ref 0
  and c11_disagree = ref 0
  and unsound = ref []
  and unknown = ref [] in
  List.iter
    (fun (t : Litmus.Ast.t) ->
      let lk =
        (budgeted_run ?limits ?backend Lkmm.oracle t).Exec.Check.verdict
      in
      (match lk with
      | Exec.Check.Allow -> incr lk_allow
      | Exec.Check.Forbid -> incr lk_forbid
      | Exec.Check.Unknown r ->
          incr lk_unknown;
          unknown :=
            (t.name, Exec.Check.unknown_reason_to_string r) :: !unknown);
      (match
         (budgeted_run ?limits (Exec.Oracle.of_model (module Models.Sc)) t)
           .Exec.Check.verdict
       with
      | Exec.Check.Forbid -> incr sc_forbid
      | Exec.Check.Allow | Exec.Check.Unknown _ -> ());
      (if Models.C11.applicable t then
         let c11 =
           (budgeted_run ?limits (Exec.Oracle.of_model (module Models.C11)) t)
             .Exec.Check.verdict
         in
         match (c11, lk) with
         | Exec.Check.Unknown _, _ | _, Exec.Check.Unknown _ -> ()
         | _ -> if c11 <> lk then incr c11_disagree);
      match lk with
      | Exec.Check.Unknown _ ->
          (* the model gave up: soundness of the simulators against it is
             not decidable for this test, skip rather than block *)
          ()
      | _ ->
          List.iter
            (fun arch ->
              let s = Hwsim.run_test arch ~runs ~seed t in
              match Hwsim.soundness ?limits ?backend Lkmm.oracle t s with
              | Hwsim.Sound -> ()
              | Hwsim.Unsound _ ->
                  unsound := (t.name, arch.Hwsim.Arch.name) :: !unsound
              | Hwsim.Soundness_unknown r ->
                  unknown :=
                    ( t.name,
                      Printf.sprintf "%s soundness: %s" arch.Hwsim.Arch.name
                        (Exec.Budget.reason_to_string r) )
                    :: !unknown)
            archs)
    tests;
  {
    n_tests = List.length tests;
    lk_allow = !lk_allow;
    lk_forbid = !lk_forbid;
    lk_unknown = !lk_unknown;
    sc_forbid = !sc_forbid;
    c11_disagree = !c11_disagree;
    unsound = !unsound;
    unknown = !unknown;
  }

let pp ppf s =
  Fmt.pf ppf
    "tests: %d, LK allow/forbid/unknown: %d/%d/%d, SC-forbidden: %d, C11 \
     disagreements: %d, unsound sim cells: %d, gave up: %d"
    s.n_tests s.lk_allow s.lk_forbid s.lk_unknown s.sc_forbid s.c11_disagree
    (List.length s.unsound) (List.length s.unknown)

(* Weak-inclusion sanity across models: everything SC allows, TSO allows;
   everything TSO allows, LK allows (on non-RCU tests under the LK->x86
   mapping this is the expected strength ordering).  Unknown verdicts are
   skipped — a partial result is not a strength violation. *)
let strength_issues ?limits ?backend tests =
  List.concat_map
    (fun (t : Litmus.Ast.t) ->
      let v o = (budgeted_run ?limits o t).Exec.Check.verdict in
      let sc = v (Exec.Oracle.of_model (module Models.Sc))
      and tso = v (Exec.Oracle.of_model (module Models.Tso))
      and lk =
        (budgeted_run ?limits ?backend Lkmm.oracle t).Exec.Check.verdict
      in
      (if sc = Exec.Check.Allow && tso = Exec.Check.Forbid then
         [ Printf.sprintf "%s: SC allows but TSO forbids" t.name ]
       else [])
      @
      (* RCU guarantees come from the grace-period algorithm, not from the
         hardware model, so the comparison only makes sense without RCU *)
      if
        (not (Litmus.Ast.has_rcu t))
        && tso = Exec.Check.Allow
        && lk = Exec.Check.Forbid
      then [ Printf.sprintf "%s: TSO allows but LK forbids" t.name ]
      else [])
    tests
