(** Regenerating the paper's figures: each figure is a litmus test
    whose forbidden execution the LK model must reject (or, for
    Figure 14, an allowed test that C11 rejects).  The printer shows
    the test, the verdict, and — for forbidden tests — the violated
    axiom with a witness cycle, mirroring the paper's cycle-by-cycle
    explanations. *)

type figure = {
  id : string;  (** e.g. "2", "4", ... *)
  entry : Battery.entry;
  caption : string;
}

val all : figure list

val pp_one : figure Fmt.t

(** Print every figure. *)
val pp : unit Fmt.t

(** For tests: one message per figure whose verdict does not match the
    paper; [[]] when all match. *)
val issues : unit -> string list
