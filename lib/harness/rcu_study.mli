(** The Figure 15 / Figure 16 study (Section 6, Theorem 2),
    empirically: run RCU litmus tests with the primitives replaced by
    the Figure 15 implementation on the simulated architectures, and
    check that the forbidden outcomes never appear.  Two deliberately
    broken variants ([No_wait], [No_reader_mb]) show the harness is
    discriminating. *)

type result = {
  program : string;
  arch : string;
  matched : int;  (** runs exhibiting the RCU-forbidden outcome *)
  total : int;
  aborted : int;
}

(** Run one battery entry under one RCU-implementation variant on one
    simulated architecture. *)
val run_variant :
  ?runs:int ->
  ?seed:int ->
  variant:Kir.Rcu_impl.variant ->
  Battery.entry ->
  Hwsim.Arch.t ->
  result

(** The RCU battery entries the study uses. *)
val tests : unit -> Battery.entry list

val archs : Hwsim.Arch.t list

(** Every (test, arch, variant) combination. *)
val run_all : ?runs:int -> ?seed:int -> unit -> result list

val pp : result Fmt.t

(** Theorem-2 style issues: one message per faithful-implementation run
    that showed the forbidden outcome; [[]] when the theorem holds.
    (Broken variants are expected to show it; that expectation is
    asserted by the test suite, which controls the run counts.) *)
val issues : result list -> string list
