(* Regenerating the paper's figures: each figure is a litmus test whose
   forbidden execution the LK model must reject (or, for Figure 14, an
   allowed test that C11 rejects).  The printer shows the test, the
   verdict, and — for forbidden tests — the violated axiom with a witness
   cycle, mirroring the paper's cycle-by-cycle explanations. *)

type figure = {
  id : string; (* e.g. "2", "4", ... *)
  entry : Battery.entry;
  caption : string;
}

let all =
  [
    {
      id = "2";
      entry = Battery.find "MP+wmb+rmb";
      caption = "Forbidden execution for the program in Figure 1 (hb cycle)";
    };
    {
      id = "4";
      entry = Battery.find "LB+ctrl+mb";
      caption = "LB+ctrl+mb: control dependency + smp_mb forbid load buffering";
    };
    {
      id = "5";
      entry = Battery.find "WRC+po-rel+rmb";
      caption = "WRC+po-rel+rmb: A-cumulative release forbids WRC";
    };
    {
      id = "6";
      entry = Battery.find "SB+mbs";
      caption = "SB+mbs: store buffering forbidden by strong fences (pb cycle)";
    };
    {
      id = "7";
      entry = Battery.find "PeterZ";
      caption = "PeterZ: perf vs CPU-hotplug race, forbidden by two strong fences";
    };
    {
      id = "9";
      entry = Battery.find "MP+wmb+addr-acq";
      caption = "MP+wmb+addr-acq: the rrdep* prefix of ppo";
    };
    {
      id = "10";
      entry = Battery.find "RCU-MP";
      caption = "RCU-MP: the RCU axiom (RSCS cannot span a GP)";
    };
    {
      id = "11";
      entry = Battery.find "RCU-deferred-free";
      caption = "RCU-deferred-free: reads swapped, still forbidden";
    };
    {
      id = "13";
      entry = Battery.find "RWC+mbs";
      caption = "RWC+mbs: LK forbids (pb cycle), original C11 allows";
    };
    {
      id = "14";
      entry = Battery.find "WRC+wmb+acq";
      caption = "WRC+wmb+acq: LK allows (no smp_wmb equivalent in C11)";
    };
  ]

let pp_one ppf (f : figure) =
  let test = Battery.test_of f.entry in
  Fmt.pf ppf "@[<v>--- Figure %s: %s ---@,%s@,LK: %a@,"
    f.id f.entry.name f.caption Lkmm.Explain.pp_test_verdict test;
  (match f.entry.c11 with
  | Some expected when Models.C11.applicable test ->
      let got = (Exec.Check.run (module Models.C11) test).Exec.Check.verdict in
      Fmt.pf ppf "C11: %a (paper: %a)@," Exec.Check.pp_verdict got
        Exec.Check.pp_verdict expected
  | _ -> ());
  Fmt.pf ppf "@]"

let pp ppf () = List.iter (pp_one ppf) all

(* For tests: each figure's verdicts match the paper. *)
let issues () =
  List.filter_map
    (fun f ->
      let test = Battery.test_of f.entry in
      let lk = (Exec.Check.run (module Lkmm) test).Exec.Check.verdict in
      if lk <> f.entry.lk then
        Some (Printf.sprintf "figure %s: LK verdict differs" f.id)
      else
        match f.entry.c11 with
        | Some expected when Models.C11.applicable test ->
            let got =
              (Exec.Check.run (module Models.C11) test).Exec.Check.verdict
            in
            if got <> expected then
              Some (Printf.sprintf "figure %s: C11 verdict differs" f.id)
            else None
        | _ -> None)
    all
