(** Regenerating Table 5: for each named test, the LK model verdict,
    the observed/total counts on each simulated architecture, and the
    C11 verdict under the mapping of [68]. *)

type row = {
  name : string;
  lk : Exec.Check.verdict;
  lk_expected : Exec.Check.verdict;  (** the paper's Model column *)
  hw : (string * int * int) list;  (** arch, observed, total *)
  c11 : Exec.Check.verdict option;
  c11_expected : Exec.Check.verdict option;
  hw_expected : string list;  (** archs the paper observed the outcome on *)
}

val row_of_entry : ?runs:int -> ?seed:int -> Battery.entry -> row

(** One row per Table 5 battery entry. *)
val rows : ?runs:int -> ?seed:int -> unit -> row list

val pp : row list Fmt.t

(** Shape checks against the paper's Table 5, usable by tests: verdict
    agreement, no model-forbidden outcome observed on any simulated
    architecture, and (with [check_observed], the default) every
    paper-observed outcome seen by the simulator too. *)

type shape_issue = string

val shape_issues : ?check_observed:bool -> row list -> shape_issue list
