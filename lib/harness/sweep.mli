(** Systematic sweeps in the spirit of the paper's Section 5: classify
    many (usually generated) litmus tests under several models and check
    the simulated hardware stays within the LK model.

    With [?limits], every per-test check runs under a fresh
    {!Exec.Budget}: explosive or broken tests degrade to [Unknown]
    entries instead of stalling the sweep. *)

type stats = {
  n_tests : int;
  lk_allow : int;
  lk_forbid : int;
  lk_unknown : int;  (** budget tripped or model failed: partial result *)
  sc_forbid : int;  (** sanity: SC is the strongest model *)
  c11_disagree : int;  (** tests where C11 and LK verdicts differ *)
  unsound : (string * string) list;
      (** (test, architecture) cells where the simulator produced an
          outcome the LK model forbids — must be empty *)
  unknown : (string * string) list;
      (** (test, reason) for every check that gave up under its budget *)
}

(** [classify ?limits ?backend ?archs ?runs ?seed tests] runs every
    test under LK, SC and C11 and against the given simulated
    architectures.  [backend] picks the LK oracle's engine
    ({!Exec.Oracle.run}; default [Batch]). *)
val classify :
  ?limits:Exec.Budget.limits ->
  ?backend:Exec.Check.backend ->
  ?archs:Hwsim.Arch.t list ->
  ?runs:int ->
  ?seed:int ->
  Litmus.Ast.t list ->
  stats

val pp : stats Fmt.t

(** Model-strength violations: a test SC allows but TSO forbids, or (on
    non-RCU tests) TSO allows but LK forbids.  Empty on a correct
    implementation; [Unknown] verdicts are skipped. *)
val strength_issues :
  ?limits:Exec.Budget.limits ->
  ?backend:Exec.Check.backend ->
  Litmus.Ast.t list ->
  string list
