(* Automatic failure shrinking (robustness layer).

   A failing, crashing or disagreeing litmus test out of a thousand-test
   sweep is rarely minimal: most of its threads, instructions and
   condition clauses are noise.  [minimise] is a greedy delta-debugging
   loop in the ddmin spirit: propose structurally smaller variants,
   re-run the oracle on each, commit to the first variant that still
   trips and restart, until no proposed reduction trips (a fixed point
   under the reduction set).  The oracle re-runs the suspect test, so it
   should be an *isolated* check ({!isolated_check} runs one item
   through {!Pool} in its own process) whenever the failure is a crash.

   The reduction set, tried in order of expected payoff:
   - drop a whole thread (condition atoms of dropped threads become
     [Ctrue], later thread indices shift down);
   - drop one top-level instruction of one thread;
   - replace an [If] with either of its branches;
   - shrink the final condition one connective at a time
     ([And]/[Or] to either side, [Not c] to [c], an atom to [Ctrue]);
   - drop one initial-value binding.

   Every proposal is deterministic, so a given test and oracle always
   shrink to the same reproducer. *)

module Ast = Litmus.Ast

(* Structural size: what the greedy loop minimises.  Threads count so
   that dropping an empty thread still helps; instructions count
   recursively so [If] bodies weigh their contents. *)
let rec instr_size (i : Ast.instr) =
  match i with
  | Ast.If (_, a, b) ->
      1 + List.fold_left (fun n i -> n + instr_size i) 0 (a @ b)
  | _ -> 1

let rec cond_size (c : Ast.cond) =
  match c with
  | Ast.Ctrue -> 0
  | Ast.Atom _ -> 1
  | Ast.Not c -> 1 + cond_size c
  | Ast.And (a, b) | Ast.Or (a, b) -> 1 + cond_size a + cond_size b

let size (t : Ast.t) =
  Array.fold_left
    (fun n is -> n + 1 + List.fold_left (fun n i -> n + instr_size i) 0 is)
    0 t.Ast.threads
  + cond_size t.Ast.cond
  + List.length t.Ast.init

(* ------------------------------------------------------------------ *)
(* Reduction proposals                                                 *)
(* ------------------------------------------------------------------ *)

let rec map_cond f (c : Ast.cond) =
  match c with
  | Ast.Atom a -> f a
  | Ast.Not c -> Ast.Not (map_cond f c)
  | Ast.And (a, b) -> Ast.And (map_cond f a, map_cond f b)
  | Ast.Or (a, b) -> Ast.Or (map_cond f a, map_cond f b)
  | Ast.Ctrue -> Ast.Ctrue

(* Dropping thread [i]: atoms observing it become [Ctrue] (the oracle
   re-checks, so weakening the condition is safe), observers of later
   threads shift down. *)
let drop_thread (t : Ast.t) i =
  let threads =
    Array.of_list
      (List.filteri (fun j _ -> j <> i) (Array.to_list t.Ast.threads))
  in
  let cond =
    map_cond
      (function
        | Ast.Reg_eq (tid, _, _) when tid = i -> Ast.Ctrue
        | Ast.Reg_eq (tid, r, v) when tid > i ->
            Ast.Atom (Ast.Reg_eq (tid - 1, r, v))
        | a -> Ast.Atom a)
      t.Ast.cond
  in
  { t with Ast.threads; cond }

let replace_thread (t : Ast.t) i is =
  let threads = Array.copy t.Ast.threads in
  threads.(i) <- is;
  { t with Ast.threads }

(* All one-step reductions of one thread's instruction list: drop a
   top-level instruction, or inline an [If] as either branch. *)
let instr_reductions (is : Ast.instr list) =
  let n = List.length is in
  let drops =
    List.init n (fun k -> List.filteri (fun j _ -> j <> k) is)
  in
  let inlines =
    List.concat
      (List.mapi
         (fun k i ->
           match i with
           | Ast.If (_, a, b) ->
               let splice branch =
                 List.concat
                   (List.mapi
                      (fun j i' -> if j = k then branch else [ i' ])
                      is)
               in
               [ splice a; splice b ]
           | _ -> [])
         is)
  in
  drops @ inlines

(* All one-step reductions of the final condition. *)
let rec cond_reductions (c : Ast.cond) : Ast.cond list =
  match c with
  | Ast.Ctrue -> []
  | Ast.Atom _ -> [ Ast.Ctrue ]
  | Ast.Not c' ->
      c' :: List.map (fun r -> Ast.Not r) (cond_reductions c')
  | Ast.And (a, b) ->
      [ a; b ]
      @ List.map (fun r -> Ast.And (r, b)) (cond_reductions a)
      @ List.map (fun r -> Ast.And (a, r)) (cond_reductions b)
  | Ast.Or (a, b) ->
      [ a; b ]
      @ List.map (fun r -> Ast.Or (r, b)) (cond_reductions a)
      @ List.map (fun r -> Ast.Or (a, r)) (cond_reductions b)

(* Every candidate one-step reduction of [t], largest strides first.
   A candidate is only proposed if it is strictly smaller, so the
   greedy loop terminates. *)
let candidates (t : Ast.t) : Ast.t list =
  let n_threads = Array.length t.Ast.threads in
  let threads =
    if n_threads <= 1 then []
    else List.init n_threads (fun i -> drop_thread t i)
  in
  let instrs =
    List.concat
      (List.init n_threads (fun i ->
           List.map
             (replace_thread t i)
             (instr_reductions t.Ast.threads.(i))))
  in
  let conds =
    List.map (fun c -> { t with Ast.cond = c }) (cond_reductions t.Ast.cond)
  in
  let inits =
    List.init
      (List.length t.Ast.init)
      (fun k ->
        { t with Ast.init = List.filteri (fun j _ -> j <> k) t.Ast.init })
  in
  List.filter
    (fun t' -> size t' < size t)
    (threads @ instrs @ conds @ inits)

(* ------------------------------------------------------------------ *)
(* The greedy loop                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  reduced : Ast.t;
  steps : int; (* accepted reductions *)
  oracle_runs : int; (* total oracle invocations *)
  initial_size : int;
  final_size : int;
}

(* [minimise ~oracle t] — [oracle t'] must answer "does [t'] still trip
   the failure under investigation?".  [t] itself is assumed to trip
   (callers check first; shrinking a healthy test returns it
   unchanged because no reduction will trip).  [max_steps] bounds
   accepted reductions as a runaway backstop. *)
let minimise ?(max_steps = 10_000) ~oracle (t : Ast.t) =
  let oracle_runs = ref 0 in
  let check t' =
    incr oracle_runs;
    oracle t'
  in
  let rec go t steps =
    if steps >= max_steps then (t, steps)
    else
      match List.find_opt check (candidates t) with
      | Some t' -> go t' (steps + 1)
      | None -> (t, steps)
  in
  let reduced, steps = go t 0 in
  {
    reduced;
    steps;
    oracle_runs = !oracle_runs;
    initial_size = size t;
    final_size = size reduced;
  }

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

(* A coarse fingerprint of an entry's classified outcome: shrinking
   preserves the fingerprint, so a segfault cannot "shrink" into a
   parse error and a Forbid-instead-of-Allow cannot drift into a
   different mismatch. *)
let fingerprint (e : Runner.entry) =
  match e.Runner.status with
  | Runner.Pass v -> "pass:" ^ Exec.Check.verdict_to_string v
  | Runner.Fail { expected; got } ->
      Printf.sprintf "fail:%s->%s"
        (Exec.Check.verdict_to_string expected)
        (Exec.Check.verdict_to_string got)
  | Runner.Gave_up r -> (
      "gave_up:"
      ^
      match r with
      | Exec.Budget.Timed_out _ -> "timeout"
      | Exec.Budget.Too_many_events _ -> "events"
      | Exec.Budget.Too_many_candidates _ -> "candidates"
      | Exec.Budget.Heap_exceeded _ -> "heap")
  | Runner.Err { cls = Runner.Crash s; _ } ->
      "crash:" ^ Exec.Check.signal_name s
  | Runner.Err { cls; _ } -> "error:" ^ Runner.class_to_string cls

(* One isolated check: a single-item pool run (own process, watchdog,
   heap cap), returning that item's entry.  This is the [check] to
   build oracles from when the failure can kill its process. *)
let isolated_check ?(config = Pool.default) ?worker ?(oracle = Lkmm.oracle)
    ?backend ?(expected : Exec.Check.verdict option) (t : Ast.t) =
  let config = { config with Pool.jobs = 1; retries = 0 } in
  let item = { Runner.id = t.Ast.name; source = `Ast t; expected } in
  let report = Pool.run ~config ?worker ?backend ~oracle [ item ] in
  List.hd report.Runner.entries

(* [entry_oracle ~check base] — the canonical oracle: [t'] trips iff
   its entry carries the same fingerprint as the original failure. *)
let entry_oracle ~(check : Ast.t -> Runner.entry) (base : Runner.entry) =
  let want = fingerprint base in
  fun t' -> String.equal (fingerprint (check t')) want

(* End-to-end: given a failing entry and its test, produce the minimal
   reproducer still tripping the same fingerprint. *)
let shrink_entry ?max_steps ~(check : Ast.t -> Runner.entry)
    (base : Runner.entry) (t : Ast.t) =
  minimise ?max_steps ~oracle:(entry_oracle ~check base) t

(* Write a reproducer next to a report: [path] is the destination
   [.litmus] file; the write is atomic (temp file + rename) so a crash
   mid-write cannot leave a torn reproducer. *)
let write_reproducer path (t : Ast.t) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Litmus.to_string t));
  Sys.rename tmp path
