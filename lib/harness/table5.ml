(* Regenerating Table 5: for each named test, the LK model verdict, the
   observed/total counts on each simulated architecture, and the C11
   verdict under the mapping of [68]. *)

type row = {
  name : string;
  lk : Exec.Check.verdict;
  lk_expected : Exec.Check.verdict;
  hw : (string * int * int) list; (* arch, observed, total *)
  c11 : Exec.Check.verdict option;
  c11_expected : Exec.Check.verdict option;
  hw_expected : string list; (* archs the paper observed the outcome on *)
}

let row_of_entry ?(runs = 5_000) ?(seed = 7) (e : Battery.entry) =
  let test = Battery.test_of e in
  let lk = (Exec.Check.run (module Lkmm) test).Exec.Check.verdict in
  let c11 =
    if Models.C11.applicable test then
      Some (Exec.Check.run (module Models.C11) test).Exec.Check.verdict
    else None
  in
  let hw =
    List.map
      (fun arch ->
        let s = Hwsim.run_test arch ~runs ~seed test in
        (s.Hwsim.arch, s.Hwsim.matched, s.Hwsim.total))
      Hwsim.Arch.table5
  in
  {
    name = e.name;
    lk;
    lk_expected = e.lk;
    hw;
    c11;
    c11_expected = e.c11;
    hw_expected = e.hw_observable;
  }

let rows ?runs ?seed () =
  List.map (row_of_entry ?runs ?seed)
    (List.filter (fun e -> e.Battery.in_table5) Battery.all)

let verdict_str = Exec.Check.verdict_to_string

let cell (observed, total) =
  let h n =
    if n >= 1_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
    else if n >= 1_000 then Printf.sprintf "%dk" (n / 1_000)
    else string_of_int n
  in
  Printf.sprintf "%s/%s" (h observed) (h total)

let pp ppf rows =
  Fmt.pf ppf "%-22s %-7s %10s %10s %10s %10s   %-6s@\n" "Test" "Model"
    "Power8" "ARMv8" "ARMv7" "X86" "C11";
  List.iter
    (fun r ->
      let hw_cell name =
        match List.find_opt (fun (a, _, _) -> a = name) r.hw with
        | Some (_, m, t) -> cell (m, t)
        | None -> "-"
      in
      Fmt.pf ppf "%-22s %-7s %10s %10s %10s %10s   %-6s%s@\n" r.name
        (verdict_str r.lk) (hw_cell "Power8") (hw_cell "ARMv8")
        (hw_cell "ARMv7") (hw_cell "X86")
        (match r.c11 with Some v -> verdict_str v | None -> "-")
        (if r.lk = r.lk_expected && r.c11 = r.c11_expected then ""
         else "  ** differs from paper **"))
    rows

(* Shape checks against the paper's Table 5, usable by tests:
   1. every verdict (LK and C11) matches the paper;
   2. model-forbidden outcomes are never observed on any simulated arch;
   3. outcomes the paper saw on an architecture are seen there too
      (given enough runs);
   4. the simulators are sound w.r.t. the LK model. *)
type shape_issue = string

let shape_issues ?(check_observed = true) (rows : row list) : shape_issue list
    =
  List.concat_map
    (fun r ->
      let verdicts =
        (if r.lk <> r.lk_expected then
           [ Printf.sprintf "%s: LK verdict differs from paper" r.name ]
         else [])
        @
        if r.c11 <> r.c11_expected then
          [ Printf.sprintf "%s: C11 verdict differs from paper" r.name ]
        else []
      in
      let forbidden_observed =
        if r.lk = Exec.Check.Forbid then
          List.filter_map
            (fun (a, m, _) ->
              if m > 0 then
                Some
                  (Printf.sprintf "%s: forbidden outcome observed on %s"
                     r.name a)
              else None)
            r.hw
        else []
      in
      let missing_observation =
        if check_observed then
          List.filter_map
            (fun a ->
              match List.find_opt (fun (a', _, _) -> a = a') r.hw with
              | Some (_, m, _) when m = 0 ->
                  Some
                    (Printf.sprintf
                       "%s: paper observed the outcome on %s, simulator did \
                        not"
                       r.name a)
              | _ -> None)
            r.hw_expected
        else []
      in
      verdicts @ forbidden_observed @ missing_observation)
    rows
