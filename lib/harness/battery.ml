(* The built-in litmus-test battery: every test named in Table 5 and every
   figure of the paper, plus classic coherence/atomicity tests used by the
   test suite.  Tests are kept in concrete syntax so the battery also
   exercises the parser. *)

type entry = {
  name : string;
  source : string;
  lk : Exec.Check.verdict; (* paper's "Model" column / figure caption *)
  c11 : Exec.Check.verdict option; (* paper's C11 column; None = "—" *)
  in_table5 : bool;
  figure : string option;
  hw_observable : string list;
      (* architectures of Table 5 where the weak outcome was observed on
         hardware: subset of ["Power8"; "ARMv8"; "ARMv7"; "X86"] *)
}

let allow = Exec.Check.Allow
let forbid = Exec.Check.Forbid

let mk ?(c11 = None) ?(t5 = false) ?fig ?(hw = []) name lk source =
  {
    name;
    source;
    lk;
    c11;
    in_table5 = t5;
    figure = fig;
    hw_observable = hw;
  }

let lb =
  mk "LB" allow ~c11:(Some allow) ~t5:true
    {|C LB
{ x=0; y=0; }
P0(int *x, int *y) {
  int r1 = READ_ONCE(x);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r2 = READ_ONCE(y);
  WRITE_ONCE(x, 1);
}
exists (0:r1=1 /\ 1:r2=1)|}

let lb_ctrl_mb =
  mk "LB+ctrl+mb" forbid ~c11:(Some allow) ~t5:true ~fig:"4"
    {|C LB+ctrl+mb
{ x=0; y=0; }
P0(int *x, int *y) {
  int r1 = READ_ONCE(x);
  if (r1 == 1) {
    WRITE_ONCE(y, 1);
  }
}
P1(int *x, int *y) {
  int r2 = READ_ONCE(y);
  smp_mb();
  WRITE_ONCE(x, 1);
}
exists (0:r1=1 /\ 1:r2=1)|}

let wrc =
  mk "WRC" allow ~c11:(Some allow) ~t5:true ~hw:[ "Power8"; "ARMv8" ]
    {|C WRC
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  WRITE_ONCE(y, 1);
}
P2(int *x, int *y) {
  int r2 = READ_ONCE(y);
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 2:r2=1 /\ 2:r3=0)|}

let wrc_wmb_acq =
  mk "WRC+wmb+acq" allow ~c11:(Some forbid) ~t5:true ~fig:"14"
    {|C WRC+wmb+acq
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  smp_wmb();
  WRITE_ONCE(y, 1);
}
P2(int *x, int *y) {
  int r2 = smp_load_acquire(y);
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 2:r2=1 /\ 2:r3=0)|}

let wrc_porel_rmb =
  mk "WRC+po-rel+rmb" forbid ~c11:(Some forbid) ~t5:true ~fig:"5"
    {|C WRC+po-rel+rmb
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  smp_store_release(y, 1);
}
P2(int *x, int *y) {
  int r2 = READ_ONCE(y);
  smp_rmb();
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 2:r2=1 /\ 2:r3=0)|}

let sb =
  mk "SB" allow ~c11:(Some allow) ~t5:true
    ~hw:[ "Power8"; "ARMv8"; "ARMv7"; "X86" ]
    {|C SB
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

let sb_mbs =
  mk "SB+mbs" forbid ~c11:(Some forbid) ~t5:true ~fig:"6"
    {|C SB+mbs
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_mb();
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  smp_mb();
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

let mp =
  mk "MP" allow ~c11:(Some allow) ~t5:true ~hw:[ "Power8"; "ARMv8"; "ARMv7" ]
    {|C MP
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

let mp_wmb_rmb =
  mk "MP+wmb+rmb" forbid ~c11:(Some forbid) ~t5:true ~fig:"2"
    {|C MP+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_wmb();
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  smp_rmb();
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

let peterz_no_synchro =
  mk "PeterZ-No-Synchro" allow ~c11:(Some allow) ~t5:true
    ~hw:[ "Power8"; "ARMv8"; "ARMv7"; "X86" ]
    {|C PeterZ-No-Synchro
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  int r1 = READ_ONCE(y);
}
P1(int *y, int *z) {
  WRITE_ONCE(y, 1);
  smp_store_release(z, 1);
}
P2(int *x, int *z) {
  int r2 = READ_ONCE(z);
  int r3 = READ_ONCE(x);
}
exists (0:r1=0 /\ 2:r2=1 /\ 2:r3=0)|}

let peterz =
  mk "PeterZ" forbid ~c11:(Some allow) ~t5:true ~fig:"7"
    {|C PeterZ
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_mb();
  int r1 = READ_ONCE(y);
}
P1(int *y, int *z) {
  WRITE_ONCE(y, 1);
  smp_store_release(z, 1);
}
P2(int *x, int *z) {
  int r2 = READ_ONCE(z);
  smp_mb();
  int r3 = READ_ONCE(x);
}
exists (0:r1=0 /\ 2:r2=1 /\ 2:r3=0)|}

let rcu_deferred_free =
  mk "RCU-deferred-free" forbid ~t5:true ~fig:"11"
    {|C RCU-deferred-free
{ x=0; y=0; }
P0(int *x, int *y) {
  rcu_read_lock();
  int r1 = READ_ONCE(x);
  int r2 = READ_ONCE(y);
  rcu_read_unlock();
}
P1(int *x, int *y) {
  WRITE_ONCE(x, 1);
  synchronize_rcu();
  WRITE_ONCE(y, 1);
}
exists (0:r1=0 /\ 0:r2=1)|}

let rcu_mp =
  mk "RCU-MP" forbid ~t5:true ~fig:"10"
    {|C RCU-MP
{ x=0; y=0; }
P0(int *x, int *y) {
  rcu_read_lock();
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(x);
  rcu_read_unlock();
}
P1(int *x, int *y) {
  WRITE_ONCE(x, 1);
  synchronize_rcu();
  WRITE_ONCE(y, 1);
}
exists (0:r1=1 /\ 0:r2=0)|}

let rwc =
  mk "RWC" allow ~c11:(Some allow) ~t5:true
    ~hw:[ "Power8"; "ARMv8"; "ARMv7"; "X86" ]
    {|C RWC
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  int r2 = READ_ONCE(y);
}
P2(int *x, int *y) {
  WRITE_ONCE(y, 1);
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0 /\ 2:r3=0)|}

let rwc_mbs =
  mk "RWC+mbs" forbid ~c11:(Some allow) ~t5:true ~fig:"13"
    {|C RWC+mbs
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  smp_mb();
  int r2 = READ_ONCE(y);
}
P2(int *x, int *y) {
  WRITE_ONCE(y, 1);
  smp_mb();
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0 /\ 2:r3=0)|}

(* Figure 9: the rrdep* prefix of ppo — an address dependency followed by an
   acquire load orders the first read before everything after the acquire. *)
let mp_wmb_addr_acq =
  mk "MP+wmb+addr-acq" forbid ~fig:"9"
    {|C MP+wmb+addr-acq
{ x=0; y=&w; z=0; w=0; }
P0(int *x, int *y, int *z) {
  WRITE_ONCE(x, 1);
  smp_wmb();
  WRITE_ONCE(y, &z);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  int r2 = smp_load_acquire(*r1);
  int r3 = READ_ONCE(x);
}
exists (1:r1=&z /\ 1:r3=0)|}

(* Alpha's infamous behaviour: a plain read-read address dependency is not
   preserved (Section 3.2.2) ... *)
let mp_wmb_addr =
  mk "MP+wmb+addr" allow
    {|C MP+wmb+addr
{ x=&w; z=0; w=0; }
P0(int *x, int *z) {
  WRITE_ONCE(z, 1);
  smp_wmb();
  WRITE_ONCE(x, &z);
}
P1(int *x) {
  int r1 = READ_ONCE(x);
  int r2 = READ_ONCE(*r1);
}
exists (1:r1=&z /\ 1:r2=0)|}

(* ... unless an smp_read_barrier_depends intervenes, which is what
   rcu_dereference emits (Table 4). *)
let mp_wmb_rcu_deref =
  mk "MP+wmb+rcu-deref" forbid
    {|C MP+wmb+rcu-deref
{ x=&w; z=0; w=0; }
P0(int *x, int *z) {
  WRITE_ONCE(z, 1);
  smp_wmb();
  rcu_assign_pointer(x, &z);
}
P1(int *x) {
  int r1 = rcu_dereference(x);
  int r2 = READ_ONCE(*r1);
}
exists (1:r1=&z /\ 1:r2=0)|}

let mp_rel_acq =
  mk "MP+po-rel+acq" forbid
    {|C MP+po-rel+acq
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_store_release(y, 1);
}
P1(int *x, int *y) {
  int r1 = smp_load_acquire(y);
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

let lb_datas =
  mk "LB+datas" forbid
    {|C LB+datas
{ x=0; y=0; }
P0(int *x, int *y) {
  int r1 = READ_ONCE(x);
  WRITE_ONCE(y, r1);
}
P1(int *x, int *y) {
  int r2 = READ_ONCE(y);
  WRITE_ONCE(x, r2);
}
exists (0:r1=1 /\ 1:r2=1)|}

let two_plus_two_w =
  mk "2+2W" allow
    {|C 2+2W
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 2);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  WRITE_ONCE(x, 2);
}
exists (x=1 /\ y=1)|}

let corr =
  mk "CoRR" forbid
    {|C CoRR
{ x=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x) {
  int r1 = READ_ONCE(x);
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

let cowr =
  mk "CoWR" forbid
    {|C CoWR
{ x=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
  int r1 = READ_ONCE(x);
}
P1(int *x) {
  WRITE_ONCE(x, 2);
}
exists (0:r1=0)|}

let coww =
  mk "CoWW" forbid
    {|C CoWW
{ x=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(x, 2);
}
exists (x=1)|}

let atomicity =
  mk "Atomicity" forbid
    {|C Atomicity
{ x=0; }
P0(int *x) {
  int r1 = xchg(x, 2);
}
P1(int *x) {
  WRITE_ONCE(x, 1);
}
exists (0:r1=0 /\ x=2)|}

let xchg_is_strong =
  (* a full xchg carries smp_mb ordering on both sides: SB with xchg *)
  mk "SB+xchg-mb" forbid
    {|C SB+xchg-mb
{ x=0; y=0; a=0; b=0; }
P0(int *x, int *y, int *a) {
  WRITE_ONCE(x, 1);
  int r0 = xchg(a, 1);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y, int *b) {
  WRITE_ONCE(y, 1);
  int r9 = xchg(b, 1);
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

let rcu_gp_is_mb =
  (* synchronize_rcu can replace smp_mb (gp is a strong fence): SB with one
     mb and one synchronize_rcu is forbidden. *)
  mk "SB+mb+sync" forbid
    {|C SB+mb+sync
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_mb();
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  synchronize_rcu();
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

(* IRIW: two writers, two readers disagreeing on the order of the
   writes.  Allowed without fences (Power is not multi-copy atomic);
   smp_mb in both readers restores agreement. *)
let iriw =
  mk "IRIW" allow
    {|C IRIW
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  int r2 = READ_ONCE(y);
}
P2(int *y) {
  WRITE_ONCE(y, 1);
}
P3(int *x, int *y) {
  int r3 = READ_ONCE(y);
  int r4 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0 /\ 3:r3=1 /\ 3:r4=0)|}

let iriw_mbs =
  mk "IRIW+mbs" forbid
    {|C IRIW+mbs
{ x=0; y=0; }
P0(int *x) {
  WRITE_ONCE(x, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(x);
  smp_mb();
  int r2 = READ_ONCE(y);
}
P2(int *y) {
  WRITE_ONCE(y, 1);
}
P3(int *x, int *y) {
  int r3 = READ_ONCE(y);
  smp_mb();
  int r4 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0 /\ 3:r3=1 /\ 3:r4=0)|}

(* ISA2: a three-thread transitive message pass. *)
let isa2 =
  mk "ISA2" allow
    {|C ISA2
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}
P1(int *y, int *z) {
  int r1 = READ_ONCE(y);
  WRITE_ONCE(z, 1);
}
P2(int *x, int *z) {
  int r2 = READ_ONCE(z);
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 2:r2=1 /\ 2:r3=0)|}

(* release/acquire chains compose transitively: forbidden. *)
let isa2_rel_acq =
  mk "ISA2+po-rel+acq-data+acq" forbid
    {|C ISA2+po-rel+acq-data+acq
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_store_release(y, 1);
}
P1(int *y, int *z) {
  int r1 = smp_load_acquire(y);
  smp_store_release(z, r1);
}
P2(int *x, int *z) {
  int r2 = smp_load_acquire(z);
  int r3 = READ_ONCE(x);
}
exists (1:r1=1 /\ 2:r2=1 /\ 2:r3=0)|}

(* R: a write race observed through coherence. *)
let r_test =
  mk "R" allow
    {|C R
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 2);
  int r1 = READ_ONCE(x);
}
exists (y=2 /\ 1:r1=0)|}

let r_mbs =
  mk "R+mbs" forbid
    {|C R+mbs
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_mb();
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 2);
  smp_mb();
  int r1 = READ_ONCE(x);
}
exists (y=2 /\ 1:r1=0)|}

(* S: store-to-load with a coherence tail. *)
let s_test =
  mk "S" allow
    {|C S
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 2);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  WRITE_ONCE(x, 1);
}
exists (x=2 /\ 1:r1=1)|}

let s_wmb_data =
  mk "S+wmb+data" forbid
    {|C S+wmb+data
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 2);
  smp_wmb();
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  WRITE_ONCE(x, r1);
}
exists (x=2 /\ 1:r1=1)|}

(* Z6-0: the classic three-thread 2+2W / MP hybrid. *)
let z6 =
  mk "Z6-0" allow
    {|C Z6-0
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}
P1(int *y, int *z) {
  WRITE_ONCE(y, 2);
  WRITE_ONCE(z, 1);
}
P2(int *x, int *z) {
  int r1 = READ_ONCE(z);
  int r2 = READ_ONCE(x);
}
exists (y=2 /\ 2:r1=1 /\ 2:r2=0)|}

let z6_mbs =
  mk "Z6-0+mbs" forbid
    {|C Z6-0+mbs
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_mb();
  WRITE_ONCE(y, 1);
}
P1(int *y, int *z) {
  WRITE_ONCE(y, 2);
  smp_mb();
  WRITE_ONCE(z, 1);
}
P2(int *x, int *z) {
  int r1 = READ_ONCE(z);
  smp_mb();
  int r2 = READ_ONCE(x);
}
exists (y=2 /\ 2:r1=1 /\ 2:r2=0)|}

(* Value-returning atomics carry full ordering (atomic_ops.rst)... *)
let sb_atomic_add_return =
  mk "SB+atomic-add-return" forbid
    {|C SB+atomic-add-return
{ x=0; y=0; c=0; d=0; }
P0(int *x, int *y, int *c) {
  WRITE_ONCE(x, 1);
  int r0 = atomic_add_return(1, c);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y, int *d) {
  WRITE_ONCE(y, 1);
  int r9 = atomic_add_return(1, d);
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

(* ... while void atomics provide no ordering at all. *)
let sb_atomic_add =
  mk "SB+atomic-add" allow
    {|C SB+atomic-add
{ x=0; y=0; c=0; }
P0(int *x, int *y, int *c) {
  WRITE_ONCE(x, 1);
  atomic_add(1, c);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y, int *c) {
  WRITE_ONCE(y, 1);
  atomic_inc(c);
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

(* Lost updates are impossible: two concurrent increments always sum. *)
let atomic_counter =
  mk "Atomic-counter" forbid
    {|C Atomic-counter
{ c=0; }
P0(int *c) {
  atomic_inc(c);
}
P1(int *c) {
  atomic_inc(c);
}
exists (~(c=2))|}

(* A successful full cmpxchg carries smp_mb ordering on both sides... *)
let sb_cmpxchg_success =
  mk "SB+cmpxchg-success+mb" forbid
    {|C SB+cmpxchg-success+mb
{ x=0; y=0; a=0; }
P0(int *x, int *y, int *a) {
  WRITE_ONCE(x, 1);
  int r0 = cmpxchg(a, 0, 1);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  smp_mb();
  int r2 = READ_ONCE(x);
}
exists (0:r0=0 /\ 0:r1=0 /\ 1:r2=0)|}

(* ... but a failed cmpxchg provides no ordering at all, per the kernel's
   documented RMW semantics. *)
let sb_cmpxchg_fail =
  mk "SB+cmpxchg-fail+mb" allow
    {|C SB+cmpxchg-fail+mb
{ x=0; y=0; a=0; }
P0(int *x, int *y, int *a) {
  WRITE_ONCE(x, 1);
  int r0 = cmpxchg(a, 5, 1);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  smp_mb();
  int r2 = READ_ONCE(x);
}
exists (0:r0=0 /\ 0:r1=0 /\ 1:r2=0)|}

(* Atomicity makes cmpxchg a mutual-exclusion primitive: two competing
   compare-and-swaps cannot both win. *)
let cmpxchg_excl =
  mk "Cmpxchg-excl" forbid
    {|C Cmpxchg-excl
{ x=0; }
P0(int *x) {
  int r1 = cmpxchg(x, 0, 1);
}
P1(int *x) {
  int r2 = cmpxchg(x, 0, 2);
}
exists (0:r1=0 /\ 1:r2=0)|}

(* Section 7: locking emulated with xchg_acquire / store-release.
   Serialised critical sections forbid message passing outright. *)
let mp_locks =
  mk "MP+locks" forbid
    {|C MP+locks
{ x=0; y=0; s=0; }
P0(int *x, int *y, int *s) {
  spin_lock(s);
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
  spin_unlock(s);
}
P1(int *x, int *y, int *s) {
  spin_lock(s);
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(x);
  spin_unlock(s);
}
exists (1:r1=1 /\ 1:r2=0)|}

(* An unlock-lock pair on one thread orders the surrounding writes
   locally (po-rel ; rfi-rel-acq ; acq-po is in ppo), but under the
   paper's Figure 8 that chain is NOT cumulative: a third-party observer
   may still see the writes out of order.  (Later LKMM revisions added
   po-unlock-rf-lock-po to cumul-fence, flipping this to Forbid — exactly
   the kind of evolution Section 7 anticipates.) *)
let mp_unlock_lock =
  mk "MP+unlock-lock+rmb" allow
    {|C MP+unlock-lock+rmb
{ x=0; y=0; s=0; }
P0(int *x, int *y, int *s) {
  WRITE_ONCE(x, 1);
  spin_unlock(s);
  spin_lock(s);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  smp_rmb();
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

(* ... but NOT a full barrier: store buffering survives an unlock-lock
   pair — the incorrect assumption the paper's work helped fix ([64] in
   Table 2). *)
let sb_unlock_lock =
  mk "SB+unlock-lock+mb" allow
    {|C SB+unlock-lock+mb
{ x=0; y=0; s=0; }
P0(int *x, int *y, int *s) {
  WRITE_ONCE(x, 1);
  spin_unlock(s);
  spin_lock(s);
  int r1 = READ_ONCE(y);
}
P1(int *x, int *y) {
  WRITE_ONCE(y, 1);
  smp_mb();
  int r2 = READ_ONCE(x);
}
exists (0:r1=0 /\ 1:r2=0)|}

(* Three-thread RCU: one grace period, two critical sections — allowed,
   because two RSCSes outnumber the single GP (rule of thumb, Section 4.2). *)
let rcu_3_2rscs_1gp =
  mk "RCU+2rscs+1gp" allow
    {|C RCU+2rscs+1gp
{ x=0; y=0; z=0; }
P0(int *x, int *y) {
  rcu_read_lock();
  int r1 = READ_ONCE(y);
  WRITE_ONCE(x, 1);
  rcu_read_unlock();
}
P1(int *x, int *z) {
  int r2 = READ_ONCE(x);
  synchronize_rcu();
  WRITE_ONCE(z, 1);
}
P2(int *z, int *y) {
  rcu_read_lock();
  int r3 = READ_ONCE(z);
  WRITE_ONCE(y, 1);
  rcu_read_unlock();
}
exists (0:r1=1 /\ 1:r2=1 /\ 2:r3=1)|}

(* Three-thread RCU with two GPs against two RSCSes: forbidden again. *)
let rcu_4_2rscs_2gp =
  mk "RCU+2rscs+2gp" forbid
    {|C RCU+2rscs+2gp
{ x=0; y=0; z=0; w=0; }
P0(int *x, int *y) {
  rcu_read_lock();
  int r1 = READ_ONCE(y);
  WRITE_ONCE(x, 1);
  rcu_read_unlock();
}
P1(int *x, int *z) {
  int r2 = READ_ONCE(x);
  synchronize_rcu();
  WRITE_ONCE(z, 1);
}
P2(int *z, int *w) {
  rcu_read_lock();
  int r3 = READ_ONCE(z);
  WRITE_ONCE(w, 1);
  rcu_read_unlock();
}
P3(int *w, int *y) {
  int r4 = READ_ONCE(w);
  synchronize_rcu();
  WRITE_ONCE(y, 1);
}
exists (0:r1=1 /\ 1:r2=1 /\ 2:r3=1 /\ 3:r4=1)|}

(* Table 5, in paper order. *)
let table5 =
  [
    lb;
    lb_ctrl_mb;
    wrc;
    wrc_wmb_acq;
    wrc_porel_rmb;
    sb;
    sb_mbs;
    mp;
    mp_wmb_rmb;
    peterz_no_synchro;
    peterz;
    rcu_deferred_free;
    rcu_mp;
    rwc;
    rwc_mbs;
  ]

let extras =
  [
    mp_wmb_addr_acq;
    mp_wmb_addr;
    mp_wmb_rcu_deref;
    mp_rel_acq;
    lb_datas;
    two_plus_two_w;
    corr;
    cowr;
    coww;
    atomicity;
    xchg_is_strong;
    rcu_gp_is_mb;
    iriw;
    iriw_mbs;
    isa2;
    isa2_rel_acq;
    r_test;
    r_mbs;
    s_test;
    s_wmb_data;
    z6;
    z6_mbs;
    sb_atomic_add_return;
    sb_atomic_add;
    atomic_counter;
    sb_cmpxchg_success;
    sb_cmpxchg_fail;
    cmpxchg_excl;
    mp_locks;
    mp_unlock_lock;
    sb_unlock_lock;
    rcu_3_2rscs_1gp;
    rcu_4_2rscs_2gp;
  ]

let all = table5 @ extras
let test_of entry = Litmus.parse entry.source
let find name = List.find (fun e -> e.name = name) all
