(* The checking service's wire protocol (robustness layer).

   One JSON object per line in both directions over a Unix-domain
   stream socket; requests and responses are correlated by a
   client-chosen [id], so a client may pipeline requests and the daemon
   may answer out of order as workers finish.

   Request line:

     {"id": "r1", "op": "check", "test": "<litmus source>",
      "model": "lk", "timeout_ms": 5000, "expected": "Allow"}

   [op] is one of [check] (the payload above), [ping], [stats],
   [shutdown], and — only when the daemon runs with [--chaos-ops] —
   the fault-injection operators [chaos_kill] (the worker picking the
   request up dies as if it had crashed) and [chaos_wedge] (the worker
   busy-hangs without ticking its budget, exercising the supervisor's
   wedge detection).

   Response line:

     {"id": "r1", "class": "ok", "cache": "miss",
      "entry": {<schema-v3 report entry>}}

   [class] is the response taxonomy, the service-side analogue of the
   pool's exit codes: [ok]/[fail] wrap a completed verdict entry,
   [unknown] a budget-tripped one (deadline included), [error] a
   classified failure (parse errors, malformed requests, oversized
   lines, duplicate ids, crashed-and-not-retryable workers),
   [overloaded] an admission rejection (the queue was at its bound;
   nothing was attempted), and [quarantined] a poison request (it took
   down two workers, or matched the fingerprint of one that already
   did).  Classes that checked something embed the full schema-v3
   {!Report} entry, so a service client sees exactly what a batch
   [--json] consumer sees. *)

module Json = Journal.Json

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type check = {
  test : string; (* litmus concrete syntax *)
  model : string; (* model name, as in herd_lk -model *)
  timeout_ms : int option; (* per-request deadline; None = daemon default *)
  expected : Exec.Check.verdict option; (* golden verdict, if any *)
}

type op =
  | Check of check
  | Ping
  | Stats
  | Metrics
  | Shutdown
  | Chaos_kill
  | Chaos_wedge of float (* seconds to hang without ticking a budget *)

type request = { req_id : string; trace : string option; op : op }

let op_name = function
  | Check _ -> "check"
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"
  | Chaos_kill -> "chaos_kill"
  | Chaos_wedge _ -> "chaos_wedge"

(* [parse_request line] — [Error msg] on anything malformed; the caller
   answers with class [error].  The request id is recovered even from
   half-malformed lines when possible, so the error response correlates. *)
let parse_request line : (request, string * string option) result =
  match Json.of_string line with
  | exception Json.Malformed m -> Error ("malformed JSON: " ^ m, None)
  | j -> (
      let str k = Option.bind (Json.mem k j) Json.str in
      let num k = Option.bind (Json.mem k j) Json.num in
      let id = str "id" in
      match id with
      | None -> Error ("missing request id", None)
      | Some req_id -> (
          let fail msg = Error (msg, Some req_id) in
          let trace = str "trace" in
          let ok op = Ok { req_id; trace; op } in
          match str "op" with
          | None -> fail "missing op"
          | Some "ping" -> ok Ping
          | Some "stats" -> ok Stats
          | Some "metrics" -> ok Metrics
          | Some "shutdown" -> ok Shutdown
          | Some "chaos_kill" -> ok Chaos_kill
          | Some "chaos_wedge" ->
              let secs =
                match num "seconds" with Some s -> s | None -> 5.0
              in
              ok (Chaos_wedge secs)
          | Some "check" -> (
              match str "test" with
              | None -> fail "check without a test"
              | Some test ->
                  let model =
                    match str "model" with Some m -> m | None -> "lk"
                  in
                  let timeout_ms = Option.map int_of_float (num "timeout_ms") in
                  let expected =
                    match str "expected" with
                    | Some "Allow" -> Some Exec.Check.Allow
                    | Some "Forbid" -> Some Exec.Check.Forbid
                    | _ -> None
                  in
                  ok (Check { test; model; timeout_ms; expected }))
          | Some other -> fail ("unknown op: " ^ other)))

(* Client-side request emission. *)
let check_line ~id ?trace ?(model = "lk") ?timeout_ms ?expected test =
  Printf.sprintf "{\"id\": \"%s\", \"op\": \"check\", \"model\": \"%s\"%s%s%s, \
                  \"test\": \"%s\"}"
    (Report.json_escape id) (Report.json_escape model)
    (match trace with
    | Some t -> Printf.sprintf ", \"trace\": \"%s\"" (Report.json_escape t)
    | None -> "")
    (match timeout_ms with
    | Some ms -> Printf.sprintf ", \"timeout_ms\": %d" ms
    | None -> "")
    (match expected with
    | Some v ->
        Printf.sprintf ", \"expected\": \"%s\"" (Exec.Check.verdict_to_string v)
    | None -> "")
    (Report.json_escape test)

let simple_line ~id ?trace op =
  Printf.sprintf "{\"id\": \"%s\", \"op\": \"%s\"%s}" (Report.json_escape id)
    op
    (match trace with
    | Some t -> Printf.sprintf ", \"trace\": \"%s\"" (Report.json_escape t)
    | None -> "")

let chaos_wedge_line ~id ?trace seconds =
  Printf.sprintf "{\"id\": \"%s\", \"op\": \"chaos_wedge\", \"seconds\": %g%s}"
    (Report.json_escape id) seconds
    (match trace with
    | Some t -> Printf.sprintf ", \"trace\": \"%s\"" (Report.json_escape t)
    | None -> "")

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type cls = Ok_ | Fail | Unknown | Error | Overloaded | Quarantined

let cls_name = function
  | Ok_ -> "ok"
  | Fail -> "fail"
  | Unknown -> "unknown"
  | Error -> "error"
  | Overloaded -> "overloaded"
  | Quarantined -> "quarantined"

let cls_of_name = function
  | "ok" -> Some Ok_
  | "fail" -> Some Fail
  | "unknown" -> Some Unknown
  | "error" -> Some Error
  | "overloaded" -> Some Overloaded
  | "quarantined" -> Some Quarantined
  | _ -> None

(* The entry's class: the same mapping the exit-code policy uses, seen
   from one request's perspective. *)
let cls_of_entry (e : Report.entry) =
  match e.Report.status with
  | Report.Pass _ -> Ok_
  | Report.Fail _ -> Fail
  | Report.Gave_up _ -> Unknown
  | Report.Err _ -> Error

let response_line ~id ~cls ?trace ?cache ?entry ?msg ?(extra = []) () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"id\": \"%s\", \"class\": \"%s\""
       (Report.json_escape id) (cls_name cls));
  (match trace with
  | Some t ->
      Buffer.add_string b
        (Printf.sprintf ", \"trace\": \"%s\"" (Report.json_escape t))
  | None -> ());
  (match cache with
  | Some hit ->
      Buffer.add_string b
        (Printf.sprintf ", \"cache\": \"%s\"" (if hit then "hit" else "miss"))
  | None -> ());
  (match msg with
  | Some m ->
      Buffer.add_string b
        (Printf.sprintf ", \"msg\": \"%s\"" (Report.json_escape m))
  | None -> ());
  List.iter
    (fun (k, raw_json) ->
      Buffer.add_string b (Printf.sprintf ", \"%s\": %s" k raw_json))
    extra;
  (match entry with
  | Some e ->
      Buffer.add_string b ", \"entry\": ";
      Buffer.add_string b (Journal.line_of_entry e)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

(* What clients (chaos driver, bench, tests) need back out of a
   response line; [entry] is re-read through the journal reader, so a
   client sees the same {!Report.entry} a journal consumer would. *)
type response = {
  rsp_id : string;
  rsp_cls : cls;
  rsp_trace : string option; (* trace id, echoed on traced requests *)
  rsp_cache_hit : bool option; (* None when no cache field was sent *)
  rsp_verdict : string option; (* entry.verdict / got, when present *)
  rsp_status : string option; (* entry.status, when present *)
  rsp_msg : string option;
  rsp_json : Json.t; (* the whole line, for stats and extras *)
}

let parse_response line : (response, string) result =
  match Json.of_string line with
  | exception Json.Malformed m -> Result.Error ("malformed response: " ^ m)
  | j -> (
      let str k = Option.bind (Json.mem k j) Json.str in
      match (str "id", Option.bind (str "class") cls_of_name) with
      | Some rsp_id, Some rsp_cls ->
          let entry = Json.mem "entry" j in
          let estr k = Option.bind (Option.bind entry (Json.mem k)) Json.str in
          Ok
            {
              rsp_id;
              rsp_cls;
              rsp_trace = str "trace";
              rsp_cache_hit =
                Option.map (fun c -> c = "hit") (str "cache");
              rsp_verdict =
                (match estr "verdict" with
                | Some v -> Some v
                | None -> estr "got");
              rsp_status = estr "status";
              rsp_msg = str "msg";
              rsp_json = j;
            }
      | _ -> Result.Error ("response missing id/class: " ^ line))
