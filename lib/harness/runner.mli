(** Fault-isolated batch runner: each item runs under a fresh per-test
    {!Exec.Budget} with every exception caught and classified, so one
    malformed or explosive test cannot take a batch down.

    The result types and their JSON rendering live in {!Report}, the
    unified versioned schema shared with {!Pool} and {!Journal}; they
    are re-exported here by equation ([Runner.entry] {e is}
    [Report.entry]), so existing callers compile unchanged.

    Exit-code policy (deterministic): 0 = all pass, 1 = some FAIL
    (verdict mismatch), 2 = some ERROR (parse/lex/type/lint/internal),
    3 = some item gave its budget up and nothing failed or errored,
    4 = some item crashed its isolated worker ({!Pool});
    4 beats 2 beats 1 beats 3 in mixed batches. *)

(** {1 Error taxonomy (re-exported from {!Report})} *)

type error_class = Report.error_class =
  | Parse
  | Lex
  | Type
  | Lint
  | Budget
  | Internal
  | Crash of int
      (** worker died on this signal; produced only under process
          isolation ({!Pool}) *)

val class_to_string : error_class -> string

type error_info = Report.error_info = {
  cls : error_class;
  msg : string;
  line : int option;  (** source position, when the error carries one *)
}

(** Classify any exception of the toolchain (litmus/cat parser and lexer
    errors keep their line numbers; anything unrecognised is
    [Internal]). *)
val classify_exn : exn -> error_info

val pp_error : error_info Fmt.t

(** {1 Items} *)

type source =
  [ `Text of string  (** litmus concrete syntax *)
  | `File of string  (** path to a .litmus file *)
  | `Ast of Litmus.Ast.t ]

type item = {
  id : string;
  source : source;
  expected : Exec.Check.verdict option;  (** golden verdict, if any *)
}

type status = Report.status =
  | Pass of Exec.Check.verdict
  | Fail of { expected : Exec.Check.verdict; got : Exec.Check.verdict }
  | Gave_up of Exec.Budget.reason  (** budget exceeded: partial result *)
  | Err of error_info

type entry = Report.entry = {
  item_id : string;
  status : status;
  time : float;  (** wall-clock seconds for this item *)
  n_candidates : int;  (** candidates enumerated (partial on [Gave_up]) *)
  retried : bool;  (** true = second attempt after a worker crash *)
  result : Exec.Check.result option;
      (** the full check result when one was produced (Pass/Fail) *)
}

type report = Report.t = {
  entries : entry list;
  n_pass : int;
  n_fail : int;  (** [Err] entries other than crashes follow *)
  n_error : int;
  n_crash : int;  (** [Err] entries whose class is [Crash] *)
  n_gave_up : int;
  wall : float;
}

(** Whether an entry records a worker crash. *)
val is_crash : entry -> bool

(** {b Deprecated} (kept one release): the budget-indexed
    (model, batch) pairing that predates {!Exec.Oracle.t}.  Construct
    an oracle ([Exec.Oracle.make], [Lkmm.oracle], [Cat.to_oracle]) and
    pass it as [?oracle] instead; a legacy pair given to {!run_item} or
    {!run} is wrapped into an anonymous oracle internally. *)
type model_factory = Exec.Budget.t option -> (module Exec.Check.MODEL)

val static_model : (module Exec.Check.MODEL) -> model_factory
[@@ocaml.deprecated
  "construct an Exec.Oracle.t (Exec.Oracle.of_model, Lkmm.oracle, \
   Cat.to_oracle) and pass it as ?oracle"]

(** {b Deprecated} alongside {!model_factory}: a model's batched
    consistency oracle, budget-indexed the same way. *)
type batch_factory = Exec.Budget.t option -> Exec.Check.batch_fn

val static_batch : Exec.Check.batch_fn -> batch_factory
[@@ocaml.deprecated
  "construct an Exec.Oracle.t carrying the batch engine and pass it as \
   ?oracle"]

(** Battery entries as runner items, expecting the battery's LK verdict. *)
val of_battery : Battery.entry list -> item list

(** Read a whole file (shared by the CLIs). *)
val read_file : string -> string

(** [run_item ?oracle item] — parse, lint and check one item inside the
    fault barrier.  Never raises.  [limits] defaults to
    {!Exec.Budget.default}; pass {!Exec.Budget.unlimited} to disable
    budgeting (exceptions are still caught).  [lint] defaults to [true]:
    lint errors become [Err {cls = Lint; _}] entries.  When the
    observability collector is on, the item runs inside an "item" span
    with "parse" and "lint" children (checking opens its own spans).
    [explainer] (forwarded to the check) turns on verdict forensics:
    Forbid results carry validated explanations, at zero cost when
    absent.  [deadline] (checking-as-a-service) arms the budget against
    an absolute deadline via {!Exec.Budget.start_at}, so time spent
    queued before this call counts against the item.

    Engine selection: the item is checked through [oracle] (default:
    {!Lkmm.oracle}) via {!Exec.Oracle.run} under the requested
    [backend] (default [Batch]; [Enum] is the scalar reference path
    with delta re-checking off — what [--no-batch] selects; [Sat] runs
    the symbolic engine, falling back counted when the oracle ships
    none).  The legacy [?model]/[?batch] pair is deprecated: it is
    wrapped into an anonymous oracle, and an explicit [?oracle] wins
    over it. *)
val run_item :
  ?limits:Exec.Budget.limits ->
  ?deadline:float ->
  ?lint:bool ->
  ?explainer:(Exec.t -> Exec.Explain.t list) ->
  ?delta:bool ->
  ?backend:Exec.Check.backend ->
  ?batch:batch_factory ->
  ?model:model_factory ->
  ?oracle:Exec.Oracle.t ->
  item ->
  entry

(** [run ?oracle items] — the whole batch, each item through
    {!run_item}.  Same oracle/backend resolution; with nothing given,
    the native LK oracle runs on its batched engine. *)
val run :
  ?limits:Exec.Budget.limits ->
  ?lint:bool ->
  ?explainer:(Exec.t -> Exec.Explain.t list) ->
  ?delta:bool ->
  ?backend:Exec.Check.backend ->
  ?model:model_factory ->
  ?batch:batch_factory ->
  ?oracle:Exec.Oracle.t ->
  item list ->
  report

(** Aliases for the {!Report} functions, kept under their historical
    names. *)

val summarise : wall:float -> entry list -> report
val exit_code : report -> int
val pp_status : status Fmt.t
val pp_entry : entry Fmt.t
val pp : report Fmt.t
val schema_version : int
val json_escape : string -> string
val entry_to_json : entry -> string
val to_json : report -> string
