(** Campaign manifest: the crash-safe shard ledger of {!Campaign}.

    A campaign over 10^5+ generated tests is partitioned into shards —
    each a deterministic (generator config, seed range) pair whose
    tests are regenerated on demand inside workers, never stored.  The
    manifest journals every shard-state transition as one JSONL line
    (appended through {!Journal.write_line}), so a [kill -9] at any
    byte offset loses at most the line being written; {!load} replays
    the surviving prefix with the same torn-tail tolerance as every
    other journal in the tree. *)

(** The campaign's identity: generator config plus seed interval.  Two
    manifests with different specs describe different campaigns — shard
    ranges are only meaningful relative to the spec that named them,
    and {!open_} refuses to resume across a mismatch. *)
type spec = {
  size : int;  (** cycle length handed to the generator *)
  seed_lo : int;  (** inclusive *)
  seed_hi : int;  (** exclusive *)
  shard_size : int;  (** seeds per initial shard *)
}

(** One mined disagreement row: [seed] regenerates the test on demand,
    [verdicts] maps model name to verdict string (sorted by model),
    [kinds] the disagreement classes the row exhibits (sorted). *)
type row = {
  seed : int;
  test : string;
  verdicts : (string * string) list;
  kinds : string list;
}

(** The compacted residue of a finished shard — everything mining needs
    once the per-seed result journal is deleted (the disk-budget
    guard).  [rows] is capped by the orchestrator; [rows_dropped]
    surfaces the cap, never silently. *)
type summary = {
  n_seeds : int;
  n_tests : int;
  n_unknown : int;
  counts : (string * int) list;  (** ["lk:Allow"] -> n, sorted by key *)
  rows : row list;  (** disagreement rows, seed order *)
  rows_dropped : int;
  time_s : float;
}

type state =
  | Pending
  | Leased of { attempt : int; pid : int; since : float }
  | Done of summary
  | Quarantined of { attempts : int; error : string }

(** [attempts] counts {e failed} worker attempts — the degradation
    ladder's escalation level, not the number of leases: a lease
    abandoned by orchestrator death requeues without escalating, so a
    resumed campaign classifies exactly as an uninterrupted one. *)
type shard = { lo : int; hi : int; attempts : int; state : state }

type event =
  | Lease of { lo : int; hi : int; attempt : int; pid : int; since : float }
  | Requeue of { lo : int; hi : int; failed : bool }
      (** back to Pending; [failed] bumps [attempts] (worker failure),
          [not failed] leaves the ladder untouched (abandoned lease) *)
  | Split of { lo : int; hi : int; mid : int }
      (** replace \[lo,hi) by \[lo,mid) and \[mid,hi), both Pending *)
  | Completed of { lo : int; hi : int; summary : summary }
  | Quarantine of { lo : int; hi : int; attempts : int; error : string }

type t

val shard_id : int -> int -> string
(** ["s<lo>-<hi>"] — names the shard's result journal file. *)

val create : string -> spec -> t
(** Fresh manifest at [path]: writes the header line, all shards
    Pending. *)

val load : string -> (t, string) result
(** Replay a manifest read-only (no writer; {!record} raises).  Events
    naming unknown shard ranges and unparseable lines are dropped.
    [Error] when the file is missing or its header never hit the
    disk. *)

val open_ : string -> spec -> (t, string) result
(** Resume-or-create for writing: replays [path] if it exists and its
    spec matches, starts fresh if absent (or the header was torn),
    refuses a spec mismatch. *)

val record : t -> event -> unit
(** Apply [event] in memory and append its line to the journal. *)

val spec : t -> spec

val shards : t -> shard list
(** All shards, sorted by [lo]. *)

val close : t -> unit

(** JSON helpers reused by {!Campaign}'s mined report. *)

val row_to_json : row -> string
val summary_to_json : summary -> string
val summary_of_json : Journal.Json.t -> summary option
val row_of_json : Journal.Json.t -> row option
