(** Campaign-scale sweeps: fault-tolerant sharded orchestration over
    10^5+ generated tests, with differential mining.

    A campaign partitions a seed interval into shards — deterministic
    (generator config, seed range) pairs whose tests are regenerated on
    demand inside forked workers ({!Diygen.test_of_seed}), never
    materialised as files.  Shard state lives in a {!Manifest} journal;
    per-seed verdicts in per-shard journals that are compacted into the
    manifest (and deleted) as shards finish.  A [kill -9] of the
    orchestrator at any point is recoverable with {!run} on the same
    directory, and — because classification is a pure function of
    (config, seed) when the budgets carry no wall-clock timeout — the
    resumed campaign's mined report is byte-identical to an
    uninterrupted run's.

    Failure ladder: full budget, then one reduced-budget retry, then
    bisection down to the poison seed, whose singleton shard is
    quarantined after two strikes — reported, never dropped. *)

type config = {
  dir : string;  (** manifest, shard journals and report live here *)
  size : int;  (** cycle length *)
  seed_lo : int;  (** inclusive *)
  seed_hi : int;  (** exclusive *)
  shard_size : int;  (** seeds per initial shard *)
  jobs : int;  (** concurrent shard workers *)
  models : string list;  (** subset of ["lk"], ["cat"], ["c11"] *)
  archs : string list;  (** hwsim profiles, by {!Hwsim.Arch.find} name *)
  hw_runs : int;  (** operational runs per test per arch *)
  limits : Exec.Budget.limits;  (** attempt 1 *)
  reduced : Exec.Budget.limits;  (** attempt >= 2 *)
  lease_timeout : float;  (** seconds before a straggler is SIGKILLed *)
  max_rows : int;  (** disagreement rows kept per shard *)
  explain : bool;  (** attach forensics to mined Forbid-side patterns *)
  backend : Exec.Check.backend;
      (** engine for the axiomatic columns ({!Exec.Oracle.run});
          verdicts are engine-independent, so chaos equality holds
          across backends *)
  poison : int list;  (** chaos hook: worker exits 42 at these seeds *)
  wedge : int list;  (** chaos hook: worker hangs at these seeds *)
  flight : bool;
      (** arm the crash flight recorder in every forked worker
          ({!Obs.flight_start} on [dir/flight-<pid>.jsonl]): each seed
          opens a [campaign.seed] span and forces a checkpoint, so a
          poisoned, wedged or crashed worker leaves a post-mortem
          naming the victim seed ([obs_report --postmortem]) *)
  metrics_interval : float;
      (** seconds between [lkmetrics-1] snapshots appended to
          [dir/metrics.jsonl] (plus one final snapshot); the miner
          never reads the file, so report byte-equality is preserved *)
  log : string -> unit;
}

val default : config
(** Deterministic defaults: candidate/event caps, no wall-clock
    timeout. *)

val spec_of_config : config -> Manifest.spec
val manifest_path : string -> string
val shard_journal_path : string -> int -> int -> string

(** {1 Mining} *)

type exemplar = { seed : int; test : string; verdicts : (string * string) list }

type pattern = {
  kind : string;
      (** ["native-vs-cat"], ["hw-unsound:<arch>"] or ["lk-vs-c11"] *)
  severity : int;  (** 0 most severe *)
  key : string;  (** verdict signature, e.g. ["lk=Forbid c11=Allow"] *)
  count : int;
  exemplars : exemplar list;  (** capped at 3, seed order *)
  explanations : string list;  (** with [explain]: native forensics *)
}

type totals = {
  n_shards : int;
  n_quarantined : int;
  n_seeds : int;  (** seeds classified in completed shards *)
  n_tests : int;
  n_unknown : int;
  rows_dropped : int;
}

type report = {
  spec : Manifest.spec;
  totals : totals;
  counts : (string * int) list;  (** ["lk:Allow"] -> n, sorted *)
  quarantined : Manifest.shard list;  (** sorted by range *)
  patterns : pattern list;  (** most severe first, then count desc *)
}

val mine : ?explain:bool -> Manifest.t -> report
(** Fold a manifest's completed shards into the discrepancy report.
    Fully sorted and time-free: equal campaigns mine to byte-equal
    reports. *)

val report_to_json : report -> string
(** Validated by [ci/campaign.schema.json]. *)

val report_to_text : report -> string

(** {1 Orchestration} *)

val run : config -> (report, string) result
(** Run (or resume) the campaign in [config.dir] to completion and mine
    it.  [Error] only on a spec mismatch against an existing
    manifest. *)

(** {1 Exposed for tests} *)

(** One journalled per-seed result: [test] is [None] when the seed's
    walk realised nothing. *)
type cell = { test : string option; v : (string * string) list; time : float }

val kinds_of_verdicts : (string * string) list -> string list
val severity_of_kind : string -> int

val read_shard_journal : string -> (int, cell) Hashtbl.t
(** Last-wins per seed, torn lines dropped. *)
