(** Process-isolated parallel checking: one forked worker per item, up
    to [jobs] concurrently.  {!Runner.run_item}'s fault barrier is
    cooperative; the pool contains what it cannot — segfaults, runaway
    allocation, genuine hangs:

    - a hard watchdog [SIGKILL]s any worker outliving its deadline (the
      cooperative timeout plus slack), classified as [Gave_up];
    - a [Gc]-alarm heap cap in the worker turns runaway allocation into
      a classified entry before the kernel's OOM killer is involved;
    - a worker dying on a signal is reaped as [Err {cls = Crash _}] and
      retried with exponential backoff (the retry marked [retried]);
    - with a journal, entries are appended and flushed as they arrive;
      resuming recycles journalled items without re-running them;
    - SIGTERM/SIGINT mid-run trigger a graceful drain: dispatching
      stops, in-flight workers are reaped and journalled (watchdogs
      stay armed, so a wedged worker cannot hang the drain), the
      journal is flushed and closed, and the process exits 128+signal
      (143 SIGTERM, 130 SIGINT) — an interrupted [--journal] run is
      always resumable.  The previous handlers are restored on normal
      return.

    Entries come back in item order whatever the completion order, so
    [-j N] output is deterministic modulo timings.

    When the observability collector is on, each worker resets it after
    [fork], traces its own item, and returns its {!Obs.dump} with the
    entry over the result pipe; the parent merges every dump tagged
    with the worker's pid, so a parallel run still yields one coherent
    trace.  (A watchdog-killed worker loses its partial trace; its
    synthesised entry still appears in the report.) *)

type config = {
  jobs : int;  (** concurrent workers (>= 1) *)
  limits : Exec.Budget.limits;  (** per-item cooperative budget *)
  mem_limit_mb : int option;  (** hard heap cap enforced in the worker *)
  watchdog : float option;
      (** hard wall-clock kill, seconds; [None] = derive from the budget
          timeout (2x + 1s), unlimited if the budget has no timeout *)
  retries : int;  (** attempts after a crash (default 1) *)
  backoff : float;  (** seconds before the first crash retry, doubling *)
  lint : bool;
  flight_dir : string option;
      (** arm the crash flight recorder in every forked worker
          ({!Obs.flight_start} on [<dir>/flight-<pid>.jsonl]): a
          watchdog SIGKILL forfeits the result-pipe {!Obs.dump}, but
          the worker's last checkpoint — written at item start —
          survives as a post-mortem ([obs_report --postmortem]) *)
}

val default : config
(** 2 jobs, default budget, no heap cap, derived watchdog, one retry. *)

(** Worker exit codes above the user range (the parent maps them back
    to classified entries when the result pipe carries nothing usable);
    exposed for tests that inject misbehaving workers. *)

val exit_mem_cap : int
val exit_protocol : int

val run :
  ?config:config ->
  ?worker:(Runner.item -> Report.entry) ->
  ?journal:string ->
  ?resume:string ->
  ?explainer:(Exec.t -> Exec.Explain.t list) ->
  ?delta:bool ->
  ?backend:Exec.Check.backend ->
  ?oracle:Exec.Oracle.t ->
  Runner.item list ->
  Report.t
(** [run ?config ?worker ?journal ?resume ?explainer ?oracle items] —
    check every item in its own process and summarise.  [worker]
    overrides the per-item computation (tests inject crashing
    workers); the default is {!Runner.run_item} under the config's
    budget, with the heap cap folded into the budget so cooperative
    paths classify allocation blowups before the Gc alarm must.
    [explainer] turns on verdict forensics in the default worker;
    explanations and the counterexample marshal back over the result
    pipe with the entry.  [oracle] (default {!Lkmm.oracle}) and
    [backend] (default [Batch]) select the checking oracle and engine
    through {!Exec.Oracle.run}; [delta] forwards to the enumerative
    paths.  [journal] appends each completed entry; [resume] recycles
    entries from an existing journal and runs only the missing items
    (pass the same path as [journal] to extend it in place). *)
