(** The built-in litmus-test battery: every test named in Table 5 and
    every figure of the paper, plus classic coherence/atomicity tests
    used by the test suite.  Tests are kept in concrete syntax so the
    battery also exercises the parser. *)

type entry = {
  name : string;
  source : string;  (** litmus concrete syntax *)
  lk : Exec.Check.verdict;  (** paper's "Model" column / figure caption *)
  c11 : Exec.Check.verdict option;  (** paper's C11 column; [None] = "—" *)
  in_table5 : bool;
  figure : string option;
  hw_observable : string list;
      (** architectures of Table 5 where the weak outcome was observed
          on hardware: subset of [["Power8"; "ARMv8"; "ARMv7"; "X86"]] *)
}

(** The Table 5 tests, in the paper's order. *)
val table5 : entry list

(** Figure and auxiliary tests not in Table 5. *)
val extras : entry list

(** [table5 @ extras]. *)
val all : entry list

(** Parse an entry's source. *)
val test_of : entry -> Litmus.Ast.t

(** Find an entry by name in {!all}; raises [Not_found]. *)
val find : string -> entry
