(* The Figure 15 / Figure 16 study (Section 6, Theorem 2), empirically:
   run RCU litmus tests with the primitives replaced by the Figure 15
   implementation on the simulated architectures, and check that the
   forbidden outcomes never appear.  Two deliberately broken variants show
   the harness is discriminating: removing the grace-period wait, or just
   the reader-side smp_mb (Figure 15 line 14), makes the forbidden
   outcomes observable. *)

type result = {
  program : string;
  arch : string;
  matched : int; (* runs exhibiting the RCU-forbidden outcome *)
  total : int;
  aborted : int;
}

let run_variant ?(runs = 400) ?(seed = 11) ~variant (e : Battery.entry) arch =
  let test = Battery.test_of e in
  let prog = Kir.Rcu_impl.transform ~variant (Kir.of_litmus test) in
  let results, aborted = Hwsim.run_program arch ~runs ~seed prog in
  let matched = List.length (List.filter (Hwsim.eval_cond test) results) in
  {
    program = prog.Kir.name;
    arch = arch.Hwsim.Arch.name;
    matched;
    total = List.length results;
    aborted;
  }

let tests () = [ Battery.find "RCU-MP"; Battery.find "RCU-deferred-free" ]

let archs = [ Hwsim.Arch.power8; Hwsim.Arch.armv8; Hwsim.Arch.x86 ]

let run_all ?runs ?seed () =
  List.concat_map
    (fun e ->
      List.concat_map
        (fun arch ->
          List.map
            (fun variant -> run_variant ?runs ?seed ~variant e arch)
            [
              Kir.Rcu_impl.Full;
              Kir.Rcu_impl.No_wait;
              Kir.Rcu_impl.No_reader_mb;
            ])
        archs)
    (tests ())

let pp ppf (r : result) =
  Fmt.pf ppf "%-42s %-7s forbidden outcome %d/%d%s" r.program r.arch r.matched
    r.total
    (if r.aborted > 0 then Printf.sprintf " (%d aborted)" r.aborted else "")

(* Theorem-2 style issues: the faithful implementation must never show the
   forbidden outcome.  (The broken variants are expected to show it on at
   least one relaxed architecture; that expectation is asserted by the
   test suite, not here, because it needs enough runs to be reliable.) *)
let issues results =
  List.filter_map
    (fun r ->
      if
        r.matched > 0
        && String.length r.program >= 8
        && String.sub r.program (String.length r.program - 8) 8 = "rcu-impl"
      then
        Some
          (Printf.sprintf "%s on %s: forbidden outcome observed %d times"
             r.program r.arch r.matched)
      else None)
    results
