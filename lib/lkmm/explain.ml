(* Human-readable explanations of LKMM verdicts: which axioms an execution
   violates and a witness cycle for each, with events printed in the
   paper's style. *)

type violation = {
  axiom : Axioms.name;
  cycle : int list; (* event ids; first = last *)
}

let violations_of (c : Relations.ctx) =
  List.filter_map
    (fun axiom ->
      if Axioms.holds c axiom then None
      else
        let rel = Axioms.relation c axiom in
        let cycle =
          match axiom with
          | Axioms.At ->
              (* the violated constraint is emptiness, show an offending pair *)
              (match Rel.to_list rel with (a, b) :: _ -> [ a; b ] | [] -> [])
          | _ -> Option.value ~default:[] (Rel.find_cycle rel)
        in
        Some { axiom; cycle })
    Axioms.all

let pp_violation (x : Exec.t) ppf { axiom; cycle } =
  Fmt.pf ppf "violates %s%a" (Axioms.to_string axiom)
    Fmt.(
      list ~sep:nop (fun ppf id ->
          pf ppf "@\n    %a" Exec.Event.pp x.events.(id)))
    cycle

let pp_execution_verdict ppf (x : Exec.t) =
  let c = Relations.make x in
  match violations_of c with
  | [] -> Fmt.pf ppf "consistent"
  | vs ->
      Fmt.pf ppf "@[<v>forbidden:@,%a@]"
        Fmt.(list ~sep:cut (pp_violation x))
        vs

(* ------------------------------------------------------------------ *)
(* Structured forensics (Exec.Explain.t)                               *)
(* ------------------------------------------------------------------ *)

(* The native model and lk.cat define the same relations under the same
   names (the differential suite holds them together), so the native
   explainer detects violations cheaply via {!Axioms} and delegates the
   cycle extraction and provenance decomposition to the generic cat
   engine on the shipped lk.cat — native verdicts get cat-level
   explanations for free.

   If the two ever diverged (a cat explanation missing for a natively
   violated axiom), the fallback below still explains the violation
   from the native context alone: the shortest cycle in the axiom's
   relation, each edge labelled by the strongest base relation that
   contains it.  Both paths re-validate; [Exec.Explain.Invalid] is a
   hard error. *)

module E = Exec.Explain

(* Preference order for native edge labels: external communication
   first (the herd convention), then internal, then derived. *)
let native_label_rels (c : Relations.ctx) =
  [
    ("rfe", c.x.Exec.rfe);
    ("rfi", c.x.Exec.rfi);
    ("coe", c.x.Exec.coe);
    ("coi", c.x.Exec.coi);
    ("fre", c.x.Exec.fre);
    ("fri", c.x.Exec.fri);
    ("ppo", c.ppo);
    ("po-loc", c.x.Exec.po_loc);
    ("po", c.x.Exec.po);
    ("rmw", c.x.Exec.rmw);
    ("prop", c.prop);
    ("hb", c.hb);
    ("pb", c.pb);
    ("gp", c.gp);
    ("rscs", c.rscs);
    ("rcu-path", c.rcu_path);
  ]

let native_resolve c name =
  List.assoc_opt name (native_label_rels c)

let native_explain (x : Exec.t) (c : Relations.ctx) axiom =
  let rels = native_label_rels c in
  let label a b fallback =
    match List.find_opt (fun (_, r) -> Rel.mem a b r) rels with
    | Some (n, _) -> n
    | None -> fallback
  in
  let fallback_label = Axioms.to_string axiom in
  let step (a, b) =
    let l = label a b fallback_label in
    { E.src = a; dst = b; label = l;
      prims = [ { E.p_src = a; p_dst = b; p_label = l } ] }
  in
  let rel = Axioms.relation c axiom in
  let kind, pairs =
    match axiom with
    | Axioms.At ->
        (E.Nonempty, Rel.to_list rel)
    | Axioms.Rcu ->
        ( E.Irreflexive,
          match List.find_opt (fun (a, b) -> a = b) (Rel.to_list rel) with
          | Some p -> [ p ]
          | None -> [] )
    | Axioms.Scpv | Axioms.Hb | Axioms.Pb -> (
        ( E.Acyclic,
          match Rel.find_cycle rel with
          | Some cycle ->
              let rec consecutive = function
                | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
                | _ -> []
              in
              consecutive cycle
          | None -> [] ))
  in
  match pairs with
  | [] -> None
  | _ ->
      let steps = List.map step pairs in
      let t =
        {
          E.check = Axioms.to_string axiom;
          kind;
          steps;
          events = E.events_of_steps x.Exec.events steps;
        }
      in
      E.validate ~resolve:(native_resolve c) t;
      Some t

(* [explain_execution x] is the native model's verdict forensics: one
   validated explanation per violated axiom, [] iff [x] is consistent. *)
let explain_execution (x : Exec.t) : E.t list =
  let c = Relations.make_cached x in
  match Axioms.violations c with
  | [] -> []
  | native ->
      let es = Cat.Explain.explain_execution (Lazy.force Cat.lk) x in
      let named = List.map (fun (e : E.t) -> e.E.check) es in
      let missing =
        List.filter
          (fun a -> not (List.mem (Axioms.to_string a) named))
          native
      in
      es @ List.filter_map (native_explain x c) missing

(* An explainer for {!Exec.Check.run}'s [?explainer]. *)
let explainer : Exec.t -> E.t list = explain_execution

(* The axiom names, matching lk.cat's [as] labels (for --explain-diff). *)
let check_names = List.map Axioms.to_string Axioms.all

(* Explain a whole test: the verdict plus, for a forbidden test, why the
   candidate executions matching the condition are inconsistent. *)
let pp_test_verdict ppf (test : Litmus.Ast.t) =
  let result = Exec.Check.run (module Model) test in
  Fmt.pf ppf "@[<v>%s: %a (%d candidate executions, %d consistent)@,"
    test.name Exec.Check.pp_verdict result.verdict result.n_candidates
    result.n_consistent;
  (match result.verdict with
  | Exec.Check.Allow -> ()
  | Exec.Check.Unknown r ->
      Fmt.pf ppf "gave up: %s@," (Exec.Check.unknown_reason_to_string r)
  | Exec.Check.Forbid ->
      let matching =
        List.filter Exec.satisfies_cond (Exec.of_test test)
      in
      (match matching with
      | [] -> Fmt.pf ppf "no candidate execution matches the condition@,"
      | x :: _ -> Fmt.pf ppf "%a@," pp_execution_verdict x));
  Fmt.pf ppf "@]"
