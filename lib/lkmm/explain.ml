(* Human-readable explanations of LKMM verdicts: which axioms an execution
   violates and a witness cycle for each, with events printed in the
   paper's style. *)

type violation = {
  axiom : Axioms.name;
  cycle : int list; (* event ids; first = last *)
}

let violations_of (c : Relations.ctx) =
  List.filter_map
    (fun axiom ->
      if Axioms.holds c axiom then None
      else
        let rel = Axioms.relation c axiom in
        let cycle =
          match axiom with
          | Axioms.At ->
              (* the violated constraint is emptiness, show an offending pair *)
              (match Rel.to_list rel with (a, b) :: _ -> [ a; b ] | [] -> [])
          | _ -> Option.value ~default:[] (Rel.find_cycle rel)
        in
        Some { axiom; cycle })
    Axioms.all

let pp_violation (x : Exec.t) ppf { axiom; cycle } =
  Fmt.pf ppf "violates %s%a" (Axioms.to_string axiom)
    Fmt.(
      list ~sep:nop (fun ppf id ->
          pf ppf "@\n    %a" Exec.Event.pp x.events.(id)))
    cycle

let pp_execution_verdict ppf (x : Exec.t) =
  let c = Relations.make x in
  match violations_of c with
  | [] -> Fmt.pf ppf "consistent"
  | vs ->
      Fmt.pf ppf "@[<v>forbidden:@,%a@]"
        Fmt.(list ~sep:cut (pp_violation x))
        vs

(* Explain a whole test: the verdict plus, for a forbidden test, why the
   candidate executions matching the condition are inconsistent. *)
let pp_test_verdict ppf (test : Litmus.Ast.t) =
  let result = Exec.Check.run (module Model) test in
  Fmt.pf ppf "@[<v>%s: %a (%d candidate executions, %d consistent)@,"
    test.name Exec.Check.pp_verdict result.verdict result.n_candidates
    result.n_consistent;
  (match result.verdict with
  | Exec.Check.Allow -> ()
  | Exec.Check.Unknown r ->
      Fmt.pf ppf "gave up: %s@," (Exec.Check.unknown_reason_to_string r)
  | Exec.Check.Forbid ->
      let matching =
        List.filter Exec.satisfies_cond (Exec.of_test test)
      in
      (match matching with
      | [] -> Fmt.pf ppf "no candidate execution matches the condition@,"
      | x :: _ -> Fmt.pf ppf "%a@," pp_execution_verdict x));
  Fmt.pf ppf "@]"
