(* The axioms of the LK model: Figure 3 of the paper, plus the RCU axiom of
   Figure 12. *)

type name = Scpv | At | Hb | Pb | Rcu

let all = [ Scpv; At; Hb; Pb; Rcu ]

let to_string = function
  | Scpv -> "sc-per-variable"
  | At -> "atomicity"
  | Hb -> "happens-before"
  | Pb -> "propagates-before"
  | Rcu -> "rcu"

(* The relation each axiom constrains, for explanations. *)
let relation (c : Relations.ctx) = function
  | Scpv -> Rel.union c.x.po_loc c.x.com
  | At -> Rel.inter c.x.rmw (Rel.seq c.x.fre c.x.coe)
  | Hb -> c.hb
  | Pb -> c.pb
  | Rcu -> c.rcu_path

let holds (c : Relations.ctx) = function
  | Scpv -> Rel.is_acyclic (Rel.union c.x.po_loc c.x.com)
  | At -> Rel.is_empty (Rel.inter c.x.rmw (Rel.seq c.x.fre c.x.coe))
  | Hb -> Rel.is_acyclic c.hb
  | Pb -> Rel.is_acyclic c.pb
  | Rcu -> Rel.is_irreflexive c.rcu_path

(* Axioms violated by the execution, in Figure 3 order. *)
let violations c = List.filter (fun a -> not (holds c a)) all

let consistent_ctx c = violations c = []
let consistent x = consistent_ctx (Relations.make_cached x)
