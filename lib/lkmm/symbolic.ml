(* The LK axioms (Figure 3 plus the RCU axiom of Figure 12) as CNF, for
   the symbolic backend: the Figure 8 chain of {!Relations.make},
   transcribed term by term into {!Exec.Solve.Sym} combinators over the
   symbolic witness relations.

   The static prefix is witness-independent, so it is taken — through
   {!Relations.static_cached} — from the representative execution the
   encoder provides, and enters the encoding as constant relations; only
   the dynamic remainder (rfi, rfe, overwrite, ppo, prop, hb, pb, the
   RCU path) becomes clauses.  Because the whole chain is monotone in rf
   and co and the axioms are negative, the support-only encoding is
   exact (see [lib/exec/solve.ml]); exactness against the scalar
   [Axioms.consistent] is what the corpus-agreement suite in
   [test/test_sat.ml] exercises.

   The recursive rcu-path is tied off concretely: its may- and
   must-projections are least fixpoints of the same six-rule step
   computed in {!Rel}, and one variable per may-pair receives a support
   clause for every rule instance — the symbolic relation is then at
   least the concrete rcu-path of any assignment, which is exactly what
   the irreflexivity assertion needs. *)

module S = Exec.Solve
module Sym = Exec.Solve.Sym

(* The six-rule step of Figure 12's [rec rcu-path], over concrete
   relations — used to compute the may/must fixpoints the symbolic
   tie-off is built on. *)
let rcu_step g r p =
  List.fold_left Rel.union g
    [
      Rel.seq p p;
      Rel.seq g r;
      Rel.seq r g;
      Rel.seq g (Rel.seq p r);
      Rel.seq r (Rel.seq p g);
    ]

let rcu_lfp g r =
  let rec go p =
    let next = rcu_step g r p in
    if Rel.equal next p then p else go next
  in
  go g

(* Symbolic rcu-path: [T] at must-fixpoint pairs, a fresh variable at
   the remaining may-fixpoint pairs, with one support clause per rule
   instance over may-supported tuples. *)
let rcu_path ctx gp_link rscs_link =
  let may_g = Sym.may_of gp_link and may_r = Sym.may_of rscs_link in
  let may_p = rcu_lfp may_g may_r in
  let must_p = rcu_lfp (Sym.must_of gp_link) (Sym.must_of rscs_link) in
  let p = Sym.make ctx.S.n in
  Rel.iter
    (fun x y ->
      p.(x).(y) <- (if Rel.mem x y must_p then S.T else S.fresh ctx))
    may_p;
  let support body x z = S.clause ctx (List.map S.neg body @ [ p.(x).(z) ]) in
  (* gp-link <= p *)
  Rel.iter (fun x y -> support [ Sym.entry gp_link x y ] x y) may_g;
  (* p ; p <= p *)
  Rel.iter
    (fun x y ->
      Rel.iter
        (fun y' z -> if y = y' then support [ p.(x).(y); p.(y).(z) ] x z)
        may_p)
    may_p;
  (* gp-link ; rscs-link <= p  and symmetrically *)
  let seq2 a ma b mb =
    Rel.iter
      (fun x y ->
        Rel.iter
          (fun y' z ->
            if y = y' then support [ Sym.entry a x y; Sym.entry b y z ] x z)
          mb)
      ma
  in
  seq2 gp_link may_g rscs_link may_r;
  seq2 rscs_link may_r gp_link may_g;
  (* gp-link ; p ; rscs-link <= p  and symmetrically *)
  let seq3 a ma b mb =
    Rel.iter
      (fun x y ->
        Rel.iter
          (fun y' z ->
            if y = y' then
              Rel.iter
                (fun z' w ->
                  if z = z' then
                    support
                      [ Sym.entry a x y; p.(y).(z); Sym.entry b z w ]
                      x w)
                mb)
          may_p)
      ma
  in
  seq3 gp_link may_g rscs_link may_r;
  seq3 rscs_link may_r gp_link may_g;
  p

(* The axioms callback: Scpv is already asserted by the encoder (it
   doubles as the coherence prefilter), so this contributes At, Hb, Pb
   and Rcu. *)
let axioms (e : S.enc) =
  let ctx = e.S.ctx in
  let x = e.S.rep in
  let s = Relations.static_cached x in
  let rf = e.S.rf and co = e.S.co and fr = e.S.fr in
  let rfi = Sym.inter_const rf x.Exec.int_r in
  let rfe = Sym.inter_const rf x.Exec.ext_r in
  let fre = Sym.inter_const fr x.Exec.ext_r in
  let coe = Sym.inter_const co x.Exec.ext_r in
  (* At: empty (rmw & (fre ; coe)) *)
  Sym.assert_empty ctx (Sym.inter_const (Sym.seq ctx fre coe) x.Exec.rmw);
  (* Figure 8, the witness-dependent remainder *)
  let rfi_rel_acq =
    Sym.seq ctx (Sym.const ctx s.Relations.rel_id)
      (Sym.seq ctx rfi (Sym.const ctx s.Relations.acq_id))
  in
  let overwrite = Sym.union ctx co fr in
  let to_w =
    Sym.union ctx
      (Sym.const ctx s.Relations.s_rwdep)
      (Sym.inter_const overwrite x.Exec.int_r)
  in
  let rrdep =
    Sym.union ctx
      (Sym.const ctx x.Exec.addr)
      (Sym.seq ctx (Sym.const ctx s.Relations.s_dep) rfi)
  in
  let strong_rrdep =
    Sym.inter_const (Sym.plus ctx rrdep) s.Relations.s_rb_dep
  in
  let to_r = Sym.union ctx strong_rrdep rfi_rel_acq in
  let ppo =
    Sym.seq ctx (Sym.star ctx rrdep)
      (Sym.union ctx to_r
         (Sym.union ctx to_w (Sym.const ctx s.Relations.s_fence)))
  in
  let cumul_fence =
    Sym.union ctx
      (Sym.seq ctx (Sym.opt rfe)
         (Sym.const ctx
            (Rel.union s.Relations.s_strong_fence s.Relations.s_po_rel)))
      (Sym.const ctx s.Relations.s_wmb)
  in
  let prop =
    Sym.seq ctx
      (Sym.opt (Sym.inter_const overwrite x.Exec.ext_r))
      (Sym.seq ctx (Sym.star ctx cumul_fence) (Sym.opt rfe))
  in
  let hb =
    Sym.union ctx
      (Sym.inter_const (Sym.diff_const prop x.Exec.id_r) x.Exec.int_r)
      (Sym.union ctx ppo rfe)
  in
  (* Hb: acyclic hb *)
  Sym.assert_acyclic ctx hb;
  (* Pb and Rcu both vanish without a strong fence: pb has a
     strong-fence factor, and gp (hence gp-link, hence rcu-path) is a
     sub-relation of one. *)
  if not (Rel.is_empty s.Relations.s_strong_fence) then begin
    let hb_star = Sym.star ctx hb in
    let pb =
      Sym.seq ctx prop
        (Sym.seq ctx (Sym.const ctx s.Relations.s_strong_fence) hb_star)
    in
    (* Pb: acyclic pb *)
    Sym.assert_acyclic ctx pb;
    if not (Rel.is_empty s.Relations.s_gp) then begin
      let link = Sym.seq ctx hb_star (Sym.seq ctx (Sym.star ctx pb) prop) in
      let gp_link = Sym.seq ctx (Sym.const ctx s.Relations.s_gp) link in
      let rscs_link = Sym.seq ctx (Sym.const ctx s.Relations.s_rscs) link in
      (* Rcu: irreflexive rcu-path *)
      Sym.assert_irreflexive ctx (rcu_path ctx gp_link rscs_link)
    end
  end
