(* The relations of the LK memory model, exactly as defined in Figure 8 and
   Figure 12 of the paper.  Everything is computed once per candidate
   execution into a [ctx] record.

   The definitions split into a *static* prefix — relations determined by
   the event structure alone (po, dependencies, fences, RCU critical
   sections), identical for every rf/co witness of one structure — and a
   *dynamic* remainder built on rf, co and their derivatives.  [static_of]
   computes the prefix; [make ?static] reuses a previously computed one,
   and [make_cached] keys a one-slot cache on the physical identity of
   [x.events], which the enumeration shares across all witnesses of one
   event structure. *)

module Iset = Rel.Iset

let c_fixpoint = Obs.Counter.make "lkmm.fixpoint_iters"
let c_cache_hits = Obs.Counter.make "lkmm.cache.hits"
let c_cache_misses = Obs.Counter.make "lkmm.cache.misses"

type static_ctx = {
  acq_id : Rel.t; (* identity over read-acquires *)
  rel_id : Rel.t; (* identity over write-releases *)
  s_acq_po : Rel.t;
  s_po_rel : Rel.t;
  s_rmb : Rel.t;
  s_wmb : Rel.t;
  s_mb : Rel.t;
  s_rb_dep : Rel.t;
  s_sync : Iset.t;
  s_gp : Rel.t;
  s_rscs : Rel.t;
  s_dep : Rel.t;
  s_rwdep : Rel.t;
  s_strong_fence : Rel.t;
  s_fence : Rel.t;
}

type ctx = {
  x : Exec.t;
  (* auxiliary relations (Section 3.1) *)
  acq_po : Rel.t; (* first event is an acquire *)
  po_rel : Rel.t; (* second event is a release *)
  rfi_rel_acq : Rel.t; (* internal reads-from, release into acquire *)
  rmb : Rel.t; (* reads separated by smp_rmb *)
  wmb : Rel.t; (* writes separated by smp_wmb *)
  mb : Rel.t; (* events separated by smp_mb *)
  rb_dep : Rel.t; (* reads separated by smp_read_barrier_depends *)
  (* RCU base relations (Figure 12) *)
  sync : Iset.t; (* F[sync-rcu] events *)
  crit : Rel.t; (* outermost rcu_read_lock -> matching unlock *)
  gp : Rel.t;
  rscs : Rel.t;
  (* Figure 8 *)
  dep : Rel.t;
  rwdep : Rel.t;
  overwrite : Rel.t;
  to_w : Rel.t;
  rrdep : Rel.t;
  strong_rrdep : Rel.t;
  to_r : Rel.t;
  strong_fence : Rel.t; (* mb U gp, per Figure 12 *)
  fence : Rel.t;
  ppo : Rel.t;
  cumul_fence : Rel.t;
  prop : Rel.t;
  hb : Rel.t;
  pb : Rel.t;
  (* Figure 12 *)
  link : Rel.t;
  gp_link : Rel.t;
  rscs_link : Rel.t;
  rcu_path : Rel.t;
}

(* The witness-independent relations: po, the dependency and fence
   relations, gp, rscs.  None of these mentions rf, co or a derivative. *)
let static_of (x : Exec.t) =
  let ( |>> ) = Rel.seq in
  let universe = x.universe in
  let opt r = Rel.reflexive_closure ~universe r in
  let set p = Exec.events_where x p in
  let is a (e : Exec.Event.t) = e.annot = a in
  let acq = set (fun e -> Exec.Event.is_read e && is Exec.Event.Acquire e) in
  let rel = set (fun e -> Exec.Event.is_write e && is Exec.Event.Release e) in
  let f_rmb = set (is Exec.Event.Rmb) in
  let f_wmb = set (is Exec.Event.Wmb) in
  let f_mb = set (is Exec.Event.Mb) in
  let f_rb_dep = set (is Exec.Event.Rb_dep) in
  let sync = set (is Exec.Event.Sync_rcu) in
  let r_id = Rel.id_of_set x.reads in
  let w_id = Rel.id_of_set x.writes in
  let acq_id = Rel.id_of_set acq in
  let rel_id = Rel.id_of_set rel in
  let acq_po = acq_id |>> x.po in
  let po_rel = x.po |>> rel_id in
  let rmb = r_id |>> x.po |>> Rel.id_of_set f_rmb |>> x.po |>> r_id in
  let wmb = w_id |>> x.po |>> Rel.id_of_set f_wmb |>> x.po |>> w_id in
  let mb = x.po |>> Rel.id_of_set f_mb |>> x.po in
  let rb_dep = r_id |>> x.po |>> Rel.id_of_set f_rb_dep |>> x.po |>> r_id in
  (* gp := (po & (_ * Sync)) ; po?   (Figure 12) *)
  let gp = Rel.inter x.po (Rel.cartesian universe sync) |>> opt x.po in
  (* rscs := po ; crit^-1 ; po? *)
  let rscs = x.po |>> Rel.inverse x.crit |>> opt x.po in
  let dep = Rel.union x.addr x.data in
  let rwdep =
    Rel.inter (Rel.union dep x.ctrl) (Rel.cartesian x.reads x.writes)
  in
  let strong_fence = Rel.union mb gp in
  let fence =
    List.fold_left Rel.union strong_fence [ po_rel; wmb; rmb; acq_po ]
  in
  {
    acq_id;
    rel_id;
    s_acq_po = acq_po;
    s_po_rel = po_rel;
    s_rmb = rmb;
    s_wmb = wmb;
    s_mb = mb;
    s_rb_dep = rb_dep;
    s_sync = sync;
    s_gp = gp;
    s_rscs = rscs;
    s_dep = dep;
    s_rwdep = rwdep;
    s_strong_fence = strong_fence;
    s_fence = fence;
  }

let make ?static (x : Exec.t) =
  let s = match static with Some s -> s | None -> static_of x in
  let ( |>> ) = Rel.seq in
  let universe = x.universe in
  let star r = Rel.reflexive_transitive_closure ~universe r in
  let opt r = Rel.reflexive_closure ~universe r in
  let rfi_rel_acq = s.rel_id |>> x.rfi |>> s.acq_id in
  (* Figure 8, the witness-dependent remainder *)
  let overwrite = Rel.union x.co x.fr in
  let to_w = Rel.union s.s_rwdep (Rel.inter overwrite x.int_r) in
  let rrdep = Rel.union x.addr (s.s_dep |>> x.rfi) in
  let strong_rrdep = Rel.inter (Rel.transitive_closure rrdep) s.s_rb_dep in
  let to_r = Rel.union strong_rrdep rfi_rel_acq in
  let ppo =
    star rrdep |>> Rel.union to_r (Rel.union to_w s.s_fence)
  in
  (* A-cumul(r) := rfe? ; r *)
  let a_cumul r = opt x.rfe |>> r in
  let cumul_fence =
    Rel.union (a_cumul (Rel.union s.s_strong_fence s.s_po_rel)) s.s_wmb
  in
  let prop =
    opt (Rel.inter overwrite x.ext_r) |>> star cumul_fence |>> opt x.rfe
  in
  let hb =
    Rel.union
      (Rel.inter (Rel.diff prop x.id_r) x.int_r)
      (Rel.union ppo x.rfe)
  in
  let pb = prop |>> s.s_strong_fence |>> star hb in
  (* Figure 12 *)
  let link = star hb |>> star pb |>> prop in
  let gp_link = s.s_gp |>> link in
  let rscs_link = s.s_rscs |>> link in
  (* rec rcu-path, by Kleene iteration of its monotone defining equation *)
  let rcu_path =
    let step p =
      List.fold_left Rel.union gp_link
        [
          p |>> p;
          gp_link |>> rscs_link;
          rscs_link |>> gp_link;
          gp_link |>> p |>> rscs_link;
          rscs_link |>> p |>> gp_link;
        ]
    in
    let rec go p =
      Obs.Counter.incr c_fixpoint;
      let next = step p in
      if Rel.equal next p then p else go next
    in
    go gp_link
  in
  {
    x;
    acq_po = s.s_acq_po;
    po_rel = s.s_po_rel;
    rfi_rel_acq;
    rmb = s.s_rmb;
    wmb = s.s_wmb;
    mb = s.s_mb;
    rb_dep = s.s_rb_dep;
    sync = s.s_sync;
    crit = x.crit;
    gp = s.s_gp;
    rscs = s.s_rscs;
    dep = s.s_dep;
    rwdep = s.s_rwdep;
    overwrite;
    to_w;
    rrdep;
    strong_rrdep;
    to_r;
    strong_fence = s.s_strong_fence;
    fence = s.s_fence;
    ppo;
    cumul_fence;
    prop;
    hb;
    pb;
    link;
    gp_link;
    rscs_link;
    rcu_path;
  }

(* One-slot static-prefix cache.  The enumeration yields all rf/co
   witnesses of one event structure consecutively, sharing the [events]
   array physically; keying on that identity makes the cache hit for
   every candidate but the structure's first, and a miss merely
   recomputes — caching is never observable in the results. *)
(* Domain-local, not global: the checking-as-a-service scheduler runs
   one check per domain concurrently, and a single shared slot would
   thrash (every domain evicting the others' entry) and race.  Each
   domain sees its own candidates consecutively, which is exactly the
   access pattern the one-slot design wants. *)
let static_cache : (Exec.Event.t array * static_ctx) option ref Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> ref None)

let static_cached (x : Exec.t) =
  let cache = Domain.DLS.get static_cache in
  match !cache with
  | Some (ev, s) when ev == x.events ->
      Obs.Counter.incr c_cache_hits;
      s
  | _ ->
      Obs.Counter.incr c_cache_misses;
      let s = static_of x in
      cache := Some (x.events, s);
      s

let make_cached (x : Exec.t) = make ~static:(static_cached x) x

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* The same dynamic remainder, for up to 63 pairwise static-compatible
   witnesses at once: every witness-dependent relation is stacked into
   candidate-major bit planes ({!Rel.Batch}) and the Figure 8 chain
   runs word-parallel across all of them, with the static prefix —
   equal across the batch by {!Exec.Execution.static_compatible} —
   broadcast from the first candidate's cache entry.  The axioms are decided in Figure 3
   order, and after each one the surviving-plane mask shrinks — decided
   candidates are dropped from the remaining work entirely (the At
   stage restricts its inputs, the Hb/Pb/Rcu chain is built only for
   planes that survived At, and Pb/Rcu inputs are re-restricted), which
   is work the scalar path cannot skip: [make] computes the whole chain
   eagerly before any axiom is tested. *)

module B = Rel.Batch

let c_batch_early = Obs.Counter.make "lkmm.batch.early_exit"

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

let consistent_mask ~coherent ~mask (xs : Exec.t array) =
  let x0 = xs.(0) in
  let s = static_cached x0 in
  let n = Array.length x0.Exec.events in
  let bc ~mask r = B.broadcast ~n ~mask r in
  let dyn ~mask f = B.of_rels ~n ~mask (Array.map f xs) in
  let live = ref mask in
  let settle ~last m =
    if not last then Obs.Counter.add c_batch_early (popcount (!live land lnot m));
    live := !live land m
  in
  (* Scpv: acyclic (po-loc | com) — exactly the sc-per-location
     prefilter, so when the caller vouches for coherence it is already
     decided for every live plane. *)
  if not coherent then
    settle ~last:false
      (B.acyclic_mask ~mask:!live
         (B.union
            (bc ~mask:!live x0.Exec.po_loc)
            (dyn ~mask:!live (fun x -> x.Exec.com))));
  (* At: empty (rmw & (fre ; coe)) *)
  if !live <> 0 then
    settle ~last:false
      (B.empty_mask ~mask:!live
         (B.inter
            (bc ~mask:!live x0.Exec.rmw)
            (B.seq
               (dyn ~mask:!live (fun x -> x.Exec.fre))
               (dyn ~mask:!live (fun x -> x.Exec.coe)))));
  (* Hb, Pb and Rcu share the Figure 8 chain. *)
  if !live <> 0 then begin
    let lm = !live in
    let bc r = bc ~mask:lm r and dyn f = dyn ~mask:lm f in
    let ( |>> ) = B.seq in
    let star r = B.reflexive_transitive_closure ~mask:lm r in
    let opt r = B.reflexive_closure ~mask:lm r in
    let rfi = dyn (fun x -> x.Exec.rfi) in
    let rfe = dyn (fun x -> x.Exec.rfe) in
    let overwrite =
      B.union (dyn (fun x -> x.Exec.co)) (dyn (fun x -> x.Exec.fr))
    in
    let int_b = bc x0.Exec.int_r in
    let rfi_rel_acq = bc s.rel_id |>> rfi |>> bc s.acq_id in
    let to_w = B.union (bc s.s_rwdep) (B.inter overwrite int_b) in
    let rrdep = B.union (bc x0.Exec.addr) (bc s.s_dep |>> rfi) in
    let strong_rrdep =
      B.inter (B.transitive_closure rrdep) (bc s.s_rb_dep)
    in
    let to_r = B.union strong_rrdep rfi_rel_acq in
    let ppo = star rrdep |>> B.union to_r (B.union to_w (bc s.s_fence)) in
    let cumul_fence =
      B.union
        (opt rfe |>> bc (Rel.union s.s_strong_fence s.s_po_rel))
        (bc s.s_wmb)
    in
    let prop =
      opt (B.inter overwrite (bc x0.Exec.ext_r))
      |>> star cumul_fence |>> opt rfe
    in
    let hb =
      B.union
        (B.inter (B.diff prop (bc x0.Exec.id_r)) int_b)
        (B.union ppo rfe)
    in
    settle ~last:false (B.acyclic_mask ~mask:lm hb);
    if !live <> 0 then begin
      let lm = !live in
      let prop = B.restrict ~mask:lm prop in
      let hb = B.restrict ~mask:lm hb in
      let pb = prop |>> bc s.s_strong_fence |>> star hb in
      settle ~last:false (B.acyclic_mask ~mask:lm pb);
      if !live <> 0 then begin
        let lm = !live in
        let link =
          star (B.restrict ~mask:lm hb)
          |>> star (B.restrict ~mask:lm pb)
          |>> B.restrict ~mask:lm prop
        in
        let gp_link = bc s.s_gp |>> link in
        let rscs_link = bc s.s_rscs |>> link in
        let step p =
          List.fold_left B.union gp_link
            [
              p |>> p;
              gp_link |>> rscs_link;
              rscs_link |>> gp_link;
              gp_link |>> p |>> rscs_link;
              rscs_link |>> p |>> gp_link;
            ]
        in
        let rec go p =
          Obs.Counter.incr c_fixpoint;
          let next = step p in
          if B.equal next p then p else go next
        in
        settle ~last:true (B.irreflexive_mask ~mask:lm (go gp_link))
      end
    end
  end;
  !live
