(* The Linux-kernel memory model — the paper's primary contribution.

   - {!Relations}: the relations of Figure 8 and Figure 12 (ppo, prop, hb,
     pb, gp, rscs, rcu-path, ...), computed per candidate execution;
   - {!Axioms}: the constraints of Figure 3 plus the RCU axiom;
   - {!Rcu}: the fundamental law of RCU (Section 4.1) and the Theorem-1
     equivalence check;
   - {!Explain}: human-readable verdicts with witness cycles;
   - [name]/[consistent]: the model packaged for {!Exec.Check.run}. *)

module Relations = Relations
module Axioms = Axioms
module Rcu = Rcu
module Explain = Explain

let name = Model.name
let consistent = Model.consistent

(** [check ?budget test] runs a litmus test against the LK model; with a
    budget the result may be [Unknown] instead of raising/hanging. *)
let check ?budget test = Exec.Check.run ?budget (module Model) test

(** [verdict ?budget test] is the LK verdict for [test]. *)
let verdict ?budget test = (check ?budget test).Exec.Check.verdict
