(* The Linux-kernel memory model — the paper's primary contribution.

   - {!Relations}: the relations of Figure 8 and Figure 12 (ppo, prop, hb,
     pb, gp, rscs, rcu-path, ...), computed per candidate execution;
   - {!Axioms}: the constraints of Figure 3 plus the RCU axiom;
   - {!Rcu}: the fundamental law of RCU (Section 4.1) and the Theorem-1
     equivalence check;
   - {!Explain}: human-readable verdicts with witness cycles;
   - [name]/[consistent]: the model packaged for {!Exec.Check.run}. *)

module Relations = Relations
module Axioms = Axioms
module Rcu = Rcu
module Explain = Explain

let name = Model.name
let consistent = Model.consistent

(** [consistent_mask] is the model's batched consistency oracle — up to
    63 static-compatible witnesses decided per word-parallel pass
    (see {!Relations.consistent_mask}); plug it into
    [Exec.Check.run ~batch]. *)
let consistent_mask : Exec.Check.batch_fn = Relations.consistent_mask

(** [check ?budget test] runs a litmus test against the LK model; with a
    budget the result may be [Unknown] instead of raising/hanging.
    Candidates are evaluated batched ([?batched], default [true]: the
    bit-plane path, observationally identical to the scalar one). *)
let check ?budget ?(batched = true) test =
  if batched then
    Exec.Check.run ?budget ~batch:consistent_mask (module Model) test
  else Exec.Check.run ?budget ~delta:false (module Model) test

(** [verdict ?budget test] is the LK verdict for [test]. *)
let verdict ?budget test = (check ?budget test).Exec.Check.verdict
