(* The Linux-kernel memory model — the paper's primary contribution.

   - {!Relations}: the relations of Figure 8 and Figure 12 (ppo, prop, hb,
     pb, gp, rscs, rcu-path, ...), computed per candidate execution;
   - {!Axioms}: the constraints of Figure 3 plus the RCU axiom;
   - {!Rcu}: the fundamental law of RCU (Section 4.1) and the Theorem-1
     equivalence check;
   - {!Explain}: human-readable verdicts with witness cycles;
   - [name]/[consistent]: the model packaged for {!Exec.Check.run}. *)

module Relations = Relations
module Axioms = Axioms
module Rcu = Rcu
module Explain = Explain
module Symbolic = Symbolic

let name = Model.name
let consistent = Model.consistent

(** [consistent_mask] is the model's batched consistency oracle — up to
    63 static-compatible witnesses decided per word-parallel pass
    (see {!Relations.consistent_mask}); plug it into
    [Exec.Check.run ~batch]. *)
let consistent_mask : Exec.Check.batch_fn = Relations.consistent_mask

(** The symbolic engine: the candidate space as CNF under
    {!Symbolic.axioms}, decided by [lib/sat]'s CDCL core, witnesses
    re-validated through the scalar {!Model}. *)
let solve : Exec.Solve.solve_fn =
  Exec.Solve.make ~axioms:Symbolic.axioms (module Model)

(** The LK model as a checking oracle: all three engines (scalar,
    bit-plane batched, symbolic), selected per request by
    {!Exec.Oracle.run}. *)
let oracle : Exec.Oracle.t =
  Exec.Oracle.make ~name:Model.name
    ~model:(fun _ -> (module Model : Exec.Check.MODEL))
    ~batch:(fun _ -> consistent_mask)
    ~solve ()

(** [check ?budget test] runs a litmus test against the LK model; with a
    budget the result may be [Unknown] instead of raising/hanging.
    Candidates are evaluated batched ([?batched], default [true]: the
    bit-plane path, observationally identical to the scalar one). *)
let check ?budget ?(batched = true) test =
  if batched then
    Exec.Check.run ?budget ~batch:consistent_mask (module Model) test
  else Exec.Check.run ?budget ~delta:false (module Model) test

(** [verdict ?budget test] is the LK verdict for [test]. *)
let verdict ?budget test = (check ?budget test).Exec.Check.verdict
