(** Verdict forensics for the native LK model.

    Two layers: the original human-readable axiom/cycle printers (used
    by [herd_lk -v]), and structured {!Exec.Explain.t} explanations
    that detect violations natively via {!Axioms} and delegate cycle
    extraction plus provenance decomposition to the generic cat engine
    on the shipped lk.cat (the two define the same relations under the
    same names).  If the models ever diverged, a native fallback still
    explains the violated axiom from the {!Relations.ctx} alone.  Both
    paths re-validate; {!Exec.Explain.Invalid} is a hard error. *)

type violation = {
  axiom : Axioms.name;
  cycle : int list;  (** event ids; first = last for cycles *)
}

(** Axioms the execution violates, each with a witness cycle (or an
    offending pair for atomicity). *)
val violations_of : Relations.ctx -> violation list

val pp_violation : Exec.t -> Format.formatter -> violation -> unit

(** "consistent", or the violated axioms with their cycles. *)
val pp_execution_verdict : Format.formatter -> Exec.t -> unit

(** Check the whole test and explain a Forbid verdict. *)
val pp_test_verdict : Format.formatter -> Litmus.Ast.t -> unit

(** [explain_execution x] is one validated {!Exec.Explain.t} per
    violated axiom; [[]] iff [x] is consistent. *)
val explain_execution : Exec.t -> Exec.Explain.t list

(** {!explain_execution}, for {!Exec.Check.run}'s [?explainer]. *)
val explainer : Exec.t -> Exec.Explain.t list

(** The axiom names, matching lk.cat's [as] labels. *)
val check_names : string list
