(** The relations of the LK memory model — Figure 8 and Figure 12 of the
    paper, computed once per candidate execution into a {!ctx} record.

    Every field name matches the paper's (OCaml-ised: [to-w] is [to_w],
    [rcu-path] is [rcu_path]).  The definitions, for reference:

    {v
    dep          := addr | data
    rwdep        := (dep | ctrl) & (R * W)
    overwrite    := co | fr
    to-w         := rwdep | (overwrite & int)
    rrdep        := addr | (dep ; rfi)
    strong-rrdep := rrdep^+ & rb-dep
    to-r         := strong-rrdep | rfi-rel-acq
    strong-fence := mb | gp
    fence        := strong-fence | po-rel | wmb | rmb | acq-po
    ppo          := rrdep^* ; (to-r | to-w | fence)
    cumul-fence  := A-cumul(strong-fence | po-rel) | wmb
    prop         := (overwrite & ext)? ; cumul-fence^* ; rfe?
    hb           := ((prop \ id) & int) | ppo | rfe
    pb           := prop ; strong-fence ; hb^*
    gp           := (po & (_ * Sync)) ; po?
    rscs         := po ; crit^-1 ; po?
    link         := hb^* ; pb^* ; prop
    rec rcu-path := gp-link | rcu-path;rcu-path | ...
    v} *)

module Iset = Rel.Iset

type ctx = {
  x : Exec.t;
  (* auxiliary relations (Section 3.1) *)
  acq_po : Rel.t;  (** first event is an acquire *)
  po_rel : Rel.t;  (** second event is a release *)
  rfi_rel_acq : Rel.t;  (** internal reads-from, release into acquire *)
  rmb : Rel.t;  (** reads separated by smp_rmb *)
  wmb : Rel.t;  (** writes separated by smp_wmb *)
  mb : Rel.t;  (** events separated by smp_mb *)
  rb_dep : Rel.t;  (** reads separated by smp_read_barrier_depends *)
  (* RCU base relations (Figure 12) *)
  sync : Iset.t;  (** the F[sync-rcu] events *)
  crit : Rel.t;  (** outermost rcu_read_lock -> matching unlock *)
  gp : Rel.t;
  rscs : Rel.t;
  (* Figure 8 *)
  dep : Rel.t;
  rwdep : Rel.t;
  overwrite : Rel.t;
  to_w : Rel.t;
  rrdep : Rel.t;
  strong_rrdep : Rel.t;
  to_r : Rel.t;
  strong_fence : Rel.t;  (** mb | gp, per Figure 12 *)
  fence : Rel.t;
  ppo : Rel.t;
  cumul_fence : Rel.t;
  prop : Rel.t;
  hb : Rel.t;
  pb : Rel.t;
  (* Figure 12 *)
  link : Rel.t;
  gp_link : Rel.t;
  rscs_link : Rel.t;
  rcu_path : Rel.t;  (** least fixed point of the recursive definition *)
}

(** The witness-independent prefix of the model: relations determined by
    the event structure alone (po, dependencies, fences, gp, rscs),
    identical for every rf/co witness of one structure.  Concrete so the
    symbolic backend ({!Symbolic}) can enter them as constants. *)
type static_ctx = {
  acq_id : Rel.t;  (** identity over read-acquires *)
  rel_id : Rel.t;  (** identity over write-releases *)
  s_acq_po : Rel.t;
  s_po_rel : Rel.t;
  s_rmb : Rel.t;
  s_wmb : Rel.t;
  s_mb : Rel.t;
  s_rb_dep : Rel.t;
  s_sync : Iset.t;
  s_gp : Rel.t;
  s_rscs : Rel.t;
  s_dep : Rel.t;
  s_rwdep : Rel.t;
  s_strong_fence : Rel.t;
  s_fence : Rel.t;
}

(** [static_of x] computes the static prefix of [x]. *)
val static_of : Exec.t -> static_ctx

(** [static_cached x] is [static_of x] through the one-slot per-domain
    cache keyed on the physical identity of [x.events]. *)
val static_cached : Exec.t -> static_ctx

(** [make ?static x] computes every relation of the model on execution
    [x].  With [?static], the witness-independent prefix is reused
    instead of recomputed; it must come from an execution with the same
    event structure (same events, po, dependencies and fences — only
    rf/co may differ). *)
val make : ?static:static_ctx -> Exec.t -> ctx

(** [make_cached x] is [make x] through a one-slot static-prefix cache
    keyed on the physical identity of [x.events], which the streaming
    enumeration shares across all witnesses of one event structure.
    Results are identical to [make x]. *)
val make_cached : Exec.t -> ctx

(** [consistent_mask ~coherent ~mask xs] decides the LK model for up to
    63 pairwise static-compatible witnesses
    ({!Exec.Execution.static_compatible}) in one word-parallel pass:
    the witness-dependent relations are stacked into candidate-major
    bit planes ({!Rel.Batch}), the static prefix — shared across the
    batch by the compatibility contract — is broadcast from [xs.(0)]'s
    cache entry, and the axioms are applied in Figure 3 order with the
    surviving-plane mask shrinking after each — decided candidates drop
    out of the remaining work.  Bit [c] of the result is set iff bit
    [c] of [mask] is and [xs.(c)] is consistent ({!Axioms.consistent}).
    With [~coherent], the sc-per-variable axiom is taken as already
    decided (the caller ran the sc-per-location prefilter, which is the
    same check). *)
val consistent_mask : coherent:bool -> mask:int -> Exec.t array -> int
