(** The fundamental law of RCU (paper, Section 4.1) and Theorem 1.

    The law — "read-side critical sections cannot span grace periods" —
    is formalised with a precedes function [F] that chooses, for every
    (RSCS, GP) pair, which precedes the other; each choice induces an
    rcu-fence relation treated like a strong fence inside an enlarged
    propagates-before relation pb(F).  An execution satisfies the law iff
    some [F] makes pb(F) acyclic.

    Theorem 1 states the law is equivalent to the Pb + RCU axioms; this
    module checks the equivalence extensionally per execution. *)

type side = Rscs_first | Gp_first

(** The (RSCS, GP) pairs of an execution: outermost critical sections
    (as (lock, unlock) event pairs) crossed with grace-period events. *)
val pairs : Relations.ctx -> ((int * int) * int) list

(** The rcu-fence relation induced by one pair under one choice. *)
val rcu_fence_one : Relations.ctx -> (int * int) * int -> side -> Rel.t

(** [pb_of c choices] is pb(F):
    [prop ; (strong-fence | rcu-fence(F)) ; hb^*]. *)
val pb_of : Relations.ctx -> (((int * int) * int) * side) list -> Rel.t

(** Every precedes function, as an explicit choice list.  Raises
    [Invalid_argument] beyond 16 pairs (2^16 functions). *)
val all_choices :
  ((int * int) * int) list -> (((int * int) * int) * side) list list

(** A precedes function making pb(F) acyclic, if any. *)
val law_witness :
  Relations.ctx -> (((int * int) * int) * side) list option

(** Does the execution satisfy the fundamental law of RCU? *)
val satisfies_law_ctx : Relations.ctx -> bool

val satisfies_law : Exec.t -> bool

(** Theorem 1 on one execution: Pb ∧ RCU axioms ⟺ fundamental law. *)
val theorem1_holds_ctx : Relations.ctx -> bool

val theorem1_holds : Exec.t -> bool
