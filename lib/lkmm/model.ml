(* The LK memory model as a checkable model: Figure 3's axioms plus the RCU
   axiom of Figure 12, over the relations of Figure 8. *)

let name = "LK"
let consistent = Axioms.consistent
