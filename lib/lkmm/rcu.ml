(* The fundamental law of RCU (paper, Section 4.1): "read-side critical
   sections cannot span grace periods", formalised with a precedes function
   F choosing, for every (RSCS, GP) pair, which precedes the other.  A
   candidate execution satisfies the law iff some choice of F makes the
   enlarged propagates-before relation pb(F) acyclic.

   Theorem 1 states this is equivalent to the Pb + RCU axioms; the
   equivalence is checked extensionally by the test suite and the Theorem-1
   bench over every candidate execution of the battery. *)

module Iset = Rel.Iset

type side = Rscs_first | Gp_first

(* The (RSCS, GP) pairs of an execution: outermost critical sections from
   crit, grace periods from the sync-rcu events. *)
let pairs (c : Relations.ctx) =
  let rscses = Rel.to_list c.crit in
  let gps = Iset.to_list c.sync in
  List.concat_map (fun lu -> List.map (fun s -> (lu, s)) gps) rscses

(* rcu-fence(F) for one (RSCS, GP) pair under a given choice. *)
let rcu_fence_one (c : Relations.ctx) ((l, u), s) side =
  let po = c.x.po in
  let universe = c.x.universe in
  let preds e =
    Iset.filter (fun e1 -> Rel.mem e1 e po) universe
  in
  let succs_opt e =
    Iset.add e (Iset.filter (fun e2 -> Rel.mem e e2 po) universe)
  in
  match side with
  | Rscs_first ->
      (* e1 po-before u, e2 is s or po-after s *)
      Rel.cartesian (preds u) (succs_opt s)
  | Gp_first ->
      (* e1 po-before s, e2 is l or po-after l *)
      Rel.cartesian (preds s) (succs_opt l)

(* pb(F) := prop ; (strong-fence | rcu-fence(F)) ; hb*  *)
let pb_of (c : Relations.ctx) choices =
  let rcu_fence =
    List.fold_left
      (fun acc (pair, side) -> Rel.union acc (rcu_fence_one c pair side))
      Rel.empty choices
  in
  let star r = Rel.reflexive_transitive_closure ~universe:c.x.universe r in
  Rel.seq c.prop (Rel.seq (Rel.union c.strong_fence rcu_fence) (star c.hb))

(* Enumerate precedes functions.  With n (RSCS, GP) pairs there are 2^n
   choices; executions in practice have at most a few pairs.  A guard
   refuses pathological inputs rather than hanging. *)
let all_choices pairs =
  let n = List.length pairs in
  if n > 16 then
    invalid_arg "Rcu.satisfies_law: too many (RSCS, GP) pairs to enumerate";
  let rec go = function
    | [] -> [ [] ]
    | p :: rest ->
        let tails = go rest in
        List.concat_map
          (fun t -> [ (p, Rscs_first) :: t; (p, Gp_first) :: t ])
          tails
  in
  go pairs

(* A witness precedes function making pb(F) acyclic, if any. *)
let law_witness (c : Relations.ctx) =
  List.find_opt
    (fun choices -> Rel.is_acyclic (pb_of c choices))
    (all_choices (pairs c))

(* Does the execution satisfy the fundamental law of RCU? *)
let satisfies_law_ctx c = law_witness c <> None
let satisfies_law x = satisfies_law_ctx (Relations.make x)

(* Theorem 1 (RCU guarantee), checked on one execution: the Pb and RCU
   axioms hold iff the fundamental law does. *)
let theorem1_holds_ctx (c : Relations.ctx) =
  let axioms = Axioms.holds c Axioms.Pb && Axioms.holds c Axioms.Rcu in
  let law = satisfies_law_ctx c in
  axioms = law

let theorem1_holds x = theorem1_holds_ctx (Relations.make x)
