(** The axioms of the LK model: Figure 3 of the paper plus the RCU axiom
    of Figure 12.

    A candidate execution is allowed by the model iff all five hold:
    - {b Scpv} (sc-per-variable): [acyclic(po-loc | com)] — one variable
      behaves as under SC;
    - {b At} (atomicity): [empty(rmw & (fre ; coe))] — no intervening
      write between the read and write of a read-modify-write;
    - {b Hb}: [acyclic(hb)] — the causality order;
    - {b Pb}: [acyclic(pb)] — propagation constrained by strong fences;
    - {b Rcu}: [irreflexive(rcu-path)] — critical sections cannot span
      grace periods. *)

type name = Scpv | At | Hb | Pb | Rcu

(** The five axioms, in Figure 3 order (RCU last). *)
val all : name list

val to_string : name -> string

(** [relation c a] is the relation axiom [a] constrains in context [c]
    (for [At], the intersection that must be empty). *)
val relation : Relations.ctx -> name -> Rel.t

(** [holds c a] decides axiom [a] on the execution of [c]. *)
val holds : Relations.ctx -> name -> bool

(** Axioms violated by the execution, in order; empty iff consistent. *)
val violations : Relations.ctx -> name list

val consistent_ctx : Relations.ctx -> bool

(** [consistent x] builds the Figure 8 relations and checks all axioms —
    the LK model's consistency predicate. *)
val consistent : Exec.t -> bool
