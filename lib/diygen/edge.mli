(** The relaxation-edge vocabulary of the diy-style generator (Section 5).

    An edge of a cycle constrains the directions of its endpoint events,
    whether they access the same location and whether they sit on the same
    thread; a cycle of edges is realised as a litmus test whose condition
    pins exactly the execution exhibiting the cycle. *)

type dir = R | W

type fence = Mb | Wmb | Rmb | Sync

type dep = Addr | Data | Ctrl

type t =
  | Rfe  (** external reads-from: W to R, same location, new thread *)
  | Fre  (** external from-reads: R to W, same location, new thread *)
  | Coe  (** external coherence: W to W, same location, new thread *)
  | Pod of dir * dir  (** program order, different location *)
  | Pos of dir * dir  (** program order, same location *)
  | Fenced of fence * dir * dir  (** program order with a fence between *)
  | Dp of dep * dir  (** dependency out of a read, different location *)
  | Po_rel of dir  (** program order into a store-release *)
  | Acq_po of dir  (** program order out of a load-acquire *)

(** Direction required of the edge's source event, if constrained. *)
val src_dir : t -> dir option

(** Direction required of the edge's target event, if constrained. *)
val tgt_dir : t -> dir option

(** Communication edges change thread. *)
val external_ : t -> bool

(** Does the edge move to a fresh location? *)
val diff_loc : t -> bool

val dir_to_string : dir -> string
val fence_to_string : fence -> string
val dep_to_string : dep -> string

(** diy-style edge name, e.g. [PodWR], [MbdWR], [DpAddrdR]. *)
val to_string : t -> string

(** The full vocabulary used by sweeps. *)
val vocabulary : t list

(** [vocabulary] without the synchronize_rcu edges (cheaper sweeps). *)
val core_vocabulary : t list
