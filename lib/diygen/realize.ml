(* Realising a cycle as a litmus test (the heart of diy): walk the cycle
   assigning threads, locations and values; emit LK primitives per thread;
   derive the final condition that pins exactly the cycle's execution.

   Every generated test is validated: its condition must identify at least
   one candidate execution (otherwise the cycle was degenerate and the
   test is dropped). *)

open Litmus.Ast

type event = {
  ix : int;
  thread : int;
  loc : int;
  dir : Edge.dir;
  acquire : bool; (* source of an Acq_po edge *)
  release : bool; (* target of a Po_rel edge *)
  value : int option; (* for W: value written; for R: value read *)
}

let loc_name i = Printf.sprintf "l%d" i

(* Walk the cycle: event i sits between edge (i-1) and edge i. *)
let events_of_cycle cycle =
  let n = List.length cycle in
  let edges = Array.of_list cycle in
  let n_threads = Cycle.n_external cycle in
  let d = Cycle.n_diff_loc cycle in
  let n_locs = max d 1 in
  (* The canonical rotation may not start at a thread boundary; rotate so
     the wrap edge is external. *)
  let dir_of i =
    (* direction of event i from surrounding edges *)
    let prev = edges.((i + n - 1) mod n) and next = edges.(i) in
    match (Edge.tgt_dir prev, Edge.src_dir next) with
    | Some a, Some b when a = b -> Some a
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
    | Some _, Some _ -> None (* junction mismatch *)
  in
  let rec build i thread loc acc =
    if i = n then List.rev acc
    else
      match dir_of i with
      | None -> raise Exit
      | Some dir ->
          let e =
            {
              ix = i;
              thread;
              loc;
              dir;
              acquire =
                (match edges.(i) with Edge.Acq_po _ -> true | _ -> false);
              release =
                (match edges.((i + n - 1) mod n) with
                | Edge.Po_rel _ -> true
                | _ -> false);
              value = None;
            }
          in
          let thread' =
            if Edge.external_ edges.(i) then thread + 1 else thread
          in
          let loc' =
            if Edge.diff_loc edges.(i) then (loc + 1) mod n_locs else loc
          in
          build (i + 1) thread' loc' (e :: acc)
  in
  (* find a rotation whose wrap edge is external *)
  let rec find_rot k c =
    if k = 0 then None
    else
      match List.rev c with
      | last :: _ when Edge.external_ last -> Some c
      | _ -> (
          match c with
          | e :: rest -> find_rot (k - 1) (rest @ [ e ])
          | [] -> None)
  in
  match find_rot n cycle with
  | None -> None
  | Some rotated -> (
      let edges_r = Array.of_list rotated in
      Array.blit edges_r 0 edges 0 n;
      try
        let evs = build 0 0 0 [] in
        (* wrap edge must close threads and locations *)
        let first = List.hd evs and last = List.nth evs (n - 1) in
        let wrap = edges.(n - 1) in
        let loc_closes =
          if Edge.diff_loc wrap then (last.loc + 1) mod (max d 1) = first.loc
          else last.loc = first.loc
        in
        if (not loc_closes) || n_threads < 2 then None
        else Some (rotated, evs, n_threads)
      with Exit -> None)

(* Assign values: writes to each location get 1, 2, ... in walk order
   (which is the intended coherence order); each read is pinned either by
   its incoming Rfe edge or by its outgoing Fre edge. *)
let assign_values cycle evs =
  let n = List.length evs in
  let edges = Array.of_list cycle in
  let arr = Array.of_list evs in
  let next_val = Hashtbl.create 4 in
  Array.iteri
    (fun i e ->
      if e.dir = Edge.W then begin
        let v = 1 + Option.value ~default:0 (Hashtbl.find_opt next_val e.loc) in
        Hashtbl.replace next_val e.loc v;
        arr.(i) <- { e with value = Some v }
      end)
    arr;
  (* intended co order per location, in walk order *)
  let writes_of loc =
    Array.to_list arr
    |> List.filter (fun e -> e.dir = Edge.W && e.loc = loc)
  in
  let ok = ref true in
  Array.iteri
    (fun i e ->
      if e.dir = Edge.R then begin
        let incoming = edges.((i + n - 1) mod n) in
        let outgoing = edges.(i) in
        let from_rfe =
          match incoming with
          | Edge.Rfe ->
              let src = arr.((i + n - 1) mod n) in
              src.value
          | _ -> None
        in
        let from_fre =
          match outgoing with
          | Edge.Fre ->
              (* reads the co-predecessor of the target write *)
              let tgt = arr.((i + 1) mod n) in
              let ws = writes_of e.loc in
              let rec pred last = function
                | [] -> Some last
                | w :: rest ->
                    if w.ix = tgt.ix then Some last
                    else pred (Option.value ~default:0 w.value) rest
              in
              pred 0 ws
          | _ -> None
        in
        match (from_rfe, from_fre) with
        | Some a, Some b when a <> b -> ok := false
        | Some a, _ -> arr.(i) <- { e with value = Some a }
        | None, Some b -> arr.(i) <- { e with value = Some b }
        | None, None -> ok := false (* unconstrained read: degenerate *)
      end)
    arr;
  if !ok then Some (Array.to_list arr) else None

(* Emit the instructions of one thread; returns (instrs, condition atoms). *)
let emit_thread cycle all_events thread =
  let edges = Array.of_list cycle in
  let n = List.length all_events in
  let evs = List.filter (fun e -> e.thread = thread) all_events in
  let reg e = Printf.sprintf "r%d" e.ix in
  let instrs = ref [] and atoms = ref [] in
  let emit i = instrs := !instrs @ [ i ] in
  List.iter
    (fun e ->
      let loc = loc_name e.loc in
      let incoming = edges.((e.ix + n - 1) mod n) in
      (* dependency realisation from the previous event's register *)
      let dep_from =
        match incoming with
        | Edge.Dp (k, _) when e.thread = (List.nth all_events ((e.ix + n - 1) mod n)).thread ->
            Some (k, reg (List.nth all_events ((e.ix + n - 1) mod n)))
        | _ -> None
      in
      let zero_of r = Binop (Bxor, Reg r, Reg r) in
      (match (e.dir, dep_from) with
      | Edge.R, Some (Edge.Addr, r) ->
          let rp = Printf.sprintf "rp%d" e.ix in
          emit (Assign (rp, Binop (Add, zero_of r, Addr loc)));
          emit
            (Read
               ( (if e.acquire then R_acquire else R_once),
                 reg e,
                 Deref rp ));
          atoms := Reg_eq (e.thread, reg e, VInt (Option.get e.value)) :: !atoms
      | Edge.R, _ ->
          emit
            (Read ((if e.acquire then R_acquire else R_once), reg e, Sym loc));
          atoms := Reg_eq (e.thread, reg e, VInt (Option.get e.value)) :: !atoms
      | Edge.W, Some (Edge.Addr, r) ->
          let rp = Printf.sprintf "rp%d" e.ix in
          emit (Assign (rp, Binop (Add, zero_of r, Addr loc)));
          emit
            (Write
               ( (if e.release then W_release else W_once),
                 Deref rp,
                 Const (Option.get e.value) ))
      | Edge.W, Some (Edge.Data, r) ->
          emit
            (Write
               ( (if e.release then W_release else W_once),
                 Sym loc,
                 Binop (Add, zero_of r, Const (Option.get e.value)) ))
      | Edge.W, Some (Edge.Ctrl, r) ->
          (* the branch tests the value the cycle pins for the source read *)
          let src = List.nth all_events ((e.ix + n - 1) mod n) in
          emit
            (If
               ( Binop (Eq, Reg r, Const (Option.value ~default:0 src.value)),
                 [
                   Write
                     ( (if e.release then W_release else W_once),
                       Sym loc,
                       Const (Option.get e.value) );
                 ],
                 [] ))
      | Edge.W, _ ->
          emit
            (Write
               ( (if e.release then W_release else W_once),
                 Sym loc,
                 Const (Option.get e.value) )));
      (* fences between this event and the next one on the same thread *)
      (match edges.(e.ix) with
      | Edge.Fenced (Edge.Mb, _, _) -> emit (Fence F_mb)
      | Edge.Fenced (Edge.Wmb, _, _) -> emit (Fence F_wmb)
      | Edge.Fenced (Edge.Rmb, _, _) -> emit (Fence F_rmb)
      | Edge.Fenced (Edge.Sync, _, _) -> emit (Fence F_sync_rcu)
      | _ -> ()))
    evs;
  (!instrs, !atoms)

(* Condition atoms also pin the final value of multi-write locations,
   fixing the intended coherence order. *)
let co_atoms all_events =
  let locs = List.sort_uniq compare (List.map (fun e -> e.loc) all_events) in
  List.filter_map
    (fun loc ->
      let ws = List.filter (fun e -> e.dir = Edge.W && e.loc = loc) all_events in
      match List.rev ws with
      | last :: _ :: _ -> Some (Mem_eq (loc_name loc, VInt (Option.get last.value)))
      | _ -> None)
    locs

let test_of_cycle cycle =
  match events_of_cycle cycle with
  | None -> None
  | Some (rotated, evs, n_threads) -> (
      match assign_values rotated evs with
      | None -> None
      | Some evs ->
          let per_thread =
            List.init n_threads (fun t -> emit_thread rotated evs t)
          in
          let threads = List.map fst per_thread in
          let atoms = List.concat_map snd per_thread @ co_atoms evs in
          let cond =
            List.fold_left
              (fun acc a -> And (acc, Atom a))
              Ctrue atoms
          in
          let test =
            {
              name = Cycle.name rotated;
              init = [];
              threads = Array.of_list threads;
              quant = Q_exists;
              cond;
            }
          in
          (* validation: the pinned outcome must exist among the candidate
             executions, else the realisation was degenerate *)
          let candidates = Exec.of_test test in
          if List.exists Exec.satisfies_cond candidates then Some test
          else None)
