(* A diy-style litmus-test generator (Section 5): enumerate cycles of
   relaxation edges of increasing size and realise each as a litmus test.

   - {!Edge}: the relaxation vocabulary (communications, program order,
     fences, dependencies, release/acquire);
   - {!Cycle}: enumeration, validity, canonicalisation;
   - {!Realize}: cycle -> litmus test, with self-validation. *)

module Edge = Edge
module Cycle = Cycle
module Realize = Realize

(** [generate ?vocabulary n] is every valid canonical cycle of length [n]
    realised as a litmus test. *)
let generate ?vocabulary n =
  List.filter_map Realize.test_of_cycle (Cycle.enumerate ?vocabulary n)

(* Build one junction-consistent random cycle of length [n], so most
   candidates are sane; full validity is still checked by Cycle.sane /
   Realize.  Shared by {!sample} and the deterministic per-seed
   generation below. *)
let random_cycle ~vocabulary ~rng n =
  let pick_from l = List.nth l (Random.State.int rng (List.length l)) in
  let rec go acc prev k =
    if k = 0 then Some (List.rev acc)
    else
      let compat =
        List.filter
          (fun e ->
            match (prev, Edge.src_dir e) with
            | Some d, Some d' -> d = d'
            | _ -> true)
          vocabulary
      in
      match compat with
      | [] -> None
      | _ ->
          let e = pick_from compat in
          go (e :: acc) (Edge.tgt_dir e) (k - 1)
  in
  go [] None n

(** [sample ?vocabulary ~rng ~count n] realises up to [count] random
    cycles of length [n]; used for sweeps where full enumeration is too
    large. *)
let sample ?(vocabulary = Edge.vocabulary) ~rng ~count n =
  let pick () = random_cycle ~vocabulary ~rng n in
  let seen = Hashtbl.create 64 in
  let rec go acc tries =
    if List.length acc >= count || tries > count * 200 then List.rev acc
    else
      match pick () with
      | Some c when Cycle.sane c -> (
          let key = Cycle.name (Cycle.canonical c) in
          if Hashtbl.mem seen key then go acc (tries + 1)
          else begin
            Hashtbl.replace seen key ();
            match Realize.test_of_cycle c with
            | Some t -> go (t :: acc) (tries + 1)
            | None -> go acc (tries + 1)
          end)
      | _ -> go acc (tries + 1)
  in
  go [] 0

(* ------------------------------------------------------------------ *)
(* Deterministic per-seed generation (campaign shards)                  *)
(* ------------------------------------------------------------------ *)

(** [test_of_seed ?vocabulary ~size seed] is the test seed [seed]
    denotes at cycle length [size], or [None] when that seed's random
    walk does not produce a realisable cycle.

    The binding seed -> test is a pure function: the RNG is seeded from
    [(size, seed)] alone, the walk consumes it deterministically, and
    the cycle is canonicalised before realisation, so the same seed
    always yields the byte-identical test — across calls, processes and
    machines.  This is the property campaign shards depend on: a shard
    is just a (config, seed range) pair, and any worker can regenerate
    its tests on demand instead of reading 10^6 files from disk.

    Distinct seeds may collide on the same canonical cycle (the walk is
    random, not a bijection); campaign journals key results by seed, so
    collisions are harmless and deduplicated only where display wants
    unique test names. *)
let test_of_seed ?(vocabulary = Edge.vocabulary) ~size seed =
  let rng = Random.State.make [| 0x6c6b6d6d; size; seed |] in
  match random_cycle ~vocabulary ~rng size with
  | Some c when Cycle.sane c -> Realize.test_of_cycle (Cycle.canonical c)
  | _ -> None

(** [generate_range ?vocabulary ~size lo hi] — every [(seed, test)] for
    seeds in [\[lo, hi)], in seed order; seeds whose walk fails realise
    nothing and are skipped. *)
let generate_range ?vocabulary ~size lo hi =
  let rec go acc s =
    if s >= hi then List.rev acc
    else
      match test_of_seed ?vocabulary ~size s with
      | Some t -> go ((s, t) :: acc) (s + 1)
      | None -> go acc (s + 1)
  in
  go [] lo
