(* A diy-style litmus-test generator (Section 5): enumerate cycles of
   relaxation edges of increasing size and realise each as a litmus test.

   - {!Edge}: the relaxation vocabulary (communications, program order,
     fences, dependencies, release/acquire);
   - {!Cycle}: enumeration, validity, canonicalisation;
   - {!Realize}: cycle -> litmus test, with self-validation. *)

module Edge = Edge
module Cycle = Cycle
module Realize = Realize

(** [generate ?vocabulary n] is every valid canonical cycle of length [n]
    realised as a litmus test. *)
let generate ?vocabulary n =
  List.filter_map Realize.test_of_cycle (Cycle.enumerate ?vocabulary n)

(** [sample ?vocabulary ~rng ~count n] realises up to [count] random
    cycles of length [n]; used for sweeps where full enumeration is too
    large. *)
let sample ?(vocabulary = Edge.vocabulary) ~rng ~count n =
  (* build junction-consistent cycles edge by edge, so most candidates are
     sane; full validity is still checked by Cycle.sane / Realize *)
  let pick_from l = List.nth l (Random.State.int rng (List.length l)) in
  let pick () =
    let rec go acc prev k =
      if k = 0 then Some (List.rev acc)
      else
        let compat =
          List.filter
            (fun e ->
              match (prev, Edge.src_dir e) with
              | Some d, Some d' -> d = d'
              | _ -> true)
            vocabulary
        in
        match compat with
        | [] -> None
        | _ ->
            let e = pick_from compat in
            go (e :: acc) (Edge.tgt_dir e) (k - 1)
    in
    go [] None n
  in
  let seen = Hashtbl.create 64 in
  let rec go acc tries =
    if List.length acc >= count || tries > count * 200 then List.rev acc
    else
      match pick () with
      | Some c when Cycle.sane c -> (
          let key = Cycle.name (Cycle.canonical c) in
          if Hashtbl.mem seen key then go acc (tries + 1)
          else begin
            Hashtbl.replace seen key ();
            match Realize.test_of_cycle c with
            | Some t -> go (t :: acc) (tries + 1)
            | None -> go acc (tries + 1)
          end)
      | _ -> go acc (tries + 1)
  in
  go [] 0
