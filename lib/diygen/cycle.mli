(** Cycles of relaxation edges: validity, canonical forms, enumeration.

    A candidate cycle must have agreeing event directions at every
    junction (including the wrap-around), at least two external
    (communication) edges, and a location assignment that can close. *)

(** Do two consecutive edges agree on the direction of their shared
    event? *)
val junction_ok : Edge.t -> Edge.t -> bool

val dirs_ok : Edge.t list -> bool
val n_external : Edge.t list -> int
val n_diff_loc : Edge.t list -> int
val locs_ok : Edge.t list -> bool

(** [sane c] holds iff [c] passes every structural check and is worth
    realising. *)
val sane : Edge.t list -> bool

(** All rotations of a cycle (a cycle has no distinguished start). *)
val rotations : Edge.t list -> Edge.t list list

(** The lexicographically least rotation — the representative used for
    deduplication. *)
val canonical : Edge.t list -> Edge.t list

val is_canonical : Edge.t list -> bool

(** [enumerate ?vocabulary n] is every sane, canonical cycle of length
    [n].  Exponential in [n]; use {!Diygen.sample} for large sizes. *)
val enumerate : ?vocabulary:Edge.t list -> int -> Edge.t list list

(** diy-style name: edges joined with [+], e.g. [PodWW+Rfe+PodRR+Fre]. *)
val name : Edge.t list -> string
