(* The relaxation-edge vocabulary of the diy7 generator (Section 5:
   "systematically generate thousands of tests with cycles of edges of
   increasing size").  An edge constrains the directions of its two
   endpoint events, whether they access the same location, and whether
   they sit on the same thread. *)

type dir = R | W

type fence = Mb | Wmb | Rmb | Sync

type dep = Addr | Data | Ctrl

type t =
  | Rfe (* external reads-from: W -> R, same location, new thread *)
  | Fre (* external from-reads: R -> W, same location, new thread *)
  | Coe (* external coherence: W -> W, same location, new thread *)
  | Pod of dir * dir (* program order, different location *)
  | Pos of dir * dir (* program order, same location *)
  | Fenced of fence * dir * dir (* program order with a fence between *)
  | Dp of dep * dir (* dependency from a read, different location *)
  | Po_rel of dir (* program order into a store-release *)
  | Acq_po of dir (* program order out of a load-acquire *)

let src_dir = function
  | Rfe | Coe -> Some W
  | Fre -> Some R
  | Pod (d, _) | Pos (d, _) | Fenced (_, d, _) -> Some d
  | Dp _ -> Some R
  | Po_rel d -> Some d
  | Acq_po _ -> Some R

let tgt_dir = function
  | Rfe -> Some R
  | Fre | Coe -> Some W
  | Pod (_, d) | Pos (_, d) | Fenced (_, _, d) -> Some d
  | Dp (_, d) -> Some d
  | Po_rel _ -> Some W
  | Acq_po d -> Some d

let external_ = function Rfe | Fre | Coe -> true | _ -> false

(* Does the edge change location?  External communications stay on one
   location; all internal edges except Pos move to a fresh one. *)
let diff_loc = function
  | Rfe | Fre | Coe | Pos _ -> false
  | Pod _ | Fenced _ | Dp _ | Po_rel _ | Acq_po _ -> true

let dir_to_string = function R -> "R" | W -> "W"

let fence_to_string = function
  | Mb -> "Mb"
  | Wmb -> "Wmb"
  | Rmb -> "Rmb"
  | Sync -> "Sync"

let dep_to_string = function Addr -> "Addr" | Data -> "Data" | Ctrl -> "Ctrl"

let to_string = function
  | Rfe -> "Rfe"
  | Fre -> "Fre"
  | Coe -> "Coe"
  | Pod (a, b) -> Printf.sprintf "Pod%s%s" (dir_to_string a) (dir_to_string b)
  | Pos (a, b) -> Printf.sprintf "Pos%s%s" (dir_to_string a) (dir_to_string b)
  | Fenced (f, a, b) ->
      Printf.sprintf "%sd%s%s" (fence_to_string f) (dir_to_string a)
        (dir_to_string b)
  | Dp (d, b) -> Printf.sprintf "Dp%sd%s" (dep_to_string d) (dir_to_string b)
  | Po_rel a -> Printf.sprintf "Rel%sW" (dir_to_string a)
  | Acq_po b -> Printf.sprintf "AcqR%s" (dir_to_string b)

(* The default vocabulary used by sweeps; Fenced Wmb/Rmb come with their
   direction constraints built in. *)
let vocabulary =
  let dirs = [ R; W ] in
  let pods = List.concat_map (fun a -> List.map (fun b -> Pod (a, b)) dirs) dirs in
  let mbs =
    List.concat_map (fun a -> List.map (fun b -> Fenced (Mb, a, b)) dirs) dirs
  in
  let syncs =
    List.concat_map
      (fun a -> List.map (fun b -> Fenced (Sync, a, b)) dirs)
      dirs
  in
  [ Rfe; Fre; Coe ] @ pods
  @ [ Fenced (Wmb, W, W); Fenced (Rmb, R, R) ]
  @ mbs @ syncs
  @ [ Dp (Addr, R); Dp (Addr, W); Dp (Data, W); Dp (Ctrl, W) ]
  @ [ Po_rel R; Po_rel W; Acq_po R; Acq_po W ]

(* A cheaper vocabulary for big sweeps (no Sync edges). *)
let core_vocabulary =
  List.filter (function Fenced (Sync, _, _) -> false | _ -> true) vocabulary
