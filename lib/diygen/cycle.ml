(* Cycle enumeration and validity: a candidate cycle is a sequence of edges
   whose endpoint directions agree at every junction, with at least two
   external (communication) edges, location assignment that closes, and a
   canonical rotation to avoid duplicates. *)

let junction_ok e1 e2 =
  match (Edge.tgt_dir e1, Edge.src_dir e2) with
  | Some d1, Some d2 -> d1 = d2
  | _ -> true

(* Directions must agree around the whole cycle, including the wrap. *)
let dirs_ok cycle =
  match cycle with
  | [] -> false
  | first :: _ ->
      let rec go = function
        | [ last ] -> junction_ok last first
        | e1 :: (e2 :: _ as rest) -> junction_ok e1 e2 && go rest
        | [] -> false
      in
      go cycle

let n_external cycle = List.length (List.filter Edge.external_ cycle)
let n_diff_loc cycle = List.length (List.filter Edge.diff_loc cycle)

(* Location closure: locations advance modulo the number of diff-loc edges;
   with exactly one such edge its endpoints would collapse into the same
   location, so demand zero or at least two. *)
let locs_ok cycle =
  let d = n_diff_loc cycle in
  d = 0 || d >= 2

(* Avoid degenerate tests: two adjacent external edges of the same kind on
   the same location collapse; also a same-loc po edge next to a com edge
   is fine, so only basic checks here — the generator validates the final
   test against its candidate executions anyway. *)
let sane cycle = dirs_ok cycle && n_external cycle >= 2 && locs_ok cycle

(* Canonical representative of a cycle up to rotation. *)
let rotations cycle =
  let n = List.length cycle in
  let rec rot k l =
    if k = 0 then l
    else match l with [] -> [] | x :: rest -> rot (k - 1) (rest @ [ x ])
  in
  List.init n (fun k -> rot k cycle)

let canonical cycle =
  let key c = String.concat "+" (List.map Edge.to_string c) in
  let best =
    List.fold_left
      (fun acc c -> if key c < key acc then c else acc)
      cycle (rotations cycle)
  in
  best

let is_canonical cycle = canonical cycle = cycle

(* All canonical, sane cycles of the given length over a vocabulary. *)
let enumerate ?(vocabulary = Edge.vocabulary) n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun e -> e :: rest) vocabulary)
        (go (k - 1))
  in
  List.filter (fun c -> sane c && is_canonical c) (go n)

let name cycle = String.concat "+" (List.map Edge.to_string cycle)
