(* A small CDCL core in the MiniSat lineage: two-watched-literal unit
   propagation, first-UIP learning with activity-ordered branching and
   phase saving, Luby-sequence restarts.  Learned clauses are kept for
   the lifetime of the instance — callers solve one instance per
   object, and the conflict budget (enforced through [on_conflict])
   bounds growth. *)

type lit = int
type outcome = Sat | Unsat

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;
}

(* A clause is its literal array; positions 0 and 1 are the watched
   literals (clauses of length 1 are asserted at level 0 and never
   stored). *)
type clause = lit array

(* Growable array of clauses (a watch list). *)
type vec = { mutable data : clause array; mutable size : int }

let vec_make () = { data = [||]; size = 0 }

let vec_push v c =
  if v.size = Array.length v.data then begin
    let cap = max 4 (2 * Array.length v.data) in
    let d = Array.make cap c in
    Array.blit v.data 0 d 0 v.size;
    v.data <- d
  end;
  v.data.(v.size) <- c;
  v.size <- v.size + 1

type t = {
  mutable nvars : int;
  (* per-variable state, 1-based; index 0 unused *)
  mutable value : int array; (* 0 unassigned, 1 true, -1 false *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array; (* scratch for analyze *)
  (* per-literal watch lists, indexed by [lidx] *)
  mutable watches : vec array;
  (* assignment trail *)
  mutable trail : lit array;
  mutable trail_len : int;
  mutable trail_lim : int array; (* trail length at each decision level *)
  mutable dlevel : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;
  mutable learnts : clause list;
  stats : stats;
}

let lidx l = (2 * abs l) + if l > 0 then 0 else 1

let create () =
  {
    nvars = 0;
    value = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 None;
    activity = Array.make 16 0.;
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    watches = Array.init 32 (fun _ -> vec_make ());
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = Array.make 17 0;
    dlevel = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    learnts = [];
    stats =
      { conflicts = 0; decisions = 0; propagations = 0; restarts = 0;
        learned = 0 };
  }

let grow_int a n d =
  if Array.length a > n then a
  else begin
    let b = Array.make (max (n + 1) (2 * Array.length a)) d in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_any (type e) (a : e array) n (d : e) : e array =
  if Array.length a > n then a
  else begin
    let b = Array.make (max (n + 1) (2 * Array.length a)) d in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  t.value <- grow_int t.value v 0;
  t.level <- grow_int t.level v 0;
  t.reason <- grow_any t.reason v None;
  t.activity <- grow_any t.activity v 0.;
  t.phase <- grow_any t.phase v false;
  t.seen <- grow_any t.seen v false;
  t.trail <- grow_int t.trail v 0;
  t.trail_lim <- grow_int t.trail_lim (v + 1) 0;
  if Array.length t.watches <= lidx (-v) then begin
    let b = Array.init (max (lidx (-v) + 1) (2 * Array.length t.watches))
        (fun i -> if i < Array.length t.watches then t.watches.(i)
                  else vec_make ())
    in
    t.watches <- b
  end;
  v

let nvars t = t.nvars

(* Value of a literal under the current assignment: 1 / -1 / 0. *)
let val_lit t l = if l > 0 then t.value.(l) else - t.value.(-l)

let enqueue t l reason =
  let v = abs l in
  t.value.(v) <- (if l > 0 then 1 else -1);
  t.level.(v) <- t.dlevel;
  t.reason.(v) <- reason;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1;
  t.stats.propagations <- t.stats.propagations + 1

let watch_clause t c =
  vec_push t.watches.(lidx c.(0)) c;
  vec_push t.watches.(lidx c.(1)) c

let add_clause t lits =
  if t.ok then begin
    (* simplify under the level-0 assignment *)
    let lits = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.mem (-l) lits || val_lit t l = 1) lits
    in
    if not taut then begin
      let lits = List.filter (fun l -> val_lit t l <> -1) lits in
      List.iter (fun l -> assert (abs l >= 1 && abs l <= t.nvars)) lits;
      match lits with
      | [] -> t.ok <- false
      | [ l ] -> enqueue t l None
      | _ -> watch_clause t (Array.of_list lits)
    end
  end

(* Unit propagation.  Returns the conflicting clause, if any. *)
let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < t.trail_len do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    (* visit the clauses watching ¬p, which just became false *)
    let ws = t.watches.(lidx (-p)) in
    let n = ws.size in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = ws.data.(!i) in
      incr i;
      if c.(0) = -p then begin
        c.(0) <- c.(1);
        c.(1) <- -p
      end;
      if val_lit t c.(0) = 1 then begin
        ws.data.(!j) <- c;
        incr j
      end
      else begin
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && val_lit t c.(!k) = -1 do incr k done;
        if !k < len then begin
          (* found a new watch; the clause leaves this list *)
          c.(1) <- c.(!k);
          c.(!k) <- -p;
          vec_push t.watches.(lidx c.(1)) c
        end
        else begin
          ws.data.(!j) <- c;
          incr j;
          if val_lit t c.(0) = -1 then begin
            (* conflict: keep the remaining watchers, stop *)
            while !i < n do
              ws.data.(!j) <- ws.data.(!i);
              incr j;
              incr i
            done;
            t.qhead <- t.trail_len;
            confl := Some c
          end
          else enqueue t c.(0) (Some c)
        end
      end
    done;
    ws.size <- !j
  done;
  !confl

let rescale t =
  for v = 1 to t.nvars do
    t.activity.(v) <- t.activity.(v) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then rescale t

let decay t = t.var_inc <- t.var_inc /. 0.95

(* First-UIP conflict analysis: resolve the conflict clause backwards
   along the trail until exactly one literal of the current decision
   level remains.  Returns the learned clause (asserting literal first)
   and the backjump level. *)
let analyze t confl =
  let learnt = ref [] in
  let btlevel = ref 0 in
  let counter = ref 0 in
  let p = ref 0 in
  let c = ref confl in
  let idx = ref (t.trail_len - 1) in
  let quit = ref false in
  while not !quit do
    let cl = !c in
    let start = if !p = 0 then 0 else 1 in
    for k = start to Array.length cl - 1 do
      let q = cl.(k) in
      let v = abs q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump t v;
        if t.level.(v) >= t.dlevel then incr counter
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    while not t.seen.(abs t.trail.(!idx)) do decr idx done;
    p := t.trail.(!idx);
    decr idx;
    let v = abs !p in
    t.seen.(v) <- false;
    decr counter;
    if !counter > 0 then
      c := (match t.reason.(v) with Some r -> r | None -> assert false)
    else quit := true
  done;
  List.iter (fun q -> t.seen.(abs q) <- false) !learnt;
  (- !p :: !learnt, !btlevel)

let cancel_until t lvl =
  if t.dlevel > lvl then begin
    for i = t.trail_len - 1 downto t.trail_lim.(lvl) do
      let p = t.trail.(i) in
      let v = abs p in
      t.value.(v) <- 0;
      t.phase.(v) <- p > 0;
      t.reason.(v) <- None
    done;
    t.trail_len <- t.trail_lim.(lvl);
    t.qhead <- t.trail_len;
    t.dlevel <- lvl
  end

let record_learnt t lits btlevel =
  t.stats.learned <- t.stats.learned + 1;
  match lits with
  | [] -> t.ok <- false
  | [ l ] ->
      cancel_until t 0;
      if val_lit t l = -1 then t.ok <- false
      else if val_lit t l = 0 then enqueue t l None
  | first :: _ ->
      cancel_until t btlevel;
      let c = Array.of_list lits in
      (* watch the asserting literal and one literal of the backjump
         level, so the clause wakes up exactly when it must *)
      let k = ref 1 in
      while t.level.(abs c.(!k)) <> btlevel do incr k done;
      let tmp = c.(1) in
      c.(1) <- c.(!k);
      c.(!k) <- tmp;
      watch_clause t c;
      t.learnts <- c :: t.learnts;
      enqueue t first (Some c)

let pick_branch t =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.value.(v) = 0 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec go sz seq i =
    if sz < i + 1 then go ((2 * sz) + 1) (seq + 1) i
    else if sz - 1 = i then 1 lsl seq
    else go ((sz - 1) / 2) (seq - 1) (i mod ((sz - 1) / 2))
  in
  go 1 0 i

let restart_base = 64

let solve ?(on_conflict = fun () -> ()) ?(on_decision = fun () -> ())
    ?(on_learnt = fun _ -> ()) ?(on_restart = fun () -> ()) t =
  if not t.ok then Unsat
  else begin
    let result = ref None in
    let since_restart = ref 0 in
    let limit = ref (restart_base * luby t.stats.restarts) in
    while !result = None do
      match propagate t with
      | Some confl ->
          t.stats.conflicts <- t.stats.conflicts + 1;
          incr since_restart;
          if t.dlevel = 0 then begin
            t.ok <- false;
            result := Some Unsat
          end
          else begin
            on_conflict ();
            let learnt, btlevel = analyze t confl in
            on_learnt (List.length learnt);
            record_learnt t learnt btlevel;
            if not t.ok then result := Some Unsat;
            decay t
          end
      | None ->
          if !since_restart >= !limit && t.dlevel > 0 then begin
            t.stats.restarts <- t.stats.restarts + 1;
            on_restart ();
            since_restart := 0;
            limit := restart_base * luby t.stats.restarts;
            cancel_until t 0
          end
          else begin
            let v = pick_branch t in
            if v = 0 then result := Some Sat
            else begin
              t.stats.decisions <- t.stats.decisions + 1;
              on_decision ();
              t.trail_lim.(t.dlevel) <- t.trail_len;
              t.dlevel <- t.dlevel + 1;
              enqueue t (if t.phase.(v) then v else -v) None
            end
          end
    done;
    match !result with Some r -> r | None -> assert false
  end

let value t v = t.value.(v) = 1
let stats t = t.stats
let decision_level t = t.dlevel
let learnt_clauses t = List.rev_map Array.to_list t.learnts
