(** A dependency-free CDCL SAT solver: two-watched-literal propagation,
    first-UIP conflict-driven clause learning, VSIDS-style variable
    activity with phase saving, and Luby restarts.

    Variables are positive integers allocated with {!new_var}; a literal
    is a non-zero integer whose sign is its polarity (DIMACS
    convention).  Clauses are added up front, then {!solve} is called
    once; the solver is not incremental across calls. *)

type t

type lit = int
(** Non-zero; [v] is variable [v] asserted true, [-v] asserted false. *)

type outcome = Sat | Unsat

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;
}

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable (1-based). *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause over already-allocated variables.  Tautologies are
    dropped, duplicate literals merged; an empty (or all-false) clause
    marks the instance unsatisfiable.  Must be called before {!solve}. *)

val solve :
  ?on_conflict:(unit -> unit) ->
  ?on_decision:(unit -> unit) ->
  ?on_learnt:(int -> unit) ->
  ?on_restart:(unit -> unit) ->
  t ->
  outcome
(** Decide the instance.  [on_conflict]/[on_decision] fire once per
    learned conflict and per branching decision; either may raise to
    abort the search (the exception propagates, e.g. a budget trip).
    [on_learnt] fires with each learned clause's length (after
    [on_conflict], while {!decision_level} still reports the conflict
    level); [on_restart] fires at each Luby restart.  All callbacks
    default to no-ops — instrumentation costs nothing when unused. *)

val value : t -> int -> bool
(** [value t v]: polarity of variable [v] in the model.  Only
    meaningful after {!solve} returned [Sat]. *)

val stats : t -> stats

val decision_level : t -> int
(** Current decision level; from inside [on_conflict]/[on_learnt], the
    level the conflict occurred at. *)

val learnt_clauses : t -> lit list list
(** The clauses learned during {!solve}, for soundness testing: each is
    entailed by the original instance. *)
