(* DPLL with none of the clever parts, as ground truth for the tests. *)

let check model clauses =
  List.for_all
    (List.exists (fun l ->
         let v = abs l in
         if l > 0 then model.(v) else not model.(v)))
    clauses

(* assignment: 0 unassigned, 1 true, -1 false *)
let val_lit a l = if l > 0 then a.(l) else - a.(-l)

(* One pass of unit propagation; [`Conflict], [`Fixpoint] or [`Changed]. *)
let propagate_once a clauses =
  let state = ref `Fixpoint in
  List.iter
    (fun c ->
      if !state <> `Conflict then begin
        let unassigned = ref [] and sat = ref false in
        List.iter
          (fun l ->
            match val_lit a l with
            | 1 -> sat := true
            | 0 -> unassigned := l :: !unassigned
            | _ -> ())
          c;
        if not !sat then
          match !unassigned with
          | [] -> state := `Conflict
          | [ l ] ->
              a.(abs l) <- (if l > 0 then 1 else -1);
              if !state = `Fixpoint then state := `Changed
          | _ -> ()
      end)
    clauses;
  !state

let rec propagate a clauses =
  match propagate_once a clauses with
  | `Conflict -> false
  | `Fixpoint -> true
  | `Changed -> propagate a clauses

let rec search a nvars clauses =
  if not (propagate a clauses) then None
  else begin
    let v = ref 0 in
    (try
       for i = 1 to nvars do
         if a.(i) = 0 then begin
           v := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !v = 0 then Some (Array.map (fun x -> x = 1) a)
    else
      let try_polarity p =
        let a' = Array.copy a in
        a'.(!v) <- p;
        search a' nvars clauses
      in
      match try_polarity 1 with Some m -> Some m | None -> try_polarity (-1)
  end

let solve ~nvars clauses =
  if List.exists (( = ) []) clauses then None
  else search (Array.make (nvars + 1) 0) nvars clauses
