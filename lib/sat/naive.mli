(** A transparently-correct DPLL reference: unit propagation plus
    chronological backtracking on the first unassigned variable.  Used
    only by the differential test suite as ground truth for the CDCL
    core — exponential, never called on real encodings. *)

val solve : nvars:int -> Solver.lit list list -> bool array option
(** [solve ~nvars clauses] returns an assignment (indexed by variable,
    1-based) satisfying every clause, or [None] if unsatisfiable. *)

val check : bool array -> Solver.lit list list -> bool
(** Does the assignment satisfy every clause? *)
