(** Pipeline observability: spans, counters, histograms.

    One process-global collector, off by default.  Instrumentation
    points throughout the tree guard on {!enabled}; when the collector
    is off a probe is a load and a branch — no allocation, no clock
    read.  When on, spans land in a fixed-capacity ring buffer (old
    spans are overwritten, the drop count is reported) and counters and
    histograms accumulate in name-keyed registries that survive
    {!reset}, so [make] at module level is safe.

    The fork boundary: {!Harness.Pool} workers call {!reset} after
    [fork], record into their own copy of the collector, and return a
    {!dump} over the result pipe; the parent {!merge}s each dump,
    remapping span ids and tagging spans with the worker pid. *)

(** {1 Enable switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Clock} *)

val now_us : unit -> float
(** Microseconds since collector creation; clamped non-decreasing. *)

(** {1 Spans} *)

type span = private {
  id : int;
  parent : int;  (** id of the enclosing span, [-1] at top level *)
  mutable tid : int;  (** [0] = this process; worker pid after {!merge} *)
  name : string;
  item : string;  (** test/item id when known, [""] otherwise *)
  start_us : float;
  mutable dur_us : float;  (** [-1.] while the span is open *)
}

val with_span : ?item:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span named [name], nested
    under the innermost open span.  Exception-safe; calls [f] directly
    when the collector is disabled. *)

val spans : unit -> span list
(** Recorded spans, oldest first (open spans have [dur_us = -1.]). *)

val dropped : unit -> int
(** Spans lost to ring-buffer overwrite since the last {!reset}. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create; idempotent per name, survives {!reset}. *)

  val add : t -> int -> unit
  val incr : t -> unit
  val value : t -> int
  val name : t -> string
end

(** {1 Histograms} *)

module Histogram : sig
  type t

  val make : string -> t
  (** Find-or-create; idempotent per name, survives {!reset}. *)

  val observe : t -> float -> unit
  (** Record one observation (microseconds by convention: log2-µs
      buckets plus count/sum/min/max). *)

  val count : t -> int
  val sum : t -> float
  val name : t -> string
end

(** {1 Snapshot, reset, fork-boundary merge} *)

val counters : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

val histograms : unit -> (string * hist_summary) list
(** Non-empty histograms, sorted by name. *)

val reset : unit -> unit
(** Clear spans and zero all counters/histograms in place (registered
    handles stay valid).  Pool workers call this right after [fork]. *)

type dump
(** Marshal-safe snapshot of the collector (spans, drop count,
    counters, histograms); open spans are closed at dump time. *)

val dump : unit -> dump
val empty_dump : dump

val merge : ?tid:int -> dump -> unit
(** Fold a dump into this collector: span ids are remapped to fresh
    local ids (parents follow), spans are tagged with [tid], counters
    and histogram cells add up. *)

(** {1 Export} *)

val to_jsonl : unit -> string
(** One JSON object per line: a [meta] line, then [span], [counter] and
    [hist] lines (a ["type"] field discriminates). *)

val to_chrome : unit -> string
(** Chrome trace-event JSON ([ph:"X"] complete events, counters as
    [ph:"C"]); loads in chrome://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** Atomic (temp + rename) write of {!to_jsonl}. *)

val write_chrome : string -> unit
(** Atomic (temp + rename) write of {!to_chrome}. *)

val span_totals : unit -> (string * (int * float)) list
(** Per-span-name [(count, total_us)] aggregates, sorted by name. *)

val summary_json : unit -> string
(** One JSON object — counters, per-phase span totals, histogram
    summaries, drop count — for embedding in runner reports. *)
