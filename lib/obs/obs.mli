(** Pipeline observability: spans, counters, histograms.

    One process-global collector, off by default.  Instrumentation
    points throughout the tree guard on {!enabled}; when the collector
    is off a probe is a load and a branch — no allocation, no clock
    read.  When on, spans land in a fixed-capacity ring buffer (old
    spans are overwritten, the drop count is reported) and counters and
    histograms accumulate in name-keyed registries that survive
    {!reset}, so [make] at module level is safe.

    The fork boundary: {!Harness.Pool} workers call {!reset} after
    [fork], record into their own copy of the collector, and return a
    {!dump} over the result pipe; the parent {!merge}s each dump,
    remapping span ids and tagging spans with the worker pid. *)

(** {1 Enable switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Clock} *)

val now_us : unit -> float
(** Microseconds since collector creation; clamped non-decreasing. *)

(** {1 Spans} *)

type span = private {
  id : int;
  parent : int;  (** id of the enclosing span, [-1] at top level *)
  mutable tid : int;  (** [0] = this process; worker pid after {!merge} *)
  name : string;
  item : string;  (** test/item id when known, [""] otherwise *)
  start_us : float;
  mutable dur_us : float;  (** [-1.] while the span is open *)
}

val with_span : ?item:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span named [name], nested
    under the innermost open span.  Exception-safe; calls [f] directly
    when the collector is disabled. *)

val record :
  ?item:string ->
  ?parent:int ->
  ?tid:int ->
  start_us:float ->
  dur_us:float ->
  string ->
  unit
(** [record ~start_us ~dur_us name] pushes an explicitly timed,
    already-closed span — the serve daemon's request-lifecycle spans
    (admission → queue wait → reply) are assembled this way, outside
    any one domain's open-span stack.  [tid] defaults to the calling
    domain; never touches the nesting stacks.  No-op when disabled. *)

val event : ?item:string -> string -> unit
(** A zero-duration span at the current instant (retry and quarantine
    transitions on a request's trace).  No-op when disabled. *)

val spans : unit -> span list
(** Recorded spans, oldest first (open spans have [dur_us = -1.]). *)

val dropped : unit -> int
(** Spans lost to ring-buffer overwrite since the last {!reset}. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** Find-or-create; idempotent per name, survives {!reset}. *)

  val add : t -> int -> unit
  val incr : t -> unit

  val add_always : t -> int -> unit
  (** Like {!add} but unconditional: service-level counters (the
      verdict cache's hits/misses/stores) feed the always-on metrics
      surface whether or not tracing is enabled.  Not for hot-path
      probes. *)

  val incr_always : t -> unit
  val value : t -> int
  val name : t -> string
end

(** {1 Histograms} *)

module Histogram : sig
  type t

  val make : string -> t
  (** Find-or-create; idempotent per name, survives {!reset}. *)

  val observe : t -> float -> unit
  (** Record one observation (microseconds by convention: log2-µs
      buckets plus count/sum/min/max). *)

  val observe_always : t -> float -> unit
  (** Like {!observe} but unconditional: service-level metrics (daemon
      latency and queue-wait distributions) accumulate even when the
      tracing collector is off, so a metrics snapshot always has real
      percentiles.  Not for hot-path probes. *)

  val count : t -> int
  val sum : t -> float
  val name : t -> string
end

(** {1 Snapshot, reset, fork-boundary merge} *)

val counters : unit -> (string * int) list
(** Non-zero counters, sorted by name. *)

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

val histograms : unit -> (string * hist_summary) list
(** Non-empty histograms, sorted by name. *)

val hist_snapshot : Histogram.t -> hist_summary
(** A consistent copy of one histogram's cells (taken under the
    collector lock), whether or not the collector is enabled. *)

val quantile : hist_summary -> float -> float
(** [quantile h q] estimates the [q]-th quantile ([0..1]) from the
    log2-µs buckets, interpolating within the matched bucket and
    clamped to the observed min/max; [0.] on an empty histogram. *)

val hist_metrics_json : hist_summary -> string
(** The metrics-snapshot latency object:
    [{"count", "p50", "p95", "p99", "max", "mean"}] (µs). *)

val reset : unit -> unit
(** Clear spans and zero all counters/histograms in place (registered
    handles stay valid).  Pool workers call this right after [fork]. *)

type dump
(** Marshal-safe snapshot of the collector (spans, drop count,
    counters, histograms); open spans are closed at dump time. *)

val dump : unit -> dump
val empty_dump : dump

val merge : ?tid:int -> dump -> unit
(** Fold a dump into this collector: span ids are remapped to fresh
    local ids (parents follow), spans are tagged with [tid], counters
    and histogram cells add up. *)

(** {1 Export} *)

val to_jsonl : unit -> string
(** One JSON object per line: a [meta] line, then [span], [counter] and
    [hist] lines (a ["type"] field discriminates). *)

val to_chrome : unit -> string
(** Chrome trace-event JSON ([ph:"X"] complete events, counters as
    [ph:"C"]); loads in chrome://tracing and Perfetto. *)

val write_jsonl : string -> unit
(** Atomic (temp + rename) write of {!to_jsonl}. *)

val write_chrome : string -> unit
(** Atomic (temp + rename) write of {!to_chrome}. *)

val span_totals : unit -> (string * (int * float)) list
(** Per-span-name [(count, total_us)] aggregates, sorted by name. *)

val summary_json : unit -> string
(** One JSON object — counters, per-phase span totals, histogram
    summaries, drop count — for embedding in runner reports. *)

(** {1 Crash flight recorder}

    A SIGKILLed pool worker, a wedged serve domain or a poison campaign
    seed dies without reaching any export path.  While armed, the
    collector appends checkpoint lines — each a self-contained
    [lkflight-1] JSON object with the last few spans (open ones
    flagged) and the counters — to an append-only journal, flushed per
    line, so the last checkpoint survives any kill.  Checkpoints are
    written opportunistically from the recording paths once the
    interval has elapsed, and on demand via {!flight_checkpoint}
    (e.g. at the start of each job, so a death mid-job always leaves
    the victim's id on disk).  Readers drop a torn tail, per the
    tree's journal conventions. *)

val flight_start : ?interval_us:float -> ?last:int -> string -> unit
(** Arm the recorder on [path] (append mode; a restart cannot erase a
    previous life's evidence).  [interval_us] defaults to 500ms worth;
    [last] (default 32) bounds spans per checkpoint. *)

val flight_active : unit -> bool

val flight_checkpoint : ?reason:string -> unit -> unit
(** Force one checkpoint line now (no-op when not armed). *)

val flight_stop : unit -> unit
(** Write a final ["stop"] checkpoint and disarm. *)
