(* Pipeline observability: tracing spans, counters and histograms behind
   a single process-global collector (observability layer).

   The design constraints, in order:

   1. *Zero cost when disabled.*  Every instrumentation point in the hot
      paths (enumeration, prefilter, model evaluation, the bitset
      kernel) guards on one global boolean; a disabled probe is a load
      and a branch, nothing is allocated and the clock is never read.

   2. *Bounded memory when enabled.*  Spans land in a fixed-capacity
      ring buffer: a pathological test that opens millions of spans
      overwrites its own oldest spans instead of exhausting the heap,
      and the number dropped is reported.  Counters and histograms are
      O(#distinct names).

   3. *Fork-transparent.*  {!Harness.Pool} checks each test in a forked
      worker; a worker resets the (inherited) collector, records into
      its own copy, and ships a {!dump} back over the existing result
      pipe, which the parent {!merge}s — remapping span ids and tagging
      the worker's spans with its pid — so a [-j N] run produces one
      coherent trace.

   4. *Domain-transparent.*  {!Harness.Serve} checks requests on OCaml 5
      domains sharing this one collector; counters are atomic, the span
      ring and registries are guarded by a single mutex taken only in
      the enabled paths, and the open-span *stack* is domain-local
      (spans from different domains never nest under each other; each
      span carries its domain id as [tid], 0 on the main domain so
      single-domain traces are unchanged).

   Timestamps come from one clamped clock ({!now_us}): microseconds
   since collector creation, never decreasing even if the wall clock
   steps backwards, so spans are well-nested by construction.  Exports:
   JSONL (one self-describing line per span / counter / histogram, the
   format {!tools/obs_report} consumes) and the Chrome trace-event
   format, loadable directly in chrome://tracing or Perfetto. *)

(* The one collector lock (see design constraint 4).  Every enabled-path
   mutation of shared state takes it; disabled probes never touch it. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* ------------------------------------------------------------------ *)
(* The enable switch                                                   *)
(* ------------------------------------------------------------------ *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* ------------------------------------------------------------------ *)
(* The clock                                                           *)
(* ------------------------------------------------------------------ *)

(* Microseconds since the collector epoch (process start), clamped to be
   non-decreasing: a wall-clock step backwards cannot produce a span
   that ends before it starts.  Forked children inherit the epoch, so
   merged parent/worker timelines share one time base. *)
let epoch = Unix.gettimeofday ()
let last = ref 0.

let now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  if t > !last then last := t;
  !last

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  id : int;
  parent : int; (* id of the enclosing span; -1 = top level *)
  mutable tid : int; (* 0 = this process; a worker pid after merge *)
  name : string; (* phase name: "parse", "enumerate", "model", ... *)
  item : string; (* test/item id when known, "" otherwise *)
  start_us : float;
  mutable dur_us : float; (* -1 while the span is open *)
}

let default_capacity = 65_536

type collector = {
  mutable ring : span array; (* slot i holds span number (total - live + i') *)
  mutable total : int; (* spans ever recorded *)
  mutable next_id : int;
}

let dummy =
  { id = -1; parent = -1; tid = 0; name = ""; item = ""; start_us = 0.;
    dur_us = 0. }

let c = { ring = [||]; total = 0; next_id = 0 }

(* Open spans, innermost first — per domain, so concurrent domains each
   keep a well-nested stack and never adopt each other's parents.
   {!reset} clears the calling domain's stack only (a forked pool worker
   has exactly one). *)
let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let capacity () =
  if Array.length c.ring = 0 then c.ring <- Array.make default_capacity dummy;
  Array.length c.ring

let push_span s =
  let cap = capacity () in
  c.ring.(c.total mod cap) <- s;
  c.total <- c.total + 1

let dropped () = max 0 (c.total - Array.length c.ring)

(* Recorded spans, oldest first (closed or not). *)
let spans () =
  locked (fun () ->
      let cap = Array.length c.ring in
      let live = min c.total cap in
      List.init live (fun i -> c.ring.((c.total - live + i) mod cap)))

let fresh_id () =
  let id = c.next_id in
  c.next_id <- id + 1;
  id

(* Flight-recorder hook, installed below (the recorder needs the export
   helpers defined later in this file).  Called with the current clock
   under the collector lock from the enabled recording paths; a no-op
   closure until {!flight_start}. *)
let flight_tick_u : (float -> unit) ref = ref (fun _ -> ())

let enter ?(item = "") name =
  let stk = stack () in
  let parent = match !stk with s :: _ -> s.id | [] -> -1 in
  let s =
    locked (fun () ->
        let s =
          { id = fresh_id (); parent; tid = (Domain.self () :> int); name;
            item; start_us = now_us (); dur_us = -1. }
        in
        push_span s;
        !flight_tick_u s.start_us;
        s)
  in
  stk := s :: !stk;
  s

let exit_span s =
  s.dur_us <- now_us () -. s.start_us;
  (* tolerate a mismatched exit (an exception path that skipped a pop):
     pop down to and including [s] if it is on the stack at all *)
  let rec pop = function
    | x :: rest when x == s -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  let stk = stack () in
  if List.exists (fun x -> x == s) !stk then stk := pop !stk

let with_span ?item name f =
  if not !on then f ()
  else begin
    let s = enter ?item name in
    Fun.protect ~finally:(fun () -> exit_span s) f
  end

(* Explicitly timed spans and instant events.  The serve daemon
   assembles request-lifecycle spans (admission -> queue wait -> reply)
   outside any single domain's open-span stack, and marks retry and
   quarantine transitions as zero-duration events on the same trace;
   both are born closed and never touch the DLS stacks. *)
let record ?(item = "") ?parent ?tid ~start_us ~dur_us name =
  if !on then begin
    let tid = match tid with Some t -> t | None -> (Domain.self () :> int) in
    let parent = Option.value ~default:(-1) parent in
    locked (fun () ->
        push_span
          { id = fresh_id (); parent; tid; name; item; start_us;
            dur_us = Float.max 0. dur_us };
        !flight_tick_u (now_us ()))
  end

let event ?item name =
  if !on then record ?item ~start_us:(now_us ()) ~dur_us:0. name

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* Atomic, not mutable-int: hot-path counters are bumped from every
     checking domain concurrently and a plain read-modify-write would
     lose increments.  fetch-and-add is one lock-prefixed instruction —
     no mutex on the add path. *)
  type t = { name : string; v : int Atomic.t }

  (* The registry survives {!reset} (values are zeroed in place), so
     module-level [make] bindings in instrumented code stay valid for
     the whole process lifetime. *)
  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
            let c = { name; v = Atomic.make 0 } in
            Hashtbl.add registry name c;
            c)

  let add c n = if !on then ignore (Atomic.fetch_and_add c.v n)
  let incr c = add c 1

  (* Unconditional: service-level counters (verdict-cache hits/misses)
     feed the always-on metrics surface, collector or no collector. *)
  let add_always c n = ignore (Atomic.fetch_and_add c.v n)
  let incr_always c = add_always c 1
  let value c = Atomic.get c.v
  let name c = c.name
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* log2 buckets over microseconds: bucket i counts observations in
     [2^i, 2^(i+1)) us, bucket 0 also takes everything below 1 us. *)
  let n_buckets = 32

  type t = {
    name : string;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    buckets : int array;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
            let h =
              { name; count = 0; sum = 0.; min_v = infinity;
                max_v = neg_infinity; buckets = Array.make n_buckets 0 }
            in
            Hashtbl.add registry name h;
            h)

  let bucket_of v =
    if v < 1. then 0
    else min (n_buckets - 1) (int_of_float (Float.log2 v))

  (* Service-level metrics (the daemon's latency and queue-wait
     distributions) accumulate whether or not tracing is switched on:
     a metrics snapshot must answer with real percentiles on a daemon
     that never enabled the collector.  [observe] is the trace-gated
     variant every pipeline probe uses. *)
  let observe_always h v =
    locked (fun () ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min_v then h.min_v <- v;
        if v > h.max_v then h.max_v <- v;
        let b = bucket_of v in
        h.buckets.(b) <- h.buckets.(b) + 1)

  let observe h v = if !on then observe_always h v

  let count h = h.count
  let sum h = h.sum
  let name h = h.name
end

(* ------------------------------------------------------------------ *)
(* Reset, dump, merge (the fork boundary)                              *)
(* ------------------------------------------------------------------ *)

(* The [_u] variants assume the collector lock is held (or never
   contended: single-domain tooling paths); the public ones take it.
   The lock is not reentrant, so locked code must call only [_u]s. *)

let counters_u () =
  Hashtbl.fold
    (fun name (ct : Counter.t) acc ->
      let v = Atomic.get ct.Counter.v in
      if v <> 0 then (name, v) :: acc else acc)
    Counter.registry []
  |> List.sort compare

let counters () = locked counters_u

type hist_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : int array;
}

let histograms_u () =
  Hashtbl.fold
    (fun name (h : Histogram.t) acc ->
      if h.Histogram.count > 0 then
        ( name,
          { h_count = h.Histogram.count; h_sum = h.Histogram.sum;
            h_min = h.Histogram.min_v; h_max = h.Histogram.max_v;
            h_buckets = Array.copy h.Histogram.buckets } )
        :: acc
      else acc)
    Histogram.registry []
  |> List.sort compare

let histograms () = locked histograms_u

let hist_snapshot (h : Histogram.t) =
  locked (fun () ->
      { h_count = h.Histogram.count; h_sum = h.Histogram.sum;
        h_min = h.Histogram.min_v; h_max = h.Histogram.max_v;
        h_buckets = Array.copy h.Histogram.buckets })

(* Quantile estimate from the log2-us buckets: find the bucket holding
   the q-th observation and interpolate linearly inside it, clamped to
   the exact observed min/max so p0/p100 are never invented. *)
let quantile (h : hist_summary) q =
  if h.h_count <= 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.h_count in
    let rec go i seen =
      if i >= Array.length h.h_buckets then h.h_max
      else
        let n = h.h_buckets.(i) in
        if n > 0 && float_of_int (seen + n) >= target then begin
          let lo = if i = 0 then 0. else Float.pow 2. (float_of_int i) in
          let hi = Float.pow 2. (float_of_int (i + 1)) in
          let frac = (target -. float_of_int seen) /. float_of_int n in
          Float.min h.h_max (Float.max h.h_min (lo +. (frac *. (hi -. lo))))
        end
        else go (i + 1) (seen + n)
    in
    go 0 0
  end

(* The one latency-summary shape every metrics surface renders
   (lkserve's [metrics] op, lkcampaign's journalled snapshots):
   count / p50 / p95 / p99 / max / mean, microseconds. *)
let hist_metrics_json (h : hist_summary) =
  if h.h_count = 0 then
    "{\"count\": 0, \"p50\": 0, \"p95\": 0, \"p99\": 0, \"max\": 0, \
     \"mean\": 0}"
  else
    Printf.sprintf
      "{\"count\": %d, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \
       \"max\": %.1f, \"mean\": %.1f}"
      h.h_count (quantile h 0.5) (quantile h 0.95) (quantile h 0.99)
      h.h_max
      (h.h_sum /. float_of_int h.h_count)

let reset () =
  (stack ()) := [];
  locked (fun () ->
      c.ring <- [||];
      c.total <- 0;
      c.next_id <- 0;
      Hashtbl.iter
        (fun _ (ct : Counter.t) -> Atomic.set ct.Counter.v 0)
        Counter.registry;
      Hashtbl.iter
        (fun _ (h : Histogram.t) ->
          h.Histogram.count <- 0;
          h.Histogram.sum <- 0.;
          h.Histogram.min_v <- infinity;
          h.Histogram.max_v <- neg_infinity;
          Array.fill h.Histogram.buckets 0 Histogram.n_buckets 0)
        Histogram.registry)

(* A dump is a self-contained marshalable snapshot: plain records,
   strings, floats and int arrays only, so it crosses the pool's
   [Marshal] pipe unchanged. *)
type dump = {
  d_spans : span list; (* oldest first; open spans closed at dump time *)
  d_dropped : int;
  d_counters : (string * int) list;
  d_hists : (string * hist_summary) list;
}

let spans_u () =
  let cap = Array.length c.ring in
  let live = min c.total cap in
  List.init live (fun i -> c.ring.((c.total - live + i) mod cap))

let dump () =
  let now = now_us () in
  let close s =
    if s.dur_us < 0. then { s with dur_us = now -. s.start_us } else s
  in
  locked (fun () ->
      {
        d_spans = List.map close (spans_u ());
        d_dropped = dropped ();
        d_counters = counters_u ();
        d_hists = histograms_u ();
      })

let empty_dump =
  { d_spans = []; d_dropped = 0; d_counters = []; d_hists = [] }

(* Fold a worker's dump into this collector.  Span ids are remapped to
   fresh local ids (parent links follow; a parent lost to the worker's
   own ring wrap becomes -1), and every span is tagged with [~tid] so
   traces distinguish workers.  Counters and histograms add up. *)
let merge ?(tid = 0) (d : dump) =
  (* inlined find-or-create: Counter.make/Histogram.make take the lock,
     which this whole fold already holds *)
  let counter name =
    match Hashtbl.find_opt Counter.registry name with
    | Some c -> c
    | None ->
        let c = { Counter.name; v = Atomic.make 0 } in
        Hashtbl.add Counter.registry name c;
        c
  in
  let histogram name =
    match Hashtbl.find_opt Histogram.registry name with
    | Some h -> h
    | None ->
        let h =
          { Histogram.name; count = 0; sum = 0.; min_v = infinity;
            max_v = neg_infinity;
            buckets = Array.make Histogram.n_buckets 0 }
        in
        Hashtbl.add Histogram.registry name h;
        h
  in
  locked (fun () ->
      let remap = Hashtbl.create 64 in
      List.iter
        (fun (s : span) ->
          let id = fresh_id () in
          Hashtbl.replace remap s.id id;
          let parent =
            match Hashtbl.find_opt remap s.parent with
            | Some p -> p
            | None -> -1
          in
          push_span { s with id; parent; tid })
        d.d_spans;
      c.total <- c.total + d.d_dropped (* dropped spans stay counted *);
      List.iter
        (fun (name, v) ->
          let ct = counter name in
          ignore (Atomic.fetch_and_add ct.Counter.v v))
        d.d_counters;
      List.iter
        (fun (name, hs) ->
          let h = histogram name in
          h.Histogram.count <- h.Histogram.count + hs.h_count;
          h.Histogram.sum <- h.Histogram.sum +. hs.h_sum;
          if hs.h_min < h.Histogram.min_v then h.Histogram.min_v <- hs.h_min;
          if hs.h_max > h.Histogram.max_v then h.Histogram.max_v <- hs.h_max;
          Array.iteri
            (fun i n ->
              h.Histogram.buckets.(i) <- h.Histogram.buckets.(i) + n)
            hs.h_buckets)
        d.d_hists)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Obs is beneath every other library in the tree, so it carries its own
   (tiny) JSON string escaper rather than borrowing the harness's. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let span_fields (s : span) =
  Printf.sprintf
    "\"id\": %d, \"parent\": %d, \"tid\": %d, \"name\": \"%s\", \"item\": \
     \"%s\", \"start_us\": %.1f, \"dur_us\": %.1f"
    s.id s.parent s.tid (json_escape s.name) (json_escape s.item) s.start_us
    (max 0. s.dur_us)

let hist_json (name, h) =
  let buckets =
    Array.to_list h.h_buckets |> List.map string_of_int |> String.concat ", "
  in
  Printf.sprintf
    "{\"type\": \"hist\", \"name\": \"%s\", \"count\": %d, \"sum_us\": %.1f, \
     \"min_us\": %.2f, \"max_us\": %.2f, \"buckets\": [%s]}"
    (json_escape name) h.h_count h.h_sum h.h_min h.h_max buckets

(* The JSONL export: a meta line, then one line per span (oldest first),
   counter and histogram.  Every line is a complete JSON object with a
   "type" discriminator, so consumers can stream and skip. *)
let to_jsonl () =
  let d = dump () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\": \"meta\", \"schema\": \"obs-1\", \"pid\": %d, \"spans\": \
        %d, \"dropped\": %d}\n"
       (Unix.getpid ()) (List.length d.d_spans) d.d_dropped);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\": \"span\", %s}\n" (span_fields s)))
    d.d_spans;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\": \"counter\", \"name\": \"%s\", \"value\": %d}\n"
           (json_escape name) v))
    d.d_counters;
  List.iter
    (fun h ->
      Buffer.add_string buf (hist_json h);
      Buffer.add_char buf '\n')
    d.d_hists;
  Buffer.contents buf

(* The Chrome trace-event export: complete ("ph":"X") events carrying
   ts/dur in microseconds; counters become "ph":"C" counter samples at
   the end of the timeline.  Loads directly in chrome://tracing and
   Perfetto. *)
let to_chrome () =
  let d = dump () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  List.iter
    (fun (s : span) ->
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"obs\", \"ph\": \"X\", \"ts\": \
            %.1f, \"dur\": %.1f, \"pid\": %d, \"tid\": %d, \"args\": \
            {\"item\": \"%s\", \"id\": %d, \"parent\": %d}}"
           (json_escape s.name) s.start_us (max 0. s.dur_us) (Unix.getpid ())
           s.tid (json_escape s.item) s.id s.parent))
    d.d_spans;
  let ts = now_us () in
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"obs\", \"ph\": \"C\", \"ts\": \
            %.1f, \"pid\": %d, \"args\": {\"value\": %d}}"
           (json_escape name) ts (Unix.getpid ()) v))
    d.d_counters;
  Buffer.add_string buf
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"schema\": \
        \"obs-1\", \"dropped\": %d}}\n"
       d.d_dropped);
  Buffer.contents buf

(* Atomic writes (temp + rename): a killed run cannot leave a torn
   trace file, matching the tree's journal and generator conventions. *)
let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let write_jsonl path = write_file path (to_jsonl ())
let write_chrome path = write_file path (to_chrome ())

(* Aggregate per-span-name totals, for embedding in runner reports. *)
let span_totals () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : span) ->
      if s.dur_us >= 0. then begin
        let n, t =
          match Hashtbl.find_opt tbl s.name with
          | Some (n, t) -> (n, t)
          | None -> (0, 0.)
        in
        Hashtbl.replace tbl s.name (n + 1, t +. s.dur_us)
      end)
    (spans ());
  Hashtbl.fold (fun name nt acc -> (name, nt) :: acc) tbl []
  |> List.sort compare

(* The report-embedded metrics object: counters, per-phase span totals
   and histogram summaries as one JSON value (no trailing newline). *)
let summary_json () =
  let counters =
    counters ()
    |> List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v)
    |> String.concat ", "
  in
  let spans_j =
    span_totals ()
    |> List.map (fun (n, (count, total)) ->
           Printf.sprintf "\"%s\": {\"count\": %d, \"total_us\": %.1f}"
             (json_escape n) count total)
    |> String.concat ", "
  in
  let hists =
    histograms ()
    |> List.map (fun (n, h) ->
           Printf.sprintf
             "\"%s\": {\"count\": %d, \"sum_us\": %.1f, \"max_us\": %.2f}"
             (json_escape n) h.h_count h.h_sum h.h_max)
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"counters\": {%s}, \"spans\": {%s}, \"histograms\": {%s}, \
     \"dropped_spans\": %d}"
    counters spans_j hists (dropped ())

(* ------------------------------------------------------------------ *)
(* Crash flight recorder                                               *)
(* ------------------------------------------------------------------ *)

(* A SIGKILLed pool worker, a wedged-and-abandoned serve domain and a
   poison campaign seed all die without reaching any export path; the
   flight recorder is the post-mortem for exactly those deaths.  While
   armed, the collector appends periodic (and caller-forced) checkpoint
   lines — each a self-contained JSON object carrying the last few
   spans (open ones flagged) and the counters — to an append-only
   journal, flushing each line, so whatever killed the process finds
   the last checkpoint intact on disk.  The file follows the tree's
   journal conventions (one JSON object per line, torn tail dropped by
   readers); appending rather than truncating means a restart after
   [kill -9] cannot erase the previous life's evidence. *)

type flight = {
  f_oc : out_channel;
  f_interval_us : float;
  f_last : int; (* spans per checkpoint *)
  mutable f_due_us : float;
}

let flight_state : flight option ref = ref None (* guarded by [lock] *)
let flight_active () = locked (fun () -> !flight_state <> None)

let checkpoint_line_u f reason =
  let now = now_us () in
  (* last [f_last] spans straight off the ring — never the whole ring:
     checkpoints fire per job/seed, and walking 65536 slots each time
     would turn a campaign shard quadratic *)
  let spans =
    let cap = Array.length c.ring in
    let live = min c.total cap in
    let keep = min f.f_last live in
    List.init keep (fun i -> c.ring.((c.total - keep + i) mod cap))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\": \"lkflight-1\", \"pid\": %d, \"ts_us\": %.1f, \
        \"reason\": \"%s\", \"dropped\": %d, \"spans\": ["
       (Unix.getpid ()) now (json_escape reason) (dropped ()));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{%s, \"open\": %b}" (span_fields s) (s.dur_us < 0.)))
    spans;
  Buffer.add_string buf "], \"counters\": {";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape n) v))
    (counters_u ());
  Buffer.add_string buf "}}";
  Buffer.contents buf

let flight_checkpoint_u reason =
  match !flight_state with
  | None -> ()
  | Some f ->
      let line = checkpoint_line_u f reason in
      output_string f.f_oc line;
      output_char f.f_oc '\n';
      flush f.f_oc;
      f.f_due_us <- now_us () +. f.f_interval_us

let flight_checkpoint ?(reason = "checkpoint") () =
  locked (fun () -> flight_checkpoint_u reason)

let () =
  flight_tick_u :=
    fun now ->
      match !flight_state with
      | Some f when now >= f.f_due_us -> flight_checkpoint_u "interval"
      | _ -> ()

let flight_start ?(interval_us = 500_000.) ?(last = 32) path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  locked (fun () ->
      (match !flight_state with
      | Some old -> close_out_noerr old.f_oc
      | None -> ());
      flight_state :=
        Some
          { f_oc = oc; f_interval_us = interval_us; f_last = max 1 last;
            f_due_us = now_us () +. interval_us })

let flight_stop () =
  locked (fun () ->
      match !flight_state with
      | None -> ()
      | Some f ->
          flight_checkpoint_u "stop";
          close_out_noerr f.f_oc;
          flight_state := None)
