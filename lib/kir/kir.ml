(* The kernel IR: the litmus subset plus loops, arrays, mutexes and RCU —
   what the operational simulators execute.

   - {!Ir} (included here): the IR and the litmus-to-IR compiler;
   - {!Rcu_impl}: the Figure 15 userspace-RCU implementation and the
     Section 6.2 transformation replacing RCU primitives by it. *)

module Rcu_impl = Rcu_impl
include Ir
