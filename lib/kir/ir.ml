(* A small imperative kernel IR: the litmus subset plus loops, arrays,
   mutexes and native RCU primitives.  It is what the operational hardware
   simulators (lib/hwsim) execute, and is rich enough to run the paper's
   Figure 15 RCU implementation (while loops over rc[], a grace-period
   mutex, msleep). *)

type expr =
  | Int of int
  | Reg of string
  | Tid (* get_my_tid() *)
  | Addr of string (* &x as a value, resolved via the address table *)
  | Bin of Litmus.Ast.binop * expr * expr
  | Un of Litmus.Ast.unop * expr

type loc =
  | Var of string
  | Arr of string * expr (* rc[i] *)
  | Deref of string (* location whose address is held in a register *)

type stmt =
  | Read of Litmus.Ast.r_annot * string * loc
  | Write of Litmus.Ast.w_annot * loc * expr
  | Fence of Litmus.Ast.fence_kind (* rcu_* fences = native RCU below *)
  | Xchg of Litmus.Ast.xchg_kind * string * loc * expr
  | Cmpxchg of Litmus.Ast.xchg_kind * string * loc * expr * expr
  | Atomic_add of Litmus.Ast.xchg_kind * string option * loc * expr
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Mutex_lock of string
  | Mutex_unlock of string
  | Sleep (* msleep: a deschedule hint *)
  | Skip (* no-op; also left behind by prefetched reads *)
  (* Asynchronous grace periods (the paper's Section 7 future work):
     call_rcu defers a callback until after a grace period; rcu_barrier
     waits for all pending callbacks to have run. *)
  | Call_rcu of stmt list
  | Rcu_barrier

type program = {
  name : string;
  init : (string * int) list; (* scalar globals; unlisted start at 0 *)
  arrays : (string * int) list; (* array name -> length, zero-initialised *)
  threads : stmt list list;
  addr_table : (string * int) list; (* &x encoding *)
}

(* ------------------------------------------------------------------ *)
(* Compiling litmus tests to the IR                                    *)
(* ------------------------------------------------------------------ *)

let spin_gensym =
  let k = ref 0 in
  fun () ->
    incr k;
    Printf.sprintf "__spin%d" !k

let rec expr_of_litmus (e : Litmus.Ast.expr) =
  match e with
  | Litmus.Ast.Const n -> Int n
  | Litmus.Ast.Reg r -> Reg r
  | Litmus.Ast.Addr x -> Addr x
  | Litmus.Ast.Binop (op, a, b) -> Bin (op, expr_of_litmus a, expr_of_litmus b)
  | Litmus.Ast.Unop (op, a) -> Un (op, expr_of_litmus a)

let loc_of_litmus (l : Litmus.Ast.loc_expr) =
  match l with Litmus.Ast.Sym x -> Var x | Litmus.Ast.Deref r -> Deref r

let rec stmt_of_litmus (i : Litmus.Ast.instr) =
  match i with
  | Litmus.Ast.Read (a, r, l) -> [ Read (a, r, loc_of_litmus l) ]
  | Litmus.Ast.Rcu_dereference (r, l) ->
      [ Read (Litmus.Ast.R_once, r, loc_of_litmus l);
        Fence Litmus.Ast.F_rb_dep ]
  | Litmus.Ast.Write (a, l, e) ->
      [ Write (a, loc_of_litmus l, expr_of_litmus e) ]
  | Litmus.Ast.Fence f -> [ Fence f ]
  | Litmus.Ast.Xchg (k, r, l, e) ->
      [ Xchg (k, r, loc_of_litmus l, expr_of_litmus e) ]
  | Litmus.Ast.Cmpxchg (k, r, l, e1, e2) ->
      [ Cmpxchg (k, r, loc_of_litmus l, expr_of_litmus e1, expr_of_litmus e2) ]
  | Litmus.Ast.Atomic_add_return (k, r, l, e) ->
      [ Atomic_add (k, Some r, loc_of_litmus l, expr_of_litmus e) ]
  | Litmus.Ast.Atomic_add (l, e) ->
      [ Atomic_add (Litmus.Ast.X_relaxed, None, loc_of_litmus l,
                    expr_of_litmus e) ]
  | Litmus.Ast.Assign (r, e) -> [ Assign (r, expr_of_litmus e) ]
  | Litmus.Ast.If (e, t, f) ->
      [
        If
          ( expr_of_litmus e,
            List.concat_map stmt_of_litmus t,
            List.concat_map stmt_of_litmus f );
      ]
  | Litmus.Ast.Spin_lock l ->
      (* the Section 7 emulation, operationally: spin on xchg_acquire *)
      let r = spin_gensym () in
      [
        Xchg (Litmus.Ast.X_acquire, r, loc_of_litmus l, Int 1);
        While
          ( Bin (Litmus.Ast.Neq, Reg r, Int 0),
            [ Sleep; Xchg (Litmus.Ast.X_acquire, r, loc_of_litmus l, Int 1) ]
          );
      ]
  | Litmus.Ast.Spin_unlock l ->
      [ Write (Litmus.Ast.W_release, loc_of_litmus l, Int 0) ]

let of_litmus (test : Litmus.Ast.t) =
  {
    name = test.name;
    init =
      List.map
        (fun x -> (x, Litmus.Ast.init_value test x))
        (Litmus.Ast.globals test);
    arrays = [];
    threads =
      Array.to_list test.threads |> List.map (List.concat_map stmt_of_litmus);
    addr_table = Litmus.Ast.addresses test;
  }

(* ------------------------------------------------------------------ *)
(* Helpers for hand-written programs                                   *)
(* ------------------------------------------------------------------ *)

let seq_name = function
  | Var x -> x
  | Arr (x, _) -> x ^ "[]"
  | Deref r -> "*" ^ r

(* Registers written by a statement, for readers of simulation results. *)
let rec stmt_regs = function
  | Read (_, r, _) | Xchg (_, r, _, _) | Assign (r, _) -> [ r ]
  | If (_, a, b) -> List.concat_map stmt_regs a @ List.concat_map stmt_regs b
  | While (_, a) -> List.concat_map stmt_regs a
  | Cmpxchg (_, r, _, _, _) -> [ r ]
  | Atomic_add (_, Some r, _, _) -> [ r ]
  | Atomic_add (_, None, _, _) -> []
  | Call_rcu body -> List.concat_map stmt_regs body
  | Write _ | Fence _ | Mutex_lock _ | Mutex_unlock _ | Sleep | Skip
  | Rcu_barrier ->
      []
