(** The userspace-RCU implementation of the paper's Figure 15 (Desnoyers
    et al., used in the Linux trace tool), in the kernel IR, and the
    Section 6.2 transformation replacing a program's RCU primitives with
    it.

    Threads communicate through an array [rc[]] of per-thread counters
    (low 16 bits: read-side nesting depth; bit 16: the grace-period phase
    observed at outermost lock) and a control variable [gc]; [gp_lock]
    serialises grace periods, each of which flips the phase twice. *)

val gp_phase : int
val cs_mask : int

(** Deliberately broken variants for the ablation benches: [No_wait]
    turns synchronize_rcu into a bare fence pair (no grace period);
    [No_reader_mb] drops the smp_mb of rcu_read_lock (Figure 15 line 14),
    so a reader's counter update may still sit in its store buffer when
    the updater scans [rc[]].  Both make the forbidden RCU outcomes
    observable on the simulated architectures. *)
type variant = Full | No_wait | No_reader_mb

(** rcu_read_lock(), Figure 15 lines 8-18. *)
val read_lock : ?variant:variant -> unit -> Ir.stmt list

(** rcu_read_unlock(), Figure 15 lines 20-25. *)
val read_unlock : unit -> Ir.stmt list

(** gp_ongoing(i), lines 26-31, leaving the truth value in [dst]. *)
val gp_ongoing : i:string -> dst:string -> Ir.stmt list

(** update_counter_and_wait(), lines 33-41. *)
val update_counter_and_wait : n_threads:int -> Ir.stmt list

(** synchronize_rcu(), lines 43-50. *)
val synchronize : ?variant:variant -> n_threads:int -> unit -> Ir.stmt list

val variant_name : variant -> string

(** The Section 6.2 transformation P -> P': replace every RCU primitive
    by the implementation, adding [gc], [rc[]] and [gp_lock]. *)
val transform : ?variant:variant -> Ir.program -> Ir.program
