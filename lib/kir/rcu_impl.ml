(* The userspace-RCU implementation of the paper's Figure 15 (Desnoyers et
   al., used in the Linux trace tool), transcribed into the IR, and the
   program transformation of Section 6.2: replace every RCU primitive of a
   program P by the routines below, yielding P'.

   Threads communicate through an array rc[] of per-thread counters and a
   grace-period control variable gc; gp_lock serialises grace periods; the
   GP_PHASE bit of gc flips twice per grace period. *)

open Litmus.Ast
open Ir

let gp_phase = 0x10000
let cs_mask = 0x0ffff

let band a b = Bin (Band, a, b)
let bxor a b = Bin (Bxor, a, b)
let land_ a b = Bin (Land, a, b)
let add a b = Bin (Add, a, b)
let sub a b = Bin (Sub, a, b)
let not_ a = Un (Lnot, a)
let lt a b = Bin (Lt, a, b)

(* Fresh register names per expansion site. *)
let gensym =
  let k = ref 0 in
  fun base ->
    incr k;
    Printf.sprintf "__%s%d" base !k

(* Deliberately broken variants, used by the ablation benches to show the
   verification harness has teeth: [No_wait] turns synchronize_rcu into a
   bare fence pair (no grace period), [No_reader_mb] drops the smp_mb of
   rcu_read_lock (line 14), so a reader's counter update may still sit in
   its store buffer when the updater scans rc[]. *)
type variant = Full | No_wait | No_reader_mb

(* rcu_read_lock(), Figure 15 lines 8-18. *)
let read_lock ?(variant = Full) () =
  let tmp = gensym "tmp" and g = gensym "g" in
  [
    Read (R_once, tmp, Arr ("rc", Tid));
    If
      ( not_ (band (Reg tmp) (Int cs_mask)),
        [
          Read (R_once, g, Var "gc");
          Write (W_once, Arr ("rc", Tid), Reg g);
        ]
        @ (if variant = No_reader_mb then [] else [ Fence F_mb ]),
        [ Write (W_once, Arr ("rc", Tid), add (Reg tmp) (Int 1)) ] );
  ]

(* rcu_read_unlock(), Figure 15 lines 20-25. *)
let read_unlock () =
  let tmp = gensym "tmp" in
  [
    Fence F_mb;
    Read (R_once, tmp, Arr ("rc", Tid));
    Write (W_once, Arr ("rc", Tid), sub (Reg tmp) (Int 1));
  ]

(* gp_ongoing(i), lines 26-31, inlined: leaves the truth value in [dst]. *)
let gp_ongoing ~i ~dst =
  let v = gensym "val" and g = gensym "g" in
  [
    Read (R_once, v, Arr ("rc", Reg i));
    Read (R_once, g, Var "gc");
    Assign
      ( dst,
        land_
          (band (Reg v) (Int cs_mask))
          (band (bxor (Reg v) (Reg g)) (Int gp_phase)) );
  ]

(* update_counter_and_wait(), lines 33-41. *)
let update_counter_and_wait ~n_threads =
  let g = gensym "g" and i = gensym "i" and ongoing = gensym "ongoing" in
  [ Read (R_once, g, Var "gc");
    Write (W_once, Var "gc", bxor (Reg g) (Int gp_phase));
    Assign (i, Int 0);
    While
      ( lt (Reg i) (Int n_threads),
        gp_ongoing ~i ~dst:ongoing
        @ [
            While (Reg ongoing, Sleep :: gp_ongoing ~i ~dst:ongoing);
            Assign (i, add (Reg i) (Int 1));
          ] );
  ]

(* synchronize_rcu(), lines 43-50. *)
let synchronize ?(variant = Full) ~n_threads () =
  let waits =
    match variant with
    | No_wait -> []
    | Full | No_reader_mb ->
        update_counter_and_wait ~n_threads
        @ update_counter_and_wait ~n_threads
  in
  [ Fence F_mb; Mutex_lock "gp_lock" ]
  @ waits
  @ [ Mutex_unlock "gp_lock"; Fence F_mb ]

(* The Section 6.2 transformation: P -> P'. *)
let rec transform_stmt ~variant ~n_threads = function
  | Fence F_rcu_lock -> read_lock ~variant ()
  | Fence F_rcu_unlock -> read_unlock ()
  | Fence F_sync_rcu -> synchronize ~variant ~n_threads ()
  | If (e, a, b) ->
      [
        If
          ( e,
            List.concat_map (transform_stmt ~variant ~n_threads) a,
            List.concat_map (transform_stmt ~variant ~n_threads) b );
      ]
  | While (e, a) ->
      [ While (e, List.concat_map (transform_stmt ~variant ~n_threads) a) ]
  | s -> [ s ]

let variant_name = function
  | Full -> "rcu-impl"
  | No_wait -> "rcu-impl-no-wait"
  | No_reader_mb -> "rcu-impl-no-reader-mb"

let transform ?(variant = Full) (p : program) =
  let n_threads = List.length p.threads in
  {
    p with
    name = p.name ^ "+" ^ variant_name variant;
    init = ("gc", 1) :: p.init;
    arrays = ("rc", n_threads) :: p.arrays;
    threads =
      List.map
        (List.concat_map (transform_stmt ~variant ~n_threads))
        p.threads;
  }
