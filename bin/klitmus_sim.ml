(* klitmus_sim: run litmus tests on the simulated architectures — the
   repository's stand-in for the paper's klitmus kernel modules.

     klitmus_sim -b SB -runs 20000             # a built-in battery test
     klitmus_sim -arch Power8,X86 test.litmus  # specific architectures
     klitmus_sim -check -b MP                  # also verify soundness *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_one archs runs seed check test =
  Fmt.pr "Test %s:@." test.Litmus.Ast.name;
  List.iter
    (fun arch ->
      let s = Hwsim.run_test arch ~runs ~seed test in
      Fmt.pr "  %-7s condition matched %d/%d@." s.Hwsim.arch s.Hwsim.matched
        s.Hwsim.total;
      if check then
        match Hwsim.unsound_outcomes (module Lkmm) test s with
        | [] -> Fmt.pr "  %-7s sound w.r.t. the LK model@." s.Hwsim.arch
        | bad ->
            List.iter
              (fun (o, n) ->
                Fmt.pr "  %-7s UNSOUND outcome %a (%d times)@." s.Hwsim.arch
                  Exec.pp_outcome o n)
              bad)
    archs

let main archs runs seed check builtin files =
  let archs =
    match archs with
    | [] -> Hwsim.Arch.table5
    | names ->
        List.map
          (fun n ->
            try Hwsim.Arch.find n
            with Not_found -> failwith ("unknown architecture: " ^ n))
          names
  in
  (match builtin with
  | Some name ->
      run_one archs runs seed check
        (Litmus.parse (Harness.Battery.find name).Harness.Battery.source)
  | None -> ());
  List.iter
    (fun path -> run_one archs runs seed check (Litmus.parse (read_file path)))
    files;
  if files = [] && builtin = None then
    Fmt.pr "no tests given; try: klitmus_sim -b SB@."

let archs_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "arch"; "a" ] ~docv:"ARCHS"
        ~doc:
          "Comma-separated architectures (SC, X86, ARMv7, ARMv8, Power8, \
           Alpha); default: the Table 5 set.")

let runs_arg =
  Arg.(value & opt int 10_000 & info [ "runs"; "n" ] ~doc:"Runs per test.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Check every observed outcome is allowed by the LK model.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "battery" ] ~docv:"NAME" ~doc:"Run a built-in battery test.")

let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"TEST.litmus")

let cmd =
  Cmd.v
    (Cmd.info "klitmus_sim"
       ~doc:"Run litmus tests on simulated weak-memory hardware")
    Term.(
      const main $ archs_arg $ runs_arg $ seed_arg $ check_arg $ builtin_arg
      $ files_arg)

(* user errors become one-line messages, not uncaught exceptions *)
let () =
  match Cmd.eval_value ~catch:false cmd with
  | Ok _ -> exit 0
  | Error _ -> exit 124
  | exception Litmus.Parser.Error (msg, line) ->
      Fmt.epr "klitmus_sim: parse error, line %d: %s@." line msg;
      exit 2
  | exception Litmus.Lexer.Error (msg, line) ->
      Fmt.epr "klitmus_sim: lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Parser.Error (msg, line) ->
      Fmt.epr "klitmus_sim: cat parse error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Lexer.Error (msg, line) ->
      Fmt.epr "klitmus_sim: cat lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Interp.Type_error msg ->
      Fmt.epr "klitmus_sim: cat evaluation error: %s@." msg;
      exit 2
  | exception Failure msg ->
      Fmt.epr "klitmus_sim: %s@." msg;
      exit 2
  | exception Not_found ->
      Fmt.epr "klitmus_sim: unknown built-in test (see lib/harness/battery.ml for names)@.";
      exit 2
