(* klitmus_sim: run litmus tests on the simulated architectures — the
   repository's stand-in for the paper's klitmus kernel modules.

     klitmus_sim -b SB -runs 20000             # a built-in battery test
     klitmus_sim -arch Power8,X86 test.litmus  # specific architectures
     klitmus_sim -check -b MP                  # also verify soundness
     klitmus_sim -stable -b SB                 # retry until the histogram
                                               # converges (fresh seeds)

   Soundness checks enumerate model outcomes, which can explode; with
   --timeout/--max-candidates the check degrades to "soundness unknown"
   instead of hanging.  Errors are classified (parse/lex/...), and the
   exit code follows the unified report policy: 0 ok, 1 unsound
   (hw/model disagreement), 2 error, 3 budget.  With --json the
   progress output moves to stderr and stdout carries the unified
   report. *)

open Cmdliner

let run_one ppf archs runs seed check stable limits backend test =
  let errors = ref 0 and budget_outs = ref 0 in
  let budget_reason = ref None in
  Fmt.pf ppf "Test %s:@." test.Litmus.Ast.name;
  List.iter
    (fun arch ->
      let s, convergence =
        if stable then begin
          let st = Hwsim.run_test_stable arch ~seed test in
          (* a non-converged histogram is a reproducibility problem:
             print the exact per-batch seed set so the run can be
             replayed and extended *)
          if not st.Hwsim.converged then
            Fmt.pf ppf "  %-7s NOT converged after %d batches; seeds used: %s@."
              st.Hwsim.stats.Hwsim.arch st.Hwsim.batches
              (String.concat ","
                 (List.map string_of_int st.Hwsim.seeds));
          ( st.Hwsim.stats,
            Some
              (Printf.sprintf "%s after %d batches"
                 (if st.Hwsim.converged then "converged" else "NOT converged")
                 st.Hwsim.batches) )
        end
        else (Hwsim.run_test arch ~runs ~seed test, None)
      in
      Fmt.pf ppf "  %-7s condition matched %d/%d%s@." s.Hwsim.arch
        s.Hwsim.matched s.Hwsim.total
        (match convergence with Some c -> " (" ^ c ^ ")" | None -> "");
      if check then
        match Hwsim.soundness ?limits ~backend Lkmm.oracle test s with
        | Hwsim.Sound ->
            Fmt.pf ppf "  %-7s sound w.r.t. the LK model@." s.Hwsim.arch
        | Hwsim.Unsound bad ->
            incr errors;
            List.iter
              (fun (o, n) ->
                Fmt.pf ppf "  %-7s UNSOUND outcome %a (%d times)@." s.Hwsim.arch
                  Exec.pp_outcome o n)
              bad
        | Hwsim.Soundness_unknown r ->
            incr budget_outs;
            budget_reason := Some r;
            Fmt.pf ppf "  %-7s soundness unknown: %s@." s.Hwsim.arch
              (Exec.Budget.reason_to_string r))
    archs;
  (!errors, !budget_outs, !budget_reason)

let main archs runs seed check stable timeout max_candidates journal resume
    json backend_opt trace metrics files builtin =
  Harness.Cli.with_obs ~trace ~metrics @@ fun () ->
  let backend = Harness.Cli.backend ~backend:backend_opt ~no_batch:false in
  let module R = Harness.Runner in
  let module J = Harness.Journal in
  (* with --json, stdout carries the report; progress moves to stderr *)
  let ppf = if json then Fmt.stderr else Fmt.stdout in
  let archs =
    match archs with
    | [] -> Hwsim.Arch.table5
    | names ->
        List.map
          (fun n ->
            try Hwsim.Arch.find n
            with Not_found -> failwith ("unknown architecture: " ^ n))
          names
  in
  let limits =
    let l = Exec.Budget.limits ?timeout ?max_candidates () in
    if Exec.Budget.is_unlimited l then None else Some l
  in
  (* resume: tests already journalled are completion-marked and skipped;
     their recorded classification still feeds the exit code *)
  let recycled = Hashtbl.create 16 in
  (match resume with
  | Some p ->
      List.iter
        (fun (e : R.entry) -> Hashtbl.replace recycled e.R.item_id e)
        (J.load p)
  | None -> ());
  let writer = Option.map J.open_writer journal in
  let t_start = Unix.gettimeofday () in
  let entries = ref [] in
  let add (e : R.entry) =
    entries := e :: !entries;
    Option.iter (fun w -> J.write w e) writer
  in
  let run_test id test =
    match Hashtbl.find_opt recycled id with
    | Some e ->
        Fmt.pf ppf "Test %s: recycled from journal (%a)@." id R.pp_status
          e.R.status;
        entries := e :: !entries
    | None ->
        let t0 = Unix.gettimeofday () in
        let e, b, reason =
          Obs.with_span ~item:id "item" (fun () ->
              run_one ppf archs runs seed check stable limits backend test)
        in
        (* the journalled classification mirrors the exit-code policy:
           unsound = disagreement (fail), budget = gave up, else done *)
        let status =
          if e > 0 then
            R.Fail { expected = Exec.Check.Forbid; got = Exec.Check.Allow }
          else
            match reason with
            | Some r when b > 0 -> R.Gave_up r
            | _ -> R.Pass Exec.Check.Allow
        in
        add
          {
            R.item_id = id;
            status;
            time = Unix.gettimeofday () -. t0;
            n_candidates = 0;
            retried = false;
            result = None;
          }
  in
  (match builtin with
  | Some name ->
      run_test name
        (Litmus.parse (Harness.Battery.find name).Harness.Battery.source)
  | None -> ());
  List.iter
    (fun path ->
      (* per-file fault isolation: a malformed file is reported and the
         batch continues *)
      match Litmus.parse (Harness.Runner.read_file path) with
      | test -> run_test path test
      | exception exn ->
          let err = Harness.Runner.classify_exn exn in
          add
            {
              R.item_id = path;
              status = R.Err err;
              time = 0.;
              n_candidates = 0;
              retried = false;
              result = None;
            };
          Fmt.epr "klitmus_sim: %s: %a@." path Harness.Runner.pp_error err)
    files;
  Option.iter J.close writer;
  if files = [] && builtin = None then
    Fmt.pf ppf "no tests given; try: klitmus_sim -b SB@.";
  let report =
    Harness.Report.summarise
      ~wall:(Unix.gettimeofday () -. t_start)
      (List.rev !entries)
  in
  if json then print_string (Harness.Report.to_json report ^ "\n");
  Harness.Report.exit_code report

let archs_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "arch"; "a" ] ~docv:"ARCHS"
        ~doc:
          "Comma-separated architectures (SC, X86, ARMv7, ARMv8, Power8, \
           Alpha); default: the Table 5 set.")

let runs_arg =
  Arg.(value & opt int 10_000 & info [ "runs"; "n" ] ~doc:"Runs per test.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Check every observed outcome is allowed by the LK model.")

let stable_arg =
  Arg.(
    value & flag
    & info [ "stable" ]
        ~doc:
          "Retry-until-stable sampling: re-run in batches with fresh seeds \
           until the outcome histogram converges (distinguishes 'weak \
           outcome genuinely unobserved' from 'not enough samples').")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "battery" ] ~docv:"NAME" ~doc:"Run a built-in battery test.")

let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"TEST.litmus")

let cmd =
  let module C = Harness.Cli in
  Cmd.v
    (Cmd.info "klitmus_sim"
       ~doc:"Run litmus tests on simulated weak-memory hardware"
       ~exits:C.exit_infos)
    Term.(
      const main $ archs_arg $ runs_arg $ seed_arg $ check_arg $ stable_arg
      $ C.timeout_arg $ C.max_candidates_arg $ C.journal_arg $ C.resume_arg
      $ C.json_arg $ C.backend_arg $ C.trace_arg $ C.metrics_arg $ files_arg
      $ builtin_arg)

let () = Harness.Cli.eval ~name:"klitmus_sim" cmd
