(* klitmus_sim: run litmus tests on the simulated architectures — the
   repository's stand-in for the paper's klitmus kernel modules.

     klitmus_sim -b SB -runs 20000             # a built-in battery test
     klitmus_sim -arch Power8,X86 test.litmus  # specific architectures
     klitmus_sim -check -b MP                  # also verify soundness
     klitmus_sim -stable -b SB                 # retry until the histogram
                                               # converges (fresh seeds)

   Soundness checks enumerate model outcomes, which can explode; with
   --timeout/--max-candidates the check degrades to "soundness unknown"
   instead of hanging.  Errors are classified (parse/lex/...), and the
   exit code follows the runner policy: 0 ok, 2 error, 3 budget. *)

open Cmdliner

let run_one archs runs seed check stable limits test =
  let errors = ref 0 and budget_outs = ref 0 in
  let budget_reason = ref None in
  Fmt.pr "Test %s:@." test.Litmus.Ast.name;
  List.iter
    (fun arch ->
      let s, convergence =
        if stable then begin
          let st = Hwsim.run_test_stable arch ~seed test in
          (* a non-converged histogram is a reproducibility problem:
             print the exact per-batch seed set so the run can be
             replayed and extended *)
          if not st.Hwsim.converged then
            Fmt.pr "  %-7s NOT converged after %d batches; seeds used: %s@."
              st.Hwsim.stats.Hwsim.arch st.Hwsim.batches
              (String.concat ","
                 (List.map string_of_int st.Hwsim.seeds));
          ( st.Hwsim.stats,
            Some
              (Printf.sprintf "%s after %d batches"
                 (if st.Hwsim.converged then "converged" else "NOT converged")
                 st.Hwsim.batches) )
        end
        else (Hwsim.run_test arch ~runs ~seed test, None)
      in
      Fmt.pr "  %-7s condition matched %d/%d%s@." s.Hwsim.arch s.Hwsim.matched
        s.Hwsim.total
        (match convergence with Some c -> " (" ^ c ^ ")" | None -> "");
      if check then
        match Hwsim.soundness ?limits (module Lkmm) test s with
        | Hwsim.Sound -> Fmt.pr "  %-7s sound w.r.t. the LK model@." s.Hwsim.arch
        | Hwsim.Unsound bad ->
            incr errors;
            List.iter
              (fun (o, n) ->
                Fmt.pr "  %-7s UNSOUND outcome %a (%d times)@." s.Hwsim.arch
                  Exec.pp_outcome o n)
              bad
        | Hwsim.Soundness_unknown r ->
            incr budget_outs;
            budget_reason := Some r;
            Fmt.pr "  %-7s soundness unknown: %s@." s.Hwsim.arch
              (Exec.Budget.reason_to_string r))
    archs;
  (!errors, !budget_outs, !budget_reason)

let main archs runs seed check stable timeout max_candidates journal resume
    files builtin =
  let module R = Harness.Runner in
  let module J = Harness.Journal in
  let archs =
    match archs with
    | [] -> Hwsim.Arch.table5
    | names ->
        List.map
          (fun n ->
            try Hwsim.Arch.find n
            with Not_found -> failwith ("unknown architecture: " ^ n))
          names
  in
  let limits =
    let l = Exec.Budget.limits ?timeout ?max_candidates () in
    if Exec.Budget.is_unlimited l then None else Some l
  in
  (* resume: tests already journalled are completion-marked and skipped;
     their recorded classification still feeds the exit code *)
  let recycled = Hashtbl.create 16 in
  (match resume with
  | Some p ->
      List.iter
        (fun (e : R.entry) -> Hashtbl.replace recycled e.R.item_id e)
        (J.load p)
  | None -> ());
  let writer = Option.map J.open_writer journal in
  let errors = ref 0 and budget_outs = ref 0 and failures = ref 0 in
  let record id status time =
    match writer with
    | None -> ()
    | Some w ->
        J.write w
          {
            R.item_id = id;
            status;
            time;
            n_candidates = 0;
            retried = false;
            result = None;
          }
  in
  let count_recycled (st : R.status) =
    match st with
    | R.Pass _ -> ()
    | R.Fail _ -> incr errors (* an unsound hw/model disagreement *)
    | R.Gave_up _ -> incr budget_outs
    | R.Err _ -> incr failures
  in
  let run_test id test =
    match Hashtbl.find_opt recycled id with
    | Some e ->
        Fmt.pr "Test %s: recycled from journal (%a)@." id R.pp_status
          e.R.status;
        count_recycled e.R.status
    | None ->
        let t0 = Unix.gettimeofday () in
        let e, b, reason = run_one archs runs seed check stable limits test in
        errors := !errors + e;
        budget_outs := !budget_outs + b;
        (* the journalled classification mirrors the exit-code policy:
           unsound = disagreement (fail), budget = gave up, else done *)
        let status =
          if e > 0 then
            R.Fail { expected = Exec.Check.Forbid; got = Exec.Check.Allow }
          else
            match reason with
            | Some r when b > 0 -> R.Gave_up r
            | _ -> R.Pass Exec.Check.Allow
        in
        record id status (Unix.gettimeofday () -. t0)
  in
  (match builtin with
  | Some name ->
      run_test name
        (Litmus.parse (Harness.Battery.find name).Harness.Battery.source)
  | None -> ());
  List.iter
    (fun path ->
      (* per-file fault isolation: a malformed file is reported and the
         batch continues *)
      match Litmus.parse (Harness.Runner.read_file path) with
      | test -> run_test path test
      | exception exn ->
          incr failures;
          let err = Harness.Runner.classify_exn exn in
          record path (R.Err err) 0.;
          Fmt.epr "klitmus_sim: %s: %a@." path Harness.Runner.pp_error err)
    files;
  Option.iter J.close writer;
  if files = [] && builtin = None then
    Fmt.pr "no tests given; try: klitmus_sim -b SB@.";
  if !errors > 0 || !failures > 0 then 2
  else if !budget_outs > 0 then 3
  else 0

let archs_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "arch"; "a" ] ~docv:"ARCHS"
        ~doc:
          "Comma-separated architectures (SC, X86, ARMv7, ARMv8, Power8, \
           Alpha); default: the Table 5 set.")

let runs_arg =
  Arg.(value & opt int 10_000 & info [ "runs"; "n" ] ~doc:"Runs per test.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Check every observed outcome is allowed by the LK model.")

let stable_arg =
  Arg.(
    value & flag
    & info [ "stable" ]
        ~doc:
          "Retry-until-stable sampling: re-run in batches with fresh seeds \
           until the outcome histogram converges (distinguishes 'weak \
           outcome genuinely unobserved' from 'not enough samples').")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for the model side of -check.")

let max_candidates_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-candidates" ] ~docv:"N"
        ~doc:"Candidate-execution cap for the model side of -check.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append a completion marker per test to $(docv) as JSONL, \
           flushed per test; a killed sweep loses at most the in-flight \
           test.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Skip tests already marked complete in journal $(docv); their \
           recorded classification still feeds the exit code.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "battery" ] ~docv:"NAME" ~doc:"Run a built-in battery test.")

let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"TEST.litmus")

let exit_info =
  [
    Cmd.Exit.info 0 ~doc:"all runs completed (and -check found no unsound \
                          outcome)";
    Cmd.Exit.info 2 ~doc:"a test errored or -check found an unsound outcome";
    Cmd.Exit.info 3 ~doc:"-check exceeded its budget (soundness unknown) \
                          and nothing errored";
    Cmd.Exit.info 124
      ~doc:"command-line usage error: unknown option or bad value \
            (Cmdliner convention)";
    Cmd.Exit.info 125 ~doc:"uncaught internal exception (Cmdliner convention)";
  ]

let cmd =
  Cmd.v
    (Cmd.info "klitmus_sim"
       ~doc:"Run litmus tests on simulated weak-memory hardware"
       ~exits:exit_info)
    Term.(
      const main $ archs_arg $ runs_arg $ seed_arg $ check_arg $ stable_arg
      $ timeout_arg $ max_candidates_arg $ journal_arg $ resume_arg
      $ files_arg $ builtin_arg)

(* user errors become one-line classified messages, not uncaught exceptions *)
let () =
  match Cmd.eval_value ~catch:false cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 124 (* CLI usage error *)
  | Error `Exn -> exit 125 (* internal error *)
  | exception Not_found ->
      Fmt.epr
        "klitmus_sim: unknown built-in test (see lib/harness/battery.ml for \
         names)@.";
      exit 2
  | exception exn ->
      Fmt.epr "klitmus_sim: %a@." Harness.Runner.pp_error
        (Harness.Runner.classify_exn exn);
      exit 2
