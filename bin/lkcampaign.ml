(* lkcampaign: fault-tolerant sharded sweeps over generated tests, with
   differential mining.

     lkcampaign run  --dir camp --size 4 --seeds 0..450000 --shard 4096 -j 8
     lkcampaign run  --dir camp ...          # again: resumes where it died
     lkcampaign mine --dir camp --explain    # re-mine a finished manifest
     lkcampaign status --dir camp            # shard states at a glance

   A campaign is a seed interval partitioned into regenerable shards;
   tests are synthesized on demand inside workers and never hit the
   disk.  The manifest journal makes any kill -9 resumable, and with
   the default (wall-clock-free) budgets a resumed run mines a report
   byte-identical to an uninterrupted one. *)

open Cmdliner
module C = Harness.Cli
module Campaign = Harness.Campaign

(* ------------------------------------------------------------------ *)
(* Flags                                                               *)
(* ------------------------------------------------------------------ *)

let dir_arg =
  Arg.(
    value & opt string "campaign"
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Campaign directory: manifest, shard journals, mined report.")

let size_arg = Arg.(value & opt int 4 & info [ "size"; "s" ] ~doc:"Cycle length.")

let seeds_arg =
  Arg.(
    value
    & opt C.seed_range_conv (0, 100_000)
    & info [ "seeds" ] ~docv:"A..B"
        ~doc:
          "Seed interval, half-open.  Each seed deterministically denotes \
           at most one test; the same interval always regenerates the \
           byte-identical campaign.")

let shard_arg =
  Arg.(
    value & opt int 4096
    & info [ "shard" ] ~docv:"N" ~doc:"Seeds per initial shard.")

let models_arg =
  Arg.(
    value
    & opt (list string) [ "lk"; "cat"; "c11" ]
    & info [ "models" ] ~docv:"M,.."
        ~doc:"Model columns: any of lk (native), cat (lk.cat), c11.")

let archs_arg =
  Arg.(
    value & opt (list string) []
    & info [ "archs" ] ~docv:"A,.."
        ~doc:
          "Operational-simulator columns (e.g. Power8,ARMv7); observed \
           outcomes are mined against the LK verdicts.")

let hw_runs_arg =
  Arg.(
    value & opt int 2000
    & info [ "hw-runs" ] ~docv:"N" ~doc:"Simulator runs per test per arch.")

let lease_arg =
  Arg.(
    value & opt float 300.
    & info [ "lease-timeout" ] ~docv:"SECONDS"
        ~doc:"SIGKILL and requeue a shard worker after this long.")

let max_rows_arg =
  Arg.(
    value & opt int 64
    & info [ "max-rows" ] ~docv:"N"
        ~doc:
          "Disagreement rows kept per shard (drops are counted, never \
           silent).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Attach axiom-level forensics to mined Forbid-side patterns.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o" ] ~docv:"FILE"
        ~doc:"Mined report path (default DIR/report.json).")

let poison_arg =
  Arg.(
    value & opt (list int) []
    & info [ "chaos-poison" ] ~docv:"SEED,.."
        ~doc:
          "Chaos hook: workers crash at these seeds (exercises the \
           retry/bisect/quarantine ladder).")

let wedge_arg =
  Arg.(
    value & opt (list int) []
    & info [ "chaos-wedge" ] ~docv:"SEED,.."
        ~doc:"Chaos hook: workers hang at these seeds (exercises leases).")

let flight_arg =
  Arg.(
    value & flag
    & info [ "flight" ]
        ~doc:
          "Arm the crash flight recorder in every shard worker: per-seed \
           checkpoints land in DIR/flight-<pid>.jsonl, so a crashed, \
           poisoned or wedged worker leaves a post-mortem naming the \
           victim seed (readable with $(b,obs_report --postmortem)).")

let metrics_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "metrics-interval" ] ~docv:"SECONDS"
        ~doc:
          "Seconds between live lkmetrics-1 snapshots appended to \
           DIR/metrics.jsonl alongside the manifest.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress on stderr.")

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let emit_report ~json ~out rep =
  let j = Campaign.report_to_json rep in
  (match out with Some path -> write_file path (j ^ "\n") | None -> ());
  if json then print_string (j ^ "\n")
  else print_string (Campaign.report_to_text rep);
  if rep.Campaign.totals.Campaign.n_quarantined > 0 then 4 else 0

let run_main dir size (seed_lo, seed_hi) shard_size jobs models archs hw_runs
    timeout max_candidates max_events lease_timeout max_rows explain out
    poison wedge flight metrics_interval quiet json backend_opt trace metrics
    =
  C.with_obs ~trace ~metrics @@ fun () ->
  let limits =
    (* flag-less runs keep the deterministic candidate/event caps; any
       explicit flag rebuilds the budget (a --timeout trades away the
       chaos-equality property, which only CI cares about) *)
    if timeout = None && max_candidates = None && max_events = None then
      Campaign.default.Campaign.limits
    else Exec.Budget.limits ?timeout ?max_candidates ?max_events ()
  in
  let config =
    {
      Campaign.default with
      Campaign.dir;
      size;
      seed_lo;
      seed_hi;
      shard_size;
      jobs = max 1 jobs;
      models;
      archs;
      hw_runs;
      limits;
      lease_timeout;
      max_rows;
      explain;
      backend = C.backend ~backend:backend_opt ~no_batch:false;
      poison;
      wedge;
      flight;
      metrics_interval;
      log =
        (if quiet then ignore
         else fun s -> Printf.eprintf "lkcampaign: %s\n%!" s);
    }
  in
  match Campaign.run config with
  | Error e ->
      Fmt.epr "lkcampaign: %s@." e;
      2
  | Ok rep ->
      let out = Some (Option.value ~default:(Filename.concat dir "report.json") out) in
      emit_report ~json ~out rep

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run (or resume) a campaign to completion and mine it"
       ~exits:C.exit_infos)
    Term.(
      const run_main $ dir_arg $ size_arg $ seeds_arg $ shard_arg $ C.jobs_arg
      $ models_arg $ archs_arg $ hw_runs_arg $ C.timeout_arg
      $ C.max_candidates_arg $ C.max_events_arg $ lease_arg $ max_rows_arg
      $ explain_arg $ out_arg $ poison_arg $ wedge_arg $ flight_arg
      $ metrics_interval_arg $ quiet_arg $ C.json_arg $ C.backend_arg
      $ C.trace_arg $ C.metrics_arg)

(* ------------------------------------------------------------------ *)
(* mine                                                                *)
(* ------------------------------------------------------------------ *)

let mine_main dir explain out json trace metrics =
  C.with_obs ~trace ~metrics @@ fun () ->
  match Harness.Manifest.load (Campaign.manifest_path dir) with
  | Error e ->
      Fmt.epr "lkcampaign: %s: %s@." dir e;
      2
  | Ok m -> emit_report ~json ~out (Campaign.mine ~explain m)

let mine_cmd =
  Cmd.v
    (Cmd.info "mine" ~doc:"Mine a manifest's discrepancy report (read-only)"
       ~exits:C.exit_infos)
    Term.(
      const mine_main $ dir_arg $ explain_arg $ out_arg $ C.json_arg
      $ C.trace_arg $ C.metrics_arg)

(* ------------------------------------------------------------------ *)
(* status                                                              *)
(* ------------------------------------------------------------------ *)

let status_main dir =
  match Harness.Manifest.load (Campaign.manifest_path dir) with
  | Error e ->
      Fmt.epr "lkcampaign: %s: %s@." dir e;
      2
  | Ok m ->
      let spec = Harness.Manifest.spec m in
      let shards = Harness.Manifest.shards m in
      let count p = List.length (List.filter p shards) in
      let is s (sh : Harness.Manifest.shard) =
        match (s, sh.state) with
        | `P, Harness.Manifest.Pending -> true
        | `L, Harness.Manifest.Leased _ -> true
        | `D, Harness.Manifest.Done _ -> true
        | `Q, Harness.Manifest.Quarantined _ -> true
        | _ -> false
      in
      Printf.printf "campaign %s: size=%d seeds=[%d,%d) shard=%d\n" dir
        spec.Harness.Manifest.size spec.Harness.Manifest.seed_lo
        spec.Harness.Manifest.seed_hi spec.Harness.Manifest.shard_size;
      Printf.printf "  shards %d: %d done, %d leased, %d pending, %d \
                     quarantined\n"
        (List.length shards) (count (is `D)) (count (is `L)) (count (is `P))
        (count (is `Q));
      List.iter
        (fun (sh : Harness.Manifest.shard) ->
          match sh.state with
          | Harness.Manifest.Leased { attempt; pid; _ } ->
              Printf.printf "  leased %s attempt %d pid %d\n"
                (Harness.Manifest.shard_id sh.lo sh.hi)
                attempt pid
          | Harness.Manifest.Quarantined { attempts; error } ->
              Printf.printf "  quarantined %s after %d attempts: %s\n"
                (Harness.Manifest.shard_id sh.lo sh.hi)
                attempts error
          | _ -> ())
        shards;
      0

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Shard states of a campaign directory"
       ~exits:C.exit_infos)
    Term.(const status_main $ dir_arg)

(* ------------------------------------------------------------------ *)

let cmd =
  Cmd.group
    (Cmd.info "lkcampaign"
       ~doc:"Fault-tolerant campaign sweeps with differential mining"
       ~exits:C.exit_infos)
    [ run_cmd; mine_cmd; status_cmd ]

let () = C.eval ~name:"lkcampaign" cmd
