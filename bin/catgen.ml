(* Writes the shipped cat models to the models/ directory (the OCaml
   strings in Cat.Stdmodels are the source of truth; a test keeps the two
   in sync). *)
let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "models" in
  List.iter
    (fun (_, file, src) ->
      let path = Filename.concat dir file in
      let oc = open_out path in
      output_string oc src;
      close_out oc;
      Printf.printf "wrote %s\n" path)
    Cat.Stdmodels.all
