(* Writes the shipped cat models to the models/ directory (the OCaml
   strings in Cat.Stdmodels are the source of truth; a test keeps the two
   in sync).

   Robustness: every model is re-parsed before writing (a corrupt
   stdmodel is reported as a classified error, not silently shipped),
   write failures are reported per file, and the exit code distinguishes
   success (0) from any error (2).  Like the other tools, catgen speaks
   the unified report schema (--json) and the observability flags
   (--trace/--metrics) through Harness.Cli. *)

open Cmdliner

let main json trace metrics dir =
  Harness.Cli.with_obs ~trace ~metrics @@ fun () ->
  let module R = Harness.Runner in
  let ppf = if json then Fmt.stderr else Fmt.stdout in
  let t_start = Unix.gettimeofday () in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Fmt.epr "catgen: %s is not a directory@." dir;
    2
  end
  else begin
    let entries =
      List.map
        (fun (name, file, src) ->
          let t0 = Unix.gettimeofday () in
          let entry status =
            {
              R.item_id = name;
              status;
              time = Unix.gettimeofday () -. t0;
              n_candidates = 0;
              retried = false;
              result = None;
            }
          in
          Obs.with_span ~item:name "item" @@ fun () ->
          (* the string must round-trip through the cat parser before it
             is written out as a shipped model *)
          match Cat.parse src with
          | _ -> (
              let path = Filename.concat dir file in
              match
                (* atomic: write to a temp file and rename, so an
                   interrupted catgen cannot leave a torn model *)
                let tmp = path ^ ".tmp" in
                let oc = open_out tmp in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc src);
                Sys.rename tmp path
              with
              | () ->
                  Fmt.pf ppf "wrote %s@." path;
                  (* a written model is a passed item; the verdict slot is
                     vacuous for catgen, recorded as Allow *)
                  entry (R.Pass Exec.Check.Allow)
              | exception Sys_error msg ->
                  Fmt.epr "catgen: cannot write %s: %s@." path msg;
                  entry (R.Err { R.cls = R.Internal; msg; line = None }))
          | exception exn ->
              let e = R.classify_exn exn in
              Fmt.epr "catgen: model %s does not parse: %a@." name R.pp_error e;
              entry (R.Err e))
        Cat.Stdmodels.all
    in
    let report =
      Harness.Report.summarise ~wall:(Unix.gettimeofday () -. t_start) entries
    in
    if json then print_string (Harness.Report.to_json report ^ "\n");
    Harness.Report.exit_code report
  end

let dir_arg =
  Arg.(
    value
    & pos 0 string "models"
    & info [] ~docv:"DIR" ~doc:"Destination directory (default: models).")

let cmd =
  let module C = Harness.Cli in
  Cmd.v
    (Cmd.info "catgen" ~doc:"Write the shipped cat models to a directory"
       ~exits:C.exit_infos)
    Term.(const main $ C.json_arg $ C.trace_arg $ C.metrics_arg $ dir_arg)

let () = Harness.Cli.eval ~name:"catgen" cmd
