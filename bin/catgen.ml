(* Writes the shipped cat models to the models/ directory (the OCaml
   strings in Cat.Stdmodels are the source of truth; a test keeps the two
   in sync).

   Robustness: every model is re-parsed before writing (a corrupt
   stdmodel is reported as a classified error, not silently shipped),
   write failures are reported per file, and the exit code distinguishes
   success (0) from any error (2). *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "models" in
  let errors = ref 0 in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "catgen: %s is not a directory\n" dir;
    exit 2
  end;
  List.iter
    (fun (name, file, src) ->
      (* the string must round-trip through the cat parser before it is
         written out as a shipped model *)
      match Cat.parse src with
      | _ -> (
          let path = Filename.concat dir file in
          match
            (* atomic: write to a temp file and rename, so an interrupted
               catgen cannot leave a torn model in models/ *)
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc src);
            Sys.rename tmp path
          with
          | () -> Printf.printf "wrote %s\n" path
          | exception Sys_error msg ->
              incr errors;
              Printf.eprintf "catgen: cannot write %s: %s\n" path msg)
      | exception exn ->
          incr errors;
          let e = Harness.Runner.classify_exn exn in
          Printf.eprintf "catgen: model %s does not parse: %s error: %s%s\n"
            name
            (Harness.Runner.class_to_string e.Harness.Runner.cls)
            e.Harness.Runner.msg
            (match e.Harness.Runner.line with
            | Some l -> Printf.sprintf " (line %d)" l
            | None -> ""))
    Cat.Stdmodels.all;
  exit (if !errors > 0 then 2 else 0)
