(* diy_gen: generate litmus tests from cycles of relaxation edges — the
   repository's diy7 equivalent.

     diy_gen -size 4                    # enumerate all size-4 cycles
     diy_gen -size 5 -sample 50         # sample larger sizes
     diy_gen -size 4 -verdicts          # also print LK verdicts
     diy_gen -size 7 -verdicts -timeout 5   # budgeted: big cycles degrade
                                            # to Unknown instead of hanging
     diy_gen -size 4 -o tests/          # write .litmus files *)

open Cmdliner

let main size sample verdicts outdir timeout max_candidates max_events jobs
    journal resume =
  let tests =
    match sample with
    | None -> Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary size
    | Some count ->
        let rng = Random.State.make [| 2018 |] in
        Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count size
  in
  let limits = Exec.Budget.limits ?timeout ?max_events ?max_candidates () in
  let budgeted m t =
    if Exec.Budget.is_unlimited limits then Exec.Check.run m t
    else Exec.Check.run ~budget:(Exec.Budget.start limits) m t
  in
  let unknowns = ref 0 in
  Fmt.pr "generated %d tests of size %d@." (List.length tests) size;
  let emit_test (t : Litmus.Ast.t) =
    match outdir with
    | None -> ()
    | Some dir ->
        let path =
          Filename.concat dir
            (String.map (function '+' -> '-' | c -> c) t.name ^ ".litmus")
        in
        (* atomic: a killed sweep cannot leave a torn .litmus file *)
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc (Litmus.to_string t);
        close_out oc;
        Sys.rename tmp path
  in
  let c11_column (t : Litmus.Ast.t) =
    if Models.C11.applicable t then
      Exec.Check.verdict_to_string
        (budgeted (module Models.C11) t).Exec.Check.verdict
    else "-"
  in
  (* the LK sweep is the expensive half; any pool feature moves it into
     isolated workers, with the journal keyed by test name *)
  let use_pool = verdicts && (jobs > 1 || journal <> None || resume <> None) in
  if use_pool then begin
    let items =
      List.map
        (fun (t : Litmus.Ast.t) ->
          { Harness.Runner.id = t.name; source = `Ast t; expected = None })
        tests
    in
    let config =
      { Harness.Pool.default with Harness.Pool.jobs = max 1 jobs; limits }
    in
    let report =
      Harness.Pool.run ~config ?journal ?resume
        ~model:(Harness.Runner.static_model (module Lkmm))
        items
    in
    List.iter2
      (fun (t : Litmus.Ast.t) (e : Harness.Runner.entry) ->
        let lk =
          match e.Harness.Runner.status with
          | Harness.Runner.Pass v -> Exec.Check.verdict_to_string v
          | Harness.Runner.Gave_up _ -> "Unknown"
          | Harness.Runner.Err { cls; _ } ->
              "error:" ^ Harness.Runner.class_to_string cls
          | Harness.Runner.Fail _ -> "FAIL"
        in
        Fmt.pr "%-45s LK:%-6s C11:%s@." t.name lk (c11_column t);
        emit_test t)
      tests report.Harness.Runner.entries;
    if report.Harness.Runner.n_gave_up > 0 then
      Fmt.pr "%d tests exceeded their budget (Unknown)@."
        report.Harness.Runner.n_gave_up;
    Harness.Runner.exit_code report
  end
  else begin
    List.iter
      (fun (t : Litmus.Ast.t) ->
        (if verdicts then begin
           (* fresh budget per test: one explosive cycle degrades to Unknown
              and the sweep keeps going *)
           let lk = (budgeted (module Lkmm) t).Exec.Check.verdict in
           (match lk with Exec.Check.Unknown _ -> incr unknowns | _ -> ());
           Fmt.pr "%-45s LK:%-6s C11:%s@." t.name
             (Exec.Check.verdict_to_string lk)
             (c11_column t)
         end
         else Fmt.pr "%s@." t.name);
        emit_test t)
      tests;
    if !unknowns > 0 then begin
      Fmt.pr "%d tests exceeded their budget (Unknown)@." !unknowns;
      3
    end
    else 0
  end

let size_arg =
  Arg.(value & opt int 4 & info [ "size"; "s" ] ~doc:"Cycle length.")

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:"Sample N random cycles instead of enumerating.")

let verdicts_arg =
  Arg.(value & flag & info [ "verdicts" ] ~doc:"Print LK and C11 verdicts.")

let outdir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "o" ] ~docv:"DIR" ~doc:"Write the tests as .litmus files.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget per verdict check.")

let max_candidates_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-candidates" ] ~docv:"N"
        ~doc:"Candidate-execution cap per verdict check.")

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:"Event cap per candidate execution.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the -verdicts sweep in $(docv) isolated worker processes \
           (crashes and hangs are contained and classified).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append each verdict to $(docv) as JSONL keyed by test name \
           (implies process isolation for the sweep).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Recycle verdicts already recorded in journal $(docv); only \
           missing tests re-run.")

let exit_info =
  [
    Cmd.Exit.info 0 ~doc:"all requested work completed";
    Cmd.Exit.info 2 ~doc:"an error occurred (classified on stderr)";
    Cmd.Exit.info 3 ~doc:"some verdict check exceeded its budget (Unknown)";
    Cmd.Exit.info 4
      ~doc:"a worker process crashed on a signal (-j sweeps only)";
    Cmd.Exit.info 124
      ~doc:"command-line usage error: unknown option or bad value \
            (Cmdliner convention)";
    Cmd.Exit.info 125 ~doc:"uncaught internal exception (Cmdliner convention)";
  ]

let cmd =
  Cmd.v
    (Cmd.info "diy_gen" ~doc:"Generate litmus tests from relaxation cycles"
       ~exits:exit_info)
    Term.(
      const main $ size_arg $ sample_arg $ verdicts_arg $ outdir_arg
      $ timeout_arg $ max_candidates_arg $ max_events_arg $ jobs_arg
      $ journal_arg $ resume_arg)

(* user errors become one-line classified messages, not uncaught exceptions *)
let () =
  match Cmd.eval_value ~catch:false cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 124 (* CLI usage error *)
  | Error `Exn -> exit 125 (* internal error *)
  | exception exn ->
      Fmt.epr "diy_gen: %a@." Harness.Runner.pp_error
        (Harness.Runner.classify_exn exn);
      exit 2
