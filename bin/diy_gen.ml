(* diy_gen: generate litmus tests from cycles of relaxation edges — the
   repository's diy7 equivalent.

     diy_gen -size 4                    # enumerate all size-4 cycles
     diy_gen -size 5 -sample 50         # sample larger sizes
     diy_gen -size 4 -verdicts          # also print LK verdicts
     diy_gen -size 7 -verdicts -timeout 5   # budgeted: big cycles degrade
                                            # to Unknown instead of hanging
     diy_gen -size 4 -o tests/          # write .litmus files *)

open Cmdliner

let main size sample seed_range verdicts outdir timeout max_candidates
    max_events jobs journal resume json backend_opt trace metrics =
  Harness.Cli.with_obs ~trace ~metrics @@ fun () ->
  let backend = Harness.Cli.backend ~backend:backend_opt ~no_batch:false in
  (* with --json, stdout carries the report; the listing moves to stderr *)
  let ppf = if json then Fmt.stderr else Fmt.stdout in
  let t_start = Unix.gettimeofday () in
  let tests =
    match (seed_range, sample) with
    | Some (lo, hi), _ ->
        (* deterministic: the same range always regenerates the
           byte-identical tests (campaign shards rely on this); distinct
           seeds can collide on a cycle, so keep the first of each name *)
        let seen = Hashtbl.create 256 in
        Diygen.generate_range ~vocabulary:Diygen.Edge.core_vocabulary ~size lo
          hi
        |> List.filter_map (fun ((_ : int), (t : Litmus.Ast.t)) ->
               if Hashtbl.mem seen t.name then None
               else begin
                 Hashtbl.replace seen t.name ();
                 Some t
               end)
    | None, None -> Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary size
    | None, Some count ->
        let rng = Random.State.make [| 2018 |] in
        Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count size
  in
  let limits = Exec.Budget.limits ?timeout ?max_events ?max_candidates () in
  let budgeted oracle t =
    if Exec.Budget.is_unlimited limits then Exec.Oracle.run ~backend oracle t
    else Exec.Oracle.run ~backend ~budget:(Exec.Budget.start limits) oracle t
  in
  let c11_oracle = Exec.Oracle.of_model (module Models.C11) in
  let unknowns = ref 0 in
  Fmt.pf ppf "generated %d tests of size %d@." (List.length tests) size;
  let emit_test (t : Litmus.Ast.t) =
    match outdir with
    | None -> ()
    | Some dir ->
        let path =
          Filename.concat dir
            (String.map (function '+' -> '-' | c -> c) t.name ^ ".litmus")
        in
        (* atomic: a killed sweep cannot leave a torn .litmus file *)
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc (Litmus.to_string t);
        close_out oc;
        Sys.rename tmp path
  in
  let c11_column (t : Litmus.Ast.t) =
    if Models.C11.applicable t then
      Exec.Check.verdict_to_string (budgeted c11_oracle t).Exec.Check.verdict
    else "-"
  in
  (* the LK sweep is the expensive half; any pool feature moves it into
     isolated workers, with the journal keyed by test name *)
  let use_pool = verdicts && (jobs > 1 || journal <> None || resume <> None) in
  if use_pool then begin
    let items =
      List.map
        (fun (t : Litmus.Ast.t) ->
          { Harness.Runner.id = t.name; source = `Ast t; expected = None })
        tests
    in
    let config =
      { Harness.Pool.default with Harness.Pool.jobs = max 1 jobs; limits }
    in
    let report =
      Harness.Pool.run ~config ?journal ?resume ~backend items
    in
    List.iter2
      (fun (t : Litmus.Ast.t) (e : Harness.Runner.entry) ->
        let lk =
          match e.Harness.Runner.status with
          | Harness.Runner.Pass v -> Exec.Check.verdict_to_string v
          | Harness.Runner.Gave_up _ -> "Unknown"
          | Harness.Runner.Err { cls; _ } ->
              "error:" ^ Harness.Runner.class_to_string cls
          | Harness.Runner.Fail _ -> "FAIL"
        in
        Fmt.pf ppf "%-45s LK:%-6s C11:%s@." t.name lk (c11_column t);
        emit_test t)
      tests report.Harness.Runner.entries;
    if report.Harness.Runner.n_gave_up > 0 then
      Fmt.pf ppf "%d tests exceeded their budget (Unknown)@."
        report.Harness.Runner.n_gave_up;
    if json then print_string (Harness.Runner.to_json report ^ "\n");
    Harness.Runner.exit_code report
  end
  else begin
    let entries = ref [] in
    List.iter
      (fun (t : Litmus.Ast.t) ->
        (if verdicts then begin
           (* fresh budget per test: one explosive cycle degrades to Unknown
              and the sweep keeps going *)
           let t0 = Unix.gettimeofday () in
           let r = budgeted Lkmm.oracle t in
           let lk = r.Exec.Check.verdict in
           (match lk with Exec.Check.Unknown _ -> incr unknowns | _ -> ());
           let status =
             match lk with
             | Exec.Check.Unknown (Exec.Check.Budget_exceeded reason) ->
                 Harness.Runner.Gave_up reason
             | Exec.Check.Unknown (Exec.Check.Model_error exn) ->
                 Harness.Runner.Err (Harness.Runner.classify_exn exn)
             | Exec.Check.Unknown (Exec.Check.Crashed s) ->
                 Harness.Runner.Err
                   {
                     Harness.Runner.cls = Harness.Runner.Crash s;
                     msg = "worker crashed";
                     line = None;
                   }
             | v -> Harness.Runner.Pass v
           in
           entries :=
             {
               Harness.Runner.item_id = t.name;
               status;
               time = Unix.gettimeofday () -. t0;
               n_candidates = r.Exec.Check.n_candidates;
               retried = false;
               result = Some r;
             }
             :: !entries;
           Fmt.pf ppf "%-45s LK:%-6s C11:%s@." t.name
             (Exec.Check.verdict_to_string lk)
             (c11_column t)
         end
         else Fmt.pf ppf "%s@." t.name);
        emit_test t)
      tests;
    if !unknowns > 0 then
      Fmt.pf ppf "%d tests exceeded their budget (Unknown)@." !unknowns;
    let report =
      Harness.Report.summarise
        ~wall:(Unix.gettimeofday () -. t_start)
        (List.rev !entries)
    in
    if json then print_string (Harness.Report.to_json report ^ "\n");
    if !unknowns > 0 then 3 else 0
  end

let size_arg =
  Arg.(value & opt int 4 & info [ "size"; "s" ] ~doc:"Cycle length.")

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:"Sample N random cycles instead of enumerating.")

let seed_range_arg =
  Arg.(
    value
    & opt (some Harness.Cli.seed_range_conv) None
    & info [ "seed-range" ] ~docv:"A..B"
        ~doc:
          "Generate deterministically from seeds A (inclusive) to B \
           (exclusive): the same range always produces the byte-identical \
           tests.")

let verdicts_arg =
  Arg.(value & flag & info [ "verdicts" ] ~doc:"Print LK and C11 verdicts.")

let outdir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "o" ] ~docv:"DIR" ~doc:"Write the tests as .litmus files.")

let cmd =
  let module C = Harness.Cli in
  Cmd.v
    (Cmd.info "diy_gen" ~doc:"Generate litmus tests from relaxation cycles"
       ~exits:C.exit_infos)
    Term.(
      const main $ size_arg $ sample_arg $ seed_range_arg $ verdicts_arg
      $ outdir_arg $ C.timeout_arg $ C.max_candidates_arg $ C.max_events_arg
      $ C.jobs_arg $ C.journal_arg $ C.resume_arg $ C.json_arg $ C.backend_arg
      $ C.trace_arg $ C.metrics_arg)

let () = Harness.Cli.eval ~name:"diy_gen" cmd
