(* diy_gen: generate litmus tests from cycles of relaxation edges — the
   repository's diy7 equivalent.

     diy_gen -size 4                    # enumerate all size-4 cycles
     diy_gen -size 5 -sample 50         # sample larger sizes
     diy_gen -size 4 -verdicts          # also print LK verdicts
     diy_gen -size 4 -o tests/          # write .litmus files *)

open Cmdliner

let main size sample verdicts outdir =
  let tests =
    match sample with
    | None -> Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary size
    | Some count ->
        let rng = Random.State.make [| 2018 |] in
        Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count size
  in
  Fmt.pr "generated %d tests of size %d@." (List.length tests) size;
  List.iter
    (fun (t : Litmus.Ast.t) ->
      (if verdicts then
         let lk = (Exec.Check.run (module Lkmm) t).Exec.Check.verdict in
         let c11 =
           if Models.C11.applicable t then
             Exec.Check.verdict_to_string
               (Exec.Check.run (module Models.C11) t).Exec.Check.verdict
           else "-"
         in
         Fmt.pr "%-45s LK:%-6s C11:%s@." t.name
           (Exec.Check.verdict_to_string lk)
           c11
       else Fmt.pr "%s@." t.name);
      match outdir with
      | None -> ()
      | Some dir ->
          let path =
            Filename.concat dir
              (String.map (function '+' -> '-' | c -> c) t.name ^ ".litmus")
          in
          let oc = open_out path in
          output_string oc (Litmus.to_string t);
          close_out oc)
    tests

let size_arg =
  Arg.(value & opt int 4 & info [ "size"; "s" ] ~doc:"Cycle length.")

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:"Sample N random cycles instead of enumerating.")

let verdicts_arg =
  Arg.(value & flag & info [ "verdicts" ] ~doc:"Print LK and C11 verdicts.")

let outdir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "o" ] ~docv:"DIR" ~doc:"Write the tests as .litmus files.")

let cmd =
  Cmd.v
    (Cmd.info "diy_gen" ~doc:"Generate litmus tests from relaxation cycles")
    Term.(const main $ size_arg $ sample_arg $ verdicts_arg $ outdir_arg)

(* user errors become one-line messages, not uncaught exceptions *)
let () =
  match Cmd.eval_value ~catch:false cmd with
  | Ok _ -> exit 0
  | Error _ -> exit 124
  | exception Litmus.Parser.Error (msg, line) ->
      Fmt.epr "diy_gen: parse error, line %d: %s@." line msg;
      exit 2
  | exception Litmus.Lexer.Error (msg, line) ->
      Fmt.epr "diy_gen: lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Parser.Error (msg, line) ->
      Fmt.epr "diy_gen: cat parse error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Lexer.Error (msg, line) ->
      Fmt.epr "diy_gen: cat lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Interp.Type_error msg ->
      Fmt.epr "diy_gen: cat evaluation error: %s@." msg;
      exit 2
  | exception Failure msg ->
      Fmt.epr "diy_gen: %s@." msg;
      exit 2
  | exception Not_found ->
      Fmt.epr "diy_gen: unknown built-in test (see lib/harness/battery.ml for names)@.";
      exit 2
